// Command widxserve runs the experiment registry as a long-running sweep
// service, and doubles as its command-line client.
//
// Daemon mode (-listen) serves the internal/serve HTTP+JSON API: submit
// runs and full-factorial sweeps, poll or stream per-point progress, and
// fetch finished manifests and reports. Finished points persist in a
// content-addressed result store (-store), so resubmitting a sweep — or
// any sweep sharing points with an earlier one — is served from disk
// with zero re-simulations. With -workers the daemon is a coordinator:
// it simulates nothing itself, stripes each sweep grid round-robin
// across the listed worker daemons, and merges their index-tagged
// results into a report byte-identical to a single-process run.
//
//	widxserve -listen :8091 -store /var/tmp/widx-results
//	widxserve -listen :8090 -workers http://h1:8091,http://h2:8091
//
// Client mode (-addr) mirrors the cmd/experiments surface against a
// daemon:
//
//	widxserve -addr http://h1:8090 -list
//	widxserve -addr http://h1:8090 -run cmp -set agents=1xooo+4xwidx:4w \
//	          -sweep llc-ways=0,8,4,2 -scale 0.125 -sample 2000 [-json]
//	widxserve -addr http://h1:8090 -run kernel -sampling -sample-windows 30
//	widxserve -addr http://h1:8090 -status j000001 | -cancel j000001 | -statusz
//
// -sampling asks the server for systematic sampled simulation (detailed
// windows + functional fast-forward; internal/sampling): the manifest
// gains a `sampling` block with 95% confidence intervals, sampled points
// key separately in the result store, and /statusz counts them. The
// daemon-side -warm-store persists fast-forward checkpoints and CMP
// warm-ups across restarts.
//
// A client -run submits, streams progress to stderr, and prints the
// finished report (or, with -json, the widx-experiment-manifest/v1) to
// stdout — byte-identical to running cmd/experiments locally at the
// same flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"widx/internal/exp"
	"widx/internal/serve"
)

// kvFlag collects repeatable -set k=v flags (the cmd/experiments syntax).
type kvFlag map[string]string

func (f kvFlag) String() string { return fmt.Sprint(map[string]string(f)) }

func (f kvFlag) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	k = strings.TrimSpace(k)
	if !ok || k == "" {
		return fmt.Errorf("want key=value, got %q", s)
	}
	f[k] = v
	return nil
}

// axisFlag collects repeatable -sweep key=v1,v2,... flags.
type axisFlag []exp.Axis

func (f *axisFlag) String() string { return fmt.Sprint([]exp.Axis(*f)) }

func (f *axisFlag) Set(s string) error {
	ax, err := exp.ParseAxis(s)
	if err != nil {
		return err
	}
	*f = append(*f, ax)
	return nil
}

func main() {
	// Daemon flags.
	listen := flag.String("listen", "", "serve the HTTP API on this address (daemon mode)")
	store := flag.String("store", "", "persistent result store directory (empty = no persistence)")
	workers := flag.String("workers", "", "comma-separated worker base URLs (coordinator mode)")
	warmCache := flag.Bool("warm-cache", true, "share warm state across the daemon's jobs (results are byte-identical either way)")
	warmVerify := flag.Bool("warm-cache-verify", false, "rebuild on every warm-cache hit and cross-check content hashes (slow)")
	warmStore := flag.String("warm-store", "", "persist warm-state snapshots (fast-forward checkpoints, CMP warm-ups) under this directory across daemon restarts")

	// Client flags.
	addr := flag.String("addr", "", "widxserve base URL to talk to (client mode)")
	run := flag.String("run", "", "submit one experiment (or sweep, with -sweep) and wait for its report")
	set := kvFlag{}
	flag.Var(set, "set", "override one experiment parameter as key=value (repeatable)")
	var axes axisFlag
	flag.Var(&axes, "sweep", "sweep one parameter axis as key=v1,v2,... (repeatable; axes form a grid)")
	jsonOut := flag.Bool("json", false, "print the run manifest instead of the text report")
	scale := flag.Float64("scale", 0, "workload scale (0 = server default, which matches the CLI default)")
	sample := flag.Int("sample", -1, "probes simulated in detail (-1 = server default; 0 = all)")
	strictOrder := flag.Bool("strict-order", false, "assert monotonic memory order (debug)")
	samplingOn := flag.Bool("sampling", false, "systematic sampled simulation: detailed windows + functional fast-forward, 95% CIs in the manifest")
	sampleWindows := flag.Int("sample-windows", 30, "detailed windows per design point (with -sampling)")
	sampleWarmup := flag.Int("sample-warmup", -1, "detailed-but-unmeasured probes per window (-1 = server default)")
	samplePeriod := flag.Int("sample-period", 0, "measured probes per window (0 = server default)")
	quiet := flag.Bool("quiet", false, "suppress the per-point progress lines on stderr")
	list := flag.Bool("list", false, "list the server's registered experiments")
	statusz := flag.Bool("statusz", false, "print the server counters")
	status := flag.String("status", "", "print one job's status")
	cancel := flag.String("cancel", "", "cancel one job")

	// Shared: daemon worker-pool default, client request pin.
	parallel := flag.Int("parallel", 0, "sim worker-pool width (0 = NumCPU)")
	flag.Parse()

	switch {
	case *listen != "" && *addr != "":
		fail(fmt.Errorf("-listen and -addr are mutually exclusive"))
	case *listen != "":
		var ws []string
		if *workers != "" {
			ws = strings.Split(*workers, ",")
		}
		daemon(*listen, serve.Options{
			StoreDir:     *store,
			Workers:      ws,
			WarmCache:    *warmCache,
			WarmVerify:   *warmVerify,
			WarmStoreDir: *warmStore,
			Parallel:     *parallel,
			Logf:         log.Printf,
		})
	case *addr != "":
		cfg := serve.ConfigSpec{Scale: *scale, Parallel: *parallel, StrictOrder: *strictOrder}
		if *sample >= 0 {
			s := *sample
			cfg.Sample = &s
		}
		if *samplingOn {
			cfg.SampleWindows = *sampleWindows
		}
		if *sampleWarmup >= 0 {
			w := *sampleWarmup
			cfg.SampleWarmup = &w
		}
		cfg.SamplePeriod = *samplePeriod
		client(*addr, clientArgs{
			run: *run, set: set, axes: axes, cfg: cfg, json: *jsonOut, quiet: *quiet,
			list: *list, statusz: *statusz, status: *status, cancel: *cancel,
		})
	default:
		fail(fmt.Errorf("pick a mode: -listen ADDR (daemon) or -addr URL (client); see -h"))
	}
}

// daemon serves the API until SIGINT/SIGTERM.
func daemon(listen string, opts serve.Options) {
	s, err := serve.New(opts)
	if err != nil {
		fail(err)
	}
	mode := "worker"
	if len(opts.Workers) > 0 {
		mode = fmt.Sprintf("coordinator over %v", opts.Workers)
	}
	log.Printf("widxserve: %s (build %s) listening on %s", mode, s.Build(), listen)
	if opts.StoreDir != "" {
		log.Printf("widxserve: result store at %s", opts.StoreDir)
	}

	srv := &http.Server{Addr: listen, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("widxserve: shutting down")
		srv.Shutdown(context.Background())
		s.Close()
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fail(err)
	}
}

type clientArgs struct {
	run     string
	set     map[string]string
	axes    []exp.Axis
	cfg     serve.ConfigSpec
	json    bool
	quiet   bool
	list    bool
	statusz bool
	status  string
	cancel  string
}

// client performs one API interaction against a daemon.
func client(addr string, a clientArgs) {
	c := serve.NewClient(addr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case a.list:
		infos, err := c.Experiments(ctx)
		if err != nil {
			fail(err)
		}
		for _, in := range infos {
			line := in.Name
			if len(in.Aliases) > 0 {
				line += " (" + strings.Join(in.Aliases, ", ") + ")"
			}
			fmt.Println(line)
		}
	case a.statusz:
		sz, err := c.Statusz(ctx)
		if err != nil {
			fail(err)
		}
		fmt.Printf("build:            %s\n", sz.Build)
		fmt.Printf("mode:             %s\n", sz.Mode)
		fmt.Printf("simulated points: %d\n", sz.SimulatedPoints)
		fmt.Printf("sampled points:   %d\n", sz.SampledPoints)
		if sz.ResultStore != nil {
			fmt.Printf("result store:     %d entries, %d hits, %d misses\n",
				sz.ResultStore.Entries, sz.ResultStore.Hits, sz.ResultStore.Misses)
		}
		if sz.WarmCache != nil {
			fmt.Printf("warm cache:       %d hits, %d misses\n", sz.WarmCache.Hits, sz.WarmCache.Misses)
		}
	case a.status != "":
		st, err := c.Status(ctx, a.status)
		if err != nil {
			fail(err)
		}
		printStatus(st)
	case a.cancel != "":
		st, err := c.Cancel(ctx, a.cancel)
		if err != nil {
			fail(err)
		}
		printStatus(st)
	case a.run != "":
		runJob(ctx, c, a)
	default:
		fail(fmt.Errorf("client mode needs one of -run, -list, -statusz, -status, -cancel"))
	}
}

// runJob submits, streams progress, and prints the finished artifact.
func runJob(ctx context.Context, c *serve.Client, a clientArgs) {
	req := serve.SubmitRequest{Experiment: a.run, Set: a.set, Sweep: a.axes, Config: a.cfg}
	st, err := c.Submit(ctx, req)
	if err != nil {
		fail(err)
	}
	if !a.quiet {
		fmt.Fprintf(os.Stderr, "widxserve: job %s submitted\n", st.ID)
	}
	st, err = c.Watch(ctx, st.ID, func(ev serve.Event) {
		if a.quiet {
			return
		}
		switch {
		case ev.Type == "point" && ev.Cached:
			fmt.Fprintf(os.Stderr, "widxserve: point %d/%d (cached)\n", ev.Done, ev.Total)
		case ev.Type == "point":
			fmt.Fprintf(os.Stderr, "widxserve: point %d/%d\n", ev.Done, ev.Total)
		}
	})
	if err != nil {
		// Interrupted mid-watch: leave the job cancelled, not orphaned.
		if ctx.Err() != nil {
			cctx, ccancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer ccancel()
			c.Cancel(cctx, st.ID)
		}
		fail(err)
	}
	if st.State != serve.JobDone {
		fail(fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error))
	}
	var out []byte
	if a.json {
		out, err = c.Manifest(ctx, st.ID)
	} else if out, err = c.Text(ctx, st.ID); err == nil {
		// The separator newline cmd/experiments prints after a report.
		out = append(out, '\n')
	}
	if err != nil {
		fail(err)
	}
	os.Stdout.Write(out)
}

func printStatus(st serve.JobStatus) {
	fmt.Printf("job:    %s\n", st.ID)
	fmt.Printf("state:  %s\n", st.State)
	fmt.Printf("points: %d/%d done, %d cached\n", st.Done, st.Total, st.Cached)
	if st.Error != "" {
		fmt.Printf("error:  %s\n", st.Error)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "widxserve:", err)
	os.Exit(1)
}
