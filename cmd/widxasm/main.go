// Command widxasm assembles and disassembles Widx unit programs and prints
// the Table 1 ISA summary.
//
// Usage:
//
//	widxasm -table                    print the ISA and per-unit legality
//	widxasm file.wasm                 assemble and validate a program
//	widxasm -disasm file.wasm         assemble, then print the disassembly
//	widxasm -builtin layout:hash      print a generated built-in program set
//	                                  (layout: inline|indirect, hash: simple|robust)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"widx/internal/hashidx"
	"widx/internal/isa"
	"widx/internal/program"
)

func main() {
	table := flag.Bool("table", false, "print the Table 1 ISA summary")
	disasm := flag.Bool("disasm", false, "print the disassembly of the assembled program")
	builtin := flag.String("builtin", "", "print the generated programs for layout:hash (e.g. inline:simple)")
	flag.Parse()

	switch {
	case *table:
		printTable()
	case *builtin != "":
		if err := printBuiltin(*builtin); err != nil {
			fail(err)
		}
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		p, err := isa.Assemble(string(src))
		if err != nil {
			fail(err)
		}
		fmt.Printf("program %q: %s unit, %d instructions, %d memory ops/item, %d compute ops/item\n",
			p.Name, p.Kind, len(p.Code), p.MemOpsPerItem(), p.ComputeOps())
		if *disasm {
			fmt.Print(isa.Disassemble(p))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "widxasm:", err)
	os.Exit(1)
}

func printTable() {
	fmt.Println("Table 1 — Widx ISA (H = dispatcher, W = walker, P = output producer)")
	fmt.Printf("%-10s %3s %3s %3s\n", "instr", "H", "W", "P")
	ops := []isa.Opcode{isa.ADD, isa.AND, isa.BA, isa.BLE, isa.CMP, isa.CMPLE, isa.LD,
		isa.SHL, isa.SHR, isa.ST, isa.TOUCH, isa.XOR, isa.ADDSHF, isa.ANDSHF, isa.XORSHF}
	mark := func(ok bool) string {
		if ok {
			return "X"
		}
		return ""
	}
	for _, op := range ops {
		fmt.Printf("%-10s %3s %3s %3s\n", strings.ToUpper(op.String()),
			mark(op.LegalFor(isa.Dispatcher)), mark(op.LegalFor(isa.Walker)), mark(op.LegalFor(isa.Producer)))
	}
}

func printBuiltin(arg string) error {
	parts := strings.Split(arg, ":")
	if len(parts) != 2 {
		return fmt.Errorf("expected layout:hash, got %q", arg)
	}
	spec := program.Spec{
		BucketBase: 0x1_0000_0000,
		BucketMask: 0xFFFF,
		ResultBase: 0x2_0000_0000,
	}
	switch parts[0] {
	case "inline":
		spec.Layout, spec.NodeSize = hashidx.LayoutInline, hashidx.InlineNodeSize
	case "indirect":
		spec.Layout, spec.NodeSize = hashidx.LayoutIndirect, hashidx.IndirectNodeSize
	default:
		return fmt.Errorf("unknown layout %q", parts[0])
	}
	switch parts[1] {
	case "simple":
		spec.Hash = hashidx.HashSimple
	case "robust":
		spec.Hash = hashidx.HashRobust
	default:
		return fmt.Errorf("unknown hash %q", parts[1])
	}
	bundle, err := program.Build(spec)
	if err != nil {
		return err
	}
	for _, p := range []*isa.Program{bundle.Dispatcher, bundle.Walker, bundle.Producer} {
		fmt.Printf("; ---- %s (%s) ----\n%s\n", p.Name, p.Kind, isa.Disassemble(p))
	}
	return nil
}
