package main

import (
	"strings"
	"testing"

	"widx/internal/exp"
)

func TestKVFlag(t *testing.T) {
	f := kvFlag{}
	for _, s := range []string{"agents=1xooo+2xwidx:4w", "size=Small"} {
		if err := f.Set(s); err != nil {
			t.Fatal(err)
		}
	}
	if f["agents"] != "1xooo+2xwidx:4w" || f["size"] != "Small" {
		t.Fatalf("kvFlag = %v", f)
	}
	for _, bad := range []string{"", "noequals", "=v"} {
		if err := (kvFlag{}).Set(bad); err == nil {
			t.Errorf("-set %q should be rejected", bad)
		}
	}
}

func TestAxisFlag(t *testing.T) {
	var f axisFlag
	if err := f.Set("agents=a,b"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("queue-depth=2,4,8"); err != nil {
		t.Fatal(err)
	}
	if len(f) != 2 || f[0].Key != "agents" || len(f[1].Values) != 3 {
		t.Fatalf("axisFlag = %+v", f)
	}
	if err := f.Set("bad"); err == nil {
		t.Error("-sweep without values should be rejected")
	}
}

// TestKnownSubset checks the -run all override filter: every experiment
// receives only the -set keys it declares, so a cmp-only override does not
// fail the other experiments.
func TestKnownSubset(t *testing.T) {
	set := map[string]string{"agents": "2xooo", "scale": "0.01"}
	cmp, _ := exp.Lookup("cmp")
	model, _ := exp.Lookup("model")
	if got := knownSubset(cmp, set); got["agents"] != "2xooo" || got["scale"] != "0.01" {
		t.Fatalf("cmp subset = %v", got)
	}
	if got := knownSubset(model, set); len(got) != 1 || got["scale"] != "0.01" {
		t.Fatalf("model subset = %v (agents must be filtered, scale kept)", got)
	}
}

// TestRejectUnknownKeys pins the -run all typo guard: a -set key no
// registered experiment declares is an error, not a silent full-suite run
// at defaults, while keys any experiment takes pass.
func TestRejectUnknownKeys(t *testing.T) {
	if err := rejectUnknownKeys(map[string]string{"agents": "2xooo", "scale": "0.01"}); err != nil {
		t.Fatalf("valid overrides rejected: %v", err)
	}
	err := rejectUnknownKeys(map[string]string{"sacle": "0.01"})
	if err == nil || !strings.Contains(err.Error(), "sacle") {
		t.Fatalf("typo'd -set key not rejected: %v", err)
	}
}
