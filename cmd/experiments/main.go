// Command experiments is a thin driver over the internal/exp registry: it
// lists, describes, runs and sweeps the registered experiments that
// regenerate every table and figure of the paper's evaluation.
//
// Usage:
//
//	experiments -list
//	experiments -describe [name|all]
//	experiments [-run all|name] [-set k=v]... [-sweep k=v1,v2,...]...
//	            [-json] [-out dir]
//	            [-scale 0.015] [-sample 20000] [-parallel N] [-strict-order]
//	            [-sampling] [-sample-windows N] [-sample-warmup N] [-sample-period N]
//	            [-sampling-verify]
//	            [-agents 4xooo+4xwidx:4w]
//	            [-warm-cache=false] [-warm-cache-verify] [-warm-store DIR]
//	            [-cpuprofile FILE] [-memprofile FILE]
//
// -run accepts the canonical experiment names and their historical aliases
// (fig2, fig4/fig5, fig8, fig9/fig10/fig11, fig5sim); -run all executes
// every experiment in catalog order. -set overrides one experiment
// parameter (repeatable; -describe shows each experiment's parameters and
// defaults, plus the common config knobs
// scale/sample/mshrs/fill-buffers/llc-ways/queue-depth).
// -sweep expands a parameter axis into a full-factorial grid (repeatable,
// one axis per flag) whose runs fan out across the worker pool with
// deterministic result placement — the report is byte-identical at any
// -parallel level.
//
// -sampling turns on systematic sampled simulation (internal/sampling):
// only -sample-windows detailed windows of -sample-warmup unmeasured plus
// -sample-period measured probes run on the timing model, the spans between
// them fast-forward functionally, and headline metrics carry 95% confidence
// intervals in a `sampling` manifest block. The functional output stays
// bit-identical to a full run (fingerprint-checked). -sampling-verify
// additionally re-runs each experiment as its full-detail reference and
// asserts every estimate's interval covers the reference value.
//
// The warm-state cache (-warm-cache, default on) shares built tables and
// warmed hierarchies across runs and grid points that differ only in
// warm-invariant (timing) knobs; results are byte-identical either way.
// -warm-cache-verify rebuilds on every hit and cross-checks content hashes
// (slow; debugs parameter classification). -warm-store DIR persists warm
// snapshots (fast-forward checkpoints, CMP warm-ups) under DIR so later
// processes restore instead of re-warming. -cpuprofile/-memprofile write
// pprof profiles of the invocation.
//
// -json prints the run's reproducibility manifest (resolved config + params
// + results) to stdout instead of the text report; -out DIR writes
// <name>.txt and <name>.json into DIR in addition to stdout. -agents (the
// historical cmp flag) is exactly -set agents=...: under -run all only the
// experiments that take agents receive it, and a single run of an
// experiment that does not take it is rejected like any other unknown
// parameter (the historical CLI silently ignored it there).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"widx/internal/exp"
	"widx/internal/profiling"
	"widx/internal/sim"
	"widx/internal/warmstate"
)

// kvFlag collects repeatable -set k=v flags.
type kvFlag map[string]string

func (f kvFlag) String() string { return fmt.Sprint(map[string]string(f)) }

func (f kvFlag) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	k = strings.TrimSpace(k)
	if !ok || k == "" {
		return fmt.Errorf("want key=value, got %q", s)
	}
	f[k] = v
	return nil
}

// axisFlag collects repeatable -sweep key=v1,v2,... flags.
type axisFlag []exp.Axis

func (f *axisFlag) String() string { return fmt.Sprint([]exp.Axis(*f)) }

func (f *axisFlag) Set(s string) error {
	ax, err := exp.ParseAxis(s)
	if err != nil {
		return err
	}
	*f = append(*f, ax)
	return nil
}

func main() {
	list := flag.Bool("list", false, "list the registered experiments and exit")
	describe := flag.String("describe", "", "print the catalog entry for one experiment (or \"all\") and exit")
	run := flag.String("run", "all", "experiment to run: all, a registered name, or a historical alias (fig2..fig11, fig5sim)")
	set := kvFlag{}
	flag.Var(set, "set", "override one experiment parameter as key=value (repeatable)")
	var axes axisFlag
	flag.Var(&axes, "sweep", "sweep one parameter axis as key=v1,v2,... (repeatable; axes form a grid)")
	jsonOut := flag.Bool("json", false, "print the run manifest (resolved config + params + results) as JSON instead of the text report")
	outDir := flag.String("out", "", "also write <name>.txt and <name>.json per run into this directory")
	scale := flag.Float64("scale", 1.0/64, "workload scale relative to the paper's setup")
	sample := flag.Int("sample", 20000, "probes simulated in detail per design (0 = all)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for independent design points and sweep runs (1 = sequential)")
	strictOrder := flag.Bool("strict-order", false, "assert that memory accesses reach the hierarchy in monotonic cycle order (debug)")
	agentsSpec := flag.String("agents", "", "agent mix for the cmp experiment (shorthand for -set agents=...)")
	samplingOn := flag.Bool("sampling", false, "systematic sampled simulation: detailed windows + functional fast-forward, 95% CIs in the manifest")
	sampleWindows := flag.Int("sample-windows", 30, "detailed windows per design point (with -sampling)")
	sampleWarmup := flag.Int("sample-warmup", 64, "detailed-but-unmeasured probes per window")
	samplePeriod := flag.Int("sample-period", 256, "measured probes per window")
	samplingVerify := flag.Bool("sampling-verify", false, "re-run each experiment as a full-detail reference and assert the sampled intervals cover it (implies -sampling)")
	warmCache := flag.Bool("warm-cache", true, "share built workloads and warmed hierarchies across runs that differ only in timing knobs (results are byte-identical either way)")
	warmVerify := flag.Bool("warm-cache-verify", false, "rebuild on every warm-cache hit and cross-check content hashes (slow; debugs key classification)")
	warmStore := flag.String("warm-store", "", "persist warm-state snapshots (fast-forward checkpoints, CMP warm-ups) under this directory across processes")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, perr := profiling.Start(*cpuProfile, *memProfile)
	if perr != nil {
		fail(perr)
	}
	defer stopProfiles()

	if *list {
		fmt.Print(exp.List())
		return
	}
	if *describe != "" {
		text, err := exp.Describe(*describe)
		if err != nil {
			fail(err)
		}
		fmt.Print(text)
		return
	}

	cfg := sim.DefaultConfig()
	cfg.Scale = *scale
	cfg.SampleProbes = *sample
	cfg.Parallelism = *parallel
	cfg.StrictMemOrder = *strictOrder
	if *sampleWarmup < 0 {
		fail(fmt.Errorf("-sample-warmup must be non-negative"))
	}
	if *samplePeriod <= 0 {
		fail(fmt.Errorf("-sample-period must be positive"))
	}
	cfg.SampleWarmup = uint64(*sampleWarmup)
	cfg.SamplePeriod = uint64(*samplePeriod)
	if *samplingVerify {
		*samplingOn = true
	}
	if *samplingOn {
		cfg.SampleWindows = *sampleWindows
	}
	if *warmCache || *warmVerify {
		cfg.WarmCache = warmstate.New()
		cfg.WarmCache.SetVerify(*warmVerify)
	}
	if *warmStore != "" {
		if cfg.WarmCache == nil {
			fail(fmt.Errorf("-warm-store needs -warm-cache"))
		}
		store, err := warmstate.OpenDiskStore(*warmStore)
		if err != nil {
			fail(err)
		}
		cfg.WarmStore = store
	}
	if *agentsSpec != "" {
		set["agents"] = *agentsSpec
	}

	if strings.EqualFold(*run, "all") {
		if len(axes) > 0 || *jsonOut {
			fail(fmt.Errorf("-sweep and -json need a single experiment; use -run <name>"))
		}
		if err := rejectUnknownKeys(set); err != nil {
			fail(err)
		}
		for _, name := range exp.Names() {
			e, _ := exp.Lookup(name)
			sub := knownSubset(e, set)
			out, err := exp.Run(e, cfg, sub)
			if err != nil {
				fail(err)
			}
			if err := emit(out, false, *outDir); err != nil {
				fail(err)
			}
			// Under -run all, only the experiments that actually produced a
			// sampled estimate are verified; the analytic studies carry none.
			if r, ok := out.Result.(sim.SamplingReporter); *samplingVerify && ok && r.SamplingReport() != nil {
				if err := exp.VerifySampled(e, cfg, sub, out.Result); err != nil {
					fail(err)
				}
				fmt.Fprintf(os.Stderr, "experiments: %s: sampled estimates verified against the full-detail reference\n", name)
			}
		}
		return
	}

	e, ok := exp.Lookup(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (see -list)\n", *run)
		os.Exit(2)
	}
	var out *exp.RunOutput
	var err error
	if len(axes) > 0 {
		if *samplingVerify {
			fail(fmt.Errorf("-sampling-verify verifies a single run; drop -sweep"))
		}
		out, err = exp.RunSweep(e, cfg, set, axes)
	} else {
		out, err = exp.Run(e, cfg, set)
	}
	if err != nil {
		fail(err)
	}
	if err := emit(out, *jsonOut, *outDir); err != nil {
		fail(err)
	}
	if *samplingVerify && len(axes) == 0 {
		if err := exp.VerifySampled(e, cfg, set, out.Result); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "experiments: %s: sampled estimates verified against the full-detail reference\n", e.Name())
	}
}

// rejectUnknownKeys fails -run all when a -set key is accepted by no
// registered experiment: knownSubset's per-experiment filtering must not
// hide a typo behind a full suite run at defaults.
func rejectUnknownKeys(set map[string]string) error {
	known := map[string]bool{}
	for _, name := range exp.Names() {
		e, _ := exp.Lookup(name)
		for _, s := range exp.AllParams(e) {
			known[s.Key] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !known[k] {
			return fmt.Errorf("no experiment takes parameter %q (see -describe all)", k)
		}
	}
	return nil
}

// knownSubset filters -set overrides down to the parameters one experiment
// accepts, so -run all can carry overrides that only apply to some
// experiments (the historical -agents behavior).
func knownSubset(e exp.Experiment, set map[string]string) map[string]string {
	known := map[string]bool{}
	for _, s := range exp.AllParams(e) {
		known[s.Key] = true
	}
	out := map[string]string{}
	for k, v := range set {
		if known[k] {
			out[k] = v
		}
	}
	return out
}

// emit prints the run to stdout (text report, or the manifest with -json)
// and, when outDir is set, writes both artifacts into it.
func emit(out *exp.RunOutput, jsonOut bool, outDir string) error {
	var manifest []byte
	if jsonOut || outDir != "" {
		m, err := out.Manifest()
		if err != nil {
			return err
		}
		if manifest, err = m.Encode(); err != nil {
			return err
		}
	}
	if jsonOut {
		if _, err := os.Stdout.Write(manifest); err != nil {
			return err
		}
	} else {
		fmt.Print(out.Text() + "\n")
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		name := out.Experiment.Name()
		if err := exp.WriteOutput(filepath.Join(outDir, name+".txt"), []byte(out.Text())); err != nil {
			return err
		}
		if err := exp.WriteOutput(filepath.Join(outDir, name+".json"), manifest); err != nil {
			return err
		}
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
