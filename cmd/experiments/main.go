// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them as text tables: the Figure 2 breakdowns, the
// Figure 4/5 analytical-model sweeps, the Figure 8 hash-join kernel study,
// the Figure 9/10 DSS query study, the Figure 11 energy comparison and the
// hashing-organization ablation.
//
// Usage:
//
//	experiments [-run all|fig2|fig4|fig5|fig5sim|fig8|fig9|fig10|fig11|ablation|cmp]
//	            [-scale 0.015] [-sample 20000] [-parallel N]
//	            [-agents 4xwidx:4w]
//
// fig5sim is the walker-utilization sweep (1-8 walkers) driven by the
// simulator's exact MSHR-occupancy histogram instead of the Figure 5
// analytical model. cmp is the shared-memory CMP contention experiment:
// the -agents machines co-run on one shared LLC / MSHR pool / bandwidth
// schedule, each probing its own partition, and are compared against solo
// reference runs.
//
// Design points are independent experiments, so -parallel fans them out to N
// worker goroutines (default: all CPUs); the output is byte-identical at any
// parallelism level.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"widx/internal/join"
	"widx/internal/model"
	"widx/internal/sim"
	"widx/internal/workloads"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, fig2, fig4, fig5, fig5sim, fig8, fig9, fig10, fig11, ablation, cmp")
	scale := flag.Float64("scale", 1.0/64, "workload scale relative to the paper's setup")
	sample := flag.Int("sample", 20000, "probes simulated in detail per design (0 = all)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for independent design points (1 = sequential)")
	strictOrder := flag.Bool("strict-order", false, "assert that memory accesses reach the hierarchy in monotonic cycle order (debug)")
	agentsSpec := flag.String("agents", "4xwidx:4w", "agent mix for -run cmp, e.g. 4xooo+4xwidx:4w")
	flag.Parse()

	cfg := sim.DefaultConfig()
	cfg.Scale = *scale
	cfg.SampleProbes = *sample
	cfg.Parallelism = *parallel
	cfg.StrictMemOrder = *strictOrder

	want := func(name string) bool { return *run == "all" || strings.EqualFold(*run, name) }
	printed := false

	if want("fig4") || want("fig5") {
		fmt.Print(sim.FormatModel(model.Default()))
		fmt.Println()
		printed = true
	}
	if want("fig2") {
		rows, err := cfg.RunBreakdowns(false)
		if err != nil {
			fail(err)
		}
		fmt.Print(sim.FormatBreakdowns(rows))
		fmt.Println()
		printed = true
	}
	if want("fig8") {
		exp, err := cfg.RunKernel([]join.SizeClass{join.Small, join.Medium, join.Large})
		if err != nil {
			fail(err)
		}
		fmt.Print(sim.FormatKernel(exp))
		fmt.Println()
		printed = true
	}
	if want("fig9") || want("fig10") || want("fig11") {
		suite, err := cfg.RunSimulatedQueries()
		if err != nil {
			fail(err)
		}
		fmt.Print(sim.FormatQueries(suite))
		fmt.Println()
		fmt.Print(sim.FormatEnergy(suite))
		fmt.Println()
		printed = true
	}
	if want("fig5sim") {
		points, err := cfg.RunWalkerUtilization(join.Medium, 8)
		if err != nil {
			fail(err)
		}
		fmt.Print(sim.FormatWalkerUtilization(points, cfg.Mem.L1MSHRs))
		fmt.Println()
		printed = true
	}
	if want("cmp") {
		specs, err := sim.ParseAgents(*agentsSpec)
		if err != nil {
			fail(err)
		}
		exp, err := cfg.RunCMP(join.Medium, specs)
		if err != nil {
			fail(err)
		}
		fmt.Print(sim.FormatCMP(exp))
		fmt.Println()
		printed = true
	}
	if want("ablation") {
		q20, err := workloads.ByName(workloads.TPCH, "q20")
		if err != nil {
			fail(err)
		}
		ab, err := cfg.RunHashingAblation(q20, 4)
		if err != nil {
			fail(err)
		}
		fmt.Print(sim.FormatAblation(ab, "TPC-H q20"))
		printed = true
	}
	if !printed {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
