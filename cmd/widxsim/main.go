// Command widxsim runs one simulation configuration — either the hash-join
// kernel or a named DSS query — on the baseline cores and on Widx, and prints
// the resulting report.
//
// Usage:
//
//	widxsim -kernel Large  [-scale 0.01] [-sample 20000] [-parallel N]
//	widxsim -suite TPC-H -query q17 [-scale 0.01] [-sample 20000] [-parallel N]
//
// -parallel fans the independent design points out to N worker goroutines
// (default: all CPUs) without changing any reported number.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"widx/internal/join"
	"widx/internal/sim"
	"widx/internal/workloads"
)

func main() {
	kernel := flag.String("kernel", "", "hash-join kernel size class: Small, Medium or Large")
	suite := flag.String("suite", "TPC-H", "benchmark suite: TPC-H or TPC-DS")
	query := flag.String("query", "", "query name, e.g. q17")
	scale := flag.Float64("scale", 1.0/64, "workload scale relative to the paper's setup")
	sample := flag.Int("sample", 20000, "probes simulated in detail per design (0 = all)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for independent design points (1 = sequential)")
	flag.Parse()

	cfg := sim.DefaultConfig()
	cfg.Scale = *scale
	cfg.SampleProbes = *sample
	cfg.Parallelism = *parallel

	switch {
	case *kernel != "":
		size, err := parseSize(*kernel)
		if err != nil {
			fail(err)
		}
		exp, err := cfg.RunKernel([]join.SizeClass{size})
		if err != nil {
			fail(err)
		}
		fmt.Print(sim.FormatKernel(exp))
	case *query != "":
		s, err := parseSuite(*suite)
		if err != nil {
			fail(err)
		}
		q, err := workloads.ByName(s, *query)
		if err != nil {
			fail(err)
		}
		res, err := cfg.RunQuery(q)
		if err != nil {
			fail(err)
		}
		suiteRes := &sim.SuiteResult{Queries: []*sim.QueryResult{res},
			GeoMeanIndexSpeedup: map[int]float64{4: res.IndexSpeedup[4]},
			GeoMeanQuerySpeedup: res.QuerySpeedup4W,
			InOrderSlowdown:     res.InOrderCyclesPerTuple / res.OoOCyclesPerTuple}
		fmt.Print(sim.FormatQueries(suiteRes))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "widxsim:", err)
	os.Exit(1)
}

func parseSize(s string) (join.SizeClass, error) {
	switch s {
	case "Small", "small":
		return join.Small, nil
	case "Medium", "medium":
		return join.Medium, nil
	case "Large", "large":
		return join.Large, nil
	}
	return 0, fmt.Errorf("unknown kernel size %q", s)
}

func parseSuite(s string) (workloads.Suite, error) {
	switch s {
	case "TPC-H", "tpch", "tpc-h":
		return workloads.TPCH, nil
	case "TPC-DS", "tpcds", "tpc-ds":
		return workloads.TPCDS, nil
	}
	return 0, fmt.Errorf("unknown suite %q", s)
}
