// Command widxsim runs one simulation configuration — the hash-join kernel,
// a named DSS query, or a shared-memory multi-agent (CMP) contention run —
// and prints the resulting report.
//
// Usage:
//
//	widxsim -kernel Large  [-scale 0.01] [-sample 20000] [-parallel N]
//	widxsim -suite TPC-H -query q17 [-scale 0.01] [-sample 20000] [-parallel N]
//	widxsim -agents 4xooo+4xwidx:4w [-kernel Medium] [-scale 0.1] [-sample 5000]
//
// -agents co-schedules the specified agents — "Nx" replicated widx[:Ww],
// ooo, or inorder machines, joined with "+" — on one shared LLC / MSHR pool
// / memory-bandwidth schedule, each probing its own partition's hash table
// of the -kernel size class (default Medium), and reports per-agent and
// system-level contention against solo reference runs.
//
// -parallel fans the independent design points out to N worker goroutines
// (default: all CPUs) without changing any reported number.
//
// -breakdown-json PATH additionally dumps the per-walker cycle breakdowns
// and the MSHR-occupancy histograms of every Widx design point as JSON for
// offline plotting ("-" writes to stdout). -strict-order enables the debug
// assertion that all memory accesses reach the hierarchy in monotonically
// non-decreasing cycle order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"widx/internal/join"
	"widx/internal/sim"
	"widx/internal/widx"
	"widx/internal/workloads"
)

func main() {
	kernel := flag.String("kernel", "", "hash-join kernel size class: Small, Medium or Large")
	suite := flag.String("suite", "TPC-H", "benchmark suite: TPC-H or TPC-DS")
	query := flag.String("query", "", "query name, e.g. q17")
	agentsSpec := flag.String("agents", "", "co-run a multi-agent system on one shared hierarchy, e.g. 4xooo+4xwidx:4w")
	scale := flag.Float64("scale", 1.0/64, "workload scale relative to the paper's setup")
	sample := flag.Int("sample", 20000, "probes simulated in detail per design (0 = all)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for independent design points (1 = sequential)")
	breakdownJSON := flag.String("breakdown-json", "", "dump per-walker cycle breakdowns and MSHR-occupancy histograms as JSON to this file (\"-\" = stdout)")
	strictOrder := flag.Bool("strict-order", false, "assert that memory accesses reach the hierarchy in monotonic cycle order (debug)")
	flag.Parse()

	cfg := sim.DefaultConfig()
	cfg.Scale = *scale
	cfg.SampleProbes = *sample
	cfg.Parallelism = *parallel
	cfg.StrictMemOrder = *strictOrder

	switch {
	case *agentsSpec != "":
		specs, err := sim.ParseAgents(*agentsSpec)
		if err != nil {
			fail(err)
		}
		size := join.Medium
		if *kernel != "" {
			size, err = parseSize(*kernel)
			if err != nil {
				fail(err)
			}
		}
		exp, err := cfg.RunCMP(size, specs)
		if err != nil {
			fail(err)
		}
		fmt.Print(sim.FormatCMP(exp))
	case *kernel != "":
		size, err := parseSize(*kernel)
		if err != nil {
			fail(err)
		}
		exp, err := cfg.RunKernel([]join.SizeClass{size})
		if err != nil {
			fail(err)
		}
		fmt.Print(sim.FormatKernel(exp))
		if *breakdownJSON != "" {
			dump := breakdownDump{Workload: "kernel-" + size.String()}
			for _, p := range exp.Points {
				dump.Points = append(dump.Points, newBreakdownPoint(p.Walkers, widx.SharedDispatcher, p.Raw))
			}
			if err := writeDump(*breakdownJSON, dump); err != nil {
				fail(err)
			}
		}
	case *query != "":
		s, err := parseSuite(*suite)
		if err != nil {
			fail(err)
		}
		q, err := workloads.ByName(s, *query)
		if err != nil {
			fail(err)
		}
		res, err := cfg.RunQuery(q)
		if err != nil {
			fail(err)
		}
		suiteRes := &sim.SuiteResult{Queries: []*sim.QueryResult{res},
			GeoMeanIndexSpeedup: map[int]float64{4: res.IndexSpeedup[4]},
			GeoMeanQuerySpeedup: res.QuerySpeedup4W,
			InOrderSlowdown:     res.InOrderCyclesPerTuple / res.OoOCyclesPerTuple}
		fmt.Print(sim.FormatQueries(suiteRes))
		if *breakdownJSON != "" {
			dump := breakdownDump{Workload: fmt.Sprintf("%s-%s", q.Suite, q.Name)}
			for _, w := range cfg.Walkers {
				if raw := res.WidxRaw[w]; raw != nil {
					dump.Points = append(dump.Points, newBreakdownPoint(w, widx.SharedDispatcher, raw))
				}
			}
			if err := writeDump(*breakdownJSON, dump); err != nil {
				fail(err)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// breakdownDump is the -breakdown-json schema: one entry per Widx design
// point carrying what the text report aggregates away — each walker's cycle
// breakdown and the memory system's time-weighted MSHR-occupancy histogram.
type breakdownDump struct {
	Workload string           `json:"workload"`
	Points   []breakdownPoint `json:"points"`
}

type breakdownPoint struct {
	Walkers        int     `json:"walkers"`
	Mode           string  `json:"mode"`
	Tuples         uint64  `json:"tuples"`
	TotalCycles    uint64  `json:"total_cycles"`
	CyclesPerTuple float64 `json:"cycles_per_tuple"`
	// PerWalker[i] is walker i's aggregate cycle breakdown.
	PerWalker []walkerBreakdown `json:"per_walker"`
	// Dispatcher/producer activity (cycles).
	DispatcherBusy  uint64 `json:"dispatcher_busy"`
	DispatcherStall uint64 `json:"dispatcher_stall"`
	ProducerBusy    uint64 `json:"producer_busy"`
	// MSHROccupancyCycles[k] is the number of cycles exactly k L1 MSHRs
	// were live; MSHRSaturated is the share of cycles at the full budget.
	MSHROccupancyCycles []uint64 `json:"mshr_occupancy_cycles"`
	MSHRSaturated       float64  `json:"mshr_saturated_share"`
	PortStallCycles     uint64   `json:"port_stall_cycles"`
	MSHRStallCycles     uint64   `json:"mshr_stall_cycles"`
}

type walkerBreakdown struct {
	Comp uint64 `json:"comp"`
	Mem  uint64 `json:"mem"`
	TLB  uint64 `json:"tlb"`
	Idle uint64 `json:"idle"`
}

func newBreakdownPoint(walkers int, mode widx.HashingMode, r *widx.OffloadResult) breakdownPoint {
	p := breakdownPoint{
		Walkers:             walkers,
		Mode:                mode.String(),
		Tuples:              r.Tuples,
		TotalCycles:         r.TotalCycles,
		CyclesPerTuple:      r.CyclesPerTuple(),
		DispatcherBusy:      r.DispatcherBusy,
		DispatcherStall:     r.DispatcherStall,
		ProducerBusy:        r.ProducerBusy,
		MSHROccupancyCycles: r.MemStats.MSHROccupancy,
		PortStallCycles:     r.MemStats.PortStallCycles,
		MSHRStallCycles:     r.MemStats.MSHRStallCycles,
	}
	if n := len(r.MemStats.MSHROccupancy); n > 0 {
		p.MSHRSaturated = r.MemStats.MSHRSaturationShare(n - 1)
	}
	for _, w := range r.Walkers {
		p.PerWalker = append(p.PerWalker, walkerBreakdown{Comp: w.Comp, Mem: w.Mem, TLB: w.TLB, Idle: w.Idle})
	}
	return p
}

// writeDump serializes the dump to path ("-" = stdout).
func writeDump(path string, dump breakdownDump) error {
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "widxsim:", err)
	os.Exit(1)
}

func parseSize(s string) (join.SizeClass, error) {
	switch s {
	case "Small", "small":
		return join.Small, nil
	case "Medium", "medium":
		return join.Medium, nil
	case "Large", "large":
		return join.Large, nil
	}
	return 0, fmt.Errorf("unknown kernel size %q", s)
}

func parseSuite(s string) (workloads.Suite, error) {
	switch s {
	case "TPC-H", "tpch", "tpc-h":
		return workloads.TPCH, nil
	case "TPC-DS", "tpcds", "tpc-ds":
		return workloads.TPCDS, nil
	}
	return 0, fmt.Errorf("unknown suite %q", s)
}
