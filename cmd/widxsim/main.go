// Command widxsim runs one simulation configuration — the hash-join kernel,
// the workload zoo of pointer-chasing traversal structures, a named DSS
// query, or a shared-memory multi-agent (CMP) contention run — and prints
// the resulting report.
//
// Usage:
//
//	widxsim -kernel Large  [-scale 0.01] [-sample 20000] [-parallel N]
//	widxsim -structure skiplist,btree,lsm [-scale 0.01] [-sample 20000] [-parallel N]
//	widxsim -suite TPC-H -query q17 [-scale 0.01] [-sample 20000] [-parallel N]
//	widxsim -agents 4xooo+4xwidx:4w [-kernel Medium] [-structure btree] [-scale 0.1] [-sample 5000]
//
// -structure runs the workload zoo: each listed traversal structure (hashjoin,
// skiplist, btree, lsm, bfs) is built into the simulated address space, its
// generated Widx program's match stream is checked bit-identical to a software
// reference, and walker scaling is reported against the OoO baseline. Combined
// with -agents it instead selects the single structure every co-running
// agent's partition is built as.
//
// -agents co-schedules the specified agents — "Nx" replicated widx[:Ww],
// ooo, or inorder machines, joined with "+", each optionally carrying
// per-agent heterogeneity overrides ":mshrs=N" (private MSHR count) and
// ":ways=N" (LLC allocation ways) — on one shared LLC / fill-buffer pool /
// memory-bandwidth schedule, each probing its own partition's hash table
// of the -kernel size class (default Medium), and reports per-agent and
// system-level contention against solo reference runs. -llc-ways confines
// every Widx agent to that many LLC ways (hosts keep the full LLC),
// -fill-buffers resizes the shared fill-buffer pool behind the per-agent
// MSHRs, and -stagger starts co-running agent i at cycle i*stagger.
//
// -parallel fans the independent design points out to N worker goroutines
// (default: all CPUs) without changing any reported number.
//
// -sampling turns on systematic sampled simulation (internal/sampling):
// only -sample-windows detailed windows of -sample-warmup unmeasured plus
// -sample-period measured probes run on the timing model, the spans
// between them fast-forward functionally, and the report gains a "Sampled
// estimates" section with 95% confidence intervals. The functional output
// stays bit-identical to a full run (fingerprint-checked).
//
// -breakdown-json PATH additionally dumps the per-walker cycle breakdowns
// and the MSHR-occupancy histograms of every Widx design point as JSON for
// offline plotting ("-" writes to stdout), using the same JSON encoding as
// the experiments manifests. -strict-order enables the debug assertion that
// all memory accesses reach the hierarchy in monotonically non-decreasing
// cycle order. The warm-state cache (-warm-cache, default on) shares built
// workloads and warmed hierarchies across the invocation's design points;
// -warm-cache-verify cross-checks every hit; -cpuprofile/-memprofile write
// pprof profiles.
//
// For the registry of full experiments (figure regeneration, parameter
// sweeps, run manifests), see cmd/experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"widx/internal/exp"
	"widx/internal/join"
	"widx/internal/profiling"
	"widx/internal/sim"
	"widx/internal/structures"
	"widx/internal/warmstate"
	"widx/internal/widx"
	"widx/internal/workloads"
)

func main() {
	kernel := flag.String("kernel", "", "hash-join kernel size class: Small, Medium or Large")
	structure := flag.String("structure", "", "run the workload zoo over these traversal structures (comma-separated: hashjoin, skiplist, btree, lsm, bfs); with -agents, the single structure every partition is built as")
	suite := flag.String("suite", "TPC-H", "benchmark suite: TPC-H or TPC-DS")
	query := flag.String("query", "", "query name, e.g. q17")
	agentsSpec := flag.String("agents", "", "co-run a multi-agent system on one shared hierarchy, e.g. 4xooo+4xwidx:4w")
	scale := flag.Float64("scale", 1.0/64, "workload scale relative to the paper's setup")
	sample := flag.Int("sample", 20000, "probes simulated in detail per design (0 = all)")
	fillBuffers := flag.Int("fill-buffers", 0, "shared fill-buffer count of the memory topology (0 = track the per-agent MSHR count)")
	llcWays := flag.Int("llc-ways", 0, "LLC allocation ways per Widx agent; host cores keep the full LLC (0 = unpartitioned)")
	stagger := flag.Uint64("stagger", 0, "arrival stagger for -agents co-runs: agent i starts at cycle i*stagger")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for independent design points (1 = sequential)")
	samplingOn := flag.Bool("sampling", false, "systematic sampled simulation: detailed windows + functional fast-forward, 95% CIs in the report")
	sampleWindows := flag.Int("sample-windows", 30, "detailed windows per design point (with -sampling)")
	sampleWarmup := flag.Int("sample-warmup", 64, "detailed-but-unmeasured probes per window")
	samplePeriod := flag.Int("sample-period", 256, "measured probes per window")
	breakdownJSON := flag.String("breakdown-json", "", "dump per-walker cycle breakdowns and MSHR-occupancy histograms as JSON to this file (\"-\" = stdout)")
	strictOrder := flag.Bool("strict-order", false, "assert that memory accesses reach the hierarchy in monotonic cycle order (debug)")
	warmCache := flag.Bool("warm-cache", true, "share built workloads and warmed hierarchies across runs that differ only in timing knobs (results are byte-identical either way)")
	warmVerify := flag.Bool("warm-cache-verify", false, "rebuild on every warm-cache hit and cross-check content hashes (slow; debugs key classification)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, perr := profiling.Start(*cpuProfile, *memProfile)
	if perr != nil {
		fail(perr)
	}
	defer stopProfiles()

	cfg := sim.DefaultConfig()
	cfg.Scale = *scale
	cfg.SampleProbes = *sample
	cfg.FillBuffers = *fillBuffers
	cfg.LLCWays = *llcWays
	cfg.Stagger = *stagger
	cfg.Parallelism = *parallel
	cfg.StrictMemOrder = *strictOrder
	if *sampleWarmup < 0 {
		fail(fmt.Errorf("-sample-warmup must be non-negative"))
	}
	if *samplePeriod <= 0 {
		fail(fmt.Errorf("-sample-period must be positive"))
	}
	cfg.SampleWarmup = uint64(*sampleWarmup)
	cfg.SamplePeriod = uint64(*samplePeriod)
	if *samplingOn {
		cfg.SampleWindows = *sampleWindows
	}
	if *warmCache || *warmVerify {
		cfg.WarmCache = warmstate.New()
		cfg.WarmCache.SetVerify(*warmVerify)
	}

	switch {
	case *agentsSpec != "":
		specs, err := sim.ParseAgents(*agentsSpec)
		if err != nil {
			fail(err)
		}
		size := join.Medium
		if *kernel != "" {
			size, err = join.ParseSizeClass(*kernel)
			if err != nil {
				fail(err)
			}
		}
		st := structures.HashJoin
		if *structure != "" {
			st, err = structures.ParseKind(*structure)
			if err != nil {
				fail(err)
			}
		}
		cmpExp, err := cfg.RunCMPStructure(size, specs, st)
		if err != nil {
			fail(err)
		}
		fmt.Print(cmpExp.Text())
	case *structure != "":
		kinds, err := structures.ParseKinds(*structure)
		if err != nil {
			fail(err)
		}
		zooExp, err := cfg.RunZoo(sim.ZooOptions{Structures: kinds})
		if err != nil {
			fail(err)
		}
		fmt.Print(zooExp.Text())
	case *kernel != "":
		size, err := join.ParseSizeClass(*kernel)
		if err != nil {
			fail(err)
		}
		kernelExp, err := cfg.RunKernel([]join.SizeClass{size})
		if err != nil {
			fail(err)
		}
		fmt.Print(kernelExp.Text())
		if *breakdownJSON != "" {
			dump := sim.OffloadDump{Workload: "kernel-" + size.String()}
			for _, p := range kernelExp.Points {
				dump.Points = append(dump.Points, sim.NewOffloadDumpPoint(p.Walkers, widx.SharedDispatcher, p.Raw))
			}
			if err := writeDump(*breakdownJSON, &dump); err != nil {
				fail(err)
			}
		}
	case *query != "":
		s, err := workloads.ParseSuite(*suite)
		if err != nil {
			fail(err)
		}
		q, err := workloads.ByName(s, *query)
		if err != nil {
			fail(err)
		}
		res, err := cfg.RunQuery(q)
		if err != nil {
			fail(err)
		}
		suiteRes := &sim.SuiteResult{Queries: []*sim.QueryResult{res},
			GeoMeanIndexSpeedup: map[int]float64{4: res.IndexSpeedup[4]},
			GeoMeanQuerySpeedup: res.QuerySpeedup4W,
			InOrderSlowdown:     res.InOrderCyclesPerTuple / res.OoOCyclesPerTuple}
		fmt.Print(suiteRes.QueriesText())
		if *breakdownJSON != "" {
			dump := sim.OffloadDump{Workload: fmt.Sprintf("%s-%s", q.Suite, q.Name)}
			for _, w := range cfg.Walkers {
				if raw := res.WidxRaw[w]; raw != nil {
					dump.Points = append(dump.Points, sim.NewOffloadDumpPoint(w, widx.SharedDispatcher, raw))
				}
			}
			if err := writeDump(*breakdownJSON, &dump); err != nil {
				fail(err)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeDump serializes the dump through the common JSON encoding and writes
// it to path ("-" = stdout).
func writeDump(path string, dump *sim.OffloadDump) error {
	data, err := dump.JSON()
	if err != nil {
		return err
	}
	return exp.WriteOutput(path, data)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "widxsim:", err)
	os.Exit(1)
}
