// Command widxlint machine-checks the simulator's load-bearing invariants:
// byte-identical output at any -parallel (no map-iteration order in
// anything emitted, no wall-clock/ambient-randomness/environment reads in
// the simulation core), per-agent stats summing to shared totals (every
// field covered by the mem.Stats Add/Sub pair), and an honest experiment
// manifest schema (declared parameters are read, read parameters are
// declared).
//
// Standalone (the CI gate):
//
//	go run ./cmd/widxlint ./...
//	go run ./cmd/widxlint -tests=false ./...          # skip _test.go variants
//	go run ./cmd/widxlint -detmap ./internal/exp/...  # one analyzer only
//
// As a go vet tool (the local workflow — vet caches clean packages, so
// incremental runs are fast):
//
//	go build -o "$(go env GOPATH)/bin/widxlint" ./cmd/widxlint
//	go vet -vettool=$(which widxlint) ./...
//
// Exit status is nonzero iff any diagnostic was reported. Suppress a
// false positive with `//widxlint:ignore <analyzer> <reason>` on the
// offending line or the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"widx/internal/lint"
	"widx/internal/lint/unitchecker"
)

func main() {
	analyzers := lint.Analyzers()

	// cmd/go's vet-tool protocol: -V=full, -flags, or a single *.cfg
	// positional argument.
	args := os.Args[1:]
	if len(args) > 0 {
		last := args[len(args)-1]
		if args[0] == "-V=full" || args[0] == "-flags" || strings.HasSuffix(last, ".cfg") {
			unitchecker.Main("widxlint", args, analyzers)
			return // unreachable; Main exits
		}
	}

	fs := flag.NewFlagSet("widxlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: widxlint [flags] packages...\n\nanalyzers:\n")
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, doc)
		}
		fmt.Fprintf(fs.Output(), "\nflags:\n")
		fs.PrintDefaults()
	}
	tests := fs.Bool("tests", true, "also analyze _test.go files (test package variants)")
	enabled := unitchecker.RegisterFlags(fs, analyzers)
	if err := fs.Parse(args); err != nil {
		os.Exit(1)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		os.Exit(1)
	}

	findings, err := lint.Run(".", *tests, unitchecker.Enabled(analyzers, enabled), patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "widxlint:", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "widxlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
