// Command widxmodel prints the first-order analytical model of Section 3.2:
// the L1 bandwidth, MSHR and off-chip bandwidth constraints on the walker
// count (Figures 4a-4c) and the dispatcher's ability to feed multiple walkers
// (Figure 5).
//
// Usage:
//
//	widxmodel [-mshrs N] [-ports N] [-hashcycles N]
package main

import (
	"flag"
	"fmt"
	"os"

	"widx/internal/model"
	"widx/internal/sim"
)

func main() {
	mshrs := flag.Int("mshrs", 0, "override the L1 MSHR count (0 keeps Table 2's 10)")
	ports := flag.Int("ports", 0, "override the L1 port count (0 keeps Table 2's 2)")
	hashCycles := flag.Float64("hashcycles", 0, "override the hash ALU cycles per key (0 keeps the default)")
	flag.Parse()

	p := model.Default()
	if *mshrs > 0 {
		p.MSHRs = *mshrs
	}
	if *ports > 0 {
		p.L1Ports = *ports
	}
	if *hashCycles > 0 {
		p.HashCompCycles = *hashCycles
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "widxmodel:", err)
		os.Exit(1)
	}
	fmt.Print(sim.ModelFigures{Params: p}.Text())
}
