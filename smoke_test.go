package widx_test

import (
	"runtime"
	"strings"
	"testing"

	"widx/internal/join"
	"widx/internal/sim"
)

// TestHarnessSmoke runs one small kernel experiment end to end so that the
// top-level harness (workload build, baseline core, Widx offload, report
// rendering) is exercised by a plain `go test ./...`, not only by the
// benchmarks in bench_test.go.
func TestHarnessSmoke(t *testing.T) {
	cfg := sim.QuickConfig()
	cfg.Parallelism = runtime.NumCPU()
	exp, err := cfg.RunKernel([]join.SizeClass{join.Small})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.Walkers); len(exp.Points) != want {
		t.Fatalf("kernel points = %d, want %d", len(exp.Points), want)
	}
	p1, ok1 := exp.Point(join.Small, 1)
	p4, ok4 := exp.Point(join.Small, 4)
	if !ok1 || !ok4 {
		t.Fatal("missing 1- or 4-walker point")
	}
	if p1.CyclesPerTuple <= 0 || p4.CyclesPerTuple <= 0 {
		t.Fatalf("non-positive cycles per tuple: %v / %v", p1.CyclesPerTuple, p4.CyclesPerTuple)
	}
	if p4.CyclesPerTuple >= p1.CyclesPerTuple {
		t.Fatalf("4 walkers (%v cpt) should beat 1 walker (%v cpt)",
			p4.CyclesPerTuple, p1.CyclesPerTuple)
	}
	report := exp.Text()
	for _, want := range []string{"Figure 8a", "Figure 8b", "geomean speedup"} {
		if !strings.Contains(report, want) {
			t.Fatalf("kernel report missing %q:\n%s", want, report)
		}
	}
}
