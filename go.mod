module widx

go 1.24
