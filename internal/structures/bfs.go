// BFS frontier expansion: the zoo's scan-then-gather point. The graph is a
// CSR adjacency — a rowptr array, a packed edge array, a per-vertex
// property column — and each probe expands one frontier vertex: load its
// rowptr pair, scan its edge range sequentially, and gather the property
// of every neighbor. Unlike the other structures the dependent chain is
// wide and shallow: the edge scan is perfectly sequential, but every edge
// fans out into a random property load, so the walker's MLP comes from
// the gather side rather than from pointer depth.
package structures

import (
	"fmt"

	"widx/internal/hashidx"
	"widx/internal/isa"
	"widx/internal/stats"
	"widx/internal/vm"
)

const (
	bfsMinDegree    = 1
	bfsDegreeSpread = 15 // degree is uniform in [1, 15], mean 8
)

const bfsPayloadTag = uint64(0xBF) << 40

// bfsProp is vertex v's gathered property — a scrambled, tagged function of
// the id, so a wrong gather address cannot fingerprint clean.
func bfsProp(v uint64) uint64 { return bfsPayloadTag ^ (v * 0x9E3779B1) }

// bfsGraph is one built CSR graph.
type bfsGraph struct {
	rowBase  uint64
	edgeBase uint64
	propBase uint64
	vertices int
	edges    int
	regions  [][2]uint64
}

// buildBFSGraph lays out a random CSR graph: per-vertex degree uniform in
// [1, 15], edge targets uniform over the vertices.
func buildBFSGraph(as *vm.AddressSpace, name string, rng *stats.RNG, vertices int) *bfsGraph {
	g := &bfsGraph{vertices: vertices}
	deg := make([]int, vertices)
	for v := range deg {
		deg[v] = bfsMinDegree + rng.Intn(bfsDegreeSpread)
		g.edges += deg[v]
	}
	g.rowBase = as.AllocAligned(name+".rowptr", uint64(vertices+1)*8)
	g.edgeBase = as.AllocAligned(name+".edges", uint64(g.edges)*8)
	g.propBase = as.AllocAligned(name+".props", uint64(vertices)*8)
	idx := 0
	for v := 0; v < vertices; v++ {
		as.Write64(g.rowBase+uint64(v)*8, uint64(idx))
		for j := 0; j < deg[v]; j++ {
			as.Write64(g.edgeBase+uint64(idx)*8, uint64(rng.Intn(vertices)))
			idx++
		}
		as.Write64(g.propBase+uint64(v)*8, bfsProp(uint64(v)))
	}
	as.Write64(g.rowBase+uint64(vertices)*8, uint64(g.edges))
	g.regions = [][2]uint64{
		{g.rowBase, g.rowBase + uint64(vertices+1)*8},
		{g.edgeBase, g.edgeBase + uint64(g.edges)*8},
		{g.propBase, g.propBase + uint64(vertices)*8},
	}
	return g
}

// discoveryOrder runs a software BFS from vertex 0 (reseeding at the next
// unvisited vertex until every vertex is discovered) and returns the
// discovery order — the probe stream replays frontier expansion in exactly
// the order a BFS would issue it.
func (g *bfsGraph) discoveryOrder(as *vm.AddressSpace) []uint64 {
	visited := make([]bool, g.vertices)
	order := make([]uint64, 0, g.vertices)
	queue := make([]int, 0, g.vertices)
	for seed := 0; seed < g.vertices; seed++ {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		order = append(order, uint64(seed))
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			start := as.Read64(g.rowBase + uint64(v)*8)
			end := as.Read64(g.rowBase + uint64(v)*8 + 8)
			for e := start; e < end; e++ {
				u := int(as.Read64(g.edgeBase + e*8))
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
					order = append(order, uint64(u))
				}
			}
		}
	}
	return order
}

// expand is the software reference for one frontier vertex: the rowptr pair
// load, then one edge load plus one property gather per neighbor.
func (g *bfsGraph) expand(as *vm.AddressSpace, v uint64) (payloads []uint64, steps []hashidx.TraceStep) {
	row := g.rowBase + v*8
	start := as.Read64(row)
	end := as.Read64(row + 8)
	steps = append(steps, hashidx.TraceStep{NodeAddr: row, CompareOps: 1})
	for e := start; e < end; e++ {
		u := as.Read64(g.edgeBase + e*8)
		steps = append(steps, hashidx.TraceStep{
			NodeAddr:     g.edgeBase + e*8,
			KeyFetchAddr: g.propBase + u*8,
			CompareOps:   1,
			Matched:      true,
		})
		payloads = append(payloads, as.Read64(g.propBase+u*8))
	}
	return payloads, steps
}

// walkerProgram generates the frontier-expansion walker. The touching
// variant TOUCHes one cache block ahead in the edge array on every
// iteration, covering the scan's next block before the current edge's
// property gather resolves.
func (g *bfsGraph) walkerProgram(name string, touch bool) *isa.Program {
	touchSrc := ""
	if touch {
		touchSrc = "    touch [r6+64]      ; prefetch the edge scan a block ahead\n"
	}
	return isa.MustAssemble(fmt.Sprintf(`
.unit walker
.name %s
.in r1, r2
.out r3
.const r22, %d        ; edge array
.const r23, %d        ; property column
    ld   r4, [r1]         ; edge range start index
    ld   r5, [r1+8]       ; edge range end index
    addshf r6, r22, r4, 3 ; edge cursor
    addshf r7, r22, r5, 3
    add  r7, r7, #-8      ; last edge address
edge:
    add  r9, r6, #-1
    ble  r7, r9, done     ; cursor past the last edge
%s    ld   r10, [r6]        ; neighbor vertex id
    addshf r11, r23, r10, 3
    ld   r3, [r11]        ; property gather
    emit
    add  r6, r6, #8
    ba   edge
done:
    halt
`, name, g.edgeBase, g.propBase, touchSrc))
}

// bfsInstance is the built BFS workload.
type bfsInstance struct {
	baseInstance
	graph *bfsGraph
}

func buildBFS(as *vm.AddressSpace, cfg BuildConfig) (*bfsInstance, error) {
	rng := stats.NewRNG(cfg.Seed)
	graph := buildBFSGraph(as, cfg.Name+".csr", rng, cfg.Keys)
	order := graph.discoveryOrder(as)
	probes := make([]uint64, cfg.Probes)
	for i := range probes {
		probes[i] = order[i%len(order)]
	}
	probeBase := writeColumn(as, cfg.Name+".probes", probes)

	inst := &bfsInstance{graph: graph}
	inst.kind = BFS
	inst.probeBase = probeBase
	inst.probes = len(probes)
	inst.regions = graph.regions
	inst.geom = Geometry{
		NodeBytes:      8,
		Fanout:         (bfsMinDegree + bfsMinDegree + bfsDegreeSpread - 1) / 2,
		Levels:         2,
		FootprintBytes: regionSpan(inst.regions),
		Locality:       "sequential edge scan fanning into random gathers",
	}
	for i, v := range probes {
		payloads, steps := graph.expand(as, v)
		inst.matches = append(inst.matches, payloads...)
		inst.traces = append(inst.traces, hashidx.ProbeTrace{
			Key:        v,
			KeyAddr:    probeBase + uint64(i)*8,
			HashOps:    1,
			BucketAddr: graph.rowBase + v*8,
			Steps:      steps,
		})
		inst.closeProbe()
	}
	return inst, nil
}

func (b *bfsInstance) Programs(resultBase uint64, opt ProgramOptions) (*Programs, error) {
	d := isa.MustAssemble(fmt.Sprintf(`
.unit dispatcher
.name dispatch_bfs
.in r1
.out r2, r3
.const r21, %d
    ld   r3, [r1]          ; frontier vertex id
    addshf r2, r21, r3, 3  ; its rowptr slot
    emit
    halt
`, b.graph.rowBase))
	w := b.graph.walkerProgram("walk_bfs", opt.TouchWalker)
	return finishPrograms(d, w, resultBase, opt)
}
