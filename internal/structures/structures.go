// Package structures is the workload zoo: pointer-chasing traversal
// structures beyond the hash join, each buildable into a vm.AddressSpace
// and probed three ways from the same image — by a software reference
// traversal (the functional oracle), by the baseline cores replaying the
// reference's dependent-load traces, and by Widx executing a generated
// dispatcher/walker/producer program bundle against the live structure.
//
// The paper's thesis is that Widx walkers are programmable enough to cover
// dependent-pointer index traversal generally, not just hash-bucket chains;
// this package makes that claim measurable. Every implementation follows
// the hashidx cross-check discipline: the generated walker program must
// produce a match stream bit-identical to the software reference (the sim
// layer enforces this on every run, and golden tests pin the fingerprints).
//
// The zoo's four structures beyond the hash join sit at deliberately
// different node-size / fanout / locality points:
//
//   - skip list: tall towers of thin pointers, one dependent load per
//     level step, near-zero spatial locality (nodes are placement-shuffled)
//   - B+-tree: fat 128-byte nodes, fanout 8, two cache blocks of spatial
//     locality per descent step, plus range probes that walk leaf chains
//   - LSM lookup: a skip-list memtable in front of per-level SSTable fence
//     binary searches and 128-byte block scans — a mixed-locality pipeline
//     with early exit on the newest hit
//   - BFS frontier expansion: CSR rowptr/edge/property arrays — sequential
//     edge scans fanning out into random property gathers
//
// Programs use the internal/program register conventions (dispatcher
// r1 -> r2,r3; walker r1,r2 -> r3; producer r1 with the r20 cursor), so the
// bundles drop into internal/widx and the cycle-interleaved scheduler
// unchanged.
package structures

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"widx/internal/hashidx"
	"widx/internal/isa"
	"widx/internal/program"
	"widx/internal/stats"
	"widx/internal/vm"
)

// Kind identifies one traversal structure of the zoo.
type Kind uint8

const (
	// HashJoin is the paper's hash-join bucket-chain walk (internal/hashidx,
	// inline layout) — the zoo's calibration point.
	HashJoin Kind = iota
	// SkipList is a tower-descent skip-list lookup.
	SkipList
	// BTree is a B+-tree descent with point and range probes.
	BTree
	// LSM is an LSM lookup: skip-list memtable, then per-level SSTable
	// fence binary search and block scan, newest hit wins.
	LSM
	// BFS is graph BFS frontier expansion over a CSR adjacency.
	BFS

	numKinds
)

// Kinds lists every structure in canonical (sweep-axis) order.
func Kinds() []Kind { return []Kind{HashJoin, SkipList, BTree, LSM, BFS} }

// String names the kind; the names are the sweep-axis values.
func (k Kind) String() string {
	switch k {
	case HashJoin:
		return "hashjoin"
	case SkipList:
		return "skiplist"
	case BTree:
		return "btree"
	case LSM:
		return "lsm"
	case BFS:
		return "bfs"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// MarshalText encodes the kind by name, so JSON manifests and the serve
// catalog carry "skiplist" rather than opaque enum values.
func (k Kind) MarshalText() ([]byte, error) {
	if k >= numKinds {
		return nil, fmt.Errorf("structures: unknown kind %d", uint8(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText decodes a kind name, so manifests round-trip (the WarmClass
// lesson: a JSON-surfaced enum without UnmarshalText breaks the first
// client that decodes what it encoded).
func (k *Kind) UnmarshalText(text []byte) error {
	parsed, err := ParseKind(string(text))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// ParseKind resolves a structure name (case-insensitive).
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "hashjoin", "hash", "hj":
		return HashJoin, nil
	case "skiplist", "skip":
		return SkipList, nil
	case "btree", "b+tree", "bplustree":
		return BTree, nil
	case "lsm":
		return LSM, nil
	case "bfs", "graph":
		return BFS, nil
	}
	return 0, fmt.Errorf("structures: unknown structure %q (want hashjoin, skiplist, btree, lsm or bfs)", s)
}

// ParseKinds resolves a comma-separated structure list.
func ParseKinds(s string) ([]Kind, error) {
	var out []Kind
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		k, err := ParseKind(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("structures: no structures in %q", s)
	}
	return out, nil
}

// BuildConfig sizes one structure build.
type BuildConfig struct {
	// Kind selects the structure.
	Kind Kind
	// Keys is the resident element count (vertices for BFS).
	Keys int
	// Probes is the probe-stream length.
	Probes int
	// Span is the B+-tree range-probe span: the number of consecutive key
	// values each probe covers (1 = point probe; other structures ignore it).
	Span int
	// Seed drives every random choice of the build and the probe stream.
	Seed uint64
	// Name prefixes the structure's region names; it must be unique within
	// the address space (CMP co-runs build one partition per agent).
	Name string
}

func (cfg BuildConfig) validate() error {
	if cfg.Keys <= 0 {
		return fmt.Errorf("structures: need a positive key count")
	}
	if cfg.Probes <= 0 {
		return fmt.Errorf("structures: need a positive probe count")
	}
	if cfg.Span < 0 {
		return fmt.Errorf("structures: negative range span")
	}
	if cfg.Name == "" {
		return fmt.Errorf("structures: BuildConfig needs a region-name prefix")
	}
	return nil
}

// Geometry summarizes the structure's traversal shape — the node-size /
// fanout / locality point it occupies in the zoo.
type Geometry struct {
	// NodeBytes is the traversal node stride.
	NodeBytes int `json:"node_bytes"`
	// Fanout is the branching factor per traversal step (chain targets per
	// bucket, tree fanout, average degree).
	Fanout int `json:"fanout"`
	// Levels is the dependent-step depth of a typical probe.
	Levels int `json:"levels"`
	// FootprintBytes is the resident structure size (probe column excluded).
	FootprintBytes uint64 `json:"footprint_bytes"`
	// Locality is a one-phrase access-pattern description for reports.
	Locality string `json:"locality"`
}

// ProgramOptions are the program-generation knobs; they never change the
// match stream, only the memory-level parallelism of the generated code.
type ProgramOptions struct {
	// PrefetchDist makes the dispatcher TOUCH the probe-key column this
	// many keys ahead of the key it is about to load (0 = no prefetch).
	PrefetchDist int
	// TouchWalker selects the walker variant that TOUCHes the next node
	// before comparing the current one — the MLP argument probed from the
	// walker side.
	TouchWalker bool
}

func (o ProgramOptions) validate() error {
	if o.PrefetchDist < 0 {
		return fmt.Errorf("structures: negative prefetch distance")
	}
	return nil
}

// Programs is one offload's generated unit-program bundle.
type Programs struct {
	Dispatcher *isa.Program
	Walker     *isa.Program
	Producer   *isa.Program
}

// Instance is one built structure, immutable after Build: the probe stream
// it emits, the software reference results, and the program generator. All
// methods are safe for concurrent use.
type Instance interface {
	// Kind returns the structure kind.
	Kind() Kind
	// ProbeKeyBase is the address of the probe-key column (8-byte stride).
	ProbeKeyBase() uint64
	// ProbeCount is the probe-stream length.
	ProbeCount() int
	// Geometry describes the traversal shape.
	Geometry() Geometry
	// Regions lists the structure's resident [start, end) address ranges
	// (probe column excluded), for LLC warming.
	Regions() [][2]uint64
	// Reference returns the software reference traversal's flattened match
	// stream (probe order, a probe's matches in traversal order) and the
	// per-probe dependent-load traces for baseline-core replay. Callers
	// must not mutate either slice.
	Reference() (matches []uint64, traces []hashidx.ProbeTrace)
	// MatchBounds returns the cumulative per-probe offsets into the
	// flattened match stream: probe i's matches are
	// matches[bounds[i]:bounds[i+1]] with an implicit bounds[-1] of 0, so
	// bounds[i] is the stream length after probe i. The sampled simulator
	// uses it to splice reference matches for fast-forwarded probe ranges
	// into the combined fingerprint stream. Callers must not mutate the
	// slice.
	MatchBounds() []int
	// Programs generates the Widx bundle targeting resultBase. The match
	// stream the bundle produces is identical for every option setting.
	Programs(resultBase uint64, opt ProgramOptions) (*Programs, error)
}

// Build constructs the structure into the address space and precomputes its
// reference results.
func Build(as *vm.AddressSpace, cfg BuildConfig) (Instance, error) {
	if as == nil {
		return nil, fmt.Errorf("structures: nil address space")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Span == 0 {
		cfg.Span = 1
	}
	switch cfg.Kind {
	case HashJoin:
		return buildHashJoin(as, cfg)
	case SkipList:
		return buildSkipList(as, cfg)
	case BTree:
		return buildBTree(as, cfg)
	case LSM:
		return buildLSM(as, cfg)
	case BFS:
		return buildBFS(as, cfg)
	default:
		return nil, fmt.Errorf("structures: unknown kind %d", uint8(cfg.Kind))
	}
}

// Fingerprint hashes a match stream (FNV-1a over the 8-byte little-endian
// payloads, the golden-test encoding used across the repository).
func Fingerprint(matches []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, m := range matches {
		for i := range buf {
			buf[i] = byte(m >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// baseInstance carries the fields every structure shares; concrete types
// embed it and add Programs.
type baseInstance struct {
	kind      Kind
	probeBase uint64
	probes    int
	geom      Geometry
	regions   [][2]uint64
	matches   []uint64
	bounds    []int
	traces    []hashidx.ProbeTrace
}

func (b *baseInstance) Kind() Kind           { return b.kind }
func (b *baseInstance) ProbeKeyBase() uint64 { return b.probeBase }
func (b *baseInstance) ProbeCount() int      { return b.probes }
func (b *baseInstance) Geometry() Geometry   { return b.geom }
func (b *baseInstance) Regions() [][2]uint64 { return b.regions }
func (b *baseInstance) Reference() ([]uint64, []hashidx.ProbeTrace) {
	return b.matches, b.traces
}
func (b *baseInstance) MatchBounds() []int { return b.bounds }

// closeProbe records the end of one probe's matches in the per-probe
// bounds; every builder calls it once per probe, right after appending the
// probe's matches and trace.
func (b *baseInstance) closeProbe() {
	b.bounds = append(b.bounds, len(b.matches))
}

// regionSpan sums the regions' sizes for the geometry footprint.
func regionSpan(regions [][2]uint64) uint64 {
	var total uint64
	for _, r := range regions {
		total += r[1] - r[0]
	}
	return total
}

// keySet holds a deterministic set of unique, nonzero keys below 2^32 —
// small enough that every signed walker comparison (BLE has no unsigned
// form) is safe, including the probe-1 strict-less-than rewrite.
type keySet struct {
	keys []uint64
	seen map[uint64]bool
}

// genKeySet draws n unique keys.
func genKeySet(rng *stats.RNG, n int) *keySet {
	ks := &keySet{keys: make([]uint64, n), seen: make(map[uint64]bool, n)}
	for i := range ks.keys {
		for {
			k := uint64(rng.Uint32())
			if k != 0 && !ks.seen[k] {
				ks.keys[i], ks.seen[k] = k, true
				break
			}
		}
	}
	return ks
}

// sorted returns the keys in ascending order (a fresh slice).
func (ks *keySet) sorted() []uint64 {
	out := append([]uint64(nil), ks.keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// probeStream draws n probes: ~90% present keys, ~10% misses (nonzero keys
// outside the set), so walkers exercise both the hit and miss paths.
func (ks *keySet) probeStream(rng *stats.RNG, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		if rng.Intn(10) == 0 {
			for {
				k := uint64(rng.Uint32())
				if k != 0 && !ks.seen[k] {
					out[i] = k
					break
				}
			}
		} else {
			out[i] = ks.keys[rng.Intn(len(ks.keys))]
		}
	}
	return out
}

// writeColumn allocates a named 8-byte-stride column and writes the values.
func writeColumn(as *vm.AddressSpace, name string, vals []uint64) uint64 {
	base := as.AllocAligned(name, uint64(len(vals))*8)
	for i, v := range vals {
		as.Write64(base+uint64(i)*8, v)
	}
	return base
}

// producerProgram is the canonical output producer (store the match, advance
// the persistent r20 cursor), shared by every structure.
func producerProgram(resultBase uint64) (*isa.Program, error) {
	p := &isa.Program{
		Name:      "produce",
		Kind:      isa.Producer,
		InputRegs: []isa.Reg{program.RegMatch},
		ConstRegs: map[isa.Reg]uint64{program.RegCursor: resultBase},
		Code: []isa.Instruction{
			{Op: isa.ST, SrcA: program.RegCursor, SrcB: program.RegMatch},
			{Op: isa.ADD, Dst: program.RegCursor, SrcA: program.RegCursor, UseImm: true, Imm: 8},
			{Op: isa.HALT},
		},
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// constTargetDispatcher loads the probe key and emits a fixed traversal
// entry point (skip-list head, tree root, memtable head) — the dispatcher
// of every structure whose walk starts at one address.
func constTargetDispatcher(name string, target uint64) *isa.Program {
	return isa.MustAssemble(fmt.Sprintf(`
.unit dispatcher
.name %s
.in r1
.out r2, r3
.const r21, %d
    ld   r3, [r1]       ; probe key
    add  r2, r21, #0    ; traversal entry point
    emit
    halt
`, name, target))
}

// withKeyPrefetch prepends a TOUCH of the probe-key column dist keys ahead
// of the key about to be loaded. Prepending at pc 0 shifts every relative
// branch uniformly, so the program needs no offset fixups; past the end of
// the column the touch prefetches dead bytes harmlessly.
func withKeyPrefetch(p *isa.Program, dist int) (*isa.Program, error) {
	if dist <= 0 {
		return p, nil
	}
	cp := p.Clone()
	cp.Code = append([]isa.Instruction{
		{Op: isa.TOUCH, SrcA: program.RegKeyAddr, Imm: int64(dist) * 8},
	}, cp.Code...)
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}

// finishPrograms applies the dispatcher prefetch option and bundles the
// three validated programs.
func finishPrograms(d, w *isa.Program, resultBase uint64, opt ProgramOptions) (*Programs, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	d, err := withKeyPrefetch(d, opt.PrefetchDist)
	if err != nil {
		return nil, err
	}
	pr, err := producerProgram(resultBase)
	if err != nil {
		return nil, err
	}
	return &Programs{Dispatcher: d, Walker: w, Producer: pr}, nil
}
