package structures

import (
	"encoding/json"
	"testing"
)

func TestKindTextRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatalf("%v: MarshalText: %v", k, err)
		}
		if string(text) != k.String() {
			t.Fatalf("%v: MarshalText = %q, want %q", k, text, k.String())
		}
		var back Kind
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%v: UnmarshalText(%q): %v", k, text, err)
		}
		if back != k {
			t.Fatalf("round trip %v -> %q -> %v", k, text, back)
		}
	}
}

func TestKindJSONRoundTrip(t *testing.T) {
	// The WarmClass lesson: the enum must survive a full JSON encode/decode
	// cycle inside a struct, the way manifests and the serve catalog use it.
	type doc struct {
		Structure Kind `json:"structure"`
	}
	for _, k := range Kinds() {
		data, err := json.Marshal(doc{Structure: k})
		if err != nil {
			t.Fatalf("%v: marshal: %v", k, err)
		}
		var got doc
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%v: unmarshal %s: %v", k, data, err)
		}
		if got.Structure != k {
			t.Fatalf("JSON round trip %v -> %s -> %v", k, data, got.Structure)
		}
	}
}

func TestKindMarshalRejectsUnknown(t *testing.T) {
	if _, err := Kind(250).MarshalText(); err == nil {
		t.Fatal("MarshalText accepted an out-of-range kind")
	}
	var k Kind
	if err := k.UnmarshalText([]byte("btrie")); err == nil {
		t.Fatal("UnmarshalText accepted an unknown name")
	}
}

func TestParseKindAliases(t *testing.T) {
	cases := map[string]Kind{
		"hashjoin": HashJoin, "hash": HashJoin, "HJ": HashJoin,
		"skiplist": SkipList, "skip": SkipList,
		"btree": BTree, "b+tree": BTree, "BPlusTree": BTree,
		"lsm": LSM,
		"bfs": BFS, "graph": BFS,
		" lsm ": LSM, // whitespace-tolerant
	}
	for in, want := range cases {
		got, err := ParseKind(in)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseKind(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseKind("rtree"); err == nil {
		t.Fatal("ParseKind accepted an unknown structure")
	}
}

func TestParseKinds(t *testing.T) {
	got, err := ParseKinds("hashjoin, skiplist,btree,lsm,bfs")
	if err != nil {
		t.Fatal(err)
	}
	want := Kinds()
	if len(got) != len(want) {
		t.Fatalf("ParseKinds returned %d kinds, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ParseKinds[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := ParseKinds(" , "); err == nil {
		t.Fatal("ParseKinds accepted an empty list")
	}
	if _, err := ParseKinds("btree,quadtree"); err == nil {
		t.Fatal("ParseKinds accepted a list with an unknown structure")
	}
}
