// The LSM lookup: the zoo's mixed-locality pipeline. A probe first searches
// the skip-list memtable (the newest data); on a miss it walks the SSTable
// levels newest-first, each level a sorted run of 128-byte blocks fronted
// by a fence-key array — guard on the level's minimum key, binary-search
// the fences, scan one block. The first hit wins (newer levels shadow
// older ones), so the structure exercises early exit, tower descent,
// strided binary search and blocked scans in one walker program.
package structures

import (
	"fmt"
	"sort"

	"widx/internal/hashidx"
	"widx/internal/isa"
	"widx/internal/stats"
	"widx/internal/vm"
)

// SSTable geometry. Blocks are [count][k_0 p_0 .. k_6 p_6] — 8 + 7*16 = 120
// bytes, padded to 128. The fence array holds each block's first key and is
// padded to a power of two with an above-all-keys sentinel, so the walker's
// binary search halves exactly (SHR) with every fence read in bounds.
const (
	lsmBlockBytes    = 128
	lsmBlockEntries  = 7
	lsmEntryOff      = 8
	lsmEntryStride   = 16
	lsmLevelDescSize = 24 // per level: [fenceBase][blockBase][searchSpan]
	lsmFenceSentinel = uint64(1) << 33
	lsmMaxLevels     = 3
)

const lsmPayloadTag = uint64(0x15) << 40

func lsmPayload(key uint64) uint64 { return key ^ lsmPayloadTag }

// Shadow payload offsets: keys deliberately planted in more than one place
// carry the base payload plus a per-depth offset, so a walker that fails to
// stop at the newest hit produces a different match stream and cannot
// fingerprint clean.
const (
	lsmShadowMem   = 1000 // memtable key also planted in a level
	lsmShadowLevel = 2000 // level-0 key also planted deeper
)

// lsmLevel is one built SSTable level.
type lsmLevel struct {
	fenceBase  uint64
	blockBase  uint64
	blockCount int
	searchSpan int // fence count padded to a power of two
}

// lsmTree is the built LSM structure.
type lsmTree struct {
	memtable *skipArena
	levels   []lsmLevel
	descBase uint64
	regions  [][2]uint64
}

// lsmEntry is one (key, payload) pair of a level.
type lsmEntry struct {
	key     uint64
	payload uint64
}

// buildLSMLevel writes one level's sorted entries as fenced blocks.
func buildLSMLevel(as *vm.AddressSpace, name string, entries []lsmEntry) lsmLevel {
	blocks := (len(entries) + lsmBlockEntries - 1) / lsmBlockEntries
	span := 1
	for span < blocks {
		span <<= 1
	}
	lv := lsmLevel{blockCount: blocks, searchSpan: span}
	lv.fenceBase = as.AllocAligned(name+".fences", uint64(span)*8)
	lv.blockBase = as.AllocAligned(name+".blocks", uint64(span)*lsmBlockBytes)
	for b := 0; b < span; b++ {
		if b >= blocks {
			// Padding: an above-all-keys fence and a zero-count block. The
			// binary search can never settle here, but both reads stay
			// inside the level's own regions.
			as.Write64(lv.fenceBase+uint64(b)*8, lsmFenceSentinel)
			continue
		}
		lo := b * lsmBlockEntries
		hi := lo + lsmBlockEntries
		if hi > len(entries) {
			hi = len(entries)
		}
		block := lv.blockBase + uint64(b)*lsmBlockBytes
		as.Write64(lv.fenceBase+uint64(b)*8, entries[lo].key)
		as.Write64(block, uint64(hi-lo))
		for j, e := range entries[lo:hi] {
			as.Write64(block+lsmEntryOff+uint64(j)*lsmEntryStride, e.key)
			as.Write64(block+lsmEntryOff+uint64(j)*lsmEntryStride+8, e.payload)
		}
	}
	return lv
}

// buildLSMTree splits the key set into a memtable and up to three SSTable
// levels with 1:8:64 size shares, then plants shadow copies — half the
// memtable keys reappear in a random level, a quarter of level 0's keys
// reappear deeper — each with a distinct payload, pinning the walker's
// newest-hit-wins early exit into the reference match stream.
func buildLSMTree(as *vm.AddressSpace, name string, rng *stats.RNG, ks *keySet) *lsmTree {
	n := len(ks.keys)
	memCount := n / 8
	if memCount < 16 {
		memCount = (n + 1) / 2
	}
	// The key list is already a uniform draw; split it in place (memtable
	// first, then levels by share).
	memKeys := append([]uint64(nil), ks.keys[:memCount]...)
	rest := ks.keys[memCount:]

	numLevels := lsmMaxLevels
	if len(rest) < numLevels {
		numLevels = len(rest)
	}
	shares := make([]int, numLevels)
	totalShare := 0
	for i := range shares {
		shares[i] = 1 << (3 * i) // 1, 8, 64
		totalShare += shares[i]
	}
	levelKeys := make([][]uint64, numLevels)
	off := 0
	for i := range levelKeys {
		cnt := len(rest) * shares[i] / totalShare
		if cnt < 1 {
			cnt = 1
		}
		if i == numLevels-1 || off+cnt > len(rest) {
			cnt = len(rest) - off
		}
		levelKeys[i] = rest[off : off+cnt]
		off += cnt
	}

	levelEntries := make([][]lsmEntry, numLevels)
	inLevel := make([]map[uint64]bool, numLevels)
	for i, keys := range levelKeys {
		inLevel[i] = make(map[uint64]bool, len(keys))
		for _, k := range keys {
			levelEntries[i] = append(levelEntries[i], lsmEntry{key: k, payload: lsmPayload(k)})
			inLevel[i][k] = true
		}
	}
	plant := func(k uint64, level int, payload uint64) {
		if level < numLevels && !inLevel[level][k] {
			levelEntries[level] = append(levelEntries[level], lsmEntry{key: k, payload: payload})
			inLevel[level][k] = true
		}
	}
	if numLevels > 0 {
		for i := 0; i < len(memKeys)/2; i++ {
			k := memKeys[rng.Intn(len(memKeys))]
			plant(k, rng.Intn(numLevels), lsmPayload(k)+lsmShadowMem)
		}
		if numLevels > 1 && len(levelKeys[0]) > 0 {
			for i := 0; i < len(levelKeys[0])/4; i++ {
				k := levelKeys[0][rng.Intn(len(levelKeys[0]))]
				plant(k, 1+rng.Intn(numLevels-1), lsmPayload(k)+lsmShadowLevel)
			}
		}
	}

	t := &lsmTree{}
	sort.Slice(memKeys, func(i, j int) bool { return memKeys[i] < memKeys[j] })
	t.memtable = buildSkipArena(as, name+".memtable", rng, memKeys, lsmPayload)
	t.regions = append(t.regions, t.memtable.region)
	for i, entries := range levelEntries {
		sort.Slice(entries, func(a, b int) bool { return entries[a].key < entries[b].key })
		lv := buildLSMLevel(as, fmt.Sprintf("%s.l%d", name, i), entries)
		t.levels = append(t.levels, lv)
		t.regions = append(t.regions,
			[2]uint64{lv.fenceBase, lv.fenceBase + uint64(lv.searchSpan)*8},
			[2]uint64{lv.blockBase, lv.blockBase + uint64(lv.searchSpan)*lsmBlockBytes})
	}
	t.descBase = as.AllocAligned(name+".desc", uint64(len(t.levels))*lsmLevelDescSize)
	for i, lv := range t.levels {
		d := t.descBase + uint64(i)*lsmLevelDescSize
		as.Write64(d, lv.fenceBase)
		as.Write64(d+8, lv.blockBase)
		as.Write64(d+16, uint64(lv.searchSpan))
	}
	t.regions = append(t.regions, [2]uint64{t.descBase, t.descBase + uint64(len(t.levels))*lsmLevelDescSize})
	return t
}

// lookup is the software reference, mirroring the walker: memtable first
// (a hit returns immediately), then each level — minimum-key guard, exact
// power-of-two fence binary search, one block scan — stopping at the first
// hit.
func (t *lsmTree) lookup(as *vm.AddressSpace, probe uint64) (payloads []uint64, steps []hashidx.TraceStep) {
	memPayloads, memSteps := t.memtable.lookup(as, probe)
	steps = memSteps
	if len(memPayloads) > 0 {
		return memPayloads, steps
	}
	for i := range t.levels {
		lv := &t.levels[i]
		d := t.descBase + uint64(i)*lsmLevelDescSize
		// The walker loads the three descriptor words, then the guard fence.
		steps = append(steps, hashidx.TraceStep{NodeAddr: d, CompareOps: 1})
		st := hashidx.TraceStep{NodeAddr: lv.fenceBase, CompareOps: 1}
		if probe < as.Read64(lv.fenceBase) {
			steps = append(steps, st)
			continue
		}
		steps = append(steps, st)
		lo, n := 0, lv.searchSpan
		for n > 1 {
			n >>= 1
			mid := lo + n
			addr := lv.fenceBase + uint64(mid)*8
			steps = append(steps, hashidx.TraceStep{NodeAddr: addr, CompareOps: 1})
			if as.Read64(addr) <= probe {
				lo = mid
			}
		}
		block := lv.blockBase + uint64(lo)*lsmBlockBytes
		count := as.Read64(block)
		st = hashidx.TraceStep{NodeAddr: block, CompareOps: int(count) + 1}
		hit := false
		for j := uint64(0); j < count; j++ {
			if as.Read64(block+lsmEntryOff+j*lsmEntryStride) == probe {
				st.Matched = true
				payloads = append(payloads, as.Read64(block+lsmEntryOff+j*lsmEntryStride+8))
				hit = true
				break
			}
		}
		steps = append(steps, st)
		if hit {
			break
		}
	}
	return payloads, steps
}

// walkerProgram generates the LSM walker: the skip-list memtable descent
// (halting on a hit), then the per-level fence search and block scan. The
// touching variant adds the skip list's next-node slot prefetch in the
// memtable and a TOUCH of the selected block's second half before the scan
// reads its first entry.
func (t *lsmTree) walkerProgram(name string, touch bool) *isa.Program {
	memTouch, blockTouch := "", ""
	if touch {
		memTouch = "    add  r10, r5, r4\n    touch [r10]        ; prefetch the next node's slot\n"
		blockTouch = "    touch [r19+64]     ; prefetch the block's second half\n"
	}
	return isa.MustAssemble(fmt.Sprintf(`
.unit walker
.name %s
.in r1, r2
.out r3
.const r21, %d        ; level descriptor table
.const r23, %d        ; level count
.const r26, 8
.const r27, 1
; ---- memtable: skip-list descent, newest data wins ----
    add  r4, r0, #%d      ; slot offset of the top level
    add  r8, r2, #-1      ; probe-1
mdescend:
    add  r9, r1, r4
    ld   r5, [r9]
    ble  r5, r0, mdrop
%s    ld   r6, [r5]
    ble  r6, r8, madvance
mdrop:
    add  r4, r4, #-8
    ble  r4, r26, mcheck
    ba   mdescend
madvance:
    add  r1, r5, #0
    ba   mdescend
mcheck:
    ld   r5, [r1+%d]
    ble  r5, r0, levels
    ld   r6, [r5]
    cmp  r7, r6, r2
    ble  r7, r0, levels   ; memtable miss -> search the levels
    ld   r3, [r5+%d]
    emit
    halt                  ; newest hit shadows every level
; ---- SSTable levels, newest first ----
levels:
    add  r12, r23, #0     ; remaining levels
    add  r13, r21, #0     ; descriptor cursor
level:
    ble  r12, r0, done
    ld   r14, [r13]       ; fence array
    ld   r15, [r13+8]     ; block array
    ld   r16, [r13+16]    ; search span (power of two)
    ld   r9, [r14]        ; level minimum key
    add  r10, r9, #-1
    ble  r2, r10, nextlevel ; probe below the level -> skip it
    add  r17, r0, #0      ; lo = 0
bsearch:
    ble  r16, r27, block  ; span 1 -> fence found
    shr  r16, r16, #1
    add  r19, r17, r16    ; mid = lo + span/2
    addshf r9, r14, r19, 3
    ld   r10, [r9]
    add  r11, r10, #-1
    ble  r2, r11, bsearch ; probe < fence[mid] -> keep lo
    add  r17, r19, #0
    ba   bsearch
block:
    addshf r19, r15, r17, 7
%s    ld   r5, [r19]        ; entry count
    add  r6, r19, #%d     ; entry cursor
entry:
    ble  r5, r0, nextlevel
    ld   r9, [r6]
    cmp  r7, r9, r2
    ble  r7, r0, eskip
    ld   r3, [r6+8]
    emit
    halt                  ; a level hit shadows the deeper levels
eskip:
    add  r6, r6, #%d
    add  r5, r5, #-1
    ba   entry
nextlevel:
    add  r13, r13, #%d
    add  r12, r12, #-1
    ba   level
done:
    halt
`, name, t.descBase, len(t.levels), skipNextOff+8*(t.memtable.levels-1), memTouch,
		skipNextOff, skipPayloadOff, blockTouch, lsmEntryOff, lsmEntryStride, lsmLevelDescSize))
}

// lsmInstance is the built LSM workload.
type lsmInstance struct {
	baseInstance
	tree *lsmTree
}

func buildLSM(as *vm.AddressSpace, cfg BuildConfig) (*lsmInstance, error) {
	rng := stats.NewRNG(cfg.Seed)
	ks := genKeySet(rng, cfg.Keys)
	tree := buildLSMTree(as, cfg.Name+".lsm", rng, ks)
	probes := ks.probeStream(rng, cfg.Probes)
	probeBase := writeColumn(as, cfg.Name+".probes", probes)

	inst := &lsmInstance{tree: tree}
	inst.kind = LSM
	inst.probeBase = probeBase
	inst.probes = len(probes)
	inst.regions = tree.regions
	inst.geom = Geometry{
		NodeBytes:      lsmBlockBytes,
		Fanout:         lsmBlockEntries,
		Levels:         1 + len(tree.levels),
		FootprintBytes: regionSpan(inst.regions),
		Locality:       "tower memtable, then strided fences and blocked scans",
	}
	for i, p := range probes {
		payloads, steps := tree.lookup(as, p)
		inst.matches = append(inst.matches, payloads...)
		inst.traces = append(inst.traces, hashidx.ProbeTrace{
			Key:        p,
			KeyAddr:    probeBase + uint64(i)*8,
			HashOps:    1,
			BucketAddr: tree.memtable.head,
			Steps:      steps,
		})
		inst.closeProbe()
	}
	return inst, nil
}

func (l *lsmInstance) Programs(resultBase uint64, opt ProgramOptions) (*Programs, error) {
	d := constTargetDispatcher("dispatch_lsm", l.tree.memtable.head)
	w := l.tree.walkerProgram("walk_lsm", opt.TouchWalker)
	return finishPrograms(d, w, resultBase, opt)
}
