// The B+-tree: the zoo's fat-node, high-fanout point. Nodes are fixed
// 128-byte blocks (two cache lines) with fanout 8; a probe descends a fixed
// number of inner levels by scanning separator keys, then scans the leaf —
// and, for range probes, follows the leaf chain until the range's high key
// is passed. Compared with the skip list, each dependent load buys eight
// comparisons of spatially local work.
package structures

import (
	"fmt"

	"widx/internal/hashidx"
	"widx/internal/isa"
	"widx/internal/stats"
	"widx/internal/vm"
)

// Node layout (both node types are btreeNodeBytes):
//
//	inner: [count][k_0..k_6][child_0..child_7]    keys at 8, children at 64
//	leaf:  [count][k_0..k_6][p_0..p_6][next]      payloads at 64, next at 120
//
// An inner node's k_i is the minimum key of child_{i+1}; descent takes
// child j where j = #{separators <= probe}.
const (
	btreeNodeBytes = 128
	btreeCountOff  = 0
	btreeKeysOff   = 8
	btreeDownOff   = 64 // children (inner) / payloads (leaf)
	btreeNextOff   = 120
	btreeLeafKeys  = 7
	btreeFanout    = 8
)

const btreePayloadTag = uint64(0xB7) << 40

func btreePayload(key uint64) uint64 { return key ^ btreePayloadTag }

// btreeIndex is one bulk-loaded B+-tree.
type btreeIndex struct {
	root   uint64
	height int // inner levels above the leaves
	region [2]uint64
}

// buildBTreeIndex bulk-loads the sorted keys: leaves in key order, then
// inner levels bottom-up, all in one arena. Each leaf takes up to 7 keys,
// each inner node up to 8 children with 7 separators (the children's
// minimum keys, first child excluded).
func buildBTreeIndex(as *vm.AddressSpace, name string, sortedKeys []uint64) *btreeIndex {
	type level struct {
		count int // nodes on this level
	}
	// Size the arena first: allocation must precede writes, and the region
	// must cover every level.
	leaves := (len(sortedKeys) + btreeLeafKeys - 1) / btreeLeafKeys
	if leaves == 0 {
		leaves = 1
	}
	total := leaves
	levels := []level{{count: leaves}}
	for n := leaves; n > 1; {
		n = (n + btreeFanout - 1) / btreeFanout
		levels = append(levels, level{count: n})
		total += n
	}
	base := as.AllocAligned(name, uint64(total)*btreeNodeBytes)
	idx := &btreeIndex{height: len(levels) - 1, region: [2]uint64{base, base + uint64(total)*btreeNodeBytes}}

	// Leaves first in the arena, then each inner level; node i of level l
	// sits at levelBase[l] + i*128.
	levelBase := make([]uint64, len(levels))
	levelBase[0] = base
	for l := 1; l < len(levels); l++ {
		levelBase[l] = levelBase[l-1] + uint64(levels[l-1].count)*btreeNodeBytes
	}
	nodeAddr := func(l, i int) uint64 { return levelBase[l] + uint64(i)*btreeNodeBytes }

	// Write the leaves and collect their minimum keys.
	minKey := make([]uint64, leaves)
	for i := 0; i < leaves; i++ {
		a := nodeAddr(0, i)
		lo := i * btreeLeafKeys
		hi := lo + btreeLeafKeys
		if hi > len(sortedKeys) {
			hi = len(sortedKeys)
		}
		as.Write64(a+btreeCountOff, uint64(hi-lo))
		for j, k := range sortedKeys[lo:hi] {
			as.Write64(a+btreeKeysOff+uint64(j)*8, k)
			as.Write64(a+btreeDownOff+uint64(j)*8, btreePayload(k))
		}
		if i+1 < leaves {
			as.Write64(a+btreeNextOff, nodeAddr(0, i+1))
		}
		minKey[i] = sortedKeys[lo]
	}

	// Inner levels bottom-up: group the previous level's nodes 8 at a time;
	// a group's separators are its children's minimum keys (first child's
	// excluded), and the group's own minimum is its first child's.
	for l := 1; l < len(levels); l++ {
		groupMin := make([]uint64, levels[l].count)
		for i := 0; i < levels[l].count; i++ {
			a := nodeAddr(l, i)
			lo := i * btreeFanout
			hi := lo + btreeFanout
			if hi > levels[l-1].count {
				hi = levels[l-1].count
			}
			as.Write64(a+btreeCountOff, uint64(hi-lo-1))
			for j := lo; j < hi; j++ {
				if j > lo {
					as.Write64(a+btreeKeysOff+uint64(j-lo-1)*8, minKey[j])
				}
				as.Write64(a+btreeDownOff+uint64(j-lo)*8, nodeAddr(l-1, j))
			}
			groupMin[i] = minKey[lo]
		}
		minKey = groupMin
	}
	idx.root = nodeAddr(len(levels)-1, 0)
	return idx
}

// lookup is the software reference: descend the inner levels, then scan the
// leaf chain emitting every payload with key in [probe, probe+span-1]. One
// step per visited node, CompareOps counting the separator/entry
// comparisons performed there.
func (bt *btreeIndex) lookup(as *vm.AddressSpace, probe uint64, span int) (payloads []uint64, steps []hashidx.TraceStep) {
	hi := probe + uint64(span) - 1
	node := bt.root
	for lvl := 0; lvl < bt.height; lvl++ {
		count := as.Read64(node + btreeCountOff)
		j := uint64(0)
		for j < count && as.Read64(node+btreeKeysOff+j*8) <= probe {
			j++
		}
		steps = append(steps, hashidx.TraceStep{NodeAddr: node, CompareOps: int(j) + 1})
		node = as.Read64(node + btreeDownOff + j*8)
	}
	for node != 0 {
		count := as.Read64(node + btreeCountOff)
		st := hashidx.TraceStep{NodeAddr: node, CompareOps: 1}
		done := false
		for j := uint64(0); j < count; j++ {
			k := as.Read64(node + btreeKeysOff + j*8)
			st.CompareOps++
			if hi < k {
				done = true
				break
			}
			if k >= probe {
				st.Matched = true
				payloads = append(payloads, as.Read64(node+btreeDownOff+j*8))
			}
		}
		steps = append(steps, st)
		if done {
			break
		}
		node = as.Read64(node + btreeNextOff)
	}
	return payloads, steps
}

// walkerProgram generates the descent walker. The inner-level count is
// baked in as an immediate (the tree has fixed height), and the range span
// enters as the probe+span-1 high key. The touching variant TOUCHes the
// node's second cache block — children on inner nodes, payloads on leaves —
// on arrival, while the first block's keys are still being scanned.
func (bt *btreeIndex) walkerProgram(name string, span int, touch bool) *isa.Program {
	innerTouch, leafTouch := "", ""
	if touch {
		innerTouch = "    touch [r1+64]      ; prefetch the child block\n"
		leafTouch = "    touch [r1+64]      ; prefetch the payload block\n"
	}
	return isa.MustAssemble(fmt.Sprintf(`
.unit walker
.name %s
.in r1, r2
.out r3
    add  r4, r0, #%d      ; inner levels to descend
    add  r8, r2, #-1      ; probe-1: key < probe  <=>  key <= r8
    add  r11, r2, #%d     ; range high key: probe + span - 1
inner:
    ble  r4, r0, leaf
%s    ld   r5, [r1]         ; separator count
    add  r6, r1, #%d      ; separator cursor
    add  r7, r1, #%d      ; child cursor
scan:
    ble  r5, r0, descend
    ld   r9, [r6]
    add  r10, r9, #-1
    ble  r2, r10, descend ; probe < separator -> stop
    add  r6, r6, #8
    add  r7, r7, #8
    add  r5, r5, #-1
    ba   scan
descend:
    ld   r1, [r7]
    add  r4, r4, #-1
    ba   inner
leaf:
%s    ld   r5, [r1]         ; entry count
    add  r6, r1, #%d      ; key cursor
    add  r7, r1, #%d      ; payload cursor
entry:
    ble  r5, r0, next
    ld   r9, [r6]
    add  r10, r9, #-1
    ble  r11, r10, done   ; high key < entry key -> past the range
    ble  r9, r8, skip     ; entry key < probe -> before the range
    ld   r3, [r7]
    emit
skip:
    add  r6, r6, #8
    add  r7, r7, #8
    add  r5, r5, #-1
    ba   entry
next:
    ld   r1, [r1+%d]      ; leaf chain
    ble  r1, r0, done
    ba   leaf
done:
    halt
`, name, bt.height, span-1, innerTouch, btreeKeysOff, btreeDownOff,
		leafTouch, btreeKeysOff, btreeDownOff, btreeNextOff))
}

// btreeInstance is the built B+-tree workload.
type btreeInstance struct {
	baseInstance
	index *btreeIndex
	span  int
}

func buildBTree(as *vm.AddressSpace, cfg BuildConfig) (*btreeInstance, error) {
	rng := stats.NewRNG(cfg.Seed)
	ks := genKeySet(rng, cfg.Keys)
	idx := buildBTreeIndex(as, cfg.Name+".arena", ks.sorted())
	probes := ks.probeStream(rng, cfg.Probes)
	probeBase := writeColumn(as, cfg.Name+".probes", probes)

	inst := &btreeInstance{index: idx, span: cfg.Span}
	inst.kind = BTree
	inst.probeBase = probeBase
	inst.probes = len(probes)
	inst.regions = [][2]uint64{idx.region}
	inst.geom = Geometry{
		NodeBytes:      btreeNodeBytes,
		Fanout:         btreeFanout,
		Levels:         idx.height + 1,
		FootprintBytes: regionSpan(inst.regions),
		Locality:       "blocked descent, two cache lines per node",
	}
	for i, p := range probes {
		payloads, steps := idx.lookup(as, p, cfg.Span)
		inst.matches = append(inst.matches, payloads...)
		inst.traces = append(inst.traces, hashidx.ProbeTrace{
			Key:        p,
			KeyAddr:    probeBase + uint64(i)*8,
			HashOps:    1,
			BucketAddr: idx.root,
			Steps:      steps,
		})
		inst.closeProbe()
	}
	return inst, nil
}

func (bt *btreeInstance) Programs(resultBase uint64, opt ProgramOptions) (*Programs, error) {
	d := constTargetDispatcher("dispatch_btree", bt.index.root)
	w := bt.index.walkerProgram("walk_btree", bt.span, opt.TouchWalker)
	return finishPrograms(d, w, resultBase, opt)
}
