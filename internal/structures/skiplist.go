// The skip list: the zoo's thin-node, tall-tower point. A probe descends
// the head's tower level by level, advancing along each level's singly
// linked list while the successor's key is below the probe, then checks the
// bottom-level successor for equality. Every step is one dependent pointer
// load plus one key load, and nodes are placement-shuffled through the
// arena, so spatial locality is near zero — the structural opposite of the
// B+-tree's fat blocked nodes.
package structures

import (
	"fmt"

	"widx/internal/hashidx"
	"widx/internal/isa"
	"widx/internal/stats"
	"widx/internal/vm"
)

// Skip-list node layout: [key][payload][next_0 .. next_{L-1}], level 0
// first. The head node carries no key; walkers only ever compare successor
// keys, so the head's key field is never read.
const (
	skipKeyOff     = 0
	skipPayloadOff = 8
	skipNextOff    = 16
	skipMaxLevels  = 10
)

// skipPayloadTag makes skip-list payloads distinguishable from every other
// structure's, so a cross-structure mixup cannot fingerprint clean.
const skipPayloadTag = uint64(0x51) << 40

func skipPayload(key uint64) uint64 { return key ^ skipPayloadTag }

// skipLevels sizes the tower height for n keys: roughly 1 + log4(n),
// clamped to [2, skipMaxLevels] — the expected height of a p=1/4 skip list.
func skipLevels(n int) int {
	levels := 2
	for n > 16 && levels < skipMaxLevels {
		n /= 4
		levels++
	}
	return levels
}

// skipArena is one built skip list: a head plus one node per key in a
// contiguous, placement-shuffled arena.
type skipArena struct {
	head     uint64
	levels   int
	nodeSize uint64
	region   [2]uint64
}

// buildSkipArena lays the skip list over the sorted keys. Node placement is
// a deterministic shuffle of the arena slots, so following a level-0 link
// jumps arbitrarily through the arena — the walk chases pointers rather
// than scanning memory. Tower heights are geometric with p=1/4, drawn in
// sorted-key order; both random streams come from the caller's RNG, so the
// image is a pure function of (keys, RNG state).
func buildSkipArena(as *vm.AddressSpace, name string, rng *stats.RNG, sortedKeys []uint64, payload func(uint64) uint64) *skipArena {
	n := len(sortedKeys)
	sa := &skipArena{levels: skipLevels(n)}
	sa.nodeSize = uint64(skipNextOff + 8*sa.levels)
	base := as.AllocAligned(name, uint64(n+1)*sa.nodeSize)
	sa.head = base
	sa.region = [2]uint64{base, base + uint64(n+1)*sa.nodeSize}

	heights := make([]int, n)
	for i := range heights {
		h := 1
		for h < sa.levels && rng.Intn(4) == 0 {
			h++
		}
		heights[i] = h
	}
	// Slot perm[i]+1 holds sorted key i (slot 0 is the head).
	perm := rng.Perm(n)
	addr := func(i int) uint64 { return base + uint64(perm[i]+1)*sa.nodeSize }

	for i, k := range sortedKeys {
		a := addr(i)
		as.Write64(a+skipKeyOff, k)
		as.Write64(a+skipPayloadOff, payload(k))
	}
	// Link each level through the keys tall enough to appear on it. Pointer
	// fields default to zero (end of list), so only present links are
	// written.
	for lvl := 0; lvl < sa.levels; lvl++ {
		prev := sa.head
		for i := 0; i < n; i++ {
			if heights[i] <= lvl {
				continue
			}
			as.Write64(prev+skipNextOff+uint64(lvl)*8, addr(i))
			prev = addr(i)
		}
	}
	return sa
}

// lookup is the software reference traversal, mirroring the walker program
// load for load: descend the tower, advance while the successor key is
// below the probe, then check the bottom successor for equality. Each
// returned step is one slot load with the successor's key fetch chained on
// it.
func (sa *skipArena) lookup(as *vm.AddressSpace, probe uint64) (payloads []uint64, steps []hashidx.TraceStep) {
	node := sa.head
	for lvl := sa.levels - 1; lvl >= 0; {
		slot := node + skipNextOff + uint64(lvl)*8
		succ := as.Read64(slot)
		st := hashidx.TraceStep{NodeAddr: slot, CompareOps: 1}
		if succ != 0 {
			st.KeyFetchAddr = succ + skipKeyOff
			if as.Read64(succ+skipKeyOff) < probe {
				steps = append(steps, st)
				node = succ
				continue
			}
		}
		steps = append(steps, st)
		lvl--
	}
	// The final candidate check re-loads the bottom slot, as the walker does.
	cand := as.Read64(node + skipNextOff)
	st := hashidx.TraceStep{NodeAddr: node + skipNextOff, CompareOps: 1}
	if cand != 0 {
		st.KeyFetchAddr = cand + skipKeyOff
		if as.Read64(cand+skipKeyOff) == probe {
			st.Matched = true
			payloads = append(payloads, as.Read64(cand+skipPayloadOff))
		}
	}
	steps = append(steps, st)
	return payloads, steps
}

// walkerProgram generates the tower-descent walker. Strict less-than on a
// BLE-only ISA uses the probe-1 rewrite (keys are nonzero and below 2^32,
// so the signed comparison is exact). The touching variant prefetches the
// successor's same-level pointer slot — the next node of the walk — before
// the current successor's key decides advance vs. drop.
func (sa *skipArena) walkerProgram(name string, touch bool) *isa.Program {
	touchSrc := ""
	if touch {
		touchSrc = "    add  r10, r5, r4\n    touch [r10]        ; prefetch the next node's slot\n"
	}
	return isa.MustAssemble(fmt.Sprintf(`
.unit walker
.name %s
.in r1, r2
.out r3
.const r26, 8
    add  r4, r0, #%d      ; slot offset of the top level
    add  r8, r2, #-1      ; probe-1: succ.key < probe  <=>  succ.key <= r8
descend:
    add  r9, r1, r4
    ld   r5, [r9]         ; successor at this level
    ble  r5, r0, drop     ; null -> drop a level
%s    ld   r6, [r5]         ; successor's key
    ble  r6, r8, advance
drop:
    add  r4, r4, #-8
    ble  r4, r26, check   ; below the bottom slot -> candidate check
    ba   descend
advance:
    add  r1, r5, #0
    ba   descend
check:
    ld   r5, [r1+%d]      ; bottom-level successor
    ble  r5, r0, done
    ld   r6, [r5]
    cmp  r7, r6, r2
    ble  r7, r0, done     ; key != probe -> miss
    ld   r3, [r5+%d]
    emit
done:
    halt
`, name, skipNextOff+8*(sa.levels-1), touchSrc, skipNextOff, skipPayloadOff))
}

// skipListInstance is the built skip-list workload.
type skipListInstance struct {
	baseInstance
	arena *skipArena
}

func buildSkipList(as *vm.AddressSpace, cfg BuildConfig) (*skipListInstance, error) {
	rng := stats.NewRNG(cfg.Seed)
	ks := genKeySet(rng, cfg.Keys)
	arena := buildSkipArena(as, cfg.Name+".arena", rng, ks.sorted(), skipPayload)
	probes := ks.probeStream(rng, cfg.Probes)
	probeBase := writeColumn(as, cfg.Name+".probes", probes)

	inst := &skipListInstance{arena: arena}
	inst.kind = SkipList
	inst.probeBase = probeBase
	inst.probes = len(probes)
	inst.regions = [][2]uint64{arena.region}
	inst.geom = Geometry{
		NodeBytes:      int(arena.nodeSize),
		Fanout:         1,
		Levels:         arena.levels,
		FootprintBytes: regionSpan(inst.regions),
		Locality:       "shuffled tower descent, one pointer per step",
	}
	for i, p := range probes {
		payloads, steps := arena.lookup(as, p)
		inst.matches = append(inst.matches, payloads...)
		inst.traces = append(inst.traces, hashidx.ProbeTrace{
			Key:        p,
			KeyAddr:    probeBase + uint64(i)*8,
			HashOps:    1,
			BucketAddr: arena.head,
			Steps:      steps,
		})
		inst.closeProbe()
	}
	return inst, nil
}

func (s *skipListInstance) Programs(resultBase uint64, opt ProgramOptions) (*Programs, error) {
	d := constTargetDispatcher("dispatch_skiplist", s.arena.head)
	w := s.arena.walkerProgram("walk_skiplist", opt.TouchWalker)
	return finishPrograms(d, w, resultBase, opt)
}
