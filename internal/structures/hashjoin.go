// The hash join: the zoo's calibration point. It wraps internal/hashidx's
// inline-layout bucket-chain index behind the structures.Instance interface,
// so the zoo's cross-structure sweeps include the workload every existing
// study measures, built and probed through exactly the same code paths as
// the new structures. The generated non-touching programs are the canonical
// internal/program bundle; the touching variant reorders the walker to load
// each node's next pointer first and TOUCH it before comparing the current
// node's key.
package structures

import (
	"widx/internal/hashidx"
	"widx/internal/isa"
	"widx/internal/program"
	"widx/internal/stats"
	"widx/internal/vm"
)

const hashjoinPayloadTag = uint64(0x8A) << 40

func hashjoinPayload(key uint64) uint64 { return key ^ hashjoinPayloadTag }

// hashjoinInstance is the built hash-join workload.
type hashjoinInstance struct {
	baseInstance
	table *hashidx.Table
}

func buildHashJoin(as *vm.AddressSpace, cfg BuildConfig) (*hashjoinInstance, error) {
	rng := stats.NewRNG(cfg.Seed)
	ks := genKeySet(rng, cfg.Keys)
	payloads := make([]uint64, len(ks.keys))
	for i, k := range ks.keys {
		payloads[i] = hashjoinPayload(k)
	}
	// At least two buckets: the walker programs mask bucket indexes, and a
	// single-bucket mask of zero is rejected by program.Spec.
	buckets := uint64(2)
	for buckets < uint64(len(ks.keys)) {
		buckets <<= 1
	}
	tbl, err := hashidx.Build(as, hashidx.Config{
		Layout:      hashidx.LayoutInline,
		Hash:        hashidx.HashSimple,
		BucketCount: buckets,
		Name:        cfg.Name + ".index",
	}, ks.keys, payloads)
	if err != nil {
		return nil, err
	}
	probes := ks.probeStream(rng, cfg.Probes)
	probeBase := writeColumn(as, cfg.Name+".probes", probes)

	inst := &hashjoinInstance{table: tbl}
	inst.kind = HashJoin
	inst.probeBase = probeBase
	inst.probes = len(probes)
	inst.regions = tbl.Regions()
	inst.geom = Geometry{
		NodeBytes:      hashidx.InlineNodeSize,
		Fanout:         1,
		Levels:         tbl.MaxChain(),
		FootprintBytes: tbl.FootprintBytes(),
		Locality:       "hashed bucket headers, short collision chains",
	}
	for i, p := range probes {
		res := tbl.ProbeFrom(p, probeBase+uint64(i)*8)
		// Keys are unique, so a hit is exactly one matching node.
		if res.Found {
			inst.matches = append(inst.matches, res.Payload)
		}
		inst.traces = append(inst.traces, res.Trace)
		inst.closeProbe()
	}
	return inst, nil
}

// touchWalker is the inline-layout walker reordered for MLP: each
// iteration loads the node's next pointer first and TOUCHes it (when
// non-null) before the current node's key compare resolves, overlapping
// the chain's next dependent miss with the current one. The emit order —
// and so the match stream — is identical to the canonical walker's.
func touchWalker() *isa.Program {
	return isa.MustAssemble(`
.unit walker
.name walk_hashjoin_touch
.in r1, r2
.out r3
loop:
    ld   r6, [r1+16]   ; next pointer first
    ble  r6, r0, cur   ; end of chain: nothing to touch
    touch [r6]         ; prefetch the next node
cur:
    ld   r4, [r1]      ; current node's key (EmptyKey on an empty header)
    cmp  r5, r4, r2
    ble  r5, r0, step
    ld   r3, [r1+8]
    emit
step:
    add  r1, r6, #0
    ble  r1, r0, done
    ba   loop
done:
    halt
`)
}

func (h *hashjoinInstance) Programs(resultBase uint64, opt ProgramOptions) (*Programs, error) {
	spec := program.SpecForTable(h.table, resultBase)
	d, err := program.Dispatcher(spec)
	if err != nil {
		return nil, err
	}
	var w *isa.Program
	if opt.TouchWalker {
		w = touchWalker()
	} else {
		if w, err = program.Walker(spec); err != nil {
			return nil, err
		}
	}
	return finishPrograms(d, w, resultBase, opt)
}
