package structures

import (
	"testing"

	"widx/internal/mem"
	"widx/internal/vm"
	"widx/internal/widx"
)

// testConfig is the shared small build used across the cross-check tests:
// big enough for multi-level towers, a two-level B+-tree and three LSM
// levels, small enough to keep the suite fast.
func testConfig(k Kind) BuildConfig {
	cfg := BuildConfig{Kind: k, Keys: 600, Probes: 400, Seed: 7717, Name: "test." + k.String()}
	if k == BTree {
		cfg.Span = 3 // exercise the leaf-chain range scan
	}
	if k == BFS {
		cfg.Keys = 120 // vertices; mean degree 8 keeps the match stream bounded
		cfg.Probes = 200
	}
	return cfg
}

// buildTest builds one instance plus its result region and hierarchy.
func buildTest(t *testing.T, cfg BuildConfig) (Instance, *vm.AddressSpace, uint64) {
	t.Helper()
	as := vm.New()
	inst, err := Build(as, cfg)
	if err != nil {
		t.Fatalf("Build(%v): %v", cfg.Kind, err)
	}
	matches, traces := inst.Reference()
	if len(traces) != inst.ProbeCount() {
		t.Fatalf("%v: %d traces for %d probes", cfg.Kind, len(traces), inst.ProbeCount())
	}
	if len(matches) == 0 {
		t.Fatalf("%v: reference found no matches; the cross-check would be vacuous", cfg.Kind)
	}
	resultBase := as.AllocAligned(cfg.Name+".results", uint64(len(matches))*8+64)
	return inst, as, resultBase
}

// runWidx executes the instance's generated bundle on a fresh accelerator
// and returns the offload result.
func runWidx(t *testing.T, inst Instance, as *vm.AddressSpace, resultBase uint64, opt ProgramOptions) *widx.OffloadResult {
	t.Helper()
	progs, err := inst.Programs(resultBase, opt)
	if err != nil {
		t.Fatalf("%v: Programs: %v", inst.Kind(), err)
	}
	hier := mem.NewHierarchy(mem.DefaultConfig())
	acc, err := widx.New(widx.DefaultConfig(), hier, as, progs.Dispatcher, progs.Walker, progs.Producer)
	if err != nil {
		t.Fatalf("%v: widx.New: %v", inst.Kind(), err)
	}
	res, err := acc.Offload(widx.OffloadRequest{KeyBase: inst.ProbeKeyBase(), KeyCount: uint64(inst.ProbeCount())})
	if err != nil {
		t.Fatalf("%v: Offload: %v", inst.Kind(), err)
	}
	return res
}

// checkMatches asserts the walker's match stream equals the reference
// bit for bit, in order — the zoo's core contract.
func checkMatches(t *testing.T, kind Kind, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%v: walker emitted %d matches, reference has %d", kind, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%v: match %d = %#x, reference %#x", kind, i, got[i], want[i])
		}
	}
}

func TestWalkerMatchesReference(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			inst, as, resultBase := buildTest(t, testConfig(k))
			want, _ := inst.Reference()
			res := runWidx(t, inst, as, resultBase, ProgramOptions{})
			checkMatches(t, k, res.Matches, want)
			// The producer must have stored the same stream to the result
			// region (the functional output the host core consumes).
			for i, m := range want {
				if got := as.Read64(resultBase + uint64(i)*8); got != m {
					t.Fatalf("%v: result region word %d = %#x, want %#x", k, i, got, m)
				}
			}
		})
	}
}

func TestTouchWalkerSameMatchesMorePrefetches(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			inst, as, resultBase := buildTest(t, testConfig(k))
			want, _ := inst.Reference()
			res := runWidx(t, inst, as, resultBase, ProgramOptions{TouchWalker: true})
			checkMatches(t, k, res.Matches, want)
			if res.MemStats.Prefetches == 0 {
				t.Fatalf("%v: touching walker issued no prefetches", k)
			}
		})
	}
}

func TestDispatcherPrefetchSameMatches(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			inst, as, resultBase := buildTest(t, testConfig(k))
			want, _ := inst.Reference()
			res := runWidx(t, inst, as, resultBase, ProgramOptions{PrefetchDist: 4})
			checkMatches(t, k, res.Matches, want)
			if res.MemStats.Prefetches == 0 {
				t.Fatalf("%v: prefetching dispatcher issued no prefetches", k)
			}
		})
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	for _, k := range Kinds() {
		cfg := testConfig(k)
		a, _, _ := buildTest(t, cfg)
		b, _, _ := buildTest(t, cfg)
		am, _ := a.Reference()
		bm, _ := b.Reference()
		if Fingerprint(am) != Fingerprint(bm) {
			t.Fatalf("%v: two builds from the same config disagree", k)
		}
		if a.Geometry() != b.Geometry() {
			t.Fatalf("%v: geometry not deterministic: %+v vs %+v", k, a.Geometry(), b.Geometry())
		}
	}
}

func TestGeometryAndRegions(t *testing.T) {
	for _, k := range Kinds() {
		inst, as, _ := buildTest(t, testConfig(k))
		g := inst.Geometry()
		if g.NodeBytes <= 0 || g.Fanout <= 0 || g.Levels <= 0 || g.FootprintBytes == 0 || g.Locality == "" {
			t.Fatalf("%v: degenerate geometry %+v", k, g)
		}
		regions := inst.Regions()
		if len(regions) == 0 {
			t.Fatalf("%v: no warmable regions", k)
		}
		var span uint64
		for _, r := range regions {
			if r[1] <= r[0] {
				t.Fatalf("%v: empty region %v", k, r)
			}
			span += r[1] - r[0]
		}
		if span != g.FootprintBytes {
			t.Fatalf("%v: footprint %d != region span %d", k, g.FootprintBytes, span)
		}
		// Regions must not cover the probe column: warming the structure
		// should not pre-install the input stream.
		probeEnd := inst.ProbeKeyBase() + uint64(inst.ProbeCount())*8
		for _, r := range regions {
			if r[0] < probeEnd && inst.ProbeKeyBase() < r[1] {
				t.Fatalf("%v: region %v overlaps the probe column", k, r)
			}
		}
		_ = as
	}
}

func TestBuildValidation(t *testing.T) {
	as := vm.New()
	bad := []BuildConfig{
		{Kind: SkipList, Keys: 0, Probes: 10, Name: "x"},
		{Kind: SkipList, Keys: 10, Probes: 0, Name: "x"},
		{Kind: SkipList, Keys: 10, Probes: 10, Name: ""},
		{Kind: BTree, Keys: 10, Probes: 10, Span: -1, Name: "x"},
		{Kind: Kind(99), Keys: 10, Probes: 10, Name: "x"},
	}
	for _, cfg := range bad {
		if _, err := Build(as, cfg); err == nil {
			t.Fatalf("Build accepted invalid config %+v", cfg)
		}
	}
	if _, err := Build(nil, testConfig(SkipList)); err == nil {
		t.Fatal("Build accepted a nil address space")
	}
}

// Golden reference fingerprints for the shared test build. These pin the
// functional output of every structure: a build-path change that alters
// what any walker produces must show up here as a deliberate diff.
var goldenFingerprints = map[Kind]uint64{
	HashJoin: 0xf238837bc65b86c5,
	SkipList: 0xf58b5233cd6da582,
	BTree:    0x5486e5a9fcf27cce,
	LSM:      0xfdb0976b27af852a,
	BFS:      0xc9b75b447f7ecb12,
}

func TestGoldenFingerprints(t *testing.T) {
	for _, k := range Kinds() {
		inst, _, _ := buildTest(t, testConfig(k))
		matches, _ := inst.Reference()
		got := Fingerprint(matches)
		if want := goldenFingerprints[k]; got != want {
			t.Errorf("%v: reference fingerprint %#016x, golden %#016x (update deliberately if the build changed)", k, got, want)
		}
	}
}

// TestMatchBoundsPartitionTheStream checks every structure's per-probe
// bounds: monotone, one entry per probe, ending at the stream length, and
// the slices they induce re-concatenate to the flattened match stream.
func TestMatchBoundsPartitionTheStream(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			as := vm.New()
			inst, err := Build(as, BuildConfig{Kind: kind, Keys: 512, Probes: 300, Span: 2, Seed: 99, Name: "b." + kind.String()})
			if err != nil {
				t.Fatal(err)
			}
			matches, _ := inst.Reference()
			bounds := inst.MatchBounds()
			if len(bounds) != inst.ProbeCount() {
				t.Fatalf("%d bounds for %d probes", len(bounds), inst.ProbeCount())
			}
			prev := 0
			for i, b := range bounds {
				if b < prev {
					t.Fatalf("bounds not monotone at probe %d: %d < %d", i, b, prev)
				}
				prev = b
			}
			if prev != len(matches) {
				t.Fatalf("bounds end at %d, stream has %d matches", prev, len(matches))
			}
		})
	}
}
