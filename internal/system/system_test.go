package system

import (
	"errors"
	"strings"
	"testing"
)

// scriptAgent is a deterministic fake agent: a list of access cycles it
// wants granted in order. It records the global grant sequence into a shared
// trace to verify the scheduler's merge order.
type scriptAgent struct {
	name    string
	cycles  []uint64
	next    int
	settled int
	trace   *[]string
	failOn  int // GrantMem index that errors (-1 = never)
}

func (a *scriptAgent) Name() string { return a.name }

func (a *scriptAgent) Settle() error {
	a.settled++
	return nil
}

func (a *scriptAgent) PendingMem() (uint64, bool) {
	if a.next >= len(a.cycles) {
		return 0, false
	}
	return a.cycles[a.next], true
}

func (a *scriptAgent) GrantMem() error {
	if a.failOn >= 0 && a.next == a.failOn {
		return errors.New(a.name + ": injected fault")
	}
	if a.trace != nil {
		*a.trace = append(*a.trace, a.name)
	}
	a.next++
	return nil
}

func (a *scriptAgent) Done() bool { return a.next >= len(a.cycles) }

func TestRunMergesAgentsInGlobalCycleOrder(t *testing.T) {
	var trace []string
	// a wants cycles 0, 10, 20; b wants 5, 6, 7; ties go to the earlier
	// agent index.
	a := &scriptAgent{name: "a", cycles: []uint64{0, 10, 20}, trace: &trace, failOn: -1}
	b := &scriptAgent{name: "b", cycles: []uint64{5, 6, 10}, trace: &trace, failOn: -1}
	if err := Run(a, b); err != nil {
		t.Fatal(err)
	}
	want := "a b b a b a" // 0, 5, 6, 10(a wins tie), 10(b), 20
	if got := strings.Join(trace, " "); got != want {
		t.Fatalf("grant order %q, want %q", got, want)
	}
	if a.settled == 0 || b.settled == 0 {
		t.Fatal("agents never settled")
	}
}

func TestRunPropagatesAgentErrors(t *testing.T) {
	a := &scriptAgent{name: "ok", cycles: []uint64{1, 2}, failOn: -1}
	b := &scriptAgent{name: "bad", cycles: []uint64{0, 3}, failOn: 1}
	err := Run(a, b)
	if err == nil || !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("err = %v", err)
	}
}

// stalledAgent claims work remains but never yields a pending access.
type stalledAgent struct{ scriptAgent }

func (s *stalledAgent) Done() bool { return false }

func TestRunDetectsStalledAgents(t *testing.T) {
	s := &stalledAgent{scriptAgent{name: "wedged", failOn: -1}}
	err := Run(s)
	if err == nil || !strings.Contains(err.Error(), "stalled") || !strings.Contains(err.Error(), "wedged") {
		t.Fatalf("err = %v", err)
	}
	if err := Run(); err == nil {
		t.Fatal("empty agent list accepted")
	}
}

// TestRunHandlesStaggeredStartCycles pins the property the CMP
// arrival-stagger knob (sim.Config.Stagger) rests on: agents whose first
// pending accesses are offset by arbitrary start cycles merge into one
// globally monotonic grant stream with no scheduler support beyond the
// heap — a late agent simply enters the merge at its offset.
func TestRunHandlesStaggeredStartCycles(t *testing.T) {
	var trace []string
	// Three agents staggered by 100 cycles each, with overlapping tails.
	a := &scriptAgent{name: "a", cycles: []uint64{0, 50, 150, 250}, trace: &trace, failOn: -1}
	b := &scriptAgent{name: "b", cycles: []uint64{100, 160, 260}, trace: &trace, failOn: -1}
	c := &scriptAgent{name: "c", cycles: []uint64{200, 255}, trace: &trace, failOn: -1}
	if err := Run(a, b, c); err != nil {
		t.Fatal(err)
	}
	// Verify global monotonicity directly from the scripted cycles in grant
	// order rather than a hand-computed sequence.
	cyclesOf := map[string][]uint64{"a": a.cycles, "b": b.cycles, "c": c.cycles}
	idx := map[string]int{}
	last := uint64(0)
	for i, name := range trace {
		cyc := cyclesOf[name][idx[name]]
		idx[name]++
		if cyc < last {
			t.Fatalf("grant %d (%s at cycle %d) precedes cycle %d: staggered merge not monotonic",
				i, name, cyc, last)
		}
		last = cyc
	}
	if len(trace) != 9 {
		t.Fatalf("granted %d accesses, want 9", len(trace))
	}
	if !a.Done() || !b.Done() || !c.Done() {
		t.Fatal("staggered agents did not drain")
	}
}
