package system

import (
	"errors"
	"strings"
	"testing"
)

// scriptAgent is a deterministic fake agent: a list of access cycles it
// wants granted in order. It records the global grant sequence into a shared
// trace to verify the scheduler's merge order.
type scriptAgent struct {
	name    string
	cycles  []uint64
	next    int
	settled int
	trace   *[]string
	failOn  int // GrantMem index that errors (-1 = never)
}

func (a *scriptAgent) Name() string { return a.name }

func (a *scriptAgent) Settle() error {
	a.settled++
	return nil
}

func (a *scriptAgent) PendingMem() (uint64, bool) {
	if a.next >= len(a.cycles) {
		return 0, false
	}
	return a.cycles[a.next], true
}

func (a *scriptAgent) GrantMem() error {
	if a.failOn >= 0 && a.next == a.failOn {
		return errors.New(a.name + ": injected fault")
	}
	if a.trace != nil {
		*a.trace = append(*a.trace, a.name)
	}
	a.next++
	return nil
}

func (a *scriptAgent) Done() bool { return a.next >= len(a.cycles) }

func TestRunMergesAgentsInGlobalCycleOrder(t *testing.T) {
	var trace []string
	// a wants cycles 0, 10, 20; b wants 5, 6, 7; ties go to the earlier
	// agent index.
	a := &scriptAgent{name: "a", cycles: []uint64{0, 10, 20}, trace: &trace, failOn: -1}
	b := &scriptAgent{name: "b", cycles: []uint64{5, 6, 10}, trace: &trace, failOn: -1}
	if err := Run(a, b); err != nil {
		t.Fatal(err)
	}
	want := "a b b a b a" // 0, 5, 6, 10(a wins tie), 10(b), 20
	if got := strings.Join(trace, " "); got != want {
		t.Fatalf("grant order %q, want %q", got, want)
	}
	if a.settled == 0 || b.settled == 0 {
		t.Fatal("agents never settled")
	}
}

func TestRunPropagatesAgentErrors(t *testing.T) {
	a := &scriptAgent{name: "ok", cycles: []uint64{1, 2}, failOn: -1}
	b := &scriptAgent{name: "bad", cycles: []uint64{0, 3}, failOn: 1}
	err := Run(a, b)
	if err == nil || !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("err = %v", err)
	}
}

// stalledAgent claims work remains but never yields a pending access.
type stalledAgent struct{ scriptAgent }

func (s *stalledAgent) Done() bool { return false }

func TestRunDetectsStalledAgents(t *testing.T) {
	s := &stalledAgent{scriptAgent{name: "wedged", failOn: -1}}
	err := Run(s)
	if err == nil || !strings.Contains(err.Error(), "stalled") || !strings.Contains(err.Error(), "wedged") {
		t.Fatalf("err = %v", err)
	}
	if err := Run(); err == nil {
		t.Fatal("empty agent list accepted")
	}
}
