package system

// CycleHeap is a binary min-heap of (cycle, order) pairs used to pick the
// globally earliest pending memory access without scanning every candidate
// per grant. Ordering is by cycle, ties broken by ascending order index —
// exactly the tie-break the retired linear scans applied (first-considered
// wins), so replacing a scan with the heap is result-identical.
//
// The zero value is ready to use. Entries are pushed when a candidate starts
// waiting on memory and popped when granted; candidates never change their
// cycle while queued, so no decrease-key operation is needed.
type CycleHeap struct {
	entries []heapEntry
}

type heapEntry struct {
	cycle uint64
	order int
}

// Len returns the number of queued entries.
func (h *CycleHeap) Len() int { return len(h.entries) }

// Grow ensures the heap can hold at least n entries without reallocating.
// Schedulers with a fixed candidate population (one entry per unit or agent,
// never queued twice) call it once up front so the steady-state grant loop
// never touches the allocator.
func (h *CycleHeap) Grow(n int) {
	if cap(h.entries) < n {
		entries := make([]heapEntry, len(h.entries), n)
		copy(entries, h.entries)
		h.entries = entries
	}
}

// Reset empties the heap, retaining its backing storage.
func (h *CycleHeap) Reset() { h.entries = h.entries[:0] }

// less orders entries by cycle, then by order index.
func (h *CycleHeap) less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	return a.order < b.order
}

// Push queues a candidate.
func (h *CycleHeap) Push(cycle uint64, order int) {
	h.entries = append(h.entries, heapEntry{cycle: cycle, order: order})
	// Sift up.
	i := len(h.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.entries[i], h.entries[parent] = h.entries[parent], h.entries[i]
		i = parent
	}
}

// Peek returns the minimum entry without removing it. ok is false when the
// heap is empty.
func (h *CycleHeap) Peek() (cycle uint64, order int, ok bool) {
	if len(h.entries) == 0 {
		return 0, 0, false
	}
	return h.entries[0].cycle, h.entries[0].order, true
}

// Pop removes and returns the minimum entry. ok is false when the heap is
// empty.
func (h *CycleHeap) Pop() (cycle uint64, order int, ok bool) {
	if len(h.entries) == 0 {
		return 0, 0, false
	}
	top := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.entries) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.entries) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.entries[i], h.entries[smallest] = h.entries[smallest], h.entries[i]
		i = smallest
	}
	return top.cycle, top.order, true
}
