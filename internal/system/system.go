// Package system is the shared-memory multi-agent simulation core: it drives
// any number of Agents — Widx accelerators, out-of-order or in-order host
// cores — against one shared memory level (internal/mem.SharedLevel) by
// granting, at every step, the single pending memory access with the
// globally smallest cycle.
//
// The execution discipline generalizes the PR 2 single-accelerator
// scheduler: each agent is a resumable engine that settles all of its
// agent-local progress (computation, queue traffic) without global
// coordination, then yields with the cycle of its earliest pending shared-
// memory access. The scheduler merges every agent's pending pool through a
// binary min-heap keyed by (cycle, agent order), so the shared hierarchy
// observes one monotonically non-decreasing request stream regardless of how
// many agents contend — the contract mem.SharedLevel.SetStrictOrder asserts.
//
// Granting the global minimum preserves each agent's solo semantics exactly:
// with a single agent the scheduler degenerates to "settle, grant my
// earliest access, repeat", which is the PR 2 loop, so single-agent runs are
// byte-identical to the pre-system API. With several agents, contention is
// fully captured inside the shared level (LLC tags, MSHR pool, controller
// slots); the scheduler itself never reorders an agent's own accesses.
package system

import "fmt"

// Agent is a resumable execution engine that yields on shared-memory
// accesses. internal/widx offloads and internal/cores probe replays both
// implement it; anything that does can be co-scheduled on one shared
// hierarchy.
//
// The scheduler's contract with an agent:
//
//   - Settle performs all agent-local progress that needs no global
//     ordering (computation, queue pushes and pops, starting units on
//     available inputs) and returns when quiescent.
//   - PendingMem reports the cycle of the agent's earliest pending memory
//     access, ok=false when the agent is not waiting on memory.
//   - GrantMem performs exactly that access. It is only called after
//     PendingMem returned ok=true, and the agent's next PendingMem cycle
//     must be >= the granted cycle (per-agent monotonicity) — the property
//     that makes granting the global minimum globally monotonic.
//   - Done reports completion of all of the agent's work.
type Agent interface {
	Name() string
	Settle() error
	PendingMem() (cycle uint64, ok bool)
	GrantMem() error
	Done() bool
}

// Run executes the agents to completion on the event scheduler. It returns
// the first agent error, or a stall error naming the agents that still have
// work but no pending access (a deadlocked or buggy engine).
func Run(agents ...Agent) error {
	if len(agents) == 0 {
		return fmt.Errorf("system: no agents to run")
	}
	var ready CycleHeap
	ready.Grow(len(agents))
	for i := range agents {
		if err := agents[i].Settle(); err != nil {
			return err
		}
		if cycle, ok := agents[i].PendingMem(); ok {
			ready.Push(cycle, i)
		}
	}
	for {
		_, i, ok := ready.Pop()
		if !ok {
			break
		}
		// Granting agent i's access can only unblock agent i: agents share
		// no queues, and the memory level is passive. Re-settling the
		// granted agent alone keeps the scheduler O(log n) per grant — and
		// since i is then the only agent whose pending access moved, it can
		// be re-granted directly for as long as it still beats the heap's
		// minimum under the (cycle, agent order) tie-break. The batch makes
		// exactly the picks the Push+Pop round trip would (an agent's
		// pending cycle never decreases), but a burst of back-to-back
		// accesses from one agent — the common case when one agent streams
		// while the others stall on memory — costs zero heap traffic.
		for {
			if err := agents[i].GrantMem(); err != nil {
				return err
			}
			if err := agents[i].Settle(); err != nil {
				return err
			}
			cycle, pending := agents[i].PendingMem()
			if !pending {
				break
			}
			if top, order, queued := ready.Peek(); queued && (top < cycle || (top == cycle && order < i)) {
				ready.Push(cycle, i)
				break
			}
		}
	}
	for _, a := range agents {
		if !a.Done() {
			return fmt.Errorf("system: scheduler stalled: agent %q has work remaining but no pending memory access", a.Name())
		}
	}
	return nil
}
