package system

import (
	"testing"
)

// xorshift is a tiny deterministic PRNG for synthetic grant workloads.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// scanPick returns the index of the smallest pending cycle (ties: lowest
// index) — the retired pickMem discipline, kept here as the reference the
// heap must match and the baseline the benchmark compares against.
func scanPick(pending []uint64, waiting []bool) int {
	best := -1
	for i := range pending {
		if !waiting[i] {
			continue
		}
		if best < 0 || pending[i] < pending[best] {
			best = i
		}
	}
	return best
}

// TestHeapMatchesScanOrder drives the same synthetic grant sequence through
// the heap and the reference scan and requires identical pick order,
// including ties — the property that made swapping pickMem for the heap
// result-identical.
func TestHeapMatchesScanOrder(t *testing.T) {
	const units = 37
	const grants = 20000
	rng := xorshift(12345)

	pending := make([]uint64, units)
	waiting := make([]bool, units)
	var h CycleHeap
	for i := range pending {
		pending[i] = rng.next() % 64 // dense range forces plenty of ties
		waiting[i] = true
		h.Push(pending[i], i)
	}
	for g := 0; g < grants; g++ {
		want := scanPick(pending, waiting)
		cycle, got, ok := h.Pop()
		if !ok || got != want || cycle != pending[want] {
			t.Fatalf("grant %d: heap picked (%d, cyc %d), scan picked (%d, cyc %d)",
				g, got, cycle, want, pending[want])
		}
		// Monotonically advance the granted unit and requeue it, like a
		// unit issuing its next access.
		pending[got] += rng.next() % 16
		h.Push(pending[got], got)
	}
}

// TestHeapBasics covers the empty-heap and Reset paths.
func TestHeapBasics(t *testing.T) {
	var h CycleHeap
	if _, _, ok := h.Pop(); ok {
		t.Fatal("pop from empty heap succeeded")
	}
	if _, _, ok := h.Peek(); ok {
		t.Fatal("peek at empty heap succeeded")
	}
	h.Push(5, 0)
	h.Push(5, 1)
	h.Push(1, 2)
	if c, o, ok := h.Peek(); !ok || c != 1 || o != 2 {
		t.Fatalf("peek = (%d,%d,%v)", c, o, ok)
	}
	if h.Len() != 3 {
		t.Fatalf("len = %d", h.Len())
	}
	// Equal cycles pop in order-index order.
	h.Pop()
	if _, o, _ := h.Pop(); o != 0 {
		t.Fatalf("tie broke to order %d, want 0", o)
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("reset did not empty the heap")
	}
}

// benchGrants runs a synthetic grant loop: n units, each granted access
// re-arms with a monotonically later cycle. pick abstracts the selection
// policy under test.
func benchGrants(b *testing.B, n int, useHeap bool) {
	pending := make([]uint64, n)
	waiting := make([]bool, n)
	rng := xorshift(99)
	var h CycleHeap
	reset := func() {
		h.Reset()
		for i := range pending {
			pending[i] = rng.next() % 1024
			waiting[i] = true
			if useHeap {
				h.Push(pending[i], i)
			}
		}
	}
	reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var u int
		if useHeap {
			_, u, _ = h.Pop()
		} else {
			u = scanPick(pending, waiting)
		}
		pending[u] += 1 + rng.next()%64
		if useHeap {
			h.Push(pending[u], u)
		}
	}
}

// The event-heap satellite's guard: the heap must not regress small unit
// counts (a 4-walker offload schedules ~7 units, ≤10 is the common case)
// and must win at large ones (multi-accelerator configs with hundreds of
// units). Compare Heap vs Scan at matching sizes:
//
//	go test -bench 'GrantSelection' ./internal/system/
func BenchmarkGrantSelectionScan4(b *testing.B)    { benchGrants(b, 4, false) }
func BenchmarkGrantSelectionHeap4(b *testing.B)    { benchGrants(b, 4, true) }
func BenchmarkGrantSelectionScan10(b *testing.B)   { benchGrants(b, 10, false) }
func BenchmarkGrantSelectionHeap10(b *testing.B)   { benchGrants(b, 10, true) }
func BenchmarkGrantSelectionScan100(b *testing.B)  { benchGrants(b, 100, false) }
func BenchmarkGrantSelectionHeap100(b *testing.B)  { benchGrants(b, 100, true) }
func BenchmarkGrantSelectionScan1000(b *testing.B) { benchGrants(b, 1000, false) }
func BenchmarkGrantSelectionHeap1000(b *testing.B) { benchGrants(b, 1000, true) }
