package model

import (
	"testing"
	"testing/quick"

	"widx/internal/mem"
)

func TestDefaultParams(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.L1Ports != 2 || p.MSHRs != 10 {
		t.Fatalf("Table 2 constraints wrong: %+v", p)
	}
	if p.MemLatencyCyc != 90 {
		t.Fatalf("memory latency = %v cycles, want 90", p.MemLatencyCyc)
	}
	// 12.8 GB/s * 0.7 -> ~0.07 blocks per cycle per controller.
	if p.MemBWBlocksPerCycle < 0.06 || p.MemBWBlocksPerCycle > 0.08 {
		t.Fatalf("MC bandwidth = %v blocks/cycle", p.MemBWBlocksPerCycle)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := map[string]func(*Params){
		"ports": func(p *Params) { p.L1Ports = 0 },
		"mshrs": func(p *Params) { p.MSHRs = 0 },
		"bw":    func(p *Params) { p.MemBWBlocksPerCycle = 0 },
		"keys":  func(p *Params) { p.KeysPerBlock = 0 },
		"walk":  func(p *Params) { p.WalkMemOps = 0 },
	}
	for name, mutate := range mutations {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: invalid params accepted", name)
		}
	}
}

func TestAMATAndCycles(t *testing.T) {
	p := Default()
	// No misses anywhere: AMAT equals the L1 latency.
	if got := p.AMAT(0, 0); got != p.L1LatencyCyc {
		t.Fatalf("AMAT(0,0) = %v", got)
	}
	// Full misses: L1 + LLC + memory.
	want := p.L1LatencyCyc + p.LLCLatencyCyc + p.MemLatencyCyc
	if got := p.AMAT(1, 1); got != want {
		t.Fatalf("AMAT(1,1) = %v, want %v", got, want)
	}
	// Equation 1: cycles grow monotonically with the LLC miss ratio.
	if p.WalkCycles(0.9) <= p.WalkCycles(0.1) {
		t.Fatal("walk cycles should grow with the LLC miss ratio")
	}
	if p.HashCycles(0.9) <= p.HashCycles(0.1) {
		t.Fatal("hash cycles should grow with the LLC miss ratio")
	}
	// Hashing is much cheaper than walking because of key spatial locality.
	if p.HashCycles(0.5) >= p.WalkCycles(0.5) {
		t.Fatal("hashing one key should be cheaper than walking one node")
	}
}

// TestFig4a_L1PortConstraint checks the paper's two conclusions from
// Figure 4a: a single-ported L1 becomes the bottleneck above roughly six
// walkers at low LLC miss ratios, while a two-ported L1 comfortably supports
// ten walkers.
func TestFig4a_L1PortConstraint(t *testing.T) {
	p := Default()
	lowMiss := 0.0
	if got := p.L1AccessesPerCycle(lowMiss, 10); got >= 2 {
		t.Fatalf("10 walkers should fit under 2 L1 ports at low miss ratio, demand=%v", got)
	}
	if got := p.L1AccessesPerCycle(lowMiss, 6); got <= 0.8 {
		t.Fatalf("6 walkers at low miss ratio should pressure a single port, demand=%v", got)
	}
	// Single-ported limit sits around 5-7 walkers at low miss ratios.
	singlePort := p
	singlePort.L1Ports = 1
	n := singlePort.MaxWalkersByL1Ports(0.0)
	if n < 4 || n > 8 {
		t.Fatalf("single-port walker limit = %d, expected ~5-7", n)
	}
	// Higher miss ratios relax the port pressure (fewer accesses per cycle).
	if p.L1AccessesPerCycle(0.9, 8) >= p.L1AccessesPerCycle(0.0, 8) {
		t.Fatal("L1 pressure should drop as the LLC miss ratio rises")
	}
}

// TestFig4b_MSHRConstraint checks Equation 3's conclusion: 8-10 MSHRs limit
// the design to four or five walkers.
func TestFig4b_MSHRConstraint(t *testing.T) {
	p := Default()
	if got := p.OutstandingL1Misses(4); got != 8 {
		t.Fatalf("4 walkers should keep 8 misses outstanding, got %v", got)
	}
	if got := p.MaxWalkersByMSHRs(); got != 5 {
		t.Fatalf("10 MSHRs should support 5 walkers, got %d", got)
	}
	p8 := p
	p8.MSHRs = 8
	if got := p8.MaxWalkersByMSHRs(); got != 4 {
		t.Fatalf("8 MSHRs should support 4 walkers, got %d", got)
	}
	// Growth is linear in the walker count.
	if p.OutstandingL1Misses(10) != 2.5*p.OutstandingL1Misses(4) {
		t.Fatal("outstanding misses should grow linearly with walkers")
	}
}

// TestFig4c_MemoryBandwidthConstraint checks Figure 4c's endpoints: roughly
// eight walkers per memory controller when LLC misses are rare, dropping to
// about four at a 100% LLC miss ratio.
func TestFig4c_MemoryBandwidthConstraint(t *testing.T) {
	p := Default()
	atLow := p.WalkersPerMC(0.1)
	atHigh := p.WalkersPerMC(1.0)
	if atLow <= atHigh {
		t.Fatal("more LLC misses must mean fewer walkers per MC")
	}
	if atHigh < 3 || atHigh > 6 {
		t.Fatalf("walkers per MC at full miss ratio = %v, paper shows ~4", atHigh)
	}
	if atLow < 7 {
		t.Fatalf("walkers per MC at low miss ratio = %v, paper shows ~8", atLow)
	}
}

// TestFig5_DispatcherFeedsFourWalkers checks the paper's summary of Figure 5:
// one dispatcher feeds up to four walkers, except for very shallow buckets
// (one node per bucket) with low LLC miss ratios.
func TestFig5_DispatcherFeedsFourWalkers(t *testing.T) {
	p := Default()
	// Deep-ish buckets or realistic miss ratios: 4 walkers stay busy.
	if u := p.WalkerUtilization(0.5, 4, 2); u < 0.95 {
		t.Fatalf("4 walkers, 2 nodes/bucket, 50%% LLC miss: utilization %v, want ~1", u)
	}
	if u := p.WalkerUtilization(0.3, 4, 3); u < 0.95 {
		t.Fatalf("4 walkers, 3 nodes/bucket: utilization %v, want ~1", u)
	}
	// Very shallow buckets with low miss ratio: the dispatcher cannot keep up.
	if u := p.WalkerUtilization(0.0, 8, 1); u > 0.6 {
		t.Fatalf("8 walkers, 1 node/bucket, L1-resident: utilization %v, expected low", u)
	}
	// Utilization never exceeds 1 and decreases with more walkers.
	if p.WalkerUtilization(0.5, 2, 3) > 1 {
		t.Fatal("utilization must be clamped to 1")
	}
	if p.WalkerUtilization(0.5, 8, 1) >= p.WalkerUtilization(0.5, 2, 1) {
		t.Fatal("utilization should fall as walkers share one dispatcher")
	}
	if p.WalkerUtilization(0.5, 0, 1) != 0 {
		t.Fatal("zero walkers should report zero utilization")
	}
}

func TestMaxWalkersPerDispatcher(t *testing.T) {
	p := Default()
	// The paper's summary: a single dispatcher suffices for four walkers in
	// practical settings (here: half the accesses missing the LLC, 2-node
	// buckets, 90% utilization target).
	if n := p.MaxWalkersPerDispatcher(0.5, 2, 0.9); n < 4 {
		t.Fatalf("dispatcher should feed at least 4 walkers, got %d", n)
	}
	// Shallow buckets on an L1-resident index: fewer walkers are kept busy.
	if n := p.MaxWalkersPerDispatcher(0.0, 1, 0.9); n > 3 {
		t.Fatalf("L1-resident shallow buckets should limit the dispatcher, got %d", n)
	}
}

// TestSummaryRecommendation reproduces the Section 3.2 summary: around four
// walkers per accelerator in practical settings.
func TestSummaryRecommendation(t *testing.T) {
	p := Default()
	for _, miss := range []float64{0.3, 0.5, 0.8, 1.0} {
		n := p.RecommendedWalkers(miss)
		if n < 3 || n > 6 {
			t.Fatalf("recommended walkers at LLC miss %.1f = %d, expected ~4", miss, n)
		}
	}
}

func TestFigureSweeps(t *testing.T) {
	p := Default()
	f4a := Figure4a(p)
	if len(f4a) != 5 {
		t.Fatalf("Figure 4a should have 5 curves, got %d", len(f4a))
	}
	for _, s := range f4a {
		if s.Len() != 11 {
			t.Fatalf("curve %q has %d samples", s.Label, s.Len())
		}
		if x, _ := s.Point(0); x != 0 {
			t.Fatal("sweep should start at 0")
		}
	}
	// More walkers always demand more L1 bandwidth at the same miss ratio.
	for i := 0; i < f4a[0].Len(); i++ {
		if f4a[4].Y[i] <= f4a[0].Y[i] {
			t.Fatal("10-walker curve should dominate the 1-walker curve")
		}
	}

	f4b := Figure4b(p)
	if f4b.Len() != 10 || f4b.Y[9] != p.OutstandingL1Misses(10) {
		t.Fatalf("Figure 4b sweep wrong: %+v", f4b)
	}

	f4c := Figure4c(p)
	if f4c.Len() != 10 {
		t.Fatalf("Figure 4c should sweep 0.1..1.0, got %d points", f4c.Len())
	}
	for i := 1; i < f4c.Len(); i++ {
		if f4c.Y[i] > f4c.Y[i-1] {
			t.Fatal("walkers per MC must be non-increasing in the miss ratio")
		}
	}

	for _, depth := range []float64{1, 2, 3} {
		f5 := Figure5(p, depth)
		if len(f5) != 3 {
			t.Fatalf("Figure 5 should have 3 curves, got %d", len(f5))
		}
		for _, s := range f5 {
			for _, y := range s.Y {
				if y < 0 || y > 1 {
					t.Fatalf("utilization out of range: %v", y)
				}
			}
		}
	}
}

func TestFromMemConfigConsistency(t *testing.T) {
	cfg := mem.DefaultConfig()
	cfg.L1MSHRs = 8
	p := FromMemConfig(cfg)
	if p.MSHRs != 8 {
		t.Fatal("FromMemConfig did not pick up the MSHR count")
	}
}

// Property: utilization is monotonically non-increasing in the walker count
// and non-decreasing in bucket depth, for any miss ratio.
func TestPropertyUtilizationMonotone(t *testing.T) {
	p := Default()
	f := func(missRaw uint8, depthRaw uint8) bool {
		miss := float64(missRaw%101) / 100
		depth := float64(depthRaw%4) + 1
		prev := 2.0
		for _, n := range []int{1, 2, 4, 8} {
			u := p.WalkerUtilization(miss, n, depth)
			if u > prev+1e-9 {
				return false
			}
			prev = u
		}
		return p.WalkerUtilization(miss, 4, depth+1) >= p.WalkerUtilization(miss, 4, depth)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: off-chip demand grows with the LLC miss ratio, so walkers-per-MC
// shrinks.
func TestPropertyBandwidthMonotone(t *testing.T) {
	p := Default()
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw%100+1) / 100
		b := float64(bRaw%100+1) / 100
		if a > b {
			a, b = b, a
		}
		return p.WalkersPerMC(a)+1e-9 >= p.WalkersPerMC(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
