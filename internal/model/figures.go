package model

import "fmt"

// Series is one labelled curve of a figure: Y values sampled at the X points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Point returns the (x, y) pair at index i.
func (s Series) Point(i int) (float64, float64) { return s.X[i], s.Y[i] }

// Len returns the number of samples.
func (s Series) Len() int { return len(s.X) }

// llcMissSweep is the x-axis of Figures 4a, 4c and 5.
func llcMissSweep() []float64 {
	xs := make([]float64, 0, 11)
	for m := 0.0; m <= 1.0001; m += 0.1 {
		xs = append(xs, float64(int(m*10+0.5))/10)
	}
	return xs
}

// Figure4a reproduces Figure 4a: L1-D accesses per cycle as a function of the
// LLC miss ratio, one curve per walker count (1, 2, 4, 8, 10). The horizontal
// capacity lines are the L1 port count (1 or 2).
func Figure4a(p Params) []Series {
	var out []Series
	for _, n := range []int{1, 2, 4, 8, 10} {
		s := Series{Label: fmt.Sprintf("%d walkers", n), X: llcMissSweep()}
		for _, m := range s.X {
			s.Y = append(s.Y, p.L1AccessesPerCycle(m, n))
		}
		out = append(out, s)
	}
	return out
}

// Figure4b reproduces Figure 4b: outstanding L1-D misses as a function of the
// walker count (1..10). The MSHR count bounds the usable walker count.
func Figure4b(p Params) Series {
	s := Series{Label: "outstanding L1 misses"}
	for n := 1; n <= 10; n++ {
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, p.OutstandingL1Misses(n))
	}
	return s
}

// Figure4c reproduces Figure 4c: walkers sustainable per memory controller as
// a function of the LLC miss ratio.
func Figure4c(p Params) Series {
	s := Series{Label: "walkers per MC"}
	for _, m := range llcMissSweep() {
		if m == 0 {
			continue // the paper's x-axis starts at 0.1; zero misses means no off-chip demand
		}
		s.X = append(s.X, m)
		s.Y = append(s.Y, p.WalkersPerMC(m))
	}
	return s
}

// Figure5 reproduces Figure 5: walker utilization with a single shared
// dispatcher, as a function of the LLC miss ratio, one curve per walker count
// (2, 4, 8), for the given nodes-per-bucket depth (the paper shows 1, 2, 3).
func Figure5(p Params, nodesPerBucket float64) []Series {
	var out []Series
	for _, n := range []int{8, 4, 2} {
		s := Series{Label: fmt.Sprintf("%d walkers", n), X: llcMissSweep()}
		for _, m := range s.X {
			s.Y = append(s.Y, p.WalkerUtilization(m, n, nodesPerBucket))
		}
		out = append(out, s)
	}
	return out
}
