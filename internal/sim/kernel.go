package sim

import (
	"fmt"

	"widx/internal/cores"
	"widx/internal/join"
	"widx/internal/sampling"
	"widx/internal/stats"
	"widx/internal/widx"
)

// KernelPoint is one bar of Figures 8a/8b: a size class at a walker count.
type KernelPoint struct {
	Size    join.SizeClass
	Walkers int
	// CyclesPerTuple is the Widx indexing cost at this point.
	CyclesPerTuple float64
	// Breakdown is the per-tuple Comp/Mem/TLB/Idle split of Figure 8a.
	Breakdown Breakdown
	// Speedup is the Figure 8b speedup over the out-of-order baseline.
	Speedup float64
	// Raw is the offload's timing detail (per-walker breakdowns, queue
	// stalls, memory stats with the MSHR-occupancy histogram) for offline
	// analysis such as cmd/widxsim's -breakdown-json dump. Its Matches
	// slice is dropped to avoid retaining per-match payloads.
	Raw *widx.OffloadResult
}

// rawDetail strips the bulk match payloads from an offload result, keeping
// only the timing detail the report consumers read.
func rawDetail(res *widx.OffloadResult) *widx.OffloadResult {
	detail := *res
	detail.Matches = nil
	return &detail
}

// KernelExperiment is the full hash-join kernel study (Figure 8).
type KernelExperiment struct {
	// OoOCyclesPerTuple is the baseline cost per size class.
	OoOCyclesPerTuple map[join.SizeClass]float64
	// Points holds one entry per (size, walkers) pair, in sweep order.
	Points []KernelPoint
	// NormalizationBase is the Small/1-walker cycles per tuple that
	// Figure 8a normalizes against.
	NormalizationBase float64
	// GeoMeanSpeedup1W is the one-walker speedup over OoO (the paper reports
	// a marginal 4% improvement).
	GeoMeanSpeedup1W float64
	// GeoMeanSpeedup4W is the four-walker speedup over OoO.
	GeoMeanSpeedup4W float64
	// Sampling carries the per-window confidence estimates when the run was
	// sampled (Config.SampleWindows > 0); nil otherwise, so unsampled JSON
	// reports are byte-identical to earlier revisions.
	Sampling *sampling.Report `json:"sampling,omitempty"`
}

// Normalized returns a point's cycles-per-tuple breakdown normalized to the
// Small/1-walker total, which is how Figure 8a presents it.
func (e *KernelExperiment) Normalized(p KernelPoint) Breakdown {
	if e.NormalizationBase == 0 {
		return Breakdown{}
	}
	return Breakdown{
		Comp: p.Breakdown.Comp / e.NormalizationBase,
		Mem:  p.Breakdown.Mem / e.NormalizationBase,
		TLB:  p.Breakdown.TLB / e.NormalizationBase,
		Idle: p.Breakdown.Idle / e.NormalizationBase,
	}
}

// kernelSizeResult holds one size class's design-point results, collected by
// the parallel runner and aggregated in size order afterwards.
type kernelSizeResult struct {
	oooCPT   float64
	points   []KernelPoint
	sampling *sampling.Report
}

// RunKernel runs the hash-join kernel experiment for the given size classes
// (Figure 8 uses Small, Medium and Large). Size classes fan out across
// workers — each builds its own kernel workload and address space — and the
// design points within a size fan out in turn.
func (c Config) RunKernel(sizes []join.SizeClass) (*KernelExperiment, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("sim: no kernel size classes")
	}

	perSize := make([]kernelSizeResult, len(sizes))
	// Split the worker budget between the size classes and the design points
	// within each, so nesting does not exceed c.Parallelism workers in total.
	inner := c.InnerConfig(len(sizes))
	if err := c.RunTasks(len(sizes), func(i int) error {
		size := sizes[i]
		ph, err := c.kernelPhase(size, true)
		if err != nil {
			return err
		}

		baseRes, widxRes, ps, err := inner.runPhase(ph,
			[]cores.Config{oooConfig()}, c.walkerPoints(0))
		if err != nil {
			return err
		}
		ooo := baseRes[0]
		perSize[i].oooCPT = ooo.CyclesPerTuple()
		if ps != nil {
			rep := ps.report()
			rep.Add(sampledMetricName(fmt.Sprintf("%s/ooo", size), metricCPT), cptSeries(ps.baseWins[0]))
			for j, w := range c.Walkers {
				addSampledPoint(rep, fmt.Sprintf("%s/%dw", size, w), ps.baseWins[0], ps.widxWins[j])
			}
			perSize[i].sampling = rep
		}
		for j, w := range c.Walkers {
			res := widxRes[j]
			perSize[i].points = append(perSize[i].points, KernelPoint{
				Size:           size,
				Walkers:        w,
				CyclesPerTuple: res.CyclesPerTuple(),
				Breakdown:      scaleBreakdown(res.WalkerTotal, w, res.Tuples),
				Speedup:        ooo.CyclesPerTuple() / res.CyclesPerTuple(),
				Raw:            rawDetail(res),
			})
		}
		return nil
	}); err != nil {
		return nil, err
	}

	exp := &KernelExperiment{OoOCyclesPerTuple: map[join.SizeClass]float64{}}
	var sp1, sp4 []float64
	for i, size := range sizes {
		exp.OoOCyclesPerTuple[size] = perSize[i].oooCPT
		if rep := perSize[i].sampling; rep != nil {
			if exp.Sampling == nil {
				exp.Sampling = rep
			} else {
				exp.Sampling.Merge("", rep)
			}
		}
		for _, point := range perSize[i].points {
			exp.Points = append(exp.Points, point)
			if size == sizes[0] && point.Walkers == c.Walkers[0] {
				exp.NormalizationBase = point.CyclesPerTuple
			}
			switch point.Walkers {
			case 1:
				sp1 = append(sp1, point.Speedup)
			case 4:
				sp4 = append(sp4, point.Speedup)
			}
		}
	}
	exp.GeoMeanSpeedup1W = stats.GeoMean(sp1)
	exp.GeoMeanSpeedup4W = stats.GeoMean(sp4)
	return exp, nil
}

// SamplingReport implements SamplingReporter.
func (e *KernelExperiment) SamplingReport() *sampling.Report { return e.Sampling }

// SampledMetricValues returns the experiment's full-run values under the
// sampled estimator's metric names, for -sampling-verify interval checks.
func (e *KernelExperiment) SampledMetricValues() map[string]float64 {
	m := make(map[string]float64)
	for size, v := range e.OoOCyclesPerTuple {
		m[sampledMetricName(fmt.Sprintf("%s/ooo", size), metricCPT)] = v
	}
	for _, p := range e.Points {
		prefix := fmt.Sprintf("%s/%dw", p.Size, p.Walkers)
		m[sampledMetricName(prefix, metricCPT)] = p.CyclesPerTuple
		m[sampledMetricName(prefix, metricSpeedup)] = p.Speedup
		if p.Raw != nil {
			m[sampledMetricName(prefix, metricMSHR)] = p.Raw.MemStats.MeanMSHROccupancy()
		}
	}
	return m
}

// Point returns the kernel point for a size class and walker count.
func (e *KernelExperiment) Point(size join.SizeClass, walkers int) (KernelPoint, bool) {
	for _, p := range e.Points {
		if p.Size == size && p.Walkers == walkers {
			return p, true
		}
	}
	return KernelPoint{}, false
}
