package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// A cancelled context stops the sequential task loop at the next boundary
// and surfaces the context error instead of a silent nil.
func TestRunTasksCancelSequential(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{Parallelism: 1, Ctx: ctx}
	var ran int
	err := cfg.RunTasks(10, func(i int) error {
		ran++
		if i == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunTasks after cancel: got err %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("tasks run after cancel at i=2: got %d, want 3", ran)
	}
}

// Cancellation mid-flight skips every task that has not started, returns
// promptly even when many tasks are queued behind slow ones, and reports
// the context error.
func TestRunTasksCancelParallel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{Parallelism: 4, Ctx: ctx}
	var started atomic.Int32
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- cfg.RunTasks(64, func(i int) error {
			started.Add(1)
			<-release // hold the first wave until the test cancels
			return nil
		})
	}()
	for started.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunTasks after cancel: got err %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunTasks did not return promptly after cancellation")
	}
	// Only the in-flight wave ran; the other 60 tasks were skipped.
	if n := started.Load(); n > 8 {
		t.Fatalf("tasks started after cancellation: %d, want at most the in-flight wave", n)
	}
}

// A task error still wins over a concurrent cancellation, preserving the
// historical lowest-indexed-error contract.
func TestRunTasksErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{Parallelism: 1, Ctx: ctx}
	boom := errors.New("boom")
	err := cfg.RunTasks(4, func(i int) error {
		if i == 1 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got err %v, want the task error", err)
	}
}
