package sim

import (
	"strings"
	"sync"
	"testing"

	"widx/internal/join"
	"widx/internal/structures"
	"widx/internal/warmstate"
)

// cmpQuickConfig returns a configuration small enough for unit tests but
// large enough that a Medium kernel stresses the shared LLC. Sequential
// parallelism keeps the co-run/solo comparison deterministic by
// construction (it is deterministic at any level; 1 keeps the test honest).
func cmpQuickConfig() Config {
	c := QuickConfig()
	c.Scale = 1.0 / 256
	c.SampleProbes = 1500
	c.Parallelism = 1
	return c
}

func TestParseAgents(t *testing.T) {
	specs, err := ParseAgents("4xooo+4xwidx:4w")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 8 {
		t.Fatalf("expected 8 agents, got %d", len(specs))
	}
	for i := 0; i < 4; i++ {
		if specs[i].Kind != AgentOoO {
			t.Fatalf("agent %d should be ooo: %v", i, specs[i])
		}
		if specs[4+i].Kind != AgentWidx || specs[4+i].Walkers != 4 {
			t.Fatalf("agent %d should be widx:4w: %v", 4+i, specs[4+i])
		}
	}
	single, err := ParseAgents("widx:2w")
	if err != nil || len(single) != 1 || single[0].Walkers != 2 {
		t.Fatalf("widx:2w parse: %v %v", single, err)
	}
	if s, err := ParseAgents("2xinorder"); err != nil || len(s) != 2 || s[0].Kind != AgentInOrder {
		t.Fatalf("inorder parse: %v %v", s, err)
	}
	for _, bad := range []string{"", "0xooo", "gpu", "ooo:4w", "widx:xw", "+", "widx:0w",
		"widx:4w:mshrs=0", "widx:4w:ways=-2", "ooo:mshrs=x", "widx:4w:depth=3"} {
		if _, err := ParseAgents(bad); err == nil {
			t.Fatalf("spec %q should not parse", bad)
		}
	}
	if got := (CMPAgentSpec{Kind: AgentWidx}).String(); got != "widx:4w" {
		t.Fatalf("default widx spec renders %q", got)
	}

	// Per-agent heterogeneity qualifiers: private MSHR and LLC-way
	// overrides, on any kind, rendering back through String.
	het, err := ParseAgents("1xooo:ways=16+2xwidx:2w:mshrs=5:ways=4")
	if err != nil {
		t.Fatal(err)
	}
	if len(het) != 3 || het[0].Kind != AgentOoO || het[0].LLCWays != 16 || het[0].MSHRs != 0 {
		t.Fatalf("host override parse wrong: %+v", het)
	}
	if het[1].Kind != AgentWidx || het[1].Walkers != 2 || het[1].MSHRs != 5 || het[1].LLCWays != 4 {
		t.Fatalf("widx override parse wrong: %+v", het[1])
	}
	if got := het[1].String(); got != "widx:2w:mshrs=5:ways=4" {
		t.Fatalf("heterogeneous spec renders %q", got)
	}
	if got := het[0].String(); got != "ooo:ways=16" {
		t.Fatalf("host spec renders %q", got)
	}
	// Round trip: a rendered spec parses back to itself.
	back, err := ParseAgents(het[1].String())
	if err != nil || len(back) != 1 || back[0] != het[1] {
		t.Fatalf("spec round trip failed: %+v %v", back, err)
	}
}

// TestCMPContentionMeasurable is the acceptance experiment: four co-running
// Widx agents on one shared hierarchy must exhibit measurable LLC and
// bandwidth contention relative to their solo runs, with per-agent stats
// that sum to the system totals.
func TestCMPContentionMeasurable(t *testing.T) {
	cfg := cmpQuickConfig()
	// Partition size ~Medium/8: one partition fits the 4 MB LLC, four
	// partitions are ~1.5x over it, so capacity contention is real.
	cfg.Scale = 1.0 / 8
	cfg.SampleProbes = 2000
	specs, err := ParseAgents("4xwidx:4w")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := cfg.RunCMP(join.Medium, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Agents) != 4 {
		t.Fatalf("expected 4 agents, got %d", len(exp.Agents))
	}

	// Per-agent shared-resource counters must sum to the shared level's own
	// totals — the attribution invariant contention reports rest on.
	var llcHits, llcMisses, combined, blocks, mshrStalls uint64
	maxCycles := uint64(0)
	for _, a := range exp.Agents {
		llcHits += a.MemStats.LLCHits
		llcMisses += a.MemStats.LLCMisses
		combined += a.MemStats.CombinedMisses
		blocks += a.MemStats.MemBlocks
		mshrStalls += a.MemStats.MSHRStallCycles
		if a.Cycles > maxCycles {
			maxCycles = a.Cycles
		}
	}
	if llcHits != exp.SharedStats.LLCHits || llcMisses != exp.SharedStats.LLCMisses ||
		combined != exp.SharedStats.CombinedMisses || blocks != exp.SharedStats.MemBlocks ||
		mshrStalls != exp.SharedStats.MSHRStallCycles {
		t.Fatalf("per-agent stats do not sum to shared totals:\nagents: hits=%d misses=%d combined=%d blocks=%d stalls=%d\nshared: %+v",
			llcHits, llcMisses, combined, blocks, mshrStalls, exp.SharedStats)
	}
	if exp.SystemCycles != maxCycles {
		t.Fatalf("system cycles %d != slowest agent %d", exp.SystemCycles, maxCycles)
	}

	// Contention must be measurable: every agent is at least as slow as its
	// solo run, and the system-level pressure metrics move.
	anySlow := false
	for _, a := range exp.Agents {
		if a.Cycles < a.SoloCycles {
			t.Fatalf("agent %s ran faster under contention: co %d vs solo %d", a.Name, a.Cycles, a.SoloCycles)
		}
		if a.Slowdown > 1.02 {
			anySlow = true
		}
	}
	if !anySlow {
		t.Fatalf("no agent slowed by >2%% under 4-way contention: %+v", exp.Agents)
	}
	if exp.LLCMissInflation <= 1.0 {
		t.Fatalf("4 co-running streams should inflate LLC misses: %.3fx", exp.LLCMissInflation)
	}
	if exp.BandwidthUtilization <= exp.SoloBandwidthUtilization {
		t.Fatalf("co-run bandwidth utilization %.2f should exceed best solo %.2f",
			exp.BandwidthUtilization, exp.SoloBandwidthUtilization)
	}
	t.Logf("system=%d cycles, LLC inflation %.2fx, MSHR full %.0f%%, bandwidth %.0f%% (solo best %.0f%%)",
		exp.SystemCycles, exp.LLCMissInflation, 100*exp.MSHRSaturationShare,
		100*exp.BandwidthUtilization, 100*exp.SoloBandwidthUtilization)
	for _, a := range exp.Agents {
		t.Logf("%s: solo %d co %d (%.2fx), LLC misses %d -> %d (%.2fx)",
			a.Name, a.SoloCycles, a.Cycles, a.Slowdown,
			a.SoloMemStats.LLCMisses, a.MemStats.LLCMisses, a.LLCMissInflation)
	}
}

// TestCMPWarmingInterleavedSymmetric quantifies the warming fix: with four
// identical agents, whole-partition warming in agent order leaves the first
// partitions partially evicted before the co-run even starts, so the
// per-agent LLC-miss inflation depends on the agent index. Round-robin
// block-interleaved warming (the production policy) must shrink that
// asymmetry.
func TestCMPWarmingInterleavedSymmetric(t *testing.T) {
	cfg := cmpQuickConfig()
	// Four Medium/8 partitions aggregate to ~1.5x the LLC, so warming order
	// decides which blocks survive to the start of the co-run.
	cfg.Scale = 1.0 / 8
	cfg.SampleProbes = 2000
	specs, err := ParseAgents("4xwidx:4w")
	if err != nil {
		t.Fatal(err)
	}
	spread := func(exp *CMPExperiment) float64 {
		minInf, maxInf := exp.Agents[0].LLCMissInflation, exp.Agents[0].LLCMissInflation
		for _, a := range exp.Agents[1:] {
			if a.LLCMissInflation < minInf {
				minInf = a.LLCMissInflation
			}
			if a.LLCMissInflation > maxInf {
				maxInf = a.LLCMissInflation
			}
		}
		return maxInf - minInf
	}
	interleaved, err := cfg.runCMP(join.Medium, specs, structures.HashJoin, true)
	if err != nil {
		t.Fatal(err)
	}
	agentOrder, err := cfg.runCMP(join.Medium, specs, structures.HashJoin, false)
	if err != nil {
		t.Fatal(err)
	}
	si, sa := spread(interleaved), spread(agentOrder)
	t.Logf("LLC-miss inflation spread across identical agents: interleaved %.3f, agent-order %.3f", si, sa)
	for _, exp := range []*CMPExperiment{interleaved, agentOrder} {
		for _, a := range exp.Agents {
			t.Logf("  %s: inflation %.2fx slowdown %.2fx", a.Name, a.LLCMissInflation, a.Slowdown)
		}
	}
	if si >= sa {
		t.Fatalf("interleaved warming should shrink the per-agent inflation asymmetry: %.3f vs %.3f", si, sa)
	}
}

// TestCMPHeterogeneousAgents runs the paper's CMP shape — host cores next
// to Widx agents — and checks the report renders every agent.
func TestCMPHeterogeneousAgents(t *testing.T) {
	cfg := cmpQuickConfig()
	cfg.SampleProbes = 800
	specs, err := ParseAgents("2xooo+2xwidx:2w")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := cfg.RunCMP(join.Medium, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Agents) != 4 {
		t.Fatalf("expected 4 agents, got %d", len(exp.Agents))
	}
	text := exp.Text()
	for _, a := range exp.Agents {
		if !strings.Contains(text, a.Name) {
			t.Fatalf("report misses agent %s:\n%s", a.Name, text)
		}
	}
	if !strings.Contains(text, "bandwidth utilization") {
		t.Fatalf("report misses bandwidth line:\n%s", text)
	}
}

// TestCMPDeterministic re-runs the same contention experiment and requires
// bit-identical cycle counts and counters: the system scheduler has no
// hidden state or ordering nondeterminism across agents.
func TestCMPDeterministic(t *testing.T) {
	cfg := cmpQuickConfig()
	cfg.SampleProbes = 600
	specs, _ := ParseAgents("ooo+inorder+2xwidx:2w")
	run := func() *CMPExperiment {
		exp, err := cfg.RunCMP(join.Small, specs)
		if err != nil {
			t.Fatal(err)
		}
		return exp
	}
	a, b := run(), run()
	if a.SystemCycles != b.SystemCycles {
		t.Fatalf("system cycles differ: %d vs %d", a.SystemCycles, b.SystemCycles)
	}
	for i := range a.Agents {
		if a.Agents[i].Cycles != b.Agents[i].Cycles || a.Agents[i].SoloCycles != b.Agents[i].SoloCycles {
			t.Fatalf("agent %d timing differs: %+v vs %+v", i, a.Agents[i], b.Agents[i])
		}
		if a.Agents[i].MemStats.LLCMisses != b.Agents[i].MemStats.LLCMisses {
			t.Fatalf("agent %d LLC misses differ", i)
		}
	}
}

// TestCMPSharedHierarchyRaceClean runs several multi-agent systems on
// concurrent goroutines (each with its own shared level and address-space
// clone, the harness's parallel pattern). Under `go test -race` this guards
// the shared-hierarchy plumbing against accidental cross-goroutine sharing.
func TestCMPSharedHierarchyRaceClean(t *testing.T) {
	cfg := cmpQuickConfig()
	cfg.SampleProbes = 400
	specs, _ := ParseAgents("2xwidx:2w+ooo")
	var wg sync.WaitGroup
	results := make([]uint64, 4)
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			exp, err := cfg.RunCMP(join.Small, specs)
			if err != nil {
				errs[g] = err
				return
			}
			results[g] = exp.SystemCycles
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 1; g < 4; g++ {
		if results[g] != results[0] {
			t.Fatalf("concurrent CMP runs disagree: %v", results)
		}
	}
}

// TestWalkerUtilizationSweep is the simulator-driven Figure 5: utilization
// falls as walkers are added while the measured MSHR occupancy rises toward
// the pool size, and the sweep table renders.
func TestWalkerUtilizationSweep(t *testing.T) {
	cfg := cmpQuickConfig()
	cfg.SampleProbes = 1200
	// A reduced MSHR budget puts the saturation knee inside the 1-8 sweep,
	// like the sched_test walker-scaling fixture.
	cfg.Mem.L1MSHRs = 5
	sweep, err := cfg.RunWalkerUtilization(join.Medium, 8)
	if err != nil {
		t.Fatal(err)
	}
	points := sweep.Points
	if len(points) != 8 {
		t.Fatalf("expected 8 points, got %d", len(points))
	}
	for i, p := range points {
		if p.Walkers != i+1 {
			t.Fatalf("point %d has walker count %d", i, p.Walkers)
		}
		t.Logf("walkers=%d cpt=%.1f util=%.2f meanMSHR=%.2f full=%.2f stalls=%d",
			p.Walkers, p.CyclesPerTuple, p.Utilization, p.MeanMSHROccupancy,
			p.MSHRSaturationShare, p.MSHRStallCycles)
	}
	// Measured MLP grows with walkers until the pool caps it.
	if points[3].MeanMSHROccupancy <= points[0].MeanMSHROccupancy {
		t.Fatalf("mean MSHR occupancy should grow 1->4 walkers: %.2f vs %.2f",
			points[0].MeanMSHROccupancy, points[3].MeanMSHROccupancy)
	}
	if points[7].MeanMSHROccupancy > float64(cfg.Mem.L1MSHRs) {
		t.Fatalf("mean occupancy %.2f exceeds the %d-MSHR pool", points[7].MeanMSHROccupancy, cfg.Mem.L1MSHRs)
	}
	// Past the knee, added walkers saturate the pool and stall.
	if points[7].MSHRSaturationShare < points[3].MSHRSaturationShare {
		t.Fatalf("saturation share should not fall 4->8 walkers: %.2f vs %.2f",
			points[3].MSHRSaturationShare, points[7].MSHRSaturationShare)
	}
	if points[7].MSHRStallCycles <= points[3].MSHRStallCycles {
		t.Fatalf("MSHR stalls should grow past the knee: w4=%d w8=%d",
			points[3].MSHRStallCycles, points[7].MSHRStallCycles)
	}
	// Utilization declines once walkers contend for the same pool.
	if points[7].Utilization >= points[0].Utilization {
		t.Fatalf("8 walkers should be less utilized than 1: %.2f vs %.2f",
			points[7].Utilization, points[0].Utilization)
	}
	text := sweep.Text()
	if !strings.Contains(text, "walker utilization") || !strings.Contains(text, "mean MSHRs") {
		t.Fatalf("sweep table malformed:\n%s", text)
	}
}

// TestCMPWayPartitionProtectsHost is the QoS mechanism check: fencing the
// Widx aggressors into a small slice of the LLC must cut the OoO host's
// co-run LLC misses (its working set survives in the unfenced ways) and
// with them its slowdown, relative to the unpartitioned co-run.
func TestCMPWayPartitionProtectsHost(t *testing.T) {
	cfg := cmpQuickConfig()
	cfg.Scale = 1.0 / 8
	cfg.SampleProbes = 2000
	specs, err := ParseAgents("1xooo+2xwidx:2w")
	if err != nil {
		t.Fatal(err)
	}
	open, err := cfg.RunCMP(join.Medium, specs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LLCWays = 4 // fence both Widx agents into 4 of the 16 ways
	fenced, err := cfg.RunCMP(join.Medium, specs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ooo slowdown: unpartitioned %.2fx (misses %d) vs 4-way fence %.2fx (misses %d)",
		open.Agents[0].Slowdown, open.Agents[0].MemStats.LLCMisses,
		fenced.Agents[0].Slowdown, fenced.Agents[0].MemStats.LLCMisses)
	if fenced.Agents[0].MemStats.LLCMisses >= open.Agents[0].MemStats.LLCMisses {
		t.Fatalf("the fence did not reduce the host's LLC misses: %d vs %d",
			fenced.Agents[0].MemStats.LLCMisses, open.Agents[0].MemStats.LLCMisses)
	}
	if fenced.Agents[0].Slowdown >= open.Agents[0].Slowdown {
		t.Fatalf("the fence did not reduce the host's slowdown: %.3f vs %.3f",
			fenced.Agents[0].Slowdown, open.Agents[0].Slowdown)
	}
	// A per-agent ":ways" override wins over the config default: fencing
	// via the agent grammar alone must land in the same machine.
	cfg.LLCWays = 0
	overridden, err := ParseAgents("1xooo+2xwidx:2w:ways=4")
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := cfg.RunCMP(join.Medium, overridden)
	if err != nil {
		t.Fatal(err)
	}
	if viaSpec.Agents[0].Cycles != fenced.Agents[0].Cycles ||
		viaSpec.SystemCycles != fenced.SystemCycles {
		t.Fatalf(":ways override and LLCWays config disagree: %d vs %d cycles",
			viaSpec.Agents[0].Cycles, fenced.Agents[0].Cycles)
	}
}

// TestCMPStaggeredArrival covers the arrival-stagger knob: staggered agents
// still satisfy the global monotonic-order contract (strict order is armed
// by cmpQuickConfig), the system drain time accounts for the offsets, and a
// stagger long enough to serialize the agents spreads the same off-chip
// traffic over a longer span — bandwidth pressure and the shared
// fill-buffer saturation drop even though LLC capacity pollution persists
// across time (the late agent's partition is partially evicted either way).
func TestCMPStaggeredArrival(t *testing.T) {
	cfg := cmpQuickConfig()
	cfg.Scale = 1.0 / 8
	cfg.SampleProbes = 1000
	specs, err := ParseAgents("2xwidx:2w")
	if err != nil {
		t.Fatal(err)
	}
	together, err := cfg.RunCMP(join.Medium, specs)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize: agent 1 starts only after agent 0 has surely finished.
	cfg.Stagger = together.Agents[0].SoloCycles * 2
	apart, err := cfg.RunCMP(join.Medium, specs)
	if err != nil {
		t.Fatal(err)
	}
	if apart.SystemCycles < cfg.Stagger {
		t.Fatalf("drain time %d ignores the %d-cycle stagger", apart.SystemCycles, cfg.Stagger)
	}
	if apart.SystemCycles <= together.SystemCycles {
		t.Fatalf("serialization should lengthen the drain: %d vs %d cycles",
			apart.SystemCycles, together.SystemCycles)
	}
	t.Logf("concurrent: system %d cycles, bandwidth %.1f%%, fill-buffer full %.1f%%",
		together.SystemCycles, 100*together.BandwidthUtilization, 100*together.MSHRSaturationShare)
	t.Logf("serialized: system %d cycles, bandwidth %.1f%%, fill-buffer full %.1f%%",
		apart.SystemCycles, 100*apart.BandwidthUtilization, 100*apart.MSHRSaturationShare)
	if apart.BandwidthUtilization >= together.BandwidthUtilization {
		t.Fatalf("serialization should lower bandwidth pressure: %.3f vs %.3f",
			apart.BandwidthUtilization, together.BandwidthUtilization)
	}
	if apart.MSHRSaturationShare > together.MSHRSaturationShare {
		t.Fatalf("serialization should not raise fill-buffer saturation: %.3f vs %.3f",
			apart.MSHRSaturationShare, together.MSHRSaturationShare)
	}
	// Each staggered agent's own span stays in the solo ballpark: no agent
	// pays the other's offset as if it were stall time.
	for i, a := range apart.Agents {
		if a.Cycles > a.SoloCycles*3 {
			t.Fatalf("agent %d span %d is unreasonably long vs solo %d under serialization",
				i, a.Cycles, a.SoloCycles)
		}
	}
}

// TestCMPRejectsOutOfRangeOverrides pins the error path for per-agent
// overrides the topology cannot satisfy: a ":ways" wider than the LLC (or
// an absurd private MSHR count) must come back as an error from RunCMP,
// never as a panic out of SharedLevel.NewAgent mid-run.
func TestCMPRejectsOutOfRangeOverrides(t *testing.T) {
	cfg := cmpQuickConfig()
	cfg.SampleProbes = 100
	for _, spec := range []string{"1xwidx:2w:ways=99", "1xooo:ways=17"} {
		specs, err := ParseAgents(spec)
		if err != nil {
			t.Fatalf("%s should parse (bounds are topology-dependent): %v", spec, err)
		}
		if _, err := cfg.RunCMP(join.Small, specs); err == nil {
			t.Fatalf("RunCMP accepted out-of-range override %s", spec)
		} else if !strings.Contains(err.Error(), "LLCWays") {
			t.Fatalf("unexpected error for %s: %v", spec, err)
		}
	}
}

// TestCMPStructureWorkloads drives the co-run over every zoo structure: a
// host core and a Widx agent each probing their own partition built as the
// structure under test. Every structure must produce a complete contention
// report, and the header must name the structure for every non-default kind
// (the hash-join header stays historical — the exp golden pins it).
func TestCMPStructureWorkloads(t *testing.T) {
	cfg := cmpQuickConfig()
	cfg.SampleProbes = 300
	specs, _ := ParseAgents("ooo+widx:2w")
	for _, kind := range structures.Kinds() {
		exp, err := cfg.RunCMPStructure(join.Small, specs, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if exp.Structure != kind {
			t.Fatalf("%v: experiment records structure %v", kind, exp.Structure)
		}
		if exp.SystemCycles == 0 {
			t.Fatalf("%v: no system cycles", kind)
		}
		for i, a := range exp.Agents {
			if a.Cycles == 0 || a.SoloCycles == 0 || a.Tuples == 0 {
				t.Fatalf("%v agent %d: degenerate result %+v", kind, i, a)
			}
		}
		named := strings.Contains(exp.Text(), kind.String())
		if kind == structures.HashJoin && named {
			t.Fatalf("hash-join CMP header must stay historical:\n%s", exp.Text())
		}
		if kind != structures.HashJoin && !named {
			t.Fatalf("%v missing from the CMP header:\n%s", kind, exp.Text())
		}
	}
}

// TestCMPStructureDeterministic pins run-to-run determinism of a non-default
// structure co-run, including through the warm-state cache in verify mode.
func TestCMPStructureDeterministic(t *testing.T) {
	cfg := cmpQuickConfig()
	cfg.SampleProbes = 300
	specs, _ := ParseAgents("inorder+widx:2w")
	base, err := cfg.RunCMPStructure(join.Small, specs, structures.SkipList)
	if err != nil {
		t.Fatal(err)
	}
	warm := cfg
	warm.WarmCache = warmstate.New()
	warm.WarmCache.SetVerify(true)
	for pass := 0; pass < 2; pass++ {
		exp, err := warm.RunCMPStructure(join.Small, specs, structures.SkipList)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if exp.Text() != base.Text() {
			t.Fatalf("pass %d: warm cache changed the skip-list co-run\nbase:\n%s\nwarm:\n%s",
				pass, base.Text(), exp.Text())
		}
	}
	if hits, misses := warm.WarmCache.Stats(); hits == 0 || misses == 0 {
		t.Fatalf("warm cache did not exercise both paths (hits %d, misses %d)", hits, misses)
	}
}
