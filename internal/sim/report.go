package sim

import (
	"fmt"
	"strings"

	"widx/internal/energy"
	"widx/internal/join"
	"widx/internal/model"
	"widx/internal/structures"
	"widx/internal/workloads"
)

// This file renders experiment results as fixed-width text tables in the
// shape of the paper's figures. Every result type exposes the same encoding
// pair — Text() for the human report and JSON() (report_json.go) for the
// machine-readable manifest — which is what the exp registry's Result
// interface consumes. The historical FormatXxx free functions are gone;
// call Text() on the result instead.

// Text renders Figures 8a and 8b.
func (e *KernelExperiment) Text() string {
	var b strings.Builder
	b.WriteString("Figure 8a — Widx walker cycles per tuple, hash join kernel (Comp/Mem/TLB/Idle)\n")
	fmt.Fprintf(&b, "%-8s %-8s %10s %10s %10s %10s %10s %12s\n",
		"size", "walkers", "cpt", "comp", "mem", "tlb", "idle", "norm(Small/1w)")
	for _, p := range e.Points {
		n := e.Normalized(p)
		fmt.Fprintf(&b, "%-8s %-8d %10.1f %10.1f %10.1f %10.1f %10.1f %12.2f\n",
			p.Size, p.Walkers, p.CyclesPerTuple,
			p.Breakdown.Comp, p.Breakdown.Mem, p.Breakdown.TLB, p.Breakdown.Idle,
			n.Total())
	}
	b.WriteString("\nFigure 8b — Hash join kernel indexing speedup over the OoO baseline\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %12s\n", "size", "OoO cpt", "1 walker", "2 walkers", "4 walkers")
	for _, size := range []join.SizeClass{join.Small, join.Medium, join.Large} {
		ooo, ok := e.OoOCyclesPerTuple[size]
		if !ok {
			continue
		}
		row := fmt.Sprintf("%-8s %12.1f", size, ooo)
		for _, w := range []int{1, 2, 4} {
			if p, ok := e.Point(size, w); ok {
				row += fmt.Sprintf(" %11.2fx", p.Speedup)
			} else {
				row += fmt.Sprintf(" %12s", "-")
			}
		}
		b.WriteString(row + "\n")
	}
	fmt.Fprintf(&b, "geomean speedup: 1 walker %.2fx, 4 walkers %.2fx (paper: ~1.04x and up to 4x on Large)\n",
		e.GeoMeanSpeedup1W, e.GeoMeanSpeedup4W)
	if e.Sampling != nil {
		b.WriteString("\n" + e.Sampling.Text())
	}
	return b.String()
}

// Text renders the shared-memory contention experiment: per-agent co-run vs.
// solo timings and the system-level shared-resource pressure.
func (e *CMPExperiment) Text() string {
	var b strings.Builder
	kernel := e.Size.String()
	if e.Structure != structures.HashJoin {
		// The historical header says just the size class; naming the
		// structure only off the hash-join default keeps that output (and
		// the exp registry's pinned golden) byte-identical.
		kernel = fmt.Sprintf("%s %s", e.Size, e.Structure)
	}
	fmt.Fprintf(&b, "CMP contention — %d co-running agents, one shared LLC / MSHR pool / memory bandwidth (%s kernel)\n",
		len(e.Agents), kernel)
	fmt.Fprintf(&b, "%-12s %10s %12s %12s %10s %12s %12s %10s\n",
		"agent", "tuples", "solo cpt", "co cpt", "slowdown", "LLC miss", "solo miss", "inflation")
	for _, a := range e.Agents {
		fmt.Fprintf(&b, "%-12s %10d %12.1f %12.1f %9.2fx %12d %12d %9.2fx\n",
			a.Name, a.Tuples, a.SoloCyclesPerTuple, a.CyclesPerTuple, a.Slowdown,
			a.MemStats.LLCMisses, a.SoloMemStats.LLCMisses, a.LLCMissInflation)
	}
	fmt.Fprintf(&b, "system: %d cycles to drain all streams, LLC miss inflation %.2fx\n",
		e.SystemCycles, e.LLCMissInflation)
	fmt.Fprintf(&b, "shared level: %d LLC misses (%d combined), %d off-chip blocks, MSHR full %.0f%% of cycles, %d MSHR-stall cycles\n",
		e.SharedStats.LLCMisses, e.SharedStats.CombinedMisses, e.SharedStats.MemBlocks,
		100*e.MSHRSaturationShare, e.SharedStats.MSHRStallCycles)
	fmt.Fprintf(&b, "off-chip bandwidth utilization: %.0f%% co-running (best single agent alone: %.0f%%)\n",
		100*e.BandwidthUtilization, 100*e.SoloBandwidthUtilization)
	if e.Sampling != nil {
		b.WriteString("\n" + e.Sampling.Text())
	}
	return b.String()
}

// Text renders the simulator-driven Figure 5 sweep.
func (s *WalkerUtilizationSweep) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 (simulated) — walker utilization and measured MSHR occupancy (%d MSHRs)\n", s.MSHRs)
	fmt.Fprintf(&b, "%-8s %10s %12s %14s %12s %12s\n",
		"walkers", "cpt", "utilization", "mean MSHRs", "MSHR full", "MSHR stalls")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-8d %10.1f %11.0f%% %14.2f %11.0f%% %12d\n",
			p.Walkers, p.CyclesPerTuple, 100*p.Utilization, p.MeanMSHROccupancy,
			100*p.MSHRSaturationShare, p.MSHRStallCycles)
	}
	if s.Sampling != nil {
		b.WriteString("\n" + s.Sampling.Text())
	}
	return b.String()
}

// QueriesText renders Figures 9a, 9b and 10 from a suite run.
func (s *SuiteResult) QueriesText() string {
	var b strings.Builder
	b.WriteString("Figure 9 — Widx walker cycles per tuple breakdown (Comp/Mem/TLB/Idle)\n")
	fmt.Fprintf(&b, "%-8s %-6s %-8s %10s %10s %10s %10s %10s\n",
		"suite", "query", "walkers", "cpt", "comp", "mem", "tlb", "idle")
	for _, q := range s.Queries {
		for _, w := range []int{1, 2, 4} {
			bd, ok := q.WidxBreakdown[w]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%-8s %-6s %-8d %10.1f %10.1f %10.1f %10.1f %10.1f\n",
				q.Query.Suite, q.Query.Name, w, q.WidxCyclesPerTuple[w],
				bd.Comp, bd.Mem, bd.TLB, bd.Idle)
		}
	}
	b.WriteString("\nFigure 10 — Indexing speedup over the OoO baseline\n")
	fmt.Fprintf(&b, "%-8s %-6s %12s %12s %12s %12s %14s %14s\n",
		"suite", "query", "OoO cpt", "1 walker", "2 walkers", "4 walkers", "paper 4w", "query-level")
	for _, q := range s.Queries {
		fmt.Fprintf(&b, "%-8s %-6s %12.1f %11.2fx %11.2fx %11.2fx %13.1fx %13.2fx\n",
			q.Query.Suite, q.Query.Name, q.OoOCyclesPerTuple,
			q.IndexSpeedup[1], q.IndexSpeedup[2], q.IndexSpeedup[4],
			q.Query.Paper.IndexSpeedup4W, q.QuerySpeedup4W)
	}
	fmt.Fprintf(&b, "geomean indexing speedup (4 walkers): %.2fx (paper: %.1fx)\n",
		s.GeoMeanIndexSpeedup[4], workloads.PaperIndexGeoMeanSpeedup)
	fmt.Fprintf(&b, "geomean query-level speedup:          %.2fx (paper: %.1fx)\n",
		s.GeoMeanQuerySpeedup, workloads.PaperQueryGeoMeanSpeedup)
	fmt.Fprintf(&b, "in-order slowdown vs OoO:             %.2fx (paper: ~2.2x)\n", s.InOrderSlowdown)
	return b.String()
}

// EnergyText renders Figure 11 and the Section 6.3 area table.
func (s *SuiteResult) EnergyText() string {
	var b strings.Builder
	b.WriteString("Figure 11 — Indexing runtime, energy and energy-delay, normalized to OoO (lower is better)\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %14s\n", "design", "runtime", "energy", "energy-delay")
	rows := []struct {
		name string
		m    energy.NormalizedMetrics
	}{
		{"OoO", s.Energy.OoO},
		{"In-order", s.Energy.InOrder},
		{"Widx (w/ OoO)", s.Energy.Widx},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10.2f %10.2f %14.3f\n", r.name, r.m.Runtime, r.m.Energy, r.m.EDP)
	}
	fmt.Fprintf(&b, "Widx energy reduction vs OoO: %.0f%% (paper: %.0f%%)\n",
		100*s.Energy.EnergyReduction(s.Energy.Widx), 100*workloads.PaperEnergyReduction)
	fmt.Fprintf(&b, "Widx EDP improvement vs OoO:  %.1fx (paper: %.1fx)\n",
		1/s.Energy.Widx.EDP, workloads.PaperEDPImprovement)

	a := energy.Default().Area()
	b.WriteString("\nSection 6.3 — Area\n")
	fmt.Fprintf(&b, "single Widx unit: %.3f mm2, six-unit Widx: %.2f mm2, Cortex-A8-class core: %.1f mm2\n",
		a.WidxUnitMM2, a.WidxTotalMM2, a.InOrderCoreMM2)
	fmt.Fprintf(&b, "Widx area as a fraction of the in-order core: %.0f%% (paper: 18%%)\n", 100*a.WidxVsInOrderArea)
	return b.String()
}

// Text renders the full suite report: the Figure 9/10 tables followed by the
// Figure 11 energy comparison, exactly as the historical CLI printed them,
// plus the sampled-estimate section when the run was sampled.
func (s *SuiteResult) Text() string {
	out := s.QueriesText() + "\n" + s.EnergyText()
	if s.Sampling != nil {
		out += "\n" + s.Sampling.Text()
	}
	return out
}

// Text renders Figure 2a (and Figure 2b for simulated queries).
func (rows BreakdownRows) Text() string {
	var b strings.Builder
	b.WriteString("Figure 2a — Query execution time breakdown (measured | paper)\n")
	fmt.Fprintf(&b, "%-8s %-6s %18s %18s %18s %18s\n", "suite", "query", "index", "scan", "sort&join", "other")
	cell := func(m, p float64) string { return fmt.Sprintf("%7.0f%% | %5.0f%%", 100*m, 100*p) }
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-6s %18s %18s %18s %18s\n",
			r.Query.Suite, r.Query.Name,
			cell(r.Measured.Index, r.Paper.Index),
			cell(r.Measured.Scan, r.Paper.Scan),
			cell(r.Measured.SortJoin, r.Paper.SortJoin),
			cell(r.Measured.Other, r.Paper.Other))
	}
	b.WriteString("\nFigure 2b — Index time split, Hash share (measured | paper; Walk is the remainder)\n")
	for _, r := range rows {
		if !r.Query.Simulated {
			continue
		}
		fmt.Fprintf(&b, "%-8s %-6s hash %5.0f%% | %5.0f%%\n",
			r.Query.Suite, r.Query.Name, 100*r.MeasuredHashShare, 100*r.PaperHashShare)
	}
	return b.String()
}

// ModelFigures is the analytical-model "result": the closed-form Figures
// 4a-4c and 5 evaluated at the given parameters. It exists so the Section 3
// model flows through the same Result encodings as the simulated
// experiments.
type ModelFigures struct {
	Params model.Params
}

// Text renders the analytical-model figures (4a, 4b, 4c and 5).
func (m ModelFigures) Text() string {
	p := m.Params
	var b strings.Builder
	b.WriteString("Figure 4a — L1-D accesses per cycle vs LLC miss ratio (limit: 2 ports)\n")
	f4a := model.Figure4a(p)
	header := fmt.Sprintf("%-10s", "llc miss")
	for _, s := range f4a {
		header += fmt.Sprintf(" %12s", s.Label)
	}
	b.WriteString(header + "\n")
	for i := 0; i < f4a[0].Len(); i++ {
		x, _ := f4a[0].Point(i)
		row := fmt.Sprintf("%-10.1f", x)
		for _, s := range f4a {
			row += fmt.Sprintf(" %12.3f", s.Y[i])
		}
		b.WriteString(row + "\n")
	}

	b.WriteString("\nFigure 4b — Outstanding L1 misses vs walkers (limit: 10 MSHRs)\n")
	f4b := model.Figure4b(p)
	for i := 0; i < f4b.Len(); i++ {
		fmt.Fprintf(&b, "walkers %2.0f: %5.1f outstanding misses\n", f4b.X[i], f4b.Y[i])
	}

	b.WriteString("\nFigure 4c — Walkers per memory controller vs LLC miss ratio\n")
	f4c := model.Figure4c(p)
	for i := 0; i < f4c.Len(); i++ {
		fmt.Fprintf(&b, "llc miss %.1f: %5.1f walkers/MC\n", f4c.X[i], f4c.Y[i])
	}

	for _, depth := range []float64{1, 2, 3} {
		fmt.Fprintf(&b, "\nFigure 5 — Walker utilization, %d node(s) per bucket\n", int(depth))
		f5 := model.Figure5(p, depth)
		header := fmt.Sprintf("%-10s", "llc miss")
		for _, s := range f5 {
			header += fmt.Sprintf(" %12s", s.Label)
		}
		b.WriteString(header + "\n")
		for i := 0; i < f5[0].Len(); i++ {
			x, _ := f5[0].Point(i)
			row := fmt.Sprintf("%-10.1f", x)
			for _, s := range f5 {
				row += fmt.Sprintf(" %12.2f", s.Y[i])
			}
			b.WriteString(row + "\n")
		}
	}
	fmt.Fprintf(&b, "\nSection 3.2 summary — recommended walkers at 50%% LLC miss ratio: %d (paper: ~4)\n",
		p.RecommendedWalkers(0.5))
	return b.String()
}

// Text renders the workload-zoo cross-structure study.
func (e *ZooExperiment) Text() string {
	var b strings.Builder
	b.WriteString("Workload zoo — Widx across traversal structures (one accelerator, five index shapes)\n")
	fmt.Fprintf(&b, "%-10s %10s %8s %8s %12s %10s %10s\n",
		"structure", "node B", "fanout", "levels", "footprint", "probes", "matches")
	for _, s := range e.Structures {
		fmt.Fprintf(&b, "%-10s %10d %8d %8d %11.1fK %10d %10d\n",
			s.Structure, s.Geometry.NodeBytes, s.Geometry.Fanout, s.Geometry.Levels,
			float64(s.Geometry.FootprintBytes)/1024, s.Probes, s.Matches)
	}
	b.WriteString("\nWalker scaling — cycles per traversal and speedup over the OoO baseline\n")
	fmt.Fprintf(&b, "%-10s %12s", "structure", "OoO cpt")
	if len(e.Structures) > 0 {
		for _, p := range e.Structures[0].Points {
			fmt.Fprintf(&b, " %7dw cpt %9dw sp", p.Walkers, p.Walkers)
		}
	}
	b.WriteString("\n")
	for _, s := range e.Structures {
		fmt.Fprintf(&b, "%-10s %12.1f", s.Structure, s.OoOCyclesPerTuple)
		for _, p := range s.Points {
			fmt.Fprintf(&b, " %12.1f %10.2fx", p.CyclesPerTuple, p.Speedup)
		}
		b.WriteString("\n")
	}
	b.WriteString("\nPer-tuple breakdown (Comp/Mem/TLB/Idle) at the highest walker count\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s %18s\n",
		"structure", "comp", "mem", "tlb", "idle", "match fingerprint")
	for _, s := range e.Structures {
		if len(s.Points) == 0 {
			continue
		}
		p := s.Points[len(s.Points)-1]
		fmt.Fprintf(&b, "%-10s %10.1f %10.1f %10.1f %10.1f %#18x\n",
			s.Structure, p.Breakdown.Comp, p.Breakdown.Mem, p.Breakdown.TLB, p.Breakdown.Idle,
			s.Fingerprint)
	}
	if e.Sampling != nil {
		b.WriteString("\n" + e.Sampling.Text())
	}
	return b.String()
}

// Text renders the Figure 3 design-point ablation.
func (a *AblationResult) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hashing-organization ablation (%s, %d walkers)\n", a.Query, a.Walkers)
	fmt.Fprintf(&b, "%-28s %12s\n", "design point", "cycles/tuple")
	fmt.Fprintf(&b, "%-28s %12.1f\n", "coupled hash+walk (Fig 3b)", a.CoupledCPT)
	fmt.Fprintf(&b, "%-28s %12.1f\n", "per-walker decoupled (3c)", a.PerWalkerCPT)
	fmt.Fprintf(&b, "%-28s %12.1f\n", "shared dispatcher (3d)", a.SharedCPT)
	fmt.Fprintf(&b, "decoupling gain: %.0f%% (paper reports a 29%% reduction in time per traversal)\n",
		100*(1-1/a.DecouplingGain))
	return b.String()
}
