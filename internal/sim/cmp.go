// The CMP contention experiment: the paper's headline deployment is not one
// accelerator in isolation but a 4-core CMP whose cores (each paired with a
// Widx front end) contend for a shared LLC and off-chip bandwidth (Sections
// 4 and 6). This file co-schedules K independent index-probe streams — any
// mix of Widx accelerators and OoO / in-order host cores — on one shared
// memory level via the system scheduler, and compares each agent against its
// own solo run on an uncontended hierarchy: per-agent and system-level
// cycles, LLC miss inflation, shared-MSHR saturation and bandwidth
// utilization.
//
// The workload is the partitioned hash join the paper's CMP runs: each agent
// probes its own partition's hash table (all partitions resident in one
// simulated address space, as one partitioned process), with the LLC warmed
// to each run's steady state. Solo, an agent's partition fits the LLC it has
// to itself; co-running, the partitions' aggregate working set contends for
// the one shared LLC — the destructive interference the experiment measures.
package sim

import (
	"fmt"
	"strconv"
	"strings"

	"widx/internal/cores"
	"widx/internal/hashidx"
	"widx/internal/join"
	"widx/internal/mem"
	"widx/internal/program"
	"widx/internal/sampling"
	"widx/internal/stats"
	"widx/internal/structures"
	"widx/internal/system"
	"widx/internal/vm"
	"widx/internal/widx"
)

// AgentKind selects the machine of one CMP agent.
type AgentKind uint8

const (
	// AgentWidx is a Widx accelerator (walker count in the spec).
	AgentWidx AgentKind = iota
	// AgentOoO is the Table 2 out-of-order host core.
	AgentOoO
	// AgentInOrder is the Cortex-A8-class in-order core.
	AgentInOrder
)

// MarshalText encodes the kind by name, so JSON manifests carry "widx" /
// "ooo" / "inorder" rather than opaque enum values.
func (k AgentKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// String names the kind.
func (k AgentKind) String() string {
	switch k {
	case AgentWidx:
		return "widx"
	case AgentOoO:
		return "ooo"
	case AgentInOrder:
		return "inorder"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// CMPAgentSpec describes one co-running agent.
type CMPAgentSpec struct {
	Kind AgentKind
	// Walkers applies to Widx agents (0 defaults to 4).
	Walkers int
	// MSHRs overrides the agent's private MSHR count (0 = the topology's
	// default, Mem.L1MSHRs).
	MSHRs int
	// LLCWays overrides the agent's LLC way partition (0 = the kind's
	// default: Config.LLCWays for Widx agents, the full LLC for host
	// cores).
	LLCWays int
}

// String renders the spec in the -agents grammar ("widx:4w",
// "widx:4w:mshrs=5:ways=4", "ooo").
func (s CMPAgentSpec) String() string {
	out := s.Kind.String()
	if s.Kind == AgentWidx {
		w := s.Walkers
		if w == 0 {
			w = 4
		}
		out = fmt.Sprintf("widx:%dw", w)
	}
	if s.MSHRs > 0 {
		out += fmt.Sprintf(":mshrs=%d", s.MSHRs)
	}
	if s.LLCWays > 0 {
		out += fmt.Sprintf(":ways=%d", s.LLCWays)
	}
	return out
}

// ParseAgents parses a CMP agent specification such as
// "4xooo+4xwidx:4w:mshrs=5:ways=4": "+"-separated groups, each an optional
// "Nx" replication prefix, a kind (widx, ooo, inorder), and ":"-separated
// qualifiers — a bare "Ww" walker count (Widx only) plus per-agent
// heterogeneity overrides "mshrs=N" (private MSHR count) and "ways=N" (LLC
// allocation ways), accepted by every kind. Way partitions anchor at the
// lowest N ways and overlap: "ways=N" is a fence bounding how much of each
// LLC set the agent may claim, not a disjoint slice — fenced agents contend
// among themselves in the low ways while the unfenced ways stay exclusive
// to full-LLC agents.
func ParseAgents(spec string) ([]CMPAgentSpec, error) {
	var out []CMPAgentSpec
	for _, group := range strings.Split(spec, "+") {
		group = strings.TrimSpace(group)
		if group == "" {
			return nil, fmt.Errorf("sim: empty agent group in %q", spec)
		}
		count := 1
		if i := strings.Index(group, "x"); i > 0 {
			if n, err := strconv.Atoi(group[:i]); err == nil {
				if n <= 0 {
					return nil, fmt.Errorf("sim: non-positive agent count in %q", group)
				}
				count = n
				group = group[i+1:]
			}
		}
		one := CMPAgentSpec{}
		kind, rest, _ := strings.Cut(group, ":")
		switch strings.ToLower(kind) {
		case "widx":
			one.Kind = AgentWidx
			one.Walkers = 4
		case "ooo":
			one.Kind = AgentOoO
		case "inorder", "in-order":
			one.Kind = AgentInOrder
		default:
			return nil, fmt.Errorf("sim: unknown agent kind %q (want widx, ooo or inorder)", kind)
		}
		if rest != "" {
			for _, q := range strings.Split(rest, ":") {
				q = strings.TrimSpace(strings.ToLower(q))
				if key, val, isKV := strings.Cut(q, "="); isKV {
					n, err := strconv.Atoi(val)
					if err != nil || n <= 0 {
						return nil, fmt.Errorf("sim: bad %s value %q in %q", key, val, group)
					}
					switch key {
					case "mshrs":
						one.MSHRs = n
					case "ways":
						one.LLCWays = n
					default:
						return nil, fmt.Errorf("sim: unknown qualifier %q in %q (want Ww, mshrs=N or ways=N)", q, group)
					}
					continue
				}
				if one.Kind != AgentWidx {
					return nil, fmt.Errorf("sim: %s agents take no walker count (%q)", one.Kind, group)
				}
				w, err := strconv.Atoi(strings.TrimSuffix(q, "w"))
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("sim: bad walker count %q in %q", q, group)
				}
				one.Walkers = w
			}
		}
		for i := 0; i < count; i++ {
			out = append(out, one)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sim: no agents in %q", spec)
	}
	return out, nil
}

// CMPAgentResult is one agent's outcome, co-run vs. solo.
type CMPAgentResult struct {
	Name string
	Spec CMPAgentSpec
	// Tuples is the probe-stream length.
	Tuples uint64
	// Cycles / CyclesPerTuple are the co-run timings; the Solo variants are
	// the same stream alone on an uncontended hierarchy.
	Cycles             uint64
	CyclesPerTuple     float64
	SoloCycles         uint64
	SoloCyclesPerTuple float64
	// Slowdown is Cycles / SoloCycles — the contention cost.
	Slowdown float64
	// MemStats / SoloMemStats are the agent's own hierarchy views; the
	// shared-resource counters in MemStats sum to the experiment's
	// SharedStats across agents.
	MemStats     mem.Stats
	SoloMemStats mem.Stats
	// LLCMissInflation is the agent's co-run LLC misses over its solo LLC
	// misses (1.0 = no interference; 0 solo misses reports 1.0).
	LLCMissInflation float64
}

// CMPExperiment is the result of one contention run.
type CMPExperiment struct {
	Size join.SizeClass
	// Structure is the traversal structure every partition is built as
	// (the zero value is the historical partitioned hash join).
	Structure structures.Kind
	Agents    []CMPAgentResult
	// SystemCycles spans the co-run start to the last agent finishing.
	SystemCycles uint64
	// SharedStats is the co-run shared level's counters (LLC, combined
	// misses, off-chip blocks, MSHR stalls) with the shared pool's
	// occupancy histogram; the per-agent MemStats sum to it.
	SharedStats mem.Stats
	// LLCMissInflation is total co-run LLC misses over total solo misses.
	LLCMissInflation float64
	// MSHRSaturationShare is the fraction of accounted co-run cycles the
	// shared MSHR pool was completely full.
	MSHRSaturationShare float64
	// BandwidthUtilization is the fraction of the effective off-chip
	// bandwidth consumed over the co-run; SoloBandwidthUtilization is the
	// maximum any single agent reached alone.
	BandwidthUtilization     float64
	SoloBandwidthUtilization float64
	// Sampling carries per-agent solo/co-run/slowdown confidence estimates
	// when the run was sampled; nil otherwise.
	Sampling *sampling.Report `json:"sampling,omitempty"`
}

// SamplingReport implements SamplingReporter.
func (e *CMPExperiment) SamplingReport() *sampling.Report { return e.Sampling }

// SampledMetricValues returns the experiment's full-run values under the
// sampled estimator's metric names, for -sampling-verify interval checks.
func (e *CMPExperiment) SampledMetricValues() map[string]float64 {
	m := make(map[string]float64)
	for _, a := range e.Agents {
		m[sampledMetricName(a.Name+" solo", metricCPT)] = a.SoloCyclesPerTuple
		m[sampledMetricName(a.Name+" co", metricCPT)] = a.CyclesPerTuple
		m[a.Name+" slowdown"] = a.Slowdown
	}
	return m
}

// cmpRunner couples one agent's schedulable engine with its finisher.
// matches returns a Widx agent's emitted match stream once finish has run;
// it is nil for host cores (trace replay emits no matches).
type cmpRunner struct {
	agent   system.Agent
	finish  func() (cycles uint64, stats mem.Stats, err error)
	matches func() []uint64
}

// cmpAgentWorkload is one agent's private partition of the CMP workload:
// its structure's resident regions (for LLC warming), its probe-key column,
// the software reference's probe traces and match stream, and — for Widx
// agents — the program bundle pointing at a private result region. Traces
// are built for every agent kind (host cores replay them; sampled runs warm
// fast-forward spans from them), and the matches/bounds pair carries the
// reference output Widx agents fast-forward through and fingerprint-verify
// against.
type cmpAgentWorkload struct {
	name    string
	regions [][2]uint64
	keyBase uint64
	keys    int
	progs   *structures.Programs
	traces  []hashidx.ProbeTrace
	matches []uint64
	bounds  []int
}

// span returns the workload restricted to probes [sp.Start, sp.End): the
// key column and trace slice a span-sized runner consumes.
func (w *cmpAgentWorkload) span(sp sampling.Span) *cmpAgentWorkload {
	sw := *w
	sw.keyBase = w.keyBase + sp.Start*8
	sw.keys = int(sp.Len())
	sw.traces = w.traces[sp.Start:sp.End]
	return &sw
}

// buildCMPWorkload lays out one partition per agent in a single shared
// address space (one partitioned process): every agent gets its own
// traversal structure of the size class's scaled tuple count and its own
// probe stream drawn from that partition. Allocation happens in spec order,
// so addresses are fixed by the (spec, structure) pair alone. The hash-join
// path is the historical partitioned-join build, byte for byte; the other
// zoo structures build through structures.Build with the same per-agent
// seeding.
func (c Config) buildCMPWorkload(size join.SizeClass, specs []CMPAgentSpec, structure structures.Kind) (*vm.AddressSpace, []cmpAgentWorkload, error) {
	buildN := size.Tuples(c.Scale)
	perAgent := c.sampleCount(4 * buildN)
	buckets := uint64(1)
	for float64(buildN)/float64(buckets) > 2 { // the kernel's 2-nodes-per-bucket target
		buckets <<= 1
	}
	as := vm.New()
	out := make([]cmpAgentWorkload, len(specs))
	for i, spec := range specs {
		w := &out[i]
		w.name = fmt.Sprintf("%s.%d", spec, i)
		if structure != structures.HashJoin {
			if err := c.buildCMPStructurePartition(as, w, spec, structure, buildN, perAgent, i); err != nil {
				return nil, nil, err
			}
			continue
		}
		w.keys = perAgent
		rng := stats.NewRNG(2013 + 1000*uint64(i))
		buildKeys := make([]uint64, buildN)
		seen := make(map[uint64]bool, buildN)
		for j := range buildKeys {
			for {
				k := uint64(rng.Uint32())
				if k != 0 && !seen[k] {
					buildKeys[j], seen[k] = k, true
					break
				}
			}
		}
		tbl, err := hashidx.Build(as, hashidx.Config{
			Layout:      hashidx.LayoutInline,
			Hash:        hashidx.HashSimple,
			BucketCount: buckets,
			Name:        "cmp." + w.name,
		}, buildKeys, nil)
		if err != nil {
			return nil, nil, err
		}
		w.regions = tbl.Regions()
		probeKeys := make([]uint64, perAgent)
		for j := range probeKeys {
			probeKeys[j] = buildKeys[rng.Intn(buildN)]
		}
		w.keyBase = as.AllocAligned(w.name+".keys", uint64(perAgent)*8)
		for j, k := range probeKeys {
			as.Write64(w.keyBase+uint64(j)*8, k)
		}
		w.traces = make([]hashidx.ProbeTrace, perAgent)
		w.bounds = make([]int, perAgent)
		for j, k := range probeKeys {
			w.traces[j] = tbl.ProbeFrom(k, w.keyBase+uint64(j)*8).Trace
			w.matches = append(w.matches, tbl.ProbeMatches(k)...)
			w.bounds[j] = len(w.matches)
		}
		if spec.Kind == AgentWidx {
			resultBase := as.AllocAligned(w.name+".results", uint64(perAgent)*8+64)
			bundle, err := program.ForTable(tbl, resultBase)
			if err != nil {
				return nil, nil, err
			}
			w.progs = &structures.Programs{
				Dispatcher: bundle.Dispatcher,
				Walker:     bundle.Walker,
				Producer:   bundle.Producer,
			}
		}
	}
	return as, out, nil
}

// buildCMPStructurePartition builds one agent's partition as a zoo
// structure, mirroring the hash-join path's per-agent seeding and
// allocation order (structure, probe column, then the Widx result region).
func (c Config) buildCMPStructurePartition(as *vm.AddressSpace, w *cmpAgentWorkload, spec CMPAgentSpec, structure structures.Kind, buildN, perAgent, agent int) error {
	keys := buildN
	if structure == structures.BFS {
		// Vertices; the mean degree of 8 keeps the edge footprint comparable
		// to the other partitions' resident sets.
		keys /= 8
		if keys < 128 {
			keys = 128
		}
	}
	inst, err := structures.Build(as, structures.BuildConfig{
		Kind:   structure,
		Keys:   keys,
		Probes: perAgent,
		Seed:   2013 + 1000*uint64(agent),
		Name:   "cmp." + w.name,
	})
	if err != nil {
		return err
	}
	w.regions = inst.Regions()
	w.keyBase = inst.ProbeKeyBase()
	w.keys = inst.ProbeCount()
	matches, traces := inst.Reference()
	w.traces = traces
	w.matches = matches
	w.bounds = inst.MatchBounds()
	if spec.Kind == AgentWidx {
		resultBase := as.AllocAligned(w.name+".results", uint64(len(matches))*8+64)
		w.progs, err = inst.Programs(resultBase, structures.ProgramOptions{})
		if err != nil {
			return err
		}
	}
	return nil
}

// warmPartition installs the agent's partition into the shared LLC (and its
// pages into the agent's private TLB) — the warmed-checkpoint steady state
// the paper measures from. Solo, one partition fits the LLC it has to
// itself, so warming order is immaterial.
func warmPartition(hier *mem.Hierarchy, w *cmpAgentWorkload) {
	cur := newBlockCursor(hier, w)
	for addr, ok := cur.next(); ok; addr, ok = cur.next() {
		hier.WarmLLCOnly(addr)
	}
}

// blockCursor streams the block-aligned addresses of one agent's partition
// in region order, so warming needs O(1) state per agent instead of a
// materialized address list (full-scale partitions run to millions of
// blocks).
type blockCursor struct {
	regions [][2]uint64
	block   uint64
	ri      int
	addr    uint64
}

func newBlockCursor(hier *mem.Hierarchy, w *cmpAgentWorkload) *blockCursor {
	c := &blockCursor{regions: w.regions, block: uint64(hier.Config().L1BlockBytes)}
	if len(c.regions) > 0 {
		c.addr = c.regions[0][0]
	}
	return c
}

// next returns the next block address, or false once the partition is done.
func (c *blockCursor) next() (uint64, bool) {
	for c.ri < len(c.regions) {
		if c.addr < c.regions[c.ri][1] {
			a := c.addr
			c.addr += c.block
			return a, true
		}
		c.ri++
		if c.ri < len(c.regions) {
			c.addr = c.regions[c.ri][0]
		}
	}
	return 0, false
}

// warmPartitionsInterleaved warms every co-running agent's partition into the
// one shared LLC round-robin, one block at a time across agents. Warming the
// partitions whole in agent order leaves the first agents' partitions
// partially evicted once the aggregate working set overflows the LLC — a
// start-state asymmetry the co-run then measures as contention that depends
// on the agent index, not the contention itself. Interleaving spreads the
// capacity pressure evenly, so identical agents start from identical
// (statistically) warm states.
func warmPartitionsInterleaved(hiers []*mem.Hierarchy, ws []cmpAgentWorkload) {
	cursors := make([]*blockCursor, len(ws))
	for i := range ws {
		cursors[i] = newBlockCursor(hiers[i], &ws[i])
	}
	for remaining := true; remaining; {
		remaining = false
		for i, cur := range cursors {
			if addr, ok := cur.next(); ok {
				hiers[i].WarmLLCOnly(addr)
				remaining = true
			}
		}
	}
}

// cmpAgentSpec builds one co-runner's private memory spec: the topology's
// default, the kind's LLC-way default (Widx agents take the configured
// accelerator partition, host cores keep the full LLC), then the spec's
// explicit per-agent overrides.
func (c Config) cmpAgentSpec(top mem.Topology, name string, spec CMPAgentSpec) mem.AgentSpec {
	as := top.Agent(name)
	if spec.Kind == AgentWidx {
		as.LLCWays = c.LLCWays
	}
	if spec.MSHRs > 0 {
		as.MSHRs = spec.MSHRs
	}
	if spec.LLCWays > 0 {
		as.LLCWays = spec.LLCWays
	}
	return as
}

// newCMPRunner wires one agent spec onto a hierarchy view: a Widx offload
// over its key column, or a core replay of its traces, beginning at
// startCycle (the arrival stagger of the co-run; solo runs pass 0).
func newCMPRunner(hier *mem.Hierarchy, spec CMPAgentSpec, as *vm.AddressSpace, w *cmpAgentWorkload, queueDepth int, startCycle uint64) (*cmpRunner, error) {
	switch spec.Kind {
	case AgentWidx:
		walkers := spec.Walkers
		if walkers == 0 {
			walkers = 4
		}
		acc, err := widx.New(widx.Config{NumWalkers: walkers, QueueDepth: queueDepth},
			hier, as, w.progs.Dispatcher, w.progs.Walker, w.progs.Producer)
		if err != nil {
			return nil, err
		}
		o, err := acc.StartOffload(widx.OffloadRequest{KeyBase: w.keyBase, KeyCount: uint64(w.keys), StartCycle: startCycle})
		if err != nil {
			return nil, err
		}
		var res *widx.OffloadResult
		return &cmpRunner{
			agent: o,
			finish: func() (uint64, mem.Stats, error) {
				r, err := o.Result()
				if err != nil {
					return 0, mem.Stats{}, err
				}
				res = r
				return r.TotalCycles, r.MemStats, nil
			},
			matches: func() []uint64 {
				if res == nil {
					return nil
				}
				return res.Matches
			},
		}, nil

	case AgentOoO, AgentInOrder:
		cfg := cores.OoOConfig()
		if spec.Kind == AgentInOrder {
			cfg = cores.InOrderConfig()
		}
		core, err := cores.New(cfg, hier)
		if err != nil {
			return nil, err
		}
		e, err := core.NewProbeEngine(w.traces, startCycle)
		if err != nil {
			return nil, err
		}
		return &cmpRunner{agent: e, finish: func() (uint64, mem.Stats, error) {
			res, err := e.Result()
			if err != nil {
				return 0, mem.Stats{}, err
			}
			return res.TotalCycles, res.MemStats, nil
		}}, nil

	default:
		return nil, fmt.Errorf("sim: unknown agent kind %v", spec.Kind)
	}
}

// runCMPSoloSampled executes one agent's stream alone through the plan on
// its already partition-warmed hierarchy: fast-forward spans warm from the
// reference traces (a Widx agent's reference matches join its output
// stream), detailed spans run a span-sized engine resuming at the cycle the
// previous span ended. The returned cycle and memory aggregates cover the
// measured spans only; Widx output is fingerprint-verified against the full
// reference before returning.
func (c Config) runCMPSoloSampled(hier *mem.Hierarchy, spec CMPAgentSpec, as *vm.AddressSpace, w *cmpAgentWorkload, plan sampling.Plan) (uint64, mem.Stats, []windowSample, error) {
	var cycles, cursor uint64
	var memStats mem.Stats
	var wins []windowSample
	var stream []uint64
	detailed := func(sp sampling.Span) error {
		run, err := newCMPRunner(hier, spec, as, w.span(sp), c.queueDepth(), cursor)
		if err != nil {
			return err
		}
		if err := system.Run(run.agent); err != nil {
			return err
		}
		cyc, st, err := run.finish()
		if err != nil {
			return err
		}
		cursor += cyc
		if run.matches != nil {
			stream = append(stream, run.matches()...)
		}
		if sp.Kind != sampling.Measure {
			return nil
		}
		cycles += cyc
		memStats = memStats.Add(st)
		wins = append(wins, windowSample{cycles: cyc, tuples: sp.Len(), mshr: st.MeanMSHROccupancy()})
		return nil
	}
	ff := func(sp sampling.Span) error {
		if w.progs != nil {
			stream = append(stream, matchSegment(w.matches, w.bounds, sp.Start, sp.End)...)
		}
		ffWarm(hier, w.traces[sp.Start:sp.End])
		return nil
	}
	if c.SampleFullDetail {
		ff = detailed
	}
	if err := plan.Run(ff, detailed); err != nil {
		return 0, mem.Stats{}, nil, err
	}
	if w.progs != nil {
		if err := verifySampledStream(w.name+" solo", stream, w.matches); err != nil {
			return 0, mem.Stats{}, nil, err
		}
	}
	return cycles, memStats, wins, nil
}

// RunCMP co-schedules one index-probe stream per agent on a single shared
// memory level, runs each stream solo on an uncontended hierarchy for
// reference, and reports the contention metrics: per-agent and system-level
// cycles, LLC miss inflation, shared-MSHR saturation share and off-chip
// bandwidth utilization. Each agent probes its own partition's hash table
// (partitioned hash join), so the co-run's aggregate working set is K
// partitions against one LLC.
func (c Config) RunCMP(size join.SizeClass, specs []CMPAgentSpec) (*CMPExperiment, error) {
	return c.runCMP(size, specs, structures.HashJoin, true)
}

// RunCMPStructure is RunCMP with every partition built as the given zoo
// structure: the same co-scheduling, warming and contention metrics, but
// the streams traverse skip lists, B+-trees, LSM levels or BFS frontiers
// instead of hash-bucket chains.
func (c Config) RunCMPStructure(size join.SizeClass, specs []CMPAgentSpec, structure structures.Kind) (*CMPExperiment, error) {
	return c.runCMP(size, specs, structure, true)
}

// runCMP is RunCMP with the warming policy explicit: interleavedWarm selects
// round-robin block-interleaved warming (the production policy); false warms
// whole partitions in agent order, kept only so tests can quantify the
// start-state asymmetry the interleaved policy removes.
func (c Config) runCMP(size join.SizeClass, specs []CMPAgentSpec, structure structures.Kind, interleavedWarm bool) (*CMPExperiment, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("sim: no CMP agents")
	}
	// Per-agent overrides (":mshrs=N", ":ways=N") are only bounded by the
	// topology, so validate every agent's resolved spec up front — a bad
	// override must surface as an error, not as SharedLevel.NewAgent's
	// panic mid-run.
	top := c.topology()
	for _, spec := range specs {
		if err := c.cmpAgentSpec(top, spec.String(), spec).Validate(top.Shared); err != nil {
			return nil, fmt.Errorf("sim: agent %s: %w", spec, err)
		}
	}
	k := len(specs)
	as, workloads, workloadKey, err := c.cmpWorkload(size, specs, structure)
	if err != nil {
		return nil, err
	}

	exp := &CMPExperiment{Size: size, Structure: structure, Agents: make([]CMPAgentResult, k)}

	// Every agent's partition carries the same probe-stream length, so one
	// plan drives all of them and the co-run's rounds stay aligned.
	var plan sampling.Plan
	soloWins := make([][]windowSample, k)
	coWins := make([][]windowSample, k)
	if c.sampling() {
		plan = c.samplePlan(workloads[0].keys)
	}

	// Solo reference runs: each agent alone on a fresh, uncontended
	// hierarchy with its own partition warmed and the same private spec
	// (MSHRs, way partition) it will co-run with, so the slowdown isolates
	// contention from the agent's own provisioning. Runs are sequential —
	// agents share the workload's address space (Widx producers store into
	// it), and the runs are seconds-scale.
	for i, spec := range specs {
		sl := c.newSharedLevel()
		hier := sl.NewAgent(c.cmpAgentSpec(sl.Topology(), workloads[i].name, spec))
		if err := c.warmCMPSolo(hier, workloadKey, &workloads[i], i); err != nil {
			return nil, err
		}
		a := &exp.Agents[i]
		a.Name = workloads[i].name
		a.Spec = spec
		a.Tuples = uint64(workloads[i].keys)
		var cycles uint64
		var memStats mem.Stats
		if c.sampling() {
			var wins []windowSample
			cycles, memStats, wins, err = c.runCMPSoloSampled(hier, spec, as, &workloads[i], plan)
			if err != nil {
				return nil, err
			}
			soloWins[i] = wins
			// Per-tuple figures cover the measured probes only.
			a.Tuples = plan.MeasuredProbes()
		} else {
			run, err := newCMPRunner(hier, spec, as, &workloads[i], c.queueDepth(), 0)
			if err != nil {
				return nil, err
			}
			if err := system.Run(run.agent); err != nil {
				return nil, err
			}
			cycles, memStats, err = run.finish()
			if err != nil {
				return nil, err
			}
		}
		a.SoloCycles = cycles
		a.SoloCyclesPerTuple = float64(cycles) / float64(a.Tuples)
		a.SoloMemStats = memStats
		if u := c.Mem.MemBandwidthUtilization(memStats.MemBlocks, cycles); u > exp.SoloBandwidthUtilization {
			exp.SoloBandwidthUtilization = u
		}
	}

	// The co-run: every agent on one shared level, all partitions warmed
	// round-robin block-interleaved (so the steady-state capacity pressure
	// of a partitioned join lands on every agent evenly rather than evicting
	// the partitions warmed first), merged by the system scheduler's event
	// heap in globally monotonic cycle order.
	sl := c.newSharedLevel()
	runs := make([]*cmpRunner, k)
	agents := make([]system.Agent, k)
	hiers := make([]*mem.Hierarchy, k)
	for i := range specs {
		hiers[i] = sl.NewAgent(c.cmpAgentSpec(sl.Topology(), workloads[i].name, specs[i]))
	}
	if err := c.warmCMPCoRun(sl, hiers, workloadKey, workloads, interleavedWarm); err != nil {
		return nil, err
	}
	if c.sampling() {
		// Sampled co-run: the plan advances in lockstep rounds. A
		// fast-forward round warms every agent's trace span functionally; a
		// detailed round schedules all agents together (re-staggered by
		// arrival) from the cycle the previous round ended, and measured
		// rounds contribute one window observation per agent.
		streams := make([][]uint64, k)
		var cursor uint64
		detailed := func(sp sampling.Span) error {
			spanRuns := make([]*cmpRunner, k)
			spanAgents := make([]system.Agent, k)
			for i, spec := range specs {
				r, err := newCMPRunner(hiers[i], spec, as, workloads[i].span(sp), c.queueDepth(), cursor+uint64(i)*c.Stagger)
				if err != nil {
					return err
				}
				spanRuns[i], spanAgents[i] = r, r.agent
			}
			if err := system.Run(spanAgents...); err != nil {
				return err
			}
			var roundMax uint64
			for i, r := range spanRuns {
				cyc, st, err := r.finish()
				if err != nil {
					return err
				}
				if r.matches != nil {
					streams[i] = append(streams[i], r.matches()...)
				}
				if end := uint64(i)*c.Stagger + cyc; end > roundMax {
					roundMax = end
				}
				if sp.Kind == sampling.Measure {
					a := &exp.Agents[i]
					a.Cycles += cyc
					a.MemStats = a.MemStats.Add(st)
					coWins[i] = append(coWins[i], windowSample{cycles: cyc, tuples: sp.Len(), mshr: st.MeanMSHROccupancy()})
				}
			}
			cursor += roundMax
			return nil
		}
		ff := func(sp sampling.Span) error {
			for i := range workloads {
				if workloads[i].progs != nil {
					streams[i] = append(streams[i], matchSegment(workloads[i].matches, workloads[i].bounds, sp.Start, sp.End)...)
				}
				ffWarm(hiers[i], workloads[i].traces[sp.Start:sp.End])
			}
			return nil
		}
		if c.SampleFullDetail {
			ff = detailed
		}
		if err := plan.Run(ff, detailed); err != nil {
			return nil, err
		}
		for i := range workloads {
			if workloads[i].progs == nil {
				continue
			}
			if err := verifySampledStream(workloads[i].name, streams[i], workloads[i].matches); err != nil {
				return nil, err
			}
		}
		exp.SystemCycles = cursor
		var coMisses, soloMisses uint64
		rep := sampling.NewReport(plan)
		for i := range exp.Agents {
			a := &exp.Agents[i]
			a.CyclesPerTuple = float64(a.Cycles) / float64(a.Tuples)
			a.Slowdown = ratio(float64(a.Cycles), float64(a.SoloCycles))
			a.LLCMissInflation = ratio(float64(a.MemStats.LLCMisses), float64(a.SoloMemStats.LLCMisses))
			coMisses += a.MemStats.LLCMisses
			soloMisses += a.SoloMemStats.LLCMisses
			if workloads[i].progs != nil {
				rep.FingerprintVerified = true
			}
			rep.Add(sampledMetricName(a.Name+" solo", metricCPT), cptSeries(soloWins[i]))
			rep.Add(sampledMetricName(a.Name+" co", metricCPT), cptSeries(coWins[i]))
			// Window j's slowdown is the co-run/solo cycle ratio of aligned
			// windows.
			rep.Add(a.Name+" slowdown", speedupSeries(coWins[i], soloWins[i]))
		}
		exp.LLCMissInflation = ratio(float64(coMisses), float64(soloMisses))
		exp.Sampling = rep
	} else {
		for i, spec := range specs {
			runs[i], err = newCMPRunner(hiers[i], spec, as, &workloads[i], c.queueDepth(), uint64(i)*c.Stagger)
			if err != nil {
				return nil, err
			}
			agents[i] = runs[i].agent
		}
		if err := system.Run(agents...); err != nil {
			return nil, err
		}

		var coMisses, soloMisses uint64
		for i, run := range runs {
			cycles, stats, err := run.finish()
			if err != nil {
				return nil, err
			}
			a := &exp.Agents[i]
			a.Cycles = cycles
			a.CyclesPerTuple = float64(cycles) / float64(a.Tuples)
			a.MemStats = stats
			a.Slowdown = ratio(float64(cycles), float64(a.SoloCycles))
			a.LLCMissInflation = ratio(float64(stats.LLCMisses), float64(a.SoloMemStats.LLCMisses))
			coMisses += stats.LLCMisses
			soloMisses += a.SoloMemStats.LLCMisses
			// The system drains when the last agent finishes; under a
			// staggered arrival an agent's span is offset by its start cycle.
			if end := uint64(i)*c.Stagger + cycles; end > exp.SystemCycles {
				exp.SystemCycles = end
			}
		}
		exp.LLCMissInflation = ratio(float64(coMisses), float64(soloMisses))
	}
	exp.SharedStats = sl.Stats()
	exp.MSHRSaturationShare = exp.SharedStats.MSHRSaturationShare(c.fillBuffers())
	exp.BandwidthUtilization = c.Mem.MemBandwidthUtilization(exp.SharedStats.MemBlocks, exp.SystemCycles)
	return exp, nil
}

// ratio returns a/b, or 1 when b is zero (no solo activity to inflate).
func ratio(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}
