package sim

import (
	"testing"

	"widx/internal/structures"
	"widx/internal/warmstate"
)

// zooTestConfig is the small zoo configuration the determinism tests run.
func zooTestConfig(parallelism int) Config {
	cfg := QuickConfig()
	cfg.Scale = 1.0 / 2048
	cfg.SampleProbes = 600
	cfg.Walkers = []int{1, 4}
	cfg.Parallelism = parallelism
	return cfg
}

func TestRunZooAllStructures(t *testing.T) {
	exp, err := zooTestConfig(1).RunZoo(ZooOptions{})
	if err != nil {
		t.Fatal(err)
	}
	kinds := structures.Kinds()
	if len(exp.Structures) != len(kinds) {
		t.Fatalf("zoo ran %d structures, want %d", len(exp.Structures), len(kinds))
	}
	for i, s := range exp.Structures {
		if s.Structure != kinds[i] {
			t.Fatalf("structure %d is %v, want %v", i, s.Structure, kinds[i])
		}
		if s.Matches == 0 || s.Fingerprint == 0 {
			t.Fatalf("%v: empty reference (matches %d, fp %#x)", s.Structure, s.Matches, s.Fingerprint)
		}
		if s.OoOCyclesPerTuple <= 0 {
			t.Fatalf("%v: no baseline cost", s.Structure)
		}
		for _, p := range s.Points {
			if p.CyclesPerTuple <= 0 || p.Speedup <= 0 {
				t.Fatalf("%v at %d walkers: degenerate point %+v", s.Structure, p.Walkers, p)
			}
		}
	}
	if exp.Text() == "" {
		t.Fatal("empty text report")
	}
	if data, err := exp.JSON(); err != nil || len(data) == 0 {
		t.Fatalf("JSON encoding: %v (%d bytes)", err, len(data))
	}
}

// TestParallelZooDeterminism asserts the sweep contract on the zoo: the
// report is byte-identical at parallelism 1 and 8.
func TestParallelZooDeterminism(t *testing.T) {
	seqExp, err := zooTestConfig(1).RunZoo(ZooOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seq := seqExp.Text()
	parExp, err := zooTestConfig(8).RunZoo(ZooOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if par := parExp.Text(); par != seq {
		t.Fatalf("parallelism changed the zoo report\nsequential:\n%s\nparallel:\n%s", seq, par)
	}
}

// TestZooWarmCacheDeterminism asserts warm-cache transparency: a cache-off
// run, a cold-cache run and a warm-hit rerun all render byte-identically,
// with the cache in verify mode so a key that misses a warm-affecting knob
// fails loudly.
func TestZooWarmCacheDeterminism(t *testing.T) {
	opt := ZooOptions{Span: 2, Prog: structures.ProgramOptions{TouchWalker: true}}
	off := zooTestConfig(2)
	off.WarmCache = nil
	offExp, err := off.RunZoo(opt)
	if err != nil {
		t.Fatal(err)
	}
	want := offExp.Text()

	on := zooTestConfig(2)
	on.WarmCache = warmstate.New()
	on.WarmCache.SetVerify(true)
	for pass := 0; pass < 2; pass++ {
		exp, err := on.RunZoo(opt)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if got := exp.Text(); got != want {
			t.Fatalf("pass %d: warm cache changed the zoo report\noff:\n%s\non:\n%s", pass, want, got)
		}
	}
	if hits, misses := on.WarmCache.Stats(); hits == 0 || misses == 0 {
		t.Fatalf("warm cache did not exercise both paths (hits %d, misses %d)", hits, misses)
	}
}

// TestZooProgramVariantsKeepResults asserts the satellite contract: the
// dispatcher-prefetch and touching-walker variants change only timing-side
// behaviour — fingerprints, match counts and geometry stay identical.
func TestZooProgramVariantsKeepResults(t *testing.T) {
	base, err := zooTestConfig(4).RunZoo(ZooOptions{})
	if err != nil {
		t.Fatal(err)
	}
	variant, err := zooTestConfig(4).RunZoo(ZooOptions{
		Prog: structures.ProgramOptions{PrefetchDist: 8, TouchWalker: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range base.Structures {
		v := variant.Structures[i]
		if s.Fingerprint != v.Fingerprint || s.Matches != v.Matches {
			t.Fatalf("%v: program variant changed the functional output (%#x/%d vs %#x/%d)",
				s.Structure, s.Fingerprint, s.Matches, v.Fingerprint, v.Matches)
		}
		if s.Geometry != v.Geometry {
			t.Fatalf("%v: program variant changed the geometry", s.Structure)
		}
	}
}
