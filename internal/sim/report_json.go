package sim

import (
	"encoding/json"

	"widx/internal/model"
	"widx/internal/widx"
)

// This file is the machine-readable side of the report pair: every result
// type's JSON() method feeds the exp registry's per-run manifest, and
// cmd/widxsim's -breakdown-json dump reuses the same encoding. All encodings
// go through encodeJSON so indentation and key ordering (Go's deterministic
// struct-order / sorted-map-key marshaling) are uniform everywhere.

// encodeJSON is the one JSON encoding every experiment result uses.
func encodeJSON(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}

// JSON encodes the Figure 8 kernel experiment.
func (e *KernelExperiment) JSON() ([]byte, error) { return encodeJSON(e) }

// JSON encodes the CMP contention experiment.
func (e *CMPExperiment) JSON() ([]byte, error) { return encodeJSON(e) }

// JSON encodes the simulator-driven Figure 5 sweep.
func (s *WalkerUtilizationSweep) JSON() ([]byte, error) { return encodeJSON(s) }

// JSON encodes the Figure 9/10/11 suite result.
func (s *SuiteResult) JSON() ([]byte, error) { return encodeJSON(s) }

// JSON encodes the Figure 2 breakdown rows.
func (rows BreakdownRows) JSON() ([]byte, error) { return encodeJSON(rows) }

// JSON encodes the hashing-organization ablation.
func (a *AblationResult) JSON() ([]byte, error) { return encodeJSON(a) }

// JSON encodes the workload-zoo cross-structure study.
func (e *ZooExperiment) JSON() ([]byte, error) { return encodeJSON(e) }

// modelFiguresJSON is the analytical model's JSON payload: the input
// parameters plus every closed-form curve the text report prints.
type modelFiguresJSON struct {
	Params   model.Params       `json:"params"`
	Figure4a []model.Series     `json:"figure4a"`
	Figure4b model.Series       `json:"figure4b"`
	Figure4c model.Series       `json:"figure4c"`
	Figure5  []modelFigure5JSON `json:"figure5"`
}

type modelFigure5JSON struct {
	NodesPerBucket int            `json:"nodes_per_bucket"`
	Series         []model.Series `json:"series"`
}

// JSON encodes the analytical-model figures.
func (m ModelFigures) JSON() ([]byte, error) {
	payload := modelFiguresJSON{
		Params:   m.Params,
		Figure4a: model.Figure4a(m.Params),
		Figure4b: model.Figure4b(m.Params),
		Figure4c: model.Figure4c(m.Params),
	}
	for depth := 1; depth <= 3; depth++ {
		payload.Figure5 = append(payload.Figure5, modelFigure5JSON{
			NodesPerBucket: depth,
			Series:         model.Figure5(m.Params, float64(depth)),
		})
	}
	return encodeJSON(payload)
}

// OffloadDump is the widxsim -breakdown-json schema: one entry per Widx
// design point carrying what the text report aggregates away — each walker's
// cycle breakdown and the memory system's time-weighted MSHR-occupancy
// histogram.
type OffloadDump struct {
	Workload string             `json:"workload"`
	Points   []OffloadDumpPoint `json:"points"`
}

// OffloadDumpPoint is one Widx design point of an OffloadDump.
type OffloadDumpPoint struct {
	Walkers        int     `json:"walkers"`
	Mode           string  `json:"mode"`
	Tuples         uint64  `json:"tuples"`
	TotalCycles    uint64  `json:"total_cycles"`
	CyclesPerTuple float64 `json:"cycles_per_tuple"`
	// PerWalker[i] is walker i's aggregate cycle breakdown.
	PerWalker []OffloadDumpBreakdown `json:"per_walker"`
	// Dispatcher/producer activity (cycles).
	DispatcherBusy  uint64 `json:"dispatcher_busy"`
	DispatcherStall uint64 `json:"dispatcher_stall"`
	ProducerBusy    uint64 `json:"producer_busy"`
	// MSHROccupancyCycles[k] is the number of cycles exactly k L1 MSHRs
	// were live; MSHRSaturated is the share of cycles at the full budget.
	MSHROccupancyCycles []uint64 `json:"mshr_occupancy_cycles"`
	MSHRSaturated       float64  `json:"mshr_saturated_share"`
	PortStallCycles     uint64   `json:"port_stall_cycles"`
	MSHRStallCycles     uint64   `json:"mshr_stall_cycles"`
}

// OffloadDumpBreakdown is one walker's aggregate cycle breakdown.
type OffloadDumpBreakdown struct {
	Comp uint64 `json:"comp"`
	Mem  uint64 `json:"mem"`
	TLB  uint64 `json:"tlb"`
	Idle uint64 `json:"idle"`
}

// NewOffloadDumpPoint distills one offload result into a dump point.
func NewOffloadDumpPoint(walkers int, mode widx.HashingMode, r *widx.OffloadResult) OffloadDumpPoint {
	p := OffloadDumpPoint{
		Walkers:             walkers,
		Mode:                mode.String(),
		Tuples:              r.Tuples,
		TotalCycles:         r.TotalCycles,
		CyclesPerTuple:      r.CyclesPerTuple(),
		DispatcherBusy:      r.DispatcherBusy,
		DispatcherStall:     r.DispatcherStall,
		ProducerBusy:        r.ProducerBusy,
		MSHROccupancyCycles: r.MemStats.MSHROccupancy,
		PortStallCycles:     r.MemStats.PortStallCycles,
		MSHRStallCycles:     r.MemStats.MSHRStallCycles,
	}
	if n := len(r.MemStats.MSHROccupancy); n > 0 {
		p.MSHRSaturated = r.MemStats.MSHRSaturationShare(n - 1)
	}
	for _, w := range r.Walkers {
		p.PerWalker = append(p.PerWalker, OffloadDumpBreakdown{Comp: w.Comp, Mem: w.Mem, TLB: w.TLB, Idle: w.Idle})
	}
	return p
}

// JSON encodes the dump.
func (d *OffloadDump) JSON() ([]byte, error) { return encodeJSON(d) }
