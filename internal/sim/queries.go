package sim

import (
	"fmt"

	"widx/internal/cores"
	"widx/internal/energy"
	"widx/internal/sampling"
	"widx/internal/stats"
	"widx/internal/widx"
	"widx/internal/workloads"
)

// oooConfig and inOrderConfig are the Table 2 baselines.
func oooConfig() cores.Config     { return cores.OoOConfig() }
func inOrderConfig() cores.Config { return cores.InOrderConfig() }

// QueryResult is one simulated DSS query (one group of bars in Figures 9 and
// 10, one row of the breakdown of Figure 2).
type QueryResult struct {
	Query workloads.QuerySpec

	// Engine-level measurements (Figure 2a/2b reproduction).
	MeasuredBreakdown workloads.BreakdownShares
	MeasuredHashShare float64

	// Indexing-phase cycles per tuple per design.
	OoOCyclesPerTuple     float64
	InOrderCyclesPerTuple float64
	// WidxCyclesPerTuple and WidxBreakdown are keyed by walker count.
	WidxCyclesPerTuple map[int]float64
	WidxBreakdown      map[int]Breakdown
	// WidxRaw keeps the offload timing detail per walker count for offline
	// analysis (cmd/widxsim's -breakdown-json dump); match payloads are
	// stripped.
	WidxRaw map[int]*widx.OffloadResult

	// Speedups over the OoO baseline (Figure 10).
	IndexSpeedup map[int]float64
	// QuerySpeedup4W projects the four-walker indexing speedup onto the whole
	// query using the paper's Figure 2a indexing share (Amdahl projection, as
	// in Section 6.2).
	QuerySpeedup4W float64

	// Sampling carries the per-window confidence estimates when the run was
	// sampled; nil otherwise.
	Sampling *sampling.Report `json:"sampling,omitempty"`
}

// RunQuery executes one benchmark query end to end: the engine produces the
// operator breakdown and the index phase, which is then replayed on the
// baseline cores and on Widx at every configured walker count.
func (c Config) RunQuery(q workloads.QuerySpec) (*QueryResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	engRes, engKey, err := c.engineRunKeyed(q, true)
	if err != nil {
		return nil, fmt.Errorf("sim: query %s %s: %w", q.Suite, q.Name, err)
	}
	ph := &indexPhase{
		as:           engRes.AS,
		index:        engRes.Index,
		probeKeyBase: engRes.ProbeKeyBase,
		probeCount:   engRes.ProbeCount,
		traces:       engRes.Traces,
		warmKey:      engKey,
	}

	res := &QueryResult{
		Query:              q,
		MeasuredBreakdown:  engRes.Breakdown.Shares(),
		MeasuredHashShare:  engRes.HashShare,
		WidxCyclesPerTuple: map[int]float64{},
		WidxBreakdown:      map[int]Breakdown{},
		WidxRaw:            map[int]*widx.OffloadResult{},
		IndexSpeedup:       map[int]float64{},
	}

	// All design points — the two baselines and the walker sweep — replay the
	// same phase on fresh hierarchies and fan out across workers.
	baseRes, widxRes, ps, err := c.runPhase(ph,
		[]cores.Config{oooConfig(), inOrderConfig()}, c.walkerPoints(0))
	if err != nil {
		return nil, err
	}
	res.OoOCyclesPerTuple = baseRes[0].CyclesPerTuple()
	res.InOrderCyclesPerTuple = baseRes[1].CyclesPerTuple()
	if ps != nil {
		rep := ps.report()
		rep.Add(sampledMetricName("ooo", metricCPT), cptSeries(ps.baseWins[0]))
		rep.Add(sampledMetricName("inorder", metricCPT), cptSeries(ps.baseWins[1]))
		for i, w := range c.Walkers {
			addSampledPoint(rep, fmt.Sprintf("%dw", w), ps.baseWins[0], ps.widxWins[i])
		}
		res.Sampling = rep
	}

	for i, w := range c.Walkers {
		wres := widxRes[i]
		res.WidxCyclesPerTuple[w] = wres.CyclesPerTuple()
		res.WidxBreakdown[w] = scaleBreakdown(wres.WalkerTotal, w, wres.Tuples)
		res.WidxRaw[w] = rawDetail(wres)
		res.IndexSpeedup[w] = res.OoOCyclesPerTuple / wres.CyclesPerTuple()
	}

	if sp, ok := res.IndexSpeedup[4]; ok {
		res.QuerySpeedup4W = energy.QuerySpeedup(sp, q.Paper.Breakdown.Index)
	}
	return res, nil
}

// SamplingReport implements SamplingReporter.
func (r *QueryResult) SamplingReport() *sampling.Report { return r.Sampling }

// SampledMetricValues returns the query's full-run values under the sampled
// estimator's metric names, for -sampling-verify interval checks.
func (r *QueryResult) SampledMetricValues() map[string]float64 {
	m := map[string]float64{
		sampledMetricName("ooo", metricCPT):     r.OoOCyclesPerTuple,
		sampledMetricName("inorder", metricCPT): r.InOrderCyclesPerTuple,
	}
	for w, cpt := range r.WidxCyclesPerTuple {
		prefix := fmt.Sprintf("%dw", w)
		m[sampledMetricName(prefix, metricCPT)] = cpt
		m[sampledMetricName(prefix, metricSpeedup)] = r.IndexSpeedup[w]
		if raw := r.WidxRaw[w]; raw != nil {
			m[sampledMetricName(prefix, metricMSHR)] = raw.MemStats.MeanMSHROccupancy()
		}
	}
	return m
}

// SuiteResult aggregates the simulated queries of Figures 9-11.
type SuiteResult struct {
	Queries []*QueryResult

	// Geometric means across all simulated queries (paper: 3.1x indexing,
	// 1.5x whole-query with four walkers).
	GeoMeanIndexSpeedup map[int]float64
	GeoMeanQuerySpeedup float64
	// InOrderSlowdown is the geometric-mean in-order/OoO runtime ratio
	// (paper: ~2.2x).
	InOrderSlowdown float64

	// Energy is the Figure 11 comparison built from geometric-mean runtimes.
	Energy energy.Figure11

	// Sampling merges every query's per-window confidence estimates, each
	// metric prefixed with its query name; nil when sampling was off.
	Sampling *sampling.Report `json:"sampling,omitempty"`
}

// RunSimulatedQueries runs the twelve simulated queries (Figures 9 and 10)
// and aggregates the headline numbers.
func (c Config) RunSimulatedQueries() (*SuiteResult, error) {
	return c.runQuerySet(workloads.SimulatedQueries())
}

// runQuerySet runs an arbitrary query list and aggregates it. The queries
// fan out across workers; aggregation happens afterwards in input order, so
// the suite result does not depend on completion order.
func (c Config) runQuerySet(queries []workloads.QuerySpec) (*SuiteResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("sim: no queries to run")
	}
	results := make([]*QueryResult, len(queries))
	// Each in-flight query gets its share of the worker budget for its own
	// design points, keeping the total at c.Parallelism (and avoiding one
	// address-space clone per design point per in-flight query).
	inner := c.InnerConfig(len(queries))
	if err := c.RunTasks(len(queries), func(i int) error {
		qr, err := inner.RunQuery(queries[i])
		if err != nil {
			return err
		}
		results[i] = qr
		return nil
	}); err != nil {
		return nil, err
	}

	suite := &SuiteResult{GeoMeanIndexSpeedup: map[int]float64{}}
	speedups := map[int][]float64{}
	var querySpeedups, slowdowns, oooCycles, inorderCycles, widx4Cycles []float64

	for _, qr := range results {
		suite.Queries = append(suite.Queries, qr)
		if qr.Sampling != nil {
			if suite.Sampling == nil {
				// Seed the suite report with the first query's plan header;
				// metric names carry the per-query context instead.
				hdr := *qr.Sampling
				hdr.Metrics = nil
				hdr.FingerprintVerified = false
				suite.Sampling = &hdr
			}
			suite.Sampling.Merge(queryMetricPrefix(qr.Query), qr.Sampling)
		}
		for w, sp := range qr.IndexSpeedup {
			speedups[w] = append(speedups[w], sp)
		}
		if qr.QuerySpeedup4W > 0 {
			querySpeedups = append(querySpeedups, qr.QuerySpeedup4W)
		}
		slowdowns = append(slowdowns, qr.InOrderCyclesPerTuple/qr.OoOCyclesPerTuple)
		oooCycles = append(oooCycles, qr.OoOCyclesPerTuple)
		inorderCycles = append(inorderCycles, qr.InOrderCyclesPerTuple)
		if cpt, ok := qr.WidxCyclesPerTuple[4]; ok {
			widx4Cycles = append(widx4Cycles, cpt)
		}
	}
	for w, sps := range speedups {
		suite.GeoMeanIndexSpeedup[w] = stats.GeoMean(sps)
	}
	suite.GeoMeanQuerySpeedup = stats.GeoMean(querySpeedups)
	suite.InOrderSlowdown = stats.GeoMean(slowdowns)

	// Figure 11 uses the geometric-mean indexing runtimes of the three
	// designs (per-tuple cycles are proportional to runtime for a fixed
	// probe count).
	if len(widx4Cycles) > 0 {
		suite.Energy = energy.Default().Compare(
			stats.GeoMean(oooCycles)*1e6,
			stats.GeoMean(inorderCycles)*1e6,
			stats.GeoMean(widx4Cycles)*1e6)
	}
	return suite, nil
}

// queryMetricPrefix names one query's metrics inside the suite-level
// sampling report.
func queryMetricPrefix(q workloads.QuerySpec) string {
	return fmt.Sprintf("%s %s: ", q.Suite, q.Name)
}

// SamplingReport implements SamplingReporter.
func (s *SuiteResult) SamplingReport() *sampling.Report { return s.Sampling }

// SampledMetricValues returns every query's full-run values under the
// suite report's prefixed metric names.
func (s *SuiteResult) SampledMetricValues() map[string]float64 {
	m := make(map[string]float64)
	for _, qr := range s.Queries {
		prefix := queryMetricPrefix(qr.Query)
		for name, v := range qr.SampledMetricValues() {
			m[prefix+name] = v
		}
	}
	return m
}

// BreakdownRow is one query's Figure 2a row: the measured operator shares
// next to the paper's reported shares.
type BreakdownRow struct {
	Query    workloads.QuerySpec
	Measured workloads.BreakdownShares
	Paper    workloads.BreakdownShares
	// MeasuredHashShare and PaperHashShare compare the Figure 2b split
	// (only meaningful for simulated queries).
	MeasuredHashShare float64
	PaperHashShare    float64
}

// BreakdownRows is the Figure 2 result set: one row per executed query. The
// named slice type carries the report encodings (Text/JSON).
type BreakdownRows []BreakdownRow

// RunBreakdowns reproduces Figure 2a (and 2b for the simulated queries) by
// executing every query in the inventory through the engine. Set
// simulatedOnly to restrict the run to the twelve Figure 2b queries.
func (c Config) RunBreakdowns(simulatedOnly bool) (BreakdownRows, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var queries []workloads.QuerySpec
	for _, q := range workloads.Queries() {
		if simulatedOnly && !q.Simulated {
			continue
		}
		queries = append(queries, q)
	}
	rows := make(BreakdownRows, len(queries))
	if err := c.RunTasks(len(queries), func(i int) error {
		q := queries[i]
		// Breakdown rows read only the engine-level measurements, so the
		// shared cached result suffices — no address-space clone.
		engRes, err := c.engineRun(q, false)
		if err != nil {
			return err
		}
		rows[i] = BreakdownRow{
			Query:             q,
			Measured:          engRes.Breakdown.Shares(),
			Paper:             q.Paper.Breakdown,
			MeasuredHashShare: engRes.HashShare,
			PaperHashShare:    q.Paper.HashShare,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// AblationResult compares the Figure 3 design points (coupled hashing,
// per-walker decoupled hashing, shared dispatcher) on one workload.
type AblationResult struct {
	// Query labels the workload the ablation ran on ("TPC-H q20").
	Query          string
	Walkers        int
	CoupledCPT     float64
	PerWalkerCPT   float64
	SharedCPT      float64
	DecouplingGain float64 // coupled / per-walker (Section 3.1's ~29% claim)
}

// RunHashingAblation quantifies the benefit of decoupled hashing and of
// sharing the dispatcher, using a TPC-H-like memory-resident query.
func (c Config) RunHashingAblation(q workloads.QuerySpec, walkers int) (*AblationResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	engRes, engKey, err := c.engineRunKeyed(q, true)
	if err != nil {
		return nil, err
	}
	ph := &indexPhase{
		as:           engRes.AS,
		index:        engRes.Index,
		probeKeyBase: engRes.ProbeKeyBase,
		probeCount:   engRes.ProbeCount,
		traces:       engRes.Traces,
		warmKey:      engKey,
	}
	out := &AblationResult{Query: fmt.Sprintf("%s %s", q.Suite, q.Name), Walkers: walkers}
	// Fixed design-point order: the previous map iteration randomized the
	// result-region allocation order (and with it buffer addresses) from run
	// to run, making the ablation numbers nondeterministic.
	points := []widxPoint{
		{walkers, widx.Coupled},
		{walkers, widx.PerWalkerHash},
		{walkers, widx.SharedDispatcher},
	}
	_, widxRes, _, err := c.runPhase(ph, nil, points)
	if err != nil {
		return nil, err
	}
	out.CoupledCPT = widxRes[0].CyclesPerTuple()
	out.PerWalkerCPT = widxRes[1].CyclesPerTuple()
	out.SharedCPT = widxRes[2].CyclesPerTuple()
	out.DecouplingGain = out.CoupledCPT / out.PerWalkerCPT
	return out, nil
}
