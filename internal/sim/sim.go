// Package sim is the experiment harness: it wires the workload generators,
// the query engine, the baseline core models and the Widx accelerator model
// together and regenerates every table and figure of the paper's evaluation
// (Figures 2, 8, 9, 10 and 11, plus the Section 6.3 area/energy numbers).
//
// Each experiment follows the paper's methodology: the workload is built
// once, the indexing phase is then executed on every design point — the
// out-of-order baseline, the in-order core, and Widx with one, two and four
// walkers — each with its own freshly warmed memory hierarchy, and the
// measured metric is indexing cycles per tuple. Like the paper's SMARTS-style
// sampling, only a bounded sample of probes is simulated in detail; the
// sample is large enough for stable per-tuple averages.
//
// Because the design points are independent experiments, the harness can run
// them concurrently: Config.Parallelism sets the worker count, and the runner
// (runner.go) gives every worker a private memory hierarchy and a private
// vm.AddressSpace clone while pre-allocating result regions in sequential
// order, so a parallel run produces byte-identical reports to Parallelism: 1
// for the same configuration and seed.
package sim

import (
	"context"
	"fmt"
	"runtime"

	"widx/internal/cores"
	"widx/internal/hashidx"
	"widx/internal/mem"
	"widx/internal/program"
	"widx/internal/sampling"
	"widx/internal/vm"
	"widx/internal/warmstate"
	"widx/internal/widx"
)

// Config controls workload scaling and simulation effort.
type Config struct {
	// Scale shrinks the paper's workload sizes (1.0 is the paper's setup;
	// the default benchmarks use a much smaller scale so a laptop-class
	// machine can regenerate every figure in minutes).
	Scale float64
	// SampleProbes caps how many probes are simulated in detail per design
	// (0 means all probes). This is the SMARTS-like sampling knob.
	SampleProbes int
	// SampleWindows turns on systematic sampled simulation
	// (internal/sampling): the probe stream splits into SampleWindows equal
	// strides, each ending in a detailed window of SampleWarmup unmeasured
	// plus SamplePeriod measured probes, with the stride prefixes
	// fast-forwarded functionally (reference matches join the output stream,
	// touched addresses warm the hierarchy, no cycles elapse). Headline
	// metrics are then estimated from the per-window observations with 95%
	// confidence intervals (the `sampling` manifest block). 0 disables
	// sampling and reproduces the historical full-detail runs byte for byte.
	SampleWindows int
	// SampleWarmup is the per-window detailed-but-unmeasured probe count
	// that re-establishes microarchitectural state after a fast-forward.
	SampleWarmup uint64
	// SamplePeriod is the per-window measured probe count.
	SamplePeriod uint64
	// SampleFullDetail turns a sampled run into its verification reference:
	// the same plan executes, but fast-forward spans run in full detail
	// (unmeasured) instead of functionally, so every probe is simulated and
	// the measured windows observe the true machine history. Aggregates and
	// window estimates then cover the identical window set as the sampled
	// run, making the -sampling-verify interval check compare like with
	// like: the only difference between the two runs is the fast-forward
	// approximation itself. Omitted from manifests unless set.
	SampleFullDetail bool `json:"sample_full_detail,omitempty"`
	// Walkers lists the Widx walker counts to evaluate (Figures 8-10 use
	// 1, 2 and 4).
	Walkers []int
	// QueueDepth is the per-walker depth of the Widx dispatch queue
	// (Table 2 uses the 2-entry paper configuration; 0 selects that
	// default). It is a first-class knob so queue-depth sweeps need no
	// bespoke plumbing.
	QueueDepth int
	// Mem is the memory hierarchy configuration (Table 2 by default). Every
	// design point builds its machine from Mem.Topology() with the three
	// topology knobs below applied.
	Mem mem.Config
	// FillBuffers overrides the shared fill-buffer count of the memory
	// topology — the cross-agent tier of the two-tier miss-handling model
	// (0 tracks Mem.L1MSHRs, which reproduces the historical single shared
	// pool).
	FillBuffers int
	// LLCWays restricts every Widx (accelerator) agent's LLC allocations to
	// the lowest LLCWays ways of each set; host cores keep the full LLC —
	// the way-partitioning QoS discipline. 0 means unpartitioned. Per-agent
	// ":ways=N" overrides in CMP agent specs win over this default.
	LLCWays int
	// Stagger staggers CMP agent arrival times: co-running agent i starts
	// at cycle i*Stagger (solo reference runs always start at cycle 0).
	Stagger uint64
	// Parallelism is the number of worker goroutines the harness fans
	// independent experiments (workloads and design points) out to. Values
	// below 2 run strictly sequentially. Results are bit-identical at every
	// parallelism level: workers never share a memory hierarchy, an address
	// space or RNG state, and results are collected in a stable order.
	Parallelism int
	// StrictMemOrder enables the debug assertion that every design point's
	// memory accesses reach the hierarchy in monotonically non-decreasing
	// cycle order — the execution core's contract. A violation panics with
	// the offending access; it indicates a scheduler bug, never bad input.
	StrictMemOrder bool
	// WarmCache, when non-nil, memoizes warm-up artifacts — built kernel
	// and engine workloads, warmed cache/TLB snapshots — across runs that
	// share this Config (a sweep grid hands one cache to every point), so
	// design points differing only in timing knobs pay for each distinct
	// build and warm-up once. Results are byte-identical to WarmCache ==
	// nil at any Parallelism (warmcache.go documents the contract). The
	// field is excluded from JSON so run manifests are unaffected.
	WarmCache *warmstate.Cache `json:"-"`
	// WarmStore, when non-nil alongside WarmCache, persists warm-state
	// snapshots (fast-forward checkpoints, CMP warm-ups) to disk as a
	// second cache tier: a fresh process restores a previous run's snapshot
	// instead of re-warming. Same determinism contract as WarmCache; the
	// field is excluded from JSON so run manifests are unaffected.
	WarmStore *warmstate.DiskStore `json:"-"`
	// Ctx, when non-nil, cancels in-flight work: RunTasks checks it before
	// dispatching each task, so an aborted run (an HTTP job whose client
	// cancelled, a ^C) stops at the next design-point or grid-point
	// boundary instead of simulating to completion. A cancelled run
	// returns Ctx.Err(); it never produces a partial result. Excluded from
	// JSON so run manifests are unaffected.
	Ctx context.Context `json:"-"`
}

// DefaultConfig returns the configuration used by the benchmark harness: a
// workload scale small enough for interactive runs while keeping the Small /
// Medium / Large classes on different levels of the cache hierarchy.
func DefaultConfig() Config {
	return Config{
		Scale:        1.0 / 64,
		SampleProbes: 20_000,
		SampleWarmup: 64,
		SamplePeriod: 256,
		Walkers:      []int{1, 2, 4},
		QueueDepth:   2,
		Mem:          mem.DefaultConfig(),
		Parallelism:  runtime.NumCPU(),
	}
}

// QuickConfig returns a much smaller configuration used by unit tests. Tests
// run with the strict memory-order assertion enabled so any scheduler
// regression fails loudly.
func QuickConfig() Config {
	return Config{
		Scale:          1.0 / 512,
		SampleProbes:   3_000,
		SampleWarmup:   64,
		SamplePeriod:   256,
		Walkers:        []int{1, 2, 4},
		QueueDepth:     2,
		Mem:            mem.DefaultConfig(),
		Parallelism:    runtime.NumCPU(),
		StrictMemOrder: true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Scale <= 0 {
		return fmt.Errorf("sim: Scale must be positive")
	}
	if c.SampleProbes < 0 {
		return fmt.Errorf("sim: negative SampleProbes")
	}
	if len(c.Walkers) == 0 {
		return fmt.Errorf("sim: no walker counts to evaluate")
	}
	for _, w := range c.Walkers {
		if w <= 0 {
			return fmt.Errorf("sim: walker counts must be positive")
		}
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("sim: negative Parallelism")
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("sim: negative QueueDepth")
	}
	if c.FillBuffers < 0 {
		return fmt.Errorf("sim: negative FillBuffers")
	}
	if c.SampleWindows < 0 {
		return fmt.Errorf("sim: negative SampleWindows")
	}
	if c.SampleWindows > 0 && c.SamplePeriod == 0 {
		return fmt.Errorf("sim: SamplePeriod must be positive when SampleWindows is set")
	}
	// The topology below carries the fill-buffer override but not LLCWays
	// (that is applied per Widx agent in widxSpec/cmpAgentSpec), so the
	// way bound must be checked here to surface as an error rather than a
	// NewAgent panic.
	if c.LLCWays < 0 || c.LLCWays > c.Mem.LLCAssoc {
		return fmt.Errorf("sim: LLCWays must be in [0, %d]", c.Mem.LLCAssoc)
	}
	return c.topology().Validate()
}

// queueDepth returns the effective Widx dispatch-queue depth (0 selects the
// paper's 2-entry queues).
func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 2
	}
	return c.QueueDepth
}

// fillBuffers returns the effective shared fill-buffer count (0 tracks the
// per-agent MSHR count — the single-pool shorthand).
func (c Config) fillBuffers() int {
	if c.FillBuffers > 0 {
		return c.FillBuffers
	}
	return c.Mem.L1MSHRs
}

// topology builds the memory topology every design point's machine uses:
// the flat Mem configuration with the fill-buffer override applied. Way
// partitions are per-agent and land in the agent specs instead.
func (c Config) topology() mem.Topology {
	top := c.Mem.Topology()
	top.Shared.FillBuffers = c.fillBuffers()
	return top
}

// newSharedLevel builds a fresh shared memory level for one design point.
func (c Config) newSharedLevel() *mem.SharedLevel {
	sl := mem.NewSharedLevel(c.topology())
	sl.SetStrictOrder(c.StrictMemOrder)
	return sl
}

// widxSpec is the agent spec Widx accelerators attach with: the topology's
// default private spec plus the configured accelerator way partition.
func (c Config) widxSpec(top mem.Topology, name string) mem.AgentSpec {
	spec := top.Agent(name)
	spec.LLCWays = c.LLCWays
	return spec
}

// sampleCount bounds n by the configured probe sample.
func (c Config) sampleCount(n int) int {
	if c.SampleProbes > 0 && n > c.SampleProbes {
		return c.SampleProbes
	}
	return n
}

// sampling reports whether systematic sampled simulation is on.
func (c Config) sampling() bool { return c.SampleWindows > 0 }

// samplePlan builds the sampling plan for a probe stream of length n: the
// configured systematic plan when sampling is on, the full single-window
// plan otherwise. Window placement is a pure function of (n, knobs), so
// every design point of a run — and every parallelism level — executes the
// same spans.
func (c Config) samplePlan(n int) sampling.Plan {
	if !c.sampling() {
		return sampling.Full(uint64(n))
	}
	return sampling.NewPlan(uint64(n), c.SampleWindows, c.SampleWarmup, c.SamplePeriod)
}

// Breakdown is a per-tuple cycle breakdown in the categories of Figures 8a
// and 9 (computation, memory, TLB, idle).
type Breakdown struct {
	Comp float64
	Mem  float64
	TLB  float64
	Idle float64
}

// Total returns the summed per-tuple cycles.
func (b Breakdown) Total() float64 { return b.Comp + b.Mem + b.TLB + b.Idle }

// scaleBreakdown converts an aggregate walker breakdown into per-tuple cycles
// averaged over the walker count.
func scaleBreakdown(total widx.Breakdown, walkers int, tuples uint64) Breakdown {
	if walkers <= 0 || tuples == 0 {
		return Breakdown{}
	}
	d := float64(walkers) * float64(tuples)
	return Breakdown{
		Comp: float64(total.Comp) / d,
		Mem:  float64(total.Mem) / d,
		TLB:  float64(total.TLB) / d,
		Idle: float64(total.Idle) / d,
	}
}

// indexPhase bundles everything needed to run one indexing phase on all
// design points: the data in its address space, the built index, the probe
// key column and the probe traces.
type indexPhase struct {
	as           *vm.AddressSpace
	index        *hashidx.Table
	probeKeyBase uint64
	probeCount   int
	traces       []hashidx.ProbeTrace
	// warmKey is the phase's warm-cache identity ("" when caching is off):
	// the workload artifact's content-addressed key, which sampled runs
	// chain their fast-forward checkpoint keys on (sampled.go).
	warmKey string
}

// allocResultRegion reserves the result buffer for one Widx design point on
// the phase's address space. The runner performs these allocations for every
// design point before fanning out, in sequential order, so buffer addresses —
// and with them cache and TLB behaviour — do not depend on the parallelism.
func (ph *indexPhase) allocResultRegion(walkers int, mode widx.HashingMode) uint64 {
	return ph.as.AllocAligned(fmt.Sprintf("results.w%d.m%d", walkers, mode), uint64(ph.probeCount)*8+64)
}

// runBaseline executes the phase's probes on a baseline core with a fresh
// hierarchy and returns the result.
func (c Config) runBaseline(ph *indexPhase, coreCfg cores.Config) (cores.Result, error) {
	sl := c.newSharedLevel()
	hier := sl.NewAgent(sl.Topology().Agent("host"))
	core, err := cores.New(coreCfg, hier)
	if err != nil {
		return cores.Result{}, err
	}
	n := c.sampleCount(len(ph.traces))
	return core.RunProbes(ph.traces[:n], 0)
}

// runWidx executes the phase's probes on a Widx configuration with a fresh
// hierarchy and returns the offload result. The address space may be the
// phase's own (sequential runs) or a private clone (parallel runs); the
// result region at resultBase must already be allocated on the phase's
// address space via allocResultRegion.
func (c Config) runWidx(ph *indexPhase, as *vm.AddressSpace, resultBase uint64, walkers int, mode widx.HashingMode) (*widx.OffloadResult, error) {
	sl := c.newSharedLevel()
	hier := sl.NewAgent(c.widxSpec(sl.Topology(), "widx"))
	bundle, err := program.ForTable(ph.index, resultBase)
	if err != nil {
		return nil, err
	}
	acc, err := widx.New(widx.Config{NumWalkers: walkers, QueueDepth: c.queueDepth(), Mode: mode},
		hier, as, bundle.Dispatcher, bundle.Walker, bundle.Producer)
	if err != nil {
		return nil, err
	}
	n := uint64(c.sampleCount(ph.probeCount))
	return acc.Offload(widx.OffloadRequest{KeyBase: ph.probeKeyBase, KeyCount: n})
}
