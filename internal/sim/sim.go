// Package sim is the experiment harness: it wires the workload generators,
// the query engine, the baseline core models and the Widx accelerator model
// together and regenerates every table and figure of the paper's evaluation
// (Figures 2, 8, 9, 10 and 11, plus the Section 6.3 area/energy numbers).
//
// Each experiment follows the paper's methodology: the workload is built
// once, the indexing phase is then executed on every design point — the
// out-of-order baseline, the in-order core, and Widx with one, two and four
// walkers — each with its own freshly warmed memory hierarchy, and the
// measured metric is indexing cycles per tuple. Like the paper's SMARTS-style
// sampling, only a bounded sample of probes is simulated in detail; the
// sample is large enough for stable per-tuple averages.
package sim

import (
	"fmt"

	"widx/internal/cores"
	"widx/internal/hashidx"
	"widx/internal/mem"
	"widx/internal/program"
	"widx/internal/vm"
	"widx/internal/widx"
)

// Config controls workload scaling and simulation effort.
type Config struct {
	// Scale shrinks the paper's workload sizes (1.0 is the paper's setup;
	// the default benchmarks use a much smaller scale so a laptop-class
	// machine can regenerate every figure in minutes).
	Scale float64
	// SampleProbes caps how many probes are simulated in detail per design
	// (0 means all probes). This is the SMARTS-like sampling knob.
	SampleProbes int
	// Walkers lists the Widx walker counts to evaluate (Figures 8-10 use
	// 1, 2 and 4).
	Walkers []int
	// Mem is the memory hierarchy configuration (Table 2 by default).
	Mem mem.Config
}

// DefaultConfig returns the configuration used by the benchmark harness: a
// workload scale small enough for interactive runs while keeping the Small /
// Medium / Large classes on different levels of the cache hierarchy.
func DefaultConfig() Config {
	return Config{
		Scale:        1.0 / 64,
		SampleProbes: 20_000,
		Walkers:      []int{1, 2, 4},
		Mem:          mem.DefaultConfig(),
	}
}

// QuickConfig returns a much smaller configuration used by unit tests.
func QuickConfig() Config {
	return Config{
		Scale:        1.0 / 512,
		SampleProbes: 3_000,
		Walkers:      []int{1, 2, 4},
		Mem:          mem.DefaultConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Scale <= 0 {
		return fmt.Errorf("sim: Scale must be positive")
	}
	if c.SampleProbes < 0 {
		return fmt.Errorf("sim: negative SampleProbes")
	}
	if len(c.Walkers) == 0 {
		return fmt.Errorf("sim: no walker counts to evaluate")
	}
	for _, w := range c.Walkers {
		if w <= 0 {
			return fmt.Errorf("sim: walker counts must be positive")
		}
	}
	return c.Mem.Validate()
}

// sampleCount bounds n by the configured probe sample.
func (c Config) sampleCount(n int) int {
	if c.SampleProbes > 0 && n > c.SampleProbes {
		return c.SampleProbes
	}
	return n
}

// Breakdown is a per-tuple cycle breakdown in the categories of Figures 8a
// and 9 (computation, memory, TLB, idle).
type Breakdown struct {
	Comp float64
	Mem  float64
	TLB  float64
	Idle float64
}

// Total returns the summed per-tuple cycles.
func (b Breakdown) Total() float64 { return b.Comp + b.Mem + b.TLB + b.Idle }

// scaleBreakdown converts an aggregate walker breakdown into per-tuple cycles
// averaged over the walker count.
func scaleBreakdown(total widx.Breakdown, walkers int, tuples uint64) Breakdown {
	if walkers <= 0 || tuples == 0 {
		return Breakdown{}
	}
	d := float64(walkers) * float64(tuples)
	return Breakdown{
		Comp: float64(total.Comp) / d,
		Mem:  float64(total.Mem) / d,
		TLB:  float64(total.TLB) / d,
		Idle: float64(total.Idle) / d,
	}
}

// indexPhase bundles everything needed to run one indexing phase on all
// design points: the data in its address space, the built index, the probe
// key column and the probe traces.
type indexPhase struct {
	as           *vm.AddressSpace
	index        *hashidx.Table
	probeKeyBase uint64
	probeCount   int
	traces       []hashidx.ProbeTrace
}

// runBaseline executes the phase's probes on a baseline core with a fresh
// hierarchy and returns the result.
func (c Config) runBaseline(ph *indexPhase, coreCfg cores.Config) (cores.Result, error) {
	hier := mem.NewHierarchy(c.Mem)
	core, err := cores.New(coreCfg, hier)
	if err != nil {
		return cores.Result{}, err
	}
	n := c.sampleCount(len(ph.traces))
	return core.RunProbes(ph.traces[:n], 0)
}

// runWidx executes the phase's probes on a Widx configuration with a fresh
// hierarchy and returns the offload result.
func (c Config) runWidx(ph *indexPhase, walkers int, mode widx.HashingMode) (*widx.OffloadResult, error) {
	hier := mem.NewHierarchy(c.Mem)
	resultBase := ph.as.AllocAligned(fmt.Sprintf("results.w%d.m%d", walkers, mode), uint64(ph.probeCount)*8+64)
	bundle, err := program.ForTable(ph.index, resultBase)
	if err != nil {
		return nil, err
	}
	acc, err := widx.New(widx.Config{NumWalkers: walkers, QueueDepth: 2, Mode: mode},
		hier, ph.as, bundle.Dispatcher, bundle.Walker, bundle.Producer)
	if err != nil {
		return nil, err
	}
	n := uint64(c.sampleCount(ph.probeCount))
	return acc.Offload(widx.OffloadRequest{KeyBase: ph.probeKeyBase, KeyCount: n})
}
