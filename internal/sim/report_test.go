package sim

import (
	"strings"
	"testing"

	"widx/internal/join"
	"widx/internal/model"
	"widx/internal/workloads"
)

func TestFormatKernelAndModel(t *testing.T) {
	cfg := QuickConfig()
	cfg.Scale = 1.0 / 256
	cfg.SampleProbes = 1000
	exp, err := cfg.RunKernel([]join.SizeClass{join.Small, join.Medium})
	if err != nil {
		t.Fatal(err)
	}
	out := exp.Text()
	for _, want := range []string{"Figure 8a", "Figure 8b", "Small", "Medium", "geomean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("kernel report missing %q:\n%s", want, out)
		}
	}

	modelOut := ModelFigures{Params: model.Default()}.Text()
	for _, want := range []string{"Figure 4a", "Figure 4b", "Figure 4c", "Figure 5", "recommended walkers"} {
		if !strings.Contains(modelOut, want) {
			t.Fatalf("model report missing %q", want)
		}
	}
}

func TestFormatQueriesEnergyBreakdownsAblation(t *testing.T) {
	cfg := QuickConfig()
	cfg.Scale = 1.0 / 256
	cfg.SampleProbes = 1500

	q17, err := workloads.ByName(workloads.TPCH, "q17")
	if err != nil {
		t.Fatal(err)
	}
	q37, err := workloads.ByName(workloads.TPCDS, "q37")
	if err != nil {
		t.Fatal(err)
	}
	suite, err := cfg.runQuerySet([]workloads.QuerySpec{q17, q37})
	if err != nil {
		t.Fatal(err)
	}
	qOut := suite.QueriesText()
	for _, want := range []string{"Figure 9", "Figure 10", "q17", "q37", "geomean indexing speedup"} {
		if !strings.Contains(qOut, want) {
			t.Fatalf("query report missing %q", want)
		}
	}
	eOut := suite.EnergyText()
	for _, want := range []string{"Figure 11", "energy-delay", "Section 6.3", "mm2"} {
		if !strings.Contains(eOut, want) {
			t.Fatalf("energy report missing %q", want)
		}
	}

	rows, err := cfg.RunBreakdowns(true)
	if err != nil {
		t.Fatal(err)
	}
	bOut := rows.Text()
	for _, want := range []string{"Figure 2a", "Figure 2b", "q20", "hash"} {
		if !strings.Contains(bOut, want) {
			t.Fatalf("breakdown report missing %q", want)
		}
	}

	ab, err := cfg.RunHashingAblation(q17, 2)
	if err != nil {
		t.Fatal(err)
	}
	aOut := ab.Text()
	for _, want := range []string{"coupled", "shared dispatcher", "decoupling gain"} {
		if !strings.Contains(aOut, want) {
			t.Fatalf("ablation report missing %q", want)
		}
	}

	// The suite aggregation must also report sensible numbers.
	if suite.GeoMeanIndexSpeedup[4] <= 1 {
		t.Fatalf("geomean 4-walker speedup = %v", suite.GeoMeanIndexSpeedup[4])
	}
	if suite.Energy.Widx.Energy >= 1 {
		t.Fatal("Widx should reduce energy vs the OoO baseline")
	}
	if _, err := cfg.runQuerySet(nil); err == nil {
		t.Fatal("empty query set accepted")
	}
}
