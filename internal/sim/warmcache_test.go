package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"widx/internal/join"
	"widx/internal/warmstate"
	"widx/internal/workloads"
)

// warmTestConfig is a deliberately tiny configuration: the byte-identity
// tests run every experiment several times (cold, cached, cached-hit, at
// two parallelism levels).
func warmTestConfig() Config {
	c := QuickConfig()
	c.Scale = 1.0 / 1024
	c.SampleProbes = 300
	c.Walkers = []int{2}
	return c
}

// resultJSON fingerprints an experiment result. JSON (not %+v) because
// results embed pointers (KernelPoint.Raw) whose addresses would differ
// run to run; the JSON encoding is the one reports and manifests compare.
func resultJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestWarmCacheByteIdentity is the tentpole's correctness contract: with
// the warm cache enabled, every experiment's result is byte-identical to
// a cache-off run — on a cold cache, on a hit, and at parallelism 1 and 8.
func TestWarmCacheByteIdentity(t *testing.T) {
	specs, err := ParseAgents("widx:2w+ooo")
	if err != nil {
		t.Fatal(err)
	}
	q := workloads.SimulatedQueries()[0]

	for _, p := range []int{1, 8} {
		cold := warmTestConfig()
		cold.Parallelism = p
		warm := cold
		warm.WarmCache = warmstate.New()

		check := func(name string, run func(c Config) (any, error)) {
			t.Helper()
			want, err := run(cold)
			if err != nil {
				t.Fatalf("p=%d %s cold: %v", p, name, err)
			}
			got, err := run(warm)
			if err != nil {
				t.Fatalf("p=%d %s cached: %v", p, name, err)
			}
			if w, g := resultJSON(t, want), resultJSON(t, got); g != w {
				t.Errorf("p=%d %s: cached result diverges from cache-off\ncold:   %s\ncached: %s", p, name, w, g)
			}
			hit, err := run(warm)
			if err != nil {
				t.Fatalf("p=%d %s cached hit: %v", p, name, err)
			}
			if w, g := resultJSON(t, want), resultJSON(t, hit); g != w {
				t.Errorf("p=%d %s: cache-hit result diverges from cache-off", p, name)
			}
		}

		check("kernel", func(c Config) (any, error) { return c.RunKernel([]join.SizeClass{join.Small}) })
		check("cmp", func(c Config) (any, error) { return c.RunCMP(join.Small, specs) })
		check("query", func(c Config) (any, error) { return c.RunQuery(q) })
		check("walkerutil", func(c Config) (any, error) { return c.RunWalkerUtilization(join.Small, 2) })

		if hits, misses := warm.WarmCache.Stats(); hits == 0 || misses == 0 {
			t.Errorf("p=%d: cache saw %d hits / %d misses; the repeated runs should hit", p, hits, misses)
		}
	}
}

// TestWarmCacheVerifyHonestKeys runs the experiments twice over one cache
// with verify mode on: every hit re-runs the build and cross-checks the
// artifact content hash, so this asserts both that the fingerprints
// capture every warm-affecting input and that builds and warm-ups are
// deterministic. This is the runtime warm-classification guard.
func TestWarmCacheVerifyHonestKeys(t *testing.T) {
	c := warmTestConfig()
	c.WarmCache = warmstate.New()
	c.WarmCache.SetVerify(true)
	specs, err := ParseAgents("widx:2w+inorder")
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		if _, err := c.RunKernel([]join.SizeClass{join.Small}); err != nil {
			t.Fatalf("round %d kernel: %v", round, err)
		}
		if _, err := c.RunCMP(join.Small, specs); err != nil {
			t.Fatalf("round %d cmp: %v", round, err)
		}
		if _, err := c.RunQuery(workloads.SimulatedQueries()[0]); err != nil {
			t.Fatalf("round %d query: %v", round, err)
		}
	}
	if hits, _ := c.WarmCache.Stats(); hits == 0 {
		t.Fatal("verify rounds produced no hits; nothing was verified")
	}
}

// TestWarmCacheVerifyCatchesMisclassification is the mutation drill for
// the classification guard: the key hook strips the kernel fingerprint's
// probe-stream length — simulating a warm-affecting parameter that was
// misclassified as warm-invariant — so two configs that must not share a
// build collide on one key. Verify mode has to turn the poisoned hit
// into an error rather than silently reusing the wrong workload.
func TestWarmCacheVerifyCatchesMisclassification(t *testing.T) {
	warmKeyHook = func(k string) string {
		parts := strings.Split(k, "|")
		kept := parts[:0]
		for _, p := range parts {
			if !strings.HasPrefix(p, "outer=") {
				kept = append(kept, p)
			}
		}
		return strings.Join(kept, "|")
	}
	defer func() { warmKeyHook = nil }()

	cache := warmstate.New()
	cache.SetVerify(true)
	a := warmTestConfig()
	// A scale at which the probe-sample cap binds (4K tuples / 64 = 64
	// build tuples, 4x64 = 256 probes > the samples below), so the two
	// configs really do produce different streams.
	a.Scale = 1.0 / 64
	a.WarmCache = cache
	if _, err := a.RunKernel([]join.SizeClass{join.Small}); err != nil {
		t.Fatalf("first config: %v", err)
	}
	b := a
	b.SampleProbes = 150 // different probe stream; same key once "outer" is stripped
	_, err := b.RunKernel([]join.SizeClass{join.Small})
	if err == nil || !strings.Contains(err.Error(), "warm-affecting") {
		t.Fatalf("verify mode did not catch the misclassified key: %v", err)
	}
}
