package sim

import (
	"sync"
	"sync/atomic"

	"widx/internal/cores"
	"widx/internal/vm"
	"widx/internal/widx"
)

// This file is the parallel experiment runner. Design points (and whole
// workloads) are independent experiments — each gets a freshly warmed memory
// hierarchy — so they can run on separate goroutines as long as nothing
// mutable is shared. The two rules that keep parallel results bit-identical
// to a sequential run are:
//
//  1. Result slots are indexed, never appended: every task writes its result
//     into a pre-sized slice at its own index, so collection order is stable
//     regardless of completion order.
//  2. Address-space allocations happen before the fan-out, in the exact order
//     the sequential runner would perform them, and every Widx task then runs
//     against its own vm.AddressSpace clone. Allocation order fixes result-
//     buffer addresses, addresses fix cache-set and TLB behaviour, and the
//     clone keeps the producer's result stores private to the task.

// parallelism returns the effective worker count (at least 1).
func (c Config) parallelism() int {
	if c.Parallelism < 1 {
		return 1
	}
	return c.Parallelism
}

// RunTasks executes task(0..n-1), fanning out to at most c.parallelism()
// workers. With a parallelism of 1 the tasks run inline in index order,
// exactly like the historical sequential loops. Once any task fails, tasks
// that have not started yet are skipped (experiments are minutes long; there
// is no point finishing a doomed run), and the lowest-indexed error that was
// recorded is returned. When c.Ctx is cancelled, tasks that have not started
// are likewise skipped and Ctx.Err() is returned (task errors win if both
// happened): the harness nests RunTasks fan-outs (sweep points over design
// points over workloads), so one cancelled context aborts every level at its
// next task boundary. It is exported because the exp sweep layer fans
// parameter grids out through the same pool, with the same determinism
// contract: tasks write results into their own index, never append.
func (c Config) RunTasks(n int, task func(i int) error) error {
	p := c.parallelism()
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			if err := c.cancelled(); err != nil {
				return err
			}
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	var failed atomic.Bool
	idx := make(chan int)
	errs := make([]error, n)
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() || c.cancelled() != nil {
					continue
				}
				if err := task(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return c.cancelled()
}

// cancelled returns the configured context's error, if any.
func (c Config) cancelled() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// InnerConfig returns a copy of c whose Parallelism is one worker's share of
// the budget after fanning out outerTasks, so that nested fan-outs (queries
// within a suite, design points within a query, runs within a sweep) do not
// multiply the total worker count far beyond c.Parallelism. The share rounds
// up — leaving cores idle costs more than a few extra CPU-bound goroutines
// for the scheduler to multiplex.
func (c Config) InnerConfig(outerTasks int) Config {
	p := c.parallelism()
	if outerTasks > p {
		outerTasks = p
	}
	inner := c
	if outerTasks > 0 {
		inner.Parallelism = (p + outerTasks - 1) / outerTasks
	}
	return inner
}

// widxPoint identifies one Widx design point of a phase.
type widxPoint struct {
	walkers int
	mode    widx.HashingMode
}

// runPhase executes one indexing phase on every requested design point: the
// given baseline cores plus Widx at every point. Result-region allocations
// for all Widx points are performed up front, in point order, on the phase's
// own address space (the order a sequential runner would produce); each Widx
// task then runs on a private clone when fanning out. Returned slices are
// parallel to the input slices. With sampling enabled every design point
// executes the same sampling.Plan through the sampled runners and the
// per-window observations come back in phaseSampling (nil when sampling is
// off); plan placement is a pure function of the stream, so parallel
// sampled runs stay bit-identical to sequential ones.
func (c Config) runPhase(ph *indexPhase, baselines []cores.Config, points []widxPoint) ([]cores.Result, []*widx.OffloadResult, *phaseSampling, error) {
	resultBases := make([]uint64, len(points))
	for i, p := range points {
		resultBases[i] = ph.allocResultRegion(p.walkers, p.mode)
	}
	// Private memory images for parallel Widx tasks: the producer's result
	// stores must not touch the address space other tasks are reading. The
	// clones are copy-on-write and must all be taken before the fan-out
	// (vm.AddressSpace.Clone mutates the parent's sharing bookkeeping).
	spaces := make([]*vm.AddressSpace, len(points))
	for i := range spaces {
		if c.parallelism() <= 1 {
			spaces[i] = ph.as
		} else {
			spaces[i] = ph.as.Clone()
		}
	}
	baseRes := make([]cores.Result, len(baselines))
	widxRes := make([]*widx.OffloadResult, len(points))

	if !c.sampling() {
		err := c.RunTasks(len(baselines)+len(points), func(i int) error {
			if i < len(baselines) {
				r, err := c.runBaseline(ph, baselines[i])
				if err != nil {
					return err
				}
				baseRes[i] = r
				return nil
			}
			j := i - len(baselines)
			r, err := c.runWidx(ph, spaces[j], resultBases[j], points[j].walkers, points[j].mode)
			if err != nil {
				return err
			}
			widxRes[j] = r
			return nil
		})
		if err != nil {
			return nil, nil, nil, err
		}
		return baseRes, widxRes, nil, nil
	}

	// Sampled execution: truncate the trace stream to the sample cap (the
	// plan covers exactly the probes the full runners would simulate), place
	// the plan, and compute the software-reference match stream once — it
	// feeds every Widx point's fast-forward output and fingerprint check.
	n := c.sampleCount(ph.probeCount)
	ph.traces = ph.traces[:n]
	plan := c.samplePlan(n)
	refMatches, bounds := refStream(ph.index, ph.traces)
	ps := &phaseSampling{
		plan:     plan,
		baseWins: make([][]windowSample, len(baselines)),
		widxWins: make([][]windowSample, len(points)),
	}
	err := c.RunTasks(len(baselines)+len(points), func(i int) error {
		if i < len(baselines) {
			r, wins, err := c.runBaselineSampled(ph, baselines[i], plan)
			if err != nil {
				return err
			}
			baseRes[i] = r
			ps.baseWins[i] = wins
			return nil
		}
		j := i - len(baselines)
		r, wins, err := c.runWidxSampled(ph, spaces[j], resultBases[j], points[j].walkers, points[j].mode, plan, refMatches, bounds)
		if err != nil {
			return err
		}
		widxRes[j] = r
		ps.widxWins[j] = wins
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	ps.verified = len(points) > 0
	return baseRes, widxRes, ps, nil
}

// walkerPoints returns the configured walker sweep as phase design points.
func (c Config) walkerPoints(mode widx.HashingMode) []widxPoint {
	pts := make([]widxPoint, len(c.Walkers))
	for i, w := range c.Walkers {
		pts[i] = widxPoint{walkers: w, mode: mode}
	}
	return pts
}
