package sim

import (
	"testing"

	"widx/internal/join"
	"widx/internal/widx"
	"widx/internal/workloads"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuickConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Scale: 0, Walkers: []int{1}, Mem: DefaultConfig().Mem},
		{Scale: 1, SampleProbes: -1, Walkers: []int{1}, Mem: DefaultConfig().Mem},
		{Scale: 1, Walkers: nil, Mem: DefaultConfig().Mem},
		{Scale: 1, Walkers: []int{0}, Mem: DefaultConfig().Mem},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("invalid config accepted: %+v", c)
		}
	}
	c := QuickConfig()
	if c.sampleCount(1_000_000) != c.SampleProbes {
		t.Fatal("sampleCount should cap at SampleProbes")
	}
	if c.sampleCount(10) != 10 {
		t.Fatal("sampleCount should not inflate small counts")
	}
}

func TestScaleBreakdown(t *testing.T) {
	b := scaleBreakdown(widx.Breakdown{Comp: 100, Mem: 200, TLB: 50, Idle: 50}, 2, 10)
	if b.Comp != 5 || b.Mem != 10 || b.TLB != 2.5 || b.Idle != 2.5 {
		t.Fatalf("scaleBreakdown wrong: %+v", b)
	}
	if b.Total() != 20 {
		t.Fatalf("Total = %v", b.Total())
	}
	if scaleBreakdown(widx.Breakdown{Comp: 1}, 0, 10).Total() != 0 {
		t.Fatal("zero walkers should produce a zero breakdown")
	}
}

// TestKernelExperiment reproduces the qualitative content of Figure 8 at a
// reduced scale: memory time dominates and grows with the index size, more
// walkers reduce cycles per tuple roughly linearly, the Small index shows
// dispatcher-limited idle time at four walkers, and the Large index gets the
// biggest speedup over the OoO baseline.
func TestKernelExperiment(t *testing.T) {
	cfg := QuickConfig()
	cfg.Scale = 1.0 / 128
	cfg.SampleProbes = 4000
	exp, err := cfg.RunKernel([]join.SizeClass{join.Small, join.Medium, join.Large})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Points) != 9 {
		t.Fatalf("expected 9 points (3 sizes x 3 walker counts), got %d", len(exp.Points))
	}
	if exp.NormalizationBase <= 0 {
		t.Fatal("normalization base missing")
	}

	// Walker scaling within each size class.
	for _, size := range []join.SizeClass{join.Small, join.Medium, join.Large} {
		p1, ok1 := exp.Point(size, 1)
		p4, ok4 := exp.Point(size, 4)
		if !ok1 || !ok4 {
			t.Fatalf("%v: missing points", size)
		}
		if p4.CyclesPerTuple >= p1.CyclesPerTuple {
			t.Fatalf("%v: 4 walkers (%v cpt) should beat 1 walker (%v cpt)",
				size, p4.CyclesPerTuple, p1.CyclesPerTuple)
		}
		if p4.Speedup <= p1.Speedup {
			t.Fatalf("%v: speedup should grow with walkers", size)
		}
	}

	// Memory cycles grow with the index size (Figure 8a's main trend),
	// comparing the one-walker bars.
	small1, _ := exp.Point(join.Small, 1)
	large1, _ := exp.Point(join.Large, 1)
	if large1.Breakdown.Mem <= small1.Breakdown.Mem {
		t.Fatalf("Large index should spend more memory cycles than Small: %v vs %v",
			large1.Breakdown.Mem, small1.Breakdown.Mem)
	}

	// The Small index with 4 walkers shows dispatcher-limited idle time.
	small4, _ := exp.Point(join.Small, 4)
	if small4.Breakdown.Idle <= 0 {
		t.Fatal("Small/4-walker point should show idle cycles (dispatcher-limited)")
	}

	// Figure 8b: the Large index gains the most from 4 walkers, and the
	// geometric-mean 1-walker speedup is modest.
	large4, _ := exp.Point(join.Large, 4)
	if large4.Speedup < 1.5 {
		t.Fatalf("Large/4-walker speedup = %v, expected well above 1.5x", large4.Speedup)
	}
	if large4.Speedup <= small4.Speedup {
		t.Fatalf("Large should benefit more than Small: %v vs %v", large4.Speedup, small4.Speedup)
	}
	if exp.GeoMeanSpeedup1W >= exp.GeoMeanSpeedup4W {
		t.Fatal("4 walkers must beat 1 walker on geometric mean")
	}
	if exp.GeoMeanSpeedup1W < 0.6 || exp.GeoMeanSpeedup1W > 2.2 {
		t.Fatalf("1-walker speedup = %v, the paper reports a marginal (4%%) gain", exp.GeoMeanSpeedup1W)
	}

	if _, ok := exp.Point(join.Small, 99); ok {
		t.Fatal("nonexistent point found")
	}
	if _, err := cfg.RunKernel(nil); err == nil {
		t.Fatal("empty size list accepted")
	}
}

// TestQueryExperiment runs one memory-resident and one L1-resident query and
// checks the Figure 9/10 trends: the memory-resident query speeds up more,
// the L1-resident query shows idle (dispatcher-limited) walkers, and the
// in-order core is slower than the OoO baseline.
func TestQueryExperiment(t *testing.T) {
	cfg := QuickConfig()
	cfg.Scale = 1.0 / 64
	cfg.SampleProbes = 3000

	q20, err := workloads.ByName(workloads.TPCH, "q20")
	if err != nil {
		t.Fatal(err)
	}
	q37, err := workloads.ByName(workloads.TPCDS, "q37")
	if err != nil {
		t.Fatal(err)
	}

	r20, err := cfg.RunQuery(q20)
	if err != nil {
		t.Fatal(err)
	}
	r37, err := cfg.RunQuery(q37)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range []*QueryResult{r20, r37} {
		if r.OoOCyclesPerTuple <= 0 || r.InOrderCyclesPerTuple <= r.OoOCyclesPerTuple {
			t.Fatalf("%s: baseline ordering wrong (OoO %v, in-order %v)",
				r.Query.Name, r.OoOCyclesPerTuple, r.InOrderCyclesPerTuple)
		}
		if len(r.WidxCyclesPerTuple) != 3 {
			t.Fatalf("%s: missing walker counts", r.Query.Name)
		}
		if r.IndexSpeedup[4] <= r.IndexSpeedup[1] {
			t.Fatalf("%s: speedup should grow with walkers", r.Query.Name)
		}
		if s := r.MeasuredBreakdown.Sum(); s < 0.99 || s > 1.01 {
			t.Fatalf("%s: measured breakdown sums to %v", r.Query.Name, s)
		}
		if r.QuerySpeedup4W < 1 {
			t.Fatalf("%s: query-level speedup below 1: %v", r.Query.Name, r.QuerySpeedup4W)
		}
	}

	// The memory-resident TPC-H q20 must benefit far more than the
	// L1-resident TPC-DS q37 (the paper's 5.5x vs 1.5x extremes).
	if r20.IndexSpeedup[4] <= r37.IndexSpeedup[4] {
		t.Fatalf("q20 (%.2fx) should beat q37 (%.2fx)", r20.IndexSpeedup[4], r37.IndexSpeedup[4])
	}
	// The L1-resident query shows dispatcher-limited idle walkers at 4
	// walkers; q37's whole-query speedup is small (paper: ~10%).
	if r37.WidxBreakdown[4].Idle <= 0 {
		t.Fatal("q37 should show idle walker cycles")
	}
	if r37.QuerySpeedup4W > 1.5 {
		t.Fatalf("q37 whole-query speedup = %v, should be modest", r37.QuerySpeedup4W)
	}
	// q20's cycles per tuple must exceed q37's on every design (bigger index).
	if r20.OoOCyclesPerTuple <= r37.OoOCyclesPerTuple {
		t.Fatal("memory-resident query should cost more per tuple than L1-resident")
	}
}

func TestBreakdownRows(t *testing.T) {
	cfg := QuickConfig()
	cfg.Scale = 1.0 / 256
	rows, err := cfg.RunBreakdowns(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("simulated-only breakdown rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		if s := r.Measured.Sum(); s < 0.99 || s > 1.01 {
			t.Fatalf("%s %s: measured shares sum to %v", r.Query.Suite, r.Query.Name, s)
		}
		if r.Paper.Sum() < 0.99 {
			t.Fatalf("%s %s: paper shares missing", r.Query.Suite, r.Query.Name)
		}
		if r.MeasuredHashShare <= 0 || r.MeasuredHashShare >= 1 {
			t.Fatalf("%s %s: hash share out of range", r.Query.Suite, r.Query.Name)
		}
		if r.Measured.Index <= 0.05 {
			t.Fatalf("%s %s: index share implausibly low (%v)", r.Query.Suite, r.Query.Name, r.Measured.Index)
		}
	}
}

func TestHashingAblation(t *testing.T) {
	cfg := QuickConfig()
	cfg.Scale = 1.0 / 64
	cfg.SampleProbes = 2500
	q20, err := workloads.ByName(workloads.TPCH, "q20")
	if err != nil {
		t.Fatal(err)
	}
	ab, err := cfg.RunHashingAblation(q20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ab.CoupledCPT <= 0 || ab.PerWalkerCPT <= 0 || ab.SharedCPT <= 0 {
		t.Fatalf("ablation produced zero costs: %+v", ab)
	}
	// Decoupling the (robust) hash from the walk must help (Section 3.1).
	if ab.DecouplingGain <= 1.0 {
		t.Fatalf("decoupled hashing should beat coupled: %+v", ab)
	}
	// The shared dispatcher keeps most of the per-walker-hash benefit at two
	// walkers (that is the point of Figure 3d).
	if ab.SharedCPT > ab.CoupledCPT {
		t.Fatalf("shared dispatcher should not be slower than coupled hashing: %+v", ab)
	}
}
