// The Figure 5-style walker-utilization sweep, driven by the simulator
// rather than the analytical model: the paper's Figure 5 predicts walker
// utilization from an assumed memory-level-parallelism budget, while this
// sweep measures it — per walker count, the offload's walker busy share and
// the exact time-weighted MSHR-occupancy histogram the hierarchy records —
// so the saturation knee appears where the simulated MSHR pool actually
// fills (ROADMAP "walker sweeps past 8" item).
package sim

import (
	"fmt"

	"widx/internal/join"
	"widx/internal/sampling"
)

// WalkerUtilizationPoint is one walker count of the sweep.
type WalkerUtilizationPoint struct {
	Walkers int
	// CyclesPerTuple is the offload cost at this walker count.
	CyclesPerTuple float64
	// Utilization is the measured walker busy share (1 - idle share), the
	// Figure 5 y-axis.
	Utilization float64
	// MeanMSHROccupancy is the time-weighted average number of live MSHRs
	// from the simulator's exact occupancy histogram — the measured MLP.
	MeanMSHROccupancy float64
	// MSHRSaturationShare is the fraction of accounted cycles the MSHR pool
	// was completely full; MSHRStallCycles the allocation stalls it caused.
	MSHRSaturationShare float64
	MSHRStallCycles     uint64
}

// WalkerUtilizationSweep is the simulator-driven Figure 5 result: one point
// per walker count, plus the MSHR budget the sweep ran against.
type WalkerUtilizationSweep struct {
	Size   join.SizeClass
	MSHRs  int
	Points []WalkerUtilizationPoint
	// Sampling carries the per-window confidence estimates when the sweep
	// was sampled; nil otherwise.
	Sampling *sampling.Report `json:"sampling,omitempty"`
}

// RunWalkerUtilization sweeps Widx walker counts 1..maxWalkers over one
// kernel workload, each on a fresh hierarchy, and reports the measured
// utilization and MSHR-occupancy statistics per point. Design points fan
// out across the configured workers like every other experiment.
func (c Config) RunWalkerUtilization(size join.SizeClass, maxWalkers int) (*WalkerUtilizationSweep, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if maxWalkers <= 0 {
		return nil, fmt.Errorf("sim: non-positive walker sweep bound")
	}
	// The walker sweep replays the same kernel workload the Figure 8
	// experiment builds, so with the warm cache enabled the two share one
	// build. Probe traces are only needed for sampled runs (no baseline
	// cores here), where fast-forward spans warm from them.
	ph, err := c.kernelPhase(size, c.sampling())
	if err != nil {
		return nil, err
	}
	points := make([]widxPoint, maxWalkers)
	for i := range points {
		points[i] = widxPoint{walkers: i + 1}
	}
	_, widxRes, psamp, err := c.runPhase(ph, nil, points)
	if err != nil {
		return nil, err
	}
	out := &WalkerUtilizationSweep{
		Size:   size,
		MSHRs:  c.Mem.L1MSHRs,
		Points: make([]WalkerUtilizationPoint, maxWalkers),
	}
	if psamp != nil {
		rep := psamp.report()
		for i := range points {
			addSampledPoint(rep, fmt.Sprintf("%dw", i+1), nil, psamp.widxWins[i])
		}
		out.Sampling = rep
	}
	for i, res := range widxRes {
		out.Points[i] = WalkerUtilizationPoint{
			Walkers:             i + 1,
			CyclesPerTuple:      res.CyclesPerTuple(),
			Utilization:         res.WalkerUtilization(),
			MeanMSHROccupancy:   res.MemStats.MeanMSHROccupancy(),
			MSHRSaturationShare: res.MemStats.MSHRSaturationShare(c.Mem.L1MSHRs),
			MSHRStallCycles:     res.MemStats.MSHRStallCycles,
		}
	}
	return out, nil
}

// SamplingReport implements SamplingReporter.
func (s *WalkerUtilizationSweep) SamplingReport() *sampling.Report { return s.Sampling }

// SampledMetricValues returns the sweep's full-run values under the sampled
// estimator's metric names, for -sampling-verify interval checks.
func (s *WalkerUtilizationSweep) SampledMetricValues() map[string]float64 {
	m := make(map[string]float64)
	for _, p := range s.Points {
		prefix := fmt.Sprintf("%dw", p.Walkers)
		m[sampledMetricName(prefix, metricCPT)] = p.CyclesPerTuple
		m[sampledMetricName(prefix, metricMSHR)] = p.MeanMSHROccupancy
	}
	return m
}
