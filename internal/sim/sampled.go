// Sampled execution: the SMARTS-style detailed-window runners. When
// Config.SampleWindows is set, every design point executes its probe
// stream through a sampling.Plan instead of end to end: fast-forward spans
// perform only functional state updates — the software reference's matches
// join the output stream and the addresses its traversal touches warm the
// cache tags and TLB pages (mem.WarmBlock), with no cycle accounting —
// while detailed spans run on the live machine exactly as a full run
// would, resuming at the cycle the previous span ended. Measured spans
// contribute one observation per window to the confidence estimator
// (internal/sampling/stats); warmup spans re-establish the
// microarchitectural state functional warming cannot reproduce (MSHR
// occupancy, queue fill, LRU recency) and are excluded from measurement.
//
// Correctness contract: the functional output is bit-identical to the
// unsampled run. Every design point with a match stream concatenates the
// reference matches of its fast-forward spans with the simulated matches
// of its detailed spans, in probe order, and the fingerprint of that
// stream must equal the full software reference's — a mismatch is a hard
// run error, the same contract RunZoo enforces. Window placement is a pure
// function of (stream length, knobs), so sampled results are
// byte-identical at every parallelism level.
package sim

import (
	"fmt"

	"widx/internal/cores"
	"widx/internal/hashidx"
	"widx/internal/mem"
	"widx/internal/program"
	"widx/internal/sampling"
	"widx/internal/structures"
	"widx/internal/vm"
	"widx/internal/warmstate"
	"widx/internal/widx"
)

// windowSample is one measured window's observation on one design point.
type windowSample struct {
	cycles uint64
	tuples uint64
	// mshr is the time-weighted mean MSHR occupancy over the window.
	mshr float64
}

// cpt is the window's cycles-per-tuple observation.
func (w windowSample) cpt() float64 {
	if w.tuples == 0 {
		return 0
	}
	return float64(w.cycles) / float64(w.tuples)
}

// cptSeries extracts the cycles-per-tuple observations.
func cptSeries(wins []windowSample) []float64 {
	out := make([]float64, len(wins))
	for i, w := range wins {
		out[i] = w.cpt()
	}
	return out
}

// mshrSeries extracts the mean-MSHR-occupancy observations.
func mshrSeries(wins []windowSample) []float64 {
	out := make([]float64, len(wins))
	for i, w := range wins {
		out[i] = w.mshr
	}
	return out
}

// speedupSeries pairs a baseline's windows with a design point's: window j
// observes base_cpt(j) / point_cpt(j). Both runs execute the same plan, so
// windows align by construction.
func speedupSeries(base, point []windowSample) []float64 {
	n := len(base)
	if len(point) < n {
		n = len(point)
	}
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		if p := point[j].cpt(); p > 0 {
			out[j] = base[j].cpt() / p
		}
	}
	return out
}

// ffWarm performs the functional side of a fast-forward span: every address
// the software reference traversal touches — probe key loads, bucket/root
// headers, node loads, key fetches — warms the agent's L1, the shared LLC
// and the TLB in access order. No Access is issued, so no cycles elapse and
// no counters move (mem/state.go documents the warming contract).
func ffWarm(hier *mem.Hierarchy, traces []hashidx.ProbeTrace) {
	for i := range traces {
		t := &traces[i]
		hier.WarmBlock(t.KeyAddr)
		hier.WarmBlock(t.BucketAddr)
		for _, s := range t.Steps {
			hier.WarmBlock(s.NodeAddr)
			if s.KeyFetchAddr != 0 {
				hier.WarmBlock(s.KeyFetchAddr)
			}
		}
	}
}

// ffSpan executes one fast-forward span's warming. The plan's opening span
// starts at probe 0, so its warm state is a pure function of the workload
// and the machine's warm-relevant geometry — that one span is checkpointed
// through the warm cache (and the disk store, surviving the process); later
// fast-forward spans depend on the detailed execution before them and warm
// inline.
func (c Config) ffSpan(hier *mem.Hierarchy, phaseKey string, traces []hashidx.ProbeTrace, sp sampling.Span) error {
	if c.WarmCache == nil || phaseKey == "" || sp.Start != 0 {
		ffWarm(hier, traces[sp.Start:sp.End])
		return nil
	}
	spec := hier.Spec()
	key := warmKey(warmstate.NewFingerprint("ffwarm").
		Field("phase", phaseKey).
		Field("end", sp.End).
		Field("shared", c.warmSharedField()).
		Field("spec", warmSpecField(spec)))
	st, err := c.warmStateCached(key, func() (*mem.WarmState, error) {
		tsl := c.newSharedLevel()
		th := tsl.NewAgent(spec)
		ffWarm(th, traces[:sp.End])
		return tsl.CaptureWarmState(), nil
	})
	if err != nil {
		return err
	}
	hier.Shared().RestoreWarmState(st)
	return nil
}

// refStream computes the software-reference match stream of the phase's
// probes, with per-probe bounds: probe i's matches occupy
// matches[bounds[i-1]:bounds[i]] (bounds[-1] is implicitly 0).
func refStream(index *hashidx.Table, traces []hashidx.ProbeTrace) (matches []uint64, bounds []int) {
	bounds = make([]int, len(traces))
	for i := range traces {
		matches = append(matches, index.ProbeMatches(traces[i].Key)...)
		bounds[i] = len(matches)
	}
	return matches, bounds
}

// matchSegment slices the reference stream to the matches of probes
// [lo, hi).
func matchSegment(matches []uint64, bounds []int, lo, hi uint64) []uint64 {
	start := 0
	if lo > 0 {
		start = bounds[lo-1]
	}
	return matches[start:bounds[hi-1]]
}

// verifySampledStream enforces the bit-identical-output contract: the
// concatenated fast-forward reference + detailed simulated match stream
// must fingerprint-match the full software reference.
func verifySampledStream(what string, stream, ref []uint64) error {
	refFP := structures.Fingerprint(ref)
	if got := structures.Fingerprint(stream); got != refFP {
		return fmt.Errorf("sim: sampled %s output diverged from the software reference (%d matches fp %#x, want %d fp %#x)",
			what, len(stream), got, len(ref), refFP)
	}
	return nil
}

// addCoreResult accumulates one measured span's core result.
func addCoreResult(agg *cores.Result, r cores.Result) {
	agg.Tuples += r.Tuples
	agg.TotalCycles += r.TotalCycles
	agg.CompCycles += r.CompCycles
	agg.MemCycles += r.MemCycles
	agg.TLBCycles += r.TLBCycles
	agg.HashCycles += r.HashCycles
	agg.WalkCycles += r.WalkCycles
	agg.Instructions += r.Instructions
	agg.MemStats = agg.MemStats.Add(r.MemStats)
}

// addOffloadResult accumulates one measured span's offload result.
func addOffloadResult(agg *widx.OffloadResult, r *widx.OffloadResult) {
	agg.Tuples += r.Tuples
	agg.TotalCycles += r.TotalCycles
	for i := range r.Walkers {
		agg.Walkers[i].Add(r.Walkers[i])
	}
	agg.WalkerTotal.Add(r.WalkerTotal)
	agg.DispatcherBusy += r.DispatcherBusy
	agg.DispatcherStall += r.DispatcherStall
	agg.ProducerBusy += r.ProducerBusy
	agg.MemStats = agg.MemStats.Add(r.MemStats)
}

// runBaselineSampled replays the phase's traces on a baseline core through
// the plan: fast-forward spans warm functionally, detailed spans run on the
// live core resuming at the cycle the previous span ended. The returned
// result aggregates the measured spans only (its CyclesPerTuple is the
// measured-probe-weighted window mean), alongside the per-window
// observations.
func (c Config) runBaselineSampled(ph *indexPhase, coreCfg cores.Config, plan sampling.Plan) (cores.Result, []windowSample, error) {
	sl := c.newSharedLevel()
	hier := sl.NewAgent(sl.Topology().Agent("host"))
	core, err := cores.New(coreCfg, hier)
	if err != nil {
		return cores.Result{}, nil, err
	}
	var agg cores.Result
	wins := make([]windowSample, 0, plan.Windows)
	var cursor uint64
	detailed := func(sp sampling.Span) error {
		res, err := core.RunProbes(ph.traces[sp.Start:sp.End], cursor)
		if err != nil {
			return err
		}
		cursor += res.TotalCycles
		if sp.Kind != sampling.Measure {
			return nil
		}
		wins = append(wins, windowSample{cycles: res.TotalCycles, tuples: res.Tuples, mshr: res.MemStats.MeanMSHROccupancy()})
		addCoreResult(&agg, res)
		return nil
	}
	ff := func(sp sampling.Span) error {
		return c.ffSpan(hier, ph.warmKey, ph.traces, sp)
	}
	if c.SampleFullDetail {
		// Reference mode: fast-forward spans execute in detail too (their
		// Kind keeps them unmeasured), so the windows observe true history.
		ff = detailed
	}
	if err := plan.Run(ff, detailed); err != nil {
		return cores.Result{}, nil, err
	}
	return agg, wins, nil
}

// runWidxSampled executes the phase's probes on a Widx design point through
// the plan. Fast-forward spans append the reference matches of their probes
// to the output stream and warm the hierarchy; detailed spans offload the
// span's key range at the current cursor. The combined stream is verified
// against the full reference before the result is returned.
func (c Config) runWidxSampled(ph *indexPhase, as *vm.AddressSpace, resultBase uint64, walkers int, mode widx.HashingMode,
	plan sampling.Plan, refMatches []uint64, bounds []int) (*widx.OffloadResult, []windowSample, error) {
	sl := c.newSharedLevel()
	hier := sl.NewAgent(c.widxSpec(sl.Topology(), "widx"))
	bundle, err := program.ForTable(ph.index, resultBase)
	if err != nil {
		return nil, nil, err
	}
	acc, err := widx.New(widx.Config{NumWalkers: walkers, QueueDepth: c.queueDepth(), Mode: mode},
		hier, as, bundle.Dispatcher, bundle.Walker, bundle.Producer)
	if err != nil {
		return nil, nil, err
	}
	agg := &widx.OffloadResult{Walkers: make([]widx.Breakdown, walkers)}
	stream := make([]uint64, 0, len(refMatches))
	wins := make([]windowSample, 0, plan.Windows)
	var cursor uint64
	detailed := func(sp sampling.Span) error {
		res, err := acc.Offload(widx.OffloadRequest{
			KeyBase:    ph.probeKeyBase + sp.Start*8,
			KeyCount:   sp.Len(),
			StartCycle: cursor,
		})
		if err != nil {
			return err
		}
		cursor += res.TotalCycles
		stream = append(stream, res.Matches...)
		if sp.Kind != sampling.Measure {
			return nil
		}
		wins = append(wins, windowSample{cycles: res.TotalCycles, tuples: res.Tuples, mshr: res.MemStats.MeanMSHROccupancy()})
		addOffloadResult(agg, res)
		return nil
	}
	ff := func(sp sampling.Span) error {
		stream = append(stream, matchSegment(refMatches, bounds, sp.Start, sp.End)...)
		return c.ffSpan(hier, ph.warmKey, ph.traces, sp)
	}
	if c.SampleFullDetail {
		ff = detailed
	}
	if err := plan.Run(ff, detailed); err != nil {
		return nil, nil, err
	}
	if err := verifySampledStream("widx", stream, refMatches); err != nil {
		return nil, nil, err
	}
	agg.Matches = stream
	return agg, wins, nil
}

// phaseSampling carries one phase's sampled execution record back to the
// experiment layer: the executed plan and each design point's window
// observations, parallel to runPhase's result slices.
type phaseSampling struct {
	plan     sampling.Plan
	baseWins [][]windowSample
	widxWins [][]windowSample
	// verified reports that at least one Widx point's match stream was
	// fingerprint-checked against the reference (mismatches abort the run).
	verified bool
}

// report seeds a sampling.Report from the phase's plan.
func (ps *phaseSampling) report() *sampling.Report {
	r := sampling.NewReport(ps.plan)
	r.FingerprintVerified = ps.verified
	return r
}

// addSampledPoint records one Widx design point's three headline metric
// series under the given name prefix: cycles-per-tuple, speedup against the
// baseline's aligned windows (skipped when base is nil — e.g. sweeps with
// no baseline core), and mean MSHR occupancy.
func addSampledPoint(r *sampling.Report, prefix string, base, wins []windowSample) {
	r.Add(sampledMetricName(prefix, metricCPT), cptSeries(wins))
	if base != nil {
		r.Add(sampledMetricName(prefix, metricSpeedup), speedupSeries(base, wins))
	}
	r.Add(sampledMetricName(prefix, metricMSHR), mshrSeries(wins))
}

// SamplingReporter is implemented by every experiment result that can carry
// a sampled-estimate block: the report itself (nil when sampling was off)
// and, for verification, the full-run values of the same metrics under the
// same names — the -sampling-verify mode runs an experiment both ways and
// asserts every full-run value falls inside the sampled run's interval.
type SamplingReporter interface {
	SamplingReport() *sampling.Report
	SampledMetricValues() map[string]float64
}

// sampledMetricName renders the canonical metric names shared by the
// sampled estimator and the full-run metric map.
func sampledMetricName(prefix, metric string) string {
	return prefix + " " + metric
}

const (
	metricCPT     = "cycles-per-tuple"
	metricSpeedup = "speedup-vs-ooo"
	metricMSHR    = "mshr-occupancy"
)
