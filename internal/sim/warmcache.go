// Warm-state reuse across design points. A sweep grid varies mostly
// timing-side knobs (queue depths, MSHR budgets, fill buffers, stagger),
// yet the historical runners rebuilt the workload image and re-warmed the
// hierarchy for every grid point. This file threads Config.WarmCache
// through the experiment entry points: the expensive phase-independent
// artifacts — built kernels and engine runs (address-space images, hash
// tables, probe traces) and warmed cache/TLB content — are memoized under
// content-addressed keys (internal/warmstate) and handed out as private
// copy-on-write clones or geometry-checked snapshot restores, so a
// warm-invariant sweep pays for each distinct build and warm-up once.
//
// Correctness contract: with the cache enabled, every experiment produces
// byte-identical reports to a cache-off run at any parallelism. Three
// mechanisms carry that:
//
//   - Cache keys name every warm-affecting input (workload spec and size,
//     scale, sample-derived stream lengths, warm-relevant topology
//     geometry, warming policy) through the Fingerprint builder. Timing
//     knobs are deliberately absent; warm content is independent of them
//     (internal/mem/state.go), which is the property being exploited.
//   - Consumers never touch a cached master: address spaces are handed
//     out as copy-on-write clones (taken under the artifact's mutex —
//     Clone mutates the parent's sharing bookkeeping), warmed hierarchies
//     as snapshot restores into freshly built levels.
//   - Verify mode (Cache.SetVerify) rebuilds on every hit and compares
//     content hashes, turning a key that omits a warm-affecting knob into
//     a hard error instead of silently shared state.
package sim

import (
	"fmt"
	"sync"

	"widx/internal/engine"
	"widx/internal/hashidx"
	"widx/internal/join"
	"widx/internal/mem"
	"widx/internal/structures"
	"widx/internal/vm"
	"widx/internal/warmstate"
	"widx/internal/workloads"
)

// warmKeyHook, when non-nil, rewrites every cache key before use. It
// exists only for the misclassification drill in tests: stripping a field
// from the keys simulates a warm-affecting parameter that leaked out of
// the fingerprint, which verify mode must catch.
var warmKeyHook func(string) string

// warmKey renders a fingerprint, applying the test hook.
func warmKey(f *warmstate.Fingerprint) string {
	k := f.Key()
	if warmKeyHook != nil {
		k = warmKeyHook(k)
	}
	return k
}

// warmStateCached memoizes a warm-state snapshot through the two cache
// tiers: the in-memory Cache (per-process, verify-capable) in front of the
// optional DiskStore (Config.WarmStore, cross-process). A disk hit decodes
// the persisted payload instead of rebuilding; an undecodable payload — a
// stale codec revision, a torn write — counts as a miss and is rebuilt and
// overwritten. The in-memory tier still content-hash-verifies whatever the
// loader produced, so a corrupted-but-decodable payload surfaces in verify
// mode exactly like a key collision.
func (c Config) warmStateCached(key string, build func() (*mem.WarmState, error)) (*mem.WarmState, error) {
	load := build
	if c.WarmStore != nil {
		load = func() (*mem.WarmState, error) {
			payload, ok, err := c.WarmStore.Get(key)
			if err != nil {
				return nil, err
			}
			if ok {
				if st, derr := mem.DecodeWarmState(payload); derr == nil {
					return st, nil
				}
			}
			st, err := build()
			if err != nil {
				return nil, err
			}
			if err := c.WarmStore.Put(key, st.EncodeBinary()); err != nil {
				return nil, err
			}
			return st, nil
		}
	}
	if c.WarmCache == nil {
		return load()
	}
	return warmstate.Get(c.WarmCache, key, load, (*mem.WarmState).ContentHash)
}

// kernelArtifact is one memoized hash-join kernel build: the master
// address-space image (never written after build), the index, and the
// probe traces, generated once inside the build so consumers never read
// the master concurrently.
type kernelArtifact struct {
	mu     sync.Mutex
	kernel *join.Kernel
	traces []hashidx.ProbeTrace
}

// phase hands out one consumer's view of the artifact: an indexPhase on a
// private copy-on-write clone of the master image. The clone is taken
// under mu because vm.AddressSpace.Clone mutates the parent's sharing
// bookkeeping.
func (a *kernelArtifact) phase(withTraces bool) *indexPhase {
	a.mu.Lock()
	as := a.kernel.AS.Clone()
	a.mu.Unlock()
	ph := &indexPhase{
		as:           as,
		index:        a.kernel.Index,
		probeKeyBase: a.kernel.ProbeKeyBase,
		probeCount:   len(a.kernel.ProbeKeys),
	}
	if withTraces {
		ph.traces = a.traces
	}
	return ph
}

// kernelPhase builds (or fetches from the warm cache) the kernel workload
// for one size class. The key names every input BuildKernel consumes; the
// probe-sample knob enters through the derived OuterTuples stream length,
// so two configs that produce the same stream share the build. Cache off
// reproduces the historical inline path exactly, master image included.
func (c Config) kernelPhase(size join.SizeClass, withTraces bool) (*indexPhase, error) {
	kcfg := join.DefaultKernelConfig(size, c.Scale)
	// The probe stream only needs to cover the detailed sample.
	kcfg.OuterTuples = c.sampleCount(4 * size.Tuples(c.Scale))
	build := func() (*kernelArtifact, error) {
		kernel, err := join.BuildKernel(kcfg)
		if err != nil {
			return nil, err
		}
		return &kernelArtifact{
			kernel: kernel,
			traces: kernel.Traces(c.sampleCount(len(kernel.ProbeKeys))),
		}, nil
	}
	if c.WarmCache == nil {
		art, err := build()
		if err != nil {
			return nil, err
		}
		ph := &indexPhase{
			as:           art.kernel.AS,
			index:        art.kernel.Index,
			probeKeyBase: art.kernel.ProbeKeyBase,
			probeCount:   len(art.kernel.ProbeKeys),
		}
		if withTraces {
			ph.traces = art.traces
		}
		return ph, nil
	}
	key := warmKey(warmstate.NewFingerprint("kernel").
		Field("size", kcfg.Size).
		Field("scale", kcfg.Scale).
		Field("outer", kcfg.OuterTuples).
		Field("npb", kcfg.NodesPerBucket).
		Field("hash", kcfg.Hash).
		Field("seed", kcfg.Seed))
	art, err := warmstate.Get(c.WarmCache, key, build,
		func(a *kernelArtifact) uint64 { return a.kernel.AS.ContentHash() })
	if err != nil {
		return nil, err
	}
	ph := art.phase(withTraces)
	ph.warmKey = key
	return ph, nil
}

// engineArtifact is one memoized query-engine run: the full engine result
// with its master address-space image.
type engineArtifact struct {
	mu  sync.Mutex
	res *engine.Result
}

// result hands out the artifact. With cloneAS the returned result carries
// a private copy-on-write clone of the image (for consumers that replay
// the index phase and allocate result regions); without it the shared
// result is returned directly and the caller must treat it — AS included —
// as read-only.
func (a *engineArtifact) result(cloneAS bool) *engine.Result {
	if !cloneAS {
		return a.res
	}
	a.mu.Lock()
	as := a.res.AS.Clone()
	a.mu.Unlock()
	cp := *a.res
	cp.AS = as
	return &cp
}

// engineRun executes (or fetches from the warm cache) one query through
// the engine. The key is the rendered PlanSpec — value-typed, fully
// derived from the query spec and scale, and the complete input set of
// engine.Run.
func (c Config) engineRun(q workloads.QuerySpec, cloneAS bool) (*engine.Result, error) {
	res, _, err := c.engineRunKeyed(q, cloneAS)
	return res, err
}

// engineRunKeyed is engineRun returning the artifact's cache key alongside
// the result ("" when caching is off), for phase-level warm-state
// checkpoints to chain on.
func (c Config) engineRunKeyed(q workloads.QuerySpec, cloneAS bool) (*engine.Result, string, error) {
	spec := engine.FromWorkload(q, c.Scale)
	if c.WarmCache == nil {
		res, err := engine.Run(spec)
		return res, "", err
	}
	key := warmKey(warmstate.NewFingerprint("engine").
		Field("spec", fmt.Sprintf("%+v", spec)))
	art, err := warmstate.Get(c.WarmCache, key, func() (*engineArtifact, error) {
		res, err := engine.Run(spec)
		if err != nil {
			return nil, err
		}
		return &engineArtifact{res: res}, nil
	}, func(a *engineArtifact) uint64 { return a.res.AS.ContentHash() })
	if err != nil {
		return nil, "", err
	}
	return art.result(cloneAS), key, nil
}

// cmpWorkloadArtifact is one memoized partitioned CMP workload: the
// master image plus the per-agent partitions (tables, key columns,
// program bundles, traces), all read-only after build.
type cmpWorkloadArtifact struct {
	mu        sync.Mutex
	as        *vm.AddressSpace
	workloads []cmpAgentWorkload
}

// cmpWorkload builds (or fetches) the partitioned workload for one CMP
// run and returns the address space the run should use, the per-agent
// partitions, and the workload's cache key ("" when caching is off) for
// the warm-state keys to chain on. Each RunCMP invocation receives one
// private clone — solo runs and the co-run share it sequentially, exactly
// like the historical single-image path.
func (c Config) cmpWorkload(size join.SizeClass, specs []CMPAgentSpec, structure structures.Kind) (*vm.AddressSpace, []cmpAgentWorkload, string, error) {
	if c.WarmCache == nil {
		as, ws, err := c.buildCMPWorkload(size, specs, structure)
		return as, ws, "", err
	}
	// The derived stream lengths plus the structure and the spec strings
	// (which name the partition regions and select bundle vs. traces per
	// agent) fully determine the image; scale and sample enter through the
	// lengths.
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.String()
	}
	f := warmstate.NewFingerprint("cmpwork").
		Field("structure", structure).
		Field("tuples", size.Tuples(c.Scale)).
		Field("peragent", c.sampleCount(4*size.Tuples(c.Scale)))
	for i, n := range names {
		f.Field(fmt.Sprintf("agent%d", i), n)
	}
	key := warmKey(f)
	art, err := warmstate.Get(c.WarmCache, key, func() (*cmpWorkloadArtifact, error) {
		as, ws, err := c.buildCMPWorkload(size, specs, structure)
		if err != nil {
			return nil, err
		}
		return &cmpWorkloadArtifact{as: as, workloads: ws}, nil
	}, func(a *cmpWorkloadArtifact) uint64 { return a.as.ContentHash() })
	if err != nil {
		return nil, nil, "", err
	}
	art.mu.Lock()
	clone := art.as.Clone()
	art.mu.Unlock()
	return clone, art.workloads, key, nil
}

// warmSpecField renders the warm-affecting slice of an agent spec: the
// geometry that decides where warmed blocks and pages land. Timing knobs
// (MSHRs, ports, latencies) are deliberately absent — warm content is
// independent of them, so a timing sweep shares one snapshot.
func warmSpecField(spec mem.AgentSpec) string {
	return fmt.Sprintf("l1=%d/%d,tlb=%d,page=%d,ways=%d",
		spec.L1SizeBytes, spec.L1Assoc, spec.TLBEntries, spec.PageBytes, spec.LLCWays)
}

// warmSharedField renders the warm-affecting slice of the shared level:
// LLC geometry and the block size warming strides by. FillBuffers and
// latencies are timing-side and excluded.
func (c Config) warmSharedField() string {
	return fmt.Sprintf("llc=%d/%d,block=%d", c.Mem.LLCSizeBytes, c.Mem.LLCAssoc, c.Mem.L1BlockBytes)
}

// warmCMPSolo warms one agent's partition into its uncontended hierarchy,
// through the warm cache when enabled: the snapshot is captured once from
// a throwaway machine of identical warm-relevant geometry and restored
// into every consumer's level. The throwaway keeps the build closure
// self-contained, so verify-mode rebuilds replay the warm-up from scratch
// rather than re-capturing a level that has since executed.
func (c Config) warmCMPSolo(hier *mem.Hierarchy, workloadKey string, w *cmpAgentWorkload, agentIdx int) error {
	if c.WarmCache == nil || workloadKey == "" {
		warmPartition(hier, w)
		return nil
	}
	spec := hier.Spec()
	key := warmKey(warmstate.NewFingerprint("cmpwarmsolo").
		Field("workload", workloadKey).
		Field("agent", agentIdx).
		Field("shared", c.warmSharedField()).
		Field("spec", warmSpecField(spec)))
	st, err := c.warmStateCached(key, func() (*mem.WarmState, error) {
		tsl := c.newSharedLevel()
		th := tsl.NewAgent(spec)
		warmPartition(th, w)
		return tsl.CaptureWarmState(), nil
	})
	if err != nil {
		return err
	}
	hier.Shared().RestoreWarmState(st)
	return nil
}

// warmCMPCoRun warms every co-running agent's partition into the one
// shared level, through the warm cache when enabled. The key chains on
// the workload key and names the warming policy plus every agent's
// warm-relevant geometry in attachment order, because the interleaved
// policy's eviction pattern depends on all of them together.
func (c Config) warmCMPCoRun(sl *mem.SharedLevel, hiers []*mem.Hierarchy, workloadKey string, ws []cmpAgentWorkload, interleaved bool) error {
	warm := func(hs []*mem.Hierarchy) {
		if interleaved {
			warmPartitionsInterleaved(hs, ws)
		} else {
			for i := range hs {
				warmPartition(hs[i], &ws[i])
			}
		}
	}
	if c.WarmCache == nil || workloadKey == "" {
		warm(hiers)
		return nil
	}
	specs := make([]mem.AgentSpec, len(hiers))
	f := warmstate.NewFingerprint("cmpwarm").
		Field("workload", workloadKey).
		Field("interleaved", interleaved).
		Field("shared", c.warmSharedField())
	for i, h := range hiers {
		specs[i] = h.Spec()
		f.Field(fmt.Sprintf("agent%d", i), warmSpecField(specs[i]))
	}
	key := warmKey(f)
	st, err := c.warmStateCached(key, func() (*mem.WarmState, error) {
		tsl := c.newSharedLevel()
		ths := make([]*mem.Hierarchy, len(specs))
		for i := range specs {
			ths[i] = tsl.NewAgent(specs[i])
		}
		warm(ths)
		return tsl.CaptureWarmState(), nil
	})
	if err != nil {
		return err
	}
	sl.RestoreWarmState(st)
	return nil
}
