package sim

import (
	"fmt"
	"testing"

	"widx/internal/join"
	"widx/internal/workloads"
)

// parallelTestConfig is a small configuration used by the determinism tests,
// returned at the requested parallelism.
func parallelTestConfig(parallelism int) Config {
	cfg := QuickConfig()
	cfg.Scale = 1.0 / 256
	cfg.SampleProbes = 1500
	cfg.Parallelism = parallelism
	return cfg
}

// TestRunTasks exercises the worker pool itself: every index runs exactly
// once at every parallelism level, and the first error in index order wins.
func TestRunTasks(t *testing.T) {
	for _, p := range []int{0, 1, 2, 7, 64} {
		cfg := Config{Parallelism: p}
		const n = 23
		hits := make([]int, n)
		if err := cfg.RunTasks(n, func(i int) error {
			hits[i]++
			return nil
		}); err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallelism %d: task %d ran %d times", p, i, h)
			}
		}
		// A single failing task always reports its error, even though tasks
		// that have not started when a failure lands may be skipped.
		err := cfg.RunTasks(n, func(i int) error {
			if i == 5 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 5 failed" {
			t.Fatalf("parallelism %d: expected the task-5 error, got %v", p, err)
		}
	}
}

// TestInnerConfig checks the nested-fan-out budget split: outer workers times
// the inner share never exceeds the configured parallelism.
func TestInnerConfig(t *testing.T) {
	cases := []struct {
		parallelism, outer, want int
	}{
		{8, 4, 2},
		{8, 3, 3},
		{8, 16, 1},
		{8, 1, 8},
		{1, 5, 1},
		{0, 5, 1},
	}
	for _, tc := range cases {
		c := Config{Parallelism: tc.parallelism}
		if got := c.InnerConfig(tc.outer).Parallelism; got != tc.want {
			t.Errorf("InnerConfig(%d) with Parallelism %d = %d, want %d",
				tc.outer, tc.parallelism, got, tc.want)
		}
	}
}

// TestParallelKernelDeterminism asserts the tentpole guarantee: the parallel
// runner produces byte-identical Text() kernel report to a sequential run of
// the same configuration.
func TestParallelKernelDeterminism(t *testing.T) {
	sizes := []join.SizeClass{join.Small, join.Medium}

	seqExp, err := parallelTestConfig(1).RunKernel(sizes)
	if err != nil {
		t.Fatal(err)
	}
	seq := seqExp.Text()

	for _, p := range []int{2, 8} {
		parExp, err := parallelTestConfig(p).RunKernel(sizes)
		if err != nil {
			t.Fatal(err)
		}
		if par := parExp.Text(); par != seq {
			t.Fatalf("parallelism %d changed the kernel report\nsequential:\n%s\nparallel:\n%s", p, seq, par)
		}
	}
}

// TestParallelQueryDeterminism checks the DSS-query path: per-query results
// and the suite report (Figures 9-11) are identical under parallelism.
func TestParallelQueryDeterminism(t *testing.T) {
	q17, err := workloads.ByName(workloads.TPCH, "q17")
	if err != nil {
		t.Fatal(err)
	}
	q37, err := workloads.ByName(workloads.TPCDS, "q37")
	if err != nil {
		t.Fatal(err)
	}
	queries := []workloads.QuerySpec{q17, q37}

	seqSuite, err := parallelTestConfig(1).runQuerySet(queries)
	if err != nil {
		t.Fatal(err)
	}
	parSuite, err := parallelTestConfig(6).runQuerySet(queries)
	if err != nil {
		t.Fatal(err)
	}
	seq := seqSuite.Text()
	par := parSuite.Text()
	if seq != par {
		t.Fatalf("parallelism changed the query report\nsequential:\n%s\nparallel:\n%s", seq, par)
	}
}

// TestParallelAblationDeterminism checks that the hashing ablation reports
// the same numbers sequentially and in parallel (its design points used to be
// launched in Go map order, which randomized result-buffer addresses).
func TestParallelAblationDeterminism(t *testing.T) {
	q20, err := workloads.ByName(workloads.TPCH, "q20")
	if err != nil {
		t.Fatal(err)
	}
	seqAb, err := parallelTestConfig(1).RunHashingAblation(q20, 2)
	if err != nil {
		t.Fatal(err)
	}
	parAb, err := parallelTestConfig(4).RunHashingAblation(q20, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq := seqAb.Text()
	par := parAb.Text()
	if seq != par {
		t.Fatalf("parallelism changed the ablation report\nsequential:\n%s\nparallel:\n%s", seq, par)
	}
}

// TestParallelBreakdownDeterminism checks the Figure 2 path, which
// parallelizes whole engine executions rather than design points.
func TestParallelBreakdownDeterminism(t *testing.T) {
	seqRows, err := parallelTestConfig(1).RunBreakdowns(true)
	if err != nil {
		t.Fatal(err)
	}
	parRows, err := parallelTestConfig(8).RunBreakdowns(true)
	if err != nil {
		t.Fatal(err)
	}
	if seq, par := seqRows.Text(), parRows.Text(); seq != par {
		t.Fatalf("parallelism changed the breakdown report\nsequential:\n%s\nparallel:\n%s", seq, par)
	}
}
