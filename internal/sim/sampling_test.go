package sim

import (
	"strings"
	"testing"

	"widx/internal/join"
	"widx/internal/structures"
	"widx/internal/warmstate"
	"widx/internal/workloads"
)

// sampledTestConfig is the smallest configuration at which the systematic
// plan is non-degenerate for every experiment family: the kernel's Small
// probe stream (2048 probes at this scale) fits six 192+64 windows with
// fast-forward spans left over, and query/zoo/CMP streams are capped at
// SampleProbes so they see the same plan shape. The warmup is deliberately
// generous — the verify test asserts CI containment, and detailed warmup
// is the knob that shrinks fast-forward bias.
func sampledTestConfig() Config {
	c := QuickConfig()
	c.Scale = 1.0 / 8
	c.SampleProbes = 2000
	c.SampleWindows = 6
	c.SampleWarmup = 192
	c.SamplePeriod = 64
	c.Walkers = []int{2}
	return c
}

// checkSampledReport asserts the structural contract of a sampled run's
// report: present, not degraded, fingerprint-verified against the software
// reference, and carrying at least one estimate.
func checkSampledReport(t *testing.T, name string, r SamplingReporter) {
	t.Helper()
	rep := r.SamplingReport()
	if rep == nil {
		t.Fatalf("%s: sampled run produced no sampling report", name)
	}
	if rep.Degraded {
		t.Errorf("%s: plan degraded to full simulation; the test workload should fit the windows", name)
	}
	if !rep.FingerprintVerified {
		t.Errorf("%s: sampled match stream was not fingerprint-verified", name)
	}
	if len(rep.Metrics) == 0 {
		t.Errorf("%s: sampling report carries no metrics", name)
	}
	if rep.MeasuredProbes == 0 || rep.MeasuredProbes >= rep.TotalProbes {
		t.Errorf("%s: measured %d of %d probes; a sampled run must measure a strict subset",
			name, rep.MeasuredProbes, rep.TotalProbes)
	}
}

// TestSampledVerifyAgainstFullRun is the -sampling-verify contract for
// every experiment family: the sampled estimator's 95% confidence interval
// must cover the value a full-detail reference run — every probe simulated,
// the same windows measured — computes for the same metric name, so the
// only difference under test is the fast-forward approximation itself.
func TestSampledVerifyAgainstFullRun(t *testing.T) {
	sampled := sampledTestConfig()
	full := sampled
	full.SampleFullDetail = true
	specs, err := ParseAgents("widx:2w+ooo")
	if err != nil {
		t.Fatal(err)
	}
	q := workloads.SimulatedQueries()[0]
	zooOpt := ZooOptions{Structures: []structures.Kind{structures.HashJoin, structures.BTree}}

	check := func(name string, run func(c Config) (SamplingReporter, error)) {
		t.Helper()
		s, err := run(sampled)
		if err != nil {
			t.Fatalf("%s sampled: %v", name, err)
		}
		checkSampledReport(t, name, s)
		f, err := run(full)
		if err != nil {
			t.Fatalf("%s full: %v", name, err)
		}
		if err := s.SamplingReport().Verify(f.SampledMetricValues()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}

	check("kernel", func(c Config) (SamplingReporter, error) { return c.RunKernel([]join.SizeClass{join.Small}) })
	check("query", func(c Config) (SamplingReporter, error) { return c.RunQuery(q) })
	check("walkerutil", func(c Config) (SamplingReporter, error) { return c.RunWalkerUtilization(join.Small, 2) })
	check("zoo", func(c Config) (SamplingReporter, error) { return c.RunZoo(zooOpt) })
	check("cmp", func(c Config) (SamplingReporter, error) { return c.RunCMP(join.Small, specs) })
}

// TestSampledDeterministicAcrossParallelism pins the determinism contract
// for sampled runs: window placement and per-window execution are pure
// functions of the configuration, so parallel fan-out must reproduce the
// sequential run byte for byte, sampling block included.
func TestSampledDeterministicAcrossParallelism(t *testing.T) {
	specs, err := ParseAgents("widx:2w+ooo")
	if err != nil {
		t.Fatal(err)
	}
	q := workloads.SimulatedQueries()[0]
	zooOpt := ZooOptions{Structures: []structures.Kind{structures.HashJoin, structures.SkipList}}

	check := func(name string, run func(c Config) (any, error)) {
		t.Helper()
		seq := sampledTestConfig()
		seq.Parallelism = 1
		par := sampledTestConfig()
		par.Parallelism = 8
		a, err := run(seq)
		if err != nil {
			t.Fatalf("%s p=1: %v", name, err)
		}
		b, err := run(par)
		if err != nil {
			t.Fatalf("%s p=8: %v", name, err)
		}
		if w, g := resultJSON(t, a), resultJSON(t, b); g != w {
			t.Errorf("%s: sampled run differs across parallelism\np=1: %s\np=8: %s", name, w, g)
		}
	}

	check("kernel", func(c Config) (any, error) { return c.RunKernel([]join.SizeClass{join.Small}) })
	check("query", func(c Config) (any, error) { return c.RunQuery(q) })
	check("zoo", func(c Config) (any, error) { return c.RunZoo(zooOpt) })
	check("cmp", func(c Config) (any, error) { return c.RunCMP(join.Small, specs) })
}

// TestUnsampledManifestUnchanged locks the compatibility guarantee: with
// SampleWindows off, results must not mention sampling at all, so manifests
// from pre-sampling builds stay byte-identical.
func TestUnsampledManifestUnchanged(t *testing.T) {
	c := warmTestConfig()
	exp, err := c.RunKernel([]join.SizeClass{join.Small})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Sampling != nil {
		t.Error("unsampled kernel run carries a sampling report")
	}
	if js := resultJSON(t, exp); strings.Contains(js, "sampling") {
		t.Errorf("unsampled kernel JSON mentions sampling: %s", js)
	}
	qr, err := c.RunQuery(workloads.SimulatedQueries()[0])
	if err != nil {
		t.Fatal(err)
	}
	if qr.Sampling != nil || strings.Contains(resultJSON(t, qr), "sampling") {
		t.Error("unsampled query run mentions sampling")
	}
}

// TestSampledWarmStoreCrossProcess exercises the persistent fast-forward
// checkpoints: a second "process" (fresh in-memory cache, reopened disk
// store) must restore the first run's warm snapshots from disk instead of
// re-warming, and produce byte-identical results — identical also to a run
// with no caching at all.
func TestSampledWarmStoreCrossProcess(t *testing.T) {
	dir := t.TempDir()

	plain := sampledTestConfig()
	want, err := plain.RunKernel([]join.SizeClass{join.Small})
	if err != nil {
		t.Fatalf("cache-off run: %v", err)
	}

	store, err := warmstate.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := sampledTestConfig()
	first.WarmCache = warmstate.New()
	first.WarmStore = store
	got, err := first.RunKernel([]join.SizeClass{join.Small})
	if err != nil {
		t.Fatalf("first stored run: %v", err)
	}
	if w, g := resultJSON(t, want), resultJSON(t, got); g != w {
		t.Errorf("warm-store run diverges from cache-off run\noff:    %s\nstored: %s", w, g)
	}
	if _, misses := store.Stats(); misses == 0 {
		t.Fatal("first run never consulted the disk store; checkpoints were not persisted through it")
	}

	reopened, err := warmstate.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	second := sampledTestConfig()
	second.WarmCache = warmstate.New()
	second.WarmStore = reopened
	again, err := second.RunKernel([]join.SizeClass{join.Small})
	if err != nil {
		t.Fatalf("second stored run: %v", err)
	}
	if w, g := resultJSON(t, want), resultJSON(t, again); g != w {
		t.Errorf("disk-restored run diverges from cache-off run\noff:      %s\nrestored: %s", w, g)
	}
	hits, _ := reopened.Stats()
	if hits == 0 {
		t.Error("second process saw no disk hits; fast-forward checkpoints did not survive the process boundary")
	}
}
