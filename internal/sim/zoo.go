// The workload zoo: the cross-structure traversal study. Every structure in
// internal/structures — hash join, skip list, B+-tree, LSM lookup, BFS
// frontier expansion — runs through the same harness as the kernel study:
// an OoO baseline replaying the software reference's dependent-load trace,
// and Widx at every configured walker count executing the structure's
// generated program bundle against the live image. The zoo is what makes
// the paper's "walkers generalize beyond hash joins" claim measurable: one
// accelerator configuration, five traversal shapes, the same
// cycles-per-tuple and speedup metrics.
package sim

import (
	"fmt"
	"sync"

	"widx/internal/cores"
	"widx/internal/hashidx"
	"widx/internal/sampling"
	"widx/internal/structures"
	"widx/internal/vm"
	"widx/internal/warmstate"
	"widx/internal/widx"
)

// ZooOptions selects the structures and program variants of a zoo run.
type ZooOptions struct {
	// Structures lists the kinds to run, in report order. Empty runs the
	// whole zoo in canonical order.
	Structures []structures.Kind
	// Span is the B+-tree range-probe span (0 or 1 = point probes).
	Span int
	// Prog selects the generated-program variant (dispatcher prefetch
	// distance, touching walker). The match stream is variant-independent.
	Prog structures.ProgramOptions
}

// ZooPoint is one (structure, walkers) design point.
type ZooPoint struct {
	Walkers int
	// CyclesPerTuple is the Widx traversal cost at this point.
	CyclesPerTuple float64
	// Breakdown is the per-tuple Comp/Mem/TLB/Idle split.
	Breakdown Breakdown
	// Speedup is over the OoO baseline replaying the same structure.
	Speedup float64
	// Raw is the offload's timing detail; its Matches slice is dropped.
	Raw *widx.OffloadResult
}

// ZooStructureResult is one structure's full design-point sweep.
type ZooStructureResult struct {
	Structure structures.Kind
	Geometry  structures.Geometry
	// Probes is the traversal-stream length and Matches the reference
	// match-stream length; Fingerprint hashes the match stream (every Widx
	// point was verified bit-identical against it).
	Probes      int
	Matches     int
	Fingerprint uint64
	// OoOCyclesPerTuple is the baseline cost on this structure.
	OoOCyclesPerTuple float64
	Points            []ZooPoint
}

// ZooExperiment is the cross-structure study result.
type ZooExperiment struct {
	Structures []ZooStructureResult
	// Sampling merges every structure's per-window confidence estimates,
	// each metric prefixed with its structure name; nil when sampling was
	// off.
	Sampling *sampling.Report `json:"sampling,omitempty"`
}

// Point returns the design point for a structure and walker count.
func (e *ZooExperiment) Point(k structures.Kind, walkers int) (ZooPoint, bool) {
	for _, s := range e.Structures {
		if s.Structure != k {
			continue
		}
		for _, p := range s.Points {
			if p.Walkers == walkers {
				return p, true
			}
		}
	}
	return ZooPoint{}, false
}

// zooKeys sizes a structure's resident element count from the scale knob —
// the same proportionality the kernel study uses, floored so the smallest
// scales still build multi-level structures.
func (c Config) zooKeys() int {
	n := int(c.Scale * (1 << 21))
	if n < 512 {
		n = 512
	}
	return n
}

// zooBuildConfig derives the deterministic build for one structure.
func (c Config) zooBuildConfig(k structures.Kind, span int) structures.BuildConfig {
	keys := c.zooKeys()
	if k == structures.BFS {
		// Vertices; the mean degree of 8 keeps the edge footprint (and the
		// match stream, one match per edge) comparable to the other builds.
		keys /= 8
		if keys < 128 {
			keys = 128
		}
	}
	return structures.BuildConfig{
		Kind:   k,
		Keys:   keys,
		Probes: c.sampleCount(4 * keys),
		Span:   span,
		Seed:   40961 + 101*uint64(k),
		Name:   "zoo." + k.String(),
	}
}

// zooArtifact is one memoized structure build: the master address-space
// image and the instance (which is immutable and clone-independent — its
// addresses are identical in every copy-on-write clone of the master).
type zooArtifact struct {
	mu   sync.Mutex
	as   *vm.AddressSpace
	inst structures.Instance
}

// zooPhase builds (or fetches from the warm cache) one structure workload
// and returns a private copy-on-write clone of its image plus the shared
// instance. The key names every build input; program options are absent
// deliberately — they change the generated code, never the image or the
// reference.
// The cache key ("" when caching is off) is also returned, for phase-level
// warm-state checkpoints to chain on.
func (c Config) zooPhase(cfg structures.BuildConfig) (*vm.AddressSpace, structures.Instance, string, error) {
	build := func() (*zooArtifact, error) {
		as := vm.New()
		inst, err := structures.Build(as, cfg)
		if err != nil {
			return nil, err
		}
		return &zooArtifact{as: as, inst: inst}, nil
	}
	if c.WarmCache == nil {
		art, err := build()
		if err != nil {
			return nil, nil, "", err
		}
		return art.as, art.inst, "", nil
	}
	key := warmKey(warmstate.NewFingerprint("zoo").
		Field("structure", cfg.Kind).
		Field("keys", cfg.Keys).
		Field("probes", cfg.Probes).
		Field("span", cfg.Span).
		Field("seed", cfg.Seed))
	art, err := warmstate.Get(c.WarmCache, key, build,
		func(a *zooArtifact) uint64 { return a.as.ContentHash() })
	if err != nil {
		return nil, nil, "", err
	}
	// Clone under the artifact's lock: vm.AddressSpace.Clone mutates the
	// parent's sharing bookkeeping.
	art.mu.Lock()
	as := art.as.Clone()
	art.mu.Unlock()
	return as, art.inst, key, nil
}

// runZooWidx executes one structure's probes on one Widx design point.
func (c Config) runZooWidx(inst structures.Instance, as *vm.AddressSpace, resultBase uint64, walkers int, prog structures.ProgramOptions) (*widx.OffloadResult, error) {
	progs, err := inst.Programs(resultBase, prog)
	if err != nil {
		return nil, err
	}
	sl := c.newSharedLevel()
	hier := sl.NewAgent(c.widxSpec(sl.Topology(), "widx"))
	acc, err := widx.New(widx.Config{NumWalkers: walkers, QueueDepth: c.queueDepth(), Mode: widx.SharedDispatcher},
		hier, as, progs.Dispatcher, progs.Walker, progs.Producer)
	if err != nil {
		return nil, err
	}
	return acc.Offload(widx.OffloadRequest{
		KeyBase:  inst.ProbeKeyBase(),
		KeyCount: uint64(inst.ProbeCount()),
	})
}

// runZooWidxSampled executes one structure's probes on one Widx design
// point through a sampling plan: fast-forward spans append the reference
// matches and warm the hierarchy from the reference traces, detailed spans
// offload the span's key range at the current cursor, and the combined
// stream is fingerprint-verified against the full reference (the same
// contract the unsampled zoo enforces).
func (c Config) runZooWidxSampled(inst structures.Instance, as *vm.AddressSpace, resultBase uint64, walkers int, prog structures.ProgramOptions,
	plan sampling.Plan, refMatches []uint64, bounds []int, traces []hashidx.ProbeTrace, phaseKey string) (*widx.OffloadResult, []windowSample, error) {
	progs, err := inst.Programs(resultBase, prog)
	if err != nil {
		return nil, nil, err
	}
	sl := c.newSharedLevel()
	hier := sl.NewAgent(c.widxSpec(sl.Topology(), "widx"))
	acc, err := widx.New(widx.Config{NumWalkers: walkers, QueueDepth: c.queueDepth(), Mode: widx.SharedDispatcher},
		hier, as, progs.Dispatcher, progs.Walker, progs.Producer)
	if err != nil {
		return nil, nil, err
	}
	agg := &widx.OffloadResult{Walkers: make([]widx.Breakdown, walkers)}
	stream := make([]uint64, 0, len(refMatches))
	wins := make([]windowSample, 0, plan.Windows)
	var cursor uint64
	detailed := func(sp sampling.Span) error {
		res, err := acc.Offload(widx.OffloadRequest{
			KeyBase:    inst.ProbeKeyBase() + sp.Start*8,
			KeyCount:   sp.Len(),
			StartCycle: cursor,
		})
		if err != nil {
			return err
		}
		cursor += res.TotalCycles
		stream = append(stream, res.Matches...)
		if sp.Kind != sampling.Measure {
			return nil
		}
		wins = append(wins, windowSample{cycles: res.TotalCycles, tuples: res.Tuples, mshr: res.MemStats.MeanMSHROccupancy()})
		addOffloadResult(agg, res)
		return nil
	}
	ff := func(sp sampling.Span) error {
		stream = append(stream, matchSegment(refMatches, bounds, sp.Start, sp.End)...)
		return c.ffSpan(hier, phaseKey, traces, sp)
	}
	if c.SampleFullDetail {
		ff = detailed
	}
	if err := plan.Run(ff, detailed); err != nil {
		return nil, nil, err
	}
	if err := verifySampledStream(fmt.Sprintf("%s walker", inst.Kind()), stream, refMatches); err != nil {
		return nil, nil, err
	}
	agg.Matches = stream
	return agg, wins, nil
}

// RunZoo runs the cross-structure study. Structures fan out across workers
// (each builds or fetches its own image), design points within a structure
// fan out in turn, and every Widx point's match stream is verified
// bit-identical to the structure's software reference — a mismatch fails
// the run rather than reporting timings for wrong results.
func (c Config) RunZoo(opt ZooOptions) (*ZooExperiment, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	kinds := opt.Structures
	if len(kinds) == 0 {
		kinds = structures.Kinds()
	}
	perKind := make([]ZooStructureResult, len(kinds))
	perKindSampling := make([]*sampling.Report, len(kinds))
	inner := c.InnerConfig(len(kinds))
	if err := c.RunTasks(len(kinds), func(i int) error {
		as, inst, phaseKey, err := c.zooPhase(c.zooBuildConfig(kinds[i], opt.Span))
		if err != nil {
			return err
		}
		refMatches, traces := inst.Reference()
		refFP := structures.Fingerprint(refMatches)
		plan := c.samplePlan(inst.ProbeCount())
		var bounds []int
		if c.sampling() {
			bounds = inst.MatchBounds()
		}
		var oooWins []windowSample
		widxWins := make([][]windowSample, len(c.Walkers))

		// Result regions for every design point first, in walker order, then
		// all clones — the sequential allocation order that keeps parallel
		// runs byte-identical (see runner.go).
		resultBases := make([]uint64, len(c.Walkers))
		for j, w := range c.Walkers {
			resultBases[j] = as.AllocAligned(fmt.Sprintf("zoo.results.w%d", w),
				uint64(len(refMatches))*8+64)
		}
		spaces := make([]*vm.AddressSpace, len(c.Walkers))
		for j := range spaces {
			if inner.parallelism() <= 1 {
				spaces[j] = as
			} else {
				spaces[j] = as.Clone()
			}
		}

		var ooo cores.Result
		points := make([]ZooPoint, len(c.Walkers))
		if err := inner.RunTasks(1+len(c.Walkers), func(j int) error {
			if j == 0 {
				bph := &indexPhase{traces: traces, warmKey: phaseKey}
				if c.sampling() {
					r, wins, err := inner.runBaselineSampled(bph, oooConfig(), plan)
					if err != nil {
						return err
					}
					ooo = r
					oooWins = wins
					return nil
				}
				r, err := inner.runBaseline(bph, oooConfig())
				if err != nil {
					return err
				}
				ooo = r
				return nil
			}
			w := c.Walkers[j-1]
			var res *widx.OffloadResult
			if c.sampling() {
				var wins []windowSample
				res, wins, err = inner.runZooWidxSampled(inst, spaces[j-1], resultBases[j-1], w, opt.Prog,
					plan, refMatches, bounds, traces, phaseKey)
				if err != nil {
					return err
				}
				widxWins[j-1] = wins
			} else {
				res, err = inner.runZooWidx(inst, spaces[j-1], resultBases[j-1], w, opt.Prog)
				if err != nil {
					return err
				}
				if got := structures.Fingerprint(res.Matches); got != refFP {
					return fmt.Errorf("sim: %s walker output diverged from the software reference (%d matches fp %#x, want %d fp %#x)",
						kinds[i], len(res.Matches), got, len(refMatches), refFP)
				}
			}
			points[j-1] = ZooPoint{
				Walkers:        w,
				CyclesPerTuple: res.CyclesPerTuple(),
				Breakdown:      scaleBreakdown(res.WalkerTotal, w, res.Tuples),
				Raw:            rawDetail(res),
			}
			return nil
		}); err != nil {
			return err
		}
		for j := range points {
			points[j].Speedup = ooo.CyclesPerTuple() / points[j].CyclesPerTuple
		}
		if c.sampling() {
			rep := sampling.NewReport(plan)
			rep.FingerprintVerified = len(c.Walkers) > 0
			rep.Add(sampledMetricName("ooo", metricCPT), cptSeries(oooWins))
			for j, w := range c.Walkers {
				addSampledPoint(rep, fmt.Sprintf("%dw", w), oooWins, widxWins[j])
			}
			perKindSampling[i] = rep
		}
		perKind[i] = ZooStructureResult{
			Structure:         kinds[i],
			Geometry:          inst.Geometry(),
			Probes:            inst.ProbeCount(),
			Matches:           len(refMatches),
			Fingerprint:       refFP,
			OoOCyclesPerTuple: ooo.CyclesPerTuple(),
			Points:            points,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	exp := &ZooExperiment{Structures: perKind}
	for i, kind := range kinds {
		rep := perKindSampling[i]
		if rep == nil {
			continue
		}
		if exp.Sampling == nil {
			// Seed with the first structure's plan header; metric names carry
			// the per-structure context instead.
			hdr := *rep
			hdr.Metrics = nil
			hdr.FingerprintVerified = false
			exp.Sampling = &hdr
		}
		exp.Sampling.Merge(kind.String()+": ", rep)
	}
	return exp, nil
}

// SamplingReport implements SamplingReporter.
func (e *ZooExperiment) SamplingReport() *sampling.Report { return e.Sampling }

// SampledMetricValues returns every structure's full-run values under the
// merged report's prefixed metric names.
func (e *ZooExperiment) SampledMetricValues() map[string]float64 {
	m := make(map[string]float64)
	for _, s := range e.Structures {
		prefix := s.Structure.String() + ": "
		m[prefix+sampledMetricName("ooo", metricCPT)] = s.OoOCyclesPerTuple
		for _, p := range s.Points {
			wp := prefix + fmt.Sprintf("%dw", p.Walkers)
			m[sampledMetricName(wp, metricCPT)] = p.CyclesPerTuple
			m[sampledMetricName(wp, metricSpeedup)] = p.Speedup
			if p.Raw != nil {
				m[sampledMetricName(wp, metricMSHR)] = p.Raw.MemStats.MeanMSHROccupancy()
			}
		}
	}
	return m
}
