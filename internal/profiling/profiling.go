// Package profiling wires the standard runtime/pprof file profiles behind
// the CLIs' -cpuprofile/-memprofile flags, so a slow sweep or a heavy
// allocation site can be pinned down with `go tool pprof` without bespoke
// instrumentation in every command.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile (cpuPath) and/or schedules a heap profile
// (memPath); either may be empty to skip. The returned stop function ends
// the CPU profile and writes the heap snapshot — call it exactly once,
// normally via defer, at process end. Profile-write failures at stop time
// are reported on stderr rather than returned: by then the command's real
// work has finished and its exit status should reflect that work.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: write heap profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
	}, nil
}
