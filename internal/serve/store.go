package serve

import (
	"encoding/json"
	"fmt"
	"runtime/debug"

	"widx/internal/exp"
	"widx/internal/sim"
	"widx/internal/warmstate"
)

// This file is the persistent result cache: finished experiment points,
// content-addressed by (build fingerprint, resolved config, resolved
// params) on a warmstate.DiskStore, so resubmitting a sweep — or a sweep
// that shares points with an earlier one — is served from disk with zero
// re-simulations.
//
// Cache-key definition (also documented in the README):
//
//   - build fingerprint: module version + VCS revision (+ dirty marker)
//     from the binary's build info. A new commit invalidates every entry;
//     builds from the same dirty tree share entries (use a fresh -store
//     directory when that matters).
//   - experiment: the canonical registry name.
//   - resolved config: the JSON of the point's fully resolved sim.Config
//     with Parallelism zeroed — worker-pool width is proven
//     result-invariant by the repo's determinism tests, and a cache keyed
//     on it would miss across -parallel values for no reason. Every other
//     config field (scale, sample, topology, strict-order, ...) is in the
//     key; fields excluded from the manifest JSON (warm cache, context)
//     are excluded here for the same reason.
//   - resolved params: the point's full parameter set (defaults filled
//     in), rendered in sorted key order.
//
// The stored value is the point's two byte-preserved encodings (text +
// results JSON) — exactly what crosses the wire — so a hit reconstructs
// an exp.RawResult and the report stays byte-identical to a cold run.

// resultEnvelope is the stored payload of one finished point.
type resultEnvelope struct {
	Text    string          `json:"text"`
	Results json.RawMessage `json:"results"`
}

// ResultStore wraps the disk store with the experiment-point schema. A
// nil-disk store is a valid always-miss store (persistence disabled).
type ResultStore struct {
	disk *warmstate.DiskStore
}

// NewResultStore opens the persistent store under dir; an empty dir
// disables persistence (every lookup misses).
func NewResultStore(dir string) (*ResultStore, error) {
	if dir == "" {
		return &ResultStore{}, nil
	}
	disk, err := warmstate.OpenDiskStore(dir)
	if err != nil {
		return nil, err
	}
	return &ResultStore{disk: disk}, nil
}

// Enabled reports whether the store persists anything.
func (s *ResultStore) Enabled() bool { return s.disk != nil }

// Lookup returns the stored envelope for key, if any.
func (s *ResultStore) Lookup(key string) (resultEnvelope, bool, error) {
	var env resultEnvelope
	if s.disk == nil {
		return env, false, nil
	}
	data, ok, err := s.disk.Get(key)
	if err != nil || !ok {
		return env, false, err
	}
	if err := json.Unmarshal(data, &env); err != nil {
		// A committed entry that does not parse is a store-schema bug,
		// not a miss to silently re-simulate over.
		return env, false, fmt.Errorf("serve: result store entry for %q is corrupt: %w", key, err)
	}
	return env, true, nil
}

// Save stores a finished point's envelope under key.
func (s *ResultStore) Save(key string, env resultEnvelope) error {
	if s.disk == nil {
		return nil
	}
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("serve: encoding result envelope: %w", err)
	}
	return s.disk.Put(key, data)
}

// Stats reports the store's counters for /statusz.
func (s *ResultStore) Stats() *StoreStats {
	if s.disk == nil {
		return nil
	}
	hits, misses := s.disk.Stats()
	n, err := s.disk.Len()
	if err != nil {
		n = -1
	}
	return &StoreStats{Hits: hits, Misses: misses, Entries: n}
}

// Verify checks every committed entry's integrity (no partial entries).
func (s *ResultStore) Verify() error {
	if s.disk == nil {
		return nil
	}
	return s.disk.Verify()
}

// PointKey is the content address of one experiment point. cfg must be
// the job's base harness config; the point's own common knobs (scale,
// mshrs, ...) are applied from p here, so the key is identical whether
// the point runs alone, in a full grid, or in any shard of it.
func PointKey(build string, e exp.Experiment, cfg sim.Config, p exp.Params) (string, error) {
	resolved, err := exp.ApplyConfig(cfg, p)
	if err != nil {
		return "", err
	}
	resolved.Parallelism = 0 // result-invariant; see the key definition above
	cfgJSON, err := json.Marshal(resolved)
	if err != nil {
		return "", fmt.Errorf("serve: encoding config for cache key: %w", err)
	}
	return warmstate.NewFingerprint("result/v1").
		Field("build", build).
		Field("experiment", e.Name()).
		Field("config", string(cfgJSON)).
		Field("params", p). // %v renders maps in sorted key order
		Key(), nil
}

// BuildFingerprint identifies the simulator build for cache keys: the
// main module's version plus the VCS revision and dirty marker when the
// build was stamped with them ("devel" builds without VCS info fall back
// to the module version alone, which still changes on release and is
// stable within one binary).
func BuildFingerprint() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	fp := bi.Main.Path + "@" + bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			fp += "+" + s.Value
		case "vcs.modified":
			if s.Value == "true" {
				fp += "+dirty"
			}
		}
	}
	return fp
}
