package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"widx/internal/exp"
	"widx/internal/sim"
	"widx/internal/warmstate"
)

// Options configures a Server.
type Options struct {
	// StoreDir roots the persistent result store; empty disables
	// persistence (every point simulates).
	StoreDir string
	// Workers, when non-empty, puts the server in coordinator mode: jobs
	// are sharded across (sweeps) or forwarded to (single runs) these
	// base URLs instead of simulating locally.
	Workers []string
	// WarmCache shares one in-memory warm-state cache across every job
	// this process executes (the PR 7 cache, now living as long as the
	// daemon); WarmVerify enables its content-hash rebuild checks.
	WarmCache  bool
	WarmVerify bool
	// WarmStoreDir persists warm-state snapshots (fast-forward
	// checkpoints, CMP warm-ups) under this directory, so a restarted
	// daemon restores them instead of re-warming. Requires WarmCache.
	WarmStoreDir string
	// Parallel is the default sim worker-pool width for requests that do
	// not pin one (0 = NumCPU), mirroring the CLI's -parallel default.
	Parallel int
	// QueueDepth bounds the job queue (0 = 256). Submissions beyond it
	// are rejected with 503 rather than buffered without bound.
	QueueDepth int
	// Logf, when non-nil, receives one line per job transition.
	Logf func(format string, args ...any)
}

// Server executes submitted experiment jobs one at a time (each job fans
// out internally through the sim worker pool) and serves their status,
// progress streams and finished artifacts over HTTP.
type Server struct {
	opts      Options
	build     string
	store     *ResultStore
	warm      *warmstate.Cache
	warmStore *warmstate.DiskStore

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // job IDs in submission order
	nextID int
	closed bool

	queue     chan *job
	idle      sync.WaitGroup // executor's in-flight job
	simulated atomic.Uint64
	sampled   atomic.Uint64
}

// New builds a Server and starts its executor.
func New(opts Options) (*Server, error) {
	store, err := NewResultStore(opts.StoreDir)
	if err != nil {
		return nil, err
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 256
	}
	s := &Server{
		opts:  opts,
		build: BuildFingerprint(),
		store: store,
		jobs:  map[string]*job{},
		queue: make(chan *job, depth),
	}
	if opts.WarmCache || opts.WarmVerify {
		s.warm = warmstate.New()
		s.warm.SetVerify(opts.WarmVerify)
	}
	if opts.WarmStoreDir != "" {
		if s.warm == nil {
			return nil, fmt.Errorf("serve: WarmStoreDir needs WarmCache")
		}
		ws, err := warmstate.OpenDiskStore(opts.WarmStoreDir)
		if err != nil {
			return nil, err
		}
		s.warmStore = ws
	}
	s.idle.Add(1)
	go s.executor()
	return s, nil
}

// Close cancels every job, stops the executor, and waits for the
// in-flight job (if any) to unwind.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, id := range s.order {
		s.jobs[id].cancel()
	}
	close(s.queue)
	s.mu.Unlock()
	s.idle.Wait()
}

// Store exposes the persistent result store (tests verify its integrity
// after cancellations).
func (s *Server) Store() *ResultStore { return s.store }

// Build returns the build fingerprint cache keys are scoped to.
func (s *Server) Build() string { return s.build }

// logf logs one line when Options.Logf is set.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// config materializes a request's harness configuration exactly like the
// CLI does its flags: sim.DefaultConfig with the pinned knobs applied.
func (s *Server) config(spec ConfigSpec) sim.Config {
	cfg := sim.DefaultConfig()
	if spec.Scale != 0 {
		cfg.Scale = spec.Scale
	}
	if spec.Sample != nil {
		cfg.SampleProbes = *spec.Sample
	}
	if spec.SampleWindows != 0 {
		cfg.SampleWindows = spec.SampleWindows
	}
	if spec.SampleWarmup != nil {
		cfg.SampleWarmup = uint64(*spec.SampleWarmup)
	}
	if spec.SamplePeriod != 0 {
		cfg.SamplePeriod = uint64(spec.SamplePeriod)
	}
	switch {
	case spec.Parallel != 0:
		cfg.Parallelism = spec.Parallel
	case s.opts.Parallel != 0:
		cfg.Parallelism = s.opts.Parallel
	default:
		cfg.Parallelism = runtime.NumCPU()
	}
	cfg.StrictMemOrder = spec.StrictOrder
	return cfg
}

// validate rejects malformed submissions synchronously (400), so a typo
// never becomes a queued-then-failed job.
func (s *Server) validate(req SubmitRequest) error {
	e, ok := exp.Lookup(req.Experiment)
	if !ok {
		return fmt.Errorf("unknown experiment %q", req.Experiment)
	}
	// The sampling knobs convert to unsigned config fields; reject
	// negatives here rather than let the conversion wrap.
	if req.Config.SampleWindows < 0 {
		return fmt.Errorf("sample_windows must be non-negative (0 = sampling off)")
	}
	if req.Config.SampleWarmup != nil && *req.Config.SampleWarmup < 0 {
		return fmt.Errorf("sample_warmup must be non-negative")
	}
	if req.Config.SamplePeriod < 0 {
		return fmt.Errorf("sample_period must be non-negative (0 = server default)")
	}
	if len(req.Sweep) == 0 {
		if len(req.Indices) > 0 {
			return fmt.Errorf("indices need a sweep grid")
		}
		_, err := exp.Resolve(e, req.Set)
		return err
	}
	pl, err := exp.PlanSweep(e, s.config(req.Config), req.Set, req.Sweep)
	if err != nil {
		return err
	}
	if len(req.Indices) > 0 {
		if len(s.opts.Workers) > 0 {
			return fmt.Errorf("a coordinator does not accept shard (indices) jobs")
		}
		if err := pl.CheckIndices(req.Indices); err != nil {
			return err
		}
	}
	return nil
}

// Submit validates and enqueues a job.
func (s *Server) Submit(req SubmitRequest) (JobStatus, error) {
	if err := s.validate(req); err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("server is shutting down")
	}
	s.nextID++
	j := newJob(fmt.Sprintf("j%06d", s.nextID), req)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("job queue is full")
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.logf("serve: job %s queued: %s", j.id, req.Experiment)
	return j.status(), nil
}

// lookup resolves a job ID.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// executor drains the queue, one job at a time: a design-space sweep
// saturates the machine through the sim worker pool on its own, so
// running jobs concurrently would only interleave their timing, not
// improve throughput.
func (s *Server) executor() {
	defer s.idle.Done()
	for j := range s.queue {
		if !j.tryStart() {
			continue // cancelled while queued
		}
		s.logf("serve: job %s running", j.id)
		var err error
		if len(s.opts.Workers) > 0 {
			err = s.runCoordinated(j)
		} else {
			err = s.runLocal(j)
		}
		switch {
		case err == nil:
			j.setState(JobDone)
		case errors.Is(err, context.Canceled) || j.ctx.Err() != nil:
			j.fail(err)
			j.setState(JobCancelled)
		default:
			j.fail(err)
			j.setState(JobFailed)
		}
		st := j.status()
		s.logf("serve: job %s %s (%d/%d points, %d cached)", j.id, st.State, st.Done, st.Total, st.Cached)
	}
}

// tryStart transitions queued -> running; false if the job was cancelled
// while queued.
func (j *job) tryStart() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	j.events = append(j.events, Event{Type: "state", State: JobRunning, Done: j.done, Total: j.total})
	j.cond.Broadcast()
	return true
}

// tryCancel cancels the job's context and, if it never started, marks it
// terminal immediately.
func (j *job) tryCancel() {
	j.cancel()
	j.mu.Lock()
	if j.state == JobQueued {
		j.state = JobCancelled
		j.finished = time.Now()
		j.events = append(j.events, Event{Type: "state", State: JobCancelled, Done: j.done, Total: j.total})
		j.cond.Broadcast()
	}
	j.mu.Unlock()
}

// runLocal executes a job in this process: single runs and (possibly
// index-restricted) sweeps, each point first consulted against the
// persistent result store.
func (s *Server) runLocal(j *job) error {
	e, _ := exp.Lookup(j.req.Experiment)
	cfg := s.config(j.req.Config)
	cfg.Ctx = j.ctx
	cfg.WarmCache = s.warm
	cfg.WarmStore = s.warmStore
	if len(j.req.Sweep) == 0 {
		return s.runSingle(j, e, cfg)
	}
	return s.runSweep(j, e, cfg)
}

// runSingle executes a one-point job.
func (s *Server) runSingle(j *job, e exp.Experiment, cfg sim.Config) error {
	j.setTotal(1)
	p, err := exp.Resolve(e, j.req.Set)
	if err != nil {
		return err
	}
	key, err := PointKey(s.build, e, cfg, p)
	if err != nil {
		return err
	}
	env, hit, err := s.store.Lookup(key)
	if err != nil {
		return err
	}
	var out *exp.RunOutput
	if hit {
		runCfg, err := exp.ApplyConfig(cfg, p)
		if err != nil {
			return err
		}
		out = &exp.RunOutput{Experiment: e, Params: p, Config: runCfg,
			Result: exp.RawResult{Report: env.Text, Payload: env.Results}}
	} else {
		out, err = exp.Run(e, cfg, j.req.Set)
		if err != nil {
			return err
		}
		raw, err := out.Result.JSON()
		if err != nil {
			return err
		}
		env = resultEnvelope{Text: out.Text(), Results: raw}
		if err := s.store.Save(key, env); err != nil {
			return err
		}
		s.simulated.Add(1)
		s.countSampled(out.Result)
	}
	manifest, err := out.Manifest()
	if err != nil {
		return err
	}
	data, err := manifest.Encode()
	if err != nil {
		return err
	}
	j.addPoint(PointResult{Index: 0, Params: p, Text: env.Text, Results: env.Results, Cached: hit})
	j.setArtifacts(data, []byte(out.Text()))
	return nil
}

// runSweep executes a sweep job (the whole grid, or the shard named by
// req.Indices): cached points are restored from the store, the rest run
// through the plan with per-point persistence and progress.
func (s *Server) runSweep(j *job, e exp.Experiment, cfg sim.Config) error {
	pl, err := exp.PlanSweep(e, cfg, j.req.Set, j.req.Sweep)
	if err != nil {
		return err
	}
	indices := j.req.Indices
	if len(indices) == 0 {
		indices = make([]int, len(pl.Points))
		for i := range indices {
			indices[i] = i
		}
	} else if err := pl.CheckIndices(indices); err != nil {
		return err
	}
	j.setTotal(len(indices))

	keys := make(map[int]string, len(indices))
	results := make([]exp.Result, len(pl.Points))
	var missing []int
	for _, i := range indices {
		key, err := PointKey(s.build, e, cfg, pl.Points[i])
		if err != nil {
			return err
		}
		keys[i] = key
		env, hit, err := s.store.Lookup(key)
		if err != nil {
			return err
		}
		if !hit {
			missing = append(missing, i)
			continue
		}
		results[i] = exp.RawResult{Report: env.Text, Payload: env.Results}
		j.addPoint(PointResult{Index: i, Params: pl.Points[i], Text: env.Text, Results: env.Results, Cached: true})
	}

	if len(missing) > 0 {
		var hookMu sync.Mutex
		var hookErr error
		if _, err := pl.Run(cfg, missing, func(i int, r exp.SweepRun) {
			raw, err := r.Result.JSON()
			if err == nil {
				err = s.store.Save(keys[i], resultEnvelope{Text: r.Result.Text(), Results: raw})
			}
			if err != nil {
				hookMu.Lock()
				if hookErr == nil {
					hookErr = err
				}
				hookMu.Unlock()
				return
			}
			s.simulated.Add(1)
			s.countSampled(r.Result)
			results[i] = r.Result
			j.addPoint(PointResult{Index: i, Params: r.Params, Text: r.Result.Text(), Results: raw, Cached: false})
		}); err != nil {
			return err
		}
		if hookErr != nil {
			return hookErr
		}
	}

	if len(j.req.Indices) > 0 {
		// A shard has no full-grid report; its results travel via /points.
		return nil
	}
	out, err := pl.Output(results)
	if err != nil {
		return err
	}
	manifest, err := out.Manifest()
	if err != nil {
		return err
	}
	data, err := manifest.Encode()
	if err != nil {
		return err
	}
	j.setArtifacts(data, []byte(out.Text()))
	return nil
}

// countSampled bumps the sampled-point counter when a freshly simulated
// result ran under systematic sampling (it carries a sampling report).
func (s *Server) countSampled(r exp.Result) {
	if sr, ok := r.(sim.SamplingReporter); ok && sr.SamplingReport() != nil {
		s.sampled.Add(1)
	}
}

// statusz assembles the /statusz payload.
func (s *Server) statusz() Statusz {
	st := Statusz{
		Build:           s.build,
		Mode:            "worker",
		Jobs:            map[string]int{},
		SimulatedPoints: s.simulated.Load(),
		SampledPoints:   s.sampled.Load(),
		ResultStore:     s.store.Stats(),
		Workers:         s.opts.Workers,
	}
	if len(s.opts.Workers) > 0 {
		st.Mode = "coordinator"
	}
	if s.warm != nil {
		hits, misses := s.warm.Stats()
		st.WarmCache = &CacheStats{Hits: hits, Misses: misses}
	}
	s.mu.Lock()
	for _, id := range s.order {
		st.Jobs[s.jobs[id].status().State]++
	}
	s.mu.Unlock()
	return st
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		var infos []ExperimentInfo
		for _, name := range exp.Names() {
			e, _ := exp.Lookup(name)
			infos = append(infos, ExperimentInfo{
				Name:     e.Name(),
				Aliases:  exp.Aliases(e.Name()),
				Describe: e.Describe(),
				Params:   exp.AllParams(e),
			})
		}
		writeJSON(w, http.StatusOK, infos)
	})
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		st, err := s.Submit(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		ids := append([]string(nil), s.order...)
		s.mu.Unlock()
		statuses := make([]JobStatus, 0, len(ids))
		for _, id := range ids {
			if j, ok := s.lookup(id); ok {
				statuses = append(statuses, j.status())
			}
		}
		writeJSON(w, http.StatusOK, statuses)
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.withJob(func(w http.ResponseWriter, r *http.Request, j *job) {
		writeJSON(w, http.StatusOK, j.status())
	}))
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.withJob(func(w http.ResponseWriter, r *http.Request, j *job) {
		j.tryCancel()
		writeJSON(w, http.StatusOK, j.status())
	}))
	mux.HandleFunc("GET /api/v1/jobs/{id}/manifest", s.withJob(func(w http.ResponseWriter, r *http.Request, j *job) {
		manifest, _ := j.artifacts()
		if manifest == nil {
			writeError(w, http.StatusConflict, fmt.Errorf("job %s has no manifest (state %s)", j.id, j.status().State))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(manifest)
	}))
	mux.HandleFunc("GET /api/v1/jobs/{id}/text", s.withJob(func(w http.ResponseWriter, r *http.Request, j *job) {
		_, text := j.artifacts()
		if text == nil {
			writeError(w, http.StatusConflict, fmt.Errorf("job %s has no report (state %s)", j.id, j.status().State))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(text)
	}))
	mux.HandleFunc("GET /api/v1/jobs/{id}/points", s.withJob(func(w http.ResponseWriter, r *http.Request, j *job) {
		writeJSON(w, http.StatusOK, j.pointsSnapshot())
	}))
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.withJob(func(w http.ResponseWriter, r *http.Request, j *job) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		_ = j.stream(r.Context(), func(ev Event) error {
			if err := enc.Encode(ev); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
	}))
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.statusz())
	})
	return mux
}

// withJob resolves the {id} path value.
func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, *job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.lookup(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		h(w, r, j)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
