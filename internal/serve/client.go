package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client speaks the widxserve HTTP API. Its zero HTTP client has no
// global timeout — jobs run for minutes; per-call contexts govern
// lifetimes instead.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a widxserve base URL (e.g. "http://127.0.0.1:8091").
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// do issues one JSON round-trip. A non-2xx response is decoded from the
// server's {"error": ...} envelope.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	body, err := c.raw(ctx, method, path, in)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("serve client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// raw issues one round-trip and returns the response body bytes.
func (c *Client) raw(ctx context.Context, method, path string, in any) ([]byte, error) {
	var reqBody io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("serve client: encoding request: %w", err)
		}
		reqBody = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reqBody)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("serve client: %s %s: %s", method, path, e.Error)
		}
		return nil, fmt.Errorf("serve client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	return body, nil
}

// Submit enqueues a job.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/api/v1/jobs", req, &st)
	return st, err
}

// Status polls one job.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/api/v1/jobs/"+id, nil, &st)
	return st, err
}

// Manifest fetches a finished job's manifest bytes verbatim.
func (c *Client) Manifest(ctx context.Context, id string) ([]byte, error) {
	return c.raw(ctx, http.MethodGet, "/api/v1/jobs/"+id+"/manifest", nil)
}

// Text fetches a finished job's text report verbatim.
func (c *Client) Text(ctx context.Context, id string) ([]byte, error) {
	return c.raw(ctx, http.MethodGet, "/api/v1/jobs/"+id+"/text", nil)
}

// Points fetches a job's finished points, sorted by grid index.
func (c *Client) Points(ctx context.Context, id string) ([]PointResult, error) {
	var pts []PointResult
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id+"/points", nil, &pts)
	return pts, err
}

// Experiments fetches the registry catalog.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	var infos []ExperimentInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/experiments", nil, &infos)
	return infos, err
}

// Statusz fetches the server counters.
func (c *Client) Statusz(ctx context.Context) (Statusz, error) {
	var st Statusz
	err := c.do(ctx, http.MethodGet, "/statusz", nil, &st)
	return st, err
}

// Watch streams a job's events, invoking onEvent for each, until the job
// reaches a terminal state; it then returns the final status. If the
// event stream drops mid-job (worker restart, proxy timeout), Watch
// falls back to polling until it can re-attach or the job finishes.
func (c *Client) Watch(ctx context.Context, id string, onEvent func(Event)) (JobStatus, error) {
	for {
		terminal, err := c.streamEvents(ctx, id, onEvent)
		if err != nil && ctx.Err() != nil {
			return JobStatus{}, ctx.Err()
		}
		if terminal {
			return c.Status(ctx, id)
		}
		// Stream dropped without a terminal event: poll, then retry.
		st, serr := c.Status(ctx, id)
		if serr != nil {
			return JobStatus{}, serr
		}
		if Terminal(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// streamEvents consumes one /events stream. It reports whether a
// terminal state event was seen.
func (c *Client) streamEvents(ctx context.Context, id string, onEvent func(Event)) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("serve client: events stream: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return false, fmt.Errorf("serve client: decoding event: %w", err)
		}
		if onEvent != nil {
			onEvent(ev)
		}
		if ev.Type == "state" && Terminal(ev.State) {
			return true, nil
		}
	}
	return false, sc.Err()
}
