// Package serve turns the experiment registry into a long-running sweep
// service: an HTTP+JSON daemon whose API mirrors the cmd/experiments
// surface (-run/-set/-sweep/-parallel), a persistent content-addressed
// result store so a repeated sweep point is a disk hit instead of a
// re-simulation, and a coordinator mode that shards a sweep grid across
// worker processes and merges the index-tagged results into a report
// byte-identical to a single-process run.
//
// # API
//
//	GET    /api/v1/experiments         the registry catalog (names, params, defaults)
//	POST   /api/v1/jobs                submit a run or sweep (SubmitRequest) -> JobStatus
//	GET    /api/v1/jobs                list jobs, newest last
//	GET    /api/v1/jobs/{id}           poll one job's status and progress
//	DELETE /api/v1/jobs/{id}           cancel a queued or running job
//	GET    /api/v1/jobs/{id}/events    NDJSON stream of per-point progress until terminal
//	GET    /api/v1/jobs/{id}/manifest  the finished widx-experiment-manifest/v1 (byte-identical to the CLI's -json)
//	GET    /api/v1/jobs/{id}/text      the finished text report (byte-identical to the CLI's stdout)
//	GET    /api/v1/jobs/{id}/points    index-tagged per-point results (what a coordinator merges)
//	GET    /statusz                    server counters: result store, warm cache, simulated/sampled points
//
// # Determinism boundary
//
// The serve layer schedules, caches and transports; it never computes
// results. Manifests and reports are produced by internal/exp +
// internal/sim (the widxlint nondet core) and cross this package only as
// opaque bytes (exp.RawResult is byte-preserving), so the wall-clock
// timestamps that job metadata legitimately carries cannot reach them.
// That boundary is why internal/serve is not in the nondet analyzer's
// core package list — see the analyzer's doc.
package serve

import (
	"encoding/json"
	"time"

	"widx/internal/exp"
)

// SubmitRequest is the POST /api/v1/jobs body: one experiment run or one
// full-factorial sweep, mirroring the CLI's -run/-set/-sweep flags.
type SubmitRequest struct {
	// Experiment is a registered experiment name or historical alias
	// (the CLI's -run).
	Experiment string `json:"experiment"`
	// Set holds parameter overrides (the CLI's repeated -set k=v).
	Set map[string]string `json:"set,omitempty"`
	// Sweep lists the sweep axes (the CLI's repeated -sweep k=v1,v2,...);
	// empty means a single run.
	Sweep []exp.Axis `json:"sweep,omitempty"`
	// Config carries the harness-level knobs (the CLI's top-level flags).
	Config ConfigSpec `json:"config,omitempty"`
	// Indices restricts a sweep to these grid indices — a coordinator
	// shard. nil runs the whole grid. Index-restricted jobs expose their
	// results on /points only (there is no full-grid manifest to build).
	Indices []int `json:"indices,omitempty"`
}

// ConfigSpec is the harness configuration of a request. Zero values mean
// "the server's default", which matches the CLI's flag defaults, so a
// request that pins nothing reproduces `experiments -run <name>`.
type ConfigSpec struct {
	// Scale is the workload scale (CLI -scale; 0 = default 1/64).
	Scale float64 `json:"scale,omitempty"`
	// Sample caps probes simulated in detail (CLI -sample). Pointer
	// because 0 ("all probes") is a meaningful pin; nil = default 20000.
	Sample *int `json:"sample,omitempty"`
	// SampleWindows turns on systematic sampled simulation: the number of
	// detailed windows per design point (CLI -sampling/-sample-windows;
	// 0 = off, matching the CLI without -sampling).
	SampleWindows int `json:"sample_windows,omitempty"`
	// SampleWarmup is the detailed-but-unmeasured probes per window.
	// Pointer because 0 ("no warmup") is a meaningful pin; nil = default 64.
	SampleWarmup *int `json:"sample_warmup,omitempty"`
	// SamplePeriod is the measured probes per window (0 = default 256).
	SamplePeriod int `json:"sample_period,omitempty"`
	// Parallel is the worker-pool width (CLI -parallel; 0 = NumCPU).
	Parallel int `json:"parallel,omitempty"`
	// StrictOrder enables the monotonic memory-order debug assertion
	// (CLI -strict-order).
	StrictOrder bool `json:"strict_order,omitempty"`
}

// Job states.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobStatus is the poll surface of one job. All timestamps are job
// metadata: they never appear in manifests or results.
type JobStatus struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Experiment string `json:"experiment"`
	// Total/Done/Cached count grid points (a single run is a 1-point
	// grid). Cached points were served from the persistent result store
	// without simulating.
	Total  int    `json:"total_points"`
	Done   int    `json:"done_points"`
	Cached int    `json:"cached_points"`
	Error  string `json:"error,omitempty"`
	// Shard marks an index-restricted job (results on /points only).
	Shard    bool       `json:"shard,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// Terminal reports whether a state is final.
func Terminal(state string) bool {
	return state == JobDone || state == JobFailed || state == JobCancelled
}

// PointResult is one finished grid point on the wire: its grid index, its
// fully resolved parameter set, and the two byte-preserved encodings of
// its result. A coordinator merges these by Index; nothing else crosses
// processes.
type PointResult struct {
	Index   int               `json:"index"`
	Params  map[string]string `json:"params"`
	Text    string            `json:"text"`
	Results json.RawMessage   `json:"results"`
	Cached  bool              `json:"cached"`
}

// Event is one line of the /events NDJSON stream.
type Event struct {
	// Type is "point" (one grid point finished) or "state" (the job
	// changed state; terminal states end the stream).
	Type   string `json:"type"`
	State  string `json:"state,omitempty"`
	Index  int    `json:"index,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
}

// ExperimentInfo is one catalog entry of GET /api/v1/experiments.
type ExperimentInfo struct {
	Name     string          `json:"name"`
	Aliases  []string        `json:"aliases,omitempty"`
	Describe string          `json:"describe"`
	Params   []exp.ParamSpec `json:"params"`
}

// StoreStats are the persistent result store's counters.
type StoreStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// CacheStats are the in-memory warm cache's counters.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// Statusz is the GET /statusz payload.
type Statusz struct {
	Build string `json:"build"`
	// Mode is "worker" or "coordinator".
	Mode string         `json:"mode"`
	Jobs map[string]int `json:"jobs"`
	// SimulatedPoints counts grid points this process actually simulated
	// (cache hits and coordinator-forwarded points excluded) — the "zero
	// re-simulations" assertion of the CI serve-smoke job reads this.
	SimulatedPoints uint64 `json:"simulated_points"`
	// SampledPoints counts the simulated points that ran under systematic
	// sampling (their results carry a sampling report); cache hits are
	// excluded like they are from SimulatedPoints.
	SampledPoints uint64      `json:"sampled_points"`
	ResultStore   *StoreStats `json:"result_store,omitempty"`
	WarmCache     *CacheStats `json:"warm_cache,omitempty"`
	Workers       []string    `json:"workers,omitempty"`
}
