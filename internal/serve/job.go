package serve

import (
	"context"
	"sort"
	"sync"
	"time"
)

// job is one submitted run or sweep. All mutable state is guarded by mu;
// cond broadcasts on every append to events and on every state change, so
// /events streamers and the executor's waiters block on the same signal.
type job struct {
	id  string
	req SubmitRequest

	ctx    context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	cond *sync.Cond

	state    string
	total    int
	done     int
	cached   int
	errText  string
	events   []Event
	points   []PointResult // index-tagged finished points, append order
	manifest []byte        // terminal artifacts of non-shard jobs
	text     []byte

	created  time.Time
	started  time.Time
	finished time.Time
}

func newJob(id string, req SubmitRequest) *job {
	j := &job{id: id, req: req, state: JobQueued, created: time.Now()}
	j.cond = sync.NewCond(&j.mu)
	j.ctx, j.cancel = context.WithCancel(context.Background())
	return j
}

// status snapshots the job for the poll surface.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		State:      j.state,
		Experiment: j.req.Experiment,
		Total:      j.total,
		Done:       j.done,
		Cached:     j.cached,
		Error:      j.errText,
		Shard:      len(j.req.Indices) > 0,
		Created:    j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// setState transitions the job and broadcasts. started/finished
// timestamps are job metadata only — they never reach manifests.
func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	switch state {
	case JobRunning:
		j.started = time.Now()
	case JobDone, JobFailed, JobCancelled:
		j.finished = time.Now()
	}
	j.events = append(j.events, Event{Type: "state", State: state, Done: j.done, Total: j.total})
	j.cond.Broadcast()
	j.mu.Unlock()
}

// setTotal records the grid size once planning resolved it.
func (j *job) setTotal(n int) {
	j.mu.Lock()
	j.total = n
	j.mu.Unlock()
}

// fail records the error text for the terminal state that follows.
func (j *job) fail(err error) {
	j.mu.Lock()
	j.errText = err.Error()
	j.mu.Unlock()
}

// addPoint records one finished grid point and its progress event.
// Called from worker goroutines in completion order; /points sorts by
// index before serving, so the externally visible order is deterministic.
func (j *job) addPoint(p PointResult) {
	j.mu.Lock()
	j.points = append(j.points, p)
	j.done++
	if p.Cached {
		j.cached++
	}
	j.events = append(j.events, Event{Type: "point", Index: p.Index, Cached: p.Cached, Done: j.done, Total: j.total})
	j.cond.Broadcast()
	j.mu.Unlock()
}

// mirrorProgress adopts a remote shard's progress counters (coordinator
// relaying worker events): done/cached are recomputed from all relays.
func (j *job) mirrorPoint(ev Event) {
	j.mu.Lock()
	j.done++
	if ev.Cached {
		j.cached++
	}
	j.events = append(j.events, Event{Type: "point", Index: ev.Index, Cached: ev.Cached, Done: j.done, Total: j.total})
	j.cond.Broadcast()
	j.mu.Unlock()
}

// setArtifacts stores the terminal manifest and text report.
func (j *job) setArtifacts(manifest, text []byte) {
	j.mu.Lock()
	j.manifest = manifest
	j.text = text
	j.mu.Unlock()
}

// artifacts returns the terminal artifacts (nil until done).
func (j *job) artifacts() (manifest, text []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.manifest, j.text
}

// pointsSnapshot returns the finished points sorted by grid index.
func (j *job) pointsSnapshot() []PointResult {
	j.mu.Lock()
	pts := append([]PointResult(nil), j.points...)
	j.mu.Unlock()
	sort.Slice(pts, func(a, b int) bool { return pts[a].Index < pts[b].Index })
	return pts
}

// stream invokes emit for every event, in order, blocking for new ones
// until a terminal state event has been delivered, emit fails, or ctx is
// cancelled. It is the /events handler's engine.
func (j *job) stream(ctx context.Context, emit func(Event) error) error {
	// Wake the cond waiter when the streaming client goes away.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	next := 0
	for {
		j.mu.Lock()
		for next >= len(j.events) && ctx.Err() == nil {
			j.cond.Wait()
		}
		batch := append([]Event(nil), j.events[next:]...)
		next += len(batch)
		j.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, ev := range batch {
			if err := emit(ev); err != nil {
				return err
			}
			if ev.Type == "state" && Terminal(ev.State) {
				return nil
			}
		}
	}
}
