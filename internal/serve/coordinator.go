package serve

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"time"

	"widx/internal/exp"
)

// This file is coordinator mode: a widxserve started with -workers does
// not simulate anything itself. Single runs are forwarded to a worker
// and their artifacts relayed verbatim; sweeps are planned locally, the
// grid striped round-robin across workers as index-restricted shard
// jobs, and the index-tagged points merged back through the same
// exp.SweepPlan — which is why the merged report is byte-identical to a
// single-process run: both sides expand the identical grid from the
// request alone, and results travel as byte-preserved RawResults.

// runCoordinated executes a job by delegating to s.opts.Workers.
func (s *Server) runCoordinated(j *job) error {
	if len(j.req.Sweep) == 0 {
		return s.forwardSingle(j)
	}
	return s.shardSweep(j)
}

// forwardSingle relays a one-point job to the first worker.
func (s *Server) forwardSingle(j *job) error {
	j.setTotal(1)
	c := NewClient(s.opts.Workers[0])
	st, err := c.Submit(j.ctx, j.req)
	if err != nil {
		return err
	}
	defer s.reapRemote(j, c, st.ID)
	st, err = c.Watch(j.ctx, st.ID, func(ev Event) {
		if ev.Type == "point" {
			j.mirrorPoint(ev)
		}
	})
	if err != nil {
		return err
	}
	if st.State != JobDone {
		return fmt.Errorf("worker job %s on %s: %s: %s", st.ID, s.opts.Workers[0], st.State, st.Error)
	}
	manifest, err := c.Manifest(j.ctx, st.ID)
	if err != nil {
		return err
	}
	text, err := c.Text(j.ctx, st.ID)
	if err != nil {
		return err
	}
	j.setArtifacts(manifest, text)
	return nil
}

// shardSweep splits a sweep grid round-robin across the workers (worker
// w runs grid indices i with i % W == w), waits for every shard, and
// merges the index-placed results into the full-grid report.
func (s *Server) shardSweep(j *job) error {
	e, _ := exp.Lookup(j.req.Experiment)
	pl, err := exp.PlanSweep(e, s.config(j.req.Config), j.req.Set, j.req.Sweep)
	if err != nil {
		return err
	}
	j.setTotal(len(pl.Points))

	workers := s.opts.Workers
	if len(workers) > len(pl.Points) {
		workers = workers[:len(pl.Points)]
	}
	chunks := make([][]int, len(workers))
	for i := range pl.Points {
		w := i % len(workers)
		chunks[w] = append(chunks[w], i)
	}

	results := make([]exp.Result, len(pl.Points))
	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := s.runShard(j, pl, workers[w], chunks[w], results); err != nil {
				errs[w] = fmt.Errorf("worker %s: %w", workers[w], err)
				j.cancel() // one failed shard aborts the others
			}
		}(w)
	}
	wg.Wait()
	if err := j.ctx.Err(); err != nil {
		// Prefer the shard error that triggered the abort, if any.
		for _, werr := range errs {
			if werr != nil {
				return werr
			}
		}
		return err
	}
	for _, werr := range errs {
		if werr != nil {
			return werr
		}
	}

	out, err := pl.Output(results)
	if err != nil {
		return err
	}
	manifest, err := out.Manifest()
	if err != nil {
		return err
	}
	data, err := manifest.Encode()
	if err != nil {
		return err
	}
	j.setArtifacts(data, []byte(out.Text()))
	return nil
}

// runShard submits one index-restricted shard to a worker, relays its
// progress, and places its points into results. Each point's wire params
// are cross-checked against the locally expanded grid, so a worker
// running a different build (skewed registry, changed defaults) fails
// the merge loudly instead of producing a silently mixed report.
func (s *Server) runShard(j *job, pl *exp.SweepPlan, worker string, indices []int, results []exp.Result) error {
	c := NewClient(worker)
	req := j.req
	req.Indices = indices
	st, err := c.Submit(j.ctx, req)
	if err != nil {
		return err
	}
	defer s.reapRemote(j, c, st.ID)
	st, err = c.Watch(j.ctx, st.ID, func(ev Event) {
		if ev.Type == "point" {
			j.mirrorPoint(ev)
		}
	})
	if err != nil {
		return err
	}
	if st.State != JobDone {
		return fmt.Errorf("shard job %s: %s: %s", st.ID, st.State, st.Error)
	}
	pts, err := c.Points(j.ctx, st.ID)
	if err != nil {
		return err
	}
	if len(pts) != len(indices) {
		return fmt.Errorf("shard job %s returned %d points, want %d", st.ID, len(pts), len(indices))
	}
	want := make(map[int]bool, len(indices))
	for _, i := range indices {
		want[i] = true
	}
	for _, pt := range pts {
		if !want[pt.Index] {
			return fmt.Errorf("shard job %s returned unexpected grid index %d", st.ID, pt.Index)
		}
		if !reflect.DeepEqual(pt.Params, map[string]string(pl.Points[pt.Index])) {
			return fmt.Errorf("shard job %s grid index %d params %v disagree with the local plan %v (worker build skew?)",
				st.ID, pt.Index, pt.Params, pl.Points[pt.Index])
		}
		results[pt.Index] = exp.RawResult{Report: pt.Text, Payload: pt.Results}
	}
	return nil
}

// reapRemote best-effort cancels a worker job when the coordinator job
// was cancelled, so aborted sweeps do not keep burning worker CPU.
func (s *Server) reapRemote(j *job, c *Client, id string) {
	if j.ctx.Err() == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Cancel(ctx, id); err != nil {
		s.logf("serve: cancelling remote job %s: %v", id, err)
	}
}
