package serve_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"widx/internal/exp"
	"widx/internal/serve"
	"widx/internal/sim"
	"widx/internal/warmstate"
)

// slowExperiment blocks until its run context is cancelled: the handle
// the cancellation tests use to catch a job mid-flight deterministically.
// It is test-only and excluded from the all-experiments manifest test.
const slowExperiment = "serveslow"

func init() {
	exp.Register(exp.NewExperiment(slowExperiment,
		"test-only: blocks until the run context is cancelled",
		nil,
		func(cfg sim.Config, p exp.Params) (exp.Result, error) {
			if cfg.Ctx == nil {
				return nil, fmt.Errorf("serveslow needs a run context")
			}
			select {
			case <-cfg.Ctx.Done():
				return nil, cfg.Ctx.Err()
			case <-time.After(30 * time.Second):
				return nil, fmt.Errorf("serveslow was never cancelled")
			}
		}))
}

// startServer runs a widxserve over HTTP and returns it with its base URL.
func startServer(t *testing.T, opts serve.Options) (*serve.Server, string) {
	t.Helper()
	s, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts.URL
}

// tinySpec is the request-side harness config every test pins; localConfig
// is its exact CLI-side equivalent.
func tinySpec() serve.ConfigSpec {
	sample := 300
	return serve.ConfigSpec{Scale: 1.0 / 512, Sample: &sample, StrictOrder: true}
}

func localConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scale = 1.0 / 512
	cfg.SampleProbes = 300
	cfg.Parallelism = runtime.NumCPU()
	cfg.StrictMemOrder = true
	cfg.WarmCache = warmstate.New()
	return cfg
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// submitAndWait submits a request and waits for a terminal state.
func submitAndWait(t *testing.T, c *serve.Client, req serve.SubmitRequest) serve.JobStatus {
	t.Helper()
	ctx := testCtx(t)
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Watch(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestShardedSweepByteIdenticalToLocal is the headline correctness test:
// a sweep sharded across two worker processes through a coordinator must
// merge into a manifest and text report byte-identical to the same sweep
// run in-process — and resubmitting it must be served entirely from the
// workers' persistent result stores with zero new simulations.
func TestShardedSweepByteIdenticalToLocal(t *testing.T) {
	ctx := testCtx(t)
	_, w1 := startServer(t, serve.Options{StoreDir: t.TempDir(), WarmCache: true})
	_, w2 := startServer(t, serve.Options{StoreDir: t.TempDir(), WarmCache: true})
	_, coordURL := startServer(t, serve.Options{Workers: []string{w1, w2}})
	coord := serve.NewClient(coordURL)

	axes := []exp.Axis{
		{Key: "llc-ways", Values: []string{"0", "8", "4"}},
		{Key: "agents", Values: []string{"1xooo+2xwidx:4w", "1xooo+4xwidx:4w"}},
	}
	req := serve.SubmitRequest{Experiment: "cmp", Sweep: axes, Config: tinySpec()}

	st, err := coord.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var pointEvents int
	st, err = coord.Watch(ctx, st.ID, func(ev serve.Event) {
		if ev.Type == "point" {
			pointEvents++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.JobDone || st.Total != 6 || st.Done != 6 {
		t.Fatalf("coordinator job = %+v, want done 6/6", st)
	}
	if pointEvents != 6 {
		t.Fatalf("event stream relayed %d point events, want 6", pointEvents)
	}

	manifest, err := coord.Manifest(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	text, err := coord.Text(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	e, _ := exp.Lookup("cmp")
	local, err := exp.RunSweep(e, localConfig(), nil, axes)
	if err != nil {
		t.Fatal(err)
	}
	localManifest, err := local.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	wantManifest, err := localManifest.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(manifest, wantManifest) {
		t.Errorf("sharded manifest differs from the local run\n--- sharded ---\n%s\n--- local ---\n%s", manifest, wantManifest)
	}
	if string(text) != local.Text() {
		t.Errorf("sharded report differs from the local run\n--- sharded ---\n%s\n--- local ---\n%s", text, local.Text())
	}

	// Both workers simulated their shard (3 points each, striped i%2).
	for _, w := range []string{w1, w2} {
		sz, err := serve.NewClient(w).Statusz(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if sz.SimulatedPoints != 3 {
			t.Errorf("worker %s simulated %d points, want 3", w, sz.SimulatedPoints)
		}
	}

	// Resubmission: every point is a disk hit on its worker; nothing
	// simulates anywhere, and the merged artifacts are byte-identical.
	st2 := submitAndWait(t, coord, req)
	if st2.State != serve.JobDone || st2.Cached != 6 {
		t.Fatalf("resubmitted job = %+v, want done with 6 cached points", st2)
	}
	for _, w := range []string{w1, w2} {
		sz, err := serve.NewClient(w).Statusz(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if sz.SimulatedPoints != 3 {
			t.Errorf("worker %s re-simulated: %d points total, want still 3", w, sz.SimulatedPoints)
		}
	}
	manifest2, err := coord.Manifest(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(manifest2, manifest) {
		t.Error("cache-served manifest differs from the simulated one")
	}
}

// TestCoordinatorForwardsSingleRun: a one-point job through a coordinator
// relays the worker's artifacts verbatim.
func TestCoordinatorForwardsSingleRun(t *testing.T) {
	ctx := testCtx(t)
	_, w1 := startServer(t, serve.Options{StoreDir: t.TempDir()})
	_, coordURL := startServer(t, serve.Options{Workers: []string{w1}})
	coord := serve.NewClient(coordURL)

	st := submitAndWait(t, coord, serve.SubmitRequest{Experiment: "model", Config: tinySpec()})
	if st.State != serve.JobDone {
		t.Fatalf("forwarded job = %+v", st)
	}
	manifest, err := coord.Manifest(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	e, _ := exp.Lookup("model")
	local, err := exp.Run(e, localConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := local.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	want, err := lm.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(manifest, want) {
		t.Errorf("forwarded manifest differs from the local run")
	}
}

// TestPersistentCacheSurvivesRestart: a fresh server over the same store
// directory serves an earlier server's results without simulating.
func TestPersistentCacheSurvivesRestart(t *testing.T) {
	ctx := testCtx(t)
	dir := t.TempDir()
	req := serve.SubmitRequest{
		Experiment: "cmp",
		Sweep:      []exp.Axis{{Key: "llc-ways", Values: []string{"0", "4"}}},
		Config:     tinySpec(),
	}

	s1, err := serve.New(serve.Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	c1 := serve.NewClient(ts1.URL)
	st := submitAndWait(t, c1, req)
	if st.State != serve.JobDone || st.Cached != 0 {
		t.Fatalf("first run = %+v", st)
	}
	manifest1, err := c1.Manifest(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.Close()

	_, url2 := startServer(t, serve.Options{StoreDir: dir})
	c2 := serve.NewClient(url2)
	st2 := submitAndWait(t, c2, req)
	if st2.State != serve.JobDone || st2.Cached != st2.Total || st2.Total != 2 {
		t.Fatalf("restarted run = %+v, want 2/2 cached", st2)
	}
	sz, err := c2.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sz.SimulatedPoints != 0 {
		t.Errorf("restarted server simulated %d points, want 0", sz.SimulatedPoints)
	}
	if sz.ResultStore == nil || sz.ResultStore.Hits != 2 {
		t.Errorf("store stats = %+v, want 2 hits", sz.ResultStore)
	}
	manifest2, err := c2.Manifest(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(manifest2, manifest1) {
		t.Error("restart-cached manifest differs from the original")
	}
}

// TestCancellation: cancelling a queued job is immediate; cancelling a
// running job unwinds it promptly through the sim context and leaves the
// result store with no partial entries.
func TestCancellation(t *testing.T) {
	ctx := testCtx(t)
	s, url := startServer(t, serve.Options{StoreDir: t.TempDir()})
	c := serve.NewClient(url)

	running, err := c.Submit(ctx, serve.SubmitRequest{Experiment: slowExperiment})
	if err != nil {
		t.Fatal(err)
	}
	// The executor is serial: once job 1 runs, job 2 stays queued.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.Status(ctx, running.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == serve.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued, err := c.Submit(ctx, serve.SubmitRequest{Experiment: slowExperiment})
	if err != nil {
		t.Fatal(err)
	}

	// Queued cancel is synchronous.
	st, err := c.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.JobCancelled || st.Done != 0 {
		t.Fatalf("cancelled queued job = %+v", st)
	}

	// Running cancel unwinds through cfg.Ctx; Watch sees the terminal state.
	start := time.Now()
	if _, err := c.Cancel(ctx, running.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Watch(ctx, running.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.JobCancelled {
		t.Fatalf("cancelled running job = %+v", final)
	}
	if wait := time.Since(start); wait > 10*time.Second {
		t.Fatalf("cancellation took %v, not prompt", wait)
	}
	// No partial entries may have been committed by the aborted job.
	if err := s.Store().Verify(); err != nil {
		t.Fatalf("store verify after cancel: %v", err)
	}
	sz, err := c.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sz.ResultStore == nil || sz.ResultStore.Entries != 0 {
		t.Errorf("store after cancelled jobs = %+v, want empty", sz.ResultStore)
	}
}

// TestManifestsMatchDirectRun: for every registered experiment, the
// service's manifest and report are byte-identical to running the
// experiment directly (the CLI's -json / stdout path).
func TestManifestsMatchDirectRun(t *testing.T) {
	ctx := testCtx(t)
	_, url := startServer(t, serve.Options{StoreDir: t.TempDir(), WarmCache: true})
	c := serve.NewClient(url)

	for _, name := range exp.Names() {
		if name == slowExperiment {
			continue
		}
		st := submitAndWait(t, c, serve.SubmitRequest{Experiment: name, Config: tinySpec()})
		if st.State != serve.JobDone {
			t.Fatalf("%s: job = %+v", name, st)
		}
		manifest, err := c.Manifest(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		text, err := c.Text(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}

		e, _ := exp.Lookup(name)
		local, err := exp.Run(e, localConfig(), nil)
		if err != nil {
			t.Fatalf("%s: direct run: %v", name, err)
		}
		lm, err := local.Manifest()
		if err != nil {
			t.Fatal(err)
		}
		want, err := lm.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(manifest, want) {
			t.Errorf("%s: served manifest differs from the direct run", name)
		}
		if string(text) != local.Text() {
			t.Errorf("%s: served report differs from the direct run", name)
		}
	}
}

// TestSampledRequestDistinctAndCounted: a request pinning the sampling
// knobs yields a manifest with the sampling block, byte-identical to the
// direct sampled run; the same experiment unsampled keys separately in
// the result store (no false hit); /statusz counts sampled points; and a
// resubmission is a cache hit whose manifest — sampling block recovered
// from the stored payload — is byte-identical to the cold one.
func TestSampledRequestDistinctAndCounted(t *testing.T) {
	ctx := testCtx(t)
	_, url := startServer(t, serve.Options{StoreDir: t.TempDir(), WarmCache: true})
	c := serve.NewClient(url)

	warm := 16
	spec := tinySpec()
	spec.SampleWindows = 3
	spec.SampleWarmup = &warm
	spec.SamplePeriod = 32
	set := map[string]string{"sizes": "Small"}
	req := serve.SubmitRequest{Experiment: "kernel", Set: set, Config: spec}

	st := submitAndWait(t, c, req)
	if st.State != serve.JobDone || st.Cached != 0 {
		t.Fatalf("sampled job = %+v", st)
	}
	manifest, err := c.Manifest(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(manifest, []byte(`"sampling"`)) {
		t.Errorf("sampled manifest carries no sampling block:\n%s", manifest)
	}

	cfg := localConfig()
	cfg.SampleWindows = 3
	cfg.SampleWarmup = 16
	cfg.SamplePeriod = 32
	e, _ := exp.Lookup("kernel")
	local, err := exp.Run(e, cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := local.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	want, err := lm.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(manifest, want) {
		t.Errorf("served sampled manifest differs from the direct run\n--- served ---\n%s\n--- direct ---\n%s", manifest, want)
	}

	// The unsampled request must simulate: the resolved config is part of
	// the store key, so sampled and unsampled results never collide.
	st2 := submitAndWait(t, c, serve.SubmitRequest{Experiment: "kernel", Set: set, Config: tinySpec()})
	if st2.State != serve.JobDone || st2.Cached != 0 {
		t.Fatalf("unsampled job after sampled one = %+v, want a fresh simulation", st2)
	}
	sz, err := c.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sz.SimulatedPoints != 2 || sz.SampledPoints != 1 {
		t.Errorf("statusz = %d simulated / %d sampled, want 2 / 1", sz.SimulatedPoints, sz.SampledPoints)
	}

	st3 := submitAndWait(t, c, req)
	if st3.State != serve.JobDone || st3.Cached != 1 {
		t.Fatalf("resubmitted sampled job = %+v, want 1 cached point", st3)
	}
	manifest3, err := c.Manifest(ctx, st3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(manifest3, manifest) {
		t.Errorf("cache-served sampled manifest differs from the simulated one\n--- cached ---\n%s\n--- cold ---\n%s", manifest3, manifest)
	}
	sz, err = c.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sz.SimulatedPoints != 2 || sz.SampledPoints != 1 {
		t.Errorf("after cache hit: statusz = %d simulated / %d sampled, want still 2 / 1", sz.SimulatedPoints, sz.SampledPoints)
	}
}

// TestExperimentsCatalogRoundTrip: the catalog endpoint decodes on the
// client side and preserves every registered experiment's parameter
// specs — including the warm classification, which marshals by name and
// must unmarshal back (the bug this pins: WarmClass without
// UnmarshalText broke `widxserve -list`).
func TestExperimentsCatalogRoundTrip(t *testing.T) {
	ctx := testCtx(t)
	_, url := startServer(t, serve.Options{})
	c := serve.NewClient(url)
	infos, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]serve.ExperimentInfo{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	for _, name := range exp.Names() {
		e, _ := exp.Lookup(name)
		in, ok := byName[e.Name()]
		if !ok {
			t.Errorf("catalog is missing %s", e.Name())
			continue
		}
		if want := exp.AllParams(e); !reflect.DeepEqual(in.Params, want) {
			t.Errorf("%s params did not round-trip: got %+v, want %+v", name, in.Params, want)
		}
	}
}

// TestSubmitValidation: malformed submissions fail synchronously.
func TestSubmitValidation(t *testing.T) {
	ctx := testCtx(t)
	_, wurl := startServer(t, serve.Options{})
	w := serve.NewClient(wurl)

	if _, err := w.Submit(ctx, serve.SubmitRequest{Experiment: "nope"}); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment: %v", err)
	}
	if _, err := w.Submit(ctx, serve.SubmitRequest{
		Experiment: "cmp",
		Sweep:      []exp.Axis{{Key: "bogus", Values: []string{"1"}}},
	}); err == nil {
		t.Error("unknown sweep axis accepted")
	}
	if _, err := w.Submit(ctx, serve.SubmitRequest{Experiment: "cmp", Indices: []int{0}}); err == nil ||
		!strings.Contains(err.Error(), "indices need a sweep grid") {
		t.Errorf("indices without sweep: %v", err)
	}

	_, curl := startServer(t, serve.Options{Workers: []string{wurl}})
	coord := serve.NewClient(curl)
	if _, err := coord.Submit(ctx, serve.SubmitRequest{
		Experiment: "cmp",
		Sweep:      []exp.Axis{{Key: "llc-ways", Values: []string{"0", "4"}}},
		Indices:    []int{0},
	}); err == nil || !strings.Contains(err.Error(), "coordinator") {
		t.Errorf("coordinator shard submission: %v", err)
	}
}
