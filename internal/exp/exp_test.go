package exp

import (
	"encoding/json"
	"strings"
	"testing"

	"widx/internal/sim"
	"widx/internal/warmstate"
)

// quickConfig is a tiny configuration for registry tests.
func quickConfig() sim.Config {
	cfg := sim.QuickConfig()
	cfg.Scale = 1.0 / 512
	cfg.SampleProbes = 300
	return cfg
}

// TestRegistryCompleteness pins the compatibility contract: every -run
// spelling the pre-registry CLI accepted resolves to a registered
// experiment, the canonical order matches the historical -run all output
// order, and -list prints every primary name.
func TestRegistryCompleteness(t *testing.T) {
	historical := []string{
		"fig2", "fig4", "fig5", "fig5sim", "fig8", "fig9", "fig10", "fig11",
		"ablation", "cmp",
	}
	for _, name := range historical {
		if _, ok := Lookup(name); !ok {
			t.Errorf("historical experiment name %q is not registered", name)
		}
	}
	wantOrder := []string{"model", "breakdowns", "kernel", "queries", "walkerutil", "cmp", "zoo", "ablation"}
	names := Names()
	if len(names) != len(wantOrder) {
		t.Fatalf("registered %v, want %v", names, wantOrder)
	}
	for i, n := range wantOrder {
		if names[i] != n {
			t.Fatalf("canonical order %v, want %v", names, wantOrder)
		}
	}
	list := List()
	for _, n := range names {
		if !strings.Contains(list, n) {
			t.Errorf("-list output misses %q:\n%s", n, list)
		}
	}
	// Aliases resolve to the same experiment as their primary name.
	for primary, aliases := range map[string][]string{
		"model":      {"fig4", "fig5"},
		"breakdowns": {"fig2"},
		"kernel":     {"fig8"},
		"queries":    {"fig9", "fig10", "fig11"},
		"walkerutil": {"fig5sim"},
		"zoo":        {"structures"},
	} {
		p, _ := Lookup(primary)
		for _, a := range aliases {
			if e, _ := Lookup(a); e != p {
				t.Errorf("alias %q does not resolve to %q", a, primary)
			}
		}
	}
	// Lookup is case-insensitive; unknown names miss.
	if e, ok := Lookup("FIG10"); !ok || e.Name() != "queries" {
		t.Errorf("case-insensitive lookup failed: %v %v", e, ok)
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown name resolved")
	}
	// Every registered experiment has a describable catalog entry.
	for _, n := range names {
		text, err := Describe(n)
		if err != nil || !strings.Contains(text, n) {
			t.Errorf("Describe(%q): %v\n%s", n, err, text)
		}
	}
	if all, err := Describe("all"); err != nil || !strings.Contains(all, "cmp") {
		t.Errorf("Describe(all): %v", err)
	}
}

// TestParamResolution covers the parameter layer: defaults, overrides,
// unknown-key rejection and the common config knobs.
func TestParamResolution(t *testing.T) {
	e, _ := Lookup("cmp")
	p, err := Resolve(e, map[string]string{"agents": "2xooo"})
	if err != nil {
		t.Fatal(err)
	}
	if p.String("agents") != "2xooo" || p.String("size") != "Medium" {
		t.Fatalf("resolved params %v", p)
	}
	// The cmp experiment resolves its arrival stagger to the synchronous
	// default.
	if p.String("stagger") != "0" {
		t.Fatalf("cmp stagger default = %q, want 0", p.String("stagger"))
	}
	// Common config knobs are accepted by every experiment.
	for _, key := range []string{"scale", "sample", "mshrs", "fill-buffers", "llc-ways", "queue-depth"} {
		if _, ok := p[key]; !ok {
			t.Errorf("common param %q missing from resolved set", key)
		}
	}
	if _, err := Resolve(e, map[string]string{"walkres": "3"}); err == nil {
		t.Fatal("unknown parameter accepted")
	}

	cfg := quickConfig()
	applied, err := ApplyConfig(cfg, Params{"scale": "0.25", "sample": "42", "mshrs": "5", "queue-depth": "4"})
	if err != nil {
		t.Fatal(err)
	}
	if applied.Scale != 0.25 || applied.SampleProbes != 42 || applied.Mem.L1MSHRs != 5 || applied.QueueDepth != 4 {
		t.Fatalf("ApplyConfig did not take: %+v", applied)
	}
	if _, err := ApplyConfig(cfg, Params{"scale": "big"}); err == nil {
		t.Fatal("bad scale accepted")
	}
	// queue-depth=0 is sim.Config's inherit sentinel, not a real depth — a
	// run labeled queue-depth=0 must not silently execute at depth 2.
	if _, err := ApplyConfig(cfg, Params{"queue-depth": "0"}); err == nil {
		t.Fatal("queue-depth=0 accepted")
	}
	// The topology knobs: fill-buffers resizes the shared pool (0 is its
	// track-mshrs sentinel and is rejected); llc-ways=0 is the genuine
	// unpartitioned design point and the baseline of partitioning sweeps.
	applied, err = ApplyConfig(cfg, Params{"fill-buffers": "20", "llc-ways": "4"})
	if err != nil {
		t.Fatal(err)
	}
	if applied.FillBuffers != 20 || applied.LLCWays != 4 {
		t.Fatalf("topology knobs did not take: %+v", applied)
	}
	if _, err := ApplyConfig(cfg, Params{"fill-buffers": "0"}); err == nil {
		t.Fatal("fill-buffers=0 accepted")
	}
	if applied, err = ApplyConfig(cfg, Params{"llc-ways": "0"}); err != nil || applied.LLCWays != 0 {
		t.Fatalf("llc-ways=0 (unpartitioned) should be accepted: %v", err)
	}
	if _, err := ApplyConfig(cfg, Params{"llc-ways": "-1"}); err == nil {
		t.Fatal("negative llc-ways accepted")
	}
	// Typed getters report the offending key.
	if _, err := (Params{"walkers": "x"}).Ints("walkers"); err == nil || !strings.Contains(err.Error(), "walkers") {
		t.Fatalf("Ints error: %v", err)
	}
}

// TestParseAxis covers the -sweep grammar.
func TestParseAxis(t *testing.T) {
	ax, err := ParseAxis("agents=1xooo,1xooo+1xwidx:4w")
	if err != nil || ax.Key != "agents" || len(ax.Values) != 2 || ax.Values[1] != "1xooo+1xwidx:4w" {
		t.Fatalf("ParseAxis: %+v %v", ax, err)
	}
	for _, bad := range []string{"", "agents", "=a,b", "agents=", "agents=a,", "agents=,a", "agents=a,,b"} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("axis %q should not parse", bad)
		}
	}
}

// fakeResult is a deterministic Result for sweep-machinery tests.
type fakeResult string

func (r fakeResult) Text() string          { return string(r) + "\n" }
func (r fakeResult) JSON() ([]byte, error) { return json.Marshal(string(r)) }

// TestSweepGrid checks grid expansion: full-factorial, last axis fastest,
// every point running at its own resolved parameters, results placed by
// grid index at any parallelism.
func TestSweepGrid(t *testing.T) {
	e := NewExperiment("grid", "test grid", []ParamSpec{
		{Key: "a", Default: "0"}, {Key: "b", Default: "0"},
	}, func(cfg sim.Config, p Params) (Result, error) {
		return fakeResult(p.String("a") + "/" + p.String("b")), nil
	})
	axes := []Axis{{Key: "a", Values: []string{"1", "2"}}, {Key: "b", Values: []string{"x", "y", "z"}}}
	want := []string{"1/x", "1/y", "1/z", "2/x", "2/y", "2/z"}

	var texts []string
	for _, parallel := range []int{1, 8} {
		cfg := quickConfig()
		cfg.Parallelism = parallel
		out, err := RunSweep(e, cfg, nil, axes)
		if err != nil {
			t.Fatal(err)
		}
		sweep := out.Result.(*SweepResult)
		if len(sweep.Runs) != len(want) {
			t.Fatalf("got %d runs, want %d", len(sweep.Runs), len(want))
		}
		for i, w := range want {
			if got := strings.TrimSpace(sweep.Runs[i].Result.Text()); got != w {
				t.Fatalf("parallelism %d: run %d = %q, want %q", parallel, i, got, w)
			}
		}
		texts = append(texts, out.Text())
	}
	if texts[0] != texts[1] {
		t.Fatalf("sweep text differs across parallelism:\n%s\nvs\n%s", texts[0], texts[1])
	}

	// The sweep manifest records the resolved base config: non-swept common
	// knobs set via -set land in Config, matching single-run manifests.
	{
		cfg := quickConfig()
		out, err := RunSweep(e, cfg, map[string]string{"mshrs": "5"}, axes)
		if err != nil {
			t.Fatal(err)
		}
		if out.Config.Mem.L1MSHRs != 5 {
			t.Fatalf("sweep manifest config lost -set mshrs=5: L1MSHRs = %d", out.Config.Mem.L1MSHRs)
		}
		// Swept keys are dropped from the top-level params (their base value
		// never ran); non-swept overrides stay; each grid point keeps its own
		// full set.
		if _, swept := out.Params["a"]; swept {
			t.Fatalf("sweep manifest params still carry swept key a: %v", out.Params)
		}
		if out.Params["mshrs"] != "5" {
			t.Fatalf("sweep manifest params lost mshrs=5: %v", out.Params)
		}
		if got := out.Result.(*SweepResult).Runs[0].Params["a"]; got != "1" {
			t.Fatalf("grid point params lost swept value: %v", got)
		}
	}

	// Unknown axis keys, duplicate axes and -set/-sweep conflicts are
	// rejected.
	if _, err := RunSweep(e, quickConfig(), nil, []Axis{{Key: "c", Values: []string{"1"}}}); err == nil {
		t.Fatal("unknown axis accepted")
	}
	if _, err := RunSweep(e, quickConfig(), map[string]string{"a": "9"}, axes); err == nil {
		t.Fatal("-set of a swept key accepted (the override would never run)")
	}
	if _, err := RunSweep(e, quickConfig(), nil, []Axis{
		{Key: "a", Values: []string{"1"}}, {Key: "a", Values: []string{"2"}},
	}); err == nil {
		t.Fatal("duplicate axis accepted")
	}
	if _, err := RunSweep(e, quickConfig(), nil, nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

// TestSweepAgentMixDeterministic is the acceptance sweep: an agent-mix
// sweep over the real cmp experiment produces byte-identical reports at
// parallelism 1 and 8.
func TestSweepAgentMixDeterministic(t *testing.T) {
	e, _ := Lookup("cmp")
	axes := []Axis{{Key: "agents", Values: []string{"widx:2w", "ooo+widx:2w"}}}
	run := func(parallel int) string {
		cfg := quickConfig()
		cfg.SampleProbes = 400
		cfg.Parallelism = parallel
		out, err := RunSweep(e, cfg, map[string]string{"size": "Small"}, axes)
		if err != nil {
			t.Fatal(err)
		}
		return out.Text()
	}
	seq, par := run(1), run(8)
	if seq != par {
		t.Fatalf("agent-mix sweep is parallelism-dependent:\n%s\nvs\n%s", seq, par)
	}
	if !strings.Contains(seq, "agents=ooo+widx:2w") || !strings.Contains(seq, "CMP contention") {
		t.Fatalf("sweep report malformed:\n%s", seq)
	}
}

// TestManifestRoundTrip runs every registered experiment at minimal scale,
// encodes its manifest, and checks the decode round trip: schema and
// experiment names survive, the resolved config and the full parameter set
// are present, the results payload is valid JSON, and re-encoding is
// byte-stable.
func TestManifestRoundTrip(t *testing.T) {
	small := map[string]map[string]string{
		"kernel":     {"sizes": "Small"},
		"breakdowns": {"simulated": "true"},
		"walkerutil": {"max-walkers": "2", "size": "Small"},
		"cmp":        {"agents": "2xwidx:2w", "size": "Small"},
		"ablation":   {"walkers": "2"},
		"zoo":        {"structure": "skiplist,bfs", "walkers": "1,2"},
	}
	for _, name := range Names() {
		e, _ := Lookup(name)
		out, err := Run(e, quickConfig(), small[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m, err := out.Manifest()
		if err != nil {
			t.Fatalf("%s: manifest: %v", name, err)
		}
		data, err := m.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		var back Manifest
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: manifest does not parse: %v", name, err)
		}
		if back.Schema != ManifestSchema || back.Experiment != name {
			t.Fatalf("%s: round trip lost identity: %+v", name, back)
		}
		if back.Config.Scale != out.Config.Scale || back.Config.SampleProbes != out.Config.SampleProbes {
			t.Fatalf("%s: resolved config not in manifest: %+v", name, back.Config)
		}
		for _, spec := range AllParams(e) {
			if _, ok := back.Params[spec.Key]; !ok {
				t.Fatalf("%s: manifest params miss %q", name, spec.Key)
			}
		}
		var payload any
		if err := json.Unmarshal(back.Results, &payload); err != nil || payload == nil {
			t.Fatalf("%s: results payload invalid: %v", name, err)
		}
		again, err := back.Encode()
		if err != nil || string(again) != string(data) {
			t.Fatalf("%s: re-encoding is not byte-stable", name)
		}
		// The text report renders too.
		if out.Text() == "" {
			t.Fatalf("%s: empty text report", name)
		}
	}
}

// TestRunAllOrderMatchesNames ensures Run works through the registry for a
// subset -set map that only some experiments accept (the -run all path
// filters overrides per experiment).
func TestRunUnknownParamRejected(t *testing.T) {
	e, _ := Lookup("model")
	if _, err := Run(e, quickConfig(), map[string]string{"agents": "2xooo"}); err == nil {
		t.Fatal("model accepted the cmp-only agents parameter")
	}
}

// TestSweepStructureAxisDeterministic sweeps the zoo's structure axis —
// every traversal structure as one grid point — and requires byte-identical
// reports at parallelism 1 and 8, with and without the warm-state cache
// (verify mode, so a structure leaking out of a cache key fails loudly).
func TestSweepStructureAxisDeterministic(t *testing.T) {
	e, _ := Lookup("zoo")
	axes := []Axis{{Key: "structure", Values: []string{"hashjoin", "skiplist", "btree", "lsm", "bfs"}}}
	run := func(parallel int, warm bool) string {
		cfg := quickConfig()
		cfg.SampleProbes = 400
		cfg.Parallelism = parallel
		if warm {
			cfg.WarmCache = warmstate.New()
			cfg.WarmCache.SetVerify(true)
		}
		out, err := RunSweep(e, cfg, map[string]string{"walkers": "1,2"}, axes)
		if err != nil {
			t.Fatal(err)
		}
		return out.Text()
	}
	seq := run(1, false)
	if par := run(8, false); par != seq {
		t.Fatalf("structure sweep is parallelism-dependent:\n%s\nvs\n%s", seq, par)
	}
	if warmed := run(8, true); warmed != seq {
		t.Fatalf("warm cache changed the structure sweep:\n%s\nvs\n%s", seq, warmed)
	}
	for _, want := range []string{"structure=hashjoin", "structure=bfs", "fingerprint"} {
		if !strings.Contains(seq, want) {
			t.Fatalf("structure sweep report misses %q:\n%s", want, seq)
		}
	}
}
