package exp

import (
	"strings"
	"testing"

	"widx/internal/sim"
)

// sampledRunConfig is the registry-level analogue of the sim package's
// sampled test configuration: a stream long enough for six windows with a
// generous warmup (the knob that shrinks fast-forward bias).
func sampledRunConfig() sim.Config {
	cfg := sim.QuickConfig()
	cfg.Scale = 1.0 / 8
	cfg.SampleProbes = 2000
	cfg.Walkers = []int{2}
	return cfg
}

func sampledSet() map[string]string {
	return map[string]string{
		"sizes":          "Small",
		"sample-windows": "6",
		"sample-warmup":  "192",
		"sample-period":  "64",
	}
}

// TestSampledParamsAndManifest exercises the registry path end to end: the
// sample-* parameters reach sim.Config, the run's estimate block is lifted
// into the top-level manifest `sampling` field, and VerifySampled — the
// -sampling-verify mode — accepts the run against its full-detail
// reference.
func TestSampledParamsAndManifest(t *testing.T) {
	e, ok := Lookup("kernel")
	if !ok {
		t.Fatal("kernel experiment not registered")
	}
	out, err := Run(e, sampledRunConfig(), sampledSet())
	if err != nil {
		t.Fatal(err)
	}
	if out.Config.SampleWindows != 6 || out.Config.SampleWarmup != 192 || out.Config.SamplePeriod != 64 {
		t.Fatalf("sample-* parameters did not reach the config: %+v", out.Config)
	}
	m, err := out.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Sampling == nil {
		t.Fatal("sampled run's manifest carries no sampling block")
	}
	if !m.Sampling.FingerprintVerified {
		t.Error("manifest sampling block not fingerprint-verified")
	}
	enc, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(enc), `"sampling"`) || !strings.Contains(string(enc), `"fingerprint_verified": true`) {
		t.Errorf("encoded manifest misses the sampling block:\n%s", enc)
	}
	if err := VerifySampled(e, sampledRunConfig(), sampledSet(), out.Result); err != nil {
		t.Errorf("sampling-verify rejected a healthy sampled run: %v", err)
	}
}

// TestUnsampledManifestOmitsSampling pins the compatibility edge: with the
// sample-* parameters at their inherit defaults and sampling off, the
// manifest must not mention sampling, and VerifySampled must refuse the
// run rather than verify vacuously.
func TestUnsampledManifestOmitsSampling(t *testing.T) {
	e, _ := Lookup("kernel")
	set := map[string]string{"sizes": "Small"}
	out, err := Run(e, quickConfig(), set)
	if err != nil {
		t.Fatal(err)
	}
	m, err := out.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Sampling != nil {
		t.Fatal("unsampled manifest carries a sampling block")
	}
	enc, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(enc), `"sampling"`) {
		t.Errorf("unsampled manifest mentions sampling:\n%s", enc)
	}
	if err := VerifySampled(e, quickConfig(), set, out.Result); err == nil {
		t.Error("VerifySampled accepted an unsampled run")
	}
}
