package exp

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"widx/internal/sim"
)

// The golden tests pin the registry's text output to the byte-exact reports
// the pre-registry CLI (RunXxx + FormatXxx + hardcoded switch) printed at
// the same reference flags:
//
//	experiments -run fig10 -scale 0.00390625 -sample 1000 -strict-order
//	experiments -run cmp   -scale 0.125      -sample 2000 -strict-order
//
// fig10.golden is that CLI's output verbatim. cmp.golden was captured from
// the pre-registry CLI with one deliberate change applied first: the
// round-robin block-interleaved CMP warming this PR ships (the agent-order
// warming the old CLI used is a start-state bug the PR fixes, and
// cmp_test.go quantifies the difference). So both files isolate the
// registry migration: a mismatch means the declarative layer changed what
// an experiment computes or prints — not just how it is dispatched.

// goldenConfig mirrors the harness defaults the reference flags ran at.
func goldenConfig(scale float64, sample int) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scale = scale
	cfg.SampleProbes = sample
	cfg.Parallelism = runtime.NumCPU()
	cfg.StrictMemOrder = true
	return cfg
}

// checkGolden runs one experiment through the registry and compares the
// driver-level output (report text plus the separator newline the CLI
// prints) against the recorded file.
func checkGolden(t *testing.T, name string, cfg sim.Config, goldenFile string) {
	t.Helper()
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	out, err := Run(e, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", goldenFile))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Text() + "\n"; got != string(want) {
		t.Fatalf("%s output is not byte-identical to the pre-registry CLI\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenFig10(t *testing.T) {
	checkGolden(t, "fig10", goldenConfig(1.0/256, 1000), "fig10.golden")
}

func TestGoldenCMP(t *testing.T) {
	checkGolden(t, "cmp", goldenConfig(0.125, 2000), "cmp.golden")
}
