package exp

import (
	"bytes"
	"reflect"
	"testing"

	"widx/internal/sim"
)

// TestPlanShardMergeByteIdentical is the library half of the sweep
// service's headline property: a grid split into index-tagged chunks,
// executed chunk by chunk (as worker processes would), round-tripped
// through the wire encoding (RawResult) and merged by Output produces a
// report and manifest byte-identical to a single RunSweep.
func TestPlanShardMergeByteIdentical(t *testing.T) {
	e := NewExperiment("shardgrid", "test grid", []ParamSpec{
		{Key: "a", Default: "0"}, {Key: "b", Default: "0"},
	}, func(cfg sim.Config, p Params) (Result, error) {
		return fakeResult(p.String("a") + "/" + p.String("b")), nil
	})
	axes := []Axis{{Key: "a", Values: []string{"1", "2"}}, {Key: "b", Values: []string{"x", "y", "z"}}}
	cfg := quickConfig()

	local, err := RunSweep(e, cfg, nil, axes)
	if err != nil {
		t.Fatal(err)
	}
	localManifest, err := local.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	localBytes, err := localManifest.Encode()
	if err != nil {
		t.Fatal(err)
	}

	pl, err := PlanSweep(e, cfg, nil, axes)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Points) != 6 {
		t.Fatalf("grid has %d points, want 6", len(pl.Points))
	}
	// Round-robin chunks, like the coordinator's striping.
	const workers = 2
	results := make([]Result, len(pl.Points))
	for w := 0; w < workers; w++ {
		var indices []int
		for i := w; i < len(pl.Points); i += workers {
			indices = append(indices, i)
		}
		runs, err := pl.Run(cfg, indices, nil)
		if err != nil {
			t.Fatal(err)
		}
		for pos, i := range indices {
			// Wire round trip: only the text and JSON bytes cross processes.
			raw, err := runs[pos].Result.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(map[string]string(runs[pos].Params), map[string]string(pl.Points[i])) {
				t.Fatalf("shard run %d params %v, want grid point %v", i, runs[pos].Params, pl.Points[i])
			}
			results[i] = RawResult{Report: runs[pos].Result.Text(), Payload: raw}
		}
	}
	merged, err := pl.Output(results)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Text() != local.Text() {
		t.Fatalf("merged text differs from local run:\n%s\nvs\n%s", merged.Text(), local.Text())
	}
	mergedManifest, err := merged.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	mergedBytes, err := mergedManifest.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mergedBytes, localBytes) {
		t.Fatalf("merged manifest differs from local run:\n%s\nvs\n%s", mergedBytes, localBytes)
	}
}

// Plan-level validation: bad index subsets and incomplete merges are
// rejected rather than silently mis-assembled.
func TestPlanIndexValidation(t *testing.T) {
	e := NewExperiment("idxgrid", "test grid", []ParamSpec{
		{Key: "a", Default: "0"},
	}, func(cfg sim.Config, p Params) (Result, error) {
		return fakeResult(p.String("a")), nil
	})
	axes := []Axis{{Key: "a", Values: []string{"1", "2", "3"}}}
	pl, err := PlanSweep(e, quickConfig(), nil, axes)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.CheckIndices([]int{0, 2}); err != nil {
		t.Fatalf("valid subset rejected: %v", err)
	}
	if err := pl.CheckIndices([]int{3}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := pl.CheckIndices([]int{-1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := pl.CheckIndices([]int{1, 1}); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, err := pl.Run(quickConfig(), []int{7}, nil); err == nil {
		t.Fatal("Run accepted an out-of-range subset")
	}
	if _, err := pl.Output(make([]Result, 2)); err == nil {
		t.Fatal("Output accepted a short result slice")
	}
	if _, err := pl.Output(make([]Result, 3)); err == nil {
		t.Fatal("Output accepted missing (nil) results")
	}
}

// The onPoint hook fires once per executed point with its grid index.
func TestPlanRunOnPoint(t *testing.T) {
	e := NewExperiment("hookgrid", "test grid", []ParamSpec{
		{Key: "a", Default: "0"},
	}, func(cfg sim.Config, p Params) (Result, error) {
		return fakeResult(p.String("a")), nil
	})
	axes := []Axis{{Key: "a", Values: []string{"1", "2", "3", "4"}}}
	pl, err := PlanSweep(e, quickConfig(), nil, axes)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.Parallelism = 1
	got := map[int]string{}
	if _, err := pl.Run(cfg, []int{1, 3}, func(i int, r SweepRun) {
		got[i] = r.Result.Text()
	}); err != nil {
		t.Fatal(err)
	}
	want := map[int]string{1: fakeResult("2").Text(), 3: fakeResult("4").Text()}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("onPoint saw %v, want %v", got, want)
	}
}
