package exp

import (
	"fmt"

	"widx/internal/sim"
)

// VerifySampled checks a sampled run against its full-detail reference: the
// same experiment and parameters run again with fast-forward spans executed
// in detail (sim.Config.SampleFullDetail), so every probe is simulated and
// the identical windows are measured under true machine history. Every
// estimate in the sampled run's report whose metric the reference also
// computes must cover the reference value within its 95% confidence
// interval. This is the -sampling-verify mode of the CLIs.
func VerifySampled(e Experiment, cfg sim.Config, set map[string]string, sampled Result) error {
	sr, ok := sampled.(sim.SamplingReporter)
	if !ok || sr.SamplingReport() == nil {
		return fmt.Errorf("exp: %s: run carries no sampling report to verify (sampling off?)", e.Name())
	}
	cfg.SampleFullDetail = true
	ref, err := Run(e, cfg, set)
	if err != nil {
		return fmt.Errorf("exp: %s: verification reference run: %w", e.Name(), err)
	}
	rr, ok := ref.Result.(sim.SamplingReporter)
	if !ok {
		return fmt.Errorf("exp: %s: reference run offers no sampled metrics", e.Name())
	}
	if err := sr.SamplingReport().Verify(rr.SampledMetricValues()); err != nil {
		return fmt.Errorf("exp: %s: %w", e.Name(), err)
	}
	return nil
}
