package exp

import (
	"encoding/json"
	"fmt"
	"os"

	"widx/internal/sampling"
	"widx/internal/sim"
)

// ManifestSchema identifies the manifest layout; bump it on any
// backwards-incompatible change so downstream tooling can dispatch.
const ManifestSchema = "widx-experiment-manifest/v1"

// Manifest is the per-run reproducibility record: the experiment, the fully
// resolved parameters it ran at, the simulation configuration after the
// common config knobs were applied, the sweep axes (if any), and the result
// payload. It is what -json prints and what -out writes next to the text
// report. Params is authoritative for experiment-level settings: an
// experiment applies its own parameters (e.g. kernel's walkers) at run
// time, so they are recorded here rather than in Config. For sweeps,
// Params holds only the non-swept base set — each grid point's full
// parameter set is in the results payload.
type Manifest struct {
	Schema     string            `json:"schema"`
	Experiment string            `json:"experiment"`
	Params     map[string]string `json:"params"`
	Config     sim.Config        `json:"config"`
	Sweep      []Axis            `json:"sweep,omitempty"`
	// Sampling is the sampled-simulation estimate block (plan, 95%
	// confidence intervals, fingerprint verification), lifted from the
	// result when the run was sampled; absent otherwise, so unsampled
	// manifests are byte-identical to pre-sampling ones.
	Sampling *sampling.Report `json:"sampling,omitempty"`
	Results  json.RawMessage  `json:"results"`
}

// Encode serializes the manifest (indented, newline-terminated).
func (m *Manifest) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("exp: encoding manifest for %s: %w", m.Experiment, err)
	}
	return append(data, '\n'), nil
}

// RunOutput couples one registry run (single or sweep) with everything the
// manifest records.
type RunOutput struct {
	Experiment Experiment
	// Params is the resolved parameter set. For sweeps it holds only the
	// non-swept keys: a swept key's base value never runs, so recording it
	// here would mislabel the sweep — per-point values live in the axes and
	// in each run's own params.
	Params Params
	// Config is the resolved simulation configuration after the common
	// config parameters were applied (for sweeps: the base set's knobs —
	// swept config values vary per point and live in each run's params).
	Config sim.Config
	// Axes is non-nil for sweep runs.
	Axes []Axis
	// Result is the run's result; for sweeps a *SweepResult.
	Result Result
}

// Text returns the run's text report.
func (o *RunOutput) Text() string { return o.Result.Text() }

// Manifest builds the reproducibility manifest for the run.
func (o *RunOutput) Manifest() (*Manifest, error) {
	raw, err := o.Result.JSON()
	if err != nil {
		return nil, fmt.Errorf("exp: encoding %s results: %w", o.Experiment.Name(), err)
	}
	m := &Manifest{
		Schema:     ManifestSchema,
		Experiment: o.Experiment.Name(),
		Params:     o.Params,
		Config:     o.Config,
		Sweep:      o.Axes,
		Results:    raw,
	}
	if r, ok := o.Result.(sim.SamplingReporter); ok {
		m.Sampling = r.SamplingReport()
	}
	return m, nil
}

// Run resolves the parameter overrides, applies the common config
// parameters, executes the experiment and returns the result with its
// manifest inputs.
func Run(e Experiment, cfg sim.Config, set map[string]string) (*RunOutput, error) {
	p, err := Resolve(e, set)
	if err != nil {
		return nil, err
	}
	runCfg, err := ApplyConfig(cfg, p)
	if err != nil {
		return nil, err
	}
	res, err := e.Run(runCfg, p)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", e.Name(), err)
	}
	return &RunOutput{Experiment: e, Params: p, Config: runCfg, Result: res}, nil
}

// WriteOutput writes data to path, with "-" meaning stdout, ensuring a
// trailing newline. It is the one sink for every serialized artifact the
// commands emit (manifests, text reports, widxsim breakdown dumps).
func WriteOutput(path string, data []byte) error {
	if len(data) > 0 && data[len(data)-1] != '\n' {
		data = append(data, '\n')
	}
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
