package exp

import (
	"strings"
	"testing"

	"widx/internal/sim"
	"widx/internal/warmstate"
)

// TestWarmInvariantClassification pins the parameter classification the
// sweep planner and the warm cache rely on: timing-side knobs are marked
// invariant, everything that shapes the workload or the warm-up is not.
func TestWarmInvariantClassification(t *testing.T) {
	e, _ := Lookup("cmp")
	got := strings.Join(WarmInvariantKeys(e), ",")
	if got != "sample-windows,sample-warmup,sample-period,mshrs,fill-buffers,queue-depth,stagger" {
		t.Fatalf("cmp warm-invariant keys = %q", got)
	}
	// Workload-shaping knobs must stay warm-affecting.
	for _, s := range AllParams(e) {
		switch s.Key {
		case "scale", "sample", "llc-ways", "agents", "size":
			if s.Warm != WarmAffecting {
				t.Errorf("%s misclassified as warm-invariant", s.Key)
			}
		}
	}
	// The catalog marker renders in the describe output.
	text, err := Describe("cmp")
	if err != nil || !strings.Contains(text, "[warm-invariant]") {
		t.Fatalf("describe misses the warm-invariant marker: %v\n%s", err, text)
	}
}

// TestSweepOrderGroupsWarmRows checks the planner: with a warm cache the
// dispatch order clusters grid points sharing a warm-affecting assignment
// (one warm-up serves the whole warm-invariant row), stable within a
// group; without one the grid runs in index order.
func TestSweepOrderGroupsWarmRows(t *testing.T) {
	e := NewExperiment("order", "planner test", []ParamSpec{
		{Key: "load", Default: "0"},
		{Key: "depth", Default: "0", Warm: WarmInvariant},
	}, func(cfg sim.Config, p Params) (Result, error) { return fakeResult(p["load"] + p["depth"]), nil })
	// depth varies slowest, load fastest: consecutive grid indices
	// alternate warm rows, so grouping must permute.
	axes := []Axis{{Key: "depth", Values: []string{"2", "4"}}, {Key: "load", Values: []string{"a", "b"}}}
	points := make([]Params, 4)
	for i := range points {
		points[i] = Params{"depth": axes[0].Values[i/2], "load": axes[1].Values[i%2]}
	}
	cfg := quickConfig()
	if got := sweepOrder(e, cfg, axes, points); got[0] != 0 || got[1] != 1 || got[2] != 2 || got[3] != 3 {
		t.Fatalf("cache-off order permuted: %v", got)
	}
	cfg.WarmCache = warmstate.New()
	got := sweepOrder(e, cfg, axes, points)
	// Warm-affecting signature is load alone: load=a at indices 0,2 and
	// load=b at 1,3; grouped and stable.
	if got[0] != 0 || got[1] != 2 || got[2] != 1 || got[3] != 3 {
		t.Fatalf("warm-cached order does not group warm rows: %v", got)
	}
}

// TestSweepWarmCacheByteIdentity is the tentpole's acceptance check at the
// sweep layer: a warm-invariant sweep over the real cmp experiment with
// the cache enabled produces byte-identical reports to a cache-off run,
// at parallelism 1 and 8, while actually hitting the cache.
func TestSweepWarmCacheByteIdentity(t *testing.T) {
	e, _ := Lookup("cmp")
	axes := []Axis{{Key: "queue-depth", Values: []string{"2", "4"}}}
	set := map[string]string{"size": "Small", "agents": "widx:2w+ooo"}
	run := func(parallel int, cache *warmstate.Cache) string {
		cfg := quickConfig()
		cfg.SampleProbes = 400
		cfg.Parallelism = parallel
		cfg.WarmCache = cache
		out, err := RunSweep(e, cfg, set, axes)
		if err != nil {
			t.Fatal(err)
		}
		return out.Text()
	}
	want := run(1, nil)
	for _, p := range []int{1, 8} {
		cache := warmstate.New()
		if got := run(p, cache); got != want {
			t.Fatalf("warm-cached sweep (p=%d) diverges from cache-off:\n%s\nvs\n%s", p, got, want)
		}
		if hits, _ := cache.Stats(); hits == 0 {
			t.Fatalf("p=%d: warm-invariant sweep never hit the cache", p)
		}
	}
}

// TestSweepWarmCacheVerify runs warm-invariant and warm-affecting sweeps
// with verify mode on: every hit rebuilds and cross-checks content, so a
// parameter misclassified as invariant would fail here (the exp-layer
// half of the classification guard; the mutation drill lives in
// internal/sim).
func TestSweepWarmCacheVerify(t *testing.T) {
	e, _ := Lookup("cmp")
	cfg := quickConfig()
	cfg.SampleProbes = 400
	cfg.WarmCache = warmstate.New()
	cfg.WarmCache.SetVerify(true)
	set := map[string]string{"size": "Small", "agents": "widx:2w"}
	if _, err := RunSweep(e, cfg, set, []Axis{{Key: "queue-depth", Values: []string{"2", "4", "8"}}}); err != nil {
		t.Fatalf("verified warm-invariant sweep: %v", err)
	}
	if hits, _ := cfg.WarmCache.Stats(); hits == 0 {
		t.Fatal("verify sweep produced no hits; nothing was verified")
	}
	// A warm-affecting axis (llc-ways moves the warm-up's LLC inserts)
	// must key separately — verified hits still pass because equal keys
	// really do rebuild equal content.
	if _, err := RunSweep(e, cfg, set, []Axis{{Key: "llc-ways", Values: []string{"0", "4"}}}); err != nil {
		t.Fatalf("verified warm-affecting sweep: %v", err)
	}
}
