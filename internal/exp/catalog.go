package exp

import (
	"fmt"
	"strings"

	"widx/internal/join"
	"widx/internal/model"
	"widx/internal/sim"
	"widx/internal/structures"
	"widx/internal/workloads"
)

// catalog.go registers every experiment of the paper's evaluation. The
// registration order is the canonical -run all order (the order the
// historical CLI printed); aliases keep every pre-registry -run spelling
// working.

func init() {
	Register(NewExperiment("model",
		"Figures 4a-4c and 5: the Section 3.2 analytical model of walker scaling\n"+
			"limits (L1 ports, MSHRs, off-chip bandwidth), evaluated in closed form\n"+
			"from the configured memory hierarchy — no simulation.",
		nil,
		func(cfg sim.Config, p Params) (Result, error) {
			return sim.ModelFigures{Params: model.FromMemConfig(cfg.Mem)}, nil
		}), "fig4", "fig5")

	Register(NewExperiment("breakdowns",
		"Figure 2a/2b: query execution-time breakdowns (index/scan/sort&join/other\n"+
			"shares, and the hash/walk split of the index phase) measured by the query\n"+
			"engine next to the paper's reported shares.",
		[]ParamSpec{
			{Key: "simulated", Default: "false", Help: "restrict to the twelve simulated (Figure 2b) queries"},
		},
		func(cfg sim.Config, p Params) (Result, error) {
			simulatedOnly, err := p.Bool("simulated")
			if err != nil {
				return nil, err
			}
			rows, err := cfg.RunBreakdowns(simulatedOnly)
			if err != nil {
				return nil, err
			}
			return rows, nil
		}), "fig2")

	Register(NewExperiment("kernel",
		"Figure 8a/8b: the hash-join kernel study — Widx cycles per tuple with the\n"+
			"Comp/Mem/TLB/Idle breakdown per size class and walker count, and the\n"+
			"indexing speedup over the OoO baseline.",
		[]ParamSpec{
			{Key: "sizes", Default: "Small,Medium,Large", Help: "comma-separated kernel size classes"},
			{Key: "walkers", Default: "", Help: "comma-separated Widx walker counts", Warm: WarmInvariant},
		},
		func(cfg sim.Config, p Params) (Result, error) {
			cfg, err := applyWalkers(cfg, p)
			if err != nil {
				return nil, err
			}
			sizes, err := parseSizes(p.String("sizes"))
			if err != nil {
				return nil, err
			}
			return cfg.RunKernel(sizes)
		}), "fig8")

	Register(NewExperiment("queries",
		"Figures 9, 10 and 11: the twelve simulated DSS queries — per-query walker\n"+
			"breakdowns, indexing and query-level speedups over the OoO baseline, and\n"+
			"the runtime/energy/energy-delay comparison with the Section 6.3 area table.",
		nil,
		func(cfg sim.Config, p Params) (Result, error) {
			return cfg.RunSimulatedQueries()
		}), "fig9", "fig10", "fig11")

	Register(NewExperiment("walkerutil",
		"Figure 5, simulator-driven: walker utilization and the measured MSHR\n"+
			"occupancy histogram across walker counts, locating the saturation knee\n"+
			"where the simulated MSHR pool actually fills.",
		[]ParamSpec{
			{Key: "size", Default: "Medium", Help: "kernel size class the sweep probes"},
			{Key: "max-walkers", Default: "8", Help: "sweep walker counts 1..max-walkers", Warm: WarmInvariant},
		},
		func(cfg sim.Config, p Params) (Result, error) {
			size, err := join.ParseSizeClass(p.String("size"))
			if err != nil {
				return nil, err
			}
			maxWalkers, err := p.Int("max-walkers")
			if err != nil {
				return nil, err
			}
			return cfg.RunWalkerUtilization(size, maxWalkers)
		}), "fig5sim")

	Register(NewExperiment("cmp",
		"The CMP contention experiment (Sections 4 and 6): K agents — any mix of\n"+
			"Widx accelerators and OoO / in-order host cores — co-run a partitioned\n"+
			"hash join on one shared LLC / MSHR pool / memory-bandwidth schedule and\n"+
			"are compared against solo reference runs (slowdown, LLC miss inflation,\n"+
			"MSHR saturation, bandwidth utilization).",
		[]ParamSpec{
			{Key: "agents", Default: "4xwidx:4w", Help: "agent mix, e.g. 1xooo+2xwidx:4w:mshrs=5:ways=4"},
			{Key: "size", Default: "Medium", Help: "kernel size class each partition is built at"},
			{Key: "structure", Default: "hashjoin", Help: "traversal structure every partition is built as"},
			{Key: "stagger", Default: "0", Help: "arrival stagger: co-running agent i starts at cycle i*stagger", Warm: WarmInvariant},
		},
		func(cfg sim.Config, p Params) (Result, error) {
			specs, err := sim.ParseAgents(p.String("agents"))
			if err != nil {
				return nil, err
			}
			size, err := join.ParseSizeClass(p.String("size"))
			if err != nil {
				return nil, err
			}
			structure, err := structures.ParseKind(p.String("structure"))
			if err != nil {
				return nil, err
			}
			stagger, err := p.Int("stagger")
			if err != nil {
				return nil, err
			}
			if stagger < 0 {
				return nil, fmt.Errorf("exp: parameter stagger=%q: want a non-negative integer", p.String("stagger"))
			}
			cfg.Stagger = uint64(stagger)
			return cfg.RunCMPStructure(size, specs, structure)
		}))

	Register(NewExperiment("zoo",
		"The workload zoo: the paper's hash-bucket walk next to skip-list,\n"+
			"B+-tree point/range, LSM memtable+SSTable and BFS frontier-expansion\n"+
			"traversals, each built into the simulated address space with a\n"+
			"generated Widx program whose match stream is checked bit-identical\n"+
			"to a software reference — per-structure geometry, walker scaling\n"+
			"against the OoO baseline, and the match-stream fingerprint.",
		[]ParamSpec{
			{Key: "structure", Default: "hashjoin,skiplist,btree,lsm,bfs", Help: "comma-separated traversal structures to run"},
			{Key: "walkers", Default: "", Help: "comma-separated Widx walker counts", Warm: WarmInvariant},
			{Key: "span", Default: "1", Help: "B+-tree range-scan width (keys per probe)"},
			{Key: "prefetch-dist", Default: "0", Help: "dispatcher prefetch distance into the probe-key column (keys ahead, 0 = off)", Warm: WarmInvariant},
			{Key: "touch-walker", Default: "false", Help: "use the TOUCHing walker variant (non-blocking node prefetch ahead of the demand load)", Warm: WarmInvariant},
		},
		func(cfg sim.Config, p Params) (Result, error) {
			cfg, err := applyWalkers(cfg, p)
			if err != nil {
				return nil, err
			}
			kinds, err := structures.ParseKinds(p.String("structure"))
			if err != nil {
				return nil, err
			}
			span, err := p.Int("span")
			if err != nil {
				return nil, err
			}
			if span < 1 {
				return nil, fmt.Errorf("exp: parameter span=%q: want a positive integer", p.String("span"))
			}
			dist, err := p.Int("prefetch-dist")
			if err != nil {
				return nil, err
			}
			if dist < 0 {
				return nil, fmt.Errorf("exp: parameter prefetch-dist=%q: want a non-negative integer", p.String("prefetch-dist"))
			}
			touch, err := p.Bool("touch-walker")
			if err != nil {
				return nil, err
			}
			return cfg.RunZoo(sim.ZooOptions{
				Structures: kinds,
				Span:       span,
				Prog:       structures.ProgramOptions{PrefetchDist: dist, TouchWalker: touch},
			})
		}), "structures")

	Register(NewExperiment("ablation",
		"The Figure 3 hashing-organization ablation: coupled hash+walk vs.\n"+
			"per-walker decoupled hashing vs. one shared dispatcher, on one\n"+
			"memory-resident query (the Section 3.1 decoupling claim).",
		[]ParamSpec{
			{Key: "suite", Default: "TPC-H", Help: "benchmark suite of the workload query"},
			{Key: "query", Default: "q20", Help: "workload query name"},
			{Key: "walkers", Default: "4", Help: "walker count of every design point", Warm: WarmInvariant},
		},
		func(cfg sim.Config, p Params) (Result, error) {
			suite, err := workloads.ParseSuite(p.String("suite"))
			if err != nil {
				return nil, err
			}
			q, err := workloads.ByName(suite, p.String("query"))
			if err != nil {
				return nil, err
			}
			walkers, err := p.Int("walkers")
			if err != nil {
				return nil, err
			}
			return cfg.RunHashingAblation(q, walkers)
		}))
}

// applyWalkers folds an optional comma-separated "walkers" parameter into
// the configured walker sweep.
func applyWalkers(cfg sim.Config, p Params) (sim.Config, error) {
	if p.String("walkers") == "" {
		return cfg, nil
	}
	ws, err := p.Ints("walkers")
	if err != nil {
		return cfg, err
	}
	cfg.Walkers = ws
	return cfg, nil
}

// parseSizes parses a comma-separated kernel size-class list.
func parseSizes(s string) ([]join.SizeClass, error) {
	var out []join.SizeClass
	for _, part := range splitNonEmpty(s) {
		size, err := join.ParseSizeClass(part)
		if err != nil {
			return nil, err
		}
		out = append(out, size)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("exp: no kernel size classes in %q", s)
	}
	return out, nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
