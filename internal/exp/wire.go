package exp

import (
	"encoding/json"

	"widx/internal/sampling"
)

// RawResult is a Result restored from its wire encoding: the text report
// and JSON payload an executed Result produced elsewhere — in another
// process, or in the sweep service's persistent result store. Both methods
// return the stored bytes verbatim, so a sweep report or manifest
// assembled from RawResults encodes byte-identically to one assembled from
// the original Results. That byte-preservation is what the sharded sweep
// service's merge correctness rests on; do not "normalize" here.
type RawResult struct {
	// Report is the Text() report of the original result.
	Report string
	// Payload is the JSON() encoding of the original result.
	Payload json.RawMessage
}

// Text returns the stored text report.
func (r RawResult) Text() string { return r.Report }

// JSON returns a copy of the stored JSON payload.
func (r RawResult) JSON() ([]byte, error) {
	return append([]byte(nil), r.Payload...), nil
}

// SamplingReport implements sim.SamplingReporter by recovering the
// sampling block embedded in the stored payload, so a manifest assembled
// from a wire-restored result carries the same top-level `sampling` block
// as one assembled from the original. The report re-marshals from the
// decoded struct, which is byte-stable: Go's float encoding round-trips.
func (r RawResult) SamplingReport() *sampling.Report {
	var probe struct {
		Sampling *sampling.Report `json:"sampling"`
	}
	if err := json.Unmarshal(r.Payload, &probe); err != nil {
		return nil
	}
	return probe.Sampling
}

// SampledMetricValues implements sim.SamplingReporter. A wire-restored
// result carries stored estimates, never a full-detail verification
// reference, so it offers no metric values to verify against.
func (r RawResult) SampledMetricValues() map[string]float64 { return nil }
