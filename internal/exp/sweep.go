package exp

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"widx/internal/sim"
)

// Axis is one sweep dimension: a parameter key and the values it takes, in
// sweep order.
type Axis struct {
	Key    string   `json:"key"`
	Values []string `json:"values"`
}

// ParseAxis parses the -sweep grammar "key=v1,v2,v3".
func ParseAxis(s string) (Axis, error) {
	key, vals, ok := strings.Cut(s, "=")
	key = strings.TrimSpace(key)
	if !ok || key == "" || vals == "" {
		return Axis{}, fmt.Errorf("exp: bad sweep axis %q (want key=v1,v2,...)", s)
	}
	ax := Axis{Key: key}
	for _, v := range strings.Split(vals, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			return Axis{}, fmt.Errorf("exp: sweep axis %q has an empty value", s)
		}
		ax.Values = append(ax.Values, v)
	}
	return ax, nil
}

// SweepRun is one grid point of a sweep: the full resolved parameter set of
// the point and its result.
type SweepRun struct {
	Params Params
	Result Result
}

// Label renders the point's axis assignment ("agents=2xwidx:4w queue-depth=4").
func (r SweepRun) label(axes []Axis) string {
	parts := make([]string, len(axes))
	for i, ax := range axes {
		parts[i] = ax.Key + "=" + r.Params[ax.Key]
	}
	return strings.Join(parts, " ")
}

// SweepResult is the result of expanding a parameter grid over one
// experiment. Runs are in grid order — the last axis varies fastest — and
// the order is independent of the parallelism the runs executed at.
type SweepResult struct {
	Experiment string
	Axes       []Axis
	Runs       []SweepRun
}

// Text renders every run's report under its axis-assignment header.
func (s *SweepResult) Text() string {
	var b strings.Builder
	dims := make([]string, len(s.Axes))
	for i, ax := range s.Axes {
		dims[i] = fmt.Sprintf("%s(%d)", ax.Key, len(ax.Values))
	}
	fmt.Fprintf(&b, "Sweep — %s over %s: %d runs\n", s.Experiment, strings.Join(dims, " x "), len(s.Runs))
	for _, r := range s.Runs {
		fmt.Fprintf(&b, "\n--- %s %s ---\n", s.Experiment, r.label(s.Axes))
		b.WriteString(r.Result.Text())
	}
	return b.String()
}

// sweepRunJSON is one grid point in the JSON encoding.
type sweepRunJSON struct {
	Params  map[string]string `json:"params"`
	Results json.RawMessage   `json:"results"`
}

// JSON encodes the sweep as {experiment, axes, runs:[{params, results}]}.
func (s *SweepResult) JSON() ([]byte, error) {
	payload := struct {
		Experiment string         `json:"experiment"`
		Axes       []Axis         `json:"axes"`
		Runs       []sweepRunJSON `json:"runs"`
	}{Experiment: s.Experiment, Axes: s.Axes}
	for _, r := range s.Runs {
		raw, err := r.Result.JSON()
		if err != nil {
			return nil, fmt.Errorf("exp: encoding sweep run %s: %w", r.label(s.Axes), err)
		}
		payload.Runs = append(payload.Runs, sweepRunJSON{Params: r.Params, Results: raw})
	}
	return json.MarshalIndent(payload, "", "  ")
}

// sweepOrder plans the dispatch order of a sweep grid. Without a warm
// cache the grid runs in index order. With one, points are grouped by
// their warm-affecting axis assignment (stable within a group, groups in
// grid order), so one build and warm-up — done by the group's first point,
// memoized under the warm cache's content-addressed key — serves the whole
// warm-invariant row before the grid moves to the next warm state.
// Dispatch order is pure scheduling: every point still writes its result
// to its own grid index, so reports are byte-identical either way.
func sweepOrder(e Experiment, cfg sim.Config, axes []Axis, points []Params) []int {
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	if cfg.WarmCache == nil {
		return order
	}
	invariant := map[string]bool{}
	for _, key := range WarmInvariantKeys(e) {
		invariant[key] = true
	}
	sig := make([]string, len(points))
	for i, p := range points {
		var parts []string
		for _, ax := range axes {
			if !invariant[ax.Key] {
				parts = append(parts, ax.Key+"="+p[ax.Key])
			}
		}
		sig[i] = strings.Join(parts, " ")
	}
	sort.SliceStable(order, func(a, b int) bool { return sig[order[a]] < sig[order[b]] })
	return order
}

// RunSweep expands the axes into a full-factorial grid over the experiment
// and executes every point through the sim worker pool: the grid fans out
// across cfg.Parallelism workers (each point sharing the budget via
// InnerConfig) and every point writes its result into its own grid index,
// so the report is byte-identical at any parallelism level.
func RunSweep(e Experiment, cfg sim.Config, set map[string]string, axes []Axis) (*RunOutput, error) {
	if len(axes) == 0 {
		return nil, fmt.Errorf("exp: sweep over %s needs at least one axis", e.Name())
	}
	base, err := Resolve(e, set)
	if err != nil {
		return nil, err
	}
	// The manifest's resolved config: the base common knobs applied to the
	// harness config. Swept config knobs vary per point and are recorded in
	// each run's params instead.
	baseCfg, err := ApplyConfig(cfg, base)
	if err != nil {
		return nil, err
	}
	n := 1
	seen := map[string]bool{}
	for _, ax := range axes {
		if _, known := base[ax.Key]; !known {
			return nil, fmt.Errorf("exp: experiment %s does not take sweep parameter %q", e.Name(), ax.Key)
		}
		if seen[ax.Key] {
			return nil, fmt.Errorf("exp: duplicate sweep axis %q", ax.Key)
		}
		// A -set value for a swept key would never run — every grid point
		// overwrites it. Silently discarding an override breaks the
		// package's rule that overrides are never ignored.
		if _, overridden := set[ax.Key]; overridden {
			return nil, fmt.Errorf("exp: parameter %q is both -set and -sweep; pick one", ax.Key)
		}
		seen[ax.Key] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("exp: sweep axis %q has no values", ax.Key)
		}
		n *= len(ax.Values)
	}

	// Decode every grid point up front: the planner below wants the full
	// grid to order dispatch, and each point's parameter set is fixed by
	// its index alone (last axis varies fastest).
	points := make([]Params, n)
	for i := 0; i < n; i++ {
		p := base.clone()
		rem := i
		for a := len(axes) - 1; a >= 0; a-- {
			ax := axes[a]
			p[ax.Key] = ax.Values[rem%len(ax.Values)]
			rem /= len(ax.Values)
		}
		points[i] = p
	}

	sweep := &SweepResult{Experiment: e.Name(), Axes: axes, Runs: make([]SweepRun, n)}
	inner := cfg.InnerConfig(n)
	order := sweepOrder(e, cfg, axes, points)
	if err := cfg.RunTasks(n, func(slot int) error {
		i := order[slot]
		p := points[i]
		runCfg, err := ApplyConfig(inner, p)
		if err != nil {
			return err
		}
		res, err := e.Run(runCfg, p)
		if err != nil {
			return fmt.Errorf("exp: %s [%s]: %w", e.Name(), SweepRun{Params: p}.label(axes), err)
		}
		sweep.Runs[i] = SweepRun{Params: p, Result: res}
		return nil
	}); err != nil {
		return nil, err
	}
	// The manifest's top-level params drop the swept keys: their base values
	// never ran, and every grid point records its own full set.
	baseParams := base.clone()
	for _, ax := range axes {
		delete(baseParams, ax.Key)
	}
	return &RunOutput{Experiment: e, Params: baseParams, Config: baseCfg, Axes: axes, Result: sweep}, nil
}
