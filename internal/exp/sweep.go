package exp

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"widx/internal/sim"
)

// Axis is one sweep dimension: a parameter key and the values it takes, in
// sweep order.
type Axis struct {
	Key    string   `json:"key"`
	Values []string `json:"values"`
}

// ParseAxis parses the -sweep grammar "key=v1,v2,v3".
func ParseAxis(s string) (Axis, error) {
	key, vals, ok := strings.Cut(s, "=")
	key = strings.TrimSpace(key)
	if !ok || key == "" || vals == "" {
		return Axis{}, fmt.Errorf("exp: bad sweep axis %q (want key=v1,v2,...)", s)
	}
	ax := Axis{Key: key}
	for _, v := range strings.Split(vals, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			return Axis{}, fmt.Errorf("exp: sweep axis %q has an empty value", s)
		}
		ax.Values = append(ax.Values, v)
	}
	return ax, nil
}

// SweepRun is one grid point of a sweep: the full resolved parameter set of
// the point and its result.
type SweepRun struct {
	Params Params
	Result Result
}

// Label renders the point's axis assignment ("agents=2xwidx:4w queue-depth=4").
func (r SweepRun) label(axes []Axis) string {
	parts := make([]string, len(axes))
	for i, ax := range axes {
		parts[i] = ax.Key + "=" + r.Params[ax.Key]
	}
	return strings.Join(parts, " ")
}

// SweepResult is the result of expanding a parameter grid over one
// experiment. Runs are in grid order — the last axis varies fastest — and
// the order is independent of the parallelism the runs executed at.
type SweepResult struct {
	Experiment string
	Axes       []Axis
	Runs       []SweepRun
}

// Text renders every run's report under its axis-assignment header.
func (s *SweepResult) Text() string {
	var b strings.Builder
	dims := make([]string, len(s.Axes))
	for i, ax := range s.Axes {
		dims[i] = fmt.Sprintf("%s(%d)", ax.Key, len(ax.Values))
	}
	fmt.Fprintf(&b, "Sweep — %s over %s: %d runs\n", s.Experiment, strings.Join(dims, " x "), len(s.Runs))
	for _, r := range s.Runs {
		fmt.Fprintf(&b, "\n--- %s %s ---\n", s.Experiment, r.label(s.Axes))
		b.WriteString(r.Result.Text())
	}
	return b.String()
}

// sweepRunJSON is one grid point in the JSON encoding.
type sweepRunJSON struct {
	Params  map[string]string `json:"params"`
	Results json.RawMessage   `json:"results"`
}

// JSON encodes the sweep as {experiment, axes, runs:[{params, results}]}.
func (s *SweepResult) JSON() ([]byte, error) {
	payload := struct {
		Experiment string         `json:"experiment"`
		Axes       []Axis         `json:"axes"`
		Runs       []sweepRunJSON `json:"runs"`
	}{Experiment: s.Experiment, Axes: s.Axes}
	for _, r := range s.Runs {
		raw, err := r.Result.JSON()
		if err != nil {
			return nil, fmt.Errorf("exp: encoding sweep run %s: %w", r.label(s.Axes), err)
		}
		payload.Runs = append(payload.Runs, sweepRunJSON{Params: r.Params, Results: raw})
	}
	return json.MarshalIndent(payload, "", "  ")
}

// SweepPlan is an expanded sweep grid before (or independent of) execution:
// every grid point's fully resolved parameter set plus the manifest inputs
// shared by all of them. The plan is pure data derived deterministically
// from (experiment, config, overrides, axes) — two processes expanding the
// same request agree on every point and its index, which is what lets a
// coordinator chunk a grid across worker processes by index and merge the
// index-tagged results back into a report byte-identical to a local run.
type SweepPlan struct {
	Experiment Experiment
	Axes       []Axis
	// Base is the resolved base parameter set, including swept keys at
	// their base values (the form Resolve returns).
	Base Params
	// BaseConfig is the harness config with the base common knobs applied —
	// the config the sweep manifest records.
	BaseConfig sim.Config
	// Points is the full-factorial grid in grid order: the last axis
	// varies fastest, and Points[i] is the complete parameter set of grid
	// index i.
	Points []Params
}

// PlanSweep validates a sweep request and expands the grid without running
// anything. RunSweep is PlanSweep + Run + Output; shard executors call the
// pieces directly to run an index subset.
func PlanSweep(e Experiment, cfg sim.Config, set map[string]string, axes []Axis) (*SweepPlan, error) {
	if len(axes) == 0 {
		return nil, fmt.Errorf("exp: sweep over %s needs at least one axis", e.Name())
	}
	base, err := Resolve(e, set)
	if err != nil {
		return nil, err
	}
	// The manifest's resolved config: the base common knobs applied to the
	// harness config. Swept config knobs vary per point and are recorded in
	// each run's params instead.
	baseCfg, err := ApplyConfig(cfg, base)
	if err != nil {
		return nil, err
	}
	n := 1
	seen := map[string]bool{}
	for _, ax := range axes {
		if _, known := base[ax.Key]; !known {
			return nil, fmt.Errorf("exp: experiment %s does not take sweep parameter %q", e.Name(), ax.Key)
		}
		if seen[ax.Key] {
			return nil, fmt.Errorf("exp: duplicate sweep axis %q", ax.Key)
		}
		// A -set value for a swept key would never run — every grid point
		// overwrites it. Silently discarding an override breaks the
		// package's rule that overrides are never ignored.
		if _, overridden := set[ax.Key]; overridden {
			return nil, fmt.Errorf("exp: parameter %q is both -set and -sweep; pick one", ax.Key)
		}
		seen[ax.Key] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("exp: sweep axis %q has no values", ax.Key)
		}
		n *= len(ax.Values)
	}

	// Decode every grid point up front: the dispatch planner wants the full
	// grid to order execution, and each point's parameter set is fixed by
	// its index alone (last axis varies fastest).
	points := make([]Params, n)
	for i := 0; i < n; i++ {
		p := base.clone()
		rem := i
		for a := len(axes) - 1; a >= 0; a-- {
			ax := axes[a]
			p[ax.Key] = ax.Values[rem%len(ax.Values)]
			rem /= len(ax.Values)
		}
		points[i] = p
	}
	return &SweepPlan{Experiment: e, Axes: axes, Base: base, BaseConfig: baseCfg, Points: points}, nil
}

// CheckIndices validates a grid-index subset (a coordinator shard): every
// index must be in range and appear at most once. A nil or empty subset is
// valid and means "the whole grid".
func (pl *SweepPlan) CheckIndices(indices []int) error {
	seen := make(map[int]bool, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(pl.Points) {
			return fmt.Errorf("exp: sweep index %d out of range [0, %d)", i, len(pl.Points))
		}
		if seen[i] {
			return fmt.Errorf("exp: duplicate sweep index %d", i)
		}
		seen[i] = true
	}
	return nil
}

// Run executes the grid points named by indices (nil means every point)
// through the sim worker pool and returns their runs, parallel to indices.
// Points are dispatched in warm-grouped order when cfg carries a warm cache
// but every run lands at its own position, so the returned slice — and any
// report assembled from it — is byte-identical at any parallelism.
// onPoint, when non-nil, is called once per completed point with its grid
// index, from worker goroutines (the caller synchronizes); it is the
// progress and persistence hook of the serve layer.
func (pl *SweepPlan) Run(cfg sim.Config, indices []int, onPoint func(gridIndex int, r SweepRun)) ([]SweepRun, error) {
	if indices == nil {
		indices = make([]int, len(pl.Points))
		for i := range indices {
			indices[i] = i
		}
	}
	if err := pl.CheckIndices(indices); err != nil {
		return nil, err
	}
	subset := make([]Params, len(indices))
	for pos, i := range indices {
		subset[pos] = pl.Points[i]
	}
	runs := make([]SweepRun, len(indices))
	inner := cfg.InnerConfig(len(indices))
	order := sweepOrder(pl.Experiment, cfg, pl.Axes, subset)
	if err := cfg.RunTasks(len(indices), func(slot int) error {
		pos := order[slot]
		p := subset[pos]
		runCfg, err := ApplyConfig(inner, p)
		if err != nil {
			return err
		}
		res, err := pl.Experiment.Run(runCfg, p)
		if err != nil {
			return fmt.Errorf("exp: %s [%s]: %w", pl.Experiment.Name(), SweepRun{Params: p}.label(pl.Axes), err)
		}
		runs[pos] = SweepRun{Params: p, Result: res}
		if onPoint != nil {
			onPoint(indices[pos], runs[pos])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return runs, nil
}

// Output assembles the full-grid RunOutput from per-index results —
// results[i] is grid index i's result, from any mix of local runs, cache
// hits and wire-restored RawResults. The output (and the manifest built
// from it) is byte-identical to a single-process RunSweep of the same
// request, which is the sharded sweep service's headline correctness
// property.
func (pl *SweepPlan) Output(results []Result) (*RunOutput, error) {
	if len(results) != len(pl.Points) {
		return nil, fmt.Errorf("exp: sweep over %s has %d points, got %d results", pl.Experiment.Name(), len(pl.Points), len(results))
	}
	sweep := &SweepResult{Experiment: pl.Experiment.Name(), Axes: pl.Axes, Runs: make([]SweepRun, len(results))}
	for i, res := range results {
		if res == nil {
			return nil, fmt.Errorf("exp: sweep over %s is missing the result of grid index %d", pl.Experiment.Name(), i)
		}
		sweep.Runs[i] = SweepRun{Params: pl.Points[i], Result: res}
	}
	// The manifest's top-level params drop the swept keys: their base values
	// never ran, and every grid point records its own full set.
	baseParams := pl.Base.clone()
	for _, ax := range pl.Axes {
		delete(baseParams, ax.Key)
	}
	return &RunOutput{Experiment: pl.Experiment, Params: baseParams, Config: pl.BaseConfig, Axes: pl.Axes, Result: sweep}, nil
}

// sweepOrder plans the dispatch order of a sweep grid. Without a warm
// cache the grid runs in index order. With one, points are grouped by
// their warm-affecting axis assignment (stable within a group, groups in
// grid order), so one build and warm-up — done by the group's first point,
// memoized under the warm cache's content-addressed key — serves the whole
// warm-invariant row before the grid moves to the next warm state.
// Dispatch order is pure scheduling: every point still writes its result
// to its own grid index, so reports are byte-identical either way.
func sweepOrder(e Experiment, cfg sim.Config, axes []Axis, points []Params) []int {
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	if cfg.WarmCache == nil {
		return order
	}
	invariant := map[string]bool{}
	for _, key := range WarmInvariantKeys(e) {
		invariant[key] = true
	}
	sig := make([]string, len(points))
	for i, p := range points {
		var parts []string
		for _, ax := range axes {
			if !invariant[ax.Key] {
				parts = append(parts, ax.Key+"="+p[ax.Key])
			}
		}
		sig[i] = strings.Join(parts, " ")
	}
	sort.SliceStable(order, func(a, b int) bool { return sig[order[a]] < sig[order[b]] })
	return order
}

// RunSweep expands the axes into a full-factorial grid over the experiment
// and executes every point through the sim worker pool: the grid fans out
// across cfg.Parallelism workers (each point sharing the budget via
// InnerConfig) and every point writes its result into its own grid index,
// so the report is byte-identical at any parallelism level.
func RunSweep(e Experiment, cfg sim.Config, set map[string]string, axes []Axis) (*RunOutput, error) {
	pl, err := PlanSweep(e, cfg, set, axes)
	if err != nil {
		return nil, err
	}
	runs, err := pl.Run(cfg, nil, nil)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(runs))
	for i, r := range runs {
		results[i] = r.Result
	}
	return pl.Output(results)
}
