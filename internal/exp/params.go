package exp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"widx/internal/sim"
)

// WarmClass classifies a parameter for warm-state reuse (sim.Config's
// WarmCache): does changing the parameter change what a warm-up builds —
// the workload image, the hash tables, the warmed cache/TLB content — or
// only how the measured run times it?
type WarmClass uint8

const (
	// WarmAffecting parameters change the built workload or the warmed
	// hierarchy content; design points differing in one must not share
	// warm state. The zero value on purpose: an unclassified parameter
	// is treated as affecting, which costs speed, never correctness.
	WarmAffecting WarmClass = iota
	// WarmInvariant parameters are timing-side only (MSHR budgets, queue
	// depths, stagger, walker counts); a sweep over them reuses one
	// build and warm-up. The classification is asserted, not trusted:
	// the cache's verify mode rebuilds on hits and fails loudly if a
	// parameter marked invariant actually leaks into warm content.
	WarmInvariant
)

// MarshalText encodes the class by name for any JSON surface.
func (w WarmClass) MarshalText() ([]byte, error) {
	if w == WarmInvariant {
		return []byte("invariant"), nil
	}
	return []byte("affecting"), nil
}

// UnmarshalText decodes the class name, so catalog payloads (the sweep
// service's /api/v1/experiments) round-trip. Unknown names fall back to
// affecting, matching the zero value's safe default.
func (w *WarmClass) UnmarshalText(text []byte) error {
	if string(text) == "invariant" {
		*w = WarmInvariant
	} else {
		*w = WarmAffecting
	}
	return nil
}

// ParamSpec declares one experiment parameter: its key, its default (the
// value used when -set does not override it; "" means "inherit from the
// harness configuration"), a help line for -describe and the README
// catalog, and its warm-reuse classification.
type ParamSpec struct {
	Key     string    `json:"key"`
	Default string    `json:"default"`
	Help    string    `json:"help"`
	Warm    WarmClass `json:"warm,omitempty"`
}

// Params is a fully resolved parameter set: every accepted key is present,
// either at its default or at the -set/-sweep override. String-typed on
// purpose — values come from flags and sweep grids and are recorded verbatim
// in the manifest; the typed getters parse on use.
type Params map[string]string

// String returns the raw value of a key.
func (p Params) String(key string) string { return p[key] }

// Int parses an integer parameter.
func (p Params) Int(key string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(p[key]))
	if err != nil {
		return 0, fmt.Errorf("exp: parameter %s=%q: want an integer", key, p[key])
	}
	return n, nil
}

// Float parses a float parameter.
func (p Params) Float(key string) (float64, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(p[key]), 64)
	if err != nil {
		return 0, fmt.Errorf("exp: parameter %s=%q: want a number", key, p[key])
	}
	return f, nil
}

// Bool parses a boolean parameter.
func (p Params) Bool(key string) (bool, error) {
	b, err := strconv.ParseBool(strings.TrimSpace(p[key]))
	if err != nil {
		return false, fmt.Errorf("exp: parameter %s=%q: want true or false", key, p[key])
	}
	return b, nil
}

// Ints parses a comma-separated integer list parameter.
func (p Params) Ints(key string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(p[key], ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("exp: parameter %s=%q: want comma-separated integers", key, p[key])
		}
		out = append(out, n)
	}
	return out, nil
}

// clone copies a parameter set.
func (p Params) clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// CommonParams are the configuration knobs every experiment accepts in
// addition to its own parameters. They default to "" — inherit the harness
// configuration (the -scale/-sample flags and sim.DefaultConfig) — and
// exist as parameters so sweeps over scale, sampling effort, MSHR budgets
// and queue depths need no per-experiment plumbing.
// The warm classes: scale and sample shape the built workload and probe
// streams; llc-ways moves the warm-up's LLC inserts (the allocation way
// mask); mshrs, fill-buffers and queue-depth are pure timing knobs.
func CommonParams() []ParamSpec {
	return []ParamSpec{
		{Key: "scale", Default: "", Help: "workload scale relative to the paper's setup"},
		{Key: "sample", Default: "", Help: "probes simulated in detail per design (0 = all)"},
		// The sampled-simulation knobs are timing-side: window placement
		// changes what is measured, never what is built or warmed — the
		// fast-forward checkpoints carry their own span-end keyed entries.
		{Key: "sample-windows", Default: "", Help: "systematic sampling windows (0 = full detail)", Warm: WarmInvariant},
		{Key: "sample-warmup", Default: "", Help: "detailed unmeasured probes per window", Warm: WarmInvariant},
		{Key: "sample-period", Default: "", Help: "measured probes per window", Warm: WarmInvariant},
		{Key: "mshrs", Default: "", Help: "per-agent MSHR count (and the fill-buffer default)", Warm: WarmInvariant},
		{Key: "fill-buffers", Default: "", Help: "shared fill-buffer count (default: track mshrs)", Warm: WarmInvariant},
		{Key: "llc-ways", Default: "", Help: "LLC allocation ways per Widx agent (0 = unpartitioned)"},
		{Key: "queue-depth", Default: "", Help: "Widx per-walker dispatch-queue depth", Warm: WarmInvariant},
	}
}

// AllParams returns every parameter an experiment accepts: the common
// config knobs followed by the experiment's own specs.
func AllParams(e Experiment) []ParamSpec {
	return append(CommonParams(), e.Params()...)
}

// WarmInvariantKeys lists the parameters of an experiment that are
// classified timing-side only (WarmInvariant), in declaration order — the
// axes a warm-cached sweep shares builds and warm-ups across.
func WarmInvariantKeys(e Experiment) []string {
	var out []string
	for _, s := range AllParams(e) {
		if s.Warm == WarmInvariant {
			out = append(out, s.Key)
		}
	}
	return out
}

// Resolve validates a -set style override map against an experiment's
// accepted parameters and returns the fully resolved set (defaults filled
// in). Unknown keys are errors: a typo must not silently run the default.
func Resolve(e Experiment, set map[string]string) (Params, error) {
	specs := AllParams(e)
	known := make(map[string]bool, len(specs))
	p := make(Params, len(specs))
	for _, s := range specs {
		known[s.Key] = true
		p[s.Key] = s.Default
	}
	// Sorted keys: with several unknown overrides, which one the error
	// names must not depend on map iteration order (widxlint detmap).
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !known[k] {
			return nil, fmt.Errorf("exp: experiment %s does not take parameter %q (accepted: %s)",
				e.Name(), k, strings.Join(paramKeys(specs), ", "))
		}
		p[k] = set[k]
	}
	return p, nil
}

func paramKeys(specs []ParamSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Key
	}
	return out
}

// ApplyConfig resolves the common config parameters onto a sim.Config.
// Empty values leave the corresponding knob at its configured value.
func ApplyConfig(cfg sim.Config, p Params) (sim.Config, error) {
	if v := p["scale"]; v != "" {
		f, err := p.Float("scale")
		if err != nil {
			return cfg, err
		}
		cfg.Scale = f
	}
	if v := p["sample"]; v != "" {
		n, err := p.Int("sample")
		if err != nil {
			return cfg, err
		}
		cfg.SampleProbes = n
	}
	if v := p["sample-windows"]; v != "" {
		n, err := p.Int("sample-windows")
		if err != nil {
			return cfg, err
		}
		cfg.SampleWindows = n
	}
	if v := p["sample-warmup"]; v != "" {
		n, err := p.Int("sample-warmup")
		if err != nil {
			return cfg, err
		}
		if n < 0 {
			return cfg, fmt.Errorf("exp: parameter sample-warmup=%q: want a non-negative integer", v)
		}
		cfg.SampleWarmup = uint64(n)
	}
	if v := p["sample-period"]; v != "" {
		n, err := p.Int("sample-period")
		if err != nil {
			return cfg, err
		}
		// 0 would fail sim.Config.Validate whenever windows are on; reject it
		// here so the error names the parameter.
		if n <= 0 {
			return cfg, fmt.Errorf("exp: parameter sample-period=%q: want a positive integer", v)
		}
		cfg.SamplePeriod = uint64(n)
	}
	if v := p["mshrs"]; v != "" {
		n, err := p.Int("mshrs")
		if err != nil {
			return cfg, err
		}
		cfg.Mem.L1MSHRs = n
	}
	if v := p["fill-buffers"]; v != "" {
		n, err := p.Int("fill-buffers")
		if err != nil {
			return cfg, err
		}
		// 0 is sim.Config's track-the-MSHR-count sentinel; accepting it here
		// would label a run "fill-buffers=0" while silently running at the
		// mshrs value.
		if n <= 0 {
			return cfg, fmt.Errorf("exp: parameter fill-buffers=%q: want a positive integer", v)
		}
		cfg.FillBuffers = n
	}
	if v := p["llc-ways"]; v != "" {
		n, err := p.Int("llc-ways")
		if err != nil {
			return cfg, err
		}
		// llc-ways=0 is a real design point (unpartitioned LLC) and the
		// natural baseline of a partitioning sweep, so 0 is accepted.
		if n < 0 {
			return cfg, fmt.Errorf("exp: parameter llc-ways=%q: want a non-negative integer", v)
		}
		cfg.LLCWays = n
	}
	if v := p["queue-depth"]; v != "" {
		n, err := p.Int("queue-depth")
		if err != nil {
			return cfg, err
		}
		// 0 is sim.Config's inherit-the-default sentinel; accepting it here
		// would label a run "queue-depth=0" while silently running at 2.
		if n <= 0 {
			return cfg, fmt.Errorf("exp: parameter queue-depth=%q: want a positive integer", v)
		}
		cfg.QueueDepth = n
	}
	return cfg, nil
}
