// Package exp is the declarative experiment layer on top of the sim
// harness: a registry of named experiments with typed, defaulted parameters,
// a common Result encoding pair (Text for the paper-shaped tables, JSON for
// machine-readable output), a per-run reproducibility manifest carrying the
// resolved configuration, and first-class parameter sweeps that expand a
// grid into runs executed through the sim worker pool with deterministic,
// order-independent result placement.
//
// The registry replaces the historical zoo of bespoke entry points — one
// RunXxx/FormatXxx pair and one hardcoded -run switch case per study — with
// one surface: cmd/experiments lists, describes, runs and sweeps whatever is
// registered here, and a new study is one Register call in catalog.go.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"widx/internal/sim"
)

// Experiment is one registered study: a reproduction of a figure, a table
// or an ablation of the paper, or a new sweep-shaped study built on the
// same harness.
type Experiment interface {
	// Name is the canonical registry name ("kernel", "cmp", ...).
	Name() string
	// Describe is a one-paragraph description of what the experiment
	// measures and which paper artifact it reproduces.
	Describe() string
	// Params declares the experiment-specific parameters and their
	// defaults. Common config parameters (CommonParams) are accepted by
	// every experiment and are not repeated here.
	Params() []ParamSpec
	// Run executes the experiment at a fully resolved configuration and
	// parameter set.
	Run(cfg sim.Config, p Params) (Result, error)
}

// Result is the common encoding pair every experiment returns: the
// fixed-width text report in the shape of the paper's figures, and the JSON
// payload embedded in the run manifest.
type Result interface {
	Text() string
	JSON() ([]byte, error)
}

// definition is the declarative Experiment implementation the catalog (and
// tests) build via NewExperiment.
type definition struct {
	name     string
	describe string
	params   []ParamSpec
	run      func(cfg sim.Config, p Params) (Result, error)
}

func (d *definition) Name() string                               { return d.name }
func (d *definition) Describe() string                           { return d.describe }
func (d *definition) Params() []ParamSpec                        { return d.params }
func (d *definition) Run(c sim.Config, p Params) (Result, error) { return d.run(c, p) }

// NewExperiment builds an Experiment from its parts.
func NewExperiment(name, describe string, params []ParamSpec, run func(cfg sim.Config, p Params) (Result, error)) Experiment {
	return &definition{name: name, describe: describe, params: params, run: run}
}

// The registry. Registration happens from init (catalog.go) and tests;
// lookups happen afterwards, so no locking is needed.
var (
	// ordered keeps the canonical registration order — the order -run all
	// executes and -list prints.
	ordered []Experiment
	// byName resolves lowercase primary names and aliases to experiments.
	byName = map[string]Experiment{}
	// aliasesOf lists the aliases of each primary name, in registration
	// order.
	aliasesOf = map[string][]string{}
)

// Register adds an experiment to the registry under its name and the given
// aliases (the historical -run spellings, e.g. "fig8" for "kernel"). Names
// are case-insensitive. Duplicate names panic: they are programming errors
// in the catalog, not runtime conditions.
func Register(e Experiment, aliases ...string) {
	names := append([]string{e.Name()}, aliases...)
	for _, n := range names {
		key := strings.ToLower(n)
		if key == "" || key == "all" {
			panic(fmt.Sprintf("exp: experiment name %q is reserved", n))
		}
		if _, dup := byName[key]; dup {
			panic(fmt.Sprintf("exp: duplicate experiment name %q", n))
		}
		byName[key] = e
	}
	ordered = append(ordered, e)
	aliasesOf[strings.ToLower(e.Name())] = aliases
}

// Lookup resolves a name or alias, case-insensitively.
func Lookup(name string) (Experiment, bool) {
	e, ok := byName[strings.ToLower(name)]
	return e, ok
}

// Names returns the primary experiment names in canonical (registration)
// order — the order -run all executes.
func Names() []string {
	out := make([]string, len(ordered))
	for i, e := range ordered {
		out[i] = e.Name()
	}
	return out
}

// AllNames returns every accepted -run spelling: primary names and aliases.
func AllNames() []string {
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Aliases returns the aliases registered for a primary name.
func Aliases(name string) []string {
	return aliasesOf[strings.ToLower(name)]
}

// List renders the one-line experiment listing (-list).
func List() string {
	var b strings.Builder
	for _, e := range ordered {
		name := e.Name()
		if al := Aliases(name); len(al) > 0 {
			name += " (" + strings.Join(al, ", ") + ")"
		}
		summary, _, _ := strings.Cut(e.Describe(), "\n")
		fmt.Fprintf(&b, "%-28s %s\n", name, summary)
	}
	return b.String()
}

// Describe renders the full catalog entry for one experiment — description,
// aliases, and every accepted parameter with its default — or, for "all" or
// an empty name, the whole catalog. The same text generates the README
// "Experiment catalog" section.
func Describe(name string) (string, error) {
	if name == "" || strings.EqualFold(name, "all") {
		var b strings.Builder
		for i, e := range ordered {
			if i > 0 {
				b.WriteString("\n")
			}
			b.WriteString(describeOne(e))
		}
		return b.String(), nil
	}
	e, ok := Lookup(name)
	if !ok {
		return "", fmt.Errorf("exp: unknown experiment %q", name)
	}
	return describeOne(e), nil
}

func describeOne(e Experiment) string {
	var b strings.Builder
	header := e.Name()
	if al := Aliases(e.Name()); len(al) > 0 {
		header += " (aliases: " + strings.Join(al, ", ") + ")"
	}
	b.WriteString(header + "\n")
	for _, line := range strings.Split(strings.TrimRight(e.Describe(), "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	specs := e.Params()
	if len(specs) == 0 {
		b.WriteString("  parameters: none beyond the common config knobs\n")
	} else {
		b.WriteString("  parameters:\n")
		for _, s := range specs {
			def := s.Default
			if def == "" {
				def = "(inherit)"
			}
			help := s.Help
			if s.Warm == WarmInvariant {
				help += " [warm-invariant]"
			}
			fmt.Fprintf(&b, "    %-14s default %-22s %s\n", s.Key, def, help)
		}
	}
	return b.String()
}
