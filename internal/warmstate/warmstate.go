// Package warmstate memoizes expensive warm-up artifacts — built join
// tables, warmed cache/TLB content, address-space images — behind
// content-addressed keys so a sweep grid pays for each distinct
// (workload, warm-relevant topology, warming policy) triple once.
//
// The cache is a correctness-critical component: a key that omits a
// warm-affecting knob silently shares state between design points that
// should differ. Two defenses are built in. First, keys are constructed
// through the explicit Fingerprint builder, so every field a key depends
// on is named at the call site. Second, verify mode (SetVerify) re-runs
// the builder on every cache hit and compares a caller-supplied content
// hash of the rebuilt artifact against the cached one — if a
// warm-affecting parameter leaked out of the key, the two builds differ
// and the hit fails loudly instead of corrupting results.
package warmstate

import (
	"fmt"
	"strings"
	"sync"
)

// entry is one memoized artifact. ready is closed once val/err are
// final; concurrent requesters block on it (singleflight).
type entry struct {
	ready  chan struct{}
	val    any
	err    error
	hash   uint64
	hashed bool
}

// Cache is a content-addressed artifact store, safe for concurrent use.
// The zero value is not ready; use New.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	verify  bool
	hits    uint64
	misses  uint64
}

// New returns an empty cache.
func New() *Cache { return &Cache{entries: make(map[string]*entry)} }

// SetVerify toggles verify mode: every subsequent hit re-runs the
// builder and cross-checks the artifact's content hash. Expensive — it
// defeats the cache's purpose — but turns a key-construction bug from
// silent result corruption into a hard error.
func (c *Cache) SetVerify(v bool) {
	c.mu.Lock()
	c.verify = v
	c.mu.Unlock()
}

// Stats reports the hit/miss counters. A hit is any Get that found an
// entry, including ones that waited on an in-flight build.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Get returns the artifact stored under key, building it with build on
// first use. Concurrent Gets for the same key run build exactly once;
// the rest block until it completes. Build errors are cached: a
// deterministic builder that fails once would fail every time, and
// re-running it per design point would hide that the failure is shared.
//
// hash must map an artifact to a content digest that is equal for
// equal-content builds; it is consulted only in verify mode and may be
// nil to opt a key out of verification.
func Get[T any](c *Cache, key string, build func() (T, error), hash func(T) uint64) (T, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	verify := c.verify
	if !ok {
		e = &entry{ready: make(chan struct{})}
		c.entries[key] = e
		c.misses++
		c.mu.Unlock()
		v, err := build()
		e.val, e.err = v, err
		if err == nil && verify && hash != nil {
			e.hash, e.hashed = hash(v), true
		}
		close(e.ready)
		return v, err
	}
	c.hits++
	c.mu.Unlock()
	<-e.ready
	var zero T
	if e.err != nil {
		return zero, e.err
	}
	v := e.val.(T)
	if verify && e.hashed && hash != nil {
		rebuilt, err := build()
		if err != nil {
			return zero, fmt.Errorf("warmstate: verify rebuild for key %q: %w", key, err)
		}
		if h := hash(rebuilt); h != e.hash {
			return zero, fmt.Errorf("warmstate: content mismatch for key %q: cached %#x, rebuilt %#x — a warm-affecting parameter is missing from this key", key, e.hash, h)
		}
	}
	return v, nil
}

// Fingerprint builds a cache key field by field, so the set of inputs a
// key depends on is explicit and reviewable at the call site. Fields are
// concatenated in call order; callers must use a fixed order. Values are
// rendered with %v, which is deterministic for the value-typed specs and
// scalars used here (fmt prints maps in sorted key order).
type Fingerprint struct {
	parts []string
}

// NewFingerprint starts a key of the given kind ("kernel", "engine",
// "cmpwarm", ...). Distinct kinds never collide even with equal fields.
func NewFingerprint(kind string) *Fingerprint {
	return &Fingerprint{parts: []string{kind}}
}

// Field appends one named input to the key.
func (f *Fingerprint) Field(name string, v any) *Fingerprint {
	f.parts = append(f.parts, fmt.Sprintf("%s=%v", name, v))
	return f
}

// Key renders the fingerprint.
func (f *Fingerprint) Key() string { return strings.Join(f.parts, "|") }

// FNV-1a, the content-hash primitive shared by the snapshot hashers.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Hasher accumulates an FNV-1a 64-bit digest over bytes, words and
// strings. The zero value is NOT ready; use NewHasher.
type Hasher struct{ h uint64 }

// NewHasher returns a Hasher at the FNV-1a offset basis.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset} }

// Byte folds one byte into the digest.
func (h *Hasher) Byte(b byte) {
	h.h = (h.h ^ uint64(b)) * fnvPrime
}

// Bytes folds a byte slice into the digest.
func (h *Hasher) Bytes(p []byte) {
	d := h.h
	for _, b := range p {
		d = (d ^ uint64(b)) * fnvPrime
	}
	h.h = d
}

// Word folds a 64-bit value into the digest, little-endian.
func (h *Hasher) Word(v uint64) {
	d := h.h
	for i := 0; i < 8; i++ {
		d = (d ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	h.h = d
}

// Bool folds a boolean into the digest.
func (h *Hasher) Bool(b bool) {
	if b {
		h.Byte(1)
	} else {
		h.Byte(0)
	}
}

// String folds a length-prefixed string into the digest. The length
// prefix keeps ("ab","c") distinct from ("a","bc").
func (h *Hasher) String(s string) {
	h.Word(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.Byte(s[i])
	}
}

// Sum returns the current digest.
func (h *Hasher) Sum() uint64 { return h.h }
