package warmstate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// DiskStore is the persistent sibling of Cache: a content-addressed
// blob store on disk, keyed by the same explicit Fingerprint strings, so
// artifacts survive the process — the sweep service keys finished
// experiment results by (build fingerprint, resolved config, resolved
// params) and serves a repeated sweep point from disk instead of
// re-simulating it.
//
// The same correctness discipline applies as for Cache: a key that omits
// a result-affecting input silently serves stale data. Keys are built
// through Fingerprint so every input is named at the call site, and each
// entry stores its full key alongside the payload — a filename-hash
// collision is detected on Get and treated as a miss, never served.
//
// Writes are atomic (temp file + rename in the store directory), so a
// crashed or cancelled process can never leave a partial entry that a
// later Get would read: an entry is either absent or complete.
type DiskStore struct {
	dir string

	mu     sync.Mutex
	hits   uint64
	misses uint64
}

// diskEntry is the on-disk envelope of one entry.
type diskEntry struct {
	Key   string `json:"key"`
	Value []byte `json:"value"`
}

// OpenDiskStore opens (creating if needed) a store rooted at dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("warmstate: disk store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("warmstate: opening disk store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// path maps a key to its entry file: an FNV-1a digest of the key. The key
// itself is stored in the entry, so a digest collision degrades to a miss
// (checked in Get), not to wrong data.
func (s *DiskStore) path(key string) string {
	h := NewHasher()
	h.String(key)
	return filepath.Join(s.dir, fmt.Sprintf("%016x.json", h.Sum()))
}

// Get returns the payload stored under key, if present. Unreadable or
// mismatched entries (digest collisions, foreign files) are misses.
func (s *DiskStore) Get(key string) ([]byte, bool, error) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			s.count(false)
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("warmstate: reading disk store entry: %w", err)
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key {
		s.count(false)
		return nil, false, nil
	}
	s.count(true)
	return e.Value, true, nil
}

// Put stores payload under key, atomically: the entry is written to a
// temporary file in the store directory and renamed into place, so
// concurrent readers and interrupted writers never observe a partial
// entry.
func (s *DiskStore) Put(key string, payload []byte) error {
	data, err := json.Marshal(diskEntry{Key: key, Value: payload})
	if err != nil {
		return fmt.Errorf("warmstate: encoding disk store entry: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("warmstate: writing disk store entry: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("warmstate: writing disk store entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("warmstate: writing disk store entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("warmstate: committing disk store entry: %w", err)
	}
	return nil
}

// Stats reports the Get hit/miss counters.
func (s *DiskStore) Stats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

func (s *DiskStore) count(hit bool) {
	s.mu.Lock()
	if hit {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
}

// Len counts the committed entries on disk.
func (s *DiskStore) Len() (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("warmstate: listing disk store: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n, nil
}

// Verify walks every committed entry and checks its integrity: the file
// parses, carries a non-empty key, and sits at the path its key hashes
// to. Leftover temp files from in-flight writes are ignored (they are
// invisible to Get); anything else malformed is an error. A cancelled or
// crashed run must leave the store Verify-clean — that is the "no partial
// entries" contract the sweep service's cancellation test asserts.
func (s *DiskStore) Verify() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("warmstate: listing disk store: %w", err)
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		path := filepath.Join(s.dir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("warmstate: verify: %w", err)
		}
		var e diskEntry
		if err := json.Unmarshal(data, &e); err != nil {
			return fmt.Errorf("warmstate: verify: entry %s is not a committed envelope: %w", ent.Name(), err)
		}
		if e.Key == "" {
			return fmt.Errorf("warmstate: verify: entry %s has an empty key", ent.Name())
		}
		if want := s.path(e.Key); want != path {
			return fmt.Errorf("warmstate: verify: entry %s stores key %q which hashes to %s", ent.Name(), e.Key, filepath.Base(want))
		}
	}
	return nil
}
