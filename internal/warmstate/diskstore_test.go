package warmstate

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDiskStoreRoundTrip(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := NewFingerprint("result").Field("build", "abc").Field("params", "x=1").Key()
	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("empty store Get = %v, %v", ok, err)
	}
	payload := []byte(`{"text":"report","results":{"v":1}}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after Put = %q, %v, %v", got, ok, err)
	}
	if hits, misses := s.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}

	// A second store over the same directory sees the entry: persistence
	// across processes is the point.
	s2, err := OpenDiskStore(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, err := s2.Get(key); err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("reopened Get = %q, %v, %v", got, ok, err)
	}

	// Overwrite is last-writer-wins and stays committed.
	if err := s.Put(key, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := s.Get(key); string(got) != `{"v":2}` {
		t.Fatalf("overwritten entry = %q", got)
	}
}

// An entry whose stored key does not match the requested one (a filename
// collision, a hand-copied file) is a miss, never served as data.
func TestDiskStoreKeyMismatchIsMiss(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-a", []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Forge a collision: move a's entry file to where key-b would live.
	if err := os.Rename(s.path("key-a"), s.path("key-b")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("key-b"); err != nil || ok {
		t.Fatalf("mismatched entry served: %v, %v", ok, err)
	}
	// Verify catches the mis-placed entry.
	if err := s.Verify(); err == nil || !strings.Contains(err.Error(), "hashes to") {
		t.Fatalf("Verify missed the mis-placed entry: %v", err)
	}
}

// Verify flags truncated (non-envelope) entries and ignores in-flight
// temp files, which Get can never observe.
func TestDiskStoreVerifyPartialEntries(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), "put-123.tmp"), []byte(`{"key":"x","val`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("temp file failed Verify: %v", err)
	}
	if n, _ := s.Len(); n != 0 {
		t.Fatalf("temp file counted as entry: Len = %d", n)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), "0000000000000000.json"), []byte(`{"key":"x","val`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err == nil {
		t.Fatal("Verify accepted a truncated entry")
	}
}
