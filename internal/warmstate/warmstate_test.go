package warmstate

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGetMemoizes: the builder runs once per key, hits return the same
// artifact, and the counters track hit/miss traffic.
func TestGetMemoizes(t *testing.T) {
	c := New()
	var builds int
	build := func() (*[]int, error) {
		builds++
		v := []int{1, 2, 3}
		return &v, nil
	}
	a, err := Get(c, "k", build, nil)
	if err != nil || builds != 1 {
		t.Fatalf("first Get: err=%v builds=%d", err, builds)
	}
	b, err := Get(c, "k", build, nil)
	if err != nil || builds != 1 {
		t.Fatalf("second Get rebuilt: err=%v builds=%d", err, builds)
	}
	if a != b {
		t.Fatal("hit returned a different artifact")
	}
	if _, err := Get(c, "k2", build, nil); err != nil || builds != 2 {
		t.Fatalf("distinct key did not build: err=%v builds=%d", err, builds)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 1/2", hits, misses)
	}
}

// TestGetSingleflight: concurrent Gets for one key run the builder
// exactly once and all receive the same artifact.
func TestGetSingleflight(t *testing.T) {
	c := New()
	var builds atomic.Int32
	build := func() (*int, error) {
		builds.Add(1)
		v := 7
		return &v, nil
	}
	const n = 16
	results := make([]*int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := Get(c, "k", build, nil)
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("builder ran %d times, want 1", got)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent Gets returned different artifacts")
		}
	}
}

// TestErrorCached: a failed build is remembered — deterministic builders
// fail deterministically, so retrying per design point would only hide
// that the failure is shared.
func TestErrorCached(t *testing.T) {
	c := New()
	boom := errors.New("boom")
	var builds int
	build := func() (int, error) {
		builds++
		return 0, boom
	}
	if _, err := Get(c, "k", build, nil); !errors.Is(err, boom) {
		t.Fatalf("first Get err = %v", err)
	}
	if _, err := Get(c, "k", build, nil); !errors.Is(err, boom) || builds != 1 {
		t.Fatalf("error not cached: err=%v builds=%d", err, builds)
	}
}

// TestVerifyDetectsMismatch is the misclassification drill: a builder
// whose output varies while its key stays fixed models a warm-affecting
// input that leaked out of the fingerprint. Verify mode must turn the
// poisoned hit into an error naming the key.
func TestVerifyDetectsMismatch(t *testing.T) {
	c := New()
	c.SetVerify(true)
	next := uint64(0)
	build := func() (uint64, error) {
		next++
		return next, nil
	}
	ident := func(v uint64) uint64 { return v }
	if _, err := Get(c, "leaky", build, ident); err != nil {
		t.Fatalf("first Get: %v", err)
	}
	_, err := Get(c, "leaky", build, ident)
	if err == nil || !strings.Contains(err.Error(), "leaky") {
		t.Fatalf("verify mode missed the mismatch: %v", err)
	}
	// A stable builder passes verification.
	stable := func() (uint64, error) { return 42, nil }
	if _, err := Get(c, "ok", stable, ident); err != nil {
		t.Fatal(err)
	}
	if v, err := Get(c, "ok", stable, ident); err != nil || v != 42 {
		t.Fatalf("verified hit: v=%d err=%v", v, err)
	}
}

// TestFingerprint: field order is significant and values render
// deterministically.
func TestFingerprint(t *testing.T) {
	k := NewFingerprint("kernel").Field("size", "Small").Field("scale", 0.25).Key()
	if k != "kernel|size=Small|scale=0.25" {
		t.Fatalf("key = %q", k)
	}
	if NewFingerprint("a").Field("x", 1).Key() == NewFingerprint("b").Field("x", 1).Key() {
		t.Fatal("kinds collide")
	}
}

// TestHasher: the FNV-1a primitive distinguishes order and boundaries.
func TestHasher(t *testing.T) {
	sum := func(f func(h *Hasher)) uint64 {
		h := NewHasher()
		f(h)
		return h.Sum()
	}
	if sum(func(h *Hasher) { h.Word(1); h.Word(2) }) == sum(func(h *Hasher) { h.Word(2); h.Word(1) }) {
		t.Fatal("word order not significant")
	}
	if sum(func(h *Hasher) { h.String("ab"); h.String("c") }) == sum(func(h *Hasher) { h.String("a"); h.String("bc") }) {
		t.Fatal("string boundaries not significant")
	}
	// Known FNV-1a vector: empty input is the offset basis.
	if got := NewHasher().Sum(); got != 14695981039346656037 {
		t.Fatalf("offset basis = %d", got)
	}
}
