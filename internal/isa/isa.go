// Package isa defines the Widx instruction set architecture from Table 1 of
// the paper, together with an assembler, a disassembler and a binary encoding
// used to build the Widx control block that the host core loads into the
// accelerator at configuration time.
//
// Each Widx unit (dispatcher, walker, output producer) is a tiny 2-stage
// 64-bit RISC core with 32 software-visible registers. The ISA contains the
// essential RISC instructions plus a few unit-specific operations: fused
// op-shift instructions that accelerate hash functions (ADD-SHF, AND-SHF,
// XOR-SHF) and a TOUCH instruction that demands a cache block ahead of use.
// Stores (ST) are only legal on the output producer, reflecting the paper's
// restriction that nothing but the producer may write memory.
//
// Two pseudo-instructions, EMIT and HALT, are not part of Table 1: they model
// the hardware sequencer that moves items between the inter-unit queues and
// re-launches the unit program for the next work item. Any concrete
// realization of Widx needs this mechanism; keeping it as explicit
// instructions makes unit programs self-contained and testable.
package isa

import (
	"fmt"
	"sort"
)

// Reg identifies one of the 32 software-exposed registers of a Widx unit.
// R0 is hardwired to zero, which the hashing programs rely on for comparisons
// and for synthesizing small constants.
type Reg uint8

// NumRegs is the architectural register count of a Widx unit. The paper notes
// the relatively large register file is needed to hold hash-function
// constants loaded from the control block.
const NumRegs = 32

// R returns the i-th register and panics if i is out of range. It exists so
// program builders fail fast instead of silently wrapping register numbers.
func R(i int) Reg {
	if i < 0 || i >= NumRegs {
		panic(fmt.Sprintf("isa: register %d out of range", i))
	}
	return Reg(i)
}

// Valid reports whether the register index is architecturally valid.
func (r Reg) Valid() bool { return int(r) < NumRegs }

// String formats the register in assembler syntax (r0..r31).
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Opcode enumerates the Widx instructions of Table 1 plus the two sequencer
// pseudo-instructions (EMIT, HALT).
type Opcode uint8

// Table 1 opcodes. The ordering groups plain RISC ops first, then the
// store/prefetch pair, then the fused hash helpers, then pseudo ops.
const (
	ADD    Opcode = iota // rd = ra + rb (or ra + imm)
	AND                  // rd = ra & rb (or ra & imm)
	BA                   // unconditional branch to label/offset
	BLE                  // branch if ra <= rb (signed)
	CMP                  // rd = 1 if ra == rb else 0
	CMPLE                // rd = 1 if ra <= rb (signed) else 0
	LD                   // rd = mem[ra + imm]
	SHL                  // rd = ra << (rb or imm)
	SHR                  // rd = ra >> (rb or imm), logical
	ST                   // mem[ra + imm] = rb (output producer only)
	TOUCH                // prefetch mem[ra + imm] into the cache hierarchy
	XOR                  // rd = ra ^ rb (or ra ^ imm)
	ADDSHF               // rd = ra + (rb shifted by Shift); fused add-shift
	ANDSHF               // rd = ra & (rb shifted by Shift); fused and-shift
	XORSHF               // rd = ra ^ (rb shifted by Shift); fused xor-shift
	EMIT                 // push output registers to the unit's output queue
	HALT                 // finish processing of the current work item
	numOpcodes
)

// NumOpcodes is the number of defined opcodes, exported for encoding bounds
// checks and exhaustiveness tests.
const NumOpcodes = int(numOpcodes)

var opcodeNames = [...]string{
	ADD:    "add",
	AND:    "and",
	BA:     "ba",
	BLE:    "ble",
	CMP:    "cmp",
	CMPLE:  "cmple",
	LD:     "ld",
	SHL:    "shl",
	SHR:    "shr",
	ST:     "st",
	TOUCH:  "touch",
	XOR:    "xor",
	ADDSHF: "addshf",
	ANDSHF: "andshf",
	XORSHF: "xorshf",
	EMIT:   "emit",
	HALT:   "halt",
}

// String returns the assembler mnemonic of the opcode.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// ParseOpcode maps an assembler mnemonic (case-sensitive, lower case) to its
// opcode. The fused mnemonics accept both the compact form ("addshf") and the
// paper's hyphenated form ("add-shf").
func ParseOpcode(s string) (Opcode, bool) {
	switch s {
	case "add-shf":
		return ADDSHF, true
	case "and-shf":
		return ANDSHF, true
	case "xor-shf":
		return XORSHF, true
	case "cmp-le":
		return CMPLE, true
	}
	for op, name := range opcodeNames {
		if name == s {
			return Opcode(op), true
		}
	}
	return 0, false
}

// IsBranch reports whether the opcode redirects control flow.
func (op Opcode) IsBranch() bool { return op == BA || op == BLE }

// IsMemory reports whether the opcode accesses the memory hierarchy.
func (op Opcode) IsMemory() bool { return op == LD || op == ST || op == TOUCH }

// IsFused reports whether the opcode is one of the fused op-shift hash
// helpers.
func (op Opcode) IsFused() bool { return op == ADDSHF || op == ANDSHF || op == XORSHF }

// IsPseudo reports whether the opcode is a sequencer pseudo-instruction that
// does not appear in Table 1.
func (op Opcode) IsPseudo() bool { return op == EMIT || op == HALT }

// UnitKind identifies which Widx unit a program targets. Table 1 legality and
// the execution model differ per kind: dispatchers consume input keys and
// emit hashed keys, walkers consume hashed keys and emit matches, output
// producers consume matches and store results.
type UnitKind uint8

const (
	// Dispatcher (the paper's "H" column): hashes input keys.
	Dispatcher UnitKind = iota
	// Walker (the "W" column): traverses hash-bucket node lists.
	Walker
	// Producer (the "P" column): writes matching results to memory.
	Producer
	numUnitKinds
)

// NumUnitKinds is the number of unit kinds.
const NumUnitKinds = int(numUnitKinds)

var unitKindNames = [...]string{
	Dispatcher: "dispatcher",
	Walker:     "walker",
	Producer:   "producer",
}

// String returns the lower-case unit name.
func (k UnitKind) String() string {
	if int(k) < len(unitKindNames) {
		return unitKindNames[k]
	}
	return fmt.Sprintf("unit(%d)", uint8(k))
}

// legality encodes Table 1: for each opcode, which unit kinds may execute it.
// The pseudo-instructions are legal everywhere since every unit interacts
// with its queues and must terminate work items.
var legality = map[Opcode][NumUnitKinds]bool{
	ADD:    {true, true, true},
	AND:    {true, true, true},
	BA:     {true, true, true},
	BLE:    {true, true, true},
	CMP:    {true, true, true},
	CMPLE:  {true, true, true},
	LD:     {true, true, true},
	SHL:    {true, true, true},
	SHR:    {true, true, true},
	ST:     {false, false, true},
	TOUCH:  {true, true, true},
	XOR:    {true, true, true},
	ADDSHF: {true, true, false},
	ANDSHF: {true, false, false},
	XORSHF: {true, false, false},
	EMIT:   {true, true, true},
	HALT:   {true, true, true},
}

// LegalFor reports whether the opcode may execute on the given unit kind,
// per Table 1 of the paper (pseudo-instructions are always legal).
func (op Opcode) LegalFor(kind UnitKind) bool {
	if int(kind) >= NumUnitKinds {
		return false
	}
	cols, ok := legality[op]
	if !ok {
		return false
	}
	return cols[kind]
}

// Instruction is one decoded Widx instruction. The same struct is used by the
// assembler, the encoder and the unit interpreter. Unused fields are zero.
type Instruction struct {
	Op   Opcode
	Dst  Reg   // destination register (ALU, LD, CMP*)
	SrcA Reg   // first source register (also base register for LD/ST/TOUCH)
	SrcB Reg   // second source register (also store-data register for ST)
	Imm  int64 // immediate: ALU operand, memory displacement, or branch offset
	// UseImm selects the immediate instead of SrcB as the second ALU operand.
	UseImm bool
	// Shift is the shift amount applied to the SrcB operand of the fused
	// ADDSHF/ANDSHF/XORSHF ops (rd = ra OP (rb << Shift)). Positive values
	// shift left, negative values shift right (logical). The xor-shift form
	// is exactly the primitive robust hash functions are built from, and the
	// add-shift form covers scaled address arithmetic (base + index*stride).
	Shift int8
	// Label is the symbolic branch target before resolution; the assembler
	// resolves it into a relative offset in Imm. It is empty for non-branch
	// instructions and for programs constructed directly in Go.
	Label string
}

// Validate checks structural well-formedness of a single instruction
// independent of the unit it runs on: register ranges, shift usage and
// immediate usage.
func (in Instruction) Validate() error {
	if int(in.Op) >= NumOpcodes {
		return fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	if !in.Dst.Valid() || !in.SrcA.Valid() || !in.SrcB.Valid() {
		return fmt.Errorf("isa: %s uses out-of-range register", in.Op)
	}
	if in.Shift != 0 && !in.Op.IsFused() {
		return fmt.Errorf("isa: %s carries a shift amount but is not a fused op", in.Op)
	}
	if in.Op == ST && in.Dst != 0 {
		return fmt.Errorf("isa: st has no destination register")
	}
	if in.Op.IsPseudo() && in.UseImm {
		return fmt.Errorf("isa: %s does not take an immediate", in.Op)
	}
	return nil
}

// String renders the instruction in assembler syntax. Branch offsets are
// rendered numerically; use Program.Disassemble for label-aware output.
func (in Instruction) String() string {
	switch in.Op {
	case BA:
		return fmt.Sprintf("ba %+d", in.Imm)
	case BLE:
		return fmt.Sprintf("ble %s, %s, %+d", in.SrcA, in.SrcB, in.Imm)
	case LD:
		return fmt.Sprintf("ld %s, [%s%+d]", in.Dst, in.SrcA, in.Imm)
	case ST:
		return fmt.Sprintf("st [%s%+d], %s", in.SrcA, in.Imm, in.SrcB)
	case TOUCH:
		return fmt.Sprintf("touch [%s%+d]", in.SrcA, in.Imm)
	case EMIT:
		return "emit"
	case HALT:
		return "halt"
	case ADDSHF, ANDSHF, XORSHF:
		return fmt.Sprintf("%s %s, %s, %s, %d", in.Op, in.Dst, in.SrcA, in.SrcB, in.Shift)
	default:
		if in.UseImm {
			return fmt.Sprintf("%s %s, %s, #%d", in.Op, in.Dst, in.SrcA, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.SrcA, in.SrcB)
	}
}

// Program is a validated sequence of instructions for one Widx unit together
// with its queue interface: which registers are loaded from the input queue
// when a work item arrives and which registers are pushed to the output queue
// on EMIT.
type Program struct {
	// Name identifies the program in diagnostics and the control block.
	Name string
	// Kind is the unit the program targets; it drives Table 1 legality.
	Kind UnitKind
	// Code is the instruction sequence. Execution of a work item starts at
	// instruction 0 and ends at the first executed HALT.
	Code []Instruction
	// InputRegs are filled from the input-queue item, in order, before the
	// program starts on a work item. A dispatcher typically receives the raw
	// key (and its tuple identifier); a walker receives the hashed key and
	// the original key; the producer receives the matching node payload.
	InputRegs []Reg
	// OutputRegs are pushed to the output queue, in order, when EMIT
	// executes. The producer has no output queue and must leave this empty.
	OutputRegs []Reg
	// ConstRegs holds register preloads from the Widx control block, e.g.
	// hash constants, the bucket array base address and the bucket mask.
	ConstRegs map[Reg]uint64
}

// Validate checks the whole program: per-instruction structural validity,
// Table 1 legality for the program's unit kind, branch targets within range
// and queue-interface consistency.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("isa: program %q has no instructions", p.Name)
	}
	if int(p.Kind) >= NumUnitKinds {
		return fmt.Errorf("isa: program %q has invalid unit kind %d", p.Name, p.Kind)
	}
	halts := 0
	for pc, in := range p.Code {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("isa: program %q pc=%d: %w", p.Name, pc, err)
		}
		if !in.Op.LegalFor(p.Kind) {
			return fmt.Errorf("isa: program %q pc=%d: %s is not legal on a %s (Table 1)",
				p.Name, pc, in.Op, p.Kind)
		}
		if in.Op.IsBranch() {
			target := pc + 1 + int(in.Imm)
			if target < 0 || target >= len(p.Code) {
				return fmt.Errorf("isa: program %q pc=%d: branch target %d out of range", p.Name, pc, target)
			}
		}
		if in.Op == HALT {
			halts++
		}
	}
	if halts == 0 {
		return fmt.Errorf("isa: program %q never halts", p.Name)
	}
	for _, r := range p.InputRegs {
		if !r.Valid() {
			return fmt.Errorf("isa: program %q has invalid input register %d", p.Name, r)
		}
	}
	for _, r := range p.OutputRegs {
		if !r.Valid() {
			return fmt.Errorf("isa: program %q has invalid output register %d", p.Name, r)
		}
	}
	if p.Kind == Producer && len(p.OutputRegs) != 0 {
		return fmt.Errorf("isa: producer program %q must not declare output registers", p.Name)
	}
	if len(p.OutputRegs) == 0 && p.Kind != Producer && p.usesEmit() {
		return fmt.Errorf("isa: program %q emits but declares no output registers", p.Name)
	}
	// Sorted registers: with several bad preloads, which one the error
	// names must not depend on map iteration order (widxlint detmap).
	regs := make([]Reg, 0, len(p.ConstRegs))
	for r := range p.ConstRegs {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	for _, r := range regs {
		if !r.Valid() {
			return fmt.Errorf("isa: program %q preloads invalid register %d", p.Name, r)
		}
		if r == 0 {
			return fmt.Errorf("isa: program %q preloads r0, which is hardwired to zero", p.Name)
		}
	}
	return nil
}

func (p *Program) usesEmit() bool {
	for _, in := range p.Code {
		if in.Op == EMIT {
			return true
		}
	}
	return false
}

// MemOpsPerItem counts the static LD/ST/TOUCH instructions in the program.
// The analytical model (Section 3.2) uses this as the MemOps term.
func (p *Program) MemOpsPerItem() int {
	n := 0
	for _, in := range p.Code {
		if in.Op.IsMemory() {
			n++
		}
	}
	return n
}

// ComputeOps counts the static non-memory, non-pseudo instructions: the
// CompCycles term of Equation 1 for a 1-IPC unit.
func (p *Program) ComputeOps() int {
	n := 0
	for _, in := range p.Code {
		if !in.Op.IsMemory() && !in.Op.IsPseudo() {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the program. Units mutate per-invocation
// register state but never the program itself; Clone exists so callers can
// derive variants (e.g. changing a constant) without aliasing.
func (p *Program) Clone() *Program {
	cp := &Program{
		Name:       p.Name,
		Kind:       p.Kind,
		Code:       append([]Instruction(nil), p.Code...),
		InputRegs:  append([]Reg(nil), p.InputRegs...),
		OutputRegs: append([]Reg(nil), p.OutputRegs...),
	}
	if p.ConstRegs != nil {
		cp.ConstRegs = make(map[Reg]uint64, len(p.ConstRegs))
		for r, v := range p.ConstRegs {
			cp.ConstRegs[r] = v
		}
	}
	return cp
}
