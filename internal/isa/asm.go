package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assembler syntax.
//
// The assembler accepts a small, line-oriented dialect used by the
// custom_schema example and the widxasm tool:
//
//	; comment                      -- everything after ';' is ignored
//	.unit walker                   -- unit kind: dispatcher | walker | producer
//	.name probe_walk               -- program name (optional)
//	.in   r1, r2                   -- input-queue registers
//	.out  r3                       -- output-queue registers
//	.const r4, 0xFFFF              -- register preload (hex or decimal)
//	loop:                          -- label
//	    ld    r5, [r1+8]           -- load with base+displacement
//	    cmp   r6, r5, r2
//	    ble   r6, r0, loop         -- branch if r6 <= r0
//	    addshf r7, r5, r2, 3       -- fused op, shift left 3
//	    shr   r7, r7, #16          -- '#' marks an immediate operand
//	    st    [r3+0], r7           -- producer only
//	    touch [r5+64]
//	    emit
//	    halt
//
// Branch targets may be labels or signed numeric offsets relative to the next
// instruction.

// Assemble parses the assembler text into a validated Program.
func Assemble(src string) (*Program, error) {
	p := &Program{Name: "anonymous", Kind: Walker, ConstRegs: map[Reg]uint64{}}
	type pending struct {
		pc    int
		label string
	}
	labels := map[string]int{}
	var fixups []pending
	kindSet := false

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		errf := func(format string, args ...any) error {
			return fmt.Errorf("isa: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}

		// Directives.
		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".unit":
				if len(fields) != 2 {
					return nil, errf(".unit takes exactly one argument")
				}
				kind, ok := parseUnitKind(fields[1])
				if !ok {
					return nil, errf("unknown unit kind %q", fields[1])
				}
				p.Kind = kind
				kindSet = true
			case ".name":
				if len(fields) != 2 {
					return nil, errf(".name takes exactly one argument")
				}
				p.Name = fields[1]
			case ".in", ".out":
				regs, err := parseRegList(strings.TrimSpace(line[len(fields[0]):]))
				if err != nil {
					return nil, errf("%v", err)
				}
				if fields[0] == ".in" {
					p.InputRegs = regs
				} else {
					p.OutputRegs = regs
				}
			case ".const":
				rest := strings.TrimSpace(line[len(".const"):])
				parts := splitOperands(rest)
				if len(parts) != 2 {
					return nil, errf(".const takes a register and a value")
				}
				r, err := parseReg(parts[0])
				if err != nil {
					return nil, errf("%v", err)
				}
				v, err := parseUint(parts[1])
				if err != nil {
					return nil, errf("%v", err)
				}
				p.ConstRegs[r] = v
			default:
				return nil, errf("unknown directive %q", fields[0])
			}
			continue
		}

		// Labels (possibly followed by an instruction on the same line).
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			label := strings.TrimSpace(line[:idx])
			if !isIdent(label) {
				return nil, errf("invalid label %q", label)
			}
			if _, dup := labels[label]; dup {
				return nil, errf("duplicate label %q", label)
			}
			labels[label] = len(p.Code)
			line = strings.TrimSpace(line[idx+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}

		in, labelRef, err := parseInstruction(line)
		if err != nil {
			return nil, errf("%v", err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{pc: len(p.Code), label: labelRef})
		}
		p.Code = append(p.Code, in)
	}

	if !kindSet {
		return nil, fmt.Errorf("isa: program is missing a .unit directive")
	}
	for _, fx := range fixups {
		target, ok := labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", fx.label)
		}
		p.Code[fx.pc].Imm = int64(target - (fx.pc + 1))
		p.Code[fx.pc].Label = fx.label
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble for program literals baked into the repository;
// it panics on error.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders the program back into assembler text that Assemble
// accepts (labels are synthesized as L<pc> for branch targets).
func Disassemble(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".name %s\n.unit %s\n", p.Name, p.Kind)
	if len(p.InputRegs) > 0 {
		b.WriteString(".in " + joinRegs(p.InputRegs) + "\n")
	}
	if len(p.OutputRegs) > 0 {
		b.WriteString(".out " + joinRegs(p.OutputRegs) + "\n")
	}
	for r := Reg(0); int(r) < NumRegs; r++ {
		if v, ok := p.ConstRegs[r]; ok {
			fmt.Fprintf(&b, ".const %s, %#x\n", r, v)
		}
	}
	// Collect branch targets so we can emit labels.
	targets := map[int]string{}
	for pc, in := range p.Code {
		if in.Op.IsBranch() {
			t := pc + 1 + int(in.Imm)
			if _, ok := targets[t]; !ok {
				targets[t] = fmt.Sprintf("L%d", t)
			}
		}
	}
	for pc, in := range p.Code {
		if lbl, ok := targets[pc]; ok {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		if in.Op.IsBranch() {
			t := pc + 1 + int(in.Imm)
			lbl := targets[t]
			switch in.Op {
			case BA:
				fmt.Fprintf(&b, "    ba %s\n", lbl)
			case BLE:
				fmt.Fprintf(&b, "    ble %s, %s, %s\n", in.SrcA, in.SrcB, lbl)
			}
			continue
		}
		fmt.Fprintf(&b, "    %s\n", in.String())
	}
	// A trailing target label (branch to just past the end is invalid, so
	// this only fires for labels at the last instruction, already emitted).
	return b.String()
}

func stripComment(line string) string {
	// Only ';' starts a comment: '#' marks immediate operands.
	if i := strings.IndexByte(line, ';'); i >= 0 {
		return line[:i]
	}
	return line
}

func parseUnitKind(s string) (UnitKind, bool) {
	switch strings.ToLower(s) {
	case "dispatcher", "hash", "h":
		return Dispatcher, true
	case "walker", "walk", "w":
		return Walker, true
	case "producer", "output", "p":
		return Producer, true
	}
	return 0, false
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseReg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("invalid register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("invalid register %q", s)
	}
	return Reg(n), nil
}

func parseRegList(s string) ([]Reg, error) {
	var out []Reg
	for _, part := range splitOperands(s) {
		r, err := parseReg(part)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty register list")
	}
	return out, nil
}

func joinRegs(rs []Reg) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}

func parseUint(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid constant %q", s)
	}
	return v, nil
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid integer %q", s)
	}
	return v, nil
}

func splitOperands(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseMemOperand parses "[rN+disp]" or "[rN-disp]" or "[rN]".
func parseMemOperand(s string) (Reg, int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("invalid memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sign := int64(1)
	var regPart, dispPart string
	if i := strings.IndexAny(inner, "+-"); i >= 0 {
		if inner[i] == '-' {
			sign = -1
		}
		regPart, dispPart = inner[:i], inner[i+1:]
	} else {
		regPart, dispPart = inner, "0"
	}
	base, err := parseReg(regPart)
	if err != nil {
		return 0, 0, err
	}
	disp, err := parseInt(dispPart)
	if err != nil {
		return 0, 0, err
	}
	return base, sign * disp, nil
}

// parseInstruction parses one instruction line; when the instruction is a
// branch to a label, the label is returned for later fixup and Imm is left 0.
func parseInstruction(line string) (Instruction, string, error) {
	fields := strings.SplitN(line, " ", 2)
	mnemonic := strings.ToLower(strings.TrimSpace(fields[0]))
	op, ok := ParseOpcode(mnemonic)
	if !ok {
		return Instruction{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	ops := splitOperands(rest)
	in := Instruction{Op: op}

	switch op {
	case EMIT, HALT:
		if len(ops) != 0 {
			return Instruction{}, "", fmt.Errorf("%s takes no operands", op)
		}
		return in, "", nil

	case BA:
		if len(ops) != 1 {
			return Instruction{}, "", fmt.Errorf("ba takes one operand")
		}
		if isIdent(ops[0]) {
			return in, ops[0], nil
		}
		off, err := parseInt(ops[0])
		if err != nil {
			return Instruction{}, "", err
		}
		in.Imm = off
		return in, "", nil

	case BLE:
		if len(ops) != 3 {
			return Instruction{}, "", fmt.Errorf("ble takes srcA, srcB, target")
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return Instruction{}, "", err
		}
		b, err := parseReg(ops[1])
		if err != nil {
			return Instruction{}, "", err
		}
		in.SrcA, in.SrcB = a, b
		if isIdent(ops[2]) {
			return in, ops[2], nil
		}
		off, err := parseInt(ops[2])
		if err != nil {
			return Instruction{}, "", err
		}
		in.Imm = off
		return in, "", nil

	case LD:
		if len(ops) != 2 {
			return Instruction{}, "", fmt.Errorf("ld takes dst, [base+disp]")
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return Instruction{}, "", err
		}
		base, disp, err := parseMemOperand(ops[1])
		if err != nil {
			return Instruction{}, "", err
		}
		in.Dst, in.SrcA, in.Imm = d, base, disp
		return in, "", nil

	case ST:
		if len(ops) != 2 {
			return Instruction{}, "", fmt.Errorf("st takes [base+disp], src")
		}
		base, disp, err := parseMemOperand(ops[0])
		if err != nil {
			return Instruction{}, "", err
		}
		src, err := parseReg(ops[1])
		if err != nil {
			return Instruction{}, "", err
		}
		in.SrcA, in.Imm, in.SrcB = base, disp, src
		return in, "", nil

	case TOUCH:
		if len(ops) != 1 {
			return Instruction{}, "", fmt.Errorf("touch takes [base+disp]")
		}
		base, disp, err := parseMemOperand(ops[0])
		if err != nil {
			return Instruction{}, "", err
		}
		in.SrcA, in.Imm = base, disp
		return in, "", nil

	case ADDSHF, ANDSHF, XORSHF:
		if len(ops) != 4 {
			return Instruction{}, "", fmt.Errorf("%s takes dst, srcA, srcB, shift", op)
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return Instruction{}, "", err
		}
		a, err := parseReg(ops[1])
		if err != nil {
			return Instruction{}, "", err
		}
		b, err := parseReg(ops[2])
		if err != nil {
			return Instruction{}, "", err
		}
		sh, err := parseInt(ops[3])
		if err != nil {
			return Instruction{}, "", err
		}
		if sh < -63 || sh > 63 {
			return Instruction{}, "", fmt.Errorf("shift amount %d out of range", sh)
		}
		in.Dst, in.SrcA, in.SrcB, in.Shift = d, a, b, int8(sh)
		return in, "", nil

	default: // ADD, AND, CMP, CMPLE, SHL, SHR, XOR
		if len(ops) != 3 {
			return Instruction{}, "", fmt.Errorf("%s takes dst, srcA, srcB|#imm", op)
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return Instruction{}, "", err
		}
		a, err := parseReg(ops[1])
		if err != nil {
			return Instruction{}, "", err
		}
		in.Dst, in.SrcA = d, a
		if strings.HasPrefix(ops[2], "#") {
			imm, err := parseInt(ops[2][1:])
			if err != nil {
				return Instruction{}, "", err
			}
			in.UseImm = true
			in.Imm = imm
		} else {
			b, err := parseReg(ops[2])
			if err != nil {
				return Instruction{}, "", err
			}
			in.SrcB = b
		}
		return in, "", nil
	}
}
