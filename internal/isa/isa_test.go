package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegister(t *testing.T) {
	if got := R(5); got != Reg(5) {
		t.Fatalf("R(5) = %v", got)
	}
	if R(0).String() != "r0" || R(31).String() != "r31" {
		t.Fatal("register formatting wrong")
	}
	if !R(31).Valid() || Reg(32).Valid() {
		t.Fatal("register validity wrong")
	}
	for _, bad := range []int{-1, 32, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("R(%d) should panic", bad)
				}
			}()
			R(bad)
		}()
	}
}

func TestOpcodeStringsRoundTrip(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		name := op.String()
		if strings.HasPrefix(name, "op(") {
			t.Fatalf("opcode %d has no name", op)
		}
		got, ok := ParseOpcode(name)
		if !ok || got != op {
			t.Fatalf("ParseOpcode(%q) = %v, %v", name, got, ok)
		}
	}
	// The paper's hyphenated mnemonics are accepted too.
	for in, want := range map[string]Opcode{
		"add-shf": ADDSHF, "and-shf": ANDSHF, "xor-shf": XORSHF, "cmp-le": CMPLE,
	} {
		got, ok := ParseOpcode(in)
		if !ok || got != want {
			t.Fatalf("ParseOpcode(%q) = %v, %v", in, got, ok)
		}
	}
	if _, ok := ParseOpcode("bogus"); ok {
		t.Fatal("bogus mnemonic parsed")
	}
	if !strings.HasPrefix(Opcode(200).String(), "op(") {
		t.Fatal("unknown opcode should format as op(n)")
	}
}

func TestOpcodeClassification(t *testing.T) {
	if !BA.IsBranch() || !BLE.IsBranch() || ADD.IsBranch() {
		t.Fatal("branch classification wrong")
	}
	if !LD.IsMemory() || !ST.IsMemory() || !TOUCH.IsMemory() || XOR.IsMemory() {
		t.Fatal("memory classification wrong")
	}
	if !ADDSHF.IsFused() || !ANDSHF.IsFused() || !XORSHF.IsFused() || ADD.IsFused() {
		t.Fatal("fused classification wrong")
	}
	if !EMIT.IsPseudo() || !HALT.IsPseudo() || ST.IsPseudo() {
		t.Fatal("pseudo classification wrong")
	}
}

// TestTable1_ISALegality checks the per-unit legality matrix exactly as
// printed in Table 1 of the paper (plus the always-legal pseudo ops).
func TestTable1_ISALegality(t *testing.T) {
	type row struct {
		op      Opcode
		h, w, p bool
	}
	table1 := []row{
		{ADD, true, true, true},
		{AND, true, true, true},
		{BA, true, true, true},
		{BLE, true, true, true},
		{CMP, true, true, true},
		{CMPLE, true, true, true},
		{LD, true, true, true},
		{SHL, true, true, true},
		{SHR, true, true, true},
		{ST, false, false, true},
		{TOUCH, true, true, true},
		{XOR, true, true, true},
		{ADDSHF, true, true, false},
		{ANDSHF, true, false, false},
		{XORSHF, true, false, false},
	}
	for _, r := range table1 {
		if got := r.op.LegalFor(Dispatcher); got != r.h {
			t.Errorf("%s on dispatcher: got %v want %v", r.op, got, r.h)
		}
		if got := r.op.LegalFor(Walker); got != r.w {
			t.Errorf("%s on walker: got %v want %v", r.op, got, r.w)
		}
		if got := r.op.LegalFor(Producer); got != r.p {
			t.Errorf("%s on producer: got %v want %v", r.op, got, r.p)
		}
	}
	for _, op := range []Opcode{EMIT, HALT} {
		for _, k := range []UnitKind{Dispatcher, Walker, Producer} {
			if !op.LegalFor(k) {
				t.Errorf("%s should be legal on %s", op, k)
			}
		}
	}
	if ADD.LegalFor(UnitKind(9)) {
		t.Error("invalid unit kind should never be legal")
	}
}

func TestUnitKindString(t *testing.T) {
	if Dispatcher.String() != "dispatcher" || Walker.String() != "walker" || Producer.String() != "producer" {
		t.Fatal("unit kind names wrong")
	}
	if !strings.HasPrefix(UnitKind(7).String(), "unit(") {
		t.Fatal("unknown unit kind should format as unit(n)")
	}
}

func TestInstructionValidate(t *testing.T) {
	good := Instruction{Op: ADD, Dst: 1, SrcA: 2, SrcB: 3}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid instruction rejected: %v", err)
	}
	cases := []struct {
		name string
		in   Instruction
	}{
		{"bad opcode", Instruction{Op: Opcode(200)}},
		{"bad reg", Instruction{Op: ADD, Dst: 40}},
		{"shift on non-fused", Instruction{Op: ADD, Shift: 3}},
		{"st with dst", Instruction{Op: ST, Dst: 1, SrcA: 2, SrcB: 3}},
		{"emit with imm", Instruction{Op: EMIT, UseImm: true}},
	}
	for _, c := range cases {
		if err := c.in.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestInstructionString(t *testing.T) {
	cases := map[string]Instruction{
		"add r1, r2, r3":        {Op: ADD, Dst: 1, SrcA: 2, SrcB: 3},
		"xor r1, r2, #255":      {Op: XOR, Dst: 1, SrcA: 2, UseImm: true, Imm: 255},
		"ld r4, [r5+8]":         {Op: LD, Dst: 4, SrcA: 5, Imm: 8},
		"st [r2+0], r7":         {Op: ST, SrcA: 2, SrcB: 7},
		"touch [r3+64]":         {Op: TOUCH, SrcA: 3, Imm: 64},
		"ba +2":                 {Op: BA, Imm: 2},
		"ble r1, r0, -3":        {Op: BLE, SrcA: 1, SrcB: 0, Imm: -3},
		"emit":                  {Op: EMIT},
		"halt":                  {Op: HALT},
		"addshf r1, r2, r3, 4":  {Op: ADDSHF, Dst: 1, SrcA: 2, SrcB: 3, Shift: 4},
		"xorshf r1, r2, r3, -7": {Op: XORSHF, Dst: 1, SrcA: 2, SrcB: 3, Shift: -7},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func sampleWalkerProgram() *Program {
	return &Program{
		Name:       "test_walker",
		Kind:       Walker,
		InputRegs:  []Reg{1, 2},
		OutputRegs: []Reg{3},
		ConstRegs:  map[Reg]uint64{4: 0xFFFF},
		Code: []Instruction{
			{Op: LD, Dst: 5, SrcA: 1, Imm: 0},   // load node key
			{Op: CMP, Dst: 6, SrcA: 5, SrcB: 2}, // match?
			{Op: BLE, SrcA: 6, SrcB: 0, Imm: 1}, // skip emit if no match
			{Op: EMIT},
			{Op: LD, Dst: 1, SrcA: 1, Imm: 8},    // next pointer
			{Op: BLE, SrcA: 0, SrcB: 1, Imm: -6}, // loop while next != 0 (0 <= ptr)
			{Op: HALT},
		},
	}
}

func TestProgramValidate(t *testing.T) {
	p := sampleWalkerProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	empty := &Program{Name: "e", Kind: Walker}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty program accepted")
	}

	noHalt := &Program{Name: "n", Kind: Walker, Code: []Instruction{{Op: ADD, Dst: 1, SrcA: 1, SrcB: 1}}}
	if err := noHalt.Validate(); err == nil {
		t.Fatal("program without halt accepted")
	}

	badBranch := sampleWalkerProgram()
	badBranch.Code[2].Imm = 100
	if err := badBranch.Validate(); err == nil {
		t.Fatal("out-of-range branch accepted")
	}

	illegalST := sampleWalkerProgram()
	illegalST.Code[0] = Instruction{Op: ST, SrcA: 1, SrcB: 2}
	if err := illegalST.Validate(); err == nil {
		t.Fatal("ST on walker accepted (Table 1 violation)")
	}

	producerWithOut := sampleWalkerProgram()
	producerWithOut.Kind = Producer
	producerWithOut.Code[0] = Instruction{Op: LD, Dst: 5, SrcA: 1}
	if err := producerWithOut.Validate(); err == nil {
		t.Fatal("producer with output registers accepted")
	}

	emitNoOut := sampleWalkerProgram()
	emitNoOut.OutputRegs = nil
	if err := emitNoOut.Validate(); err == nil {
		t.Fatal("emit without output registers accepted")
	}

	preloadR0 := sampleWalkerProgram()
	preloadR0.ConstRegs[0] = 7
	if err := preloadR0.Validate(); err == nil {
		t.Fatal("preload of r0 accepted")
	}
}

func TestProgramCounters(t *testing.T) {
	p := sampleWalkerProgram()
	if got := p.MemOpsPerItem(); got != 2 {
		t.Fatalf("MemOpsPerItem = %d, want 2", got)
	}
	if got := p.ComputeOps(); got != 3 {
		t.Fatalf("ComputeOps = %d, want 3 (cmp + 2 ble)", got)
	}
}

func TestProgramClone(t *testing.T) {
	p := sampleWalkerProgram()
	c := p.Clone()
	c.Code[0].Imm = 999
	c.ConstRegs[4] = 1
	c.InputRegs[0] = 9
	if p.Code[0].Imm == 999 || p.ConstRegs[4] == 1 || p.InputRegs[0] == 9 {
		t.Fatal("Clone aliases the original program")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := sampleWalkerProgram()
	for _, in := range p.Code {
		w, err := EncodeInstruction(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		got, err := DecodeInstruction(w)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		// Label is assembler-only metadata and not round-tripped.
		in.Label = ""
		if got != in {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
		}
	}
}

func TestEncodeRejectsBadInstructions(t *testing.T) {
	if _, err := EncodeInstruction(Instruction{Op: Opcode(99)}); err == nil {
		t.Fatal("encoded invalid opcode")
	}
	if _, err := EncodeInstruction(Instruction{Op: ADD, Dst: 1, SrcA: 1, UseImm: true, Imm: 1 << 40}); err == nil {
		t.Fatal("encoded oversized immediate")
	}
	if _, err := DecodeInstruction(1 << 63); err == nil {
		t.Fatal("decoded word with reserved bits set")
	}
	if _, err := DecodeInstruction(uint64(numOpcodes) + 5); err == nil {
		t.Fatal("decoded invalid opcode")
	}
}

// Property: every structurally valid instruction survives an encode/decode
// round trip unchanged.
func TestPropertyEncodeDecode(t *testing.T) {
	f := func(opRaw, dst, a, b uint8, imm int32, useImm bool, shift int8) bool {
		in := Instruction{
			Op:     Opcode(opRaw % uint8(NumOpcodes)),
			Dst:    Reg(dst % NumRegs),
			SrcA:   Reg(a % NumRegs),
			SrcB:   Reg(b % NumRegs),
			Imm:    int64(imm),
			UseImm: useImm,
		}
		if in.Op.IsFused() {
			in.Shift = shift % 64
		}
		if in.Op == ST {
			in.Dst = 0
		}
		if in.Op.IsPseudo() {
			in.UseImm = false
		}
		if in.Validate() != nil {
			return true // not structurally valid; nothing to round-trip
		}
		w, err := EncodeInstruction(in)
		if err != nil {
			return false
		}
		got, err := DecodeInstruction(w)
		if err != nil {
			return false
		}
		return got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestControlBlockRoundTrip(t *testing.T) {
	walker := sampleWalkerProgram()
	producer := &Program{
		Name:      "test_producer",
		Kind:      Producer,
		InputRegs: []Reg{1, 2},
		ConstRegs: map[Reg]uint64{3: 0x1000},
		Code: []Instruction{
			{Op: ST, SrcA: 3, SrcB: 1, Imm: 0},
			{Op: ADD, Dst: 3, SrcA: 3, UseImm: true, Imm: 8},
			{Op: HALT},
		},
	}
	cb, err := BuildControlBlock(walker, producer)
	if err != nil {
		t.Fatal(err)
	}
	if cb.SizeBytes() <= 0 {
		t.Fatal("control block size should be positive")
	}
	progs, err := cb.Programs()
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 {
		t.Fatalf("got %d programs", len(progs))
	}
	if progs[0].Kind != Walker || progs[1].Kind != Producer {
		t.Fatal("program kinds lost")
	}
	if len(progs[0].Code) != len(walker.Code) {
		t.Fatal("walker code length changed")
	}
	if progs[1].ConstRegs[3] != 0x1000 {
		t.Fatal("const preload lost")
	}

	img, err := cb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var cb2 ControlBlock
	if err := cb2.UnmarshalBinary(img); err != nil {
		t.Fatal(err)
	}
	progs2, err := cb2.Programs()
	if err != nil {
		t.Fatal(err)
	}
	if len(progs2) != 2 || len(progs2[0].Code) != len(walker.Code) {
		t.Fatal("binary image round trip lost programs")
	}
	if progs2[1].ConstRegs[3] != 0x1000 {
		t.Fatal("binary image round trip lost constants")
	}
}

func TestControlBlockErrors(t *testing.T) {
	if _, err := BuildControlBlock(); err == nil {
		t.Fatal("empty control block accepted")
	}
	bad := &Program{Name: "bad", Kind: Walker, Code: []Instruction{{Op: ST, SrcA: 1, SrcB: 2}, {Op: HALT}}}
	if _, err := BuildControlBlock(bad); err == nil {
		t.Fatal("invalid program accepted into control block")
	}
	var cb ControlBlock
	if err := cb.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated image accepted")
	}
	if err := cb.UnmarshalBinary(make([]byte, 8)); err == nil {
		t.Fatal("zero-section image accepted")
	}
}
