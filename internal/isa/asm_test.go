package isa

import (
	"strings"
	"testing"
)

const walkerSrc = `
; Probe walker for the inline-key node layout.
.name  probe_walk
.unit  walker
.in    r1, r2          ; r1 = node pointer (bucket head), r2 = probe key
.out   r3              ; r3 = matching payload
.const r4, 0xFFFF

loop:
    ld    r5, [r1+0]      ; node key
    cmp   r6, r5, r2
    ble   r6, r0, skip    ; not equal -> skip emit
    ld    r3, [r1+8]      ; payload
    emit
skip:
    ld    r1, [r1+16]     ; next pointer
    ble   r0, r1, check   ; if 0 <= next, maybe loop
    ba    done
check:
    ble   r1, r0, done    ; next == 0 -> done
    ba    loop
done:
    halt
`

func TestAssembleWalker(t *testing.T) {
	p, err := Assemble(walkerSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "probe_walk" || p.Kind != Walker {
		t.Fatalf("metadata wrong: %q %v", p.Name, p.Kind)
	}
	if len(p.InputRegs) != 2 || p.InputRegs[0] != 1 || p.InputRegs[1] != 2 {
		t.Fatalf("input regs wrong: %v", p.InputRegs)
	}
	if len(p.OutputRegs) != 1 || p.OutputRegs[0] != 3 {
		t.Fatalf("output regs wrong: %v", p.OutputRegs)
	}
	if p.ConstRegs[4] != 0xFFFF {
		t.Fatalf("const wrong: %v", p.ConstRegs)
	}
	if p.Code[0].Op != LD || p.Code[0].Dst != 5 || p.Code[0].SrcA != 1 {
		t.Fatalf("first instruction wrong: %+v", p.Code[0])
	}
	// The backward branch "ba loop" must have a negative offset.
	var foundBack bool
	for _, in := range p.Code {
		if in.Op == BA && in.Imm < 0 {
			foundBack = true
		}
	}
	if !foundBack {
		t.Fatal("no backward branch resolved")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("assembled program invalid: %v", err)
	}
}

func TestAssembleDispatcherWithFusedOps(t *testing.T) {
	src := `
.name robust_hash
.unit dispatcher
.in   r1
.out  r2
.const r10, 0x9E3779B97F4A7C15
    xorshf r2, r1, r10, -16
    addshf r2, r2, r10, 3
    andshf r2, r2, r10, -1
    shr    r2, r2, #4
    emit
    halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != Dispatcher {
		t.Fatal("kind wrong")
	}
	if p.Code[0].Op != XORSHF || p.Code[0].Shift != -16 {
		t.Fatalf("fused op wrong: %+v", p.Code[0])
	}
	if p.Code[3].Op != SHR || !p.Code[3].UseImm || p.Code[3].Imm != 4 {
		t.Fatalf("immediate shift wrong: %+v", p.Code[3])
	}
}

func TestAssembleProducer(t *testing.T) {
	src := `
.unit producer
.in   r1, r2
.const r3, 0x100000
    st  [r3+0], r1
    st  [r3+8], r2
    add r3, r3, #16
    halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != Producer || len(p.Code) != 4 {
		t.Fatalf("producer program wrong: %+v", p)
	}
	if p.Code[0].Op != ST || p.Code[0].SrcB != 1 {
		t.Fatalf("store wrong: %+v", p.Code[0])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"missing unit":      "add r1, r1, r1\nhalt\n",
		"unknown directive": ".bogus x\n.unit walker\nhalt\n",
		"unknown mnemonic":  ".unit walker\nfrob r1, r2, r3\nhalt\n",
		"bad register":      ".unit walker\nadd r99, r1, r1\nhalt\n",
		"undefined label":   ".unit walker\nba nowhere\nhalt\n",
		"duplicate label":   ".unit walker\nx:\nadd r1,r1,r1\nx:\nhalt\n",
		"st on walker":      ".unit walker\nst [r1+0], r2\nhalt\n",
		"andshf on walker":  ".unit walker\nandshf r1, r2, r3, 1\nhalt\n",
		"bad mem operand":   ".unit walker\nld r1, r2\nhalt\n",
		"bad const":         ".unit walker\n.const r1, zzz\nhalt\n",
		"const r0":          ".unit walker\n.const r0, 5\nhalt\n",
		"no operands emit":  ".unit walker\n.out r1\nemit r1\nhalt\n",
		"shift range":       ".unit dispatcher\n.out r1\naddshf r1, r1, r1, 99\nemit\nhalt\n",
		"bad label char":    ".unit walker\n1bad:\nhalt\n",
		"ble operands":      ".unit walker\nble r1, r2\nhalt\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble should panic on invalid source")
		}
	}()
	MustAssemble("add r1, r1, r1")
}

func TestNumericBranchOffsets(t *testing.T) {
	src := `
.unit walker
.out r1
    add r1, r0, #1
    ble r1, r0, +1
    emit
    ba  -4
    halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Imm != 1 || p.Code[3].Imm != -4 {
		t.Fatalf("numeric offsets wrong: %+v", p.Code)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	orig, err := Assemble(walkerSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(orig)
	if !strings.Contains(text, ".unit walker") || !strings.Contains(text, ".const r4") {
		t.Fatalf("disassembly missing directives:\n%s", text)
	}
	back, err := Assemble(text)
	if err != nil {
		t.Fatalf("re-assembling disassembly failed: %v\n%s", err, text)
	}
	if len(back.Code) != len(orig.Code) {
		t.Fatalf("instruction count changed: %d vs %d", len(back.Code), len(orig.Code))
	}
	for i := range orig.Code {
		a, b := orig.Code[i], back.Code[i]
		a.Label, b.Label = "", ""
		if a != b {
			t.Fatalf("instruction %d differs after round trip: %+v vs %+v", i, a, b)
		}
	}
}

func TestLabelOnSameLineAsInstruction(t *testing.T) {
	src := `
.unit walker
.out r1
top: add r1, r1, #1
     ble r1, r0, top
     emit
     halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Imm != -2 {
		t.Fatalf("label on instruction line resolved wrong: %+v", p.Code[1])
	}
}
