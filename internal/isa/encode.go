package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary instruction encoding.
//
// The Widx control block (Section 4.3 of the paper) is a region of the
// application's virtual address space containing the constants and
// instructions for each unit; the host core points Widx at it and the
// accelerator loads it with a series of loads. We encode each instruction in
// a single 64-bit word so the control block stays trivially loadable:
//
//	bits  0..5   opcode        (6 bits)
//	bits  6..10  dst           (5 bits)
//	bits 11..15  srcA          (5 bits)
//	bits 16..20  srcB          (5 bits)
//	bit  21      useImm flag
//	bits 22..29  shift amount  (8 bits, two's complement)
//	bits 30..61  immediate     (32 bits, two's complement)
//	bits 62..63  reserved, must be zero
//
// A 32-bit immediate is ample: it carries ALU constants (hash constants wider
// than 32 bits live in preloaded registers), memory displacements within a
// node, and branch offsets.

const (
	immBits = 32
	immMax  = int64(1)<<(immBits-1) - 1
	immMin  = -int64(1) << (immBits - 1)
)

// EncodeInstruction packs the instruction into its 64-bit control-block form.
// It returns an error if a field does not fit the encoding.
func EncodeInstruction(in Instruction) (uint64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if in.Imm > immMax || in.Imm < immMin {
		return 0, fmt.Errorf("isa: immediate %d does not fit in %d bits", in.Imm, immBits)
	}
	var w uint64
	w |= uint64(in.Op) & 0x3F
	w |= (uint64(in.Dst) & 0x1F) << 6
	w |= (uint64(in.SrcA) & 0x1F) << 11
	w |= (uint64(in.SrcB) & 0x1F) << 16
	if in.UseImm {
		w |= 1 << 21
	}
	w |= (uint64(uint8(in.Shift)) & 0xFF) << 22
	w |= (uint64(uint32(int32(in.Imm))) & 0xFFFFFFFF) << 30
	return w, nil
}

// DecodeInstruction unpacks a 64-bit control-block word back into an
// Instruction. It is the inverse of EncodeInstruction for all valid words.
func DecodeInstruction(w uint64) (Instruction, error) {
	if w>>62 != 0 {
		return Instruction{}, fmt.Errorf("isa: reserved bits set in encoded instruction %#x", w)
	}
	in := Instruction{
		Op:     Opcode(w & 0x3F),
		Dst:    Reg((w >> 6) & 0x1F),
		SrcA:   Reg((w >> 11) & 0x1F),
		SrcB:   Reg((w >> 16) & 0x1F),
		UseImm: (w>>21)&1 == 1,
		Shift:  int8(uint8((w >> 22) & 0xFF)),
		Imm:    int64(int32(uint32((w >> 30) & 0xFFFFFFFF))),
	}
	if int(in.Op) >= NumOpcodes {
		return Instruction{}, fmt.Errorf("isa: invalid opcode %d in encoded instruction", in.Op)
	}
	if err := in.Validate(); err != nil {
		return Instruction{}, err
	}
	return in, nil
}

// ControlBlock is the serialized configuration Widx loads at offload time:
// one section per unit program, each carrying the register preloads and the
// encoded instruction words.
type ControlBlock struct {
	Sections []ControlSection
}

// ControlSection is the per-unit part of a control block.
type ControlSection struct {
	Name       string
	Kind       UnitKind
	InputRegs  []Reg
	OutputRegs []Reg
	Consts     map[Reg]uint64
	Words      []uint64
}

// BuildControlBlock encodes the given programs (typically dispatcher, walker,
// producer) into a control block. Programs are validated first.
func BuildControlBlock(programs ...*Program) (*ControlBlock, error) {
	if len(programs) == 0 {
		return nil, fmt.Errorf("isa: control block needs at least one program")
	}
	cb := &ControlBlock{}
	for _, p := range programs {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		sec := ControlSection{
			Name:       p.Name,
			Kind:       p.Kind,
			InputRegs:  append([]Reg(nil), p.InputRegs...),
			OutputRegs: append([]Reg(nil), p.OutputRegs...),
			Consts:     map[Reg]uint64{},
		}
		for r, v := range p.ConstRegs {
			sec.Consts[r] = v
		}
		for _, in := range p.Code {
			w, err := EncodeInstruction(in)
			if err != nil {
				return nil, fmt.Errorf("isa: program %q: %w", p.Name, err)
			}
			sec.Words = append(sec.Words, w)
		}
		cb.Sections = append(cb.Sections, sec)
	}
	return cb, nil
}

// Programs reconstructs the unit programs from the control block, the
// operation Widx performs when the host core signals it to configure itself.
func (cb *ControlBlock) Programs() ([]*Program, error) {
	if len(cb.Sections) == 0 {
		return nil, fmt.Errorf("isa: empty control block")
	}
	var out []*Program
	for _, sec := range cb.Sections {
		p := &Program{
			Name:       sec.Name,
			Kind:       sec.Kind,
			InputRegs:  append([]Reg(nil), sec.InputRegs...),
			OutputRegs: append([]Reg(nil), sec.OutputRegs...),
			ConstRegs:  map[Reg]uint64{},
		}
		for r, v := range sec.Consts {
			p.ConstRegs[r] = v
		}
		for _, w := range sec.Words {
			in, err := DecodeInstruction(w)
			if err != nil {
				return nil, fmt.Errorf("isa: section %q: %w", sec.Name, err)
			}
			p.Code = append(p.Code, in)
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// SizeBytes returns the control block's footprint in bytes: 8 bytes per
// instruction word plus 16 bytes per register preload (register id padded to
// 8 bytes, then the 8-byte value), matching how the configuration loads are
// counted when amortizing offload cost.
func (cb *ControlBlock) SizeBytes() int {
	n := 0
	for _, sec := range cb.Sections {
		n += 8 * len(sec.Words)
		n += 16 * len(sec.Consts)
	}
	return n
}

// MarshalBinary serializes the control block to a flat byte image: for each
// section a small header (kind, counts) followed by register preloads and
// instruction words, all little-endian. The format exists so the simulated
// virtual memory can hold a real control block for Widx to load.
func (cb *ControlBlock) MarshalBinary() ([]byte, error) {
	var buf []byte
	put64 := func(v uint64) {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put64(uint64(len(cb.Sections)))
	for _, sec := range cb.Sections {
		put64(uint64(sec.Kind))
		put64(uint64(len(sec.InputRegs)))
		put64(uint64(len(sec.OutputRegs)))
		put64(uint64(len(sec.Consts)))
		put64(uint64(len(sec.Words)))
		for _, r := range sec.InputRegs {
			put64(uint64(r))
		}
		for _, r := range sec.OutputRegs {
			put64(uint64(r))
		}
		// Deterministic order for the const map keeps the image reproducible.
		for r := Reg(0); int(r) < NumRegs; r++ {
			if v, ok := sec.Consts[r]; ok {
				put64(uint64(r))
				put64(v)
			}
		}
		for _, w := range sec.Words {
			put64(w)
		}
	}
	return buf, nil
}

// UnmarshalBinary parses a byte image produced by MarshalBinary. Section
// names are not part of the binary image and come back empty.
func (cb *ControlBlock) UnmarshalBinary(data []byte) error {
	off := 0
	get64 := func() (uint64, error) {
		if off+8 > len(data) {
			return 0, fmt.Errorf("isa: truncated control block image")
		}
		v := binary.LittleEndian.Uint64(data[off : off+8])
		off += 8
		return v, nil
	}
	nsec, err := get64()
	if err != nil {
		return err
	}
	if nsec == 0 || nsec > 64 {
		return fmt.Errorf("isa: implausible section count %d", nsec)
	}
	cb.Sections = nil
	for s := uint64(0); s < nsec; s++ {
		kind, err := get64()
		if err != nil {
			return err
		}
		if kind >= uint64(NumUnitKinds) {
			return fmt.Errorf("isa: invalid unit kind %d in control block", kind)
		}
		nin, err := get64()
		if err != nil {
			return err
		}
		nout, err := get64()
		if err != nil {
			return err
		}
		nconst, err := get64()
		if err != nil {
			return err
		}
		nwords, err := get64()
		if err != nil {
			return err
		}
		sec := ControlSection{Kind: UnitKind(kind), Consts: map[Reg]uint64{}}
		for i := uint64(0); i < nin; i++ {
			v, err := get64()
			if err != nil {
				return err
			}
			sec.InputRegs = append(sec.InputRegs, Reg(v))
		}
		for i := uint64(0); i < nout; i++ {
			v, err := get64()
			if err != nil {
				return err
			}
			sec.OutputRegs = append(sec.OutputRegs, Reg(v))
		}
		for i := uint64(0); i < nconst; i++ {
			r, err := get64()
			if err != nil {
				return err
			}
			v, err := get64()
			if err != nil {
				return err
			}
			if r >= uint64(NumRegs) {
				return fmt.Errorf("isa: invalid preload register %d", r)
			}
			sec.Consts[Reg(r)] = v
		}
		for i := uint64(0); i < nwords; i++ {
			w, err := get64()
			if err != nil {
				return err
			}
			sec.Words = append(sec.Words, w)
		}
		cb.Sections = append(cb.Sections, sec)
	}
	if off != len(data) {
		return fmt.Errorf("isa: %d trailing bytes in control block image", len(data)-off)
	}
	return nil
}
