package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParams(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Published synthesis numbers (Section 6.3).
	if p.WidxUnitWatts != 0.053 || p.WidxUnitAreaMM2 != 0.039 {
		t.Fatal("single Widx unit constants do not match the paper")
	}
	if p.WidxUnits != 6 {
		t.Fatal("evaluated design has 6 units (4 walkers + dispatcher + producer)")
	}
	if math.Abs(p.WidxTotalWatts()-0.318) > 0.01 {
		t.Fatalf("six units should draw ~320 mW, got %v W", p.WidxTotalWatts())
	}
	if p.WidxTotalAreaMM2 != 0.24 || p.InOrderAreaMM2 != 1.3 {
		t.Fatal("area constants do not match the paper")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := map[string]func(*Params){
		"power":    func(p *Params) { p.OoONominalWatts = 0 },
		"idle":     func(p *Params) { p.OoOIdleFraction = 1.5 },
		"units":    func(p *Params) { p.WidxUnits = 0 },
		"freq":     func(p *Params) { p.FrequencyGHz = 0 },
		"inorder":  func(p *Params) { p.InOrderWatts = -1 },
		"widxunit": func(p *Params) { p.WidxUnitWatts = 0 },
	}
	for name, mutate := range mutations {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: invalid params accepted", name)
		}
	}
}

// TestSection63_AreaPower checks the headline area claim: the six-unit Widx
// design occupies roughly 18% of a Cortex A8-class core.
func TestSection63_AreaPower(t *testing.T) {
	a := Default().Area()
	if a.WidxVsInOrderArea < 0.15 || a.WidxVsInOrderArea > 0.21 {
		t.Fatalf("Widx area fraction of A8 = %v, paper says ~18%%", a.WidxVsInOrderArea)
	}
	if a.WidxUnitMM2 >= a.WidxTotalMM2 || a.WidxTotalMM2 >= a.InOrderCoreMM2 {
		t.Fatal("area ordering wrong")
	}
}

func TestMetricsBasics(t *testing.T) {
	p := Default()
	m := p.OoO(2e9) // one second of indexing at 2 GHz
	if math.Abs(m.Seconds-1.0) > 1e-9 {
		t.Fatalf("2e9 cycles at 2GHz should be 1s, got %v", m.Seconds)
	}
	if math.Abs(m.EnergyJ-p.OoONominalWatts) > 1e-9 {
		t.Fatalf("energy for 1s should equal the power, got %v", m.EnergyJ)
	}
	if math.Abs(m.EDP-m.EnergyJ*m.Seconds) > 1e-12 {
		t.Fatal("EDP should be energy times delay")
	}
	// Widx-mode power = idle core + units + caches, well below nominal.
	if p.WidxModeWatts() >= p.OoONominalWatts {
		t.Fatal("Widx-mode power should be far below the OoO nominal power")
	}
	if p.WidxModeWatts() <= p.WidxTotalWatts() {
		t.Fatal("Widx-mode power must include the idle host core")
	}
}

// TestFigure11 reproduces the relative results of Figure 11 using the paper's
// measured runtime relationships: the in-order core is ~2.2x slower than the
// OoO baseline on indexing, and Widx with four walkers is ~3.1x faster.
func TestFigure11(t *testing.T) {
	p := Default()
	base := 1e9
	f := p.Compare(base, 2.2*base, base/3.1)

	// Runtime column: OoO = 1, in-order ~2.2, Widx ~0.32.
	if f.OoO.Runtime != 1 || f.OoO.Energy != 1 || f.OoO.EDP != 1 {
		t.Fatal("baseline must normalize to 1")
	}
	if math.Abs(f.InOrder.Runtime-2.2) > 1e-9 {
		t.Fatalf("in-order runtime = %v", f.InOrder.Runtime)
	}
	if math.Abs(f.Widx.Runtime-1/3.1) > 1e-9 {
		t.Fatalf("Widx runtime = %v", f.Widx.Runtime)
	}

	// Energy column: both the in-order core and Widx save roughly 80-90%.
	ioSave := f.EnergyReduction(f.InOrder)
	widxSave := f.EnergyReduction(f.Widx)
	if ioSave < 0.75 || ioSave > 0.92 {
		t.Fatalf("in-order energy reduction = %v, paper reports ~86%%", ioSave)
	}
	if widxSave < 0.75 || widxSave > 0.92 {
		t.Fatalf("Widx energy reduction = %v, paper reports ~83%%", widxSave)
	}

	// Energy-delay column: Widx improves EDP by an order of magnitude over
	// the OoO baseline (paper: 17.5x) and several-fold over the in-order
	// core (paper: 5.5x).
	if 1/f.Widx.EDP < 10 || 1/f.Widx.EDP > 30 {
		t.Fatalf("Widx EDP improvement over OoO = %vx, paper reports 17.5x", 1/f.Widx.EDP)
	}
	if f.InOrder.EDP/f.Widx.EDP < 3 || f.InOrder.EDP/f.Widx.EDP > 12 {
		t.Fatalf("Widx EDP improvement over in-order = %vx, paper reports 5.5x",
			f.InOrder.EDP/f.Widx.EDP)
	}
	// The in-order core is slower but still more energy-efficient than OoO;
	// its EDP sits between the two.
	if !(f.Widx.EDP < f.InOrder.EDP && f.InOrder.EDP < f.OoO.EDP) {
		t.Fatalf("EDP ordering wrong: %+v", f)
	}
}

func TestQuerySpeedupProjection(t *testing.T) {
	// Query 17: 94% of time indexing, 3.3x indexing speedup -> ~3x overall.
	if s := QuerySpeedup(3.3, 0.94); s < 2.5 || s > 3.3 {
		t.Fatalf("query 17 projection = %v", s)
	}
	// Query 37: 29% of time indexing, 1.5x indexing speedup -> ~10% overall.
	if s := QuerySpeedup(1.5, 0.29); s < 1.05 || s > 1.2 {
		t.Fatalf("query 37 projection = %v", s)
	}
	// Degenerate cases.
	if QuerySpeedup(0, 0.5) != 0 {
		t.Fatal("zero speedup should clamp to 0")
	}
	if QuerySpeedup(2, -1) != 1 || math.Abs(QuerySpeedup(2, 2)-2) > 1e-9 {
		t.Fatal("share clamping wrong")
	}
	if QuerySpeedup(5, 0) != 1 {
		t.Fatal("no indexing time means no speedup")
	}
}

// Property: whole-query speedup never exceeds the indexing speedup and never
// drops below 1 for speedups >= 1.
func TestPropertyAmdahlBounds(t *testing.T) {
	f := func(spRaw, shareRaw uint8) bool {
		sp := 1 + float64(spRaw%50)/10 // 1.0 .. 5.9
		share := float64(shareRaw%101) / 100
		q := QuerySpeedup(sp, share)
		return q >= 1-1e-9 && q <= sp+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: energy scales linearly with runtime for every design point.
func TestPropertyEnergyLinear(t *testing.T) {
	p := Default()
	f := func(cRaw uint16) bool {
		c := float64(cRaw) + 1
		a := p.Widx(c)
		b := p.Widx(2 * c)
		return math.Abs(b.EnergyJ-2*a.EnergyJ) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
