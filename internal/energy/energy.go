// Package energy implements the area, power and energy model of Section 6.3
// and Figure 11 of the paper. Widx itself was synthesized by the authors in
// TSMC 40 nm; this package reuses their published numbers (a single Widx unit
// is 0.039 mm2 and 53 mW at 2 GHz; the six-unit design is 0.24 mm2 and
// 320 mW; an ARM Cortex A8-class in-order core is 1.3 mm2 and 480 mW with its
// L1 caches) and combines them with measured runtimes to produce the
// indexing-time energy and energy-delay comparisons of Figure 11.
//
// The out-of-order core's power is taken as a Xeon-class nominal operating
// power with idle power at 30% of nominal, per the paper's methodology. When
// Widx runs, the host core sits idle (full offload) but its caches stay
// active serving Widx, so the Widx-mode power is the core's idle power plus
// the Widx units plus an active-cache term.
package energy

import "fmt"

// Params carries the power and area constants of the model. Power is in
// watts, area in mm², frequency in GHz.
type Params struct {
	// OoONominalWatts is the Xeon-like core's nominal operating power,
	// including its private caches.
	OoONominalWatts float64
	// OoOIdleFraction is idle power as a fraction of nominal (the paper uses
	// 30%, citing the Xeon 5600 datasheet).
	OoOIdleFraction float64
	// InOrderWatts is the Cortex A8-class core power including L1 caches.
	InOrderWatts float64
	// WidxUnitWatts is the peak power of a single Widx unit at 2 GHz.
	WidxUnitWatts float64
	// WidxUnits is the number of units in the evaluated design
	// (4 walkers + 1 dispatcher + 1 output producer).
	WidxUnits int
	// CacheActiveWatts is the host core's cache power while Widx drives it
	// (estimated with CACTI in the paper).
	CacheActiveWatts float64

	// Areas.
	WidxUnitAreaMM2  float64
	WidxTotalAreaMM2 float64
	InOrderAreaMM2   float64

	// FrequencyGHz converts cycles to seconds.
	FrequencyGHz float64
}

// Default returns the paper's constants (Section 6.3). The OoO nominal power
// is set so that the published relative numbers (an in-order core saving ~86%
// of energy, Widx saving ~83% while idling the host core) are reproduced.
func Default() Params {
	return Params{
		OoONominalWatts:  5.5,
		OoOIdleFraction:  0.30,
		InOrderWatts:     0.480,
		WidxUnitWatts:    0.053,
		WidxUnits:        6,
		CacheActiveWatts: 0.55,

		WidxUnitAreaMM2:  0.039,
		WidxTotalAreaMM2: 0.24,
		InOrderAreaMM2:   1.3,

		FrequencyGHz: 2.0,
	}
}

// Validate reports unusable parameter sets.
func (p Params) Validate() error {
	switch {
	case p.OoONominalWatts <= 0 || p.InOrderWatts <= 0 || p.WidxUnitWatts <= 0:
		return fmt.Errorf("energy: powers must be positive")
	case p.OoOIdleFraction < 0 || p.OoOIdleFraction > 1:
		return fmt.Errorf("energy: idle fraction out of range")
	case p.WidxUnits <= 0:
		return fmt.Errorf("energy: WidxUnits must be positive")
	case p.FrequencyGHz <= 0:
		return fmt.Errorf("energy: frequency must be positive")
	}
	return nil
}

// WidxTotalWatts is the power of the full Widx widget (all units).
func (p Params) WidxTotalWatts() float64 {
	return float64(p.WidxUnits) * p.WidxUnitWatts
}

// OoOIdleWatts is the host core's idle power.
func (p Params) OoOIdleWatts() float64 {
	return p.OoONominalWatts * p.OoOIdleFraction
}

// WidxModeWatts is the total chip power while Widx runs: the idle host core,
// the Widx units and the actively-driven caches.
func (p Params) WidxModeWatts() float64 {
	return p.OoOIdleWatts() + p.WidxTotalWatts() + p.CacheActiveWatts
}

// seconds converts a cycle count to seconds at the configured frequency.
func (p Params) seconds(cycles float64) float64 {
	return cycles / (p.FrequencyGHz * 1e9)
}

// Metrics reports one design point's runtime, energy and energy-delay product
// for an indexing phase.
type Metrics struct {
	// Cycles is the indexing runtime in cycles.
	Cycles float64
	// Seconds is the runtime converted to seconds.
	Seconds float64
	// EnergyJ is the energy in joules.
	EnergyJ float64
	// EDP is the energy-delay product in joule-seconds.
	EDP float64
}

// metricsFor computes the metrics of one design given its power and runtime.
func (p Params) metricsFor(watts, cycles float64) Metrics {
	s := p.seconds(cycles)
	e := watts * s
	return Metrics{Cycles: cycles, Seconds: s, EnergyJ: e, EDP: e * s}
}

// OoO returns the metrics of the baseline out-of-order core.
func (p Params) OoO(cycles float64) Metrics { return p.metricsFor(p.OoONominalWatts, cycles) }

// InOrder returns the metrics of the in-order comparison core.
func (p Params) InOrder(cycles float64) Metrics { return p.metricsFor(p.InOrderWatts, cycles) }

// Widx returns the metrics of the Widx-augmented design (host core idle).
func (p Params) Widx(cycles float64) Metrics { return p.metricsFor(p.WidxModeWatts(), cycles) }

// Figure11 is the normalized comparison of Figure 11: indexing runtime,
// energy and energy-delay of the OoO baseline, the in-order core and Widx
// coupled with the (idle) OoO core, all normalized to the OoO baseline
// (lower is better).
type Figure11 struct {
	OoO     NormalizedMetrics
	InOrder NormalizedMetrics
	Widx    NormalizedMetrics
}

// NormalizedMetrics are runtime, energy and EDP relative to the OoO baseline.
type NormalizedMetrics struct {
	Runtime float64
	Energy  float64
	EDP     float64
}

// Compare builds Figure 11 from the measured indexing cycles of the three
// designs.
func (p Params) Compare(oooCycles, inOrderCycles, widxCycles float64) Figure11 {
	ooo := p.OoO(oooCycles)
	io := p.InOrder(inOrderCycles)
	wx := p.Widx(widxCycles)
	norm := func(m Metrics) NormalizedMetrics {
		return NormalizedMetrics{
			Runtime: m.Seconds / ooo.Seconds,
			Energy:  m.EnergyJ / ooo.EnergyJ,
			EDP:     m.EDP / ooo.EDP,
		}
	}
	return Figure11{OoO: norm(ooo), InOrder: norm(io), Widx: norm(wx)}
}

// EnergyReduction returns the fractional energy saving of the given design
// point relative to the OoO baseline (e.g. 0.83 for an 83% reduction).
func (f Figure11) EnergyReduction(m NormalizedMetrics) float64 { return 1 - m.Energy }

// AreaReport reproduces the Section 6.3 area comparison.
type AreaReport struct {
	WidxUnitMM2       float64
	WidxTotalMM2      float64
	InOrderCoreMM2    float64
	WidxVsInOrderArea float64 // Widx area as a fraction of the A8-class core
}

// Area returns the area comparison (Widx is ~18% of a Cortex A8).
func (p Params) Area() AreaReport {
	return AreaReport{
		WidxUnitMM2:       p.WidxUnitAreaMM2,
		WidxTotalMM2:      p.WidxTotalAreaMM2,
		InOrderCoreMM2:    p.InOrderAreaMM2,
		WidxVsInOrderArea: p.WidxTotalAreaMM2 / p.InOrderAreaMM2,
	}
}

// QuerySpeedup projects an indexing-only speedup onto a whole query via
// Amdahl's law, given the fraction of query time spent indexing (Figure 2a);
// this is how the paper reports query-level speedups (geometric mean 1.5x).
func QuerySpeedup(indexingSpeedup, indexingShare float64) float64 {
	if indexingSpeedup <= 0 {
		return 0
	}
	if indexingShare < 0 {
		indexingShare = 0
	}
	if indexingShare > 1 {
		indexingShare = 1
	}
	return 1 / ((1 - indexingShare) + indexingShare/indexingSpeedup)
}
