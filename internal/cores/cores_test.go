package cores

import (
	"testing"

	"widx/internal/hashidx"
	"widx/internal/mem"
	"widx/internal/stats"
	"widx/internal/vm"
)

// buildWorkload creates an index and a probe trace stream for core tests.
func buildWorkload(t *testing.T, buildKeys, probes int, buckets uint64, layout hashidx.Layout, hash hashidx.HashKind) []hashidx.ProbeTrace {
	t.Helper()
	as := vm.New()
	rng := stats.NewRNG(7)
	keys := make([]uint64, buildKeys)
	for i := range keys {
		keys[i] = rng.Uint64()>>1 + 1
	}
	tbl, err := hashidx.Build(as, hashidx.Config{Layout: layout, Hash: hash, BucketCount: buckets, Name: "w"}, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	keyBase := as.AllocAligned("probes", uint64(probes)*8)
	traces := make([]hashidx.ProbeTrace, probes)
	for i := 0; i < probes; i++ {
		k := keys[rng.Intn(len(keys))]
		as.Write64(keyBase+uint64(i)*8, k)
		traces[i] = tbl.ProbeFrom(k, keyBase+uint64(i)*8).Trace
	}
	return traces
}

func TestConfigDefaults(t *testing.T) {
	ooo := OoOConfig()
	if ooo.Kind != OutOfOrder || ooo.IssueWidth != 4 || ooo.ROBSize != 128 {
		t.Fatalf("OoO defaults do not match Table 2: %+v", ooo)
	}
	io := InOrderConfig()
	if io.Kind != InOrder || io.IssueWidth != 2 {
		t.Fatalf("in-order defaults wrong: %+v", io)
	}
	if err := ooo.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := io.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Kind: OutOfOrder, IssueWidth: 0, ROBSize: 128, InstrExpansion: 3, MaxInFlightProbes: 4},
		{Kind: OutOfOrder, IssueWidth: 4, ROBSize: 0, InstrExpansion: 3, MaxInFlightProbes: 4},
		{Kind: InOrder, IssueWidth: 2, InstrExpansion: 0.5, MaxInFlightProbes: 1},
		{Kind: InOrder, IssueWidth: 2, InstrExpansion: 3, MaxInFlightProbes: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("invalid config accepted: %+v", c)
		}
	}
	if OutOfOrder.String() != "ooo" || InOrder.String() != "in-order" || Kind(9).String() == "" {
		t.Fatal("kind names wrong")
	}
}

func TestNewValidation(t *testing.T) {
	hier := mem.NewHierarchy(mem.DefaultConfig())
	if _, err := New(OoOConfig(), nil); err == nil {
		t.Fatal("nil hierarchy accepted")
	}
	if _, err := New(Config{}, hier); err == nil {
		t.Fatal("zero config accepted")
	}
	c, err := New(OoOConfig(), hier)
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().Kind != OutOfOrder {
		t.Fatal("config accessor wrong")
	}
	if _, err := c.RunProbes(nil, 0); err == nil {
		t.Fatal("empty probe list accepted")
	}
}

func TestOoOFasterThanInOrder(t *testing.T) {
	// Cache-resident index: this is where the out-of-order core's issue
	// width and its ability to overlap consecutive probes pay off (the paper
	// reports a ~2.2x average gap over the in-order core across the DSS
	// queries, most of which have cache-resident indexes).
	traces := buildWorkload(t, 3000, 4000, 1<<12, hashidx.LayoutInline, hashidx.HashRobust)

	oooCore, _ := New(OoOConfig(), mem.NewHierarchy(mem.DefaultConfig()))
	oooRes, err := oooCore.RunProbes(traces, 0)
	if err != nil {
		t.Fatal(err)
	}
	ioCore, _ := New(InOrderConfig(), mem.NewHierarchy(mem.DefaultConfig()))
	ioRes, err := ioCore.RunProbes(traces, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ioRes.CyclesPerTuple() / oooRes.CyclesPerTuple()
	if ratio < 1.3 || ratio > 4.5 {
		t.Fatalf("in-order/OoO ratio = %.2f, expected roughly 1.5-4 (paper: 2.2)", ratio)
	}

	// On a memory-resident index the gap narrows: both cores are bound by
	// the same dependent memory latency.
	tracesBig := buildWorkload(t, 60000, 2000, 1<<16, hashidx.LayoutInline, hashidx.HashRobust)
	oooBig, _ := New(OoOConfig(), mem.NewHierarchy(mem.DefaultConfig()))
	oooBigRes, err := oooBig.RunProbes(tracesBig, 0)
	if err != nil {
		t.Fatal(err)
	}
	ioBig, _ := New(InOrderConfig(), mem.NewHierarchy(mem.DefaultConfig()))
	ioBigRes, err := ioBig.RunProbes(tracesBig, 0)
	if err != nil {
		t.Fatal(err)
	}
	bigRatio := ioBigRes.CyclesPerTuple() / oooBigRes.CyclesPerTuple()
	if bigRatio < 1.0 {
		t.Fatalf("in-order should never beat the OoO core, ratio %.2f", bigRatio)
	}
	if bigRatio > ratio {
		t.Fatalf("the gap should narrow on memory-resident indexes: %.2f vs %.2f", bigRatio, ratio)
	}
}

func TestOoOOverlapsProbes(t *testing.T) {
	traces := buildWorkload(t, 30000, 1000, 1<<15, hashidx.LayoutInline, hashidx.HashSimple)
	core, _ := New(OoOConfig(), mem.NewHierarchy(mem.DefaultConfig()))
	res, err := core.RunProbes(traces, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With overlap, total cycles must be well below the sum of per-probe
	// latencies (Comp+Mem+TLB is accumulated per probe, not wall-clock).
	busy := res.CompCycles + res.MemCycles + res.TLBCycles
	if res.TotalCycles >= busy {
		t.Fatalf("OoO core shows no inter-probe overlap: total=%d busy=%d", res.TotalCycles, busy)
	}
	if res.Instructions == 0 || res.MemStats.Loads == 0 {
		t.Fatal("activity counters empty")
	}
}

func TestInOrderDoesNotOverlap(t *testing.T) {
	traces := buildWorkload(t, 5000, 500, 1<<13, hashidx.LayoutInline, hashidx.HashSimple)
	core, _ := New(InOrderConfig(), mem.NewHierarchy(mem.DefaultConfig()))
	res, err := core.RunProbes(traces, 0)
	if err != nil {
		t.Fatal(err)
	}
	busy := res.CompCycles + res.MemCycles + res.TLBCycles
	// Serial execution: wall clock at least the accumulated busy time (modulo
	// the branch penalty accounting which is part of comp).
	if float64(res.TotalCycles) < 0.95*float64(busy) {
		t.Fatalf("in-order core overlapped probes: total=%d busy=%d", res.TotalCycles, busy)
	}
}

func TestHashShareHigherForRobustHash(t *testing.T) {
	// With an L1-resident index, hashing dominates for the robust hash
	// (Figure 2b's queries with >50% hash time).
	simple := buildWorkload(t, 300, 2000, 512, hashidx.LayoutInline, hashidx.HashSimple)
	robust := buildWorkload(t, 300, 2000, 512, hashidx.LayoutInline, hashidx.HashRobust)

	// Warm the caches with a first pass so the comparison reflects the
	// steady-state compute/memory split rather than cold-miss noise.
	coreS, _ := New(OoOConfig(), mem.NewHierarchy(mem.DefaultConfig()))
	if _, err := coreS.RunProbes(simple, 0); err != nil {
		t.Fatal(err)
	}
	resS, err := coreS.RunProbes(simple, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	coreR, _ := New(OoOConfig(), mem.NewHierarchy(mem.DefaultConfig()))
	if _, err := coreR.RunProbes(robust, 0); err != nil {
		t.Fatal(err)
	}
	resR, err := coreR.RunProbes(robust, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if resR.HashShare() <= resS.HashShare() {
		t.Fatalf("robust hash share (%.2f) should exceed simple hash share (%.2f)",
			resR.HashShare(), resS.HashShare())
	}
	if resR.HashShare() <= 0 || resR.HashShare() >= 1 {
		t.Fatalf("hash share out of range: %v", resR.HashShare())
	}
}

func TestLargerIndexCostsMore(t *testing.T) {
	small := buildWorkload(t, 500, 1000, 1024, hashidx.LayoutInline, hashidx.HashSimple)
	large := buildWorkload(t, 200000, 1000, 1<<18, hashidx.LayoutInline, hashidx.HashSimple)

	coreS, _ := New(OoOConfig(), mem.NewHierarchy(mem.DefaultConfig()))
	resS, _ := coreS.RunProbes(small, 0)
	coreL, _ := New(OoOConfig(), mem.NewHierarchy(mem.DefaultConfig()))
	resL, _ := coreL.RunProbes(large, 0)

	if resL.CyclesPerTuple() <= resS.CyclesPerTuple() {
		t.Fatalf("large index (%.1f cpt) should cost more than small (%.1f cpt)",
			resL.CyclesPerTuple(), resS.CyclesPerTuple())
	}
	if resL.MemStats.LLCMisses == 0 {
		t.Fatal("large index should miss in the LLC")
	}
}

func TestZeroResultMetrics(t *testing.T) {
	var r Result
	if r.CyclesPerTuple() != 0 || r.HashShare() != 0 {
		t.Fatal("zero result should report zero metrics")
	}
}
