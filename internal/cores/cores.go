// Package cores provides the baseline processor timing models the paper
// compares Widx against: an aggressive out-of-order core (Xeon-like: 4-wide,
// 128-entry ROB) and an in-order core (ARM Cortex A8-like: 2-wide). Both
// execute the software indexing code — represented by the probe traces the
// hash index produces — against the shared memory hierarchy model.
//
// The models are deliberately first-order. What matters for reproducing the
// paper's comparisons is:
//
//   - the out-of-order core extracts some inter-key memory-level parallelism
//     by holding the instructions of a few consecutive probes in its reorder
//     buffer, bounded by the ROB size, the per-probe instruction footprint of
//     general-purpose code, and the L1 MSHRs;
//   - the in-order core issues at most one probe at a time and stalls on
//     every dependent load;
//   - both pay the full software instruction footprint per probe (loop
//     control, address arithmetic, function-call overhead), which is several
//     times the instruction count of the specialized Widx units — this is
//     precisely the overhead the paper's custom ISA removes.
package cores

import (
	"fmt"

	"widx/internal/hashidx"
	"widx/internal/mem"
)

// Kind identifies the modelled core.
type Kind uint8

const (
	// OutOfOrder is the Xeon-like 4-wide, 128-entry-ROB baseline.
	OutOfOrder Kind = iota
	// InOrder is the Cortex-A8-like 2-wide in-order comparison point.
	InOrder
)

// String names the core kind.
func (k Kind) String() string {
	switch k {
	case OutOfOrder:
		return "ooo"
	case InOrder:
		return "in-order"
	default:
		return fmt.Sprintf("core(%d)", uint8(k))
	}
}

// Config parameterizes a core model.
type Config struct {
	// Kind selects the pipeline organization.
	Kind Kind
	// IssueWidth is the sustained instructions per cycle for ALU work.
	IssueWidth int
	// ROBSize is the reorder-buffer capacity (instructions). Ignored for
	// in-order cores.
	ROBSize int
	// InstrExpansion scales the Widx-equivalent operation counts up to the
	// footprint of compiled general-purpose code: loop control, address
	// arithmetic that Widx fuses, register pressure and call overhead. The
	// paper's motivation data (Figure 2) and the custom-ISA argument rest on
	// this gap.
	InstrExpansion float64
	// BranchMissPenalty is charged once per probe for the mispredicted
	// node-list exit branch.
	BranchMissPenalty uint64
	// MaxInFlightProbes caps how many probes the core can overlap regardless
	// of ROB size (bounded by the L1 MSHRs in practice).
	MaxInFlightProbes int
	// SquashOnLongExit models the loss of cross-probe run-ahead when a
	// probe's node-list exit branch depends on a load that went all the way
	// to memory: by the time the branch resolves (and, at the end of a
	// chain, frequently mispredicts), the speculative work on the next probe
	// has been squashed. Cache-resident probes resolve their exit branches
	// quickly and keep their run-ahead. This is the effect that makes the
	// paper's out-of-order baseline roughly match a single Widx walker on
	// memory-resident indexes while staying well ahead of the in-order core
	// on cache-resident ones.
	SquashOnLongExit bool
}

// OoOConfig returns the paper's baseline out-of-order core (Table 2).
func OoOConfig() Config {
	return Config{
		Kind:              OutOfOrder,
		IssueWidth:        4,
		ROBSize:           128,
		InstrExpansion:    3.0,
		BranchMissPenalty: 12,
		MaxInFlightProbes: 10,
		SquashOnLongExit:  true,
	}
}

// InOrderConfig returns the Cortex-A8-like in-order comparison core.
func InOrderConfig() Config {
	return Config{
		Kind:              InOrder,
		IssueWidth:        2,
		ROBSize:           0,
		InstrExpansion:    3.0,
		BranchMissPenalty: 8,
		MaxInFlightProbes: 1,
	}
}

// Validate reports nonsensical configurations.
func (c Config) Validate() error {
	if c.IssueWidth <= 0 {
		return fmt.Errorf("cores: IssueWidth must be positive")
	}
	if c.Kind == OutOfOrder && c.ROBSize <= 0 {
		return fmt.Errorf("cores: out-of-order core needs a ROB")
	}
	if c.InstrExpansion < 1 {
		return fmt.Errorf("cores: InstrExpansion must be at least 1")
	}
	if c.MaxInFlightProbes <= 0 {
		return fmt.Errorf("cores: MaxInFlightProbes must be positive")
	}
	return nil
}

// Result reports a bulk probe execution on a core.
type Result struct {
	// Tuples is the number of probes executed.
	Tuples uint64
	// TotalCycles spans the first probe's start to the last probe's finish.
	TotalCycles uint64
	// CompCycles, MemCycles and TLBCycles decompose the aggregate busy time
	// of the probes (summed over overlapping probes, like the Widx walker
	// breakdown).
	CompCycles uint64
	MemCycles  uint64
	TLBCycles  uint64
	// HashCycles and WalkCycles split each probe's latency into the key
	// hashing phase and the node-list walk, the decomposition of Figure 2b.
	HashCycles uint64
	WalkCycles uint64
	// Instructions is the retired instruction estimate.
	Instructions uint64
	// MemStats is the memory-system activity during the run.
	MemStats mem.Stats
}

// CyclesPerTuple is the per-probe cost.
func (r Result) CyclesPerTuple() float64 {
	if r.Tuples == 0 {
		return 0
	}
	return float64(r.TotalCycles) / float64(r.Tuples)
}

// HashShare returns the fraction of probe latency spent hashing, i.e. the
// "Hash" bars of Figure 2b.
func (r Result) HashShare() float64 {
	total := r.HashCycles + r.WalkCycles
	if total == 0 {
		return 0
	}
	return float64(r.HashCycles) / float64(total)
}

// Core is an instantiated core model bound to a memory hierarchy.
type Core struct {
	cfg  Config
	hier *mem.Hierarchy
}

// New builds a core model.
func New(cfg Config, hier *mem.Hierarchy) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hier == nil {
		return nil, fmt.Errorf("cores: nil memory hierarchy")
	}
	return &Core{cfg: cfg, hier: hier}, nil
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// probeInstructions estimates the retired instruction count of one probe in
// compiled software, before any expansion is applied by the caller.
func probeInstructions(tr hashidx.ProbeTrace) float64 {
	n := float64(tr.HashOps) + 2 // hash + bucket address computation
	if tr.KeyAddr != 0 {
		n++ // key load
	}
	for _, s := range tr.Steps {
		n += 1 + float64(s.CompareOps) + 2 // node load + compare + loop control
		if s.KeyFetchAddr != 0 {
			n++
		}
	}
	return n
}

// compCycles converts an operation count to cycles at the core's issue width.
func (c *Core) compCycles(ops float64) uint64 {
	cyc := ops * c.cfg.InstrExpansion / float64(c.cfg.IssueWidth)
	if cyc < 1 {
		cyc = 1
	}
	return uint64(cyc + 0.5)
}

// inFlightWindow returns how many probes the core can overlap, given the
// per-probe instruction footprint and the ROB capacity.
func (c *Core) inFlightWindow(instrPerProbe float64) int {
	if c.cfg.Kind == InOrder {
		return 1
	}
	instr := instrPerProbe * c.cfg.InstrExpansion
	if instr < 1 {
		instr = 1
	}
	w := int(float64(c.cfg.ROBSize) / instr)
	if w < 1 {
		w = 1
	}
	if w > c.cfg.MaxInFlightProbes {
		w = c.cfg.MaxInFlightProbes
	}
	return w
}

// probePhase is where an in-flight probe's state machine is paused.
type probePhase uint8

const (
	phKeyFetch probePhase = iota // before the input-column key load
	phNode                       // before the next node load
	phRefFetch                   // before a step's indirect key fetch
	phDone                       // all accesses issued; finish at t
)

// probeRun is one in-flight probe: a resumable replay of its trace that
// yields before every memory access, so the core can interleave the
// accesses of all overlapping probes in global cycle order (the same
// stepping discipline the Widx units use).
type probeRun struct {
	tr        *hashidx.ProbeTrace
	seq       int    // admission order, for squash age comparisons
	t         uint64 // local clock; while paused, the next access's cycle
	step      int    // index of the trace step being replayed
	phase     probePhase
	hashStart uint64
	walkStart uint64
	longExit  bool
}

// advance runs the probe's local (non-memory) work from its current phase up
// to the next memory access or to completion, charging computation to res.
func (p *probeRun) advance(c *Core, res *Result) {
	for {
		switch p.phase {
		case phKeyFetch:
			if p.tr.KeyAddr != 0 {
				return // yield: key load at p.t
			}
			p.finishHash(c, res)
		case phNode:
			if p.step < len(p.tr.Steps) {
				return // yield: node load at p.t
			}
			// Mispredicted exit branch of the node-list loop.
			p.t += c.cfg.BranchMissPenalty
			res.CompCycles += c.cfg.BranchMissPenalty
			res.WalkCycles += p.t - p.walkStart
			p.phase = phDone
			return
		case phRefFetch:
			return // yield: indirect key fetch at p.t
		case phDone:
			return
		}
	}
}

// finishHash charges the hash computation and enters the walk.
func (p *probeRun) finishHash(c *Core, res *Result) {
	hc := c.compCycles(float64(p.tr.HashOps) + 2)
	res.CompCycles += hc
	p.t += hc
	res.HashCycles += p.t - p.hashStart
	p.walkStart = p.t
	p.phase = phNode
}

// grant issues the memory access the probe is paused at and advances the
// state machine past it (including the post-access computation of the step).
func (p *probeRun) grant(c *Core, res *Result) {
	issue := func(addr uint64) mem.Result {
		r := c.hier.Access(addr, p.t, mem.Load)
		res.TLBCycles += r.TLBReadyCycle - p.t
		if r.CompleteCycle > r.TLBReadyCycle {
			res.MemCycles += r.CompleteCycle - r.TLBReadyCycle
		}
		p.t = r.CompleteCycle
		return r
	}
	switch p.phase {
	case phKeyFetch:
		issue(p.tr.KeyAddr)
		p.finishHash(c, res)
	case phNode:
		step := &p.tr.Steps[p.step]
		r := issue(step.NodeAddr)
		p.longExit = r.Level == mem.LevelMemory || r.Level == mem.LevelCombined
		if step.KeyFetchAddr != 0 {
			p.phase = phRefFetch
		} else {
			p.finishStep(c, res)
		}
	case phRefFetch:
		issue(p.tr.Steps[p.step].KeyFetchAddr)
		p.finishStep(c, res)
	}
	p.advance(c, res)
}

// finishStep charges a step's comparison work and moves to the next node.
func (p *probeRun) finishStep(c *Core, res *Result) {
	cc := c.compCycles(float64(p.tr.Steps[p.step].CompareOps) + 2)
	res.CompCycles += cc
	p.t += cc
	p.step++
	p.phase = phNode
}

// RunProbes executes the probe traces starting at startCycle and returns the
// timing result. The traces must come from the same index build that the
// hierarchy's address space holds, so cache behaviour matches the data.
//
// Probes overlap up to the in-flight window, and their memory accesses reach
// the hierarchy in monotonically non-decreasing cycle order: each iteration
// grants the single pending access with the globally smallest cycle, exactly
// like the Widx scheduler. Admission follows trace order, gated by the front
// end's dispatch throughput.
func (c *Core) RunProbes(traces []hashidx.ProbeTrace, startCycle uint64) (Result, error) {
	if len(traces) == 0 {
		return Result{}, fmt.Errorf("cores: no probes to run")
	}
	res := Result{Tuples: uint64(len(traces))}
	memBefore := c.hier.Stats()

	// Average instruction footprint decides the overlap window; using the
	// first trace alone would be noisy for skewed chains.
	var instrSum float64
	for _, tr := range traces {
		instrSum += probeInstructions(tr)
	}
	instrPerProbe := instrSum / float64(len(traces))
	window := c.inFlightWindow(instrPerProbe)

	// Dispatch throughput: the front end must insert a probe's instructions
	// into the window before the next probe can enter.
	dispatchInterval := uint64(instrPerProbe * c.cfg.InstrExpansion / float64(c.cfg.IssueWidth))
	if dispatchInterval < 1 {
		dispatchInterval = 1
	}

	slots := make([]*probeRun, window)
	slotFree := make([]uint64, window)
	for i := range slotFree {
		slotFree[i] = startCycle
	}
	next := 0
	nextDispatch := startCycle
	end := startCycle

	// complete retires a finished probe from its slot.
	complete := func(s int) {
		p := slots[s]
		slots[s] = nil
		slotFree[s] = p.t
		if c.cfg.SquashOnLongExit && p.longExit {
			// The exit branch waited on a memory-latency load and resolves
			// (mispredicted) only at p.t: the speculative run-ahead of every
			// younger in-flight probe is squashed, so none of their
			// remaining work can land before the resolution, and no new
			// probe can dispatch earlier either.
			if p.t > nextDispatch {
				nextDispatch = p.t
			}
			for _, q := range slots {
				if q != nil && q.seq > p.seq && q.t < p.t {
					q.t = p.t
				}
			}
		}
		if p.t > end {
			end = p.t
		}
	}

	for {
		// Admit traces (in order) into free slots, earliest-free first.
		for next < len(traces) {
			s := -1
			for i := range slots {
				if slots[i] == nil && (s < 0 || slotFree[i] < slotFree[s]) {
					s = i
				}
			}
			if s < 0 {
				break
			}
			tr := &traces[next]
			seq := next
			next++
			res.Instructions += uint64(probeInstructions(*tr)*c.cfg.InstrExpansion + 0.5)
			start := slotFree[s]
			if nextDispatch > start {
				start = nextDispatch
			}
			nextDispatch = start + dispatchInterval
			p := &probeRun{tr: tr, seq: seq, t: start, hashStart: start}
			p.advance(c, &res)
			if p.phase == phDone {
				slots[s] = p
				complete(s)
				continue
			}
			slots[s] = p
		}

		// Grant the pending access with the globally smallest cycle.
		s := -1
		for i, p := range slots {
			if p != nil && (s < 0 || p.t < slots[s].t) {
				s = i
			}
		}
		if s < 0 {
			break // no probes in flight and none left to admit
		}
		slots[s].grant(c, &res)
		if slots[s].phase == phDone {
			complete(s)
		}
	}

	res.TotalCycles = end - startCycle
	res.MemStats = c.hier.Stats().Sub(memBefore)
	return res, nil
}
