// Package cores provides the baseline processor timing models the paper
// compares Widx against: an aggressive out-of-order core (Xeon-like: 4-wide,
// 128-entry ROB) and an in-order core (ARM Cortex A8-like: 2-wide). Both
// execute the software indexing code — represented by the probe traces the
// hash index produces — against the shared memory hierarchy model.
//
// The models are deliberately first-order. What matters for reproducing the
// paper's comparisons is:
//
//   - the out-of-order core extracts some inter-key memory-level parallelism
//     by holding the instructions of a few consecutive probes in its reorder
//     buffer, bounded by the ROB size, the per-probe instruction footprint of
//     general-purpose code, and the L1 MSHRs;
//   - the in-order core issues at most one probe at a time and stalls on
//     every dependent load;
//   - both pay the full software instruction footprint per probe (loop
//     control, address arithmetic, function-call overhead), which is several
//     times the instruction count of the specialized Widx units — this is
//     precisely the overhead the paper's custom ISA removes.
package cores

import (
	"fmt"

	"widx/internal/hashidx"
	"widx/internal/mem"
	"widx/internal/system"
)

// Kind identifies the modelled core.
type Kind uint8

const (
	// OutOfOrder is the Xeon-like 4-wide, 128-entry-ROB baseline.
	OutOfOrder Kind = iota
	// InOrder is the Cortex-A8-like 2-wide in-order comparison point.
	InOrder
)

// String names the core kind.
func (k Kind) String() string {
	switch k {
	case OutOfOrder:
		return "ooo"
	case InOrder:
		return "in-order"
	default:
		return fmt.Sprintf("core(%d)", uint8(k))
	}
}

// Config parameterizes a core model.
type Config struct {
	// Kind selects the pipeline organization.
	Kind Kind
	// IssueWidth is the sustained instructions per cycle for ALU work.
	IssueWidth int
	// ROBSize is the reorder-buffer capacity (instructions). Ignored for
	// in-order cores.
	ROBSize int
	// InstrExpansion scales the Widx-equivalent operation counts up to the
	// footprint of compiled general-purpose code: loop control, address
	// arithmetic that Widx fuses, register pressure and call overhead. The
	// paper's motivation data (Figure 2) and the custom-ISA argument rest on
	// this gap.
	InstrExpansion float64
	// BranchMissPenalty is charged once per probe for the mispredicted
	// node-list exit branch.
	BranchMissPenalty uint64
	// MaxInFlightProbes caps how many probes the core can overlap regardless
	// of ROB size (bounded by the L1 MSHRs in practice).
	MaxInFlightProbes int
	// SquashOnLongExit models the loss of cross-probe run-ahead when a
	// probe's node-list exit branch depends on a load that went all the way
	// to memory: by the time the branch resolves (and, at the end of a
	// chain, frequently mispredicts), the speculative work on the next probe
	// has been squashed. Cache-resident probes resolve their exit branches
	// quickly and keep their run-ahead. This is the effect that makes the
	// paper's out-of-order baseline roughly match a single Widx walker on
	// memory-resident indexes while staying well ahead of the in-order core
	// on cache-resident ones.
	SquashOnLongExit bool
}

// OoOConfig returns the paper's baseline out-of-order core (Table 2).
func OoOConfig() Config {
	return Config{
		Kind:              OutOfOrder,
		IssueWidth:        4,
		ROBSize:           128,
		InstrExpansion:    3.0,
		BranchMissPenalty: 12,
		MaxInFlightProbes: 10,
		SquashOnLongExit:  true,
	}
}

// InOrderConfig returns the Cortex-A8-like in-order comparison core.
func InOrderConfig() Config {
	return Config{
		Kind:              InOrder,
		IssueWidth:        2,
		ROBSize:           0,
		InstrExpansion:    3.0,
		BranchMissPenalty: 8,
		MaxInFlightProbes: 1,
	}
}

// Validate reports nonsensical configurations.
func (c Config) Validate() error {
	if c.IssueWidth <= 0 {
		return fmt.Errorf("cores: IssueWidth must be positive")
	}
	if c.Kind == OutOfOrder && c.ROBSize <= 0 {
		return fmt.Errorf("cores: out-of-order core needs a ROB")
	}
	if c.InstrExpansion < 1 {
		return fmt.Errorf("cores: InstrExpansion must be at least 1")
	}
	if c.MaxInFlightProbes <= 0 {
		return fmt.Errorf("cores: MaxInFlightProbes must be positive")
	}
	return nil
}

// Result reports a bulk probe execution on a core.
type Result struct {
	// Tuples is the number of probes executed.
	Tuples uint64
	// TotalCycles spans the first probe's start to the last probe's finish.
	TotalCycles uint64
	// CompCycles, MemCycles and TLBCycles decompose the aggregate busy time
	// of the probes (summed over overlapping probes, like the Widx walker
	// breakdown).
	CompCycles uint64
	MemCycles  uint64
	TLBCycles  uint64
	// HashCycles and WalkCycles split each probe's latency into the key
	// hashing phase and the node-list walk, the decomposition of Figure 2b.
	HashCycles uint64
	WalkCycles uint64
	// Instructions is the retired instruction estimate.
	Instructions uint64
	// MemStats is the memory-system activity during the run.
	MemStats mem.Stats
}

// CyclesPerTuple is the per-probe cost.
func (r Result) CyclesPerTuple() float64 {
	if r.Tuples == 0 {
		return 0
	}
	return float64(r.TotalCycles) / float64(r.Tuples)
}

// HashShare returns the fraction of probe latency spent hashing, i.e. the
// "Hash" bars of Figure 2b.
func (r Result) HashShare() float64 {
	total := r.HashCycles + r.WalkCycles
	if total == 0 {
		return 0
	}
	return float64(r.HashCycles) / float64(total)
}

// Core is an instantiated core model bound to a memory hierarchy.
type Core struct {
	cfg  Config
	hier *mem.Hierarchy
}

// New builds a core model.
func New(cfg Config, hier *mem.Hierarchy) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hier == nil {
		return nil, fmt.Errorf("cores: nil memory hierarchy")
	}
	return &Core{cfg: cfg, hier: hier}, nil
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// probeInstructions estimates the retired instruction count of one probe in
// compiled software, before any expansion is applied by the caller.
func probeInstructions(tr hashidx.ProbeTrace) float64 {
	n := float64(tr.HashOps) + 2 // hash + bucket address computation
	if tr.KeyAddr != 0 {
		n++ // key load
	}
	for _, s := range tr.Steps {
		n += 1 + float64(s.CompareOps) + 2 // node load + compare + loop control
		if s.KeyFetchAddr != 0 {
			n++
		}
	}
	return n
}

// compCycles converts an operation count to cycles at the core's issue width.
func (c *Core) compCycles(ops float64) uint64 {
	cyc := ops * c.cfg.InstrExpansion / float64(c.cfg.IssueWidth)
	if cyc < 1 {
		cyc = 1
	}
	return uint64(cyc + 0.5)
}

// inFlightWindow returns how many probes the core can overlap, given the
// per-probe instruction footprint and the ROB capacity.
func (c *Core) inFlightWindow(instrPerProbe float64) int {
	if c.cfg.Kind == InOrder {
		return 1
	}
	instr := instrPerProbe * c.cfg.InstrExpansion
	if instr < 1 {
		instr = 1
	}
	w := int(float64(c.cfg.ROBSize) / instr)
	if w < 1 {
		w = 1
	}
	if w > c.cfg.MaxInFlightProbes {
		w = c.cfg.MaxInFlightProbes
	}
	return w
}

// probePhase is where an in-flight probe's state machine is paused.
type probePhase uint8

const (
	phKeyFetch probePhase = iota // before the input-column key load
	phNode                       // before the next node load
	phRefFetch                   // before a step's indirect key fetch
	phDone                       // all accesses issued; finish at t
)

// probeRun is one in-flight probe: a resumable replay of its trace that
// yields before every memory access, so the core can interleave the
// accesses of all overlapping probes in global cycle order (the same
// stepping discipline the Widx units use).
type probeRun struct {
	tr        *hashidx.ProbeTrace
	seq       int    // admission order, for squash age comparisons
	t         uint64 // local clock; while paused, the next access's cycle
	step      int    // index of the trace step being replayed
	phase     probePhase
	hashStart uint64
	walkStart uint64
	longExit  bool
}

// advance runs the probe's local (non-memory) work from its current phase up
// to the next memory access or to completion, charging computation to res.
func (p *probeRun) advance(c *Core, res *Result) {
	for {
		switch p.phase {
		case phKeyFetch:
			if p.tr.KeyAddr != 0 {
				return // yield: key load at p.t
			}
			p.finishHash(c, res)
		case phNode:
			if p.step < len(p.tr.Steps) {
				return // yield: node load at p.t
			}
			// Mispredicted exit branch of the node-list loop.
			p.t += c.cfg.BranchMissPenalty
			res.CompCycles += c.cfg.BranchMissPenalty
			res.WalkCycles += p.t - p.walkStart
			p.phase = phDone
			return
		case phRefFetch:
			return // yield: indirect key fetch at p.t
		case phDone:
			return
		}
	}
}

// finishHash charges the hash computation and enters the walk.
func (p *probeRun) finishHash(c *Core, res *Result) {
	hc := c.compCycles(float64(p.tr.HashOps) + 2)
	res.CompCycles += hc
	p.t += hc
	res.HashCycles += p.t - p.hashStart
	p.walkStart = p.t
	p.phase = phNode
}

// grant issues the memory access the probe is paused at and advances the
// state machine past it (including the post-access computation of the step).
func (p *probeRun) grant(c *Core, res *Result) {
	issue := func(addr uint64) mem.Result {
		r := c.hier.Access(addr, p.t, mem.Load)
		res.TLBCycles += r.TLBReadyCycle - p.t
		if r.CompleteCycle > r.TLBReadyCycle {
			res.MemCycles += r.CompleteCycle - r.TLBReadyCycle
		}
		p.t = r.CompleteCycle
		return r
	}
	switch p.phase {
	case phKeyFetch:
		issue(p.tr.KeyAddr)
		p.finishHash(c, res)
	case phNode:
		step := &p.tr.Steps[p.step]
		r := issue(step.NodeAddr)
		p.longExit = r.Level == mem.LevelMemory || r.Level == mem.LevelCombined
		if step.KeyFetchAddr != 0 {
			p.phase = phRefFetch
		} else {
			p.finishStep(c, res)
		}
	case phRefFetch:
		issue(p.tr.Steps[p.step].KeyFetchAddr)
		p.finishStep(c, res)
	}
	p.advance(c, res)
}

// finishStep charges a step's comparison work and moves to the next node.
func (p *probeRun) finishStep(c *Core, res *Result) {
	cc := c.compCycles(float64(p.tr.Steps[p.step].CompareOps) + 2)
	res.CompCycles += cc
	p.t += cc
	p.step++
	p.phase = phNode
}

// ProbeEngine is an in-flight bulk probe replay exposed as a resumable
// system.Agent: the system scheduler (internal/system) can co-schedule it
// with other agents — Widx offloads, other cores — against one shared
// memory level. Core.RunProbes wraps it for the solo case.
//
// Probes overlap up to the in-flight window, and the engine's memory
// accesses reach the hierarchy in monotonically non-decreasing cycle order:
// every GrantMem performs the pending access with the engine-wide smallest
// cycle, exactly like the Widx scheduler. Admission follows trace order,
// gated by the front end's dispatch throughput.
type ProbeEngine struct {
	c      *Core
	traces []hashidx.ProbeTrace

	res       Result
	memBefore mem.Stats

	startCycle       uint64
	dispatchInterval uint64

	// slots holds the in-flight probes (the overlap window); slotFree[i] is
	// the cycle slot i last became free. The window is small (bounded by
	// MaxInFlightProbes, 10 for the Table 2 OoO core), so min-selection
	// scans it directly — and squash clamps rewrite in-flight probes'
	// pending cycles, which a heap would have to re-key anyway.
	slots    []*probeRun
	slotFree []uint64
	next     int
	// nextDispatch gates admission on front-end throughput; end tracks the
	// last probe completion.
	nextDispatch uint64
	end          uint64
}

// NewProbeEngine prepares a bulk probe replay as a schedulable agent. The
// traces must come from the same index build that the hierarchy's address
// space holds, so cache behaviour matches the data. The engine's Result
// becomes available once the agent reports Done.
func (c *Core) NewProbeEngine(traces []hashidx.ProbeTrace, startCycle uint64) (*ProbeEngine, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("cores: no probes to run")
	}
	e := &ProbeEngine{
		c:          c,
		traces:     traces,
		res:        Result{Tuples: uint64(len(traces))},
		memBefore:  c.hier.Stats(),
		startCycle: startCycle,
		next:       0,
	}

	// Average instruction footprint decides the overlap window; using the
	// first trace alone would be noisy for skewed chains.
	var instrSum float64
	for _, tr := range traces {
		instrSum += probeInstructions(tr)
	}
	instrPerProbe := instrSum / float64(len(traces))
	window := c.inFlightWindow(instrPerProbe)

	// Dispatch throughput: the front end must insert a probe's instructions
	// into the window before the next probe can enter.
	e.dispatchInterval = uint64(instrPerProbe * c.cfg.InstrExpansion / float64(c.cfg.IssueWidth))
	if e.dispatchInterval < 1 {
		e.dispatchInterval = 1
	}

	e.slots = make([]*probeRun, window)
	e.slotFree = make([]uint64, window)
	for i := range e.slotFree {
		e.slotFree[i] = startCycle
	}
	e.nextDispatch = startCycle
	e.end = startCycle
	return e, nil
}

// Name identifies the agent (the label of its memory-hierarchy view).
func (e *ProbeEngine) Name() string { return e.c.hier.Name() }

// complete retires a finished probe from its slot.
func (e *ProbeEngine) complete(s int) {
	p := e.slots[s]
	e.slots[s] = nil
	e.slotFree[s] = p.t
	if e.c.cfg.SquashOnLongExit && p.longExit {
		// The exit branch waited on a memory-latency load and resolves
		// (mispredicted) only at p.t: the speculative run-ahead of every
		// younger in-flight probe is squashed, so none of their
		// remaining work can land before the resolution, and no new
		// probe can dispatch earlier either.
		if p.t > e.nextDispatch {
			e.nextDispatch = p.t
		}
		for _, q := range e.slots {
			if q != nil && q.seq > p.seq && q.t < p.t {
				q.t = p.t
			}
		}
	}
	if p.t > e.end {
		e.end = p.t
	}
}

// Settle admits traces (in order) into free slots, earliest-free first —
// the agent-local progress that needs no global memory ordering.
func (e *ProbeEngine) Settle() error {
	for e.next < len(e.traces) {
		s := -1
		for i := range e.slots {
			if e.slots[i] == nil && (s < 0 || e.slotFree[i] < e.slotFree[s]) {
				s = i
			}
		}
		if s < 0 {
			return nil
		}
		tr := &e.traces[e.next]
		seq := e.next
		e.next++
		e.res.Instructions += uint64(probeInstructions(*tr)*e.c.cfg.InstrExpansion + 0.5)
		start := e.slotFree[s]
		if e.nextDispatch > start {
			start = e.nextDispatch
		}
		e.nextDispatch = start + e.dispatchInterval
		p := &probeRun{tr: tr, seq: seq, t: start, hashStart: start}
		p.advance(e.c, &e.res)
		e.slots[s] = p
		if p.phase == phDone {
			e.complete(s)
		}
	}
	return nil
}

// pendingSlot returns the in-flight slot with the smallest pending cycle
// (ties: lowest index), or -1 when no probe is in flight.
func (e *ProbeEngine) pendingSlot() int {
	s := -1
	for i, p := range e.slots {
		if p != nil && (s < 0 || p.t < e.slots[s].t) {
			s = i
		}
	}
	return s
}

// PendingMem reports the cycle of the earliest pending memory access.
func (e *ProbeEngine) PendingMem() (uint64, bool) {
	s := e.pendingSlot()
	if s < 0 {
		return 0, false
	}
	return e.slots[s].t, true
}

// GrantMem performs the pending access with the engine-wide smallest cycle.
func (e *ProbeEngine) GrantMem() error {
	s := e.pendingSlot()
	if s < 0 {
		return fmt.Errorf("cores: %s: memory grant with no probe in flight (%d/%d admitted)",
			e.Name(), e.next, len(e.traces))
	}
	e.slots[s].grant(e.c, &e.res)
	if e.slots[s].phase == phDone {
		e.complete(s)
	}
	return nil
}

// Done reports whether every trace has been admitted and retired.
func (e *ProbeEngine) Done() bool {
	if e.next < len(e.traces) {
		return false
	}
	for _, p := range e.slots {
		if p != nil {
			return false
		}
	}
	return true
}

// Result finalizes and returns the replay's timing result. It is only valid
// once Done reports true. MemStats covers the engine's own hierarchy view
// over the replay's span, so in a multi-agent run it is the per-agent
// attribution of the shared level's activity.
func (e *ProbeEngine) Result() (Result, error) {
	if !e.Done() {
		return Result{}, fmt.Errorf("cores: %s: result requested before the replay finished (%d/%d admitted)",
			e.Name(), e.next, len(e.traces))
	}
	res := e.res
	res.TotalCycles = e.end - e.startCycle
	res.MemStats = e.c.hier.Stats().Sub(e.memBefore)
	return res, nil
}

// RunProbes executes the probe traces starting at startCycle and returns the
// timing result, driving the engine to completion on the system scheduler.
// To co-run the replay with other agents on a shared memory level, use
// NewProbeEngine and system.Run instead.
func (c *Core) RunProbes(traces []hashidx.ProbeTrace, startCycle uint64) (Result, error) {
	e, err := c.NewProbeEngine(traces, startCycle)
	if err != nil {
		return Result{}, err
	}
	if err := system.Run(e); err != nil {
		return Result{}, err
	}
	return e.Result()
}
