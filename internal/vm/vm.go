// Package vm provides the simulated flat virtual address space in which all
// workload data structures live: hash tables, node pools, key columns, result
// buffers and the Widx control block.
//
// Laying the data out in a real (simulated) address space, rather than using
// native Go pointers, serves two purposes. First, the memory-hierarchy timing
// model (internal/mem) needs addresses to decide cache-set placement,
// cache-line sharing between adjacent keys, page boundaries for the TLB and
// memory-controller interleaving — all of which drive the paper's results.
// Second, Widx unit programs operate on 64-bit virtual addresses exactly as
// the hardware would, so the same program bytes work regardless of the Go
// runtime's own memory layout.
//
// The address space is sparse and paged: only pages that have been written
// (or explicitly allocated) consume host memory.
package vm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"widx/internal/warmstate"
)

// PageBits is log2 of the simulated page size. 4 KiB pages match the paper's
// evaluation platform and determine TLB behaviour.
const PageBits = 12

// PageSize is the simulated page size in bytes.
const PageSize = 1 << PageBits

// pageMask extracts the offset within a page.
const pageMask = PageSize - 1

// AddressSpace is a sparse 64-bit byte-addressable memory with a simple
// region allocator. It is not safe for concurrent mutation; a simulation
// thread needs a deterministic access order, so parallel experiment runners
// give each worker its own Clone instead of sharing one instance.
type AddressSpace struct {
	pages   map[uint64][]byte
	regions []Region
	// cow marks pages whose backing slice is shared with a Clone; the page is
	// copied privately on the first write through this space. Nil when no
	// pages are shared.
	cow map[uint64]bool
	// brk is the next free address handed out by Alloc. The address space
	// starts allocations well above zero so that a zero value can serve as a
	// NULL pointer in node lists, exactly as the indexing code expects.
	brk uint64
}

// Region describes a named allocation, used in diagnostics and by the
// workload builders to report index working-set sizes.
type Region struct {
	Name string
	Base uint64
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// baseAddress is where allocations begin. Anything below is never handed out,
// so dereferencing a NULL (zero) next-pointer is always detectable.
const baseAddress = 0x0000_0001_0000_0000

// New returns an empty address space.
func New() *AddressSpace {
	return &AddressSpace{
		pages: make(map[uint64][]byte),
		brk:   baseAddress,
	}
}

// Clone returns a logical copy of the address space: same allocations, same
// break, same contents. Writes through the clone never affect the original
// (and vice versa), which lets independent design points of one experiment
// run concurrently against identical memory images — identical addresses mean
// identical cache-set placement, TLB behaviour and therefore identical
// timing. The copy is lazy: both spaces share the touched pages until one of
// them writes, so cloning a multi-gigabyte workload image costs one pointer
// per page, not one copy per byte.
//
// Clone itself mutates the original's copy-on-write bookkeeping, so take all
// clones before fanning workers out; afterwards the spaces may be used (read
// and written) concurrently with each other.
func (as *AddressSpace) Clone() *AddressSpace {
	c := &AddressSpace{
		pages:   make(map[uint64][]byte, len(as.pages)),
		regions: make([]Region, len(as.regions)),
		cow:     make(map[uint64]bool, len(as.pages)),
		brk:     as.brk,
	}
	copy(c.regions, as.regions)
	if as.cow == nil {
		as.cow = make(map[uint64]bool, len(as.pages))
	}
	for pn, p := range as.pages {
		c.pages[pn] = p
		c.cow[pn] = true
		as.cow[pn] = true
	}
	return c
}

// ContentHash digests the address space's logical content: touched pages
// in ascending page order, the allocation map, and the break. The
// copy-on-write bookkeeping is deliberately excluded — Clone mutates it
// on both sides without changing content — so a cached master hashes the
// same before and after clones are taken, as long as nobody writes
// through it.
func (as *AddressSpace) ContentHash() uint64 {
	h := warmstate.NewHasher()
	pns := make([]uint64, 0, len(as.pages))
	for pn := range as.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	for _, pn := range pns {
		h.Word(pn)
		h.Bytes(as.pages[pn])
	}
	h.Word(uint64(len(as.regions)))
	for _, r := range as.regions {
		h.String(r.Name)
		h.Word(r.Base)
		h.Word(r.Size)
	}
	h.Word(as.brk)
	return h.Sum()
}

// Alloc reserves size bytes aligned to align (which must be a power of two,
// or 0/1 for byte alignment) and returns the base address. The region is
// recorded under name for later inspection. Alloc never fails for reasonable
// sizes; it panics on a zero-byte or overflowing request, which always
// indicates a workload-builder bug.
func (as *AddressSpace) Alloc(name string, size, align uint64) uint64 {
	if size == 0 {
		panic("vm: zero-byte allocation")
	}
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("vm: alignment %d is not a power of two", align))
	}
	base := (as.brk + align - 1) &^ (align - 1)
	if base+size < base {
		panic("vm: address space exhausted")
	}
	as.brk = base + size
	as.regions = append(as.regions, Region{Name: name, Base: base, Size: size})
	return base
}

// AllocAligned is Alloc with cache-block (64-byte) alignment, the common case
// for bucket arrays and node pools.
func (as *AddressSpace) AllocAligned(name string, size uint64) uint64 {
	return as.Alloc(name, size, 64)
}

// Regions returns a copy of all recorded allocations in allocation order.
func (as *AddressSpace) Regions() []Region {
	out := make([]Region, len(as.regions))
	copy(out, as.regions)
	return out
}

// RegionByName returns the first region allocated under name.
func (as *AddressSpace) RegionByName(name string) (Region, bool) {
	for _, r := range as.regions {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}

// Footprint returns the total number of bytes allocated (not necessarily
// touched), which the workload reports as the index working-set size.
func (as *AddressSpace) Footprint() uint64 {
	var total uint64
	for _, r := range as.regions {
		total += r.Size
	}
	return total
}

// TouchedBytes returns the number of bytes in pages that have actually been
// written, i.e. host memory consumed by the sparse backing store.
func (as *AddressSpace) TouchedBytes() uint64 {
	return uint64(len(as.pages)) * PageSize
}

// page returns the backing slice for the page containing addr, creating it
// if create is true. It returns nil when the page does not exist and create
// is false. All writers pass create=true, so a page shared with a Clone is
// copied privately here before it can be modified.
func (as *AddressSpace) page(addr uint64, create bool) []byte {
	pn := addr >> PageBits
	p, ok := as.pages[pn]
	if !ok {
		if !create {
			return nil
		}
		p = make([]byte, PageSize)
		as.pages[pn] = p
		return p
	}
	if create && as.cow[pn] {
		cp := make([]byte, PageSize)
		copy(cp, p)
		as.pages[pn] = cp
		delete(as.cow, pn)
		return cp
	}
	return p
}

// Read64 reads a 64-bit little-endian value at addr. Reads of never-written
// memory return zero, matching zero-initialized allocations.
func (as *AddressSpace) Read64(addr uint64) uint64 {
	if addr&(pageMask) <= PageSize-8 {
		p := as.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[addr&pageMask:])
	}
	// Straddles a page boundary; assemble byte by byte.
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(as.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write64 writes a 64-bit little-endian value at addr.
func (as *AddressSpace) Write64(addr uint64, v uint64) {
	if addr&(pageMask) <= PageSize-8 {
		p := as.page(addr, true)
		binary.LittleEndian.PutUint64(p[addr&pageMask:], v)
		return
	}
	for i := uint64(0); i < 8; i++ {
		as.Write8(addr+i, byte(v>>(8*i)))
	}
}

// Read32 reads a 32-bit little-endian value at addr.
func (as *AddressSpace) Read32(addr uint64) uint32 {
	if addr&(pageMask) <= PageSize-4 {
		p := as.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(p[addr&pageMask:])
	}
	var v uint32
	for i := uint64(0); i < 4; i++ {
		v |= uint32(as.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write32 writes a 32-bit little-endian value at addr.
func (as *AddressSpace) Write32(addr uint64, v uint32) {
	if addr&(pageMask) <= PageSize-4 {
		p := as.page(addr, true)
		binary.LittleEndian.PutUint32(p[addr&pageMask:], v)
		return
	}
	for i := uint64(0); i < 4; i++ {
		as.Write8(addr+i, byte(v>>(8*i)))
	}
}

// Read8 reads one byte at addr.
func (as *AddressSpace) Read8(addr uint64) byte {
	p := as.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Write8 writes one byte at addr.
func (as *AddressSpace) Write8(addr uint64, v byte) {
	p := as.page(addr, true)
	p[addr&pageMask] = v
}

// ReadBytes copies n bytes starting at addr into a new slice.
func (as *AddressSpace) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = as.Read8(addr + uint64(i))
	}
	return out
}

// WriteBytes writes the given bytes starting at addr.
func (as *AddressSpace) WriteBytes(addr uint64, data []byte) {
	for i, b := range data {
		as.Write8(addr+uint64(i), b)
	}
}

// PageNumber returns the virtual page number containing addr.
func PageNumber(addr uint64) uint64 { return addr >> PageBits }

// BlockAddress returns addr rounded down to its 64-byte cache block.
func BlockAddress(addr uint64) uint64 { return addr &^ 63 }

// DumpRegions formats the allocation map, largest first, for diagnostics.
func (as *AddressSpace) DumpRegions() string {
	rs := as.Regions()
	sort.Slice(rs, func(i, j int) bool { return rs[i].Size > rs[j].Size })
	s := ""
	for _, r := range rs {
		s += fmt.Sprintf("%-24s base=%#x size=%d\n", r.Name, r.Base, r.Size)
	}
	return s
}
