package vm

import (
	"testing"
	"testing/quick"
)

func TestAllocAlignmentAndOrdering(t *testing.T) {
	as := New()
	a := as.Alloc("a", 100, 64)
	b := as.Alloc("b", 10, 64)
	c := as.Alloc("c", 8, 8)
	if a%64 != 0 || b%64 != 0 || c%8 != 0 {
		t.Fatalf("alignment violated: %x %x %x", a, b, c)
	}
	if !(a < b && b < c) {
		t.Fatalf("allocations should be monotonically increasing: %x %x %x", a, b, c)
	}
	if b < a+100 {
		t.Fatal("allocations overlap")
	}
	if as.Footprint() != 118 {
		t.Fatalf("footprint = %d", as.Footprint())
	}
}

func TestAllocPanics(t *testing.T) {
	as := New()
	for name, f := range map[string]func(){
		"zero size": func() { as.Alloc("x", 0, 8) },
		"bad align": func() { as.Alloc("x", 8, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNullIsNeverAllocated(t *testing.T) {
	as := New()
	a := as.Alloc("x", 1<<20, 64)
	if a == 0 {
		t.Fatal("allocation at address 0")
	}
	if a < baseAddress {
		t.Fatalf("allocation below base address: %#x", a)
	}
}

func TestRegions(t *testing.T) {
	as := New()
	as.Alloc("buckets", 4096, 64)
	as.Alloc("nodes", 8192, 64)
	rs := as.Regions()
	if len(rs) != 2 || rs[0].Name != "buckets" || rs[1].Name != "nodes" {
		t.Fatalf("regions wrong: %+v", rs)
	}
	r, ok := as.RegionByName("nodes")
	if !ok || r.Size != 8192 {
		t.Fatalf("RegionByName wrong: %+v %v", r, ok)
	}
	if r.End() != r.Base+8192 {
		t.Fatal("End wrong")
	}
	if _, ok := as.RegionByName("missing"); ok {
		t.Fatal("found nonexistent region")
	}
	if as.DumpRegions() == "" {
		t.Fatal("DumpRegions empty")
	}
}

func TestReadWrite64(t *testing.T) {
	as := New()
	base := as.Alloc("data", 1024, 64)
	as.Write64(base, 0xDEADBEEFCAFEBABE)
	if got := as.Read64(base); got != 0xDEADBEEFCAFEBABE {
		t.Fatalf("Read64 = %#x", got)
	}
	// Unwritten memory reads as zero.
	if got := as.Read64(base + 512); got != 0 {
		t.Fatalf("unwritten read = %#x", got)
	}
	// 32-bit and 8-bit accessors see the same bytes (little endian).
	if got := as.Read32(base); got != 0xCAFEBABE {
		t.Fatalf("Read32 = %#x", got)
	}
	if got := as.Read8(base + 7); got != 0xDE {
		t.Fatalf("Read8 = %#x", got)
	}
	as.Write32(base+16, 0x12345678)
	if got := as.Read32(base + 16); got != 0x12345678 {
		t.Fatalf("Read32 = %#x", got)
	}
	as.Write8(base+20, 0xAB)
	if got := as.Read8(base + 20); got != 0xAB {
		t.Fatalf("Read8 = %#x", got)
	}
}

func TestCrossPageAccess(t *testing.T) {
	as := New()
	// Place a 64-bit value straddling a page boundary.
	region := as.Alloc("cross", 2*PageSize, PageSize)
	addr := region + PageSize - 4
	as.Write64(addr, 0x1122334455667788)
	if got := as.Read64(addr); got != 0x1122334455667788 {
		t.Fatalf("cross-page Read64 = %#x", got)
	}
	addr32 := region + PageSize - 2
	as.Write32(addr32, 0xA1B2C3D4)
	if got := as.Read32(addr32); got != 0xA1B2C3D4 {
		t.Fatalf("cross-page Read32 = %#x", got)
	}
}

func TestReadWriteBytes(t *testing.T) {
	as := New()
	base := as.Alloc("blob", 256, 1)
	data := []byte("the quick brown fox")
	as.WriteBytes(base, data)
	if got := string(as.ReadBytes(base, len(data))); got != string(data) {
		t.Fatalf("ReadBytes = %q", got)
	}
}

func TestTouchedBytesSparse(t *testing.T) {
	as := New()
	as.Alloc("huge", 1<<30, 64) // 1 GiB reserved
	if as.TouchedBytes() != 0 {
		t.Fatal("allocation alone should not touch pages")
	}
	base, _ := as.RegionByName("huge")
	as.Write64(base.Base, 1)
	as.Write64(base.Base+(1<<29), 2)
	if as.TouchedBytes() != 2*PageSize {
		t.Fatalf("TouchedBytes = %d, want %d", as.TouchedBytes(), 2*PageSize)
	}
}

func TestPageAndBlockHelpers(t *testing.T) {
	if PageNumber(0x12345) != 0x12 {
		t.Fatalf("PageNumber = %#x", PageNumber(0x12345))
	}
	if BlockAddress(0x1234567) != 0x1234540 {
		t.Fatalf("BlockAddress = %#x", BlockAddress(0x1234567))
	}
	if BlockAddress(64) != 64 || BlockAddress(63) != 0 {
		t.Fatal("BlockAddress boundary wrong")
	}
}

// Property: a 64-bit write followed by a read at any allocated address
// returns the written value.
func TestPropertyWriteReadRoundTrip(t *testing.T) {
	as := New()
	base := as.Alloc("prop", 1<<20, 64)
	f := func(off uint32, v uint64) bool {
		addr := base + uint64(off%(1<<20-8))
		as.Write64(addr, v)
		return as.Read64(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocations never overlap and respect alignment.
func TestPropertyAllocationsDisjoint(t *testing.T) {
	f := func(sizes []uint16) bool {
		as := New()
		type iv struct{ lo, hi uint64 }
		var prev []iv
		for _, s := range sizes {
			size := uint64(s%4096) + 1
			base := as.Alloc("r", size, 64)
			if base%64 != 0 {
				return false
			}
			for _, p := range prev {
				if base < p.hi && p.lo < base+size {
					return false
				}
			}
			prev = append(prev, iv{base, base + size})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	as := New()
	base := as.AllocAligned("data", 3*PageSize)
	as.Write64(base, 0x1111)
	as.Write64(base+PageSize, 0x2222)

	c := as.Clone()
	if c.Read64(base) != 0x1111 || c.Read64(base+PageSize) != 0x2222 {
		t.Fatal("clone did not copy page contents")
	}
	if len(c.Regions()) != 1 || c.Regions()[0] != as.Regions()[0] {
		t.Fatalf("clone regions differ: %+v vs %+v", c.Regions(), as.Regions())
	}

	// Allocations after the clone land at the same address in both spaces:
	// the break is part of the copied state.
	if a, b := as.Alloc("x", 8, 8), c.Alloc("x", 8, 8); a != b {
		t.Fatalf("diverging allocation addresses after clone: %x vs %x", a, b)
	}

	// Writes through either space stay private to it, including writes to a
	// page that was shared copy-on-write at clone time.
	c.Write64(base, 0x3333)
	if as.Read64(base) != 0x1111 {
		t.Fatal("write through the clone leaked into the original")
	}
	as.Write64(base+PageSize, 0x5555)
	if c.Read64(base+PageSize) != 0x2222 {
		t.Fatal("write through the original leaked into the clone")
	}
	as.Write64(base+2*PageSize, 0x4444)
	if c.Read64(base+2*PageSize) != 0 {
		t.Fatal("fresh page in the original leaked into the clone")
	}

	// A second clone still sees the original's current contents.
	c2 := as.Clone()
	if c2.Read64(base) != 0x1111 || c2.Read64(base+PageSize) != 0x5555 {
		t.Fatal("second clone contents wrong")
	}
}
