// Package detmaptest is the detmap analyzer fixture: each function is one
// report or non-report case from the analyzer's rule set.
package detmaptest

import (
	"fmt"
	"sort"
	"strings"
)

// --- report cases ---

func badAppendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `slice keys accumulates map keys/values in iteration order and is never sorted`
	}
	return keys
}

func badStringConcat(m map[string]int) string {
	s := ""
	for k, v := range m {
		s += fmt.Sprintf("%s=%d;", k, v) // want `string built in map iteration order`
	}
	return s
}

func badBuilderWrite(m map[string]bool) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString on an outer writer inside a map range`
	}
	return b.String()
}

func badFprintf(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v) // want `fmt.Fprintf inside a map range emits in iteration order`
	}
	return b.String()
}

func badEarlyReturn(m map[string]int, want int) (string, bool) {
	for k, v := range m {
		if v == want {
			return k, true // want `map iteration order escapes through this return`
		}
	}
	return "", false
}

func badErrorReturn(m map[string]int) error {
	for k, v := range m {
		if v < 0 {
			return fmt.Errorf("negative entry %q", k) // want `map iteration order escapes through this return`
		}
	}
	return nil
}

func badChannelSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `loop-derived value sent on a channel in map iteration order`
	}
}

func badDerivedLocalAppend(m map[string]int) []string {
	var rows []string
	for k, v := range m {
		row := fmt.Sprintf("%-8s %d", k, v)
		rows = append(rows, row) // want `slice rows accumulates map keys/values in iteration order and is never sorted`
	}
	return rows
}

// --- non-report cases ---

// The accepted idiom: collect keys, sort, then use.
func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sort.Slice with the collected slice inside a closure argument also
// counts as sorting.
func goodSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Commutative accumulation is order-insensitive.
func goodAccumulate(m map[string]uint64) uint64 {
	var total uint64
	for _, v := range m {
		total += v
	}
	return total
}

// Map-to-map copies are order-insensitive.
func goodMapCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Deleting while ranging is the documented Go idiom.
func goodDeleteDuringRange(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// A return that carries nothing loop-derived does not leak order.
func goodConstantReturn(m map[string]int) bool {
	for _, v := range m {
		if v < 0 {
			return false
		}
	}
	return true
}

// Ranging a slice feeds ordered sinks deterministically.
func goodSliceRange(keys []string) string {
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
	}
	return b.String()
}

// A deliberate exception, silenced with the mandatory reason.
func goodIgnoredWithReason(m map[string]int) []string {
	var keys []string
	//widxlint:ignore detmap caller treats the result as a set and sorts before emitting
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
