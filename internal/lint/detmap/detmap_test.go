package detmap_test

import (
	"testing"

	"widx/internal/lint/analysistest"
	"widx/internal/lint/detmap"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, "testdata", detmap.Analyzer, "detmaptest")
}
