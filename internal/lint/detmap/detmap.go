// Package detmap implements the widxlint analyzer that guards the repo's
// first invariant: simulation output is byte-identical at any -parallel.
// Go's map iteration order is deliberately randomized, so a `range` over a
// map whose body feeds anything ordered — a string or JSON being built, a
// slice that is later emitted, an early return carrying the key — produces
// output that differs run to run unless the keys are sorted first. That
// exact bug class has shipped twice (RunHashingAblation's map-ordered
// design points in PR 1; see CHANGES.md), and every manifest or report
// encoder is a new opportunity.
//
// The analyzer flags a `for ... range m` over a map when the body reaches
// an ordered sink:
//
//   - appends loop-derived values to a slice declared outside the loop that
//     is never passed to a sort afterwards in the enclosing function (the
//     collect-keys-then-sort idiom is the accepted fix and is not flagged);
//   - builds a string (`s += ...`), writes to an outer writer or builder
//     (fmt.Fprintf, strings.Builder/bytes.Buffer Write* methods), or prints
//     directly, with loop-derived arguments;
//   - returns a value derived from the loop variables (which key wins the
//     early return depends on iteration order — error messages and lookup
//     results alike);
//   - sends loop-derived values on a channel declared outside the loop.
//
// Order-insensitive bodies — counter and sum accumulation, writes into
// another map, deletes — pass. False positives are suppressed with
// `//widxlint:ignore detmap <reason>` on the range statement's line or the
// line above.
package detmap

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"widx/internal/lint/analysis"
)

// Analyzer is the detmap analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc: "flag map iteration whose order leaks into ordered output\n\n" +
		"Reports range-over-map loops that append to later-emitted slices without a sort,\n" +
		"build strings or write output, return loop-derived values, or send on channels —\n" +
		"the bug class that breaks byte-identical reports at any -parallel.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rs) {
					return true
				}
				checkMapRange(pass, fn, rs)
				return true
			})
		}
	}
	return nil, nil
}

// report emits a sink diagnostic anchored both at the sink (Pos) and at the
// enclosing range statement (End), so a //widxlint:ignore directive works on
// either line.
func report(pass *analysis.Pass, rs *ast.RangeStmt, pos token.Pos, format string, args ...interface{}) {
	pass.Report(analysis.Diagnostic{
		Pos:     pos,
		End:     rs.Pos(),
		Message: fmt.Sprintf(format, args...),
	})
}

// isMapRange reports whether rs ranges over a map value.
func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange walks one map-range body looking for ordered sinks.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rs *ast.RangeStmt) {
	// Returns inside function literals (sort comparators, subtest bodies)
	// do not leave the ranged function and are exempt from the early-return
	// rule.
	var funcLits []*ast.FuncLit
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			funcLits = append(funcLits, fl)
		}
		return true
	})
	insideFuncLit := func(pos token.Pos) bool {
		for _, fl := range funcLits {
			if fl.Pos() <= pos && pos <= fl.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, fn, rs, s)
		case *ast.ReturnStmt:
			if !insideFuncLit(s.Pos()) && mentionsLoopScope(pass, rs, s.Results...) {
				report(pass, rs, s.Pos(), "map iteration order escapes through this return: which key reaches it first is nondeterministic; iterate sorted keys")
			}
		case *ast.SendStmt:
			if declaredOutside(pass, rs, s.Chan) && mentionsLoopScope(pass, rs, s.Value) {
				report(pass, rs, s.Pos(), "loop-derived value sent on a channel in map iteration order; iterate sorted keys")
			}
		case *ast.CallExpr:
			checkCall(pass, rs, s)
		}
		return true
	})
}

// checkAssign flags string building and records un-sorted slice appends.
func checkAssign(pass *analysis.Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, s *ast.AssignStmt) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]

	// s += expr / s = s + expr on an outer string.
	if isString(pass, lhs) && declaredOutside(pass, rs, lhs) {
		concat := s.Tok == token.ADD_ASSIGN
		if s.Tok == token.ASSIGN {
			if bin, ok := rhs.(*ast.BinaryExpr); ok && bin.Op == token.ADD && sameObject(pass, lhs, bin.X) {
				concat = true
			}
		}
		if concat && mentionsLoopScope(pass, rs, rhs) {
			report(pass, rs, s.Pos(), "string built in map iteration order; iterate sorted keys")
			return
		}
	}

	// out = append(out, ...loop-derived...) into an outer slice.
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isBuiltinAppend(pass, call) || len(call.Args) < 2 {
		return
	}
	if !declaredOutside(pass, rs, lhs) || !mentionsLoopScope(pass, rs, call.Args[1:]...) {
		return
	}
	if obj := objectOf(pass, lhs); obj != nil && !sortedAfter(pass, fn, rs, obj) {
		report(pass, rs, s.Pos(), "slice %s accumulates map keys/values in iteration order and is never sorted in %s; sort it after the loop", obj.Name(), fn.Name.Name)
	}
}

// writerMethods are ordered-output methods on builders, buffers and writers.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Printf": true, "Print": true, "Println": true,
}

// printFuncs are fmt/io package functions that emit in call order.
var printFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"WriteString": true,
}

// checkCall flags ordered output produced inside the loop body.
func checkCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if pkg := packageName(pass, sel.X); pkg != "" {
		if (pkg == "fmt" || pkg == "io") && printFuncs[sel.Sel.Name] && mentionsLoopScope(pass, rs, call.Args...) {
			report(pass, rs, call.Pos(), "%s.%s inside a map range emits in iteration order; iterate sorted keys", pkg, sel.Sel.Name)
		}
		return
	}
	// Method call on an outer receiver (strings.Builder, bytes.Buffer, any
	// io.Writer wrapper): writing loop-derived bytes is ordered output.
	if writerMethods[sel.Sel.Name] && declaredOutside(pass, rs, sel.X) && mentionsLoopScope(pass, rs, call.Args...) {
		report(pass, rs, call.Pos(), "%s on an outer writer inside a map range emits in iteration order; iterate sorted keys", sel.Sel.Name)
	}
}

// sortedAfter reports whether obj is passed to a sort call after the range
// statement within the enclosing function — the collect-then-sort idiom.
func sortedAfter(pass *analysis.Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if usesObject(pass, arg, obj) {
				found = true
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes sort/slices package calls and local helpers whose
// name mentions sorting.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if pkg := packageName(pass, fun.X); pkg == "sort" || pkg == "slices" {
			return true
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}

// --- small type-aware helpers ---

// objectOf resolves an expression to the variable it names, if any.
func objectOf(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if o := pass.TypesInfo.Uses[e]; o != nil {
			return o
		}
		return pass.TypesInfo.Defs[e]
	case *ast.ParenExpr:
		return objectOf(pass, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return objectOf(pass, e.X)
		}
	}
	return nil
}

func sameObject(pass *analysis.Pass, a, b ast.Expr) bool {
	oa, ob := objectOf(pass, a), objectOf(pass, b)
	return oa != nil && oa == ob
}

// declaredOutside reports whether the variable e names is declared outside
// the range statement (so writes to it survive the loop).
func declaredOutside(pass *analysis.Pass, rs *ast.RangeStmt, e ast.Expr) bool {
	obj := objectOf(pass, e)
	if obj == nil {
		// Field selectors (b.buf), dereferences: treat as outer state.
		return true
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// mentionsLoopScope reports whether any expression references a variable
// declared inside the range statement — the loop key/value or a body local
// derived from them.
func mentionsLoopScope(pass *analysis.Pass, rs *ast.RangeStmt, exprs ...ast.Expr) bool {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// usesObject reports whether expression e references obj.
func usesObject(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// packageName returns the imported package name e refers to, or "".
func packageName(pass *analysis.Pass, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
