// Package analysis is a self-contained, API-compatible subset of
// golang.org/x/tools/go/analysis, carried in-tree because the build
// environment is offline (no module proxy) and the repo's hard rule is to
// add no external dependencies. The subset mirrors the upstream API shape —
// Analyzer, Pass, Diagnostic, Pass.Reportf — so the widxlint analyzers are a
// mechanical import-path change away from building against the real
// golang.org/x/tools/go/analysis (and its unitchecker / multichecker /
// analysistest drivers) once a vendored or proxied copy is available.
//
// Only what the four widxlint analyzers need is implemented: syntax plus
// full type information for one package at a time. There is no fact
// propagation, no Requires graph, and no SSA.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis: its name, its documentation, its flags,
// and its entry point. The field set is the subset of
// golang.org/x/tools/go/analysis.Analyzer that widxlint uses.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags (-name.flag) and
	// ignore directives (//widxlint:ignore name reason).
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string

	// Flags holds analyzer-specific flags, registered as -name.flag by the
	// drivers.
	Flags flag.FlagSet

	// Run applies the analyzer to one package.
	Run func(*Pass) (interface{}, error)
}

// Pass provides one package's syntax and types to an Analyzer's Run and
// collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers install a reporter that
	// applies //widxlint:ignore suppression before recording.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
