package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive. A diagnostic from analyzer NAME at line L is
// suppressed when line L, or the line immediately above it, carries a
// comment of the form
//
//	//widxlint:ignore NAME reason for the exception
//
// The reason is required: a directive without one does not suppress and is
// itself reported, so every silenced finding documents why. NAME may be a
// comma-separated list to silence several analyzers at one site.
const ignorePrefix = "widxlint:ignore"

// ignoreDirective is one parsed //widxlint:ignore comment.
type ignoreDirective struct {
	line      int    // line the comment sits on
	analyzers string // comma-separated analyzer names
	reason    string // required justification
	pos       token.Pos
}

// ignoreIndex holds every directive of one package, keyed by file and line.
type ignoreIndex struct {
	fset *token.FileSet
	// byLine maps file name + line to the directive on that line.
	byLine map[string]map[int]ignoreDirective
}

// buildIgnoreIndex scans the package's comments for ignore directives.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{fset: fset, byLine: map[string]map[int]ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				m := idx.byLine[pos.Filename]
				if m == nil {
					m = map[int]ignoreDirective{}
					idx.byLine[pos.Filename] = m
				}
				m[pos.Line] = ignoreDirective{
					line:      pos.Line,
					analyzers: names,
					reason:    strings.TrimSpace(reason),
					pos:       c.Pos(),
				}
			}
		}
	}
	return idx
}

// suppresses reports whether a diagnostic from the named analyzer at pos is
// covered by a directive, and whether that directive is malformed (covers
// the site but gives no reason).
func (idx *ignoreIndex) suppresses(analyzer string, pos token.Pos) (suppressed bool, missingReason *ignoreDirective) {
	p := idx.fset.Position(pos)
	m := idx.byLine[p.Filename]
	if m == nil {
		return false, nil
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		d, ok := m[line]
		if !ok || !d.matches(analyzer) {
			continue
		}
		if d.reason == "" {
			return false, &d
		}
		return true, nil
	}
	return false, nil
}

func (d ignoreDirective) matches(analyzer string) bool {
	for _, n := range strings.Split(d.analyzers, ",") {
		if strings.TrimSpace(n) == analyzer {
			return true
		}
	}
	return false
}

// RunWithIgnores runs one analyzer over a package, applying
// //widxlint:ignore suppression, and returns the surviving diagnostics.
// Directives that match a finding but omit the required reason do not
// suppress; instead an extra diagnostic flags the directive itself.
func RunWithIgnores(a *Analyzer, pass *Pass) ([]Diagnostic, error) {
	idx := buildIgnoreIndex(pass.Fset, pass.Files)
	var out []Diagnostic
	badDirectives := map[token.Pos]bool{}
	pass.Report = func(d Diagnostic) {
		// A diagnostic can carry a secondary anchor in End (detmap points
		// it at the range statement); a directive at either location
		// suppresses.
		anchors := []token.Pos{d.Pos}
		if d.End.IsValid() && d.End != d.Pos {
			anchors = append(anchors, d.End)
		}
		var bad *ignoreDirective
		for _, pos := range anchors {
			suppressed, b := idx.suppresses(a.Name, pos)
			if suppressed {
				return
			}
			if b != nil {
				bad = b
			}
		}
		if bad != nil && !badDirectives[bad.pos] {
			badDirectives[bad.pos] = true
			out = append(out, Diagnostic{
				Pos:      bad.pos,
				Category: a.Name,
				Message:  "widxlint:ignore directive needs a reason (//widxlint:ignore " + a.Name + " <why>)",
			})
		}
		if d.Category == "" {
			d.Category = a.Name
		}
		out = append(out, d)
	}
	if _, err := a.Run(pass); err != nil {
		return nil, err
	}
	return out, nil
}
