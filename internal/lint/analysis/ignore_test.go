package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// retAnalyzer reports every return statement — a minimal probe for the
// suppression machinery.
var retAnalyzer = &Analyzer{
	Name: "ret",
	Doc:  "reports every return",
	Run: func(pass *Pass) (interface{}, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(r.Pos(), "return here")
				}
				return true
			})
		}
		return nil, nil
	},
}

func runOn(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{}
	pkg, err := conf.Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Analyzer: retAnalyzer, Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info}
	diags, err := RunWithIgnores(retAnalyzer, pass)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestIgnoreWithReasonSuppresses(t *testing.T) {
	diags := runOn(t, `package x
func a() int {
	//widxlint:ignore ret documented exception
	return 1
}
`)
	if len(diags) != 0 {
		t.Fatalf("expected suppression, got %v", diags)
	}
}

func TestIgnoreSameLineSuppresses(t *testing.T) {
	diags := runOn(t, `package x
func a() int {
	return 1 //widxlint:ignore ret same-line exception
}
`)
	if len(diags) != 0 {
		t.Fatalf("expected suppression, got %v", diags)
	}
}

func TestIgnoreWithoutReasonDoesNotSuppress(t *testing.T) {
	diags := runOn(t, `package x
func a() int {
	//widxlint:ignore ret
	return 1
}
`)
	if len(diags) != 2 {
		t.Fatalf("expected the finding plus the reasonless-directive report, got %v", diags)
	}
	var sawFinding, sawDirective bool
	for _, d := range diags {
		if strings.Contains(d.Message, "return here") {
			sawFinding = true
		}
		if strings.Contains(d.Message, "needs a reason") {
			sawDirective = true
		}
	}
	if !sawFinding || !sawDirective {
		t.Fatalf("missing expected diagnostics: %v", diags)
	}
}

func TestIgnoreOtherAnalyzerDoesNotSuppress(t *testing.T) {
	diags := runOn(t, `package x
func a() int {
	//widxlint:ignore detmap reason that names a different analyzer
	return 1
}
`)
	if len(diags) != 1 {
		t.Fatalf("expected the finding to survive, got %v", diags)
	}
}

func TestIgnoreListMatches(t *testing.T) {
	diags := runOn(t, `package x
func a() int {
	//widxlint:ignore detmap,ret multi-analyzer exception
	return 1
}
`)
	if len(diags) != 0 {
		t.Fatalf("expected suppression via list, got %v", diags)
	}
}

func TestSecondaryAnchorSuppresses(t *testing.T) {
	// A diagnostic whose End points at an earlier anchor line is
	// suppressed by a directive at that anchor (detmap's range-statement
	// anchoring).
	src := `package x
func a() int {
	//widxlint:ignore anchor suppressed at the anchor line
	_ = 0
	return 1
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{
		Name: "anchor",
		Doc:  "reports returns anchored at the preceding statement",
		Run: func(pass *Pass) (interface{}, error) {
			var anchor token.Pos
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					anchor = n.Pos()
				case *ast.ReturnStmt:
					pass.Report(Diagnostic{Pos: n.Pos(), End: anchor, Message: "anchored finding"})
				}
				return true
			})
			return nil, nil
		},
	}
	pass := &Pass{Analyzer: a, Fset: fset, Files: []*ast.File{f}}
	diags, err := RunWithIgnores(a, pass)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected suppression via secondary anchor, got %v", diags)
	}
}
