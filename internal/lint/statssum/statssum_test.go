package statssum_test

import (
	"testing"

	"widx/internal/lint/analysistest"
	"widx/internal/lint/statssum"
)

func TestStatssum(t *testing.T) {
	analysistest.Run(t, "testdata", statssum.Analyzer, "statssumtest")
}
