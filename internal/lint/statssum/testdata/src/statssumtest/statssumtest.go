// Package statssumtest is the statssum analyzer fixture: Add/Sub
// aggregation pairs with complete and incomplete field coverage.
package statssumtest

// Complete is the well-formed shape of mem.Stats: every field appears in
// both Add and Sub, including the element-wise histogram.
type Complete struct {
	Loads     uint64
	Stores    uint64
	Histogram []uint64
}

func (s Complete) Add(o Complete) Complete {
	d := s
	d.Loads += o.Loads
	d.Stores += o.Stores
	d.Histogram = append([]uint64(nil), s.Histogram...)
	for i, v := range o.Histogram {
		if i < len(d.Histogram) {
			d.Histogram[i] += v
		}
	}
	return d
}

func (s Complete) Sub(prev Complete) Complete {
	d := s
	d.Loads -= prev.Loads
	d.Stores -= prev.Stores
	d.Histogram = append([]uint64(nil), s.Histogram...)
	for i := range d.Histogram {
		if i < len(prev.Histogram) {
			d.Histogram[i] -= prev.Histogram[i]
		}
	}
	return d
}

// CompositeStyle uses keyed composite literals instead of field
// assignments; both spellings count as touching the field.
type CompositeStyle struct {
	Hits   uint64
	Misses uint64
}

func (s CompositeStyle) Add(o CompositeStyle) CompositeStyle {
	return CompositeStyle{Hits: s.Hits + o.Hits, Misses: s.Misses + o.Misses}
}

func (s CompositeStyle) Sub(o CompositeStyle) CompositeStyle {
	return CompositeStyle{Hits: s.Hits - o.Hits, Misses: s.Misses - o.Misses}
}

// Dropped models the bug the analyzer exists for: a field added to the
// struct but forgotten in Add (and another in Sub). The aggregated totals
// silently lose the counter.
type Dropped struct {
	Loads       uint64
	StallCycles uint64
	Evictions   uint64
}

func (s Dropped) Add(o Dropped) Dropped { // want `Dropped.Add does not touch field Evictions`
	d := s
	d.Loads += o.Loads
	d.StallCycles += o.StallCycles
	return d
}

func (s Dropped) Sub(prev Dropped) Dropped { // want `Dropped.Sub does not touch field StallCycles` `Dropped.Sub does not touch field Evictions`
	d := s
	d.Loads -= prev.Loads
	return d
}

// AddOnly has no Sub, so it is not an aggregation pair and is exempt.
type AddOnly struct {
	Count   uint64
	Ignored uint64
}

func (s AddOnly) Add(o AddOnly) AddOnly {
	s.Count += o.Count
	return s
}

// OtherSignature's Add takes a different type, so the pair shape does not
// match and the invariant does not apply.
type OtherSignature struct {
	Value uint64
}

func (s OtherSignature) Add(n uint64) OtherSignature {
	s.Value += n
	return s
}

func (s OtherSignature) Sub(n uint64) OtherSignature {
	s.Value -= n
	return s
}

// Excused shows the escape hatch: a derived field a method deliberately
// must not aggregate, silenced with the mandatory reason.
type Excused struct {
	Total uint64
	Peak  uint64
}

//widxlint:ignore statssum Peak is a high-water mark, max-merged in Add and meaningless to subtract
func (s Excused) Add(o Excused) Excused {
	d := s
	d.Total += o.Total
	if o.Peak > d.Peak {
		d.Peak = o.Peak
	}
	return d
}

//widxlint:ignore statssum Peak is a high-water mark; Sub scopes counters, not extrema
func (s Excused) Sub(prev Excused) Excused {
	d := s
	d.Total -= prev.Total
	return d
}
