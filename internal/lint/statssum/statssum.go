// Package statssum implements the widxlint analyzer that guards the repo's
// second invariant: per-agent mem.Stats provably sum to the shared totals.
// The invariant rests on Stats.Add and Stats.Sub being exact field-wise
// inverses over every counter — a new field added to the struct but
// forgotten in Add (or Sub) silently drops that counter from aggregated
// system stats and from phase-scoped snapshots, without failing any
// existing test until a golden fingerprint happens to cover it.
//
// For every named struct type that defines both an Add and a Sub method
// taking the type itself (the aggregation pair convention — mem.Stats
// today, any future per-agent counter block tomorrow), the analyzer checks
// that each field of the struct is referenced in the bodies of both
// methods. A field a method legitimately must not touch is excused with
// //widxlint:ignore statssum <reason> on the method's declaration line.
//
// The reflection-based runtime twin (TestStatsAddSubRoundTrip in
// internal/mem) covers what this static check cannot: that the arithmetic
// on each touched field is actually inverse, including element-wise
// histogram handling.
package statssum

import (
	"go/ast"
	"go/types"

	"widx/internal/lint/analysis"
)

// Analyzer is the statssum analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "statssum",
	Doc: "every field of an Add/Sub aggregation pair must be touched by both methods\n\n" +
		"Reports struct fields missing from the body of Add or Sub on types that\n" +
		"define the aggregation pair, so a new counter cannot silently break the\n" +
		"per-agent-stats-sum-to-shared-totals invariant.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Map method *types.Func -> its declaration, for body inspection.
	methodDecls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				methodDecls[fn] = fd
			}
		}
	}

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		add := pairMethod(named, "Add")
		sub := pairMethod(named, "Sub")
		if add == nil || sub == nil {
			continue
		}
		addDecl, sub2 := methodDecls[add], methodDecls[sub]
		if addDecl == nil || sub2 == nil {
			continue
		}
		for _, m := range []struct {
			fn   *types.Func
			decl *ast.FuncDecl
		}{{add, addDecl}, {sub, sub2}} {
			touched := touchedFields(pass, m.decl)
			for i := 0; i < st.NumFields(); i++ {
				field := st.Field(i)
				if !touched[field] {
					pass.Reportf(m.decl.Name.Pos(),
						"%s.%s does not touch field %s: aggregated stats will silently drop it (per-agent sums-to-shared invariant)",
						name, m.fn.Name(), field.Name())
				}
			}
		}
	}
	return nil, nil
}

// pairMethod returns the method named name on t (value or pointer receiver)
// if it takes exactly one parameter of type t — the aggregation-pair shape.
func pairMethod(named *types.Named, name string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != name {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() != 1 {
			return nil
		}
		pt := sig.Params().At(0).Type()
		if ptr, ok := pt.(*types.Pointer); ok {
			pt = ptr.Elem()
		}
		if types.Identical(pt, named) {
			return m
		}
		return nil
	}
	return nil
}

// touchedFields collects the struct fields referenced anywhere in a method
// body: selector expressions (d.Loads) and composite-literal keys
// (Stats{Loads: ...}) both count.
func touchedFields(pass *analysis.Pass, decl *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	if decl.Body == nil {
		return out
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok {
				if v, ok := sel.Obj().(*types.Var); ok {
					out[v] = true
				}
			}
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && v.IsField() {
				out[v] = true
			}
		}
		return true
	})
	return out
}
