// Package loader loads Go packages with full type information for the
// widxlint standalone driver. It shells out to `go list -export -deps` so
// the toolchain does the dependency planning and compiles export data into
// the build cache, then parses and type-checks only the target packages
// against that export data — the same strategy the upstream
// golang.org/x/tools/go/packages LoadTypes path uses, implemented here on
// the standard library because the build environment is offline.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
}

// Load lists patterns in dir, type-checks every matched package and returns
// them in a deterministic (import-path-sorted) order. When includeTests is
// set, in-package and external test variants are loaded too — each test
// variant replaces its plain package so every file is analyzed exactly
// once.
func Load(dir string, includeTests bool, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-export", "-deps", "-json"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: parsing go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	targets := selectTargets(pkgs, includeTests)
	fset := token.NewFileSet()
	var loaded []*Package
	for _, p := range targets {
		lp, err := typeCheck(fset, p, exports)
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, lp)
	}
	sort.Slice(loaded, func(i, j int) bool { return loaded[i].ImportPath < loaded[j].ImportPath })
	return loaded, nil
}

// selectTargets picks the packages to analyze from a -deps listing: the
// non-dependency packages, minus generated test mains, with each plain
// package dropped in favor of its in-package test variant when one exists
// (the variant's file list is a superset).
func selectTargets(pkgs []*listPackage, includeTests bool) []*listPackage {
	replaced := map[string]bool{}
	if includeTests {
		for _, p := range pkgs {
			if p.DepOnly || p.ForTest == "" {
				continue
			}
			// "widx/internal/sim [widx/internal/sim.test]" replaces
			// "widx/internal/sim"; external _test packages replace nothing.
			if base, _, ok := strings.Cut(p.ImportPath, " ["); ok && base == p.ForTest {
				replaced[base] = true
			}
		}
	}
	var out []*listPackage
	for _, p := range pkgs {
		switch {
		case p.DepOnly:
		case p.Name == "main" && strings.HasSuffix(p.ImportPath, ".test"):
			// The generated test-main package: synthesized source, nothing
			// to lint.
		case replaced[p.ImportPath]:
		case len(p.GoFiles) == 0:
		default:
			out = append(out, p)
		}
	}
	return out
}

// typeCheck parses and type-checks one listed package against the compiled
// export data of its dependencies.
func typeCheck(fset *token.FileSet, p *listPackage, exports map[string]string) (*Package, error) {
	if len(p.CgoFiles) > 0 {
		return nil, fmt.Errorf("loader: %s: cgo packages are not supported", p.ImportPath)
	}
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		actual := path
		if mapped, ok := p.ImportMap[path]; ok {
			actual = mapped
		}
		exp, ok := exports[actual]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", actual)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
