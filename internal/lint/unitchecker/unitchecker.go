// Package unitchecker implements the `go vet -vettool` protocol for the
// widxlint suite, mirroring golang.org/x/tools/go/analysis/unitchecker on
// the standard library. cmd/go drives a vet tool in three ways:
//
//	widxlint -V=full          print a version line (used for build caching)
//	widxlint -flags           print the tool's flags as JSON
//	widxlint [flags] foo.cfg  analyze one package unit described by foo.cfg
//
// The .cfg file is a JSON description of one compiled package: its Go
// files, the export-data file of every dependency, and where to write the
// (empty — widxlint exchanges no facts) .vetx output. Diagnostics go to
// stderr as file:line:col lines and exit status 2 reports findings, so
// `go vet -vettool=$(which widxlint) ./...` fails exactly when the
// standalone driver would.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"widx/internal/lint/analysis"
)

// Config is the JSON schema of a cmd/go vet configuration file, matching
// x/tools unitchecker.Config field for field (unused fields retained so
// future cmd/go versions round-trip).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the vet-tool protocol over args (os.Args[1:]) and exits.
func Main(progname string, args []string, analyzers []*analysis.Analyzer) {
	if len(args) == 1 && args[0] == "-V=full" {
		// The version line keys cmd/go's result cache; hash the executable
		// so a rebuilt tool invalidates cached vet results.
		fmt.Println(versionLine(progname))
		os.Exit(0)
	}
	if len(args) == 1 && args[0] == "-flags" {
		printFlags(analyzers)
		os.Exit(0)
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	enabled := RegisterFlags(fs, analyzers)
	if err := fs.Parse(args); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		fmt.Fprintf(os.Stderr, "%s (unitchecker mode): expected one .cfg argument, got %q\n", progname, fs.Args())
		os.Exit(1)
	}
	diags, err := Check(fs.Arg(0), Enabled(analyzers, enabled))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// RegisterFlags registers each analyzer's enable flag (-name) and its
// sub-flags (-name.flag) on fs, returning the enable map.
func RegisterFlags(fs *flag.FlagSet, analyzers []*analysis.Analyzer) map[string]*bool {
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = fs.Bool(a.Name, false, "enable only the "+a.Name+" analyzer: "+doc)
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
	return enabled
}

// Enabled applies vet's enable-flag semantics: if any -name flag is set,
// only those analyzers run; otherwise all do.
func Enabled(analyzers []*analysis.Analyzer, enabled map[string]*bool) []*analysis.Analyzer {
	any := false
	for _, on := range enabled {
		if *on {
			any = true
		}
	}
	if !any {
		return analyzers
	}
	var out []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// Check analyzes the package unit described by cfgFile and returns the
// rendered diagnostics.
func Check(cfgFile string, analyzers []*analysis.Analyzer) ([]string, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("unitchecker: parsing %s: %v", cfgFile, err)
	}

	// cmd/go requires the facts output to exist even though widxlint
	// exchanges none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("unitchecker: type-checking %s: %v", cfg.ImportPath, err)
	}

	var out []string
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
		}
		diags, err := analysis.RunWithIgnores(a, pass)
		if err != nil {
			return nil, fmt.Errorf("unitchecker: %s: %s: %v", cfg.ImportPath, a.Name, err)
		}
		for _, d := range diags {
			out = append(out, fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Category, d.Message))
		}
	}
	return out, nil
}

// jsonFlag is one entry of the -flags listing cmd/go consumes.
type jsonFlag struct {
	Name  string
	Bool  bool
	Usage string
}

func printFlags(analyzers []*analysis.Analyzer) {
	var out []jsonFlag
	fs := flag.NewFlagSet("widxlint", flag.ContinueOnError)
	RegisterFlags(fs, analyzers)
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// versionLine builds the -V=full line, content-addressed by the tool
// binary itself.
func versionLine(progname string) string {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	return fmt.Sprintf("%s version devel buildID=%x", progname, h.Sum(nil)[:12])
}
