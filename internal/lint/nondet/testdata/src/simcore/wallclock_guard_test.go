package simcore

import (
	"testing"
	"time"
)

// Test files are exempt: wall-clock overhead budgets (the repo's
// TestSchedulerOverheadBudget pattern) legitimately time real execution
// without affecting simulation output. No diagnostic expected here.
func TestWallClockBudget(t *testing.T) {
	start := time.Now()
	if time.Since(start) < 0 {
		t.Fatal("clock went backwards")
	}
}
