// Package simcore is the nondet analyzer fixture, standing in for a
// deterministic-core package (the test points -nondet.pkgs at it).
package simcore

import (
	"math/rand"
	"os"
	"time"
)

// --- report cases ---

func badWallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in the simulation core`
}

func badSince(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in the simulation core`
}

func badGlobalRand(n int) int {
	return rand.Intn(n) // want `global rand.Intn draws from the ambient source`
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle draws from the ambient source`
}

func badEnv() string {
	return os.Getenv("WIDX_SEED") // want `os.Getenv in the simulation core`
}

// --- non-report cases ---

// Explicitly seeded generators are the accepted fix: the seed is part of
// the run's resolved configuration, so replay stays byte-identical.
func goodSeededRand(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// Simulated-time arithmetic never touches the wall clock.
func goodSimulatedTime(cycles uint64, cyclesPerNs float64) time.Duration {
	return time.Duration(float64(cycles)/cyclesPerNs) * time.Nanosecond
}

// A deliberate, justified exception.
func goodIgnoredWithReason() int64 {
	//widxlint:ignore nondet diagnostic-only trace timestamp, never in simulation output
	return time.Now().UnixNano()
}
