// Package structzoo is the nondet fixture standing in for
// internal/structures: a traversal-structure builder whose layouts (skip-list
// tower heights, LSM shadow placement, BFS edge targets) are drawn from
// randomness. Every draw must come from an explicitly seeded generator —
// an ambient draw would make the built structure, and with it every match
// fingerprint and golden test, differ run to run.
package structzoo

import (
	"math/rand"
	"time"
)

// --- report cases ---

func badTowerHeights(n int) []int {
	hs := make([]int, n)
	for i := range hs {
		h := 1
		for rand.Intn(4) == 0 { // want `global rand.Intn draws from the ambient source`
			h++
		}
		hs[i] = h
	}
	return hs
}

func badSlotShuffle(n int) []int {
	return rand.Perm(n) // want `global rand.Perm draws from the ambient source`
}

func badBuildSeed() int64 {
	return time.Now().UnixNano() // want `time.Now in the simulation core`
}

// --- accepted fixes ---

// goodSeededBuild is the structures idiom: one generator per build,
// seeded from the BuildConfig, so the layout is a pure function of it.
func goodSeededBuild(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(n)
	for i := range order {
		if rng.Intn(4) == 0 {
			order[i] = -order[i]
		}
	}
	return order
}
