// Package servejob is the fixture pinning the nondet analyzer's scope
// decision for the sweep service: wall-clock is legitimate in job
// metadata (this package is serve-shaped and out of the core list), so
// none of these calls may produce a diagnostic — there are no `want`
// comments in this file on purpose.
package servejob

import "time"

// Job mirrors the serve layer's job metadata: timestamps that describe
// the service's own scheduling, never simulation results.
type Job struct {
	Created  time.Time
	Started  time.Time
	Finished time.Time
}

// Start stamps the job with wall-clock service time.
func Start(j *Job) {
	j.Started = time.Now()
}

// Age measures how long a job has existed — service observability only.
func Age(j *Job) time.Duration {
	return time.Since(j.Created)
}
