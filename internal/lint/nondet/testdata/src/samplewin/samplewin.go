// Package samplewin is the nondet fixture standing in for
// internal/sampling: a sampled-simulation planner whose window placement
// decides which probes are measured in detail. An ambient draw here is
// worse than a perturbed number — it changes the measured sample itself
// between two runs of the same manifest, so estimates stop being
// reproducible even though every simulated probe still is.
package samplewin

import (
	"math/rand"
	"os"
	"strconv"
	"time"
)

// --- report cases ---

// badRandomOffsets is the textbook SMARTS variant done wrong: randomized
// window offsets from the ambient source.
func badRandomOffsets(probes, windows, span int) []int {
	starts := make([]int, windows)
	for i := range starts {
		starts[i] = rand.Intn(probes - span) // want `global rand.Intn draws from the ambient source`
	}
	return starts
}

func badEstimateStamp() int64 {
	return time.Now().Unix() // want `time.Now in the simulation core`
}

func badWindowCountFromEnv() int {
	n, _ := strconv.Atoi(os.Getenv("SAMPLE_WINDOWS")) // want `os.Getenv in the simulation core`
	return n
}

// --- accepted fixes ---

// goodEndAnchored is the real package's placement: a pure function of the
// plan, each window anchored to the end of its equal slice of the stream.
func goodEndAnchored(probes, windows, span int) []int {
	starts := make([]int, windows)
	for j := range starts {
		end := (j + 1) * probes / windows
		starts[j] = end - span
	}
	return starts
}

// goodSeededOffsets is the accepted randomized-offset spelling, if it is
// ever added: an explicit seed that would be recorded in the manifest.
func goodSeededOffsets(seed int64, probes, windows, span int) []int {
	rng := rand.New(rand.NewSource(seed))
	starts := make([]int, windows)
	for i := range starts {
		starts[i] = rng.Intn(probes - span)
	}
	return starts
}
