// Package nondet implements the widxlint analyzer that keeps wall-clock
// time, ambient randomness and the process environment out of the
// simulation core. Byte-identical replay at any -parallel — and the
// planned content-addressed result cache, which keys cached sweep points by
// (git rev, resolved config, resolved params) — both assume a run is a pure
// function of its inputs. A single time.Now, global math/rand draw or
// os.Getenv in internal/{sim,mem,widx,system,cores,exp} silently breaks
// that: the run still passes its own tests but two executions stop agreeing.
//
// internal/sampling is in the core list for the same reason with a sharper
// edge: its window placement decides *which* probes are measured, so an
// ambient draw there (randomized window offsets are the textbook SMARTS
// variant) would not just perturb a number — it would change the measured
// sample itself between two runs of the same manifest. Placement must stay
// a pure function of the plan (end-anchored windows), and any future
// randomized-offset mode must draw from a seed recorded in the manifest.
// The samplewin fixture under testdata/src pins this.
//
// Flagged inside the configured core packages (non-test files only; test
// files legitimately measure wall-clock overhead budgets):
//
//   - time.Now / time.Since / time.Until
//   - the global math/rand and math/rand/v2 sources (rand.Intn, rand.IntN,
//     rand.Shuffle, rand.Perm, ...). Explicitly seeded generators —
//     rand.New(rand.NewSource(seed)), rand.NewPCG — are fine and are the
//     accepted fix.
//   - os.Getenv / os.LookupEnv / os.Environ
//
// internal/serve is deliberately NOT in the core list. The sweep service
// schedules, caches and transports results; it never computes them. Its
// job metadata (created/started/finished timestamps, HTTP deadlines) is
// legitimate wall-clock, while manifests and reports are produced inside
// the core and cross the serve layer only as opaque byte-preserved
// payloads (exp.RawResult), so service time cannot leak into results.
// The servejob fixture under testdata/src pins this scope decision: a
// serve-shaped package full of time.Now must produce no diagnostics.
// (detmap, by contrast, applies to internal/serve like everywhere else —
// ordered API output must not be fed from map iteration.)
//
// Suppress a deliberate exception with //widxlint:ignore nondet <reason>.
package nondet

import (
	"go/ast"
	"go/types"
	"strings"

	"widx/internal/lint/analysis"
)

// Analyzer is the nondet analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nondet",
	Doc: "forbid wall-clock, ambient randomness and environment reads in the simulation core\n\n" +
		"Reports time.Now/Since/Until, global math/rand draws and os.Getenv-style\n" +
		"environment reads inside the deterministic simulation packages, where they\n" +
		"break byte-identical replay and result caching.",
	Run: run,
}

// pkgs restricts the analyzer to the deterministic core. Import paths match
// exactly or by "path/..." subtree; override with -nondet.pkgs.
var pkgs = "widx/internal/sim,widx/internal/mem,widx/internal/widx,widx/internal/system,widx/internal/cores,widx/internal/exp,widx/internal/warmstate,widx/internal/structures,widx/internal/sampling"

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs", pkgs,
		"comma-separated import paths (subtrees) treated as the deterministic core")
}

// banned maps imported package path -> function name -> explanation.
var banned = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock time breaks deterministic replay; derive timing from simulated cycles",
		"Since": "wall-clock time breaks deterministic replay; derive timing from simulated cycles",
		"Until": "wall-clock time breaks deterministic replay; derive timing from simulated cycles",
	},
	"os": {
		"Getenv":    "environment reads make a run depend on ambient process state; thread configuration through sim.Config",
		"LookupEnv": "environment reads make a run depend on ambient process state; thread configuration through sim.Config",
		"Environ":   "environment reads make a run depend on ambient process state; thread configuration through sim.Config",
	},
}

// randConstructors are the explicitly seeded math/rand entry points that do
// not touch the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !inCore(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			// Tests may measure wall-clock (overhead budgets) without
			// affecting simulation output.
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath := importedPath(pass, sel.X)
			if pkgPath == "" {
				return true
			}
			name := sel.Sel.Name
			if why, ok := banned[pkgPath][name]; ok {
				pass.Reportf(call.Pos(), "%s.%s in the simulation core: %s", pathBase(pkgPath), name, why)
				return true
			}
			if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[name] {
				pass.Reportf(call.Pos(), "global %s.%s draws from the ambient source and breaks deterministic replay; use rand.New with an explicit seed", pathBase(pkgPath), name)
			}
			return true
		})
	}
	return nil, nil
}

// InCore exposes the package-scoping predicate for tests.
var InCore = inCore

// inCore reports whether an import path is inside the configured
// deterministic core. Test-variant paths ("p [p.test]") match as p.
func inCore(path string) bool {
	if base, _, ok := strings.Cut(path, " ["); ok {
		path = base
	}
	for _, p := range strings.Split(pkgs, ",") {
		p = strings.TrimSpace(p)
		if p != "" && (path == p || strings.HasPrefix(path, p+"/")) {
			return true
		}
	}
	return false
}

// importedPath resolves e to the import path of the package it names.
func importedPath(pass *analysis.Pass, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
