package nondet_test

import (
	"testing"

	"widx/internal/lint/analysistest"
	"widx/internal/lint/nondet"
)

func TestNondet(t *testing.T) {
	// Point the core-package list at the fixture.
	if err := nondet.Analyzer.Flags.Set("pkgs", "simcore"); err != nil {
		t.Fatal(err)
	}
	defer nondet.Analyzer.Flags.Set("pkgs",
		"widx/internal/sim,widx/internal/mem,widx/internal/widx,widx/internal/system,widx/internal/cores,widx/internal/exp")
	analysistest.Run(t, "testdata", nondet.Analyzer, "simcore")
}

func TestNondetSkipsForeignPackages(t *testing.T) {
	// With the default core list, the fixture package is out of scope and
	// must produce no diagnostics; prove it by expecting the fixture's
	// `want` lines to fail... instead, run the analyzer directly and check
	// it reports nothing. The simplest spelling with the harness: a
	// separate fixture would duplicate files, so this is covered by the
	// inCore unit behavior below.
	if nondetInCore := nondet.InCore; nondetInCore != nil {
		if nondetInCore("widx/internal/sim [widx/internal/sim.test]") != true {
			t.Error("test-variant import path of a core package must be in core")
		}
		if nondetInCore("widx/internal/simx") {
			t.Error("sibling package with a core-path prefix must not match")
		}
		if !nondetInCore("widx/internal/sim/inner") {
			t.Error("subtree of a core package must match")
		}
	}
}
