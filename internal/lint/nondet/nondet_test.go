package nondet_test

import (
	"testing"

	"widx/internal/lint/analysistest"
	"widx/internal/lint/nondet"
)

// setCorePkgs points the analyzer's core-package list at a fixture and
// restores whatever was configured before (not a hardcoded copy of the
// default, which would silently go stale as the real list evolves).
func setCorePkgs(t *testing.T, pkgs string) {
	t.Helper()
	prev := nondet.Analyzer.Flags.Lookup("pkgs").Value.String()
	if err := nondet.Analyzer.Flags.Set("pkgs", pkgs); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nondet.Analyzer.Flags.Set("pkgs", prev) })
}

func TestNondet(t *testing.T) {
	setCorePkgs(t, "simcore")
	analysistest.Run(t, "testdata", nondet.Analyzer, "simcore")
}

// TestNondetServeScope pins the scope decision for the sweep service:
// a serve-shaped package (job metadata full of time.Now/time.Since)
// outside the core list produces no diagnostics — the servejob fixture
// deliberately has no `want` comments, so any report fails the run.
func TestNondetServeScope(t *testing.T) {
	setCorePkgs(t, "simcore")
	analysistest.Run(t, "testdata", nondet.Analyzer, "servejob")
}

// TestNondetStructuresScope covers the workload-zoo builders: a
// structures-shaped package (randomized skip-list towers, LSM shadows, BFS
// edges) is in scope, ambient draws are reported, and the seeded-generator
// idiom the real package uses passes clean.
func TestNondetStructuresScope(t *testing.T) {
	setCorePkgs(t, "structzoo")
	analysistest.Run(t, "testdata", nondet.Analyzer, "structzoo")
}

// TestNondetSamplingScope covers the sampled-simulation planner: a
// sampling-shaped package (window placement, estimator) is in scope,
// ambient draws and wall-clock are reported, and both the end-anchored
// placement and the seeded randomized-offset idiom pass clean.
func TestNondetSamplingScope(t *testing.T) {
	setCorePkgs(t, "samplewin")
	analysistest.Run(t, "testdata", nondet.Analyzer, "samplewin")
}

func TestNondetSkipsForeignPackages(t *testing.T) {
	// With the default core list, the fixture package is out of scope and
	// must produce no diagnostics; prove it by expecting the fixture's
	// `want` lines to fail... instead, run the analyzer directly and check
	// it reports nothing. The simplest spelling with the harness: a
	// separate fixture would duplicate files, so this is covered by the
	// inCore unit behavior below.
	if nondetInCore := nondet.InCore; nondetInCore != nil {
		if nondetInCore("widx/internal/sim [widx/internal/sim.test]") != true {
			t.Error("test-variant import path of a core package must be in core")
		}
		if nondetInCore("widx/internal/simx") {
			t.Error("sibling package with a core-path prefix must not match")
		}
		if !nondetInCore("widx/internal/sim/inner") {
			t.Error("subtree of a core package must match")
		}
		if !nondetInCore("widx/internal/structures") {
			t.Error("the workload-zoo builders must be in the default core list")
		}
		if !nondetInCore("widx/internal/sampling") {
			t.Error("the sampled-simulation planner must be in the default core list")
		}
		if !nondetInCore("widx/internal/sampling/stats") {
			t.Error("the estimator subtree must be in the default core list")
		}
	}
}
