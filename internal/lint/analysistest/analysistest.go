// Package analysistest runs a widxlint analyzer over fixture packages and
// checks its diagnostics against `// want` expectations, mirroring the
// golang.org/x/tools/go/analysis/analysistest convention so fixtures are
// portable to the upstream harness:
//
//	for k := range m { // want `map iteration order`
//
// Each `// want` comment carries one or more Go string literals (quoted or
// backquoted), each a regular expression that must match a diagnostic
// reported on that line; every diagnostic must be matched by some
// expectation. Fixture packages live under testdata/src/<pkg>/ and may
// import only the standard library (they are type-checked from source, so
// the harness works offline).
//
// Diagnostics are delivered through analysis.RunWithIgnores, so fixtures
// exercise the //widxlint:ignore suppression path too.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"widx/internal/lint/analysis"
)

// Run applies the analyzer to each fixture package under dir/src and
// reports mismatches between expected and actual diagnostics on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, filepath.Join(dir, "src", pkg), pkg, a)
	}
}

func runOne(t *testing.T, srcDir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(srcDir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", pkgPath, srcDir)
	}

	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("%s: type-checking fixture: %v", pkgPath, err)
	}

	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
	}
	diags, err := analysis.RunWithIgnores(a, pass)
	if err != nil {
		t.Fatalf("%s: analyzer: %v", pkgPath, err)
	}

	wants := collectWants(t, fset, files)
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			p := fset.Position(d.Pos)
			if p.Filename == w.file && p.Line == w.line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			p := fset.Position(d.Pos)
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
	}
}

// want is one expectation: a regexp that must match a diagnostic on a line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants parses `// want "re" \`re\“ comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var out []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") && text != "want" {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				pos := fset.Position(c.Pos())
				for rest != "" {
					lit, tail, err := cutStringLit(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want: %v", pos.Filename, pos.Line, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(tail)
				}
			}
		}
	}
	return out
}

// cutStringLit peels one leading Go string literal off s.
func cutStringLit(s string) (value, rest string, err error) {
	prefix, err := strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", err
	}
	v, err := strconv.Unquote(prefix)
	if err != nil {
		return "", "", err
	}
	return v, s[len(prefix):], nil
}
