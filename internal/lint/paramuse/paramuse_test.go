package paramuse_test

import (
	"testing"

	"widx/internal/lint/analysistest"
	"widx/internal/lint/paramuse"
)

func TestParamuse(t *testing.T) {
	analysistest.Run(t, "testdata", paramuse.Analyzer, "paramusetest")
}
