package paramusetest

import "fmt"

// Catalog entries under test. Registration side effects are irrelevant to
// the analyzer; the variables only keep the calls referenced.
var (
	// Honest: every declared key is read, every read key is declared.
	_ = NewExperiment("kernel", "declares and reads sizes + walkers",
		[]ParamSpec{
			{Key: "sizes", Default: "Small,Medium", Help: "size classes"},
			{Key: "walkers", Default: "4", Help: "walker counts"},
		},
		func(cfg Config, p Params) (Result, error) {
			sizes := p.String("sizes")
			w, err := p.Int("walkers")
			if err != nil {
				return nil, err
			}
			return fmt.Sprintf("%s/%d", sizes, w), nil
		})

	// Honest: no declared params, none read.
	_ = NewExperiment("model", "parameterless", nil,
		func(cfg Config, p Params) (Result, error) {
			return cfg.Scale, nil
		})

	// Honest: common config keys (from CommonParams) need no declaration.
	_ = NewExperiment("scaled", "reads only a common key", nil,
		func(cfg Config, p Params) (Result, error) {
			return p.String("scale"), nil
		})

	// Honest: reads made through a same-package helper are followed.
	_ = NewExperiment("helper", "reads walkers via applyWalkers",
		[]ParamSpec{
			{Key: "walkers", Default: "", Help: "walker counts"},
		},
		func(cfg Config, p Params) (Result, error) {
			cfg, err := applyWalkers(cfg, p)
			return cfg, err
		})

	// Dishonest: "stagger" is declared, advertised in every manifest, and
	// does nothing.
	_ = NewExperiment("dead-knob", "declares a parameter it never reads",
		[]ParamSpec{
			{Key: "size", Default: "Medium", Help: "size class"},
			{Key: "stagger", Default: "0", Help: "arrival stagger"}, // want `declares parameter "stagger" but its run function never reads it`
		},
		func(cfg Config, p Params) (Result, error) {
			return p.String("size"), nil
		})

	// Dishonest: "queue" can never be set from -set/-sweep because it is
	// not declared, so Run always sees the zero value.
	_ = NewExperiment("ghost-knob", "reads a parameter it does not declare",
		[]ParamSpec{
			{Key: "size", Default: "Medium", Help: "size class"},
		},
		func(cfg Config, p Params) (Result, error) {
			depth, err := p.Int("queue") // want `reads parameter "queue" that its ParamSpecs do not declare`
			if err != nil {
				return nil, err
			}
			return p.String("size") + fmt.Sprint(depth), nil
		})

	// Opaque: p escapes into another package, so declared-but-unread is
	// not provable and must not be reported.
	_ = NewExperiment("escapes", "passes Params outside the package",
		[]ParamSpec{
			{Key: "mystery", Default: "", Help: "consumed by a foreign helper"},
		},
		func(cfg Config, p Params) (Result, error) {
			fmt.Println(p)
			return nil, nil
		})
)

// applyWalkers is the same-package helper shape from the real catalog: the
// analyzer follows p into it and credits the "walkers" read.
func applyWalkers(cfg Config, p Params) (Config, error) {
	if p.String("walkers") == "" {
		return cfg, nil
	}
	n, err := p.Int("walkers")
	if err != nil {
		return cfg, err
	}
	cfg.Walkers = []int{n}
	return cfg, nil
}
