// Package paramusetest is the paramuse analyzer fixture: a miniature of
// the internal/exp registry surface (ParamSpec, Params, NewExperiment,
// CommonParams) with honest and dishonest catalog entries.
package paramusetest

// ParamSpec mirrors exp.ParamSpec.
type ParamSpec struct {
	Key     string
	Default string
	Help    string
}

// Params mirrors exp.Params.
type Params map[string]string

func (p Params) String(key string) string { return p[key] }

func (p Params) Int(key string) (int, error) { return 0, nil }

func (p Params) Bool(key string) (bool, error) { return false, nil }

// Config stands in for sim.Config.
type Config struct {
	Scale   float64
	Walkers []int
}

// Result mirrors exp.Result.
type Result interface{}

// Experiment is the registered unit.
type Experiment struct {
	name string
	run  func(cfg Config, p Params) (Result, error)
}

// NewExperiment mirrors exp.NewExperiment: name, description, declared
// parameters, run function.
func NewExperiment(name, describe string, params []ParamSpec, run func(cfg Config, p Params) (Result, error)) *Experiment {
	return &Experiment{name: name, run: run}
}

// CommonParams mirrors exp.CommonParams: keys every experiment accepts
// without declaring. The analyzer reads these out of the function body.
func CommonParams() []ParamSpec {
	return []ParamSpec{
		{Key: "scale", Default: "", Help: "workload scale"},
		{Key: "sample", Default: "", Help: "probes per design"},
	}
}
