// Package paramuse implements the widxlint analyzer that keeps the
// experiment registry's manifest schema honest. Every run's
// widx-experiment-manifest/v1 records the resolved parameter set an
// experiment Describes; the catalog's contract is that each declared
// ParamSpec is actually consumed by Run, and that Run consumes nothing it
// does not declare. A declared-but-unread key labels manifests (and sweep
// axes!) with a knob that does nothing; a read-but-undeclared key can never
// be set from -set/-sweep and silently runs at the zero value.
//
// The analyzer inspects every NewExperiment(name, doc, params, run) call:
// the []ParamSpec literal gives the declared keys; the run function literal
// gives the read keys — p.String("k"), p.Int("k"), p["k"], and reads made
// by same-package helper functions the Params value is passed to
// (transitively). The common config keys every experiment accepts
// (CommonParams / -paramuse.common) are exempt. If the Params value
// escapes into another package or is read with a non-constant key, the
// declared-but-unread check is skipped for that experiment — the analyzer
// only reports what it can prove.
//
// Suppress a deliberate exception with //widxlint:ignore paramuse <reason>.
package paramuse

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"widx/internal/lint/analysis"
)

// Analyzer is the paramuse analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "paramuse",
	Doc: "experiment parameters must be declared iff they are read\n\n" +
		"Cross-checks each NewExperiment call's []ParamSpec against the parameter\n" +
		"keys its run function (and same-package helpers it passes Params to)\n" +
		"actually reads, keeping the experiment manifest schema honest.",
	Run: run,
}

// common is the extra allowance for keys every experiment accepts without
// declaring; the CommonParams function of the analyzed package, when
// present, is unioned in automatically.
var common = "scale,sample,mshrs,fill-buffers,llc-ways,queue-depth"

func init() {
	Analyzer.Flags.StringVar(&common, "common", common,
		"comma-separated parameter keys every experiment accepts without declaring them")
}

func run(pass *analysis.Pass) (interface{}, error) {
	a := &analyzer{
		pass:  pass,
		decls: map[*types.Func]*ast.FuncDecl{},
		memo:  map[*ast.FuncDecl]readSet{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					a.decls[fn] = fd
				}
			}
		}
	}
	commonKeys := map[string]bool{}
	for _, k := range strings.Split(common, ",") {
		if k = strings.TrimSpace(k); k != "" {
			commonKeys[k] = true
		}
	}
	for fn, fd := range a.decls {
		if fn.Name() == "CommonParams" {
			for k := range collectSpecKeys(pass, fd.Body) {
				commonKeys[k] = true
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isNewExperiment(call) || len(call.Args) < 4 {
				return true
			}
			a.checkExperiment(call, commonKeys)
			return true
		})
	}
	return nil, nil
}

type analyzer struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*ast.FuncDecl]readSet
	path  []*ast.FuncDecl // recursion guard
}

// readSet is the outcome of tracking one Params value through a function:
// the keys read (with the first read site), and whether the value escaped
// tracking (passed outside the package, non-constant key, aliased).
type readSet struct {
	keys   map[string]token.Pos
	opaque bool
}

func (r *readSet) add(key string, pos token.Pos) {
	if r.keys == nil {
		r.keys = map[string]token.Pos{}
	}
	if _, ok := r.keys[key]; !ok {
		r.keys[key] = pos
	}
}

func (r *readSet) union(o readSet) {
	for k, pos := range o.keys {
		r.add(k, pos)
	}
	r.opaque = r.opaque || o.opaque
}

// checkExperiment cross-checks one NewExperiment call site.
func (a *analyzer) checkExperiment(call *ast.CallExpr, commonKeys map[string]bool) {
	expName := "experiment"
	if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
		if s, err := strconv.Unquote(lit.Value); err == nil {
			expName = s
		}
	}

	declared, declaredOpaque := declaredKeys(a.pass, call.Args[2])

	runLit, ok := call.Args[3].(*ast.FuncLit)
	if !ok {
		return // run function built elsewhere: nothing to prove here
	}
	paramObj := paramsParam(a.pass, runLit.Type)
	var reads readSet
	if paramObj == nil {
		// No Params parameter in scope (e.g. ignored via _): nothing is
		// readable, so every declared key is dead.
		reads = readSet{}
	} else {
		reads = a.track(paramObj, runLit.Body)
	}

	for key, pos := range reads.keys {
		if _, ok := declared[key]; !ok && !commonKeys[key] && !declaredOpaque {
			a.pass.Reportf(pos, "experiment %q reads parameter %q that its ParamSpecs do not declare; it can never be set via -set/-sweep", expName, key)
		}
	}
	if !reads.opaque {
		for key, pos := range declared {
			if _, ok := reads.keys[key]; !ok {
				a.pass.Reportf(pos, "experiment %q declares parameter %q but its run function never reads it; the manifest advertises a knob that does nothing", expName, key)
			}
		}
	}
}

// track follows one Params-typed object through a function body: direct
// reads, helper calls within the package (followed transitively), and
// anything that defeats tracking (marked opaque).
func (a *analyzer) track(param types.Object, body *ast.BlockStmt) readSet {
	var reads readSet
	info := a.pass.TypesInfo

	// handled marks param-identifier uses already accounted for by an
	// enclosing read/call pattern; any remaining use is an escape.
	handled := map[*ast.Ident]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// p.String("key") and friends: a typed getter read.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && info.Uses[id] == param {
					handled[id] = true
					if len(n.Args) >= 1 {
						if key, ok := stringLit(n.Args[0]); ok {
							reads.add(key, n.Args[0].Pos())
						} else {
							reads.opaque = true // non-constant key
						}
					}
					return true
				}
			}
			// p passed to a helper: follow same-package functions,
			// give up on anything else.
			for i, arg := range n.Args {
				id, ok := arg.(*ast.Ident)
				if !ok || info.Uses[id] != param {
					continue
				}
				handled[id] = true
				if sub, ok := a.helperReads(n, i); ok {
					reads.union(sub)
				} else {
					reads.opaque = true
				}
			}
		case *ast.IndexExpr:
			// p["key"]: a raw read.
			if id, ok := n.X.(*ast.Ident); ok && info.Uses[id] == param {
				handled[id] = true
				if key, ok := stringLit(n.Index); ok {
					reads.add(key, n.Index.Pos())
				} else {
					reads.opaque = true
				}
			}
		}
		return true
	})

	// Any use of param not consumed by the patterns above (assignment,
	// composite literal, range, return) is an escape we do not model.
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == param && !handled[id] {
			reads.opaque = true
		}
		return true
	})
	return reads
}

// helperReads resolves the callee of a call whose argIdx-th argument is a
// Params value and returns the keys that function reads through it. It only
// succeeds for plain same-package functions with an AST in this pass.
func (a *analyzer) helperReads(call *ast.CallExpr, argIdx int) (readSet, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return readSet{}, false
	}
	fn, ok := a.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return readSet{}, false
	}
	fd := a.decls[fn]
	if fd == nil || fd.Body == nil {
		return readSet{}, false
	}
	for _, onPath := range a.path {
		if onPath == fd {
			return readSet{}, true // recursion: already being accumulated
		}
	}
	if memo, ok := a.memo[fd]; ok {
		return memo, true
	}
	obj := nthParamObj(a.pass, fd, argIdx)
	if obj == nil {
		return readSet{}, false
	}
	a.path = append(a.path, fd)
	reads := a.track(obj, fd.Body)
	a.path = a.path[:len(a.path)-1]
	a.memo[fd] = reads
	return reads, true
}

// nthParamObj returns the object of a function declaration's n-th
// parameter.
func nthParamObj(pass *analysis.Pass, fd *ast.FuncDecl, n int) types.Object {
	i := 0
	for _, field := range fd.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			names = []*ast.Ident{nil}
		}
		for _, name := range names {
			if i == n {
				if name == nil {
					return nil
				}
				return pass.TypesInfo.Defs[name]
			}
			i++
		}
	}
	return nil
}

// paramsParam finds the run function's parameter whose type is named
// "Params" and returns its object.
func paramsParam(pass *analysis.Pass, ft *ast.FuncType) types.Object {
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if named, ok := obj.Type().(*types.Named); ok && named.Obj().Name() == "Params" {
				return obj
			}
		}
	}
	return nil
}

// declaredKeys extracts the Key of every ParamSpec in the params argument
// of a NewExperiment call. A nil literal declares nothing; anything that is
// not a slice literal is opaque (built elsewhere).
func declaredKeys(pass *analysis.Pass, arg ast.Expr) (map[string]token.Pos, bool) {
	out := map[string]token.Pos{}
	switch arg := arg.(type) {
	case *ast.Ident:
		if arg.Name == "nil" {
			return out, false
		}
	case *ast.CompositeLit:
		for _, elt := range arg.Elts {
			cl, ok := elt.(*ast.CompositeLit)
			if !ok {
				return out, true
			}
			key, pos, ok := specKey(cl)
			if !ok {
				return out, true
			}
			out[key] = pos
		}
		return out, false
	}
	return out, true
}

// specKey pulls the Key value out of one ParamSpec composite literal,
// keyed or positional.
func specKey(cl *ast.CompositeLit) (string, token.Pos, bool) {
	for _, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Key" {
				if s, ok := stringLit(kv.Value); ok {
					return s, kv.Value.Pos(), true
				}
				return "", 0, false
			}
			continue
		}
		// Positional literal: Key is the first field.
		if s, ok := stringLit(elt); ok {
			return s, elt.Pos(), true
		}
		return "", 0, false
	}
	return "", 0, false
}

// collectSpecKeys gathers the Key of every ParamSpec literal in a body —
// used to read the analyzed package's CommonParams.
func collectSpecKeys(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	if body == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(cl)
		if t == nil {
			return true
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "ParamSpec" {
			if key, _, ok := specKey(cl); ok {
				out[key] = true
			}
		}
		return true
	})
	return out
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// isNewExperiment matches calls to a function named NewExperiment, plain or
// package-qualified.
func isNewExperiment(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "NewExperiment"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "NewExperiment"
	}
	return false
}
