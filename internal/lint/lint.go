// Package lint assembles the widxlint analyzer suite: the custom analyzers
// that machine-check the simulator's two load-bearing invariants —
// byte-identical output at any -parallel (detmap, nondet) and per-agent
// stats summing to shared totals (statssum) — plus the experiment manifest
// schema's honesty (paramuse). cmd/widxlint drives the suite standalone
// (`go run ./cmd/widxlint ./...`) and as a `go vet -vettool`.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"widx/internal/lint/analysis"
	"widx/internal/lint/detmap"
	"widx/internal/lint/loader"
	"widx/internal/lint/nondet"
	"widx/internal/lint/paramuse"
	"widx/internal/lint/statssum"
)

// Analyzers returns the full widxlint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detmap.Analyzer,
		nondet.Analyzer,
		paramuse.Analyzer,
		statssum.Analyzer,
	}
}

// Finding is one diagnostic with its resolved position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run loads patterns from dir and applies the given analyzers — the
// standalone driver's whole job.
func Run(dir string, includeTests bool, analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, error) {
	pkgs, err := loader.Load(dir, includeTests, patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, analyzers)
}

// RunPackages applies every analyzer to every loaded package and returns
// the surviving findings in deterministic (position-sorted) order.
func RunPackages(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			diags, err := analysis.RunWithIgnores(a, pass)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
			}
			for _, d := range diags {
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(d.Pos),
					Analyzer: d.Category,
					Message:  d.Message,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out, nil
}
