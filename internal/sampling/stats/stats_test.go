package stats

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEstimateKnownSeries(t *testing.T) {
	// xs = {2, 4, 6}: mean 4, sample variance 4, stderr sqrt(4/3),
	// t(df=2, 95%) = 4.303.
	e := Estimate95([]float64{2, 4, 6})
	if !almost(e.Mean, 4) {
		t.Errorf("mean = %v, want 4", e.Mean)
	}
	wantSE := math.Sqrt(4.0 / 3.0)
	if !almost(e.StdErr, wantSE) {
		t.Errorf("stderr = %v, want %v", e.StdErr, wantSE)
	}
	wantHW := 4.303 * wantSE
	if !almost(e.HalfWidth, wantHW) {
		t.Errorf("half-width = %v, want %v", e.HalfWidth, wantHW)
	}
	if !almost(e.Low, 4-wantHW) || !almost(e.High, 4+wantHW) {
		t.Errorf("interval = [%v, %v], want [%v, %v]", e.Low, e.High, 4-wantHW, 4+wantHW)
	}
	if e.Windows != 3 {
		t.Errorf("windows = %d, want 3", e.Windows)
	}
	if !e.Contains(4) || !e.Contains(4-wantHW) || e.Contains(4+wantHW+1) {
		t.Error("Contains disagrees with the interval bounds")
	}
}

func TestEstimateSingleWindow(t *testing.T) {
	// One window: a point estimate with a zero-width interval. The value
	// itself must still be contained (the -sampling-verify degenerate case).
	e := Estimate95([]float64{7.25})
	if !almost(e.Mean, 7.25) || e.StdErr != 0 || e.HalfWidth != 0 {
		t.Errorf("single window: got %+v, want zero-width interval at 7.25", e)
	}
	if !e.Contains(7.25) {
		t.Error("zero-width interval must contain its own mean")
	}
	if e.Contains(7.26) {
		t.Error("zero-width interval must reject a different value")
	}
}

func TestEstimateZeroVariance(t *testing.T) {
	// Identical windows: no observed dispersion, zero-width interval.
	e := Estimate95([]float64{3, 3, 3, 3})
	if !almost(e.Mean, 3) || e.StdErr != 0 || e.HalfWidth != 0 {
		t.Errorf("zero variance: got %+v, want zero-width interval at 3", e)
	}
	if !e.Contains(3) {
		t.Error("zero-variance interval must contain the common value")
	}
	if e.RelativeHalfWidth() != 0 {
		t.Errorf("relative half-width = %v, want 0", e.RelativeHalfWidth())
	}
}

func TestEstimateEmpty(t *testing.T) {
	e := Estimate95(nil)
	if e.Windows != 0 || e.Mean != 0 {
		t.Errorf("empty series: got %+v, want zero estimate", e)
	}
}

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {10, 2.228}, {30, 2.042},
		// Untabulated dfs round down to the next smaller entry
		// (conservative: a wider interval).
		{31, 2.042}, {39, 2.042}, {40, 2.021}, {59, 2.021},
		{60, 2.000}, {119, 2.000}, {120, 1.960}, {10000, 1.960},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); got != c.want {
			t.Errorf("TCritical95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	if !math.IsInf(TCritical95(0), 1) {
		t.Error("df=0 must be unusable (infinite critical value)")
	}
	// Monotone non-increasing over the tabulated range.
	for df := 2; df <= 200; df++ {
		if TCritical95(df) > TCritical95(df-1) {
			t.Fatalf("TCritical95 not monotone at df=%d", df)
		}
	}
}
