// Package stats estimates population metrics from the per-window
// observations a systematic sample produces. It is the statistical half of
// internal/sampling: the controller decides which probes run detailed, this
// package turns the measured windows into a mean, a standard error and a
// 95% confidence interval.
//
// The interval uses the Student-t distribution, not the normal
// approximation internal/stats uses for its (large-N) latency percentiles:
// sampled runs typically measure 8-32 windows, and at those sizes the
// normal z-value understates the interval by 5-30%. The critical values are
// the standard two-sided 95% table; between tabulated degrees of freedom
// the next *smaller* entry is used, which only ever widens the interval
// (conservative in the direction that keeps the coverage guarantee).
//
// Everything here is a pure function of its inputs — no randomness, no
// clocks — because window placement is systematic and the estimate must be
// byte-identical across runs (the package is inside the nondet lint scope).
package stats

import "math"

// Estimate summarizes one metric's per-window observations: the sample
// mean, the standard error of the mean, and the two-sided 95% confidence
// interval [Low, High] = Mean ± HalfWidth.
type Estimate struct {
	Mean      float64 `json:"mean"`
	StdErr    float64 `json:"stderr"`
	HalfWidth float64 `json:"ci_half_width"`
	Low       float64 `json:"ci_low"`
	High      float64 `json:"ci_high"`
	Windows   int     `json:"windows"`
}

// Estimate95 computes the 95% confidence estimate of the population mean
// from per-window observations. A single window (or an all-equal series)
// yields a zero-width interval: with no between-window variance observed
// there is no dispersion to widen the interval with, which is exactly the
// degenerate "degraded to full simulation" case the sampling controller
// produces when the probe stream is too short to sample.
func Estimate95(xs []float64) Estimate {
	n := len(xs)
	if n == 0 {
		return Estimate{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	e := Estimate{Mean: mean, Low: mean, High: mean, Windows: n}
	if n == 1 {
		return e
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	variance := ss / float64(n-1)
	e.StdErr = math.Sqrt(variance / float64(n))
	e.HalfWidth = TCritical95(n-1) * e.StdErr
	e.Low = mean - e.HalfWidth
	e.High = mean + e.HalfWidth
	return e
}

// Contains reports whether v lies inside the confidence interval, with a
// relative epsilon so a zero-width interval (degraded full run) still
// accepts the bit-identical full-run value after float round-trips.
func (e Estimate) Contains(v float64) bool {
	eps := 1e-9 * math.Max(math.Abs(e.Mean), 1)
	return v >= e.Low-eps && v <= e.High+eps
}

// RelativeHalfWidth returns HalfWidth/Mean (zero for a zero mean), the
// "±x%" form reports quote.
func (e Estimate) RelativeHalfWidth() float64 {
	if e.Mean == 0 {
		return 0
	}
	return math.Abs(e.HalfWidth / e.Mean)
}

// tTable holds the two-sided 95% Student-t critical values for 1..30
// degrees of freedom (index df-1).
var tTable = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom. Between tabulated entries the next smaller df's
// (larger) value applies; beyond 120 the normal limit 1.960 is close
// enough that the tabulation stops.
func TCritical95(df int) float64 {
	switch {
	case df <= 0:
		return math.Inf(1)
	case df <= 30:
		return tTable[df-1]
	case df < 40:
		return tTable[29] // df 30
	case df < 60:
		return 2.021 // df 40
	case df < 120:
		return 2.000 // df 60
	default:
		return 1.960
	}
}
