package sampling

import (
	"testing"
)

// checkPlan validates structural invariants shared by every plan.
func checkPlan(t *testing.T, p Plan) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	measured := 0
	for i, s := range p.Spans {
		switch s.Kind {
		case Measure:
			if s.Window != measured {
				t.Errorf("span %d: measure window %d, want %d (window ordinals must be dense)", i, s.Window, measured)
			}
			measured++
		case Warmup:
			if s.Window != measured {
				t.Errorf("span %d: warmup window %d, want %d (warmup precedes its measure span)", i, s.Window, measured)
			}
		case FastForward:
			if s.Window != -1 {
				t.Errorf("span %d: fast-forward carries window %d, want -1", i, s.Window)
			}
		}
	}
	if measured != p.Windows {
		t.Errorf("plan has %d measure spans, header says %d windows", measured, p.Windows)
	}
}

func TestNewPlanSystematic(t *testing.T) {
	p := NewPlan(1000, 4, 10, 40)
	checkPlan(t, p)
	if p.Degraded || !p.Sampled() {
		t.Fatalf("plan should sample: %+v", p)
	}
	if got, want := p.MeasuredProbes(), uint64(160); got != want {
		t.Errorf("measured probes = %d, want %d", got, want)
	}
	if got, want := p.DetailedProbes(), uint64(200); got != want {
		t.Errorf("detailed probes = %d, want %d", got, want)
	}
	// Windows anchor at stride ends floor((j+1)*N/W) = 250, 500, 750, 1000,
	// so warmups start 50 probes earlier — and the plan opens fast-forward.
	if p.Spans[0].Kind != FastForward || p.Spans[0].Start != 0 {
		t.Errorf("plan must open with a fast-forward span, got %+v", p.Spans[0])
	}
	var starts []uint64
	for _, s := range p.Spans {
		if s.Kind == Warmup {
			starts = append(starts, s.Start)
		}
	}
	want := []uint64{200, 450, 700, 950}
	if len(starts) != len(want) {
		t.Fatalf("warmup spans at %v, want %v", starts, want)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Errorf("window %d starts at %d, want %d", i, starts[i], want[i])
		}
	}
}

func TestNewPlanZeroWarmup(t *testing.T) {
	p := NewPlan(100, 2, 0, 10)
	checkPlan(t, p)
	for _, s := range p.Spans {
		if s.Kind == Warmup {
			t.Fatalf("zero-warmup plan has a warmup span: %+v", s)
		}
	}
}

func TestNewPlanDegradesWhenTooShort(t *testing.T) {
	cases := []struct {
		name           string
		probes         uint64
		windows        int
		warmup, period uint64
	}{
		{"windows exceed probes", 10, 20, 0, 1},
		{"window overflows its stride", 100, 10, 2, 9},
		{"windows exceed the stream", 100, 4, 10, 40},
		{"zero period", 100, 4, 10, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := NewPlan(c.probes, c.windows, c.warmup, c.period)
			checkPlan(t, p)
			if !p.Degraded {
				t.Fatalf("plan should degrade: %+v", p)
			}
			if p.Sampled() {
				t.Error("degraded plan must not fast-forward")
			}
			if p.Windows != 1 || len(p.Spans) != 1 || p.Spans[0].Kind != Measure || p.Spans[0].Len() != c.probes {
				t.Errorf("degraded plan must be one full measure span, got %+v", p.Spans)
			}
		})
	}
}

func TestNewPlanExactFill(t *testing.T) {
	// Windows exactly as long as their strides: every probe is detailed, no
	// fast-forward spans, but the stream still splits into measured windows.
	p := NewPlan(100, 10, 2, 8)
	checkPlan(t, p)
	if p.Degraded {
		t.Fatalf("exact-fill plan must not degrade: %+v", p)
	}
	if p.Sampled() {
		t.Error("exact-fill plan has no fast-forward spans")
	}
	if got, want := p.DetailedProbes(), uint64(100); got != want {
		t.Errorf("detailed probes = %d, want %d", got, want)
	}
}

func TestNewPlanWindowsOff(t *testing.T) {
	p := NewPlan(500, 0, 10, 40)
	checkPlan(t, p)
	if p.Degraded || p.Sampled() || p.Windows != 1 {
		t.Fatalf("windows=0 must be a plain full plan, got %+v", p)
	}
}

func TestPlanRunOrder(t *testing.T) {
	p := NewPlan(1000, 3, 5, 20)
	checkPlan(t, p)
	var cursor uint64
	var windows int
	err := p.Run(
		func(s Span) error {
			if s.Kind != FastForward || s.Start != cursor {
				t.Fatalf("ff span out of order: %+v at cursor %d", s, cursor)
			}
			cursor = s.End
			return nil
		},
		func(s Span) error {
			if s.Kind == FastForward || s.Start != cursor {
				t.Fatalf("detailed span out of order: %+v at cursor %d", s, cursor)
			}
			if s.Kind == Measure {
				windows++
			}
			cursor = s.End
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if cursor != p.Probes || windows != 3 {
		t.Fatalf("run covered [0, %d) with %d windows, want [0, %d) with 3", cursor, windows, p.Probes)
	}
}

func TestReportVerify(t *testing.T) {
	r := NewReport(NewPlan(1000, 4, 10, 40))
	r.Add("a cycles-per-tuple", []float64{10, 12, 11, 13})
	r.Add("b speedup", []float64{2, 2, 2, 2})
	if err := r.Verify(map[string]float64{"a cycles-per-tuple": 11.5, "b speedup": 2}); err != nil {
		t.Fatalf("in-interval values must verify: %v", err)
	}
	if err := r.Verify(map[string]float64{"a cycles-per-tuple": 50}); err == nil {
		t.Fatal("out-of-interval value must fail verification")
	}
	if err := r.Verify(map[string]float64{"unknown": 1}); err == nil {
		t.Fatal("verification with no matching metric must fail (vacuous)")
	}
	var nilReport *Report
	if err := nilReport.Verify(map[string]float64{"a": 1}); err == nil {
		t.Fatal("nil report must fail verification")
	}
}

func TestReportMerge(t *testing.T) {
	base := NewReport(NewPlan(1000, 2, 0, 10))
	q := NewReport(NewPlan(1000, 2, 0, 10))
	q.FingerprintVerified = true
	q.Add("cycles-per-tuple", []float64{3, 5})
	base.Merge("q19: ", q)
	if !base.FingerprintVerified {
		t.Error("merge must propagate fingerprint verification")
	}
	if m, ok := base.Metric("q19: cycles-per-tuple"); !ok || m.Mean != 4 {
		t.Errorf("merged metric missing or wrong: %+v ok=%v", m, ok)
	}
}
