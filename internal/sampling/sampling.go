// Package sampling implements SMARTS-style systematic sampling for the
// simulator (Wunderlich et al., ISCA'03): instead of simulating every probe
// on the cycle-interleaved core, a run measures short detailed windows at
// evenly spaced offsets in the probe stream and fast-forwards the spans
// between them functionally — reference traversals warm cache tags and TLB
// pages (mem.WarmBlock) but charge no cycles. Per-window cycle metrics feed
// the estimator in sampling/stats, which reports each headline metric with
// a 95% confidence interval.
//
// The package is deliberately free of simulator dependencies: it plans
// which probe index ranges run in which mode and aggregates the window
// observations; internal/sim owns the execution. Window placement is
// systematic — offsets are a pure function of (probes, windows), never
// drawn from randomness — so a plan, and everything estimated from it, is
// byte-identical across runs and parallelism levels. The package sits
// inside the nondet lint scope to keep it that way.
package sampling

import "fmt"

// SpanKind classifies one contiguous probe index range of a plan.
type SpanKind uint8

const (
	// FastForward spans execute only functional state updates: the
	// reference traversal's matches join the output stream and the
	// addresses it touches warm the hierarchy, but no cycles elapse.
	FastForward SpanKind = iota
	// Warmup spans run detailed but unmeasured, re-establishing the
	// microarchitectural state (MSHR occupancy, queue fill, LRU recency)
	// that functional warming cannot reproduce before measurement starts.
	Warmup
	// Measure spans run detailed and contribute one observation per
	// window to the estimator.
	Measure
)

// String names the kind.
func (k SpanKind) String() string {
	switch k {
	case FastForward:
		return "fast-forward"
	case Warmup:
		return "warmup"
	case Measure:
		return "measure"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Span is one contiguous probe index range [Start, End) of a plan.
type Span struct {
	Kind SpanKind
	// Start and End delimit the probe index range, half-open.
	Start, End uint64
	// Window is the measured-window ordinal this span belongs to
	// (warmup span j precedes measure span j); -1 for fast-forward spans.
	Window int
}

// Len returns the span's probe count.
func (s Span) Len() uint64 { return s.End - s.Start }

// Plan partitions a probe stream of a known length into spans. Spans are
// contiguous, non-overlapping, in ascending probe order, and cover
// [0, Probes) exactly.
type Plan struct {
	// Probes is the total probe-stream length the plan covers.
	Probes uint64
	// Windows is the number of measured windows (1 for a full plan).
	Windows int
	// Warmup and Period are the per-window detailed-unmeasured and
	// measured probe counts (for a full plan: 0 and Probes).
	Warmup, Period uint64
	// Degraded reports that sampling was requested but the stream is too
	// short for the requested windows, so the plan fell back to full
	// detailed simulation (one window, zero-width interval).
	Degraded bool
	// Spans is the execution schedule.
	Spans []Span
}

// Full returns the plan that simulates every probe detailed and measured:
// one window spanning the whole stream.
func Full(probes uint64) Plan {
	p := Plan{Probes: probes, Windows: 1, Period: probes}
	if probes > 0 {
		p.Spans = []Span{{Kind: Measure, Start: 0, End: probes, Window: 0}}
	}
	return p
}

// NewPlan builds a systematic sampling plan: the stream is divided into
// `windows` equal strides, and each stride's last warmup+period probes form
// one detailed window (warmup probes re-establish microarchitectural state,
// the next period probes are measured), with fast-forward spans filling the
// stride prefixes. Anchoring windows at stride ends — window j ends at
// floor((j+1)*probes/windows) — makes every plan open with a fast-forward
// span, whose warm state is a pure function of the probe stream and can be
// checkpointed (internal/sim caches it across design points and processes).
// If a stride is too short to hold a window — windows > probes, or
// warmup+period > floor(probes/windows) — the plan degrades to full
// detailed simulation with Degraded set, which the estimator reports as a
// single window with a zero-width confidence interval.
func NewPlan(probes uint64, windows int, warmup, period uint64) Plan {
	if windows <= 0 {
		return Full(probes)
	}
	if period == 0 || uint64(windows) > probes || warmup+period > probes/uint64(windows) {
		p := Full(probes)
		p.Degraded = true
		return p
	}
	p := Plan{Probes: probes, Windows: windows, Warmup: warmup, Period: period}
	var cursor uint64
	for j := 0; j < windows; j++ {
		end := uint64(j+1) * probes / uint64(windows)
		start := end - warmup - period
		// warmup+period <= floor(probes/windows) bounds the window by its
		// own stride (strides are floor or ceil of probes/windows long), so
		// spans never overlap and cursor <= start always holds.
		if cursor < start {
			p.Spans = append(p.Spans, Span{Kind: FastForward, Start: cursor, End: start, Window: -1})
		}
		if warmup > 0 {
			p.Spans = append(p.Spans, Span{Kind: Warmup, Start: start, End: start + warmup, Window: j})
		}
		p.Spans = append(p.Spans, Span{Kind: Measure, Start: start + warmup, End: end, Window: j})
		cursor = end
	}
	return p
}

// Sampled reports whether the plan actually fast-forwards anything (false
// for full and degraded plans).
func (p Plan) Sampled() bool {
	for _, s := range p.Spans {
		if s.Kind == FastForward {
			return true
		}
	}
	return false
}

// MeasuredProbes returns the number of probes inside measure spans.
func (p Plan) MeasuredProbes() uint64 {
	var n uint64
	for _, s := range p.Spans {
		if s.Kind == Measure {
			n += s.Len()
		}
	}
	return n
}

// DetailedProbes returns the number of probes simulated in detail
// (warmup + measure spans).
func (p Plan) DetailedProbes() uint64 {
	var n uint64
	for _, s := range p.Spans {
		if s.Kind != FastForward {
			n += s.Len()
		}
	}
	return n
}

// Run drives the plan in probe order: ff for fast-forward spans, detailed
// for warmup and measure spans. Execution is strictly sequential — each
// detailed span resumes at the cycle the previous one ended — so the
// callbacks must not be invoked concurrently.
func (p Plan) Run(ff func(Span) error, detailed func(Span) error) error {
	for _, s := range p.Spans {
		cb := detailed
		if s.Kind == FastForward {
			cb = ff
		}
		if err := cb(s); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks the plan's structural invariants (contiguous, ordered,
// covering). It exists for tests and debugging; NewPlan's output always
// passes.
func (p Plan) Validate() error {
	var cursor uint64
	for i, s := range p.Spans {
		if s.Start != cursor {
			return fmt.Errorf("sampling: span %d starts at %d, want %d (gap or overlap)", i, s.Start, cursor)
		}
		if s.End <= s.Start {
			return fmt.Errorf("sampling: span %d is empty or inverted [%d, %d)", i, s.Start, s.End)
		}
		cursor = s.End
	}
	if cursor != p.Probes {
		return fmt.Errorf("sampling: spans cover [0, %d), want [0, %d)", cursor, p.Probes)
	}
	return nil
}
