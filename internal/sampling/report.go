package sampling

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"widx/internal/sampling/stats"
)

// Metric is one estimated headline quantity: its name (stable across the
// sampled run and the full run it estimates, so the two can be compared by
// name) and its 95% confidence estimate.
type Metric struct {
	Name string `json:"name"`
	stats.Estimate
}

// Report is the `sampling` block of a manifest: the plan the run executed
// and the confidence estimates of its headline metrics. A nil report means
// sampling was off, and the manifest field is omitted so unsampled
// manifests stay byte-identical to pre-sampling ones.
type Report struct {
	// Windows, Warmup and Period echo the executed plan.
	Windows int    `json:"windows"`
	Warmup  uint64 `json:"warmup"`
	Period  uint64 `json:"period"`
	// TotalProbes and MeasuredProbes size the sample: the full stream
	// length and the portion measured in detail.
	TotalProbes    uint64 `json:"total_probes"`
	MeasuredProbes uint64 `json:"measured_probes"`
	// Degraded reports the stream was too short for the requested windows
	// and the run fell back to full detailed simulation.
	Degraded bool `json:"degraded,omitempty"`
	// FingerprintVerified reports that the combined match stream —
	// reference matches across fast-forward spans, simulated matches
	// across detailed spans — fingerprint-matched the full software
	// reference. A mismatch is a hard run error, so a report that exists
	// always carries true for design points that have a match stream;
	// false means the run had none to check (baseline-only runs).
	FingerprintVerified bool `json:"fingerprint_verified"`
	// Metrics are the per-design-point estimates, in report order.
	Metrics []Metric `json:"metrics"`
}

// NewReport seeds a report from an executed plan.
func NewReport(p Plan) *Report {
	return &Report{
		Windows:        p.Windows,
		Warmup:         p.Warmup,
		Period:         p.Period,
		TotalProbes:    p.Probes,
		MeasuredProbes: p.MeasuredProbes(),
		Degraded:       p.Degraded,
	}
}

// Add appends one metric estimated from its per-window observations.
func (r *Report) Add(name string, windows []float64) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Estimate: stats.Estimate95(windows)})
}

// Metric returns the named metric.
func (r *Report) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Merge appends another report's metrics under a name prefix, keeping the
// plan header of r. It is how a suite-level report aggregates per-query
// reports; the parts must come from runs of the same plan shape.
func (r *Report) Merge(prefix string, o *Report) {
	if o == nil {
		return
	}
	r.FingerprintVerified = r.FingerprintVerified || o.FingerprintVerified
	for _, m := range o.Metrics {
		m.Name = prefix + m.Name
		r.Metrics = append(r.Metrics, m)
	}
}

// verifyGuardBand widens the Verify acceptance beyond the confidence
// interval by a small relative margin. The interval models sampling
// variance only; functional fast-forward leaves a residual systematic bias
// (warm state installed by reference traversal instead of true detailed
// history) that detailed warmup shrinks but cannot erase, and with very
// stable windows the interval can be narrower than that bias. The guard
// band covers it: a full-run value passes when it lies inside the interval
// or within this fraction of the estimate.
const verifyGuardBand = 0.02

// Verify checks every reported metric that has a full-run counterpart in
// `full` (keyed by metric name) against its confidence interval — widened
// by verifyGuardBand — and returns an error naming each metric whose
// full-run value falls outside. It is the -sampling-verify contract: the
// sampled estimate must cover the value the full-detail run computes. At
// least one metric must match by name, otherwise the verification would be
// vacuous.
func (r *Report) Verify(full map[string]float64) error {
	if r == nil {
		return fmt.Errorf("sampling: no sampling report to verify")
	}
	checked := 0
	var failures []string
	for _, m := range r.Metrics {
		v, ok := full[m.Name]
		if !ok {
			continue
		}
		checked++
		guard := verifyGuardBand * math.Abs(m.Mean)
		if !m.Contains(v) && !(v >= m.Low-guard && v <= m.High+guard) {
			failures = append(failures, fmt.Sprintf("%s: full-run value %.6g outside the sampled 95%% CI [%.6g, %.6g] (mean %.6g)",
				m.Name, v, m.Low, m.High, m.Mean))
		}
	}
	if checked == 0 {
		names := make([]string, 0, len(full))
		for k := range full {
			names = append(names, k)
		}
		sort.Strings(names)
		return fmt.Errorf("sampling: verify matched no metrics by name (report has %d, full run offered %v)", len(r.Metrics), names)
	}
	if len(failures) > 0 {
		return fmt.Errorf("sampling: %d of %d verified metrics outside their confidence intervals:\n  %s",
			len(failures), checked, strings.Join(failures, "\n  "))
	}
	return nil
}

// Text renders the report as the "Sampled estimates" section of a text
// report: the plan header plus one line per metric.
func (r *Report) Text() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Sampled estimates (95%% CI, Student-t): %d windows x %d measured (+%d warmup) of %d probes",
		r.Windows, r.Period, r.Warmup, r.TotalProbes)
	if r.Degraded {
		b.WriteString(" — DEGRADED to full detailed simulation (stream too short)")
	}
	b.WriteString("\n")
	if r.FingerprintVerified {
		b.WriteString("match-stream fingerprint verified against the software reference\n")
	}
	for _, m := range r.Metrics {
		fmt.Fprintf(&b, "  %-44s %12.4f ± %.4f  [%12.4f, %12.4f]  (±%.2f%%)\n",
			m.Name, m.Mean, m.HalfWidth, m.Low, m.High, 100*m.RelativeHalfWidth())
	}
	return b.String()
}
