package mem

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.FrequencyGHz != 2.0 {
		t.Error("frequency should be 2 GHz")
	}
	if cfg.L1SizeBytes != 32*1024 || cfg.L1Ports != 2 || cfg.L1MSHRs != 10 ||
		cfg.L1BlockBytes != 64 || cfg.L1LatencyCyc != 2 {
		t.Error("L1 parameters do not match Table 2")
	}
	if cfg.LLCSizeBytes != 4*1024*1024 || cfg.LLCLatencyCyc != 6 {
		t.Error("LLC parameters do not match Table 2")
	}
	if cfg.MemControllers != 2 || cfg.MemPeakGBs != 12.8 || cfg.MemLatencyNs != 45 {
		t.Error("memory parameters do not match Table 2")
	}
	if cfg.TLBInFlight != 2 {
		t.Error("TLB in-flight translations should be 2")
	}
	if cfg.InterconnectCyc != 4 {
		t.Error("crossbar latency should be 4 cycles")
	}
	if got := cfg.MemLatencyCycles(); got != 90 {
		t.Errorf("45ns at 2GHz should be 90 cycles, got %d", got)
	}
	// 12.8 GB/s * 0.7 = 8.96 GB/s -> 140M blocks/s -> ~14.3 cycles/block.
	if got := cfg.MemServiceIntervalCycles(); got < 14 || got > 15 {
		t.Errorf("service interval = %v cycles, want ~14.3", got)
	}
}

func TestConfigValidateRejectsBadConfigs(t *testing.T) {
	mutations := map[string]func(*Config){
		"freq":       func(c *Config) { c.FrequencyGHz = 0 },
		"l1 size":    func(c *Config) { c.L1SizeBytes = 0 },
		"block":      func(c *Config) { c.L1BlockBytes = 60 },
		"assoc":      func(c *Config) { c.L1Assoc = 0 },
		"divide":     func(c *Config) { c.L1SizeBytes = 1000 },
		"llc divide": func(c *Config) { c.LLCSizeBytes = 777 },
		"ports":      func(c *Config) { c.L1Ports = 0 },
		"mshrs":      func(c *Config) { c.L1MSHRs = 0 },
		"mcs":        func(c *Config) { c.MemControllers = 0 },
		"bw":         func(c *Config) { c.MemEffectiveShare = 1.5 },
		"tlb":        func(c *Config) { c.TLBEntries = 0 },
		"page":       func(c *Config) { c.PageBytes = 1000 },
	}
	for name, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	bad := DefaultConfig()
	bad.L1MSHRs = 0
	defer func() {
		if recover() == nil {
			t.Error("NewHierarchy should panic on invalid config")
		}
	}()
	NewHierarchy(bad)
}

func TestAccessL1Hit(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	addr := uint64(0x10000)
	h.WarmBlock(addr)
	res := h.Access(addr, 100, Load)
	if res.Level != LevelL1 {
		t.Fatalf("level = %v, want L1", res.Level)
	}
	if res.CompleteCycle != 102 {
		t.Fatalf("complete = %d, want 102 (2-cycle load-to-use)", res.CompleteCycle)
	}
	if res.TLBMiss {
		t.Fatal("warmed page should not TLB miss")
	}
	s := h.Stats()
	if s.L1Hits != 1 || s.Loads != 1 {
		t.Fatalf("stats wrong: %+v", s)
	}
}

func TestAccessLLCHitAndMemoryMiss(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	addr := uint64(0x200000)
	h.WarmLLCOnly(addr)
	res := h.Access(addr, 0, Load)
	if res.Level != LevelLLC {
		t.Fatalf("level = %v, want LLC", res.Level)
	}
	wantLLC := res.IssueCycle + cfg.L1LatencyCyc + cfg.InterconnectCyc + cfg.LLCLatencyCyc
	if res.CompleteCycle != wantLLC {
		t.Fatalf("LLC complete = %d, want %d", res.CompleteCycle, wantLLC)
	}

	// A cold address goes to memory and pays the DRAM latency.
	h2 := NewHierarchy(cfg)
	h2.TLB().WarmPage(0x900000)
	res2 := h2.Access(0x900000, 0, Load)
	if res2.Level != LevelMemory {
		t.Fatalf("level = %v, want Memory", res2.Level)
	}
	if res2.CompleteCycle < cfg.MemLatencyCycles() {
		t.Fatalf("memory access too fast: %d cycles", res2.CompleteCycle)
	}
	if h2.Stats().MemBlocks != 1 {
		t.Fatal("off-chip block transfer not counted")
	}
	// After the fill, the same block hits in L1.
	res3 := h2.Access(0x900000, res2.CompleteCycle+10, Load)
	if res3.Level != LevelL1 {
		t.Fatalf("post-fill access level = %v, want L1", res3.Level)
	}
}

func TestMissCombining(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	h.TLB().WarmPage(0x500000)
	// Two accesses to the same block issued close together: the second should
	// combine with the outstanding miss and complete at the same fill time.
	r1 := h.Access(0x500000, 0, Load)
	r2 := h.Access(0x500008, 1, Load)
	if r2.Level != LevelCombined {
		t.Fatalf("second access level = %v, want Combined", r2.Level)
	}
	if r2.CompleteCycle != r1.CompleteCycle {
		t.Fatalf("combined miss should complete with the primary: %d vs %d",
			r2.CompleteCycle, r1.CompleteCycle)
	}
	if h.Stats().CombinedMisses != 1 {
		t.Fatal("combined miss not counted")
	}
	if h.Stats().MemBlocks != 1 {
		t.Fatal("combined miss should not generate extra off-chip traffic")
	}
}

func TestMSHRLimitStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1MSHRs = 2
	h := NewHierarchy(cfg)
	// Issue 3 misses to distinct blocks at cycle 0; the third must wait for
	// an MSHR to free.
	for i := uint64(0); i < 64; i += 8 {
		h.TLB().WarmPage(0x700000 + i*4096)
	}
	r1 := h.Access(0x700000, 0, Load)
	_ = h.Access(0x710000, 0, Load)
	r3 := h.Access(0x720000, 0, Load)
	if r3.IssueCycle < r1.CompleteCycle && h.Stats().MSHRStallCycles == 0 {
		t.Fatalf("third miss should have stalled for an MSHR: %+v, stalls=%d",
			r3, h.Stats().MSHRStallCycles)
	}
	if h.Stats().MSHRStallCycles == 0 {
		t.Fatal("MSHR stall cycles not accounted")
	}
}

func TestL1PortContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Ports = 1
	h := NewHierarchy(cfg)
	addr := uint64(0x30000)
	h.WarmBlock(addr)
	h.WarmBlock(addr + 64)
	h.WarmBlock(addr + 128)
	r1 := h.Access(addr, 50, Load)
	r2 := h.Access(addr+64, 50, Load)
	r3 := h.Access(addr+128, 50, Load)
	if r1.IssueCycle != 50 || r2.IssueCycle != 51 || r3.IssueCycle != 52 {
		t.Fatalf("single port should serialize issues: %d %d %d",
			r1.IssueCycle, r2.IssueCycle, r3.IssueCycle)
	}
	if h.Stats().PortStallCycles == 0 {
		t.Fatal("port stalls not accounted")
	}
	// With two ports, two of the three can issue in the same cycle.
	h2 := NewHierarchy(DefaultConfig())
	h2.WarmBlock(addr)
	h2.WarmBlock(addr + 64)
	ra := h2.Access(addr, 50, Load)
	rb := h2.Access(addr+64, 50, Load)
	if ra.IssueCycle != 50 || rb.IssueCycle != 50 {
		t.Fatalf("two ports should allow two same-cycle issues: %d %d", ra.IssueCycle, rb.IssueCycle)
	}
}

func TestMemoryBandwidthThrottling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemControllers = 1
	h := NewHierarchy(cfg)
	// Stream of cold blocks all issued at cycle 0: completions must spread
	// out by at least the service interval.
	var prev uint64
	for i := 0; i < 20; i++ {
		addr := uint64(0x4000000) + uint64(i)*64
		h.TLB().WarmPage(addr)
		r := h.Access(addr, 0, Load)
		if i > 0 && r.CompleteCycle <= prev {
			t.Fatalf("block %d completed at %d, not after previous %d", i, r.CompleteCycle, prev)
		}
		prev = r.CompleteCycle
	}
	// 20 blocks at ~14.3 cycles per block is ~286 cycles of service on top of
	// the 90-cycle latency; ensure the last completion reflects queuing.
	if prev < 90+19*14 {
		t.Fatalf("bandwidth throttling too weak: last completion %d", prev)
	}
}

func TestStoreAndPrefetchDoNotBlock(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.TLB().WarmPage(0x800000)
	h.TLB().WarmPage(0x900000)
	st := h.Access(0x800000, 10, Store)
	if st.CompleteCycle != st.IssueCycle+1 {
		t.Fatalf("store should retire into the store buffer: %+v", st)
	}
	pf := h.Access(0x900000, 10, Prefetch)
	if pf.CompleteCycle != pf.IssueCycle+1 {
		t.Fatalf("prefetch should not block the issuer: %+v", pf)
	}
	// But the prefetched block is now resident, so a later load hits.
	ld := h.Access(0x900000, 500, Load)
	if ld.Level != LevelL1 {
		t.Fatalf("post-prefetch load level = %v, want L1", ld.Level)
	}
	s := h.Stats()
	if s.Stores != 1 || s.Prefetches != 1 || s.Loads != 1 {
		t.Fatalf("type counters wrong: %+v", s)
	}
}

func TestTLBMissDelaysAccess(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	r := h.Access(0xABC000, 100, Load)
	if !r.TLBMiss {
		t.Fatal("cold page should TLB miss")
	}
	if r.TLBReadyCycle != 100+cfg.TLBWalkCyc {
		t.Fatalf("TLB ready = %d, want %d", r.TLBReadyCycle, 100+cfg.TLBWalkCyc)
	}
	if r.IssueCycle < r.TLBReadyCycle {
		t.Fatal("access issued before translation was ready")
	}
	if h.Stats().TLBMisses != 1 {
		t.Fatal("TLB miss not counted")
	}
}

func TestStatsRatiosAndAMAT(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	// No accesses: AMAT equals the L1 latency and ratios are zero.
	if h.AMAT() != 2 {
		t.Fatalf("idle AMAT = %v", h.AMAT())
	}
	var s Stats
	if s.L1MissRatio() != 0 || s.LLCMissRatio() != 0 {
		t.Fatal("zero stats should have zero ratios")
	}

	h.WarmBlock(0x1000)
	h.Access(0x1000, 0, Load)   // L1 hit
	h.Access(0x555000, 0, Load) // memory miss
	st := h.Stats()
	if st.L1MissRatio() != 0.5 {
		t.Fatalf("L1 miss ratio = %v", st.L1MissRatio())
	}
	if st.LLCMissRatio() != 1.0 {
		t.Fatalf("LLC miss ratio = %v", st.LLCMissRatio())
	}
	amat := h.AMAT()
	if amat <= 2 || amat > 200 {
		t.Fatalf("AMAT = %v out of plausible range", amat)
	}

	h.ResetCounters()
	if h.Stats().Loads != 0 || h.L1().Hits() != 0 {
		t.Fatal("ResetCounters incomplete")
	}
}

func TestResultLatency(t *testing.T) {
	r := Result{CompleteCycle: 150}
	if r.Latency(100) != 50 {
		t.Fatalf("latency = %d", r.Latency(100))
	}
	if r.Latency(200) != 0 {
		t.Fatal("latency should clamp at zero")
	}
}

func TestLevelAndTypeStrings(t *testing.T) {
	if LevelL1.String() != "L1" || LevelLLC.String() != "LLC" ||
		LevelMemory.String() != "Memory" || LevelCombined.String() != "Combined" {
		t.Fatal("level names wrong")
	}
	if Load.String() != "load" || Store.String() != "store" || Prefetch.String() != "prefetch" {
		t.Fatal("type names wrong")
	}
	if Level(9).String() == "" || AccessType(9).String() == "" {
		t.Fatal("unknown values should still format")
	}
}

// Property: completion never precedes issue, and issue never precedes the
// requested cycle, for arbitrary interleavings of addresses and cycles.
func TestPropertyMonotonicTiming(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	var cycle uint64
	f := func(addrRaw uint32, gap uint8, kind uint8) bool {
		cycle += uint64(gap)
		addr := uint64(addrRaw) * 8
		typ := AccessType(kind % 3)
		r := h.Access(addr, cycle, typ)
		if r.IssueCycle < cycle {
			return false
		}
		return r.CompleteCycle >= r.IssueCycle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeatedly accessing a small working set converges to an all-hit
// steady state regardless of the initial addresses chosen.
func TestPropertyLocalityConverges(t *testing.T) {
	f := func(seed uint16) bool {
		h := NewHierarchy(DefaultConfig())
		base := uint64(seed)*4096 + 0x100000
		cycle := uint64(0)
		// Two passes to warm, then measure the third.
		for pass := 0; pass < 2; pass++ {
			for off := uint64(0); off < 8*1024; off += 64 {
				r := h.Access(base+off, cycle, Load)
				cycle = r.CompleteCycle + 1
			}
		}
		h.ResetCounters()
		for off := uint64(0); off < 8*1024; off += 64 {
			r := h.Access(base+off, cycle, Load)
			cycle = r.CompleteCycle + 1
		}
		return h.Stats().L1MissRatio() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
