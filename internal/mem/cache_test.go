package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheGeometry(t *testing.T) {
	c := NewCache("L1", 32*1024, 8, 64)
	if c.Sets() != 64 || c.Ways() != 8 {
		t.Fatalf("geometry wrong: %d sets %d ways", c.Sets(), c.Ways())
	}
	for name, f := range map[string]func(){
		"zero size":   func() { NewCache("x", 0, 8, 64) },
		"bad divide":  func() { NewCache("x", 1000, 8, 64) },
		"zero assoc":  func() { NewCache("x", 1024, 0, 64) },
		"nonpow sets": func() { NewCache("x", 3*64*2, 2, 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache("t", 1024, 2, 64) // 8 sets, 2 ways
	if c.Lookup(0x1000) {
		t.Fatal("cold lookup should miss")
	}
	c.Insert(0x1000)
	if !c.Lookup(0x1000) {
		t.Fatal("lookup after insert should hit")
	}
	// Same block, different offset.
	if !c.Lookup(0x103F) {
		t.Fatal("same-block offset lookup should hit")
	}
	// Different block.
	if c.Lookup(0x1040) {
		t.Fatal("different block should miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("counters wrong: %d hits %d misses", c.Hits(), c.Misses())
	}
	if c.MissRatio() != 0.5 {
		t.Fatalf("miss ratio = %v", c.MissRatio())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("t", 2*64*2, 2, 64) // 2 sets, 2 ways
	// Three blocks mapping to the same set (set stride is 2 blocks = 128B).
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Insert(a)
	c.Insert(b)
	c.Lookup(a) // make a MRU
	evicted, did := c.Insert(d)
	if !did || evicted != b {
		t.Fatalf("expected b evicted, got %#x (did=%v)", evicted, did)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Fatal("LRU state wrong after eviction")
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d", c.Evictions())
	}
}

func TestCacheInsertExistingRefreshesLRU(t *testing.T) {
	c := NewCache("t", 2*64*2, 2, 64)
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Insert(a)
	c.Insert(b)
	c.Insert(a) // refresh, no eviction
	if ev, did := c.Insert(d); !did || ev != b {
		t.Fatalf("expected b evicted after refreshing a, got %#x", ev)
	}
}

func TestCacheInvalidateAndReset(t *testing.T) {
	c := NewCache("t", 1024, 2, 64)
	c.Insert(0x40)
	if !c.Invalidate(0x40) || c.Contains(0x40) {
		t.Fatal("invalidate failed")
	}
	if c.Invalidate(0x40) {
		t.Fatal("double invalidate reported success")
	}
	c.Insert(0x40)
	c.Lookup(0x40)
	c.Reset()
	if c.Contains(0x40) || c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("reset incomplete")
	}
	c.Insert(0x40)
	c.Lookup(0x40)
	c.ResetCounters()
	if !c.Contains(0x40) || c.Hits() != 0 {
		t.Fatal("ResetCounters should keep content and clear counters")
	}
}

// Property: a cache never holds more blocks per set than its associativity,
// and a block that was just inserted is always present.
func TestPropertyCacheInsertPresent(t *testing.T) {
	c := NewCache("t", 4*1024, 4, 64)
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			addr := uint64(a)
			c.Insert(addr)
			if !c.Contains(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: working sets no larger than one set's associativity (all mapping
// to distinct sets or within associativity) never evict — i.e. an L1-resident
// index never misses after warm-up. This is the mechanism behind the paper's
// TPC-DS L1-resident queries.
func TestPropertySmallWorkingSetAlwaysHits(t *testing.T) {
	c := NewCache("t", 32*1024, 8, 64)
	// 16 KB working set < 32 KB cache.
	var addrs []uint64
	for a := uint64(0); a < 16*1024; a += 64 {
		addrs = append(addrs, a)
		c.Insert(a)
	}
	c.ResetCounters()
	for round := 0; round < 3; round++ {
		for _, a := range addrs {
			if !c.Lookup(a) {
				t.Fatalf("warm working-set lookup missed at %#x", a)
			}
		}
	}
	if c.MissRatio() != 0 {
		t.Fatalf("warm miss ratio = %v", c.MissRatio())
	}
}

func TestTLBHitMissAndLRU(t *testing.T) {
	tlb := NewTLB(2, 4096, 40, 2)
	// First access misses, pays the walk.
	ready, miss := tlb.Translate(0x1000, 100)
	if !miss || ready != 140 {
		t.Fatalf("first access: ready=%d miss=%v", ready, miss)
	}
	// Same page now hits.
	ready, miss = tlb.Translate(0x1800, 200)
	if miss || ready != 200 {
		t.Fatalf("same page: ready=%d miss=%v", ready, miss)
	}
	// Two more distinct pages evict the LRU page (0x1000's page stays MRU
	// because of the second access... fill pages 2 and 3, page 1 evicted).
	tlb.Translate(0x2000, 300)
	tlb.Translate(0x3000, 400)
	_, miss = tlb.Translate(0x1000, 500)
	if !miss {
		t.Fatal("evicted page should miss")
	}
	if tlb.Hits() != 1 || tlb.Misses() != 4 {
		t.Fatalf("counters: %d hits %d misses", tlb.Hits(), tlb.Misses())
	}
	if tlb.MissRatio() != 0.8 {
		t.Fatalf("miss ratio = %v", tlb.MissRatio())
	}
}

func TestTLBInFlightLimit(t *testing.T) {
	tlb := NewTLB(64, 4096, 40, 2)
	// Three misses issued at the same cycle: the third must wait for a slot.
	r1, _ := tlb.Translate(0x10000, 0)
	r2, _ := tlb.Translate(0x20000, 0)
	r3, _ := tlb.Translate(0x30000, 0)
	if r1 != 40 || r2 != 40 {
		t.Fatalf("first two walks should finish at 40: %d %d", r1, r2)
	}
	if r3 != 80 {
		t.Fatalf("third walk should serialize behind a slot: %d", r3)
	}
}

func TestTLBWarmAndReset(t *testing.T) {
	tlb := NewTLB(8, 4096, 40, 2)
	tlb.WarmPage(0x5000)
	if _, miss := tlb.Translate(0x5000, 10); miss {
		t.Fatal("warmed page should hit")
	}
	tlb.ResetCounters()
	if tlb.Hits() != 0 || tlb.Misses() != 0 {
		t.Fatal("ResetCounters failed")
	}
	tlb.Reset()
	if _, miss := tlb.Translate(0x5000, 10); !miss {
		t.Fatal("Reset should clear content")
	}
	if tlb.MissRatio() != 1 {
		t.Fatalf("miss ratio after reset = %v", tlb.MissRatio())
	}
}

func TestTLBBadParams(t *testing.T) {
	for name, f := range map[string]func(){
		"zero entries": func() { NewTLB(0, 4096, 40, 2) },
		"bad page":     func() { NewTLB(8, 1000, 40, 2) },
		"zero flight":  func() { NewTLB(8, 4096, 40, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestInsertWaysPartition pins the way-partitioning mechanics: allocation
// and victim selection stay inside the mask, residency outside the mask is
// only LRU-refreshed, and a zero mask reproduces Insert exactly.
func TestInsertWaysPartition(t *testing.T) {
	// One set of 4 ways keeps the geometry trivial.
	c := NewCache("llc", 4*64, 4, 64)
	full := []uint64{0x0000, 0x1000, 0x2000, 0x3000}
	for _, a := range full {
		c.Insert(a)
	}
	// A masked insert of a new block may only evict from way 0 (mask 0b1):
	// the LRU way overall is way 0 here, but fill way 3 first to force the
	// overall-LRU to differ from the partition LRU.
	c.Lookup(full[0]) // refresh way 0; overall LRU is now way 1
	evicted, did := c.InsertWays(0x4000, 0b0001)
	if !did || evicted != full[0] {
		t.Fatalf("partitioned insert should evict its own way 0 (%#x), got %#x (evict=%v)",
			full[0], evicted, did)
	}
	for i, a := range full[1:] {
		if !c.Contains(a) {
			t.Fatalf("partition-external way %d was evicted (%#x)", i+1, a)
		}
	}
	// A block resident outside the mask is refreshed, not duplicated.
	if ev, did := c.InsertWays(full[2], 0b0001); did || ev != 0 {
		t.Fatal("re-inserting a resident block must not allocate")
	}
	if !c.Contains(0x4000) || !c.Contains(full[2]) {
		t.Fatal("refresh displaced a block")
	}
	// Free ways are honored inside the mask only.
	c2 := NewCache("llc", 4*64, 4, 64)
	c2.InsertWays(0x5000, 0b1000)
	c2.InsertWays(0x6000, 0b1000) // must evict 0x5000 from way 3, not take ways 0-2
	if c2.Contains(0x5000) {
		t.Fatal("single-way partition kept two blocks")
	}
	if !c2.Contains(0x6000) {
		t.Fatal("masked insert lost the new block")
	}
	// Zero mask behaves exactly like Insert.
	c3, c4 := NewCache("a", 4*64, 4, 64), NewCache("b", 4*64, 4, 64)
	seq := []uint64{0, 0x1000, 0x2000, 0x3000, 0x4000, 0x1000, 0x5000}
	for _, a := range seq {
		e3, d3 := c3.Insert(a)
		e4, d4 := c4.InsertWays(a, 0)
		if e3 != e4 || d3 != d4 {
			t.Fatalf("Insert and InsertWays(0) diverge at %#x: (%#x,%v) vs (%#x,%v)", a, e3, d3, e4, d4)
		}
	}
}
