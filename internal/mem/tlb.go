package mem

// TLB models the host core's data TLB, which Widx shares instead of having
// its own translation hardware (Section 4.3). Two properties matter to the
// timing model:
//
//  1. a TLB miss costs a page-walk latency before the memory access can
//     issue, and
//  2. only a small number of translations may be in flight at once (2 in
//     Table 2), so a burst of misses from several walkers serializes.
type TLB struct {
	entries  int
	walkCyc  uint64
	inFlight int
	pageBits uint

	// Fully associative LRU over virtual page numbers.
	pages map[uint64]uint64 // vpn -> last-use clock
	clock uint64

	// Completion cycles of outstanding page walks (bounded by inFlight).
	walks []uint64

	hits   uint64
	misses uint64
}

// NewTLB builds a TLB with the given entry count, page size, walk latency and
// number of concurrent walks.
func NewTLB(entries, pageBytes int, walkCyc uint64, inFlight int) *TLB {
	if entries <= 0 || inFlight <= 0 || pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("mem: invalid TLB parameters")
	}
	bits := uint(0)
	for 1<<bits < pageBytes {
		bits++
	}
	return &TLB{
		entries:  entries,
		walkCyc:  walkCyc,
		inFlight: inFlight,
		pageBits: bits,
		pages:    make(map[uint64]uint64, entries),
	}
}

// Translate models the translation of addr issued at the given cycle.
// It returns the cycle at which the translation is available (equal to cycle
// on a hit) and whether the access missed in the TLB.
func (t *TLB) Translate(addr uint64, cycle uint64) (ready uint64, miss bool) {
	vpn := addr >> t.pageBits
	t.clock++
	if _, ok := t.pages[vpn]; ok {
		t.pages[vpn] = t.clock
		t.hits++
		return cycle, false
	}
	t.misses++

	// A page walk must find a free walk slot: at most inFlight walks may be
	// outstanding, so the walk start is delayed until one finishes.
	start := cycle
	if len(t.walks) >= t.inFlight {
		// Drop finished walks first.
		live := t.walks[:0]
		for _, c := range t.walks {
			if c > cycle {
				live = append(live, c)
			}
		}
		t.walks = live
		if len(t.walks) >= t.inFlight {
			earliest := t.walks[0]
			idx := 0
			for i, c := range t.walks {
				if c < earliest {
					earliest, idx = c, i
				}
			}
			if earliest > start {
				start = earliest
			}
			// Reuse the freed slot.
			t.walks = append(t.walks[:idx], t.walks[idx+1:]...)
		}
	}
	done := start + t.walkCyc
	t.walks = append(t.walks, done)
	t.insert(vpn)
	return done, true
}

// insert adds the page to the TLB, evicting the LRU entry if full.
func (t *TLB) insert(vpn uint64) {
	if len(t.pages) >= t.entries {
		var victim uint64
		oldest := ^uint64(0)
		for p, used := range t.pages {
			if used < oldest {
				oldest, victim = used, p
			}
		}
		delete(t.pages, victim)
	}
	t.pages[vpn] = t.clock
}

// WarmPage pre-installs the translation for addr, used when the simulator
// starts measurement from a warmed state.
func (t *TLB) WarmPage(addr uint64) {
	t.clock++
	t.insert(addr >> t.pageBits)
}

// Hits returns the TLB hit count since the last reset.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the TLB miss count since the last reset.
func (t *TLB) Misses() uint64 { return t.misses }

// MissRatio returns misses / (hits + misses), or 0 with no accesses.
func (t *TLB) MissRatio() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.misses) / float64(total)
}

// ResetCounters clears hit/miss counters but keeps TLB content.
func (t *TLB) ResetCounters() { t.hits, t.misses = 0, 0 }

// Reset clears content, counters and outstanding walks.
func (t *TLB) Reset() {
	t.pages = make(map[uint64]uint64, t.entries)
	t.walks = nil
	t.clock, t.hits, t.misses = 0, 0, 0
}
