package mem

import "math"

// This file is the composable memory-system topology API. The flat Config
// (config.go) describes the symmetric Table 2 machine in one struct; a
// Topology splits the same parameters along the hardware's own seam — the
// resources every agent shares (SharedSpec: LLC, fill buffers, memory
// controllers) versus the resources each agent owns privately (AgentSpec:
// L1-D, L1 ports, per-agent MSHRs, TLB) — so heterogeneous machines (a host
// core next to accelerators with different miss budgets, a way-partitioned
// LLC) are expressed by attaching different AgentSpecs to one SharedSpec.
//
// Config remains the single-struct shorthand: Config.Topology() builds the
// symmetric topology in which every agent uses the same private spec and the
// shared fill-buffer count equals the per-agent MSHR count, which reproduces
// the historical single-pool model cycle for cycle.

// SharedSpec describes the memory-system resources all agents contend for:
// the shared LLC behind the crossbar, the pool of fill buffers that bounds
// concurrently outstanding fills chip-wide, and the memory controllers'
// off-chip bandwidth.
type SharedSpec struct {
	// FrequencyGHz is the chip clock; latencies given in nanoseconds are
	// converted to cycles with it.
	FrequencyGHz float64
	// BlockBytes is the cache block (line) size, shared by every cache
	// level and the off-chip transfer unit.
	BlockBytes int

	// Last-level cache.
	LLCSizeBytes    int
	LLCAssoc        int
	LLCLatencyCyc   uint64 // hit latency, excluding the interconnect hop
	InterconnectCyc uint64 // crossbar latency between an L1 and the LLC

	// FillBuffers bounds the fills concurrently outstanding past the LLC
	// across all agents — the shared tier of the two-tier miss-handling
	// model. Each agent's private MSHRs (AgentSpec.MSHRs) gate its own
	// misses in front of this pool.
	FillBuffers int

	// Main memory.
	MemLatencyNs      float64 // DRAM access latency
	MemControllers    int     // number of memory controllers
	MemPeakGBs        float64 // peak bandwidth per controller (GB/s)
	MemEffectiveShare float64 // achievable fraction of the peak (e.g. 0.7)
}

// AgentSpec describes one agent's private memory-system resources: its
// L1-D, L1 ports, per-agent MSHRs, TLB, and the slice of the shared LLC it
// may allocate into.
type AgentSpec struct {
	// Name labels the agent view (stats attribution, strict-order panics).
	// Empty is replaced with "agentN" in attachment order.
	Name string

	// L1 data cache.
	L1SizeBytes  int
	L1Assoc      int
	L1Ports      int    // concurrent accesses per cycle
	L1LatencyCyc uint64 // load-to-use latency on a hit

	// MSHRs bounds this agent's own concurrently outstanding misses — the
	// private tier of the two-tier miss-handling model. An agent saturating
	// its MSHRs stalls itself without touching the shared fill buffers the
	// other agents allocate from.
	MSHRs int

	// TLB.
	TLBEntries  int
	TLBInFlight int
	TLBWalkCyc  uint64
	PageBytes   int

	// LLCWays restricts the agent's LLC allocations (fills and warm-up
	// inserts) to the lowest LLCWays ways of each set; lookups still hit in
	// any way. 0 means unpartitioned (all ways). Way-partitioning isolates a
	// latency-critical agent's working set from streaming co-runners.
	LLCWays int
}

// Topology is the composable memory-system configuration: one shared level
// plus the private spec agents attach with by default. Heterogeneous agents
// are built by copying Private (or Agent(name)) and overriding fields before
// SharedLevel.NewAgent.
type Topology struct {
	Shared SharedSpec
	// Private is the default per-agent spec — the one Agent(name) hands out
	// and Config-based shorthands attach.
	Private AgentSpec
}

// Agent returns the topology's default private spec labeled with name,
// ready to pass to SharedLevel.NewAgent (override fields for heterogeneous
// agents).
func (t Topology) Agent(name string) AgentSpec {
	a := t.Private
	a.Name = name
	return a
}

// Topology converts the flat configuration into the equivalent symmetric
// topology: every agent gets the same private spec, the shared fill-buffer
// count equals the per-agent MSHR count (the historical single-pool model),
// and the LLC is unpartitioned.
func (c Config) Topology() Topology {
	return Topology{
		Shared: SharedSpec{
			FrequencyGHz:      c.FrequencyGHz,
			BlockBytes:        c.L1BlockBytes,
			LLCSizeBytes:      c.LLCSizeBytes,
			LLCAssoc:          c.LLCAssoc,
			LLCLatencyCyc:     c.LLCLatencyCyc,
			InterconnectCyc:   c.InterconnectCyc,
			FillBuffers:       c.L1MSHRs,
			MemLatencyNs:      c.MemLatencyNs,
			MemControllers:    c.MemControllers,
			MemPeakGBs:        c.MemPeakGBs,
			MemEffectiveShare: c.MemEffectiveShare,
		},
		Private: AgentSpec{
			L1SizeBytes:  c.L1SizeBytes,
			L1Assoc:      c.L1Assoc,
			L1Ports:      c.L1Ports,
			L1LatencyCyc: c.L1LatencyCyc,
			MSHRs:        c.L1MSHRs,
			TLBEntries:   c.TLBEntries,
			TLBInFlight:  c.TLBInFlight,
			TLBWalkCyc:   c.TLBWalkCyc,
			PageBytes:    c.PageBytes,
		},
	}
}

// DefaultTopology returns the Table 2 machine as a topology — what
// DefaultConfig().Topology() builds.
func DefaultTopology() Topology { return DefaultConfig().Topology() }

// MemLatencyCycles converts the DRAM latency into chip cycles.
func (s SharedSpec) MemLatencyCycles() uint64 {
	return uint64(s.MemLatencyNs * s.FrequencyGHz)
}

// MemServiceIntervalCycles returns the minimum number of cycles between
// successive block transfers on one memory controller, derived from the
// effective bandwidth.
func (s SharedSpec) MemServiceIntervalCycles() float64 {
	effBytesPerSec := s.MemPeakGBs * 1e9 * s.MemEffectiveShare
	blocksPerSec := effBytesPerSec / float64(s.BlockBytes)
	cyclesPerSec := s.FrequencyGHz * 1e9
	return cyclesPerSec / blocksPerSec
}

// memServiceSlotCycles is the rounded per-controller transfer-slot width the
// controller schedules actually use.
func (s SharedSpec) memServiceSlotCycles() uint64 {
	interval := uint64(s.MemServiceIntervalCycles() + 0.5)
	if interval == 0 {
		interval = 1
	}
	return interval
}

// MemBandwidthUtilization returns the fraction of the modelled effective
// off-chip bandwidth consumed by transferring `blocks` cache blocks over a
// span of `cycles` cycles, across all controllers.
func (s SharedSpec) MemBandwidthUtilization(blocks, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	maxBlocks := float64(cycles) / float64(s.memServiceSlotCycles()) * float64(s.MemControllers)
	if maxBlocks <= 0 {
		return 0
	}
	return float64(blocks) / maxBlocks
}

// Latency fields are validated against generous physical ceilings: a zero
// latency silently removes a timing term from the model, and a value orders
// of magnitude past real hardware is almost certainly a unit mistake (ns
// where cycles were meant, or vice versa) rather than a design point.
const (
	maxL1LatencyCyc  = 1_000
	maxLLCLatencyCyc = 10_000
	maxXbarCyc       = 10_000
	maxTLBWalkCyc    = 1_000_000
	maxMemLatencyNs  = 100_000 // 100 us
)

// Validate reports shared-level configuration errors.
func (s SharedSpec) Validate() error {
	switch {
	case s.FrequencyGHz <= 0 || math.IsInf(s.FrequencyGHz, 0) || math.IsNaN(s.FrequencyGHz):
		return errConfig("FrequencyGHz must be positive and finite")
	case s.BlockBytes <= 0 || s.BlockBytes&(s.BlockBytes-1) != 0:
		return errConfig("BlockBytes must be a positive power of two")
	case s.LLCSizeBytes <= 0:
		return errConfig("cache sizes must be positive")
	case s.LLCAssoc <= 0:
		return errConfig("associativities must be positive")
	case s.LLCSizeBytes%(s.BlockBytes*s.LLCAssoc) != 0:
		return errConfig("LLC size must be divisible by block size times associativity")
	case s.LLCLatencyCyc == 0 || s.LLCLatencyCyc > maxLLCLatencyCyc:
		return errConfig("LLCLatencyCyc must be in [1, 10000] cycles")
	case s.InterconnectCyc > maxXbarCyc:
		return errConfig("InterconnectCyc is absurdly large")
	case s.FillBuffers <= 0:
		return errConfig("FillBuffers must be positive")
	case s.MemLatencyNs <= 0 || math.IsInf(s.MemLatencyNs, 0) || math.IsNaN(s.MemLatencyNs) || s.MemLatencyNs > maxMemLatencyNs:
		return errConfig("MemLatencyNs must be in (0, 100000] nanoseconds")
	case s.MemControllers <= 0:
		return errConfig("MemControllers must be positive")
	case s.MemPeakGBs <= 0 || s.MemEffectiveShare <= 0 || s.MemEffectiveShare > 1:
		return errConfig("memory bandwidth parameters out of range")
	}
	return nil
}

// Validate reports per-agent configuration errors. The shared spec supplies
// the block size (for L1 geometry) and the LLC associativity (for the way
// partition).
func (a AgentSpec) Validate(shared SharedSpec) error {
	switch {
	case a.L1SizeBytes <= 0:
		return errConfig("cache sizes must be positive")
	case a.L1Assoc <= 0:
		return errConfig("associativities must be positive")
	case a.L1SizeBytes%(shared.BlockBytes*a.L1Assoc) != 0:
		return errConfig("L1 size must be divisible by block size times associativity")
	case a.L1Ports <= 0:
		return errConfig("L1Ports must be positive")
	case a.L1LatencyCyc == 0 || a.L1LatencyCyc > maxL1LatencyCyc:
		return errConfig("L1LatencyCyc must be in [1, 1000] cycles")
	case a.MSHRs <= 0:
		return errConfig("MSHRs must be positive")
	case a.TLBEntries <= 0 || a.TLBInFlight <= 0:
		return errConfig("TLB parameters must be positive")
	case a.TLBWalkCyc == 0 || a.TLBWalkCyc > maxTLBWalkCyc:
		return errConfig("TLBWalkCyc must be in [1, 1000000] cycles")
	case a.PageBytes <= 0 || a.PageBytes&(a.PageBytes-1) != 0:
		return errConfig("PageBytes must be a positive power of two")
	case a.LLCWays < 0 || a.LLCWays > shared.LLCAssoc:
		return errConfig("LLCWays must be in [0, LLC associativity]")
	case a.LLCWays > 0 && shared.LLCAssoc > 64:
		// The allocation mask is a uint64 bitmap over ways; partitioning an
		// LLC wider than 64 ways would silently wrap the mask.
		return errConfig("LLC way partitioning supports at most 64-way LLCs")
	}
	return nil
}

// Validate reports topology errors: the shared spec and the default private
// spec must both be usable.
func (t Topology) Validate() error {
	if err := t.Shared.Validate(); err != nil {
		return err
	}
	return t.Private.Validate(t.Shared)
}

// llcWayMask converts the spec's way allowance into a Cache allocation mask
// over the lowest LLCWays ways (0 = all ways). Partitions deliberately
// anchor at way 0 and therefore overlap: a ways=N spec is a *fence* bounding
// how much of each set the agent may claim, not a disjoint allocation —
// agents with small fences contend among themselves in the low ways while
// the unfenced ways stay exclusive to full-LLC agents. Validate has bounded
// assoc to 64 when a partition is in use, so the shift cannot wrap.
func (a AgentSpec) llcWayMask(assoc int) uint64 {
	if a.LLCWays <= 0 || a.LLCWays >= assoc {
		return 0
	}
	return (uint64(1) << a.LLCWays) - 1
}
