package mem

import (
	"reflect"
	"testing"
)

// fillStatsSentinels returns a Stats whose every field holds a distinct
// sentinel value, assigned by reflection so a newly added field is filled
// (or rejected) without touching this test. It is the runtime twin of the
// statssum analyzer: the static check proves Add and Sub mention every
// field, this one proves the arithmetic actually round-trips.
func fillStatsSentinels(t *testing.T, base uint64) Stats {
	t.Helper()
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		// Distinct per field and spread out so no two sentinels collide
		// even across two differently-based fills.
		sentinel := base + uint64(i)*97
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(sentinel)
		case reflect.Slice:
			if f.Type().Elem().Kind() != reflect.Uint64 {
				t.Fatalf("Stats.%s: unhandled slice element kind %s — extend this test and check Add/Sub",
					v.Type().Field(i).Name, f.Type().Elem().Kind())
			}
			f.Set(reflect.ValueOf([]uint64{sentinel, sentinel + 1, sentinel + 2}))
		default:
			t.Fatalf("Stats.%s: unhandled field kind %s — extend this test and check Add/Sub",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	return s
}

// TestStatsAddSubRoundTrip asserts that for fully distinct a and b,
// a.Add(b).Sub(b) == a. Because Add and Sub both start from a copy of the
// receiver, a field dropped from either survives with a stale value and
// breaks the comparison.
func TestStatsAddSubRoundTrip(t *testing.T) {
	a := fillStatsSentinels(t, 1_000_003)
	b := fillStatsSentinels(t, 2_000_017)
	got := a.Add(b).Sub(b)
	if !reflect.DeepEqual(got, a) {
		t.Errorf("Add then Sub did not round-trip:\n got %+v\nwant %+v", got, a)
	}
}

// TestStatsAddFromZero catches a field omitted from Add alone: starting
// from the zero value, the sum must equal the addend in every field. The
// round-trip test cannot see an omission made consistently in both Add and
// Sub; this one can.
func TestStatsAddFromZero(t *testing.T) {
	b := fillStatsSentinels(t, 3_000_029)
	var zero Stats
	got := zero.Add(b)
	if !reflect.DeepEqual(got, b) {
		t.Errorf("zero.Add(b) != b:\n got %+v\nwant %+v", got, b)
	}
}

// TestStatsSubSelfIsZero catches a field omitted from Sub alone: a snapshot
// minus itself must be all zeros (the histogram zero-length is represented
// as an all-zero slice, so compare field-wise against a zeroed copy).
func TestStatsSubSelfIsZero(t *testing.T) {
	b := fillStatsSentinels(t, 4_000_037)
	got := b.Sub(b)
	want := Stats{MSHROccupancy: make([]uint64, len(b.MSHROccupancy))}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("b.Sub(b) is not zero:\n got %+v\nwant %+v", got, want)
	}
}
