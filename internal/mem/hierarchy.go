package mem

import (
	"fmt"
	"slices"
)

// AccessType distinguishes the memory operations the timing model cares
// about. Stores complete into a store buffer and are off the critical path;
// prefetches (the Widx TOUCH instruction) occupy resources but never stall
// the issuing unit.
type AccessType uint8

const (
	// Load is a demand read whose completion the issuing unit waits for.
	Load AccessType = iota
	// Store is a write; it consumes an L1 port and may allocate, but the
	// issuing unit continues after one cycle (store buffer).
	Store
	// Prefetch is a non-binding TOUCH: it moves the block toward the L1 but
	// never stalls the issuer.
	Prefetch
)

// String names the access type.
func (t AccessType) String() string {
	switch t {
	case Load:
		return "load"
	case Store:
		return "store"
	case Prefetch:
		return "prefetch"
	default:
		return fmt.Sprintf("access(%d)", uint8(t))
	}
}

// Level identifies where in the hierarchy an access was satisfied.
type Level uint8

const (
	// LevelL1 means the access hit in the L1-D.
	LevelL1 Level = iota
	// LevelLLC means the access missed the L1-D and hit in the LLC.
	LevelLLC
	// LevelMemory means the access went to a memory controller.
	LevelMemory
	// LevelCombined means the access merged into an already-outstanding
	// MSHR for the same block (a secondary miss).
	LevelCombined
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelLLC:
		return "LLC"
	case LevelMemory:
		return "Memory"
	case LevelCombined:
		return "Combined"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// Result reports the timing of one access.
type Result struct {
	// IssueCycle is when the access actually acquired an L1 port (>= the
	// requested cycle when ports or translations were busy).
	IssueCycle uint64
	// CompleteCycle is when the data is available to the issuer. For stores
	// and prefetches this is when the issuer may proceed, not when the block
	// arrives.
	CompleteCycle uint64
	// Level records where the access was satisfied.
	Level Level
	// TLBMiss reports whether the access took a page walk.
	TLBMiss bool
	// TLBReadyCycle is when translation finished (== requested cycle on a
	// TLB hit).
	TLBReadyCycle uint64
}

// Latency is the total observed latency from the requested cycle.
func (r Result) Latency(requested uint64) uint64 {
	if r.CompleteCycle < requested {
		return 0
	}
	return r.CompleteCycle - requested
}

// mshrEntry tracks one outstanding miss. It occupies one of the owner's
// private MSHRs and one shared fill buffer from the allocation cycle
// (start) until the fill returns (complete). owner is the agent whose miss
// allocated the entry: its own L1 tag was installed at allocation (so its
// re-accesses must combine rather than falsely hit), while other agents
// check their private L1s before combining.
type mshrEntry struct {
	block    uint64
	start    uint64
	complete uint64
	owner    *Hierarchy
}

// Hierarchy is one agent's view of the memory system: the private L1-D,
// TLB, L1 port schedule and MSHRs its AgentSpec describes, in front of the
// SharedLevel (LLC, fill buffers, memory controllers) it was attached to. A
// standalone Hierarchy from NewHierarchy owns a private shared level, which
// is the single-agent machine the original model exposed.
//
// It is deliberately not safe for concurrent use: the simulator issues
// accesses from a single goroutine in monotonically non-decreasing cycle
// order across all agents of the shared level (the stepped execution core in
// internal/widx, the interleaved replay in internal/cores and the system
// scheduler in internal/system guarantee this), which keeps results
// deterministic and makes live resource occupancy well-defined.
// SetStrictOrder turns the ordering contract into a hard assertion.
type Hierarchy struct {
	spec AgentSpec

	l1  *Cache
	tlb *TLB
	// ports grants L1-D access slots (spec.L1Ports per cycle).
	ports *slotSchedule
	// wayMask restricts the agent's LLC allocations (0 = all ways).
	wayMask uint64

	shared *SharedLevel

	// occHist is the time-weighted histogram of the agent's own live MSHRs
	// (the private miss-handling tier); occLast/occStarted anchor its
	// accounting over the agent's own access stream.
	occHist    []uint64
	occLast    uint64
	occStarted bool

	stats Stats
}

// Stats aggregates hierarchy activity since the last counter reset. On a
// per-agent view the counters cover that agent's accesses only and the
// MSHR-occupancy histogram describes the agent's private MSHR tier; on
// SharedLevel.Stats() the counters are the cross-agent totals and the
// histogram describes the shared fill-buffer pool.
type Stats struct {
	Loads      uint64
	Stores     uint64
	Prefetches uint64

	L1Hits         uint64
	L1Misses       uint64
	LLCHits        uint64
	LLCMisses      uint64
	CombinedMisses uint64
	TLBMisses      uint64

	// MemBlocks is the number of block transfers demanded from the memory
	// controllers (off-chip traffic).
	MemBlocks uint64

	// PortStallCycles accumulates cycles accesses waited for an L1 port.
	// MSHRStallCycles accumulates the total cycles accesses waited to enter
	// the miss-handling path — the private MSHR gate plus the shared fill
	// buffers; FillStallCycles is the shared fill-buffer component alone,
	// so MSHRStallCycles - FillStallCycles isolates per-agent saturation
	// from cross-agent contention.
	PortStallCycles uint64
	MSHRStallCycles uint64
	FillStallCycles uint64

	// MSHROccupancy is a time-weighted histogram of live miss-handling
	// occupancy: MSHROccupancy[k] is the number of cycles exactly k entries
	// were outstanding. On a per-agent view it covers the agent's own MSHRs
	// (k == spec.MSHRs is full private saturation) between the agent's
	// first and most recent access of the measurement phase; on
	// SharedLevel.Stats() it covers the shared fill buffers across all
	// agents (k == FillBuffers is a full shared pool). It is meaningful
	// only when accesses are issued in monotonically non-decreasing cycle
	// order (the execution core's contract).
	MSHROccupancy []uint64
}

// Sub returns the difference of two cumulative Stats snapshots (s - prev),
// used to scope counters to one measurement phase.
func (s Stats) Sub(prev Stats) Stats {
	d := s
	d.Loads -= prev.Loads
	d.Stores -= prev.Stores
	d.Prefetches -= prev.Prefetches
	d.L1Hits -= prev.L1Hits
	d.L1Misses -= prev.L1Misses
	d.LLCHits -= prev.LLCHits
	d.LLCMisses -= prev.LLCMisses
	d.CombinedMisses -= prev.CombinedMisses
	d.TLBMisses -= prev.TLBMisses
	d.MemBlocks -= prev.MemBlocks
	d.PortStallCycles -= prev.PortStallCycles
	d.MSHRStallCycles -= prev.MSHRStallCycles
	d.FillStallCycles -= prev.FillStallCycles
	d.MSHROccupancy = append([]uint64(nil), s.MSHROccupancy...)
	for i := range d.MSHROccupancy {
		if i < len(prev.MSHROccupancy) {
			d.MSHROccupancy[i] -= prev.MSHROccupancy[i]
		}
	}
	return d
}

// Add returns the field-wise sum of two Stats, used to aggregate per-agent
// views into system totals. Histograms add element-wise over the longer of
// the two.
func (s Stats) Add(o Stats) Stats {
	d := s
	d.Loads += o.Loads
	d.Stores += o.Stores
	d.Prefetches += o.Prefetches
	d.L1Hits += o.L1Hits
	d.L1Misses += o.L1Misses
	d.LLCHits += o.LLCHits
	d.LLCMisses += o.LLCMisses
	d.CombinedMisses += o.CombinedMisses
	d.TLBMisses += o.TLBMisses
	d.MemBlocks += o.MemBlocks
	d.PortStallCycles += o.PortStallCycles
	d.MSHRStallCycles += o.MSHRStallCycles
	d.FillStallCycles += o.FillStallCycles
	if len(o.MSHROccupancy) > len(s.MSHROccupancy) {
		d.MSHROccupancy = append([]uint64(nil), o.MSHROccupancy...)
		for i, v := range s.MSHROccupancy {
			d.MSHROccupancy[i] += v
		}
	} else {
		d.MSHROccupancy = append([]uint64(nil), s.MSHROccupancy...)
		for i, v := range o.MSHROccupancy {
			d.MSHROccupancy[i] += v
		}
	}
	return d
}

// MSHRSaturationShare returns the fraction of accounted cycles spent with at
// least `level` entries live — the quantity that explains why walker scaling
// flattens once the MSHR budget is exhausted (Section 3.2).
func (s Stats) MSHRSaturationShare(level int) float64 {
	var total, at uint64
	for k, cyc := range s.MSHROccupancy {
		total += cyc
		if k >= level {
			at += cyc
		}
	}
	if total == 0 {
		return 0
	}
	return float64(at) / float64(total)
}

// MeanMSHROccupancy returns the time-weighted average number of live entries
// over the accounted span — the simulator-measured analogue of the offered
// memory-level parallelism the Figure 5 analytical model takes as input.
func (s Stats) MeanMSHROccupancy() float64 {
	var total, weighted uint64
	for k, cyc := range s.MSHROccupancy {
		total += cyc
		weighted += uint64(k) * cyc
	}
	if total == 0 {
		return 0
	}
	return float64(weighted) / float64(total)
}

// L1MissRatio returns L1 misses over all cache lookups.
func (s Stats) L1MissRatio() float64 {
	total := s.L1Hits + s.L1Misses
	if total == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(total)
}

// LLCMissRatio returns LLC misses over LLC lookups.
func (s Stats) LLCMissRatio() float64 {
	total := s.LLCHits + s.LLCMisses
	if total == 0 {
		return 0
	}
	return float64(s.LLCMisses) / float64(total)
}

// NewHierarchy builds a single-agent machine from the flat configuration:
// one agent view with the symmetric topology's default spec in front of a
// private shared level. It panics on an invalid configuration; call
// cfg.Validate first when the configuration is user-supplied. Multi-agent
// and heterogeneous machines are built with NewSharedLevel +
// SharedLevel.NewAgent.
func NewHierarchy(cfg Config) *Hierarchy {
	top := cfg.Topology()
	return NewSharedLevel(top).NewAgent(top.Agent("agent0"))
}

// SetStrictOrder toggles the debug assertion that Access requests arrive in
// monotonically non-decreasing cycle order across all agents of the shared
// level. The stepped execution core guarantees this ordering by construction;
// enabling the assertion makes any scheduler regression fail loudly instead
// of silently corrupting resource accounting.
func (h *Hierarchy) SetStrictOrder(on bool) { h.shared.SetStrictOrder(on) }

// Spec returns the agent's private spec.
func (h *Hierarchy) Spec() AgentSpec { return h.spec }

// Config returns the agent's view flattened back into the historical
// single-struct configuration: the shared level's parameters plus this
// agent's private spec (L1MSHRs carries the per-agent MSHR count).
func (h *Hierarchy) Config() Config {
	s, a := h.shared.top.Shared, h.spec
	return Config{
		FrequencyGHz:      s.FrequencyGHz,
		L1SizeBytes:       a.L1SizeBytes,
		L1Assoc:           a.L1Assoc,
		L1BlockBytes:      s.BlockBytes,
		L1Ports:           a.L1Ports,
		L1MSHRs:           a.MSHRs,
		L1LatencyCyc:      a.L1LatencyCyc,
		LLCSizeBytes:      s.LLCSizeBytes,
		LLCAssoc:          s.LLCAssoc,
		LLCLatencyCyc:     s.LLCLatencyCyc,
		InterconnectCyc:   s.InterconnectCyc,
		MemLatencyNs:      s.MemLatencyNs,
		MemControllers:    s.MemControllers,
		MemPeakGBs:        s.MemPeakGBs,
		MemEffectiveShare: s.MemEffectiveShare,
		TLBEntries:        a.TLBEntries,
		TLBInFlight:       a.TLBInFlight,
		TLBWalkCyc:        a.TLBWalkCyc,
		PageBytes:         a.PageBytes,
	}
}

// Name returns the agent label this view was attached under.
func (h *Hierarchy) Name() string { return h.spec.Name }

// Shared returns the shared level this agent view is attached to.
func (h *Hierarchy) Shared() *SharedLevel { return h.shared }

// L1 exposes the agent's private L1 cache model (for warm-up and tests).
func (h *Hierarchy) L1() *Cache { return h.l1 }

// LLC exposes the shared LLC model (for warm-up and tests).
func (h *Hierarchy) LLC() *Cache { return h.shared.llc }

// TLB exposes the agent's private TLB model (for warm-up and tests).
func (h *Hierarchy) TLB() *TLB { return h.tlb }

// Stats returns a copy of the agent's counters accumulated since the last
// reset, with the agent's private MSHR-occupancy histogram attached (the
// shared fill-buffer histogram lives on SharedLevel.Stats()).
func (h *Hierarchy) Stats() Stats {
	s := h.stats
	s.MSHROccupancy = append([]uint64(nil), h.occHist...)
	return s
}

// ResetCounters clears the agent's activity counters and the shared level's
// (but not cache/TLB contents, resource schedules or in-flight misses),
// marking the start of a measurement phase. The occupancy histograms
// re-anchor at the phase's first access. The cycle clock continues across
// the reset — restarting cycle numbering requires a fresh machine, since
// outstanding fills and resource reservations live on the old timebase.
//
// With multiple agents attached to the shared level, prefer scoping
// measurements with Stats snapshots and Stats.Sub, or reset the whole system
// at once with SharedLevel.ResetCounters: resetting through one agent clears
// the shared counters under the others.
func (h *Hierarchy) ResetCounters() {
	h.resetPrivateCounters()
	h.shared.resetSharedCounters()
}

// resetPrivateCounters clears the agent-private half of the counters.
func (h *Hierarchy) resetPrivateCounters() {
	h.stats = Stats{}
	h.occHist = make([]uint64, h.spec.MSHRs+1)
	h.occStarted = false
	h.l1.ResetCounters()
	h.tlb.ResetCounters()
}

// recordOccupancy advances the agent's private MSHR-occupancy histogram to
// now, walking only the agent's own outstanding entries. The agent's own
// requests are monotonic (per-agent scheduler contract), so the private
// histogram is exact over the agent's access span.
func (h *Hierarchy) recordOccupancy(now uint64) {
	h.occStarted, h.occLast = advanceOccupancy(h.occHist, h.shared.mshrs, h,
		h.occStarted, h.occLast, now)
}

// blockOf returns addr's cache-block address.
func (h *Hierarchy) blockOf(addr uint64) uint64 {
	return addr &^ uint64(h.shared.top.Shared.BlockBytes-1)
}

// acquirePort finds the earliest cycle >= want at which an L1 port is free,
// reserves it for one cycle, and returns that cycle.
func (h *Hierarchy) acquirePort(want uint64) uint64 {
	start := h.ports.reserve(want)
	if start > want {
		h.stats.PortStallCycles += start - want
	}
	return start
}

// acquireMSHR blocks (advances time) until one of the agent's own MSHRs is
// free at or after want — the private tier that models Section 3.2's
// per-accelerator saturation. The shared fill-buffer gate
// (SharedLevel.acquireFillBuffer) runs after it.
func (h *Hierarchy) acquireMSHR(want uint64) (start uint64, stall uint64) {
	live := h.shared.completesAfter(want, h)
	if len(live) < h.spec.MSHRs {
		return want, 0
	}
	slices.Sort(live)
	start = live[len(live)-h.spec.MSHRs]
	return start, start - want
}

// Access issues one memory operation at the requested cycle and returns its
// timing. The model applies, in order: address translation (TLB), L1 port
// acquisition, L1 lookup, the two-tier miss-handling gate (private MSHR,
// then shared fill buffer) with miss combining, LLC lookup and finally a
// memory-controller transfer. Everything past the L1 contends with the
// other agents of the shared level.
func (h *Hierarchy) Access(addr uint64, cycle uint64, typ AccessType) Result {
	sl := h.shared
	sl.checkOrder(h.spec.Name, addr, cycle, typ)
	sl.recordOccupancy(cycle)
	h.recordOccupancy(cycle)

	switch typ {
	case Load:
		h.stats.Loads++
	case Store:
		h.stats.Stores++
	case Prefetch:
		h.stats.Prefetches++
	}

	// 1. Translation. Widx shares the host MMU; a miss delays the access by
	// the page-walk latency (bounded to the configured in-flight walks).
	tlbReady, tlbMiss := h.tlb.Translate(addr, cycle)
	if tlbMiss {
		h.stats.TLBMisses++
	}

	// 2. L1 port.
	issue := h.acquirePort(tlbReady)

	res := Result{IssueCycle: issue, TLBMiss: tlbMiss, TLBReadyCycle: tlbReady}
	block := h.blockOf(addr)

	// 3. Miss combining: an access to a block whose fill is still in flight
	// is a secondary miss. It shares the outstanding MSHR and completes when
	// the primary fill returns. For the agent that allocated the entry this
	// check precedes its tag lookup, because the primary miss installed the
	// tag in that L1 as soon as the fill was scheduled; any other agent
	// consults its own private L1 first — data it already holds is a plain
	// L1 hit regardless of someone else's in-flight fill — and a cross-agent
	// combine fills its L1 when the shared transfer returns.
	if e, ok := sl.findMSHR(block, issue); ok {
		crossAgent := e.owner != h
		if !crossAgent || !h.l1.Lookup(addr) {
			h.stats.L1Misses++
			h.stats.CombinedMisses++
			sl.stats.CombinedMisses++
			if crossAgent {
				h.l1.InsertWays(addr, 0)
			}
			res.Level = LevelCombined
			res.CompleteCycle = e.complete
			if typ != Load {
				res.CompleteCycle = issue + 1
			}
			return res
		}
		h.stats.L1Hits++
		res.Level = LevelL1
		res.CompleteCycle = issue + h.spec.L1LatencyCyc
		if typ == Store {
			res.CompleteCycle = issue + 1
		}
		return res
	}

	// 4. L1 lookup.
	if h.l1.Lookup(addr) {
		h.stats.L1Hits++
		res.Level = LevelL1
		res.CompleteCycle = issue + h.spec.L1LatencyCyc
		if typ == Store {
			res.CompleteCycle = issue + 1
		}
		return res
	}
	h.stats.L1Misses++

	// 5. Two-tier miss handling: allocate one of the agent's own MSHRs,
	// then a fill buffer from the shared pool (either may stall). In the
	// symmetric topology both tiers have the same capacity, and for a
	// single agent the combined wait equals the historical single pool's.
	start, privStall := h.acquireMSHR(issue)
	start, fillStall := sl.acquireFillBuffer(start)
	stall := privStall + fillStall
	h.stats.MSHRStallCycles += stall
	h.stats.FillStallCycles += fillStall
	sl.stats.MSHRStallCycles += stall
	sl.stats.FillStallCycles += fillStall

	// 6. LLC lookup (after the crossbar hop).
	llcProbe := start + h.spec.L1LatencyCyc + sl.top.Shared.InterconnectCyc
	var complete uint64
	if sl.llc.Lookup(addr) {
		h.stats.LLCHits++
		sl.stats.LLCHits++
		res.Level = LevelLLC
		complete = llcProbe + sl.top.Shared.LLCLatencyCyc
	} else {
		h.stats.LLCMisses++
		sl.stats.LLCMisses++
		res.Level = LevelMemory
		complete = sl.memAccess(block, llcProbe+sl.top.Shared.LLCLatencyCyc)
		h.stats.MemBlocks++
		sl.llc.InsertWays(addr, h.wayMask)
	}
	h.l1.InsertWays(addr, 0)
	sl.mshrs = append(sl.mshrs, mshrEntry{block: block, start: start, complete: complete, owner: h})

	res.CompleteCycle = complete
	if typ != Load {
		// Stores retire into the store buffer; prefetches never block.
		res.CompleteCycle = issue + 1
	}
	return res
}

// WarmBlock installs addr's block into the agent's L1 and the agent's ways
// of the shared LLC, and its page into the agent's TLB, without touching
// counters or resource schedules. Workload builders use it to start
// measurement from the steady state the paper measures (checkpoints with
// warmed caches).
func (h *Hierarchy) WarmBlock(addr uint64) {
	h.l1.InsertWays(addr, 0)
	h.shared.llc.InsertWays(addr, h.wayMask)
	h.tlb.WarmPage(addr)
	h.l1.ResetCounters()
	h.shared.llc.ResetCounters()
	h.tlb.ResetCounters()
}

// WarmLLCOnly installs addr's block into the agent's ways of the shared LLC
// (not the L1) and warms its TLB page. Used to model index data that exceeds
// the L1 but fits the LLC.
func (h *Hierarchy) WarmLLCOnly(addr uint64) {
	h.shared.llc.InsertWays(addr, h.wayMask)
	h.tlb.WarmPage(addr)
	h.shared.llc.ResetCounters()
	h.tlb.ResetCounters()
}

// AMAT returns the average memory access time implied by the agent's
// counters and configured latencies, in cycles. It is used by reports and
// sanity checks; the timing itself never uses AMAT (it uses per-access
// latencies).
func (h *Hierarchy) AMAT() float64 {
	s := h.stats
	shared := h.shared.top.Shared
	accesses := s.L1Hits + s.L1Misses
	if accesses == 0 {
		return float64(h.spec.L1LatencyCyc)
	}
	l1HitRate := float64(s.L1Hits) / float64(accesses)
	llcLookups := s.LLCHits + s.LLCMisses
	llcMissRate := 0.0
	if llcLookups > 0 {
		llcMissRate = float64(s.LLCMisses) / float64(llcLookups)
	}
	l1Lat := float64(h.spec.L1LatencyCyc)
	llcLat := float64(shared.InterconnectCyc + shared.LLCLatencyCyc)
	memLat := float64(shared.MemLatencyCycles())
	return l1Lat + (1-l1HitRate)*(llcLat+llcMissRate*memLat)
}
