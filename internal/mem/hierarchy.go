package mem

import (
	"fmt"
	"slices"
)

// AccessType distinguishes the memory operations the timing model cares
// about. Stores complete into a store buffer and are off the critical path;
// prefetches (the Widx TOUCH instruction) occupy resources but never stall
// the issuing unit.
type AccessType uint8

const (
	// Load is a demand read whose completion the issuing unit waits for.
	Load AccessType = iota
	// Store is a write; it consumes an L1 port and may allocate, but the
	// issuing unit continues after one cycle (store buffer).
	Store
	// Prefetch is a non-binding TOUCH: it moves the block toward the L1 but
	// never stalls the issuer.
	Prefetch
)

// String names the access type.
func (t AccessType) String() string {
	switch t {
	case Load:
		return "load"
	case Store:
		return "store"
	case Prefetch:
		return "prefetch"
	default:
		return fmt.Sprintf("access(%d)", uint8(t))
	}
}

// Level identifies where in the hierarchy an access was satisfied.
type Level uint8

const (
	// LevelL1 means the access hit in the L1-D.
	LevelL1 Level = iota
	// LevelLLC means the access missed the L1-D and hit in the LLC.
	LevelLLC
	// LevelMemory means the access went to a memory controller.
	LevelMemory
	// LevelCombined means the access merged into an already-outstanding
	// MSHR for the same block (a secondary miss).
	LevelCombined
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelLLC:
		return "LLC"
	case LevelMemory:
		return "Memory"
	case LevelCombined:
		return "Combined"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// Result reports the timing of one access.
type Result struct {
	// IssueCycle is when the access actually acquired an L1 port (>= the
	// requested cycle when ports or translations were busy).
	IssueCycle uint64
	// CompleteCycle is when the data is available to the issuer. For stores
	// and prefetches this is when the issuer may proceed, not when the block
	// arrives.
	CompleteCycle uint64
	// Level records where the access was satisfied.
	Level Level
	// TLBMiss reports whether the access took a page walk.
	TLBMiss bool
	// TLBReadyCycle is when translation finished (== requested cycle on a
	// TLB hit).
	TLBReadyCycle uint64
}

// Latency is the total observed latency from the requested cycle.
func (r Result) Latency(requested uint64) uint64 {
	if r.CompleteCycle < requested {
		return 0
	}
	return r.CompleteCycle - requested
}

// mshrEntry tracks one outstanding L1 miss. The MSHR is occupied from the
// allocation cycle (start) until the fill returns (complete).
type mshrEntry struct {
	block    uint64
	start    uint64
	complete uint64
}

// Hierarchy is the shared memory system. It is deliberately not safe for
// concurrent use: the simulator issues accesses from a single goroutine in
// monotonically non-decreasing cycle order (the stepped execution core in
// internal/widx and the interleaved replay in internal/cores guarantee this),
// which keeps results deterministic and makes live resource occupancy
// well-defined. SetStrictOrder turns the ordering contract into a hard
// assertion for debugging.
type Hierarchy struct {
	cfg Config

	l1  *Cache
	llc *Cache
	tlb *TLB

	// ports grants L1-D access slots (cfg.L1Ports per cycle).
	ports *slotSchedule
	// mshrs holds outstanding L1 misses, at most cfg.L1MSHRs live at once.
	mshrs []mshrEntry
	// mcs grants block-transfer slots, one per service interval per
	// controller, enforcing the effective off-chip bandwidth.
	mcs []*slotSchedule

	// strictOrder makes Access panic when a request's cycle precedes an
	// earlier request's cycle (debug assertion for the execution core).
	strictOrder bool
	// lastRequest is the cycle of the most recent Access request.
	lastRequest uint64
	// occLast is the cycle up to which the MSHR-occupancy histogram has
	// been accounted; occStarted is false until the measurement phase's
	// first access anchors the accounting (so the histogram never charges
	// time from before the phase began).
	occLast    uint64
	occStarted bool

	stats Stats
}

// Stats aggregates hierarchy activity since the last counter reset.
type Stats struct {
	Loads      uint64
	Stores     uint64
	Prefetches uint64

	L1Hits         uint64
	L1Misses       uint64
	LLCHits        uint64
	LLCMisses      uint64
	CombinedMisses uint64
	TLBMisses      uint64

	// MemBlocks is the number of block transfers demanded from the memory
	// controllers (off-chip traffic).
	MemBlocks uint64

	// PortStallCycles accumulates cycles accesses waited for an L1 port;
	// MSHRStallCycles accumulates cycles accesses waited for a free MSHR.
	PortStallCycles uint64
	MSHRStallCycles uint64

	// MSHROccupancy is a time-weighted histogram of live MSHR occupancy:
	// MSHROccupancy[k] is the number of cycles exactly k MSHRs were
	// outstanding. It is meaningful only when accesses are issued in
	// monotonically non-decreasing cycle order (the execution core's
	// contract); the last bucket (k == L1MSHRs) measures full-saturation
	// time. The histogram covers cycles between the first and most recent
	// access of the measurement phase.
	MSHROccupancy []uint64
}

// Sub returns the difference of two cumulative Stats snapshots (s - prev),
// used to scope counters to one measurement phase.
func (s Stats) Sub(prev Stats) Stats {
	d := s
	d.Loads -= prev.Loads
	d.Stores -= prev.Stores
	d.Prefetches -= prev.Prefetches
	d.L1Hits -= prev.L1Hits
	d.L1Misses -= prev.L1Misses
	d.LLCHits -= prev.LLCHits
	d.LLCMisses -= prev.LLCMisses
	d.CombinedMisses -= prev.CombinedMisses
	d.TLBMisses -= prev.TLBMisses
	d.MemBlocks -= prev.MemBlocks
	d.PortStallCycles -= prev.PortStallCycles
	d.MSHRStallCycles -= prev.MSHRStallCycles
	d.MSHROccupancy = append([]uint64(nil), s.MSHROccupancy...)
	for i := range d.MSHROccupancy {
		if i < len(prev.MSHROccupancy) {
			d.MSHROccupancy[i] -= prev.MSHROccupancy[i]
		}
	}
	return d
}

// MSHRSaturationShare returns the fraction of accounted cycles spent with at
// least `level` MSHRs live — the quantity that explains why walker scaling
// flattens once the shared MSHR budget is exhausted (Section 3.2).
func (s Stats) MSHRSaturationShare(level int) float64 {
	var total, at uint64
	for k, cyc := range s.MSHROccupancy {
		total += cyc
		if k >= level {
			at += cyc
		}
	}
	if total == 0 {
		return 0
	}
	return float64(at) / float64(total)
}

// L1MissRatio returns L1 misses over all cache lookups.
func (s Stats) L1MissRatio() float64 {
	total := s.L1Hits + s.L1Misses
	if total == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(total)
}

// LLCMissRatio returns LLC misses over LLC lookups.
func (s Stats) LLCMissRatio() float64 {
	total := s.LLCHits + s.LLCMisses
	if total == 0 {
		return 0
	}
	return float64(s.LLCMisses) / float64(total)
}

// NewHierarchy builds a hierarchy from the configuration. It panics on an
// invalid configuration; call cfg.Validate first when the configuration is
// user-supplied.
func NewHierarchy(cfg Config) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{
		cfg:   cfg,
		l1:    NewCache("L1-D", cfg.L1SizeBytes, cfg.L1Assoc, cfg.L1BlockBytes),
		llc:   NewCache("LLC", cfg.LLCSizeBytes, cfg.LLCAssoc, cfg.L1BlockBytes),
		tlb:   NewTLB(cfg.TLBEntries, cfg.PageBytes, cfg.TLBWalkCyc, cfg.TLBInFlight),
		ports: newSlotSchedule(1, cfg.L1Ports),
		mcs:   make([]*slotSchedule, cfg.MemControllers),
	}
	// A memory controller starts at most one 64-byte block transfer per
	// service interval; rounding the interval up keeps the modelled
	// bandwidth at or below the configured effective bandwidth.
	interval := uint64(cfg.MemServiceIntervalCycles() + 0.5)
	if interval == 0 {
		interval = 1
	}
	for i := range h.mcs {
		h.mcs[i] = newSlotSchedule(interval, 1)
	}
	h.stats.MSHROccupancy = make([]uint64, cfg.L1MSHRs+1)
	return h
}

// SetStrictOrder toggles the debug assertion that Access requests arrive in
// monotonically non-decreasing cycle order. The stepped execution core
// guarantees this ordering by construction; enabling the assertion makes any
// scheduler regression fail loudly instead of silently corrupting resource
// accounting.
func (h *Hierarchy) SetStrictOrder(on bool) { h.strictOrder = on }

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// L1 exposes the L1 cache model (for warm-up and tests).
func (h *Hierarchy) L1() *Cache { return h.l1 }

// LLC exposes the LLC model (for warm-up and tests).
func (h *Hierarchy) LLC() *Cache { return h.llc }

// TLB exposes the TLB model (for warm-up and tests).
func (h *Hierarchy) TLB() *TLB { return h.tlb }

// Stats returns a copy of the counters accumulated since the last reset.
func (h *Hierarchy) Stats() Stats {
	s := h.stats
	s.MSHROccupancy = append([]uint64(nil), h.stats.MSHROccupancy...)
	return s
}

// ResetCounters clears all activity counters (but not cache/TLB contents,
// resource schedules or in-flight misses), marking the start of a
// measurement phase. The MSHR-occupancy histogram re-anchors at the phase's
// first access. The cycle clock continues across the reset — restarting
// cycle numbering requires a fresh Hierarchy, since outstanding fills and
// resource reservations live on the old timebase.
func (h *Hierarchy) ResetCounters() {
	h.stats = Stats{MSHROccupancy: make([]uint64, h.cfg.L1MSHRs+1)}
	h.occStarted = false
	h.l1.ResetCounters()
	h.llc.ResetCounters()
	h.tlb.ResetCounters()
}

// blockOf returns addr's cache-block address.
func (h *Hierarchy) blockOf(addr uint64) uint64 {
	return addr &^ uint64(h.cfg.L1BlockBytes-1)
}

// acquirePort finds the earliest cycle >= want at which an L1 port is free,
// reserves it for one cycle, and returns that cycle.
func (h *Hierarchy) acquirePort(want uint64) uint64 {
	start := h.ports.reserve(want)
	if start > want {
		h.stats.PortStallCycles += start - want
	}
	return start
}

// reapMSHRs drops entries whose miss has completed by the given cycle and
// whose live span has been fully folded into the occupancy histogram
// (complete <= occLast); later entries stay until the accounting clock
// passes them.
func (h *Hierarchy) reapMSHRs(cycle uint64) {
	live := h.mshrs[:0]
	for _, e := range h.mshrs {
		if e.complete > cycle || e.complete > h.occLast {
			live = append(live, e)
		}
	}
	h.mshrs = live
}

// findMSHR returns the outstanding entry for block, if any.
func (h *Hierarchy) findMSHR(block uint64, cycle uint64) (mshrEntry, bool) {
	for _, e := range h.mshrs {
		if e.block == block && e.complete > cycle {
			return e, true
		}
	}
	return mshrEntry{}, false
}

// recordOccupancy advances the MSHR-occupancy histogram from the last
// accounted cycle to now, walking the outstanding-miss completion events in
// time order so every intermediate occupancy level is charged its cycles.
// Requests arriving out of order (now <= occLast) contribute nothing; under
// the execution core's monotonic issue order the histogram is exact.
func (h *Hierarchy) recordOccupancy(now uint64) {
	if !h.occStarted {
		// Anchor accounting at the phase's first access rather than
		// charging the span from cycle zero (or from a previous phase).
		h.occStarted = true
		h.occLast = now
		return
	}
	for t := h.occLast; t < now; {
		live := 0
		next := now
		for _, e := range h.mshrs {
			// An entry occupies its MSHR from allocation to fill return;
			// both edges bound the constant-occupancy segment.
			if e.start <= t && e.complete > t {
				live++
			}
			if e.start > t && e.start < next {
				next = e.start
			}
			if e.complete > t && e.complete < next {
				next = e.complete
			}
		}
		if live < len(h.stats.MSHROccupancy) {
			h.stats.MSHROccupancy[live] += next - t
		} else if n := len(h.stats.MSHROccupancy); n > 0 {
			h.stats.MSHROccupancy[n-1] += next - t
		}
		t = next
	}
	if now > h.occLast {
		h.occLast = now
	}
}

// acquireMSHR blocks (advances time) until an MSHR slot is free at or after
// want, returning the cycle at which the slot is available. An entry
// occupies its slot over [start, complete), so the allocation must wait for
// enough completions that the concurrent-occupancy cap is respected at the
// returned cycle — waiting for the single earliest completion is not enough
// when requests with out-of-order issue cycles left more than a cap's worth
// of fills in flight past `want`.
func (h *Hierarchy) acquireMSHR(want uint64) uint64 {
	h.reapMSHRs(want)
	// Completions of entries still in flight at want, i.e. spans that
	// overlap the candidate allocation.
	live := h.completesAfter(want)
	if len(live) < h.cfg.L1MSHRs {
		return want
	}
	// Wait until all but (cap-1) of the overlapping fills have returned.
	slices.Sort(live)
	start := live[len(live)-h.cfg.L1MSHRs]
	h.stats.MSHRStallCycles += start - want
	return start
}

// completesAfter returns the completion cycles of entries whose fill is
// still outstanding after the given cycle.
func (h *Hierarchy) completesAfter(cycle uint64) []uint64 {
	out := make([]uint64, 0, len(h.mshrs))
	for _, e := range h.mshrs {
		if e.complete > cycle {
			out = append(out, e.complete)
		}
	}
	return out
}

// memAccess schedules one block transfer on the memory controller that owns
// the block and returns the completion cycle of the data return.
func (h *Hierarchy) memAccess(block uint64, start uint64) uint64 {
	mc := int((block / uint64(h.cfg.L1BlockBytes))) % h.cfg.MemControllers
	begin := h.mcs[mc].reserve(start)
	h.stats.MemBlocks++
	return begin + h.cfg.MemLatencyCycles()
}

// Access issues one memory operation at the requested cycle and returns its
// timing. The model applies, in order: address translation (TLB), L1 port
// acquisition, L1 lookup, MSHR allocation / miss combining, LLC lookup and
// finally a memory-controller transfer.
func (h *Hierarchy) Access(addr uint64, cycle uint64, typ AccessType) Result {
	if h.strictOrder && cycle < h.lastRequest {
		panic(fmt.Sprintf("mem: out-of-order access: %s of %#x at cycle %d after a request at cycle %d",
			typ, addr, cycle, h.lastRequest))
	}
	if cycle > h.lastRequest {
		h.lastRequest = cycle
	}
	h.recordOccupancy(cycle)

	switch typ {
	case Load:
		h.stats.Loads++
	case Store:
		h.stats.Stores++
	case Prefetch:
		h.stats.Prefetches++
	}

	// 1. Translation. Widx shares the host MMU; a miss delays the access by
	// the page-walk latency (bounded to the configured in-flight walks).
	tlbReady, tlbMiss := h.tlb.Translate(addr, cycle)
	if tlbMiss {
		h.stats.TLBMisses++
	}

	// 2. L1 port.
	issue := h.acquirePort(tlbReady)

	res := Result{IssueCycle: issue, TLBMiss: tlbMiss, TLBReadyCycle: tlbReady}
	block := h.blockOf(addr)

	// 3. Miss combining: an access to a block whose fill is still in flight
	// is a secondary miss. It shares the outstanding MSHR and completes when
	// the primary fill returns. This check precedes the tag lookup because
	// the primary miss installs the tag as soon as the fill is scheduled.
	if e, ok := h.findMSHR(block, issue); ok {
		h.stats.L1Misses++
		h.stats.CombinedMisses++
		res.Level = LevelCombined
		res.CompleteCycle = e.complete
		if typ != Load {
			res.CompleteCycle = issue + 1
		}
		return res
	}

	// 4. L1 lookup.
	if h.l1.Lookup(addr) {
		h.stats.L1Hits++
		res.Level = LevelL1
		res.CompleteCycle = issue + h.cfg.L1LatencyCyc
		if typ == Store {
			res.CompleteCycle = issue + 1
		}
		return res
	}
	h.stats.L1Misses++

	// 5. Allocate an MSHR (may stall).
	start := h.acquireMSHR(issue)

	// 6. LLC lookup (after the crossbar hop).
	llcProbe := start + h.cfg.L1LatencyCyc + h.cfg.InterconnectCyc
	var complete uint64
	if h.llc.Lookup(addr) {
		h.stats.LLCHits++
		res.Level = LevelLLC
		complete = llcProbe + h.cfg.LLCLatencyCyc
	} else {
		h.stats.LLCMisses++
		res.Level = LevelMemory
		complete = h.memAccess(block, llcProbe+h.cfg.LLCLatencyCyc)
		h.llc.Insert(addr)
	}
	h.l1.Insert(addr)
	h.mshrs = append(h.mshrs, mshrEntry{block: block, start: start, complete: complete})

	res.CompleteCycle = complete
	if typ != Load {
		// Stores retire into the store buffer; prefetches never block.
		res.CompleteCycle = issue + 1
	}
	return res
}

// WarmBlock installs addr's block into both cache levels and its page into
// the TLB without touching counters or resource schedules. Workload builders
// use it to start measurement from the steady state the paper measures
// (checkpoints with warmed caches).
func (h *Hierarchy) WarmBlock(addr uint64) {
	h.l1.Insert(addr)
	h.llc.Insert(addr)
	h.tlb.WarmPage(addr)
	h.l1.ResetCounters()
	h.llc.ResetCounters()
	h.tlb.ResetCounters()
}

// WarmLLCOnly installs addr's block into the LLC (not the L1) and warms its
// TLB page. Used to model index data that exceeds the L1 but fits the LLC.
func (h *Hierarchy) WarmLLCOnly(addr uint64) {
	h.llc.Insert(addr)
	h.tlb.WarmPage(addr)
	h.llc.ResetCounters()
	h.tlb.ResetCounters()
}

// AMAT returns the average memory access time implied by the counters and
// configured latencies, in cycles. It is used by reports and sanity checks;
// the timing itself never uses AMAT (it uses per-access latencies).
func (h *Hierarchy) AMAT() float64 {
	s := h.stats
	accesses := s.L1Hits + s.L1Misses
	if accesses == 0 {
		return float64(h.cfg.L1LatencyCyc)
	}
	l1HitRate := float64(s.L1Hits) / float64(accesses)
	llcLookups := s.LLCHits + s.LLCMisses
	llcMissRate := 0.0
	if llcLookups > 0 {
		llcMissRate = float64(s.LLCMisses) / float64(llcLookups)
	}
	l1Lat := float64(h.cfg.L1LatencyCyc)
	llcLat := float64(h.cfg.InterconnectCyc + h.cfg.LLCLatencyCyc)
	memLat := float64(h.cfg.MemLatencyCycles())
	return l1Lat + (1-l1HitRate)*(llcLat+llcMissRate*memLat)
}
