package mem

import (
	"fmt"
)

// AccessType distinguishes the memory operations the timing model cares
// about. Stores complete into a store buffer and are off the critical path;
// prefetches (the Widx TOUCH instruction) occupy resources but never stall
// the issuing unit.
type AccessType uint8

const (
	// Load is a demand read whose completion the issuing unit waits for.
	Load AccessType = iota
	// Store is a write; it consumes an L1 port and may allocate, but the
	// issuing unit continues after one cycle (store buffer).
	Store
	// Prefetch is a non-binding TOUCH: it moves the block toward the L1 but
	// never stalls the issuer.
	Prefetch
)

// String names the access type.
func (t AccessType) String() string {
	switch t {
	case Load:
		return "load"
	case Store:
		return "store"
	case Prefetch:
		return "prefetch"
	default:
		return fmt.Sprintf("access(%d)", uint8(t))
	}
}

// Level identifies where in the hierarchy an access was satisfied.
type Level uint8

const (
	// LevelL1 means the access hit in the L1-D.
	LevelL1 Level = iota
	// LevelLLC means the access missed the L1-D and hit in the LLC.
	LevelLLC
	// LevelMemory means the access went to a memory controller.
	LevelMemory
	// LevelCombined means the access merged into an already-outstanding
	// MSHR for the same block (a secondary miss).
	LevelCombined
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelLLC:
		return "LLC"
	case LevelMemory:
		return "Memory"
	case LevelCombined:
		return "Combined"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// Result reports the timing of one access.
type Result struct {
	// IssueCycle is when the access actually acquired an L1 port (>= the
	// requested cycle when ports or translations were busy).
	IssueCycle uint64
	// CompleteCycle is when the data is available to the issuer. For stores
	// and prefetches this is when the issuer may proceed, not when the block
	// arrives.
	CompleteCycle uint64
	// Level records where the access was satisfied.
	Level Level
	// TLBMiss reports whether the access took a page walk.
	TLBMiss bool
	// TLBReadyCycle is when translation finished (== requested cycle on a
	// TLB hit).
	TLBReadyCycle uint64
}

// Latency is the total observed latency from the requested cycle.
func (r Result) Latency(requested uint64) uint64 {
	if r.CompleteCycle < requested {
		return 0
	}
	return r.CompleteCycle - requested
}

// mshrEntry tracks one outstanding miss. The MSHR is occupied from the
// allocation cycle (start) until the fill returns (complete). owner is the
// agent whose miss allocated the entry: its own L1 tag was installed at
// allocation (so its re-accesses must combine rather than falsely hit),
// while other agents check their private L1s before combining.
type mshrEntry struct {
	block    uint64
	start    uint64
	complete uint64
	owner    *Hierarchy
}

// Hierarchy is one agent's view of the memory system: a private L1-D, TLB
// and L1 port schedule in front of the SharedLevel (LLC, MSHR pool, memory
// controllers) it was attached to. A standalone Hierarchy from NewHierarchy
// owns a private shared level, which is the single-agent machine the
// original model exposed.
//
// It is deliberately not safe for concurrent use: the simulator issues
// accesses from a single goroutine in monotonically non-decreasing cycle
// order across all agents of the shared level (the stepped execution core in
// internal/widx, the interleaved replay in internal/cores and the system
// scheduler in internal/system guarantee this), which keeps results
// deterministic and makes live resource occupancy well-defined.
// SetStrictOrder turns the ordering contract into a hard assertion.
type Hierarchy struct {
	cfg  Config
	name string

	l1  *Cache
	tlb *TLB
	// ports grants L1-D access slots (cfg.L1Ports per cycle).
	ports *slotSchedule

	shared *SharedLevel

	stats Stats
}

// Stats aggregates hierarchy activity since the last counter reset. On a
// per-agent view the counters cover that agent's accesses only; the
// MSHR-occupancy histogram always describes the shared pool.
type Stats struct {
	Loads      uint64
	Stores     uint64
	Prefetches uint64

	L1Hits         uint64
	L1Misses       uint64
	LLCHits        uint64
	LLCMisses      uint64
	CombinedMisses uint64
	TLBMisses      uint64

	// MemBlocks is the number of block transfers demanded from the memory
	// controllers (off-chip traffic).
	MemBlocks uint64

	// PortStallCycles accumulates cycles accesses waited for an L1 port;
	// MSHRStallCycles accumulates cycles accesses waited for a free MSHR.
	PortStallCycles uint64
	MSHRStallCycles uint64

	// MSHROccupancy is a time-weighted histogram of live MSHR occupancy:
	// MSHROccupancy[k] is the number of cycles exactly k MSHRs were
	// outstanding, across all agents sharing the pool. It is meaningful only
	// when accesses are issued in monotonically non-decreasing cycle order
	// (the execution core's contract); the last bucket (k == L1MSHRs)
	// measures full-saturation time. The histogram covers cycles between the
	// first and most recent access of the measurement phase.
	MSHROccupancy []uint64
}

// Sub returns the difference of two cumulative Stats snapshots (s - prev),
// used to scope counters to one measurement phase.
func (s Stats) Sub(prev Stats) Stats {
	d := s
	d.Loads -= prev.Loads
	d.Stores -= prev.Stores
	d.Prefetches -= prev.Prefetches
	d.L1Hits -= prev.L1Hits
	d.L1Misses -= prev.L1Misses
	d.LLCHits -= prev.LLCHits
	d.LLCMisses -= prev.LLCMisses
	d.CombinedMisses -= prev.CombinedMisses
	d.TLBMisses -= prev.TLBMisses
	d.MemBlocks -= prev.MemBlocks
	d.PortStallCycles -= prev.PortStallCycles
	d.MSHRStallCycles -= prev.MSHRStallCycles
	d.MSHROccupancy = append([]uint64(nil), s.MSHROccupancy...)
	for i := range d.MSHROccupancy {
		if i < len(prev.MSHROccupancy) {
			d.MSHROccupancy[i] -= prev.MSHROccupancy[i]
		}
	}
	return d
}

// Add returns the field-wise sum of two Stats, used to aggregate per-agent
// views into system totals. Histograms add element-wise over the longer of
// the two.
func (s Stats) Add(o Stats) Stats {
	d := s
	d.Loads += o.Loads
	d.Stores += o.Stores
	d.Prefetches += o.Prefetches
	d.L1Hits += o.L1Hits
	d.L1Misses += o.L1Misses
	d.LLCHits += o.LLCHits
	d.LLCMisses += o.LLCMisses
	d.CombinedMisses += o.CombinedMisses
	d.TLBMisses += o.TLBMisses
	d.MemBlocks += o.MemBlocks
	d.PortStallCycles += o.PortStallCycles
	d.MSHRStallCycles += o.MSHRStallCycles
	if len(o.MSHROccupancy) > len(s.MSHROccupancy) {
		d.MSHROccupancy = append([]uint64(nil), o.MSHROccupancy...)
		for i, v := range s.MSHROccupancy {
			d.MSHROccupancy[i] += v
		}
	} else {
		d.MSHROccupancy = append([]uint64(nil), s.MSHROccupancy...)
		for i, v := range o.MSHROccupancy {
			d.MSHROccupancy[i] += v
		}
	}
	return d
}

// MSHRSaturationShare returns the fraction of accounted cycles spent with at
// least `level` MSHRs live — the quantity that explains why walker scaling
// flattens once the shared MSHR budget is exhausted (Section 3.2).
func (s Stats) MSHRSaturationShare(level int) float64 {
	var total, at uint64
	for k, cyc := range s.MSHROccupancy {
		total += cyc
		if k >= level {
			at += cyc
		}
	}
	if total == 0 {
		return 0
	}
	return float64(at) / float64(total)
}

// MeanMSHROccupancy returns the time-weighted average number of live MSHRs
// over the accounted span — the simulator-measured analogue of the offered
// memory-level parallelism the Figure 5 analytical model takes as input.
func (s Stats) MeanMSHROccupancy() float64 {
	var total, weighted uint64
	for k, cyc := range s.MSHROccupancy {
		total += cyc
		weighted += uint64(k) * cyc
	}
	if total == 0 {
		return 0
	}
	return float64(weighted) / float64(total)
}

// L1MissRatio returns L1 misses over all cache lookups.
func (s Stats) L1MissRatio() float64 {
	total := s.L1Hits + s.L1Misses
	if total == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(total)
}

// LLCMissRatio returns LLC misses over LLC lookups.
func (s Stats) LLCMissRatio() float64 {
	total := s.LLCHits + s.LLCMisses
	if total == 0 {
		return 0
	}
	return float64(s.LLCMisses) / float64(total)
}

// NewHierarchy builds a single-agent machine: one agent view in front of a
// private shared level. It panics on an invalid configuration; call
// cfg.Validate first when the configuration is user-supplied. Multi-agent
// machines are built with NewSharedLevel + SharedLevel.NewAgent.
func NewHierarchy(cfg Config) *Hierarchy {
	return NewSharedLevel(cfg).NewAgent("agent0")
}

// SetStrictOrder toggles the debug assertion that Access requests arrive in
// monotonically non-decreasing cycle order across all agents of the shared
// level. The stepped execution core guarantees this ordering by construction;
// enabling the assertion makes any scheduler regression fail loudly instead
// of silently corrupting resource accounting.
func (h *Hierarchy) SetStrictOrder(on bool) { h.shared.SetStrictOrder(on) }

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Name returns the agent label this view was attached under.
func (h *Hierarchy) Name() string { return h.name }

// Shared returns the shared level this agent view is attached to.
func (h *Hierarchy) Shared() *SharedLevel { return h.shared }

// L1 exposes the agent's private L1 cache model (for warm-up and tests).
func (h *Hierarchy) L1() *Cache { return h.l1 }

// LLC exposes the shared LLC model (for warm-up and tests).
func (h *Hierarchy) LLC() *Cache { return h.shared.llc }

// TLB exposes the agent's private TLB model (for warm-up and tests).
func (h *Hierarchy) TLB() *TLB { return h.tlb }

// Stats returns a copy of the agent's counters accumulated since the last
// reset, with the shared pool's MSHR-occupancy histogram attached.
func (h *Hierarchy) Stats() Stats {
	s := h.stats
	s.MSHROccupancy = append([]uint64(nil), h.shared.occHist...)
	return s
}

// ResetCounters clears the agent's activity counters and the shared level's
// (but not cache/TLB contents, resource schedules or in-flight misses),
// marking the start of a measurement phase. The MSHR-occupancy histogram
// re-anchors at the phase's first access. The cycle clock continues across
// the reset — restarting cycle numbering requires a fresh machine, since
// outstanding fills and resource reservations live on the old timebase.
//
// With multiple agents attached to the shared level, prefer scoping
// measurements with Stats snapshots and Stats.Sub, or reset the whole system
// at once with SharedLevel.ResetCounters: resetting through one agent clears
// the shared counters under the others.
func (h *Hierarchy) ResetCounters() {
	h.resetPrivateCounters()
	h.shared.resetSharedCounters()
}

// resetPrivateCounters clears the agent-private half of the counters.
func (h *Hierarchy) resetPrivateCounters() {
	h.stats = Stats{}
	h.l1.ResetCounters()
	h.tlb.ResetCounters()
}

// blockOf returns addr's cache-block address.
func (h *Hierarchy) blockOf(addr uint64) uint64 {
	return addr &^ uint64(h.cfg.L1BlockBytes-1)
}

// acquirePort finds the earliest cycle >= want at which an L1 port is free,
// reserves it for one cycle, and returns that cycle.
func (h *Hierarchy) acquirePort(want uint64) uint64 {
	start := h.ports.reserve(want)
	if start > want {
		h.stats.PortStallCycles += start - want
	}
	return start
}

// Access issues one memory operation at the requested cycle and returns its
// timing. The model applies, in order: address translation (TLB), L1 port
// acquisition, L1 lookup, MSHR allocation / miss combining, LLC lookup and
// finally a memory-controller transfer. Everything past the L1 contends with
// the other agents of the shared level.
func (h *Hierarchy) Access(addr uint64, cycle uint64, typ AccessType) Result {
	sl := h.shared
	sl.checkOrder(h.name, addr, cycle, typ)
	sl.recordOccupancy(cycle)

	switch typ {
	case Load:
		h.stats.Loads++
	case Store:
		h.stats.Stores++
	case Prefetch:
		h.stats.Prefetches++
	}

	// 1. Translation. Widx shares the host MMU; a miss delays the access by
	// the page-walk latency (bounded to the configured in-flight walks).
	tlbReady, tlbMiss := h.tlb.Translate(addr, cycle)
	if tlbMiss {
		h.stats.TLBMisses++
	}

	// 2. L1 port.
	issue := h.acquirePort(tlbReady)

	res := Result{IssueCycle: issue, TLBMiss: tlbMiss, TLBReadyCycle: tlbReady}
	block := h.blockOf(addr)

	// 3. Miss combining: an access to a block whose fill is still in flight
	// is a secondary miss. It shares the outstanding MSHR and completes when
	// the primary fill returns. For the agent that allocated the entry this
	// check precedes its tag lookup, because the primary miss installed the
	// tag in that L1 as soon as the fill was scheduled; any other agent
	// consults its own private L1 first — data it already holds is a plain
	// L1 hit regardless of someone else's in-flight fill — and a cross-agent
	// combine fills its L1 when the shared transfer returns.
	if e, ok := sl.findMSHR(block, issue); ok {
		crossAgent := e.owner != h
		if !crossAgent || !h.l1.Lookup(addr) {
			h.stats.L1Misses++
			h.stats.CombinedMisses++
			sl.stats.CombinedMisses++
			if crossAgent {
				h.l1.Insert(addr)
			}
			res.Level = LevelCombined
			res.CompleteCycle = e.complete
			if typ != Load {
				res.CompleteCycle = issue + 1
			}
			return res
		}
		h.stats.L1Hits++
		res.Level = LevelL1
		res.CompleteCycle = issue + h.cfg.L1LatencyCyc
		if typ == Store {
			res.CompleteCycle = issue + 1
		}
		return res
	}

	// 4. L1 lookup.
	if h.l1.Lookup(addr) {
		h.stats.L1Hits++
		res.Level = LevelL1
		res.CompleteCycle = issue + h.cfg.L1LatencyCyc
		if typ == Store {
			res.CompleteCycle = issue + 1
		}
		return res
	}
	h.stats.L1Misses++

	// 5. Allocate an MSHR from the shared pool (may stall).
	start, mshrStall := sl.acquireMSHR(issue)
	h.stats.MSHRStallCycles += mshrStall

	// 6. LLC lookup (after the crossbar hop).
	llcProbe := start + h.cfg.L1LatencyCyc + h.cfg.InterconnectCyc
	var complete uint64
	if sl.llc.Lookup(addr) {
		h.stats.LLCHits++
		sl.stats.LLCHits++
		res.Level = LevelLLC
		complete = llcProbe + h.cfg.LLCLatencyCyc
	} else {
		h.stats.LLCMisses++
		sl.stats.LLCMisses++
		res.Level = LevelMemory
		complete = sl.memAccess(block, llcProbe+h.cfg.LLCLatencyCyc)
		h.stats.MemBlocks++
		sl.llc.Insert(addr)
	}
	h.l1.Insert(addr)
	sl.mshrs = append(sl.mshrs, mshrEntry{block: block, start: start, complete: complete, owner: h})

	res.CompleteCycle = complete
	if typ != Load {
		// Stores retire into the store buffer; prefetches never block.
		res.CompleteCycle = issue + 1
	}
	return res
}

// WarmBlock installs addr's block into the agent's L1 and the shared LLC and
// its page into the agent's TLB without touching counters or resource
// schedules. Workload builders use it to start measurement from the steady
// state the paper measures (checkpoints with warmed caches).
func (h *Hierarchy) WarmBlock(addr uint64) {
	h.l1.Insert(addr)
	h.shared.llc.Insert(addr)
	h.tlb.WarmPage(addr)
	h.l1.ResetCounters()
	h.shared.llc.ResetCounters()
	h.tlb.ResetCounters()
}

// WarmLLCOnly installs addr's block into the shared LLC (not the L1) and
// warms its TLB page. Used to model index data that exceeds the L1 but fits
// the LLC.
func (h *Hierarchy) WarmLLCOnly(addr uint64) {
	h.shared.llc.Insert(addr)
	h.tlb.WarmPage(addr)
	h.shared.llc.ResetCounters()
	h.tlb.ResetCounters()
}

// AMAT returns the average memory access time implied by the agent's
// counters and configured latencies, in cycles. It is used by reports and
// sanity checks; the timing itself never uses AMAT (it uses per-access
// latencies).
func (h *Hierarchy) AMAT() float64 {
	s := h.stats
	accesses := s.L1Hits + s.L1Misses
	if accesses == 0 {
		return float64(h.cfg.L1LatencyCyc)
	}
	l1HitRate := float64(s.L1Hits) / float64(accesses)
	llcLookups := s.LLCHits + s.LLCMisses
	llcMissRate := 0.0
	if llcLookups > 0 {
		llcMissRate = float64(s.LLCMisses) / float64(llcLookups)
	}
	l1Lat := float64(h.cfg.L1LatencyCyc)
	llcLat := float64(h.cfg.InterconnectCyc + h.cfg.LLCLatencyCyc)
	memLat := float64(h.cfg.MemLatencyCycles())
	return l1Lat + (1-l1HitRate)*(llcLat+llcMissRate*memLat)
}
