package mem

// slotSchedule models a resource with a fixed per-slot capacity (e.g. an L1
// port array that accepts two accesses per cycle, or a memory controller that
// starts one block transfer per service interval). Unlike a "next free cycle"
// counter, it tolerates requests arriving out of time order, which the
// simulator produces because it processes one work item to completion before
// the next even though their lifetimes overlap.
type slotSchedule struct {
	// slotCycles is the width of one slot in cycles (1 for L1 ports,
	// the service interval for a memory controller).
	slotCycles uint64
	// capacity is how many grants fit in one slot.
	capacity int

	usage   map[uint64]int
	maxSlot uint64
	// horizon is the oldest slot still tracked; requests below it are
	// clamped (they would have been granted anyway).
	horizon     uint64
	sincePrune  int
	pruneWindow uint64
}

// newSlotSchedule builds a schedule. slotCycles must be at least 1.
func newSlotSchedule(slotCycles uint64, capacity int) *slotSchedule {
	if slotCycles == 0 {
		slotCycles = 1
	}
	if capacity <= 0 {
		capacity = 1
	}
	return &slotSchedule{
		slotCycles:  slotCycles,
		capacity:    capacity,
		usage:       make(map[uint64]int),
		pruneWindow: 1 << 17, // slots; ample compared to any realistic skew
	}
}

// reserve grants the earliest slot at or after the requested cycle and
// returns the cycle at which the grant begins.
func (s *slotSchedule) reserve(want uint64) uint64 {
	slot := want / s.slotCycles
	if slot < s.horizon {
		slot = s.horizon
	}
	for s.usage[slot] >= s.capacity {
		slot++
	}
	s.usage[slot]++
	if slot > s.maxSlot {
		s.maxSlot = slot
	}
	s.sincePrune++
	if s.sincePrune >= 1<<14 {
		s.prune()
	}
	start := slot * s.slotCycles
	if start < want {
		start = want
	}
	return start
}

// prune drops slots far behind the most recent grant. Simulated units run at
// most a few thousand cycles apart, so a 2^17-slot window is conservative.
func (s *slotSchedule) prune() {
	s.sincePrune = 0
	if s.maxSlot < s.pruneWindow {
		return
	}
	cutoff := s.maxSlot - s.pruneWindow
	for slot := range s.usage {
		if slot < cutoff {
			delete(s.usage, slot)
		}
	}
	if cutoff > s.horizon {
		s.horizon = cutoff
	}
}
