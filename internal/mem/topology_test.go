package mem

import (
	"math"
	"testing"
)

// TestTopologyRoundTripMatchesTable2 pins the Config <-> Topology mapping:
// the symmetric topology carries every Table 2 parameter, both tiers of the
// miss-handling model inherit the L1 MSHR count, and an attached agent's
// flattened Config() reproduces the original.
func TestTopologyRoundTripMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	top := cfg.Topology()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.Shared.FillBuffers != cfg.L1MSHRs || top.Private.MSHRs != cfg.L1MSHRs {
		t.Fatalf("both miss-handling tiers should inherit L1MSHRs: fill=%d mshrs=%d",
			top.Shared.FillBuffers, top.Private.MSHRs)
	}
	if top.Shared.BlockBytes != cfg.L1BlockBytes || top.Shared.LLCAssoc != cfg.LLCAssoc ||
		top.Private.L1SizeBytes != cfg.L1SizeBytes || top.Private.TLBWalkCyc != cfg.TLBWalkCyc {
		t.Fatalf("topology lost parameters: %+v", top)
	}
	if top.Private.LLCWays != 0 {
		t.Fatal("the flat config denotes an unpartitioned LLC")
	}
	h := NewSharedLevel(top).NewAgent(top.Agent("a"))
	if h.Config() != cfg {
		t.Fatalf("flattened agent config differs from the source:\n%+v\n%+v", h.Config(), cfg)
	}
	if h.Spec().Name != "a" || h.Spec().MSHRs != cfg.L1MSHRs {
		t.Fatalf("agent spec wrong: %+v", h.Spec())
	}
	// The shared spec's derived quantities match the flat config's.
	if top.Shared.MemLatencyCycles() != cfg.MemLatencyCycles() ||
		top.Shared.MemServiceIntervalCycles() != cfg.MemServiceIntervalCycles() {
		t.Fatal("derived memory timing differs between Config and SharedSpec")
	}
}

// TestTopologyValidateRejectsBadLatencies covers the validation gap the flat
// Config.Validate historically had: zero or absurd latency fields
// (L1LatencyCyc, LLCLatencyCyc, TLBWalkCyc, MemLatencyNs) now fail both the
// topology's Validate and, through it, the flat Config's.
func TestTopologyValidateRejectsBadLatencies(t *testing.T) {
	mutations := map[string]func(*Config){
		"l1 latency zero":    func(c *Config) { c.L1LatencyCyc = 0 },
		"l1 latency absurd":  func(c *Config) { c.L1LatencyCyc = 5_000 },
		"llc latency zero":   func(c *Config) { c.LLCLatencyCyc = 0 },
		"llc latency absurd": func(c *Config) { c.LLCLatencyCyc = 50_000 },
		"xbar absurd":        func(c *Config) { c.InterconnectCyc = 1 << 40 },
		"walk zero":          func(c *Config) { c.TLBWalkCyc = 0 },
		"walk absurd":        func(c *Config) { c.TLBWalkCyc = 10_000_000 },
		"mem zero":           func(c *Config) { c.MemLatencyNs = 0 },
		"mem negative":       func(c *Config) { c.MemLatencyNs = -45 },
		"mem NaN":            func(c *Config) { c.MemLatencyNs = math.NaN() },
		"mem absurd":         func(c *Config) { c.MemLatencyNs = 1e9 },
		"freq NaN":           func(c *Config) { c.FrequencyGHz = math.NaN() },
	}
	for name, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
		if err := cfg.Topology().Validate(); err == nil {
			t.Errorf("%s: invalid topology accepted", name)
		}
	}
}

// TestTopologyValidateRejectsBadSpecs covers the topology-only fields.
func TestTopologyValidateRejectsBadSpecs(t *testing.T) {
	top := DefaultTopology()
	top.Shared.FillBuffers = 0
	if err := top.Validate(); err == nil {
		t.Error("zero fill buffers accepted")
	}
	top = DefaultTopology()
	top.Private.MSHRs = 0
	if err := top.Validate(); err == nil {
		t.Error("zero per-agent MSHRs accepted")
	}
	top = DefaultTopology()
	top.Private.LLCWays = top.Shared.LLCAssoc + 1
	if err := top.Validate(); err == nil {
		t.Error("way partition wider than the LLC accepted")
	}
	top = DefaultTopology()
	top.Private.LLCWays = -1
	if err := top.Validate(); err == nil {
		t.Error("negative way partition accepted")
	}
	// The way mask is a uint64 bitmap: partitioning is bounded to 64-way
	// LLCs (a 128-way LLC is fine as long as no agent is fenced).
	top = DefaultTopology()
	top.Shared.LLCAssoc = 128
	top.Shared.LLCSizeBytes = 128 * 64 * 1024
	if err := top.Validate(); err != nil {
		t.Errorf("an unpartitioned 128-way LLC should validate: %v", err)
	}
	top.Private.LLCWays = 100
	if err := top.Validate(); err == nil {
		t.Error("partitioning a 128-way LLC accepted (mask would wrap)")
	}
	// NewAgent validates the spec it is handed, not just the default.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewAgent should panic on an invalid spec")
			}
		}()
		top := DefaultTopology()
		sl := NewSharedLevel(top)
		bad := top.Agent("bad")
		bad.MSHRs = 0
		sl.NewAgent(bad)
	}()
}

// TestTwoTierPrivateGate drives the private tier alone into saturation: an
// agent with 2 MSHRs in front of 10 shared fill buffers stalls on its own
// budget with the shared pool untouched — Section 3.2 per-accelerator
// saturation without cross-agent contention.
func TestTwoTierPrivateGate(t *testing.T) {
	top := DefaultTopology()
	agent := top.Agent("narrow")
	agent.MSHRs = 2
	sl := NewSharedLevel(top)
	sl.SetStrictOrder(true)
	h := sl.NewAgent(agent)
	for i := uint64(0); i < 4; i++ {
		h.TLB().WarmPage(0x100000 + i*0x10000)
	}
	r1 := h.Access(0x100000, 0, Load)
	h.Access(0x110000, 0, Load)
	r3 := h.Access(0x120000, 0, Load)
	if r3.CompleteCycle <= r1.CompleteCycle && h.Stats().MSHRStallCycles == 0 {
		t.Fatalf("third miss should stall on the 2-entry private tier: %+v", r3)
	}
	s := h.Stats()
	if s.MSHRStallCycles == 0 {
		t.Fatal("private MSHR stall not accounted")
	}
	if s.FillStallCycles != 0 {
		t.Fatalf("the 10-entry shared pool must not stall a lone 2-MSHR agent: fill stalls = %d", s.FillStallCycles)
	}
	if got := sl.Stats().MSHRStallCycles; got != s.MSHRStallCycles {
		t.Fatalf("shared view lost the stall attribution: %d vs %d", got, s.MSHRStallCycles)
	}
	// The private histogram caps at the agent's own budget. A later access
	// advances the accounting clock so the saturated span is folded in.
	h.Access(0x130000, r3.CompleteCycle+100, Load)
	s = h.Stats()
	if n := len(s.MSHROccupancy); n != agent.MSHRs+1 {
		t.Fatalf("private histogram sized %d, want %d", n, agent.MSHRs+1)
	}
	if share := s.MSHRSaturationShare(agent.MSHRs); share == 0 {
		t.Fatal("private tier never measured full despite stalling on it")
	}
}

// TestTwoTierSharedGate drives the shared tier alone into saturation: two
// generously provisioned agents (10 MSHRs each) contend for 2 shared fill
// buffers, so the stall is cross-agent and lands in FillStallCycles.
func TestTwoTierSharedGate(t *testing.T) {
	top := DefaultTopology()
	top.Shared.FillBuffers = 2
	sl := NewSharedLevel(top)
	sl.SetStrictOrder(true)
	a := sl.NewAgent(top.Agent("a"))
	b := sl.NewAgent(top.Agent("b"))
	for i := uint64(0); i < 4; i++ {
		a.TLB().WarmPage(0x100000 + i*0x10000)
		b.TLB().WarmPage(0x200000 + i*0x10000)
	}
	a.Access(0x100000, 0, Load)
	b.Access(0x200000, 0, Load)
	// Both buffers busy: the next miss from either agent waits on the pool
	// even though its private 10-MSHR budget is idle.
	a.Access(0x110000, 0, Load)
	as, bs := a.Stats(), b.Stats()
	if as.FillStallCycles == 0 {
		t.Fatal("cross-agent fill-buffer stall not accounted")
	}
	if as.MSHRStallCycles != as.FillStallCycles {
		t.Fatalf("the stall is entirely the shared tier's: total %d fill %d",
			as.MSHRStallCycles, as.FillStallCycles)
	}
	ss := sl.Stats()
	if ss.FillStallCycles != as.FillStallCycles+bs.FillStallCycles {
		t.Fatalf("fill stalls do not sum: shared %d, agents %d+%d",
			ss.FillStallCycles, as.FillStallCycles, bs.FillStallCycles)
	}
	// The shared histogram caps at the fill-buffer count, not the MSHRs.
	if n := len(ss.MSHROccupancy); n != 3 {
		t.Fatalf("shared histogram sized %d, want 3", n)
	}
}

// TestPerAgentStatsSumUnderHeterogeneity is the satellite invariant: with a
// way-partitioned LLC and heterogeneous per-agent MSHR budgets, every
// shared-resource counter — LLC hits/misses, combined misses, off-chip
// blocks, miss-handling and fill-buffer stalls — still sums across the
// per-agent views to the shared level's own totals, and the private
// counters sum into SystemStats.
func TestPerAgentStatsSumUnderHeterogeneity(t *testing.T) {
	top := DefaultTopology()
	sl := NewSharedLevel(top)
	sl.SetStrictOrder(true)

	narrow := top.Agent("narrow") // tight private tier, small partition
	narrow.MSHRs = 2
	narrow.LLCWays = 2
	wide := top.Agent("wide") // generous private tier, half the LLC
	wide.MSHRs = 10
	wide.LLCWays = 8
	host := top.Agent("host") // default spec, unpartitioned

	agents := []*Hierarchy{sl.NewAgent(narrow), sl.NewAgent(wide), sl.NewAgent(host)}

	// A deterministic monotonic access stream: the agents interleave loads
	// over overlapping block ranges (shared blocks exercise cross-agent
	// combining) and disjoint streaming ranges (exercising way-partitioned
	// eviction), with the cycle advanced by each access's completion.
	cycle := uint64(0)
	for i := 0; i < 4000; i++ {
		h := agents[i%len(agents)]
		var addr uint64
		switch {
		case i%7 == 0: // shared range: cross-agent reuse and combining
			addr = 0x4000000 + uint64(i%64)*64
		default: // per-agent streaming range
			addr = uint64(0x8000000*(1+i%len(agents))) + uint64(i)*64
		}
		r := h.Access(addr, cycle, Load)
		if i%3 == 0 {
			cycle = r.CompleteCycle // let fills drain occasionally
		} else if i%5 == 0 {
			cycle++ // keep several misses in flight
		}
	}

	var sum Stats
	for _, v := range sl.AgentStatsAll() {
		sum = sum.Add(v.Stats)
	}
	ss := sl.Stats()
	type pair struct {
		name         string
		agents, shrd uint64
	}
	for _, p := range []pair{
		{"LLCHits", sum.LLCHits, ss.LLCHits},
		{"LLCMisses", sum.LLCMisses, ss.LLCMisses},
		{"CombinedMisses", sum.CombinedMisses, ss.CombinedMisses},
		{"MemBlocks", sum.MemBlocks, ss.MemBlocks},
		{"MSHRStallCycles", sum.MSHRStallCycles, ss.MSHRStallCycles},
		{"FillStallCycles", sum.FillStallCycles, ss.FillStallCycles},
	} {
		if p.agents != p.shrd {
			t.Errorf("%s: per-agent sum %d != shared total %d", p.name, p.agents, p.shrd)
		}
	}
	sys := sl.SystemStats()
	if sys.Loads != sum.Loads || sys.L1Misses != sum.L1Misses || sys.TLBMisses != sum.TLBMisses {
		t.Fatalf("SystemStats does not sum private counters: %+v vs %+v", sys, sum)
	}
	// The heterogeneous budgets were actually exercised: the narrow agent
	// stalled on its private tier at some point.
	ns := agents[0].Stats()
	if ns.MSHRStallCycles == 0 {
		t.Log("note: narrow agent never stalled; stream too gentle for the 2-MSHR tier")
	}
	if len(ns.MSHROccupancy) != 3 || len(agents[1].Stats().MSHROccupancy) != 11 {
		t.Fatalf("per-agent histograms not sized to each agent's budget: %d, %d",
			len(ns.MSHROccupancy), len(agents[1].Stats().MSHROccupancy))
	}
}

// TestWayPartitionIsolatesWorkingSet shows the partition doing its QoS job
// at the hierarchy level: a streaming aggressor confined to 2 of the LLC's
// ways cannot evict a victim's warmed working set from the other ways,
// while the same aggressor unpartitioned flushes it.
func TestWayPartitionIsolatesWorkingSet(t *testing.T) {
	run := func(aggressorWays int) (survivors int) {
		top := DefaultTopology()
		top.Shared.LLCSizeBytes = 64 * 1024 // 64 sets x 16 ways, quick to flush
		victim := top.Agent("victim")
		aggressor := top.Agent("aggressor")
		aggressor.LLCWays = aggressorWays
		sl := NewSharedLevel(top)
		v := sl.NewAgent(victim)
		a := sl.NewAgent(aggressor)

		// Warm 8 blocks per set for the victim (half the LLC).
		var warmed []uint64
		for i := 0; i < 8*64; i++ {
			addr := 0x1000000 + uint64(i)*64
			v.WarmLLCOnly(addr)
			warmed = append(warmed, addr)
		}
		// The aggressor streams 4x the LLC capacity.
		cycle := uint64(0)
		for i := 0; i < 4*1024; i++ {
			r := a.Access(0x8000000+uint64(i)*64, cycle, Load)
			cycle = r.CompleteCycle
		}
		for _, addr := range warmed {
			if sl.LLC().Contains(addr) {
				survivors++
			}
		}
		return survivors
	}
	unpartitioned := run(0)
	fenced := run(2)
	t.Logf("victim blocks surviving the aggressor: unpartitioned %d/512, 2-way fence %d/512",
		unpartitioned, fenced)
	if unpartitioned > 64 {
		t.Fatalf("unpartitioned streaming should flush the victim (survivors %d)", unpartitioned)
	}
	// With the aggressor fenced to 2 ways, the victim's blocks in the other
	// 14 ways are untouchable; warming placed them in the low ways first,
	// so at least the blocks outside the fence must survive.
	if fenced < 512-2*64 {
		t.Fatalf("2-way fence should protect the victim's working set (survivors %d/512)", fenced)
	}
	if fenced <= unpartitioned {
		t.Fatal("the fence did not protect the victim at all")
	}
}
