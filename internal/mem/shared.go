package mem

import (
	"fmt"
	"slices"
)

// SharedLevel is the part of the memory system every agent of the simulated
// chip shares: the LLC, the fill-buffer pool that bounds concurrently
// outstanding fills chip-wide, and the memory controllers' bandwidth
// schedule. Private per-agent state (L1-D, TLB, L1 ports, per-agent MSHRs)
// lives in Hierarchy; a Hierarchy is one agent's view of the machine and
// routes its L1 misses here.
//
// Miss handling is two-tier: an agent's miss first allocates one of its own
// MSHRs (AgentSpec.MSHRs — Section 3.2's per-accelerator saturation), then a
// shared fill buffer (SharedSpec.FillBuffers — cross-agent contention). In
// the symmetric topology a flat Config denotes, both tiers have the same
// capacity and the model degenerates to the historical single shared pool.
//
// A SharedLevel is deliberately not safe for concurrent use: the system
// scheduler (internal/system) issues all agents' accesses from a single
// goroutine in globally monotonically non-decreasing cycle order, which keeps
// results deterministic and makes live resource occupancy well-defined.
// SetStrictOrder turns the ordering contract into a hard assertion.
type SharedLevel struct {
	top Topology

	llc *Cache
	// mshrs holds outstanding misses across all agents; at most
	// top.Shared.FillBuffers live at once chip-wide, and at most
	// spec.MSHRs per owning agent.
	mshrs []mshrEntry
	// mcs grants block-transfer slots, one per service interval per
	// controller, enforcing the effective off-chip bandwidth.
	mcs []*slotSchedule

	// strictOrder makes Access panic when a request's cycle precedes an
	// earlier request's cycle (debug assertion for the execution core).
	// lastRequest is the cycle of the most recent Access request from any
	// agent.
	strictOrder bool
	lastRequest uint64

	// occHist is the time-weighted histogram of live fill-buffer occupancy
	// across all agents; occLast/occStarted anchor its accounting (see
	// Stats). Each agent additionally keeps its own MSHR-occupancy
	// histogram over its private tier.
	occHist    []uint64
	occLast    uint64
	occStarted bool

	// stats independently accumulates shared-resource activity (LLC lookups,
	// off-chip blocks, MSHR stalls, combined misses). Each agent's Hierarchy
	// counts its own share of the same events, so the per-agent views always
	// sum to these totals — the invariant contention reports rely on.
	stats Stats

	agents []*Hierarchy
}

// NewSharedLevel builds the shared memory-system level of the topology. It
// panics on an invalid shared spec; call top.Validate first when the
// topology is user-supplied. Flat-Config callers use
// NewSharedLevel(cfg.Topology()) or the NewHierarchy shorthand.
func NewSharedLevel(top Topology) *SharedLevel {
	if err := top.Shared.Validate(); err != nil {
		panic(err)
	}
	sl := &SharedLevel{
		top: top,
		llc: NewCache("LLC", top.Shared.LLCSizeBytes, top.Shared.LLCAssoc, top.Shared.BlockBytes),
		mcs: make([]*slotSchedule, top.Shared.MemControllers),
	}
	// A memory controller starts at most one block transfer per service
	// slot (the rounded interval MemBandwidthUtilization also measures
	// against).
	for i := range sl.mcs {
		sl.mcs[i] = newSlotSchedule(top.Shared.memServiceSlotCycles(), 1)
	}
	sl.occHist = make([]uint64, top.Shared.FillBuffers+1)
	return sl
}

// NewAgent attaches a new agent to the shared level: a Hierarchy view with
// the spec's private L1-D, TLB, L1 ports and MSHRs that shares this level's
// LLC, fill buffers and memory bandwidth with every other agent. Start from
// Topology.Agent(name) and override fields for heterogeneous agents. An
// empty name is replaced with "agentN" in attachment order. NewAgent panics
// on an invalid spec; validate user-supplied specs with
// AgentSpec.Validate first.
func (sl *SharedLevel) NewAgent(spec AgentSpec) *Hierarchy {
	if err := spec.Validate(sl.top.Shared); err != nil {
		panic(err)
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("agent%d", len(sl.agents))
	}
	h := &Hierarchy{
		spec:    spec,
		shared:  sl,
		wayMask: spec.llcWayMask(sl.top.Shared.LLCAssoc),
		l1:      NewCache("L1-D", spec.L1SizeBytes, spec.L1Assoc, sl.top.Shared.BlockBytes),
		tlb:     NewTLB(spec.TLBEntries, spec.PageBytes, spec.TLBWalkCyc, spec.TLBInFlight),
		ports:   newSlotSchedule(1, spec.L1Ports),
	}
	h.occHist = make([]uint64, spec.MSHRs+1)
	sl.agents = append(sl.agents, h)
	return h
}

// Topology returns the shared level's topology: the shared spec it was
// built from plus the default private spec new agents inherit.
func (sl *SharedLevel) Topology() Topology { return sl.top }

// LLC exposes the shared LLC model (for warm-up and tests).
func (sl *SharedLevel) LLC() *Cache { return sl.llc }

// Agents returns the attached agent views in attachment order.
func (sl *SharedLevel) Agents() []*Hierarchy {
	return append([]*Hierarchy(nil), sl.agents...)
}

// SetStrictOrder toggles the debug assertion that Access requests — from all
// agents combined — arrive in monotonically non-decreasing cycle order. The
// system scheduler guarantees this ordering by construction; enabling the
// assertion makes any scheduler regression fail loudly instead of silently
// corrupting resource accounting.
func (sl *SharedLevel) SetStrictOrder(on bool) { sl.strictOrder = on }

// Stats returns the shared-resource totals: LLC hits and misses, combined
// (secondary) misses, off-chip block transfers and miss-handling stalls
// accumulated across every agent, plus the fill-buffer occupancy histogram
// of the shared pool. Private counters (loads, L1, TLB, port stalls) stay
// zero here; read them from the per-agent views.
func (sl *SharedLevel) Stats() Stats {
	s := sl.stats
	s.MSHROccupancy = append([]uint64(nil), sl.occHist...)
	return s
}

// AgentStats is one agent's labeled counter view, for contention reports
// that attribute shared-resource pressure to its source.
type AgentStats struct {
	Name  string
	Stats Stats
}

// AgentStatsAll returns every agent's labeled counters in attachment order.
// Summing any shared-resource field (LLC hits/misses, combined misses,
// MemBlocks, MSHR and fill-buffer stalls) over the result reproduces
// Stats(); the occupancy histograms differ by design (per-agent MSHR tier
// vs. shared fill-buffer tier).
func (sl *SharedLevel) AgentStatsAll() []AgentStats {
	out := make([]AgentStats, len(sl.agents))
	for i, a := range sl.agents {
		out[i] = AgentStats{Name: a.spec.Name, Stats: a.Stats()}
	}
	return out
}

// SystemStats returns the sum of every agent's counters (private and shared
// alike), with the shared fill-buffer occupancy histogram attached.
func (sl *SharedLevel) SystemStats() Stats {
	var sum Stats
	for _, a := range sl.agents {
		sum = sum.Add(a.stats)
	}
	sum.MSHROccupancy = append([]uint64(nil), sl.occHist...)
	return sum
}

// ResetCounters clears the shared-resource counters and every attached
// agent's private counters (but not cache/TLB contents, resource schedules or
// in-flight misses), marking the start of a measurement phase for the whole
// system. The occupancy histograms re-anchor at the phase's first access.
func (sl *SharedLevel) ResetCounters() {
	sl.resetSharedCounters()
	for _, a := range sl.agents {
		a.resetPrivateCounters()
	}
}

// resetSharedCounters clears the shared-level half of the counters. The
// occupancy histogram lives only in occHist; Stats() attaches a copy of it,
// so sl.stats itself never carries one.
func (sl *SharedLevel) resetSharedCounters() {
	sl.stats = Stats{}
	sl.occHist = make([]uint64, sl.top.Shared.FillBuffers+1)
	sl.occStarted = false
	sl.llc.ResetCounters()
}

// checkOrder applies the strict-order assertion and advances the global
// request clock.
func (sl *SharedLevel) checkOrder(agent string, addr uint64, cycle uint64, typ AccessType) {
	if sl.strictOrder && cycle < sl.lastRequest {
		panic(fmt.Sprintf("mem: out-of-order access: %s %s of %#x at cycle %d after a request at cycle %d",
			agent, typ, addr, cycle, sl.lastRequest))
	}
	if cycle > sl.lastRequest {
		sl.lastRequest = cycle
	}
}

// reapMSHRs drops entries whose miss has completed by the given cycle and
// whose live span has been fully folded into both occupancy histograms —
// the shared pool's and the owning agent's (complete <= both accounting
// clocks); later entries stay until the clocks pass them.
func (sl *SharedLevel) reapMSHRs(cycle uint64) {
	live := sl.mshrs[:0]
	for _, e := range sl.mshrs {
		if e.complete > cycle || e.complete > sl.occLast || e.complete > e.owner.occLast {
			live = append(live, e)
		}
	}
	sl.mshrs = live
}

// findMSHR returns the outstanding entry for block, if any.
func (sl *SharedLevel) findMSHR(block uint64, cycle uint64) (mshrEntry, bool) {
	for _, e := range sl.mshrs {
		if e.block == block && e.complete > cycle {
			return e, true
		}
	}
	return mshrEntry{}, false
}

// recordOccupancy advances the fill-buffer occupancy histogram from the last
// accounted cycle to now, walking the outstanding-miss completion events in
// time order so every intermediate occupancy level is charged its cycles.
// Requests arriving out of order (now <= occLast) contribute nothing; under
// the execution core's monotonic issue order the histogram is exact.
func (sl *SharedLevel) recordOccupancy(now uint64) {
	sl.occStarted, sl.occLast = advanceOccupancy(sl.occHist, sl.mshrs, nil,
		sl.occStarted, sl.occLast, now)
}

// advanceOccupancy folds the span [last, now) into hist, counting at each
// instant the entries live at that instant — all of them when owner is nil,
// or only the owner's. It returns the updated (started, last) anchors. The
// top bucket clamps occupancies at or above the histogram's capacity.
func advanceOccupancy(hist []uint64, entries []mshrEntry, owner *Hierarchy,
	started bool, last, now uint64) (bool, uint64) {
	if !started {
		// Anchor accounting at the phase's first access rather than
		// charging the span from cycle zero (or from a previous phase).
		return true, now
	}
	for t := last; t < now; {
		live := 0
		next := now
		for _, e := range entries {
			if owner != nil && e.owner != owner {
				continue
			}
			// An entry occupies its slot from allocation to fill return;
			// both edges bound the constant-occupancy segment.
			if e.start <= t && e.complete > t {
				live++
			}
			if e.start > t && e.start < next {
				next = e.start
			}
			if e.complete > t && e.complete < next {
				next = e.complete
			}
		}
		if live < len(hist) {
			hist[live] += next - t
		} else if n := len(hist); n > 0 {
			hist[n-1] += next - t
		}
		t = next
	}
	if now > last {
		last = now
	}
	return true, last
}

// acquireFillBuffer blocks (advances time) until a shared fill buffer is
// free at or after want, returning the cycle at which the slot is available
// and the stall it cost. An entry occupies its slot over [start, complete),
// so the allocation must wait for enough completions that the
// concurrent-occupancy cap is respected at the returned cycle — waiting for
// the single earliest completion is not enough when requests with
// out-of-order issue cycles left more than a cap's worth of fills in flight
// past `want`.
func (sl *SharedLevel) acquireFillBuffer(want uint64) (start uint64, stall uint64) {
	sl.reapMSHRs(want)
	// Completions of entries still in flight at want, i.e. spans that
	// overlap the candidate allocation.
	live := sl.completesAfter(want, nil)
	if len(live) < sl.top.Shared.FillBuffers {
		return want, 0
	}
	// Wait until all but (cap-1) of the overlapping fills have returned.
	slices.Sort(live)
	start = live[len(live)-sl.top.Shared.FillBuffers]
	return start, start - want
}

// completesAfter returns the completion cycles of entries whose fill is
// still outstanding after the given cycle — all entries when owner is nil,
// or only the owner's (the private MSHR tier).
func (sl *SharedLevel) completesAfter(cycle uint64, owner *Hierarchy) []uint64 {
	out := make([]uint64, 0, len(sl.mshrs))
	for _, e := range sl.mshrs {
		if e.complete > cycle && (owner == nil || e.owner == owner) {
			out = append(out, e.complete)
		}
	}
	return out
}

// memAccess schedules one block transfer on the memory controller that owns
// the block and returns the completion cycle of the data return.
func (sl *SharedLevel) memAccess(block uint64, start uint64) uint64 {
	mc := int((block / uint64(sl.top.Shared.BlockBytes))) % sl.top.Shared.MemControllers
	begin := sl.mcs[mc].reserve(start)
	sl.stats.MemBlocks++
	return begin + sl.top.Shared.MemLatencyCycles()
}
