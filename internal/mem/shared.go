package mem

import (
	"fmt"
	"slices"
)

// SharedLevel is the part of the memory system every agent of the simulated
// chip shares: the LLC, the MSHR pool that bounds concurrently outstanding
// fills, and the memory controllers' bandwidth schedule. Private per-agent
// state (L1-D, TLB, L1 ports) lives in Hierarchy; a Hierarchy is one agent's
// view of the machine and routes its L1 misses here.
//
// A SharedLevel is deliberately not safe for concurrent use: the system
// scheduler (internal/system) issues all agents' accesses from a single
// goroutine in globally monotonically non-decreasing cycle order, which keeps
// results deterministic and makes live resource occupancy well-defined.
// SetStrictOrder turns the ordering contract into a hard assertion.
type SharedLevel struct {
	cfg Config

	llc *Cache
	// mshrs holds outstanding misses; at most cfg.L1MSHRs live at once
	// across all agents.
	mshrs []mshrEntry
	// mcs grants block-transfer slots, one per service interval per
	// controller, enforcing the effective off-chip bandwidth.
	mcs []*slotSchedule

	// strictOrder makes Access panic when a request's cycle precedes an
	// earlier request's cycle (debug assertion for the execution core).
	// lastRequest is the cycle of the most recent Access request from any
	// agent.
	strictOrder bool
	lastRequest uint64

	// occHist is the time-weighted histogram of live MSHR occupancy across
	// all agents; occLast/occStarted anchor its accounting (see Stats).
	occHist    []uint64
	occLast    uint64
	occStarted bool

	// stats independently accumulates shared-resource activity (LLC lookups,
	// off-chip blocks, MSHR stalls, combined misses). Each agent's Hierarchy
	// counts its own share of the same events, so the per-agent views always
	// sum to these totals — the invariant contention reports rely on.
	stats Stats

	agents []*Hierarchy
}

// NewSharedLevel builds the shared memory-system level from the
// configuration. It panics on an invalid configuration; call cfg.Validate
// first when the configuration is user-supplied.
func NewSharedLevel(cfg Config) *SharedLevel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sl := &SharedLevel{
		cfg: cfg,
		llc: NewCache("LLC", cfg.LLCSizeBytes, cfg.LLCAssoc, cfg.L1BlockBytes),
		mcs: make([]*slotSchedule, cfg.MemControllers),
	}
	// A memory controller starts at most one 64-byte block transfer per
	// service slot (the rounded interval MemBandwidthUtilization also
	// measures against).
	for i := range sl.mcs {
		sl.mcs[i] = newSlotSchedule(cfg.memServiceSlotCycles(), 1)
	}
	sl.occHist = make([]uint64, cfg.L1MSHRs+1)
	return sl
}

// NewAgent attaches a new agent to the shared level: a Hierarchy view with a
// private L1-D, TLB and L1 ports that shares this level's LLC, MSHR pool and
// memory bandwidth with every other agent. An empty name is replaced with
// "agentN" in attachment order.
func (sl *SharedLevel) NewAgent(name string) *Hierarchy {
	if name == "" {
		name = fmt.Sprintf("agent%d", len(sl.agents))
	}
	cfg := sl.cfg
	h := &Hierarchy{
		cfg:    cfg,
		name:   name,
		shared: sl,
		l1:     NewCache("L1-D", cfg.L1SizeBytes, cfg.L1Assoc, cfg.L1BlockBytes),
		tlb:    NewTLB(cfg.TLBEntries, cfg.PageBytes, cfg.TLBWalkCyc, cfg.TLBInFlight),
		ports:  newSlotSchedule(1, cfg.L1Ports),
	}
	sl.agents = append(sl.agents, h)
	return h
}

// Config returns the shared level's configuration.
func (sl *SharedLevel) Config() Config { return sl.cfg }

// LLC exposes the shared LLC model (for warm-up and tests).
func (sl *SharedLevel) LLC() *Cache { return sl.llc }

// Agents returns the attached agent views in attachment order.
func (sl *SharedLevel) Agents() []*Hierarchy {
	return append([]*Hierarchy(nil), sl.agents...)
}

// SetStrictOrder toggles the debug assertion that Access requests — from all
// agents combined — arrive in monotonically non-decreasing cycle order. The
// system scheduler guarantees this ordering by construction; enabling the
// assertion makes any scheduler regression fail loudly instead of silently
// corrupting resource accounting.
func (sl *SharedLevel) SetStrictOrder(on bool) { sl.strictOrder = on }

// Stats returns the shared-resource totals: LLC hits and misses, combined
// (secondary) misses, off-chip block transfers and MSHR allocation stalls
// accumulated across every agent, plus the MSHR-occupancy histogram of the
// shared pool. Private counters (loads, L1, TLB, port stalls) stay zero here;
// read them from the per-agent views.
func (sl *SharedLevel) Stats() Stats {
	s := sl.stats
	s.MSHROccupancy = append([]uint64(nil), sl.occHist...)
	return s
}

// AgentStats is one agent's labeled counter view, for contention reports
// that attribute shared-resource pressure to its source.
type AgentStats struct {
	Name  string
	Stats Stats
}

// AgentStatsAll returns every agent's labeled counters in attachment order.
// Summing any shared-resource field (LLC hits/misses, combined misses,
// MemBlocks, MSHR stalls) over the result reproduces Stats().
func (sl *SharedLevel) AgentStatsAll() []AgentStats {
	out := make([]AgentStats, len(sl.agents))
	for i, a := range sl.agents {
		out[i] = AgentStats{Name: a.name, Stats: a.Stats()}
	}
	return out
}

// SystemStats returns the sum of every agent's counters (private and shared
// alike), with the shared MSHR-occupancy histogram attached.
func (sl *SharedLevel) SystemStats() Stats {
	var sum Stats
	for _, a := range sl.agents {
		sum = sum.Add(a.stats)
	}
	sum.MSHROccupancy = append([]uint64(nil), sl.occHist...)
	return sum
}

// ResetCounters clears the shared-resource counters and every attached
// agent's private counters (but not cache/TLB contents, resource schedules or
// in-flight misses), marking the start of a measurement phase for the whole
// system. The occupancy histogram re-anchors at the phase's first access.
func (sl *SharedLevel) ResetCounters() {
	sl.resetSharedCounters()
	for _, a := range sl.agents {
		a.resetPrivateCounters()
	}
}

// resetSharedCounters clears the shared-level half of the counters. The
// occupancy histogram lives only in occHist; Stats() attaches a copy of it,
// so sl.stats itself never carries one.
func (sl *SharedLevel) resetSharedCounters() {
	sl.stats = Stats{}
	sl.occHist = make([]uint64, sl.cfg.L1MSHRs+1)
	sl.occStarted = false
	sl.llc.ResetCounters()
}

// checkOrder applies the strict-order assertion and advances the global
// request clock.
func (sl *SharedLevel) checkOrder(agent string, addr uint64, cycle uint64, typ AccessType) {
	if sl.strictOrder && cycle < sl.lastRequest {
		panic(fmt.Sprintf("mem: out-of-order access: %s %s of %#x at cycle %d after a request at cycle %d",
			agent, typ, addr, cycle, sl.lastRequest))
	}
	if cycle > sl.lastRequest {
		sl.lastRequest = cycle
	}
}

// reapMSHRs drops entries whose miss has completed by the given cycle and
// whose live span has been fully folded into the occupancy histogram
// (complete <= occLast); later entries stay until the accounting clock
// passes them.
func (sl *SharedLevel) reapMSHRs(cycle uint64) {
	live := sl.mshrs[:0]
	for _, e := range sl.mshrs {
		if e.complete > cycle || e.complete > sl.occLast {
			live = append(live, e)
		}
	}
	sl.mshrs = live
}

// findMSHR returns the outstanding entry for block, if any.
func (sl *SharedLevel) findMSHR(block uint64, cycle uint64) (mshrEntry, bool) {
	for _, e := range sl.mshrs {
		if e.block == block && e.complete > cycle {
			return e, true
		}
	}
	return mshrEntry{}, false
}

// recordOccupancy advances the MSHR-occupancy histogram from the last
// accounted cycle to now, walking the outstanding-miss completion events in
// time order so every intermediate occupancy level is charged its cycles.
// Requests arriving out of order (now <= occLast) contribute nothing; under
// the execution core's monotonic issue order the histogram is exact.
func (sl *SharedLevel) recordOccupancy(now uint64) {
	if !sl.occStarted {
		// Anchor accounting at the phase's first access rather than
		// charging the span from cycle zero (or from a previous phase).
		sl.occStarted = true
		sl.occLast = now
		return
	}
	for t := sl.occLast; t < now; {
		live := 0
		next := now
		for _, e := range sl.mshrs {
			// An entry occupies its MSHR from allocation to fill return;
			// both edges bound the constant-occupancy segment.
			if e.start <= t && e.complete > t {
				live++
			}
			if e.start > t && e.start < next {
				next = e.start
			}
			if e.complete > t && e.complete < next {
				next = e.complete
			}
		}
		if live < len(sl.occHist) {
			sl.occHist[live] += next - t
		} else if n := len(sl.occHist); n > 0 {
			sl.occHist[n-1] += next - t
		}
		t = next
	}
	if now > sl.occLast {
		sl.occLast = now
	}
}

// acquireMSHR blocks (advances time) until an MSHR slot is free at or after
// want, returning the cycle at which the slot is available and the stall the
// caller attributes to its agent. An entry occupies its slot over
// [start, complete), so the allocation must wait for enough completions that
// the concurrent-occupancy cap is respected at the returned cycle — waiting
// for the single earliest completion is not enough when requests with
// out-of-order issue cycles left more than a cap's worth of fills in flight
// past `want`.
func (sl *SharedLevel) acquireMSHR(want uint64) (start uint64, stall uint64) {
	sl.reapMSHRs(want)
	// Completions of entries still in flight at want, i.e. spans that
	// overlap the candidate allocation.
	live := sl.completesAfter(want)
	if len(live) < sl.cfg.L1MSHRs {
		return want, 0
	}
	// Wait until all but (cap-1) of the overlapping fills have returned.
	slices.Sort(live)
	start = live[len(live)-sl.cfg.L1MSHRs]
	stall = start - want
	sl.stats.MSHRStallCycles += stall
	return start, stall
}

// completesAfter returns the completion cycles of entries whose fill is
// still outstanding after the given cycle.
func (sl *SharedLevel) completesAfter(cycle uint64) []uint64 {
	out := make([]uint64, 0, len(sl.mshrs))
	for _, e := range sl.mshrs {
		if e.complete > cycle {
			out = append(out, e.complete)
		}
	}
	return out
}

// memAccess schedules one block transfer on the memory controller that owns
// the block and returns the completion cycle of the data return.
func (sl *SharedLevel) memAccess(block uint64, start uint64) uint64 {
	mc := int((block / uint64(sl.cfg.L1BlockBytes))) % sl.cfg.MemControllers
	begin := sl.mcs[mc].reserve(start)
	sl.stats.MemBlocks++
	return begin + sl.cfg.MemLatencyCycles()
}
