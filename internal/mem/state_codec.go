package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// This file is the serialization side of warm-state checkpointing: a
// versioned binary codec for WarmState so snapshots can persist through
// warmstate.DiskStore and survive the process (a fresh run restores a
// previous run's fast-forward checkpoint instead of re-warming). The
// encoding is canonical — TLB translations are written in ascending page
// order — so two equal-content snapshots encode to identical bytes and a
// decoded snapshot's ContentHash matches the original's.

// warmStateMagic and warmStateVersion gate decoding: a payload from a
// different codec revision is rejected rather than misread.
const (
	warmStateMagic   = "widxwarm"
	warmStateVersion = 1
)

// stateEncoder accumulates the little-endian encoding.
type stateEncoder struct {
	buf []byte
}

func (e *stateEncoder) word(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

func (e *stateEncoder) boolean(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *stateEncoder) cache(st *CacheState) {
	e.word(uint64(st.sets))
	e.word(uint64(st.ways))
	e.word(uint64(st.blockBits))
	e.word(st.clock)
	// Set-major iteration order keeps the payload byte-identical to the
	// historical [][]-layout encoding, so persisted snapshots stay valid.
	for i := range st.tags {
		e.boolean(st.valid[i])
		e.word(st.tags[i])
		e.word(st.lru[i])
	}
}

func (e *stateEncoder) tlb(st *TLBState) {
	e.word(uint64(st.entries))
	e.word(uint64(st.pageBits))
	e.word(st.clock)
	e.word(uint64(len(st.pages)))
	vpns := make([]uint64, 0, len(st.pages))
	for vpn := range st.pages {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, vpn := range vpns {
		e.word(vpn)
		e.word(st.pages[vpn])
	}
}

// EncodeBinary serializes the snapshot. The encoding is deterministic:
// equal-content snapshots produce identical bytes.
func (ws *WarmState) EncodeBinary() []byte {
	e := &stateEncoder{buf: append([]byte(nil), warmStateMagic...)}
	e.word(warmStateVersion)
	e.cache(ws.llc)
	e.word(uint64(len(ws.agents)))
	for _, a := range ws.agents {
		e.cache(a.l1)
		e.tlb(a.tlb)
	}
	return e.buf
}

// stateDecoder consumes a little-endian encoding, latching the first error.
type stateDecoder struct {
	buf []byte
	err error
}

func (d *stateDecoder) word() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.err = fmt.Errorf("mem: truncated warm-state payload")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *stateDecoder) boolean() bool {
	if d.err != nil {
		return false
	}
	if len(d.buf) < 1 {
		d.err = fmt.Errorf("mem: truncated warm-state payload")
		return false
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b != 0
}

// count reads a length field and bounds it by the remaining payload, so a
// corrupt header cannot drive allocation beyond the input size.
func (d *stateDecoder) count(perItem int) int {
	n := d.word()
	if d.err == nil && n > uint64(len(d.buf)/perItem+1) {
		d.err = fmt.Errorf("mem: warm-state payload declares %d items with %d bytes left", n, len(d.buf))
		return 0
	}
	return int(n)
}

func (d *stateDecoder) cache() *CacheState {
	st := &CacheState{
		sets:      d.count(1),
		ways:      int(d.word()),
		blockBits: uint(d.word()),
		clock:     d.word(),
	}
	if d.err != nil {
		return st
	}
	n := st.sets * st.ways
	st.tags = make([]uint64, n)
	st.valid = make([]bool, n)
	st.lru = make([]uint64, n)
	for i := 0; i < n && d.err == nil; i++ {
		st.valid[i] = d.boolean()
		st.tags[i] = d.word()
		st.lru[i] = d.word()
	}
	return st
}

func (d *stateDecoder) tlb() *TLBState {
	st := &TLBState{
		entries:  int(d.word()),
		pageBits: uint(d.word()),
		clock:    d.word(),
	}
	n := d.count(16)
	if d.err != nil {
		return st
	}
	st.pages = make(map[uint64]uint64, n)
	for i := 0; i < n && d.err == nil; i++ {
		vpn := d.word()
		st.pages[vpn] = d.word()
	}
	return st
}

// DecodeWarmState parses an EncodeBinary payload. Geometry compatibility
// with the restoring level is not checked here; RestoreWarmState panics on
// a mismatch exactly as it does for an in-process snapshot.
func DecodeWarmState(data []byte) (*WarmState, error) {
	if len(data) < len(warmStateMagic) || string(data[:len(warmStateMagic)]) != warmStateMagic {
		return nil, fmt.Errorf("mem: not a warm-state payload")
	}
	d := &stateDecoder{buf: data[len(warmStateMagic):]}
	if v := d.word(); d.err == nil && v != warmStateVersion {
		return nil, fmt.Errorf("mem: warm-state payload version %d, want %d", v, warmStateVersion)
	}
	ws := &WarmState{llc: d.cache()}
	n := d.count(1)
	for i := 0; i < n && d.err == nil; i++ {
		ws.agents = append(ws.agents, agentWarmState{l1: d.cache(), tlb: d.tlb()})
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("mem: %d trailing bytes after warm-state payload", len(d.buf))
	}
	return ws, nil
}
