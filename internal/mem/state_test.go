package mem

import (
	"fmt"
	"testing"
)

// hetLevel builds the heterogeneous machine from
// TestPerAgentStatsSumUnderHeterogeneity: a way-partitioned LLC in front
// of agents with distinct MSHR budgets, partitions and TLB sizes.
func hetLevel() (*SharedLevel, []*Hierarchy) {
	top := DefaultTopology()
	narrow := top.Agent("narrow")
	narrow.MSHRs = 2
	narrow.LLCWays = 2
	narrow.TLBEntries = 16
	wide := top.Agent("wide")
	wide.MSHRs = 10
	wide.LLCWays = 8
	host := top.Agent("host")
	sl := NewSharedLevel(top)
	sl.SetStrictOrder(true)
	agents := []*Hierarchy{sl.NewAgent(narrow), sl.NewAgent(wide), sl.NewAgent(host)}
	return sl, agents
}

// warmHet applies a deterministic mixed warming policy: LLC+TLB warming
// for the partitioned agents (the cmp experiment's policy) and full
// L1+LLC+TLB warming for the host, so the snapshot covers both paths.
func warmHet(agents []*Hierarchy) {
	for i := 0; i < 512; i++ {
		addr := 0x1000000 + uint64(i)*64
		agents[i%2].WarmLLCOnly(addr)
	}
	for i := 0; i < 128; i++ {
		agents[2].WarmBlock(0x4000000 + uint64(i)*64)
	}
}

// driveHet replays the heterogeneity test's deterministic access stream
// and fingerprints every agent's stats plus the shared totals.
func driveHet(sl *SharedLevel, agents []*Hierarchy) string {
	cycle := uint64(0)
	for i := 0; i < 4000; i++ {
		h := agents[i%len(agents)]
		var addr uint64
		switch {
		case i%7 == 0:
			addr = 0x1000000 + uint64(i%64)*64
		default:
			addr = uint64(0x8000000*(1+i%len(agents))) + uint64(i)*64
		}
		r := h.Access(addr, cycle, Load)
		if i%3 == 0 {
			cycle = r.CompleteCycle
		} else if i%5 == 0 {
			cycle++
		}
	}
	out := ""
	for _, v := range sl.AgentStatsAll() {
		out += fmt.Sprintf("%s: %+v\n", v.Name, v.Stats)
	}
	out += fmt.Sprintf("shared: %+v\n", sl.Stats())
	return out
}

// TestWarmStateRoundTrip is the snapshot round-trip invariant: a fresh
// heterogeneous level restored from a warm-state snapshot produces
// byte-identical fingerprinted stats to the level the snapshot was
// captured from, and re-warming reproduces the same content hash.
func TestWarmStateRoundTrip(t *testing.T) {
	slA, agentsA := hetLevel()
	warmHet(agentsA)
	ws := slA.CaptureWarmState()

	slB, agentsB := hetLevel()
	slB.RestoreWarmState(ws)

	// The restored level carries the warmed content (spot check before the
	// stats comparison: a warmed block hits the LLC, a warmed host block
	// hits the host L1).
	if !slB.LLC().Contains(0x1000000) {
		t.Fatal("restored LLC lost the warmed working set")
	}
	if !agentsB[2].L1().Contains(0x4000000) {
		t.Fatal("restored host L1 lost the warmed blocks")
	}

	a, b := driveHet(slA, agentsA), driveHet(slB, agentsB)
	if a != b {
		t.Fatalf("restored level diverges from the warmed original:\n%s\nvs\n%s", a, b)
	}

	// An independent identical warm-up hashes to the same content; the
	// snapshot hash is stable across capture calls.
	slC, agentsC := hetLevel()
	warmHet(agentsC)
	if got, want := slC.CaptureWarmState().ContentHash(), ws.ContentHash(); got != want {
		t.Fatalf("identical warm-ups hash differently: %#x vs %#x", got, want)
	}

	// A different warming policy changes the hash (the verify-mode signal).
	slD, agentsD := hetLevel()
	warmHet(agentsD)
	agentsD[0].WarmLLCOnly(0x9000000)
	if slD.CaptureWarmState().ContentHash() == ws.ContentHash() {
		t.Fatal("distinct warm content collides")
	}
}

// TestWarmStateGeometryGuards pins the mismatch panics: restoring across
// agent counts or component geometries must fail loudly, because it
// always means a warm-affecting field escaped the cache key.
func TestWarmStateGeometryGuards(t *testing.T) {
	sl, agents := hetLevel()
	warmHet(agents)
	ws := sl.CaptureWarmState()

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}

	mustPanic("agent count", func() {
		top := DefaultTopology()
		other := NewSharedLevel(top)
		other.NewAgent(top.Agent("only"))
		other.RestoreWarmState(ws)
	})
	mustPanic("l1 geometry", func() {
		top := DefaultTopology()
		other := NewSharedLevel(top)
		small := top.Agent("narrow")
		small.L1SizeBytes = 16 * 1024
		other.NewAgent(small)
		other.NewAgent(top.Agent("wide"))
		other.NewAgent(top.Agent("host"))
		other.RestoreWarmState(ws)
	})
	mustPanic("tlb geometry", func() {
		otherSl, _ := func() (*SharedLevel, []*Hierarchy) {
			top := DefaultTopology()
			sl := NewSharedLevel(top)
			a := top.Agent("narrow")
			a.MSHRs = 2
			a.LLCWays = 2 // TLBEntries left at the default, unlike hetLevel
			return sl, []*Hierarchy{sl.NewAgent(a), sl.NewAgent(top.Agent("wide")), sl.NewAgent(top.Agent("host"))}
		}()
		otherSl.RestoreWarmState(ws)
	})
	mustPanic("capture mid-run", func() {
		sl2, agents2 := hetLevel()
		agents2[0].TLB().WarmPage(0x100000)
		agents2[0].Access(0x100000, 0, Load)
		sl2.CaptureWarmState()
	})

	// Restoring into an identically shaped level but with different
	// timing-side knobs (MSHRs, fill buffers) is legal — warm content is
	// timing-independent, which is the property the sweep cache exploits.
	top := DefaultTopology()
	top.Shared.FillBuffers = 4
	slT := NewSharedLevel(top)
	narrow := top.Agent("narrow")
	narrow.MSHRs = 7 // different budget, same caches
	narrow.LLCWays = 2
	narrow.TLBEntries = 16
	wide := top.Agent("wide")
	wide.MSHRs = 3
	wide.LLCWays = 8
	slT.NewAgent(narrow)
	slT.NewAgent(wide)
	slT.NewAgent(top.Agent("host"))
	slT.RestoreWarmState(ws)
	if !slT.LLC().Contains(0x1000000) {
		t.Fatal("restore across timing knobs lost content")
	}
}

// TestWarmStateCodecRoundTrip pins the binary codec: encode/decode is
// content-identical (same ContentHash, restorable, byte-stable encoding)
// and corrupt payloads are rejected rather than misread.
func TestWarmStateCodecRoundTrip(t *testing.T) {
	sl, agents := hetLevel()
	warmHet(agents)
	ws := sl.CaptureWarmState()

	data := ws.EncodeBinary()
	if other := ws.EncodeBinary(); string(other) != string(data) {
		t.Fatal("encoding is not deterministic")
	}
	dec, err := DecodeWarmState(data)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dec.ContentHash(), ws.ContentHash(); got != want {
		t.Fatalf("decoded snapshot hashes %#x, want %#x", got, want)
	}

	// The decoded snapshot restores like the original and drives identical
	// downstream behaviour.
	slB, agentsB := hetLevel()
	slB.RestoreWarmState(dec)
	a, b := driveHet(sl, agents), driveHet(slB, agentsB)
	if a != b {
		t.Fatalf("decoded snapshot diverges from the original:\n%s\nvs\n%s", a, b)
	}

	for name, payload := range map[string][]byte{
		"empty":       nil,
		"bad magic":   []byte("notawarms" + string(data[9:])),
		"truncated":   data[:len(data)/2],
		"trailing":    append(append([]byte(nil), data...), 0),
		"bad version": append(append([]byte(nil), data[:8]...), 0xff, 0, 0, 0, 0, 0, 0, 0),
	} {
		if _, err := DecodeWarmState(payload); err == nil {
			t.Errorf("%s payload decoded without error", name)
		}
	}
}
