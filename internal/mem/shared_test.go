package mem

import (
	"strings"
	"testing"
)

// TestSharedLevelPerAgentAttribution drives two agents into the same shared
// level and checks the labeled sub-views: private counters stay private,
// shared-resource counters are attributed to their source agent, and the
// per-agent views sum to the shared level's own totals.
func TestSharedLevelPerAgentAttribution(t *testing.T) {
	cfg := DefaultConfig()
	top := cfg.Topology()
	sl := NewSharedLevel(top)
	a := sl.NewAgent(top.Agent("a"))
	b := sl.NewAgent(top.Agent("b"))

	// Agent a misses everything (cold); agent b then hits a's LLC fills for
	// the same blocks (shared LLC) but misses its own private L1.
	const blocks = 32
	cycle := uint64(0)
	for i := 0; i < blocks; i++ {
		addr := uint64(0x100000 + i*int(cfg.L1BlockBytes))
		r := a.Access(addr, cycle, Load)
		cycle = r.CompleteCycle
	}
	for i := 0; i < blocks; i++ {
		addr := uint64(0x100000 + i*int(cfg.L1BlockBytes))
		r := b.Access(addr, cycle, Load)
		if r.Level != LevelLLC {
			t.Fatalf("block %d: agent b should hit the LLC agent a filled, got %v", i, r.Level)
		}
		cycle = r.CompleteCycle
	}

	as, bs := a.Stats(), b.Stats()
	if as.Loads != blocks || bs.Loads != blocks {
		t.Fatalf("private load counts wrong: a=%d b=%d", as.Loads, bs.Loads)
	}
	if as.LLCMisses != blocks || as.LLCHits != 0 {
		t.Fatalf("agent a should own all LLC misses: %+v", as)
	}
	if bs.LLCHits != blocks || bs.LLCMisses != 0 {
		t.Fatalf("agent b should own all LLC hits: %+v", bs)
	}
	if as.MemBlocks != blocks || bs.MemBlocks != 0 {
		t.Fatalf("off-chip blocks misattributed: a=%d b=%d", as.MemBlocks, bs.MemBlocks)
	}

	// The shared level's own counters equal the per-agent sums.
	ss := sl.Stats()
	if ss.LLCMisses != as.LLCMisses+bs.LLCMisses || ss.LLCHits != as.LLCHits+bs.LLCHits ||
		ss.MemBlocks != as.MemBlocks+bs.MemBlocks ||
		ss.CombinedMisses != as.CombinedMisses+bs.CombinedMisses ||
		ss.MSHRStallCycles != as.MSHRStallCycles+bs.MSHRStallCycles {
		t.Fatalf("shared totals != per-agent sums:\nshared %+v\na %+v\nb %+v", ss, as, bs)
	}

	// Labeled sub-views carry the agent names in attachment order.
	labeled := sl.AgentStatsAll()
	if len(labeled) != 2 || labeled[0].Name != "a" || labeled[1].Name != "b" {
		t.Fatalf("labeled views wrong: %+v", labeled)
	}
	if labeled[0].Stats.LLCMisses != as.LLCMisses {
		t.Fatal("labeled view does not match the agent's stats")
	}

	// SystemStats sums private counters too.
	sys := sl.SystemStats()
	if sys.Loads != as.Loads+bs.Loads || sys.L1Misses != as.L1Misses+bs.L1Misses {
		t.Fatalf("system stats do not sum the agents: %+v", sys)
	}

	// Each agent carries its own private MSHR-occupancy histogram; the
	// shared fill-buffer histogram lives on the shared level's view.
	if len(as.MSHROccupancy) != cfg.L1MSHRs+1 || len(ss.MSHROccupancy) != cfg.L1MSHRs+1 {
		t.Fatalf("occupancy histogram sizes wrong: agent %d shared %d",
			len(as.MSHROccupancy), len(ss.MSHROccupancy))
	}
}

// TestCrossAgentCombiningRespectsPrivateL1 pins the combining semantics of
// the shared MSHR pool: another agent's in-flight fill must not shadow data
// an agent already holds in its own private L1 (that is a plain 2-cycle L1
// hit), the allocating agent's own re-access still combines (its L1 tag was
// installed at allocation, ahead of the data), and a genuine cross-agent
// secondary miss combines and fills the requester's L1.
func TestCrossAgentCombiningRespectsPrivateL1(t *testing.T) {
	cfg := DefaultConfig()
	top := cfg.Topology()
	sl := NewSharedLevel(top)
	a := sl.NewAgent(top.Agent("a"))
	b := sl.NewAgent(top.Agent("b"))
	const addr = uint64(0x40000)

	// b pulls the block in; its fill completes before anything else runs.
	rb := b.Access(addr, 0, Load)
	if rb.Level != LevelMemory {
		t.Fatalf("priming access level %v", rb.Level)
	}
	// a misses the same block after b's fill returned: a's own fill is now
	// in flight in the shared pool.
	ra := a.Access(addr, rb.CompleteCycle, Load)
	if ra.Level != LevelLLC {
		t.Fatalf("a should hit the LLC b filled, got %v", ra.Level)
	}
	// While a's fill is outstanding, b re-accesses data it already holds:
	// must be a private L1 hit at L1 latency, not a combine against a.
	issue := rb.CompleteCycle + 1
	rb2 := b.Access(addr, issue, Load)
	if rb2.Level != LevelL1 {
		t.Fatalf("b's own L1 data reported as %v during a's in-flight fill", rb2.Level)
	}
	if rb2.CompleteCycle != rb2.IssueCycle+cfg.L1LatencyCyc {
		t.Fatalf("b's L1 hit took %d cycles", rb2.CompleteCycle-rb2.IssueCycle)
	}
	// The allocating agent's own re-access still combines with its fill.
	ra2 := a.Access(addr, issue+1, Load)
	if ra2.Level != LevelCombined || ra2.CompleteCycle != ra.CompleteCycle {
		t.Fatalf("a's re-access = %v completing at %d, want combined at %d",
			ra2.Level, ra2.CompleteCycle, ra.CompleteCycle)
	}

	// A genuine cross-agent secondary miss: c never touched the block, so
	// it combines with a's fill and receives the data into its own L1.
	c := sl.NewAgent(top.Agent("c"))
	rc := c.Access(addr, issue+2, Load)
	if rc.Level != LevelCombined || rc.CompleteCycle != ra.CompleteCycle {
		t.Fatalf("c's first access = %v completing at %d, want combined at %d",
			rc.Level, rc.CompleteCycle, ra.CompleteCycle)
	}
	rc2 := c.Access(addr, ra.CompleteCycle+1, Load)
	if rc2.Level != LevelL1 {
		t.Fatalf("cross-agent combine did not fill c's L1: re-access level %v", rc2.Level)
	}
	if c.Stats().CombinedMisses != 1 || b.Stats().CombinedMisses != 0 {
		t.Fatalf("combined-miss attribution wrong: b=%d c=%d",
			b.Stats().CombinedMisses, c.Stats().CombinedMisses)
	}
}

// TestSharedLevelStrictOrderAcrossAgents verifies the global monotonicity
// assertion covers all agents of the level, not each agent separately.
func TestSharedLevelStrictOrderAcrossAgents(t *testing.T) {
	top := DefaultTopology()
	sl := NewSharedLevel(top)
	a := sl.NewAgent(top.Agent("a"))
	b := sl.NewAgent(top.Agent("b"))
	sl.SetStrictOrder(true)
	a.Access(0x1000, 100, Load)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cross-agent out-of-order access did not panic under strict order")
		}
		if !strings.Contains(r.(string), "out-of-order") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	b.Access(0x2000, 50, Load) // behind agent a's request: must panic
}

// TestSharedLevelAgentNaming covers default names and the Agents accessor.
func TestSharedLevelAgentNaming(t *testing.T) {
	top := DefaultTopology()
	sl := NewSharedLevel(top)
	h0 := sl.NewAgent(top.Agent(""))
	h1 := sl.NewAgent(top.Agent("widx"))
	if h0.Name() != "agent0" || h1.Name() != "widx" {
		t.Fatalf("names: %q, %q", h0.Name(), h1.Name())
	}
	if ags := sl.Agents(); len(ags) != 2 || ags[0] != h0 || ags[1] != h1 {
		t.Fatal("Agents() wrong")
	}
	if h0.Shared() != sl || h1.LLC() != sl.LLC() {
		t.Fatal("shared-level plumbing wrong")
	}
	// The single-agent shorthand is one agent on a private level.
	h := NewHierarchy(DefaultConfig())
	if h.Name() != "agent0" || len(h.Shared().Agents()) != 1 {
		t.Fatal("NewHierarchy should attach one agent to a private level")
	}
}

// TestSharedLevelResetScopes checks that a whole-system reset clears every
// agent's private counters along with the shared ones.
func TestSharedLevelResetScopes(t *testing.T) {
	top := DefaultTopology()
	sl := NewSharedLevel(top)
	a := sl.NewAgent(top.Agent("a"))
	b := sl.NewAgent(top.Agent("b"))
	a.Access(0x1000, 0, Load)
	b.Access(0x2000, 10, Load)
	sl.ResetCounters()
	if a.Stats().Loads != 0 || b.Stats().Loads != 0 || sl.Stats().LLCMisses != 0 {
		t.Fatal("system reset left counters behind")
	}
}

// TestStatsAdd covers the field-wise aggregation helper.
func TestStatsAdd(t *testing.T) {
	x := Stats{Loads: 1, LLCMisses: 2, MSHROccupancy: []uint64{1, 2}}
	y := Stats{Loads: 10, LLCMisses: 20, MSHROccupancy: []uint64{5, 5, 5}}
	s := x.Add(y)
	if s.Loads != 11 || s.LLCMisses != 22 {
		t.Fatalf("Add wrong: %+v", s)
	}
	if len(s.MSHROccupancy) != 3 || s.MSHROccupancy[0] != 6 || s.MSHROccupancy[1] != 7 || s.MSHROccupancy[2] != 5 {
		t.Fatalf("histogram add wrong: %v", s.MSHROccupancy)
	}
	// Symmetric in the other length order.
	s2 := y.Add(x)
	if s2.MSHROccupancy[0] != 6 || s2.MSHROccupancy[1] != 7 || s2.MSHROccupancy[2] != 5 {
		t.Fatalf("histogram add (swapped) wrong: %v", s2.MSHROccupancy)
	}
	var zero Stats
	if m := zero.MeanMSHROccupancy(); m != 0 {
		t.Fatalf("empty mean = %v", m)
	}
}
