package mem

// Cache is a set-associative tag-only cache model with true-LRU replacement.
// Only tags are tracked: the simulated data itself lives in the vm package's
// address space, so the cache's job is purely to decide hits and misses for
// the timing model and to expose hit/miss counters.
type Cache struct {
	name      string
	sets      int
	ways      int
	blockBits uint
	setMask   uint64

	// tags holds the block address (not just the tag) for clarity, with
	// bit 0 — always zero in a block address — repurposed as the valid
	// bit, so probe loops touch one word per way instead of a tag plus a
	// separate validity byte. lru holds a per-set sequence number (larger
	// = more recently used). Both are set-major 1D arrays indexed
	// set*ways+way: one contiguous allocation per field keeps a set's
	// ways together and removes the double indirection a [][]slice pays
	// on every probe — these loops dominate the fast-forward warming path
	// of sampled simulation.
	tags  []uint64
	lru   []uint64
	clock uint64

	hits      uint64
	misses    uint64
	evictions uint64
}

// NewCache builds a cache with the given capacity, associativity and block
// size (all in bytes). It panics on a geometry that does not divide evenly;
// Config.Validate catches this earlier for user-supplied configurations.
func NewCache(name string, sizeBytes, assoc, blockBytes int) *Cache {
	// Blocks must be at least two bytes so block addresses keep bit 0
	// clear, which the tag storage repurposes as the valid bit.
	if sizeBytes <= 0 || assoc <= 0 || blockBytes <= 1 {
		panic("mem: invalid cache geometry")
	}
	if sizeBytes%(assoc*blockBytes) != 0 {
		panic("mem: cache size not divisible by assoc*block")
	}
	sets := sizeBytes / (assoc * blockBytes)
	if sets&(sets-1) != 0 {
		panic("mem: cache set count must be a power of two")
	}
	blockBits := uint(0)
	for 1<<blockBits < blockBytes {
		blockBits++
	}
	return &Cache{
		name:      name,
		sets:      sets,
		ways:      assoc,
		blockBits: blockBits,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, sets*assoc),
		lru:       make([]uint64, sets*assoc),
	}
}

// tagValid marks a tag word as occupied. Block addresses keep their low
// blockBits clear (blockBits >= 1 always, since blocks are at least two
// bytes), so bit 0 is free to carry validity and the zero value is an
// invalid entry.
const tagValid uint64 = 1

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// setIndex maps a byte address to its set.
func (c *Cache) setIndex(addr uint64) int {
	return int((addr >> c.blockBits) & c.setMask)
}

// block maps a byte address to its block address.
func (c *Cache) block(addr uint64) uint64 {
	return addr >> c.blockBits << c.blockBits
}

// Lookup probes the cache for the block containing addr. On a hit the LRU
// state is updated and true is returned; counters are updated either way.
// Lookup does not allocate on a miss — call Insert for that — so callers can
// model no-allocate operations (e.g. prefetch probes that get dropped).
func (c *Cache) Lookup(addr uint64) bool {
	base := c.setIndex(addr) * c.ways
	want := c.block(addr) | tagValid
	c.clock++
	tags := c.tags[base : base+c.ways]
	for w := range tags {
		if tags[w] == want {
			c.lru[base+w] = c.clock
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Contains reports whether the block containing addr is present without
// updating LRU state or counters (used by tests and diagnostics).
func (c *Cache) Contains(addr uint64) bool {
	base := c.setIndex(addr) * c.ways
	want := c.block(addr) | tagValid
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == want {
			return true
		}
	}
	return false
}

// Insert allocates the block containing addr, evicting the LRU way of its set
// if necessary. It returns the evicted block address and whether an eviction
// of a valid block occurred.
func (c *Cache) Insert(addr uint64) (evicted uint64, didEvict bool) {
	return c.InsertWays(addr, 0)
}

// InsertWays is Insert restricted to an allocation-way partition: the block
// may only be placed in (and evict from) the ways whose bit is set in mask,
// the way-partitioning discipline CMP QoS schemes use to fence agents'
// working sets. A zero mask means all ways. A block already resident in any
// way — inside or outside the partition — only has its LRU state refreshed:
// partitions restrict allocation, not residency, exactly like hardware
// way-masking, so lookups still hit partition-external ways.
func (c *Cache) InsertWays(addr uint64, mask uint64) (evicted uint64, didEvict bool) {
	base := c.setIndex(addr) * c.ways
	want := c.block(addr) | tagValid
	c.clock++
	tags := c.tags[base : base+c.ways]
	lru := c.lru[base : base+c.ways]
	// One pass finds all three candidates: a resident way (any way — hits
	// are partition-blind), the first free partition way, and the LRU
	// partition way. The victim only matters when no partition way is free,
	// in which case every partition way is valid, so tracking the minimum
	// over valid ways only is equivalent to the full scan.
	free, victim := -1, -1
	for w := range tags {
		inMask := mask == 0 || mask&(1<<uint(w)) != 0
		if tags[w]&tagValid != 0 {
			// Already present (any way): refresh LRU only.
			if tags[w] == want {
				lru[w] = c.clock
				return 0, false
			}
			if inMask && (victim < 0 || lru[w] < lru[victim]) {
				victim = w
			}
		} else if inMask && free < 0 {
			free = w
		}
	}
	// Free way inside the partition?
	if free >= 0 {
		tags[free] = want
		lru[free] = c.clock
		return 0, false
	}
	// Evict the LRU way of the partition.
	if victim < 0 {
		// An all-zero partition cannot happen through the topology API
		// (AgentSpec.llcWayMask yields 0 = all ways instead); guard anyway.
		return 0, false
	}
	evicted = tags[victim] &^ tagValid
	tags[victim] = want
	lru[victim] = c.clock
	c.evictions++
	return evicted, true
}

// Invalidate removes the block containing addr if present, returning whether
// it was present. Used by tests and by workload warm-up control.
func (c *Cache) Invalidate(addr uint64) bool {
	base := c.setIndex(addr) * c.ways
	want := c.block(addr) | tagValid
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == want {
			// Clearing the valid bit leaves the block address behind,
			// exactly the stale tag an invalidated way has always kept.
			c.tags[base+w] &^= tagValid
			return true
		}
	}
	return false
}

// Reset clears all cache content and counters. Stale block addresses stay
// behind in the tag words (with the valid bit cleared), matching what an
// invalidated way keeps.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] &^= tagValid
		c.lru[i] = 0
	}
	c.clock, c.hits, c.misses, c.evictions = 0, 0, 0, 0
}

// ResetCounters clears the hit/miss/eviction counters but keeps content,
// which is how measurement phases start after cache warm-up.
func (c *Cache) ResetCounters() {
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// Hits returns the number of hits since the last counter reset.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of misses since the last counter reset.
func (c *Cache) Misses() uint64 { return c.misses }

// Evictions returns the number of valid-block evictions since the last reset.
func (c *Cache) Evictions() uint64 { return c.evictions }

// MissRatio returns misses / (hits + misses), or 0 with no accesses.
func (c *Cache) MissRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}
