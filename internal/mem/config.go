// Package mem models the memory hierarchy of the evaluated chip
// multiprocessor: a two-ported L1-D with a finite number of MSHRs, a shared
// LLC behind a crossbar, dual memory controllers with limited off-chip
// bandwidth, and the host core's TLB with a bounded number of in-flight
// translations. The parameters default to Table 2 of the paper.
//
// The model is a cycle-approximate resource-reservation model rather than a
// cycle-accurate pipeline simulation: every access is assigned an issue cycle
// and a completion cycle, contention for L1 ports, MSHRs, page-walk slots and
// memory-controller slots delays accesses, and caches are simulated with real
// tags so hit ratios emerge from the workload's actual address stream. This
// captures the first-order effects the paper's conclusions rest on (AMAT,
// MSHR pressure, off-chip bandwidth, miss combining across walkers) while
// remaining fast enough to run millions of probes in a Go test.
package mem

// Config carries every parameter of the memory system model. The zero value
// is not usable; start from DefaultConfig (Table 2).
type Config struct {
	// FrequencyGHz is the core and accelerator clock. Memory latencies given
	// in nanoseconds are converted to cycles with this clock.
	FrequencyGHz float64

	// L1 data cache.
	L1SizeBytes  int    // total capacity in bytes
	L1Assoc      int    // ways per set
	L1BlockBytes int    // cache block (line) size
	L1Ports      int    // concurrent accesses per cycle
	L1MSHRs      int    // outstanding misses supported
	L1LatencyCyc uint64 // load-to-use latency on a hit

	// Last-level cache (shared).
	LLCSizeBytes    int
	LLCAssoc        int
	LLCLatencyCyc   uint64 // hit latency, excluding the interconnect hop
	InterconnectCyc uint64 // crossbar latency between L1 and LLC

	// Main memory.
	MemLatencyNs      float64 // DRAM access latency
	MemControllers    int     // number of memory controllers
	MemPeakGBs        float64 // peak bandwidth per controller (GB/s)
	MemEffectiveShare float64 // achievable fraction of the peak (e.g. 0.7)

	// TLB.
	TLBEntries  int    // data-TLB entries (fully associative)
	TLBInFlight int    // concurrent page walks supported
	TLBWalkCyc  uint64 // page-walk latency on a TLB miss
	PageBytes   int    // page size
}

// DefaultConfig returns the Table 2 configuration:
//
//	4-core CMP at 2 GHz, 32 KB split L1 caches with 2 ports, 64 B blocks and
//	10 MSHRs (2-cycle load-to-use), 4 MB LLC with a 6-cycle hit latency behind
//	a 4-cycle crossbar, 32 GB of memory behind 2 memory controllers at
//	12.8 GB/s peak each with 45 ns access latency, and a TLB with 2 in-flight
//	translations.
func DefaultConfig() Config {
	return Config{
		FrequencyGHz: 2.0,

		L1SizeBytes:  32 * 1024,
		L1Assoc:      8,
		L1BlockBytes: 64,
		L1Ports:      2,
		L1MSHRs:      10,
		L1LatencyCyc: 2,

		LLCSizeBytes:    4 * 1024 * 1024,
		LLCAssoc:        16,
		LLCLatencyCyc:   6,
		InterconnectCyc: 4,

		MemLatencyNs:      45,
		MemControllers:    2,
		MemPeakGBs:        12.8,
		MemEffectiveShare: 0.70,

		// The TLB models a server MMU mapping database heap memory with large
		// (2 MB) pages, which is how in-memory DBMSs deploy in practice and
		// what keeps the paper's observed TLB miss ratio at the few-percent
		// level (3% worst case on the Large hash-join index). Only two
		// translations may be in flight at a time, per Table 2.
		TLBEntries:  128,
		TLBInFlight: 2,
		TLBWalkCyc:  40,
		PageBytes:   2 * 1024 * 1024,
	}
}

// MemLatencyCycles converts the DRAM latency into core cycles.
func (c Config) MemLatencyCycles() uint64 {
	return c.Topology().Shared.MemLatencyCycles()
}

// MemServiceIntervalCycles returns the minimum number of cycles between
// successive 64-byte block transfers on one memory controller, derived from
// the effective bandwidth. This is the term that throttles walkers when the
// LLC miss ratio is high (Figure 4c).
func (c Config) MemServiceIntervalCycles() float64 {
	return c.Topology().Shared.MemServiceIntervalCycles()
}

// MemBandwidthUtilization returns the fraction of the modelled effective
// off-chip bandwidth consumed by transferring `blocks` cache blocks over a
// span of `cycles` cycles, across all controllers. It uses the same rounded
// service interval the controllers schedule with, so 1.0 means every
// transfer slot of the span was used.
func (c Config) MemBandwidthUtilization(blocks, cycles uint64) float64 {
	return c.Topology().Shared.MemBandwidthUtilization(blocks, cycles)
}

// Validate reports configuration errors that would make the model
// meaningless (zero sizes, non-power-of-two blocks, zero or absurd
// latencies and similar). It validates the symmetric topology the flat
// configuration denotes, so Config and Topology accept exactly the same
// machines.
func (c Config) Validate() error {
	return c.Topology().Validate()
}

type configError string

func errConfig(s string) error      { return configError(s) }
func (e configError) Error() string { return "mem: invalid config: " + string(e) }
