package mem

import (
	"fmt"
	"sort"

	"widx/internal/warmstate"
)

// This file implements warm-state checkpointing: deep snapshots of the
// post-warm-up content of a shared level — LLC tags, per-agent L1 and TLB
// content, and the LRU clocks that order future replacement decisions —
// that can be restored into a freshly built level of identical geometry.
// Warming (WarmBlock / WarmLLCOnly) touches exactly this state and
// nothing else: it never issues Accesses, so MSHRs, resource schedules,
// occupancy histograms and counters are untouched and post-warm counters
// are zero by construction. Restoring a snapshot into a fresh level is
// therefore indistinguishable from re-running the warm-up, which is what
// lets a sweep pay for each distinct warm-up once (internal/warmstate).
//
// Timing-side knobs — MSHR budgets, fill-buffer counts, latencies, port
// counts, queue depths — deliberately appear nowhere in a snapshot:
// warm content is independent of them, and that independence is what
// makes warm-state sharing across a timing sweep sound.

// CacheState is a deep snapshot of a Cache's content: tags, validity,
// LRU sequence numbers and the LRU clock. Counters are not captured;
// restore zeroes them, matching the post-warm-up state.
type CacheState struct {
	sets, ways int
	blockBits  uint
	// Set-major 1D arrays (set*ways+way), mirroring Cache's storage. The
	// snapshot keeps validity separate from the tag words — the external
	// format (hash and codec) predates the cache packing its valid bit
	// into bit 0 of the tag, and splitting here keeps those bytes stable.
	tags  []uint64
	valid []bool
	lru   []uint64
	clock uint64
}

// CaptureState snapshots the cache's content.
func (c *Cache) CaptureState() *CacheState {
	st := &CacheState{
		sets:      c.sets,
		ways:      c.ways,
		blockBits: c.blockBits,
		tags:      make([]uint64, len(c.tags)),
		valid:     make([]bool, len(c.tags)),
		lru:       append([]uint64(nil), c.lru...),
		clock:     c.clock,
	}
	for i, t := range c.tags {
		st.tags[i] = t &^ tagValid
		st.valid[i] = t&tagValid != 0
	}
	return st
}

// RestoreState copies a snapshot's content into the cache and zeroes the
// counters. It panics on a geometry mismatch: restoring across
// geometries would silently misplace every block, so a mismatch always
// means the caller's cache key omitted a warm-affecting field.
func (c *Cache) RestoreState(st *CacheState) {
	if c.sets != st.sets || c.ways != st.ways || c.blockBits != st.blockBits {
		panic(fmt.Sprintf("mem: restoring %s: geometry %d sets x %d ways (block 2^%d) does not match snapshot %d x %d (2^%d)",
			c.name, c.sets, c.ways, c.blockBits, st.sets, st.ways, st.blockBits))
	}
	for i, t := range st.tags {
		if st.valid[i] {
			t |= tagValid
		}
		c.tags[i] = t
	}
	copy(c.lru, st.lru)
	c.clock = st.clock
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// hashInto folds the snapshot's content into an FNV digest.
func (st *CacheState) hashInto(h *warmstate.Hasher) {
	h.Word(uint64(st.sets))
	h.Word(uint64(st.ways))
	h.Word(uint64(st.blockBits))
	h.Word(st.clock)
	// Set-major iteration order matches the historical [][]-layout digest.
	for i := range st.tags {
		h.Bool(st.valid[i])
		h.Word(st.tags[i])
		h.Word(st.lru[i])
	}
}

// TLBState is a deep snapshot of a TLB's content: the resident
// translations with their last-use clocks. Outstanding page walks are
// not captured — warming never starts one — and counters restore to
// zero.
type TLBState struct {
	entries  int
	pageBits uint
	pages    map[uint64]uint64
	clock    uint64
}

// CaptureState snapshots the TLB's content.
func (t *TLB) CaptureState() *TLBState {
	pages := make(map[uint64]uint64, len(t.pages))
	for vpn, used := range t.pages {
		pages[vpn] = used
	}
	return &TLBState{entries: t.entries, pageBits: t.pageBits, pages: pages, clock: t.clock}
}

// RestoreState copies a snapshot's translations into the TLB, zeroes the
// counters and clears outstanding walks. It panics on a geometry
// mismatch (entry count or page size).
func (t *TLB) RestoreState(st *TLBState) {
	if t.entries != st.entries || t.pageBits != st.pageBits {
		panic(fmt.Sprintf("mem: restoring TLB: geometry %d entries / 2^%d pages does not match snapshot %d / 2^%d",
			t.entries, t.pageBits, st.entries, st.pageBits))
	}
	t.pages = make(map[uint64]uint64, len(st.pages))
	for vpn, used := range st.pages {
		t.pages[vpn] = used
	}
	t.clock = st.clock
	t.walks = nil
	t.hits, t.misses = 0, 0
}

// hashInto folds the snapshot's content into an FNV digest, visiting
// translations in ascending page order.
func (st *TLBState) hashInto(h *warmstate.Hasher) {
	h.Word(uint64(st.entries))
	h.Word(uint64(st.pageBits))
	h.Word(st.clock)
	vpns := make([]uint64, 0, len(st.pages))
	for vpn := range st.pages {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, vpn := range vpns {
		h.Word(vpn)
		h.Word(st.pages[vpn])
	}
}

// agentWarmState is one agent's private share of a warm-state snapshot.
type agentWarmState struct {
	l1  *CacheState
	tlb *TLBState
}

// WarmState is a deep snapshot of everything warm-up touches across a
// shared level: the LLC plus each attached agent's L1 and TLB, in
// attachment order.
type WarmState struct {
	llc    *CacheState
	agents []agentWarmState
}

// CaptureWarmState snapshots the level's warm content. Call it after
// warm-up and before any Access; it panics while misses are in flight,
// because a snapshot taken mid-run would not be a warm-up checkpoint.
func (sl *SharedLevel) CaptureWarmState() *WarmState {
	if len(sl.mshrs) != 0 {
		panic("mem: CaptureWarmState with misses in flight; capture must follow warm-up, not execution")
	}
	ws := &WarmState{llc: sl.llc.CaptureState(), agents: make([]agentWarmState, len(sl.agents))}
	for i, a := range sl.agents {
		ws.agents[i] = agentWarmState{l1: a.l1.CaptureState(), tlb: a.tlb.CaptureState()}
	}
	return ws
}

// RestoreWarmState copies a snapshot into a freshly built level with the
// same agent layout. It panics on an agent-count or per-component
// geometry mismatch, and while misses are in flight.
func (sl *SharedLevel) RestoreWarmState(ws *WarmState) {
	if len(sl.agents) != len(ws.agents) {
		panic(fmt.Sprintf("mem: restoring warm state for %d agents into a level with %d",
			len(ws.agents), len(sl.agents)))
	}
	if len(sl.mshrs) != 0 {
		panic("mem: RestoreWarmState with misses in flight; restore must precede execution")
	}
	sl.llc.RestoreState(ws.llc)
	for i, a := range sl.agents {
		a.l1.RestoreState(ws.agents[i].l1)
		a.tlb.RestoreState(ws.agents[i].tlb)
	}
}

// ContentHash digests the snapshot, for warmstate's verify mode: two
// warm-ups that should be interchangeable hash identically, and a
// timing-only knob that leaks into warm content changes the hash.
func (ws *WarmState) ContentHash() uint64 {
	h := warmstate.NewHasher()
	ws.llc.hashInto(h)
	h.Word(uint64(len(ws.agents)))
	for _, a := range ws.agents {
		a.l1.hashInto(h)
		a.tlb.hashInto(h)
	}
	return h.Sum()
}
