// Package workloads is the query inventory of the evaluation: the TPC-H and
// TPC-DS queries the paper profiles in Figure 2 and the twelve queries it
// simulates in Figures 9 and 10, together with the paper's reported numbers
// (execution-time shares, index/hash splits, headline speedups) used by
// EXPERIMENTS.md to compare paper-vs-measured results.
//
// The licensed benchmark kits and the 100 GB data sets are not
// redistributable, so each query is described by the characteristics that
// matter to Widx — the per-query index working-set size class, the node
// layout and hash function, the probe volume and the fraction of query time
// spent indexing — and the synthetic generators in internal/colstore and
// internal/engine materialize a structurally equivalent workload.
package workloads

import "fmt"

// Suite identifies the benchmark a query belongs to.
type Suite uint8

const (
	// TPCH is the TPC-H decision-support benchmark.
	TPCH Suite = iota
	// TPCDS is the TPC-DS benchmark (429 columns spread the same data much
	// thinner, so per-column indexes are far smaller than TPC-H's).
	TPCDS
)

// String names the suite.
func (s Suite) String() string {
	switch s {
	case TPCH:
		return "TPC-H"
	case TPCDS:
		return "TPC-DS"
	default:
		return fmt.Sprintf("suite(%d)", uint8(s))
	}
}

// MarshalText encodes the suite by name, so JSON manifests carry "TPC-H" /
// "TPC-DS" instead of enum integers.
func (s Suite) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// ParseSuite parses a suite name ("TPC-H", "tpch", "TPC-DS", "tpcds").
func ParseSuite(s string) (Suite, error) {
	switch s {
	case "TPC-H", "tpch", "tpc-h", "TPCH":
		return TPCH, nil
	case "TPC-DS", "tpcds", "tpc-ds", "TPCDS":
		return TPCDS, nil
	}
	return 0, fmt.Errorf("workloads: unknown suite %q (want TPC-H or TPC-DS)", s)
}

// SizeClass describes where a query's index working set sits in the cache
// hierarchy, the property that drives its Widx speedup.
type SizeClass uint8

const (
	// L1Resident indexes fit in the 32 KB L1-D (several TPC-DS queries).
	L1Resident SizeClass = iota
	// LLCResident indexes fit in the 4 MB LLC but not the L1.
	LLCResident
	// MemoryResident indexes exceed the LLC.
	MemoryResident
)

// String names the size class.
func (s SizeClass) String() string {
	switch s {
	case L1Resident:
		return "L1-resident"
	case LLCResident:
		return "LLC-resident"
	case MemoryResident:
		return "memory-resident"
	default:
		return fmt.Sprintf("sizeclass(%d)", uint8(s))
	}
}

// BreakdownShares are the Figure 2a execution-time shares of one query.
// They are fractions in [0,1] and sum to (approximately) one.
type BreakdownShares struct {
	Index    float64
	Scan     float64
	SortJoin float64
	Other    float64
}

// Sum returns the total of the four shares.
func (b BreakdownShares) Sum() float64 { return b.Index + b.Scan + b.SortJoin + b.Other }

// QuerySpec describes one benchmark query.
type QuerySpec struct {
	// Name is the conventional query name, e.g. "q17".
	Name string
	// Suite is the benchmark the query belongs to.
	Suite Suite

	// Paper-reported numbers (estimated from Figure 2a/2b and Figure 10 where
	// the text does not give exact values; the text anchors are TPC-H q17 at
	// 94% indexing, TPC-DS q37 at 29%, a 3.1x geometric-mean indexing
	// speedup with extremes of 1.5x (q37) and 5.5x (q20), and a 1.5x
	// geometric-mean query speedup with a 3.1x maximum on q17).
	Paper PaperNumbers

	// Simulated indicates the query is one of the twelve run on the
	// cycle-accurate simulator (Figures 9 and 10); the rest appear only in
	// the Figure 2a profiling breakdown.
	Simulated bool

	// Workload characteristics used to synthesize the query's index phase.
	Class SizeClass
	// BuildRows is the dimension-side (indexed) row count at scale 1.0.
	BuildRows int
	// ProbeRows is the number of index probes at scale 1.0.
	ProbeRows int
	// NodesPerBucket is the average bucket chain depth.
	NodesPerBucket float64
	// RobustHash marks queries whose key domain needs the expensive hash
	// (e.g. TPC-H q20's double integers).
	RobustHash bool
}

// PaperNumbers collects the values the paper reports for a query.
type PaperNumbers struct {
	// Breakdown is the Figure 2a execution-time breakdown.
	Breakdown BreakdownShares
	// HashShare is the Figure 2b fraction of index time spent hashing
	// (only meaningful for the twelve simulated queries).
	HashShare float64
	// IndexSpeedup4W is the Figure 10 indexing speedup with four walkers.
	IndexSpeedup4W float64
}

// Queries returns the full query inventory, TPC-H first, in the order of
// Figure 2a.
func Queries() []QuerySpec {
	return append(tpchQueries(), tpcdsQueries()...)
}

// SimulatedQueries returns the twelve queries of Figures 9 and 10.
func SimulatedQueries() []QuerySpec {
	var out []QuerySpec
	for _, q := range Queries() {
		if q.Simulated {
			out = append(out, q)
		}
	}
	return out
}

// ByName returns the named query from the given suite.
func ByName(suite Suite, name string) (QuerySpec, error) {
	for _, q := range Queries() {
		if q.Suite == suite && q.Name == name {
			return q, nil
		}
	}
	return QuerySpec{}, fmt.Errorf("workloads: no query %s %s", suite, name)
}

// tpchQueries lists the 16 TPC-H queries whose indexing share exceeds 5%.
func tpchQueries() []QuerySpec {
	qs := []QuerySpec{
		{Name: "q2", Suite: TPCH, Simulated: true, Class: LLCResident,
			BuildRows: 48_000, ProbeRows: 480_000, NodesPerBucket: 1.5,
			Paper: PaperNumbers{Breakdown: shares(0.42, 0.25, 0.20), HashShare: 0.28, IndexSpeedup4W: 2.8}},
		{Name: "q3", Suite: TPCH, Class: LLCResident, BuildRows: 60_000, ProbeRows: 400_000, NodesPerBucket: 1.5,
			Paper: PaperNumbers{Breakdown: shares(0.20, 0.40, 0.25)}},
		{Name: "q5", Suite: TPCH, Class: LLCResident, BuildRows: 80_000, ProbeRows: 500_000, NodesPerBucket: 1.5,
			Paper: PaperNumbers{Breakdown: shares(0.26, 0.30, 0.28)}},
		{Name: "q7", Suite: TPCH, Class: LLCResident, BuildRows: 70_000, ProbeRows: 450_000, NodesPerBucket: 1.5,
			Paper: PaperNumbers{Breakdown: shares(0.30, 0.30, 0.25)}},
		{Name: "q8", Suite: TPCH, Class: LLCResident, BuildRows: 60_000, ProbeRows: 420_000, NodesPerBucket: 1.5,
			Paper: PaperNumbers{Breakdown: shares(0.24, 0.35, 0.25)}},
		{Name: "q9", Suite: TPCH, Class: MemoryResident, BuildRows: 300_000, ProbeRows: 900_000, NodesPerBucket: 2,
			Paper: PaperNumbers{Breakdown: shares(0.36, 0.25, 0.28)}},
		{Name: "q11", Suite: TPCH, Simulated: true, Class: LLCResident,
			BuildRows: 64_000, ProbeRows: 512_000, NodesPerBucket: 1.5,
			Paper: PaperNumbers{Breakdown: shares(0.46, 0.22, 0.20), HashShare: 0.30, IndexSpeedup4W: 2.6}},
		{Name: "q13", Suite: TPCH, Class: LLCResident, BuildRows: 90_000, ProbeRows: 300_000, NodesPerBucket: 1.5,
			Paper: PaperNumbers{Breakdown: shares(0.14, 0.35, 0.35)}},
		{Name: "q14", Suite: TPCH, Class: LLCResident, BuildRows: 50_000, ProbeRows: 350_000, NodesPerBucket: 1.5,
			Paper: PaperNumbers{Breakdown: shares(0.20, 0.45, 0.20)}},
		{Name: "q15", Suite: TPCH, Class: LLCResident, BuildRows: 55_000, ProbeRows: 330_000, NodesPerBucket: 1.5,
			Paper: PaperNumbers{Breakdown: shares(0.21, 0.40, 0.22)}},
		{Name: "q17", Suite: TPCH, Simulated: true, Class: LLCResident,
			BuildRows: 96_000, ProbeRows: 960_000, NodesPerBucket: 2,
			Paper: PaperNumbers{Breakdown: shares(0.94, 0.03, 0.02), HashShare: 0.22, IndexSpeedup4W: 3.3}},
		{Name: "q18", Suite: TPCH, Class: MemoryResident, BuildRows: 400_000, ProbeRows: 800_000, NodesPerBucket: 2,
			Paper: PaperNumbers{Breakdown: shares(0.40, 0.20, 0.30)}},
		{Name: "q19", Suite: TPCH, Simulated: true, Class: MemoryResident,
			BuildRows: 600_000, ProbeRows: 1_200_000, NodesPerBucket: 2,
			Paper: PaperNumbers{Breakdown: shares(0.58, 0.20, 0.15), HashShare: 0.18, IndexSpeedup4W: 4.3}},
		{Name: "q20", Suite: TPCH, Simulated: true, Class: MemoryResident,
			BuildRows: 800_000, ProbeRows: 1_600_000, NodesPerBucket: 2, RobustHash: true,
			Paper: PaperNumbers{Breakdown: shares(0.66, 0.15, 0.12), HashShare: 0.38, IndexSpeedup4W: 5.5}},
		{Name: "q21", Suite: TPCH, Class: MemoryResident, BuildRows: 350_000, ProbeRows: 700_000, NodesPerBucket: 2,
			Paper: PaperNumbers{Breakdown: shares(0.34, 0.25, 0.28)}},
		{Name: "q22", Suite: TPCH, Simulated: true, Class: MemoryResident,
			BuildRows: 500_000, ProbeRows: 1_000_000, NodesPerBucket: 2,
			Paper: PaperNumbers{Breakdown: shares(0.52, 0.20, 0.18), HashShare: 0.24, IndexSpeedup4W: 4.6}},
	}
	return qs
}

// tpcdsQueries lists the 9 TPC-DS queries (Reporting, Ad Hoc and both).
func tpcdsQueries() []QuerySpec {
	return []QuerySpec{
		{Name: "q5", Suite: TPCDS, Simulated: true, Class: L1Resident,
			BuildRows: 1_200, ProbeRows: 240_000, NodesPerBucket: 1, RobustHash: true,
			Paper: PaperNumbers{Breakdown: shares(0.50, 0.25, 0.15), HashShare: 0.55, IndexSpeedup4W: 1.7}},
		{Name: "q37", Suite: TPCDS, Simulated: true, Class: L1Resident,
			BuildRows: 700, ProbeRows: 200_000, NodesPerBucket: 1, RobustHash: true,
			Paper: PaperNumbers{Breakdown: shares(0.29, 0.40, 0.20), HashShare: 0.68, IndexSpeedup4W: 1.5}},
		{Name: "q40", Suite: TPCDS, Simulated: true, Class: LLCResident,
			BuildRows: 36_000, ProbeRows: 360_000, NodesPerBucket: 1.5,
			Paper: PaperNumbers{Breakdown: shares(0.46, 0.25, 0.18), HashShare: 0.35, IndexSpeedup4W: 2.6}},
		{Name: "q43", Suite: TPCDS, Class: LLCResident, BuildRows: 20_000, ProbeRows: 200_000, NodesPerBucket: 1.5,
			Paper: PaperNumbers{Breakdown: shares(0.36, 0.30, 0.22)}},
		{Name: "q46", Suite: TPCDS, Class: LLCResident, BuildRows: 25_000, ProbeRows: 220_000, NodesPerBucket: 1.5,
			Paper: PaperNumbers{Breakdown: shares(0.40, 0.28, 0.20)}},
		{Name: "q52", Suite: TPCDS, Simulated: true, Class: LLCResident,
			BuildRows: 30_000, ProbeRows: 300_000, NodesPerBucket: 1.5,
			Paper: PaperNumbers{Breakdown: shares(0.56, 0.22, 0.12), HashShare: 0.30, IndexSpeedup4W: 2.4}},
		{Name: "q64", Suite: TPCDS, Simulated: true, Class: L1Resident,
			BuildRows: 2_000, ProbeRows: 300_000, NodesPerBucket: 1,
			Paper: PaperNumbers{Breakdown: shares(0.77, 0.10, 0.08), HashShare: 0.28, IndexSpeedup4W: 2.0}},
		{Name: "q81", Suite: TPCDS, Class: LLCResident, BuildRows: 18_000, ProbeRows: 150_000, NodesPerBucket: 1.5,
			Paper: PaperNumbers{Breakdown: shares(0.31, 0.32, 0.22)}},
		{Name: "q82", Suite: TPCDS, Simulated: true, Class: L1Resident,
			BuildRows: 1_500, ProbeRows: 250_000, NodesPerBucket: 1, RobustHash: true,
			Paper: PaperNumbers{Breakdown: shares(0.46, 0.28, 0.15), HashShare: 0.52, IndexSpeedup4W: 1.8}},
	}
}

// shares builds a BreakdownShares with the remainder assigned to Other.
func shares(index, scan, sortJoin float64) BreakdownShares {
	other := 1 - index - scan - sortJoin
	if other < 0 {
		other = 0
	}
	return BreakdownShares{Index: index, Scan: scan, SortJoin: sortJoin, Other: other}
}

// PaperIndexGeoMeanSpeedup is the headline Figure 10 result.
const PaperIndexGeoMeanSpeedup = 3.1

// PaperQueryGeoMeanSpeedup is the whole-query projection reported in
// Section 6.2.
const PaperQueryGeoMeanSpeedup = 1.5

// PaperEnergyReduction is the Figure 11 energy saving of Widx over the OoO
// baseline.
const PaperEnergyReduction = 0.83

// PaperEDPImprovement is the Figure 11 energy-delay improvement of Widx over
// the OoO baseline.
const PaperEDPImprovement = 17.5
