package workloads

import (
	"math"
	"testing"

	"widx/internal/stats"
)

func TestInventoryShape(t *testing.T) {
	all := Queries()
	var tpch, tpcds int
	for _, q := range all {
		switch q.Suite {
		case TPCH:
			tpch++
		case TPCDS:
			tpcds++
		}
	}
	// Figure 2a profiles 16 TPC-H queries (index time > 5%) and 9 TPC-DS
	// queries.
	if tpch != 16 {
		t.Fatalf("TPC-H query count = %d, want 16", tpch)
	}
	if tpcds != 9 {
		t.Fatalf("TPC-DS query count = %d, want 9", tpcds)
	}
	// Twelve simulated queries: TPC-H 2, 11, 17, 19, 20, 22 and TPC-DS 5,
	// 37, 40, 52, 64, 82.
	sim := SimulatedQueries()
	if len(sim) != 12 {
		t.Fatalf("simulated query count = %d, want 12", len(sim))
	}
	wantSim := map[string]Suite{
		"q2": TPCH, "q11": TPCH, "q17": TPCH, "q19": TPCH, "q20": TPCH, "q22": TPCH,
		"q5": TPCDS, "q37": TPCDS, "q40": TPCDS, "q52": TPCDS, "q64": TPCDS, "q82": TPCDS,
	}
	for _, q := range sim {
		if wantSuite, ok := wantSim[q.Name]; !ok || wantSuite != q.Suite {
			t.Fatalf("unexpected simulated query %s %s", q.Suite, q.Name)
		}
	}
}

func TestSpecFieldsSane(t *testing.T) {
	for _, q := range Queries() {
		if q.Name == "" {
			t.Fatal("query without a name")
		}
		if q.BuildRows <= 0 || q.ProbeRows <= 0 {
			t.Fatalf("%s %s: non-positive workload sizes", q.Suite, q.Name)
		}
		if q.NodesPerBucket <= 0 {
			t.Fatalf("%s %s: non-positive bucket depth", q.Suite, q.Name)
		}
		if s := q.Paper.Breakdown.Sum(); math.Abs(s-1) > 0.01 {
			t.Fatalf("%s %s: breakdown shares sum to %v", q.Suite, q.Name, s)
		}
		if q.Paper.Breakdown.Index < 0.05 {
			t.Fatalf("%s %s: the inventory only contains queries with >5%% index time", q.Suite, q.Name)
		}
		if q.Simulated {
			if q.Paper.HashShare <= 0 || q.Paper.HashShare >= 1 {
				t.Fatalf("%s %s: simulated query needs a hash share", q.Suite, q.Name)
			}
			if q.Paper.IndexSpeedup4W < 1 {
				t.Fatalf("%s %s: simulated query needs a paper speedup", q.Suite, q.Name)
			}
		}
		if q.Class > MemoryResident {
			t.Fatalf("%s %s: bad size class", q.Suite, q.Name)
		}
	}
}

// TestPaperAnchors checks the values the paper's text states explicitly.
func TestPaperAnchors(t *testing.T) {
	q17, err := ByName(TPCH, "q17")
	if err != nil {
		t.Fatal(err)
	}
	if q17.Paper.Breakdown.Index != 0.94 {
		t.Fatalf("q17 indexing share = %v, the paper states 94%%", q17.Paper.Breakdown.Index)
	}
	q37, err := ByName(TPCDS, "q37")
	if err != nil {
		t.Fatal(err)
	}
	if q37.Paper.Breakdown.Index != 0.29 {
		t.Fatalf("q37 indexing share = %v, the paper states 29%%", q37.Paper.Breakdown.Index)
	}
	if q37.Paper.IndexSpeedup4W != 1.5 {
		t.Fatalf("q37 is the paper's 1.5x minimum, got %v", q37.Paper.IndexSpeedup4W)
	}
	q20, err := ByName(TPCH, "q20")
	if err != nil {
		t.Fatal(err)
	}
	if q20.Paper.IndexSpeedup4W != 5.5 {
		t.Fatalf("q20 is the paper's 5.5x maximum, got %v", q20.Paper.IndexSpeedup4W)
	}
	if !q20.RobustHash {
		t.Fatal("q20 should use the computationally intensive hash")
	}
	// Maximum hash share stated in the text is 68%.
	if q37.Paper.HashShare != 0.68 {
		t.Fatalf("q37 hash share = %v, paper maximum is 68%%", q37.Paper.HashShare)
	}
}

// TestAverageShares checks the suite-level averages the paper states: TPC-H
// queries average ~35% indexing time, TPC-DS ~45%.
func TestAverageShares(t *testing.T) {
	var tpch, tpcds []float64
	for _, q := range Queries() {
		if q.Suite == TPCH {
			tpch = append(tpch, q.Paper.Breakdown.Index)
		} else {
			tpcds = append(tpcds, q.Paper.Breakdown.Index)
		}
	}
	if avg := stats.Mean(tpch); avg < 0.30 || avg > 0.45 {
		t.Fatalf("TPC-H average index share = %v, paper states ~35%%", avg)
	}
	if avg := stats.Mean(tpcds); avg < 0.40 || avg > 0.52 {
		t.Fatalf("TPC-DS average index share = %v, paper states ~45%%", avg)
	}
}

// TestSpeedupGeoMean checks that the recorded per-query speedups are
// consistent with the paper's 3.1x geometric mean (within reading-off-the-
// figure tolerance) and its stated extremes.
func TestSpeedupGeoMean(t *testing.T) {
	var sp []float64
	minQ, maxQ := "", ""
	minV, maxV := math.Inf(1), 0.0
	for _, q := range SimulatedQueries() {
		sp = append(sp, q.Paper.IndexSpeedup4W)
		if q.Paper.IndexSpeedup4W < minV {
			minV, minQ = q.Paper.IndexSpeedup4W, q.Name
		}
		if q.Paper.IndexSpeedup4W > maxV {
			maxV, maxQ = q.Paper.IndexSpeedup4W, q.Name
		}
	}
	g := stats.GeoMean(sp)
	if g < 2.5 || g > 3.5 {
		t.Fatalf("recorded speedup geomean = %v, paper states 3.1", g)
	}
	if minQ != "q37" || minV != 1.5 {
		t.Fatalf("minimum speedup should be q37 at 1.5x, got %s at %v", minQ, minV)
	}
	if maxQ != "q20" || maxV != 5.5 {
		t.Fatalf("maximum speedup should be q20 at 5.5x, got %s at %v", maxQ, maxV)
	}
}

func TestSizeClassesMatchNarrative(t *testing.T) {
	// The paper notes TPC-DS indexes are small (429 columns): several of the
	// simulated TPC-DS queries are L1-resident, while the memory-intensive
	// TPC-H queries (19, 20, 22) are memory-resident.
	l1 := 0
	for _, name := range []string{"q5", "q37", "q64", "q82"} {
		q, err := ByName(TPCDS, name)
		if err != nil {
			t.Fatal(err)
		}
		if q.Class == L1Resident {
			l1++
		}
	}
	if l1 < 3 {
		t.Fatalf("expected most small TPC-DS queries to be L1-resident, got %d", l1)
	}
	for _, name := range []string{"q19", "q20", "q22"} {
		q, err := ByName(TPCH, name)
		if err != nil {
			t.Fatal(err)
		}
		if q.Class != MemoryResident {
			t.Fatalf("TPC-H %s should be memory-resident", name)
		}
	}
}

func TestByNameAndStrings(t *testing.T) {
	if _, err := ByName(TPCH, "q99"); err == nil {
		t.Fatal("nonexistent query found")
	}
	if TPCH.String() != "TPC-H" || TPCDS.String() != "TPC-DS" || Suite(9).String() == "" {
		t.Fatal("suite names wrong")
	}
	if L1Resident.String() == "" || LLCResident.String() == "" || MemoryResident.String() == "" ||
		SizeClass(9).String() == "" {
		t.Fatal("size class names wrong")
	}
}

func TestHeadlineConstants(t *testing.T) {
	if PaperIndexGeoMeanSpeedup != 3.1 || PaperQueryGeoMeanSpeedup != 1.5 {
		t.Fatal("headline speedups wrong")
	}
	if PaperEnergyReduction != 0.83 || PaperEDPImprovement != 17.5 {
		t.Fatal("energy headlines wrong")
	}
}
