// Package engine is a minimal column-oriented query engine in the spirit of
// MonetDB: it executes decision-support join queries over synthetic tables
// with scan, hash-index join, sort and aggregation operators, and accounts
// execution time per operator so that the Figure 2a-style breakdown (Index /
// Scan / Sort&Join / Other) and the Figure 2b Hash/Walk split emerge from an
// actual execution rather than being asserted.
//
// The engine's index phase is built on internal/hashidx inside a simulated
// address space, and its cost comes from the out-of-order core model running
// the real probe traces against the memory hierarchy; the remaining operators
// use simple per-tuple cost factors typical of vectorized column stores. The
// artifacts of the index phase (the built index, the materialized probe key
// column, the traces) are returned so the higher-level simulation harness can
// re-run exactly the same index phase on other designs (in-order core, Widx).
package engine

import (
	"fmt"
	"math"

	"widx/internal/colstore"
	"widx/internal/cores"
	"widx/internal/hashidx"
	"widx/internal/mem"
	"widx/internal/vm"
	"widx/internal/workloads"
)

// Per-tuple cost factors for the non-index operators, in cycles per value,
// representative of vectorized column-store operators (scans stream at a few
// cycles per value; sorting costs a handful of cycles per comparison).
const (
	scanCyclesPerRow      = 2.0
	sortCyclesPerCompare  = 4.0
	aggregateCyclesPerRow = 2.0
	// otherOverheadShare models query setup, catalog work, result delivery
	// and everything else Figure 2a lumps under "Other".
	otherOverheadShare = 0.08
)

// PlanSpec describes one synthetic join query.
type PlanSpec struct {
	// Name labels the query in reports.
	Name string
	// DimensionRows is the build-side (indexed) table size.
	DimensionRows int
	// FactRows is the probe-side table size before the scan filter.
	FactRows int
	// ScanSelectivity is the fraction of fact rows that survive the filter
	// and probe the index.
	ScanSelectivity float64
	// NodesPerBucket sets the index bucket depth.
	NodesPerBucket float64
	// Layout and Hash configure the index (MonetDB uses the indirect layout).
	Layout hashidx.Layout
	Hash   hashidx.HashKind
	// Sort and Aggregate enable the post-join operators.
	Sort      bool
	Aggregate bool
	// Seed makes data generation deterministic.
	Seed uint64
}

// Validate reports spec errors.
func (s PlanSpec) Validate() error {
	if s.DimensionRows <= 0 || s.FactRows <= 0 {
		return fmt.Errorf("engine: table sizes must be positive")
	}
	if s.ScanSelectivity <= 0 || s.ScanSelectivity > 1 {
		return fmt.Errorf("engine: scan selectivity must be in (0,1]")
	}
	if s.NodesPerBucket <= 0 {
		return fmt.Errorf("engine: NodesPerBucket must be positive")
	}
	return nil
}

// FromWorkload converts a benchmark query spec into an executable plan at the
// given scale (1.0 reproduces the inventory sizes; tests and benchmarks use
// much smaller scales). MonetDB's indirect node layout is used throughout.
//
// The probe volume scales linearly, but the index size is floored per size
// class so that a scaled-down query still lands in the cache-hierarchy regime
// the paper describes for it (an "LLC-resident" query must still exceed the
// 32 KB L1, a "memory-resident" query must still exceed the 4 MB LLC);
// otherwise every query would collapse into the L1 at small scales and the
// walker-scaling behaviour of Figures 9 and 10 would disappear.
func FromWorkload(q workloads.QuerySpec, scale float64) PlanSpec {
	if scale <= 0 {
		scale = 1
	}
	build := int(float64(q.BuildRows) * scale)
	if floor := classBuildFloor(q.Class); build < floor {
		build = floor
	}
	if build > q.BuildRows {
		build = q.BuildRows
	}
	if build < 64 {
		build = 64
	}
	probes := int(float64(q.ProbeRows) * scale)
	if probes < 256 {
		probes = 256
	}
	const selectivity = 0.5
	hash := hashidx.HashSimple
	if q.RobustHash {
		hash = hashidx.HashRobust
	}
	return PlanSpec{
		Name:            fmt.Sprintf("%s-%s", q.Suite, q.Name),
		DimensionRows:   build,
		FactRows:        int(float64(probes) / selectivity),
		ScanSelectivity: selectivity,
		NodesPerBucket:  q.NodesPerBucket,
		Layout:          hashidx.LayoutIndirect,
		Hash:            hash,
		Sort:            true,
		Aggregate:       true,
		Seed:            uint64(len(q.Name))*7919 + uint64(q.Suite),
	}
}

// Breakdown is the per-operator cycle accounting of one query execution.
type Breakdown struct {
	Index    float64
	Scan     float64
	SortJoin float64
	Other    float64
}

// Total returns the summed cycles.
func (b Breakdown) Total() float64 { return b.Index + b.Scan + b.SortJoin + b.Other }

// Shares converts the breakdown to fractions of the total.
func (b Breakdown) Shares() workloads.BreakdownShares {
	t := b.Total()
	if t == 0 {
		return workloads.BreakdownShares{}
	}
	return workloads.BreakdownShares{
		Index:    b.Index / t,
		Scan:     b.Scan / t,
		SortJoin: b.SortJoin / t,
		Other:    b.Other / t,
	}
}

// Result is one executed query.
type Result struct {
	Name string

	// Functional outputs.
	ProbeCount int    // probes issued by the join
	MatchCount int    // probes that found a dimension row
	Aggregate  uint64 // sum of matched dimension values (when enabled)

	// Cost accounting.
	Breakdown  Breakdown
	IndexShare float64
	// HashShare is the fraction of index time spent hashing (Figure 2b).
	HashShare float64

	// Index-phase artifacts for further simulation on other designs.
	AS           *vm.AddressSpace
	Index        *hashidx.Table
	ProbeKeys    []uint64
	ProbeKeyBase uint64
	Traces       []hashidx.ProbeTrace
}

// Run executes the plan and returns the result. The memory hierarchy used to
// cost the index phase is created internally (an OoO core per Table 2).
func Run(spec PlanSpec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	// 1. Generate the synthetic database.
	db, err := colstore.GenerateDSS(colstore.DSSConfig{
		FactRows:      spec.FactRows,
		DimensionRows: spec.DimensionRows,
		Dimensions:    1,
		Seed:          spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	fact, dim := db.Fact, db.Dimensions[0]

	// 2. Scan: filter the fact table on its measure column.
	threshold := uint64(float64(10_000) * spec.ScanSelectivity)
	selected := colstore.SelectRows(fact.MustColumn("measure"), func(v uint64) bool { return v < threshold })
	probeKeys := colstore.Gather(fact.MustColumn(colstore.DimensionKey(0)), selected)
	if len(probeKeys) == 0 {
		return nil, fmt.Errorf("engine: scan selected no rows")
	}
	scanCycles := float64(fact.Rows()) * scanCyclesPerRow

	// 3. Build the hash index on the dimension key column and materialize the
	// probe keys, both in the simulated address space.
	as := vm.New()
	idx, err := hashidx.Build(as, hashidx.Config{
		Layout:      spec.Layout,
		Hash:        spec.Hash,
		BucketCount: bucketCountFor(spec.DimensionRows, spec.NodesPerBucket),
		Name:        spec.Name,
	}, dim.MustColumn("key").Values, nil)
	if err != nil {
		return nil, err
	}
	probeBase := as.AllocAligned(spec.Name+".probekeys", uint64(len(probeKeys))*8)
	for i, k := range probeKeys {
		as.Write64(probeBase+uint64(i)*8, k)
	}

	// 4. Probe: functional result plus traces for the timing model.
	res := &Result{
		Name:         spec.Name,
		ProbeCount:   len(probeKeys),
		AS:           as,
		Index:        idx,
		ProbeKeys:    probeKeys,
		ProbeKeyBase: probeBase,
	}
	dimValues := dim.MustColumn("value").Values
	var matchedValues []uint64
	for i, k := range probeKeys {
		pr := idx.ProbeFrom(k, probeBase+uint64(i)*8)
		res.Traces = append(res.Traces, pr.Trace)
		if pr.Found {
			res.MatchCount++
			matchedValues = append(matchedValues, dimValues[pr.Payload])
		}
	}

	// 5. Cost the index phase on the baseline out-of-order core.
	hier := mem.NewHierarchy(mem.DefaultConfig())
	core, err := cores.New(cores.OoOConfig(), hier)
	if err != nil {
		return nil, err
	}
	coreRes, err := core.RunProbes(res.Traces, 0)
	if err != nil {
		return nil, err
	}
	indexCycles := float64(coreRes.TotalCycles)
	res.HashShare = coreRes.HashShare()

	// 6. Post-join operators.
	sortJoinCycles := 0.0
	if spec.Sort && len(matchedValues) > 1 {
		_ = colstore.SortedCopy(matchedValues)
		n := float64(len(matchedValues))
		sortJoinCycles += n * math.Log2(n) * sortCyclesPerCompare
	}
	if spec.Aggregate {
		for _, v := range matchedValues {
			res.Aggregate += v
		}
		sortJoinCycles += float64(len(matchedValues)) * aggregateCyclesPerRow
	}

	// 7. Assemble the breakdown.
	measured := indexCycles + scanCycles + sortJoinCycles
	other := measured * otherOverheadShare / (1 - otherOverheadShare)
	res.Breakdown = Breakdown{
		Index:    indexCycles,
		Scan:     scanCycles,
		SortJoin: sortJoinCycles,
		Other:    other,
	}
	res.IndexShare = res.Breakdown.Shares().Index
	return res, nil
}

// classBuildFloor returns the minimum build-side row count that keeps an
// index in its intended cache-hierarchy regime with the indirect layout
// (16-byte nodes plus an 8-byte key column entry per row, plus bucket
// headers): ~26K rows is roughly a 1 MB working set (beyond the L1, within
// the LLC) and ~280K rows is roughly 11 MB (beyond the 4 MB LLC).
func classBuildFloor(class workloads.SizeClass) int {
	switch class {
	case workloads.LLCResident:
		return 26_000
	case workloads.MemoryResident:
		return 280_000
	default:
		return 0
	}
}

// bucketCountFor picks the power-of-two bucket count that targets the given
// average chain depth.
func bucketCountFor(rows int, nodesPerBucket float64) uint64 {
	buckets := uint64(1)
	for float64(rows)/float64(buckets) > nodesPerBucket {
		buckets <<= 1
	}
	return buckets
}

// NativeJoinAggregate computes the reference answer of the engine's canonical
// query with plain Go maps: the sum of dimension values for every probe key
// that joins. Tests use it to check the engine end to end.
func NativeJoinAggregate(dimKeys, dimValues, probeKeys []uint64) (matches int, sum uint64) {
	m := make(map[uint64]uint64, len(dimKeys))
	for i, k := range dimKeys {
		m[k] = dimValues[i]
	}
	for _, k := range probeKeys {
		if v, ok := m[k]; ok {
			matches++
			sum += v
		}
	}
	return matches, sum
}
