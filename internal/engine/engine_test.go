package engine

import (
	"testing"

	"widx/internal/colstore"
	"widx/internal/hashidx"
	"widx/internal/workloads"
)

func smallSpec() PlanSpec {
	return PlanSpec{
		Name:            "test-query",
		DimensionRows:   500,
		FactRows:        8000,
		ScanSelectivity: 0.5,
		NodesPerBucket:  1.5,
		Layout:          hashidx.LayoutIndirect,
		Hash:            hashidx.HashRobust,
		Sort:            true,
		Aggregate:       true,
		Seed:            3,
	}
}

func TestPlanSpecValidate(t *testing.T) {
	if err := smallSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*PlanSpec){
		"dim rows":    func(s *PlanSpec) { s.DimensionRows = 0 },
		"fact rows":   func(s *PlanSpec) { s.FactRows = 0 },
		"selectivity": func(s *PlanSpec) { s.ScanSelectivity = 0 },
		"sel high":    func(s *PlanSpec) { s.ScanSelectivity = 1.5 },
		"bucket":      func(s *PlanSpec) { s.NodesPerBucket = 0 },
	}
	for name, mutate := range mutations {
		s := smallSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
	bad := smallSpec()
	bad.FactRows = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("Run accepted an invalid spec")
	}
}

func TestRunProducesCorrectJoinResult(t *testing.T) {
	spec := smallSpec()
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbeCount == 0 || res.MatchCount == 0 {
		t.Fatalf("no probes or matches: %+v", res)
	}
	// Every probe key is a foreign key into the dimension, so all must match.
	if res.MatchCount != res.ProbeCount {
		t.Fatalf("matches %d != probes %d (foreign keys must all join)", res.MatchCount, res.ProbeCount)
	}

	// The functional aggregate must equal a plain map-based join over the
	// same generated data.
	db, err := colstore.GenerateDSS(colstore.DSSConfig{
		FactRows:      spec.FactRows,
		DimensionRows: spec.DimensionRows,
		Dimensions:    1,
		Seed:          spec.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	threshold := uint64(float64(10_000) * spec.ScanSelectivity)
	selected := colstore.SelectRows(db.Fact.MustColumn("measure"), func(v uint64) bool { return v < threshold })
	probeKeys := colstore.Gather(db.Fact.MustColumn(colstore.DimensionKey(0)), selected)
	wantMatches, wantSum := NativeJoinAggregate(
		db.Dimensions[0].MustColumn("key").Values,
		db.Dimensions[0].MustColumn("value").Values,
		probeKeys)
	if res.MatchCount != wantMatches || res.Aggregate != wantSum {
		t.Fatalf("engine join result (%d, %d) != native join (%d, %d)",
			res.MatchCount, res.Aggregate, wantMatches, wantSum)
	}
}

func TestBreakdownConsistency(t *testing.T) {
	res, err := Run(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown
	if b.Index <= 0 || b.Scan <= 0 || b.SortJoin <= 0 || b.Other <= 0 {
		t.Fatalf("all operators should have non-zero cost: %+v", b)
	}
	shares := b.Shares()
	if s := shares.Sum(); s < 0.999 || s > 1.001 {
		t.Fatalf("shares sum to %v", s)
	}
	if res.IndexShare != shares.Index {
		t.Fatal("IndexShare inconsistent with the breakdown")
	}
	if res.HashShare <= 0 || res.HashShare >= 1 {
		t.Fatalf("hash share out of range: %v", res.HashShare)
	}
	// Artifacts for downstream simulation are present and consistent.
	if res.Index == nil || res.AS == nil || res.ProbeKeyBase == 0 {
		t.Fatal("index-phase artifacts missing")
	}
	if len(res.Traces) != res.ProbeCount || len(res.ProbeKeys) != res.ProbeCount {
		t.Fatal("trace/key counts inconsistent")
	}
	var zero Breakdown
	if zero.Shares().Sum() != 0 {
		t.Fatal("zero breakdown should have zero shares")
	}
}

func TestIndexShareGrowsWithProbeVolume(t *testing.T) {
	light := smallSpec()
	light.FactRows = 4000
	light.DimensionRows = 300

	heavy := smallSpec()
	heavy.FactRows = 20000
	heavy.DimensionRows = 4000
	heavy.ScanSelectivity = 0.9

	lr, err := Run(light)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := Run(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if hr.IndexShare <= lr.IndexShare {
		t.Fatalf("index share should grow with probe volume and index size: %v vs %v",
			hr.IndexShare, lr.IndexShare)
	}
}

func TestFromWorkload(t *testing.T) {
	q, err := workloads.ByName(workloads.TPCH, "q17")
	if err != nil {
		t.Fatal(err)
	}
	spec := FromWorkload(q, 0.01)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.Layout != hashidx.LayoutIndirect {
		t.Fatal("MonetDB-style queries should use the indirect layout")
	}
	if spec.DimensionRows <= 0 || spec.FactRows <= spec.DimensionRows/10 {
		t.Fatalf("scaled sizes implausible: %+v", spec)
	}
	// Robust-hash queries carry the flag through.
	q20, err := workloads.ByName(workloads.TPCH, "q20")
	if err != nil {
		t.Fatal(err)
	}
	if FromWorkload(q20, 0.01).Hash != hashidx.HashRobust {
		t.Fatal("q20 should use the robust hash")
	}
	// Zero or negative scale falls back to 1.0 and tiny scales respect floors.
	tiny := FromWorkload(q, 1e-9)
	if tiny.DimensionRows < 64 || tiny.FactRows < 256 {
		t.Fatal("scale floors not applied")
	}
	if FromWorkload(q, 0).DimensionRows != q.BuildRows {
		t.Fatal("zero scale should mean the inventory size")
	}
	// The plan must actually run.
	if _, err := Run(FromWorkload(q, 0.002)); err != nil {
		t.Fatal(err)
	}
}

func TestNativeJoinAggregate(t *testing.T) {
	matches, sum := NativeJoinAggregate(
		[]uint64{1, 2, 3},
		[]uint64{10, 20, 30},
		[]uint64{2, 3, 3, 9})
	if matches != 3 || sum != 80 {
		t.Fatalf("NativeJoinAggregate = (%d, %d)", matches, sum)
	}
}
