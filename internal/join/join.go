// Package join implements the hash-join workloads of the evaluation: the
// optimized "no partitioning" hash-join kernel the paper uses for Figure 8
// (with its Small / Medium / Large index sizes), plus the alternative join
// algorithms discussed in Section 7 — a radix-partitioned hash join and a
// sort-merge join — as functional baselines.
//
// The kernel lays its hash index out in the simulated address space via
// internal/hashidx, so the same build can be probed three ways: functionally
// in software, trace-driven on the baseline core models, and by the Widx
// accelerator executing its unit programs.
package join

import (
	"fmt"
	"sort"
	"strings"

	"widx/internal/hashidx"
	"widx/internal/stats"
	"widx/internal/vm"
)

// SizeClass is the index size class of the hash-join kernel (Section 5).
type SizeClass uint8

const (
	// Small is the 4K-tuple (32 KB raw) L1/LLC-resident index.
	Small SizeClass = iota
	// Medium is the 512K-tuple (4 MB raw) LLC-sized index.
	Medium
	// Large is the 128M-tuple (1 GB raw) memory-resident index.
	Large
)

// String names the size class.
func (s SizeClass) String() string {
	switch s {
	case Small:
		return "Small"
	case Medium:
		return "Medium"
	case Large:
		return "Large"
	default:
		return fmt.Sprintf("size(%d)", uint8(s))
	}
}

// MarshalText encodes the size class by name, so JSON objects keyed or
// valued by a SizeClass carry "Small"/"Medium"/"Large" instead of enum
// integers.
func (s SizeClass) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// ParseSizeClass parses a size-class name, case-insensitively.
func ParseSizeClass(s string) (SizeClass, error) {
	switch strings.ToLower(s) {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return 0, fmt.Errorf("join: unknown kernel size %q (want Small, Medium or Large)", s)
}

// paperTuples returns the unscaled tuple counts of Section 5.
func (s SizeClass) paperTuples() int {
	switch s {
	case Small:
		return 4 * 1024
	case Medium:
		return 512 * 1024
	default:
		return 128 * 1024 * 1024
	}
}

// Tuples returns the build-side tuple count at the given scale (1.0 is the
// paper's size). Scale lets tests and benchmarks shrink the Large class to
// something a unit test can afford while keeping the Small < Medium < Large
// relationship to the cache hierarchy intact.
func (s SizeClass) Tuples(scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(s.paperTuples()) * scale)
	if n < 16 {
		n = 16
	}
	return n
}

// KernelConfig describes one hash-join kernel instance.
type KernelConfig struct {
	// Size selects the build-side tuple count.
	Size SizeClass
	// Scale shrinks the paper's sizes for test/bench affordability (1.0 is
	// the paper's configuration).
	Scale float64
	// OuterTuples is the probe-side tuple count. The paper uses 128M outer
	// tuples for every size class; zero derives a scaled value.
	OuterTuples int
	// NodesPerBucket is the target average chain length (the kernel uses up
	// to two nodes per bucket).
	NodesPerBucket float64
	// Hash is the hash function (the kernel uses the simple masked XOR).
	Hash hashidx.HashKind
	// Seed makes data generation deterministic.
	Seed uint64
}

// DefaultKernelConfig returns the paper's kernel configuration for a size
// class at the given scale.
func DefaultKernelConfig(size SizeClass, scale float64) KernelConfig {
	return KernelConfig{
		Size:           size,
		Scale:          scale,
		NodesPerBucket: 2,
		Hash:           hashidx.HashSimple,
		Seed:           42,
	}
}

// Validate reports configuration errors.
func (c KernelConfig) Validate() error {
	if c.Size > Large {
		return fmt.Errorf("join: unknown size class %d", c.Size)
	}
	if c.Scale < 0 {
		return fmt.Errorf("join: negative scale")
	}
	if c.NodesPerBucket <= 0 {
		return fmt.Errorf("join: NodesPerBucket must be positive")
	}
	if c.OuterTuples < 0 {
		return fmt.Errorf("join: negative outer tuple count")
	}
	return nil
}

// Kernel is a built hash-join kernel instance: the build-side index resident
// in a simulated address space plus the probe-side key column.
type Kernel struct {
	cfg KernelConfig

	AS    *vm.AddressSpace
	Index *hashidx.Table

	BuildKeys []uint64
	ProbeKeys []uint64
	// ProbeKeyBase is the address of the materialized probe key column.
	ProbeKeyBase uint64
	// ResultBase is a pre-allocated result region for offloaded probes.
	ResultBase uint64
}

// BuildKernel generates the build and probe relations and constructs the
// in-memory hash index. Build keys are unique; probe keys are drawn uniformly
// from the build keys (every probe matches, as in the kernel's configuration
// where the outer relation joins with the inner).
func BuildKernel(cfg KernelConfig) (*Kernel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	buildN := cfg.Size.Tuples(cfg.Scale)
	outerN := cfg.OuterTuples
	if outerN == 0 {
		// The paper probes with 128M keys regardless of index size; scale it
		// the same way but keep at least 4x the build side so probe streams
		// are long enough to measure.
		outerN = int(float64(128*1024*1024) * cfg.Scale)
		if outerN < 4*buildN {
			outerN = 4 * buildN
		}
	}

	rng := stats.NewRNG(cfg.Seed)
	buildKeys := make([]uint64, buildN)
	seen := make(map[uint64]bool, buildN)
	for i := range buildKeys {
		for {
			// 4-byte keys as in the kernel (Kim et al. tuple format).
			k := uint64(rng.Uint32())
			if k != 0 && !seen[k] {
				buildKeys[i] = k
				seen[k] = true
				break
			}
		}
	}
	probeKeys := make([]uint64, outerN)
	for i := range probeKeys {
		probeKeys[i] = buildKeys[rng.Intn(buildN)]
	}

	// Bucket count targets the configured chain depth.
	buckets := uint64(1)
	for float64(buildN)/float64(buckets) > cfg.NodesPerBucket {
		buckets <<= 1
	}

	as := vm.New()
	idx, err := hashidx.Build(as, hashidx.Config{
		Layout:      hashidx.LayoutInline,
		Hash:        cfg.Hash,
		BucketCount: buckets,
		Name:        "kernel." + cfg.Size.String(),
	}, buildKeys, nil)
	if err != nil {
		return nil, err
	}

	probeBase := as.AllocAligned("kernel.probekeys", uint64(outerN)*8)
	for i, k := range probeKeys {
		as.Write64(probeBase+uint64(i)*8, k)
	}
	resultBase := as.AllocAligned("kernel.results", uint64(outerN)*8+64)

	return &Kernel{
		cfg:          cfg,
		AS:           as,
		Index:        idx,
		BuildKeys:    buildKeys,
		ProbeKeys:    probeKeys,
		ProbeKeyBase: probeBase,
		ResultBase:   resultBase,
	}, nil
}

// Config returns the kernel's configuration.
func (k *Kernel) Config() KernelConfig { return k.cfg }

// SoftwareProbe runs the probe phase functionally and returns the number of
// probes that found a match (all of them, for the kernel's workload).
func (k *Kernel) SoftwareProbe() int {
	return k.Index.BulkProbe(k.ProbeKeys)
}

// Traces returns the per-probe traces for the baseline core timing models.
// The optional limit truncates the probe stream (0 means all probes).
func (k *Kernel) Traces(limit int) []hashidx.ProbeTrace {
	n := len(k.ProbeKeys)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]hashidx.ProbeTrace, n)
	for i := 0; i < n; i++ {
		out[i] = k.Index.ProbeFrom(k.ProbeKeys[i], k.ProbeKeyBase+uint64(i)*8).Trace
	}
	return out
}

// FootprintBytes returns the index working-set size, the quantity that puts
// Small, Medium and Large on different levels of the cache hierarchy.
func (k *Kernel) FootprintBytes() uint64 { return k.Index.FootprintBytes() }

// HashJoinNative is a straightforward Go map-based hash join returning the
// number of (build, probe) matches; it is the functional reference the other
// algorithms are checked against.
func HashJoinNative(build, probe []uint64) int {
	ht := make(map[uint64]int, len(build))
	for _, k := range build {
		ht[k]++
	}
	matches := 0
	for _, k := range probe {
		matches += ht[k]
	}
	return matches
}

// RadixPartitionJoin is the hardware-conscious alternative discussed in
// Section 7: both inputs are partitioned by the low bits of the key so each
// partition's hash table is cache-resident, then partitions are joined
// independently. Functionally it must agree with HashJoinNative.
func RadixPartitionJoin(build, probe []uint64, radixBits int) int {
	if radixBits <= 0 {
		radixBits = 6
	}
	parts := 1 << radixBits
	mask := uint64(parts - 1)
	buildParts := make([][]uint64, parts)
	probeParts := make([][]uint64, parts)
	for _, k := range build {
		p := k & mask
		buildParts[p] = append(buildParts[p], k)
	}
	for _, k := range probe {
		p := k & mask
		probeParts[p] = append(probeParts[p], k)
	}
	matches := 0
	for p := 0; p < parts; p++ {
		matches += HashJoinNative(buildParts[p], probeParts[p])
	}
	return matches
}

// SortMergeJoin is the SIMD-friendly alternative of the sort-vs-hash debate
// (Section 7): both sides are sorted and merged. It returns the same match
// count as HashJoinNative for multiset semantics.
func SortMergeJoin(build, probe []uint64) int {
	b := append([]uint64(nil), build...)
	p := append([]uint64(nil), probe...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })

	matches := 0
	i, j := 0, 0
	for i < len(b) && j < len(p) {
		switch {
		case b[i] < p[j]:
			i++
		case b[i] > p[j]:
			j++
		default:
			// Count the run lengths of equal keys on both sides.
			v := b[i]
			bi := i
			for i < len(b) && b[i] == v {
				i++
			}
			pj := j
			for j < len(p) && p[j] == v {
				j++
			}
			matches += (i - bi) * (j - pj)
		}
	}
	return matches
}
