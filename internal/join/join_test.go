package join

import (
	"testing"
	"testing/quick"

	"widx/internal/hashidx"
	"widx/internal/stats"
)

func TestSizeClasses(t *testing.T) {
	if Small.String() != "Small" || Medium.String() != "Medium" || Large.String() != "Large" {
		t.Fatal("size class names wrong")
	}
	if SizeClass(9).String() == "" {
		t.Fatal("unknown size class should still format")
	}
	// Paper sizes at scale 1.
	if Small.Tuples(1) != 4*1024 || Medium.Tuples(1) != 512*1024 || Large.Tuples(1) != 128*1024*1024 {
		t.Fatal("paper tuple counts wrong")
	}
	// Scaling preserves ordering and applies a floor.
	if !(Small.Tuples(0.001) <= Medium.Tuples(0.001) && Medium.Tuples(0.001) < Large.Tuples(0.001)) {
		t.Fatal("scaled ordering wrong")
	}
	if Small.Tuples(0) != Small.Tuples(1) {
		t.Fatal("zero scale should mean the paper size")
	}
	if Small.Tuples(1e-9) < 16 {
		t.Fatal("tuple floor missing")
	}
}

func TestKernelConfigValidate(t *testing.T) {
	if err := DefaultKernelConfig(Medium, 0.01).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []KernelConfig{
		{Size: SizeClass(7), NodesPerBucket: 2},
		{Size: Small, Scale: -1, NodesPerBucket: 2},
		{Size: Small, NodesPerBucket: 0},
		{Size: Small, NodesPerBucket: 2, OuterTuples: -5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("invalid config accepted: %+v", c)
		}
	}
	if _, err := BuildKernel(KernelConfig{Size: Small, NodesPerBucket: 0}); err == nil {
		t.Fatal("BuildKernel accepted an invalid config")
	}
}

func TestBuildKernelSmall(t *testing.T) {
	cfg := DefaultKernelConfig(Small, 1)
	cfg.OuterTuples = 20000
	k, err := BuildKernel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.BuildKeys) != 4096 || len(k.ProbeKeys) != 20000 {
		t.Fatalf("sizes wrong: %d build, %d probe", len(k.BuildKeys), len(k.ProbeKeys))
	}
	// Every probe key joins (drawn from the build keys).
	if found := k.SoftwareProbe(); found != len(k.ProbeKeys) {
		t.Fatalf("SoftwareProbe found %d of %d", found, len(k.ProbeKeys))
	}
	// The chain depth target of ~2 nodes per bucket is respected.
	if avg := k.Index.AvgNodesPerBucket(); avg > 3.0 {
		t.Fatalf("average nodes per bucket = %v, want ~2", avg)
	}
	if k.FootprintBytes() == 0 {
		t.Fatal("zero footprint")
	}
	if k.Config().Size != Small {
		t.Fatal("config accessor wrong")
	}
}

func TestSizeClassFootprintOrdering(t *testing.T) {
	// At a small scale, footprints must still order Small < Medium < Large,
	// which is what places them on different cache levels.
	var prev uint64
	for _, size := range []SizeClass{Small, Medium, Large} {
		cfg := DefaultKernelConfig(size, 0.002)
		cfg.OuterTuples = 1000
		k, err := BuildKernel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if k.FootprintBytes() <= prev {
			t.Fatalf("%v footprint %d not larger than previous %d", size, k.FootprintBytes(), prev)
		}
		prev = k.FootprintBytes()
	}
}

func TestKernelTraces(t *testing.T) {
	cfg := DefaultKernelConfig(Small, 1)
	cfg.OuterTuples = 5000
	k, err := BuildKernel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traces := k.Traces(100)
	if len(traces) != 100 {
		t.Fatalf("trace limit not applied: %d", len(traces))
	}
	for i, tr := range traces {
		if tr.KeyAddr != k.ProbeKeyBase+uint64(i)*8 {
			t.Fatalf("trace %d key address wrong", i)
		}
		if len(tr.Steps) == 0 {
			t.Fatalf("trace %d has no steps", i)
		}
		if tr.HashOps != hashidx.HashOps(hashidx.HashSimple) {
			t.Fatalf("trace %d hash ops wrong", i)
		}
	}
	all := k.Traces(0)
	if len(all) != 5000 {
		t.Fatalf("unlimited traces = %d", len(all))
	}
}

func TestNativeJoinAlgorithmsAgree(t *testing.T) {
	rng := stats.NewRNG(5)
	build := make([]uint64, 2000)
	for i := range build {
		build[i] = rng.Uint64n(3000) // deliberate duplicates
	}
	probe := make([]uint64, 5000)
	for i := range probe {
		probe[i] = rng.Uint64n(4000) // some misses
	}
	want := HashJoinNative(build, probe)
	if want == 0 {
		t.Fatal("test workload produced no matches")
	}
	if got := RadixPartitionJoin(build, probe, 4); got != want {
		t.Fatalf("radix join = %d, want %d", got, want)
	}
	if got := RadixPartitionJoin(build, probe, 0); got != want {
		t.Fatalf("radix join (default bits) = %d, want %d", got, want)
	}
	if got := SortMergeJoin(build, probe); got != want {
		t.Fatalf("sort-merge join = %d, want %d", got, want)
	}
}

func TestKernelAgreesWithNativeJoin(t *testing.T) {
	cfg := DefaultKernelConfig(Small, 1)
	cfg.OuterTuples = 3000
	k, err := BuildKernel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	native := HashJoinNative(k.BuildKeys, k.ProbeKeys)
	if sw := k.SoftwareProbe(); sw != native {
		t.Fatalf("kernel probe found %d matches, native join %d", sw, native)
	}
}

// Property: the three join algorithms agree on arbitrary inputs.
func TestPropertyJoinAlgorithmsEquivalent(t *testing.T) {
	f := func(buildRaw, probeRaw []uint8) bool {
		build := make([]uint64, len(buildRaw))
		for i, v := range buildRaw {
			build[i] = uint64(v % 64)
		}
		probe := make([]uint64, len(probeRaw))
		for i, v := range probeRaw {
			probe[i] = uint64(v % 64)
		}
		want := HashJoinNative(build, probe)
		return RadixPartitionJoin(build, probe, 3) == want &&
			SortMergeJoin(build, probe) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: sort-merge join is symmetric in match counting when both sides
// are swapped.
func TestPropertySortMergeSymmetric(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		a := make([]uint64, len(aRaw))
		for i, v := range aRaw {
			a[i] = uint64(v % 32)
		}
		b := make([]uint64, len(bRaw))
		for i, v := range bRaw {
			b[i] = uint64(v % 32)
		}
		return SortMergeJoin(a, b) == SortMergeJoin(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
