// The cycle-interleaved execution core.
//
// The seed model ran each unit's work item to completion on a private cycle
// counter, so memory accesses from "concurrent" walkers reached the shared
// hierarchy serially and out of cycle order, and shared-resource contention
// (L1 ports, MSHRs, page-walk slots, memory controllers) was structurally
// mismodeled. This file replaces the hand-rolled per-organization timelines
// with one scheduler that steps every unit — the dispatcher (or per-walker
// hashing units), all walkers, and the output producer — in global cycle
// order:
//
//   - units are resumable steppers (unit.go) that yield before every memory
//     access and at every EMIT;
//   - decoupling queues are modelled explicitly, with capacity backpressure
//     applied at the EMIT that needs the slot;
//   - the scheduler repeatedly settles all queue traffic (computation is
//     local to a unit and needs no global ordering) and then grants the
//     single pending memory access with the globally smallest cycle, kept in
//     a binary min-heap keyed by (cycle, unit order) — a unit's pending
//     cycle is fixed while it waits, so the heap needs no decrease-key and
//     selection is O(log n) instead of a per-grant scan over all units.
//
// Because every Access call carries a cycle no smaller than the previous
// one, the hierarchy's live MSHR occupancy and resource schedules are exact;
// mem.Hierarchy.SetStrictOrder turns that contract into an assertion.
//
// The sched type implements system.Agent (Settle / PendingMem / GrantMem /
// Done), so an offload can either run alone (Accelerator.Offload) or be
// co-scheduled by internal/system's event scheduler with other agents —
// more Widx instances, host cores — against one shared memory level. A
// single-agent system degenerates to exactly this file's solo loop, which
// keeps single-agent results byte-identical to the pre-system API.
//
// Functional output is timing-independent: matches are collected per probe
// key and released to the producer in key order, so the emitted match stream
// is byte-identical to the seed model's (which processed keys one at a time)
// regardless of the hashing organization, the walker count, or how walks
// interleave.

package widx

import (
	"fmt"

	"widx/internal/system"
)

// qitem is one entry of a decoupling queue.
type qitem struct {
	vals []uint64
	// key is the probe-key index the entry belongs to.
	key uint64
	// avail is the cycle the entry becomes visible to the consumer (the
	// producing EMIT's retire cycle, or the walk finish for matches).
	avail uint64
}

// dqueue is a bounded decoupling queue between units. Capacity backpressure
// uses the seed model's rule: the k-th push needs the (k-cap)-th pop to have
// happened, and a blocked push is granted at that pop's cycle.
type dqueue struct {
	cap int
	// items with head form a recycling deque: head indexes the next entry
	// to pop, push appends, and the backing array rewinds whenever the
	// queue drains, so a steady producer/consumer pair stops allocating
	// once the array covers the queue's high-water mark (the historical
	// reslice-on-pop walked the array forward and reallocated on append
	// for the whole offload).
	items []qitem
	head  int
	// pushes/pops count lifetime traffic; popCycles[j%cap] is the cycle
	// the j-th pop left the queue (the consumer's item start cycle). Only
	// the last cap pops are ever consulted — the push that reuses pop j's
	// slot happens before pop j+cap can — so a fixed ring replaces the
	// historical one-entry-per-pop append.
	pops      uint64
	pushes    uint64
	popCycles []uint64
}

// len returns the number of queued entries.
func (q *dqueue) len() int { return len(q.items) - q.head }

// canPush reports whether a slot is free.
func (q *dqueue) canPush() bool { return q.len() < q.cap }

// pushReadyAt returns the earliest cycle >= want the next push may happen,
// assuming canPush (the slot that frees it has been popped).
func (q *dqueue) pushReadyAt(want uint64) uint64 {
	if q.pushes >= uint64(q.cap) {
		if t := q.popCycles[(q.pushes-uint64(q.cap))%uint64(q.cap)]; t > want {
			return t
		}
	}
	return want
}

// push appends an entry.
func (q *dqueue) push(it qitem) {
	q.items = append(q.items, it)
	q.pushes++
}

// front returns the head entry without removing it.
func (q *dqueue) front() qitem { return q.items[q.head] }

// pop removes the head, recording the cycle the consumer took it.
func (q *dqueue) pop(at uint64) qitem {
	it := q.items[q.head]
	q.items[q.head] = qitem{}
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	if q.popCycles == nil {
		// canPush guarantees a pop precedes the first capacity-limited
		// pushReadyAt lookup, so allocating here covers every reader.
		q.popCycles = make([]uint64, q.cap)
	}
	q.popCycles[q.pops%uint64(q.cap)] = at
	q.pops++
	return it
}

// keyOutput records one finished walk, pending release to the producer.
type keyOutput struct {
	emitted [][]uint64
	finish  uint64
}

// sched drives one offload on the stepped execution core.
type sched struct {
	acc    *Accelerator
	req    OffloadRequest
	stride uint64
	res    *OffloadResult

	n    int
	mode HashingMode

	// hashUnits is the single shared dispatcher (SharedDispatcher) or one
	// hashing unit per lane (PerWalkerHash, Coupled).
	hashUnits []*Unit
	walkers   []*Unit
	producer  *Unit

	// units lists every unit in the fixed grant tie-break order (hash units,
	// then walkers, then the producer). ready is the min-heap of units
	// waiting on memory, keyed by (want cycle, unit order): a unit is
	// pushed exactly when it enters UnitWaitMem and popped when granted, so
	// it is never queued twice.
	units []*Unit
	ready system.CycleHeap

	// queues[i] feeds the walkers: one shared queue of depth QueueDepth*n,
	// or per-lane queues of depth QueueDepth.
	queues []*dqueue

	// hashNext[i] is the next key index hash unit i will receive; it
	// advances by len(hashUnits). hashKey[i] is the key it is working on.
	hashNext []uint64
	hashKey  []uint64
	// laneGate/laneAvail serialize hashing with walking in Coupled mode:
	// lane i may only receive its next key once its previous walk finished.
	laneGate  []bool
	laneAvail []uint64

	// walkKey[i] is the key walker i is walking.
	walkKey []uint64

	// lastFinish tracks per-unit completion cycles for idle accounting and
	// the offload end time. Index: hash units, then walkers, then producer.
	hashLast []uint64
	walkLast []uint64
	prodLast uint64

	// Producer-side reordering: walks complete out of order, but matches are
	// released to the producer (and to res.Matches) in key order, which keeps
	// the functional output identical to the seed model and independent of
	// timing. done holds finished keys awaiting release; nextOut is the next
	// key index to release; prodQ with prodHead is the released match
	// stream, a recycling deque like dqueue.items (releaseDone appends,
	// the producer consumes from prodHead, the array rewinds on drain).
	done     map[uint64]keyOutput
	nextOut  uint64
	prodQ    []qitem
	prodHead int
	// releaseClock is the reorder buffer's drain clock: a key's matches
	// become visible to the producer no earlier than every preceding key's
	// walk finish (a match is only known to be next-in-order once all
	// earlier walks have resolved). It also keeps producer stores on the
	// global monotonic cycle order when a key finished long before the
	// earlier key that was blocking its release.
	releaseClock uint64
}

// newSched builds the units and queues for the accelerator's organization.
func newSched(a *Accelerator, req OffloadRequest, stride uint64) (*sched, error) {
	n := a.cfg.NumWalkers
	s := &sched{
		acc:    a,
		req:    req,
		stride: stride,
		res:    &OffloadResult{Tuples: req.KeyCount, Walkers: make([]Breakdown, n)},
		n:      n,
		mode:   a.cfg.Mode,
		done:   map[uint64]keyOutput{},
	}

	var err error
	if s.mode == SharedDispatcher {
		d, err := NewUnit("dispatcher", a.dispProg.Clone(), a.hier, a.as)
		if err != nil {
			return nil, err
		}
		s.hashUnits = []*Unit{d}
		s.queues = []*dqueue{{cap: a.cfg.QueueDepth * n}}
		s.hashNext = []uint64{0}
	} else {
		s.hashUnits = make([]*Unit, n)
		s.queues = make([]*dqueue, n)
		s.hashNext = make([]uint64, n)
		depth := a.cfg.QueueDepth
		if s.mode == Coupled {
			// Hashing is serialized with the walk by the lane gate; the
			// queue is a single-entry handoff buffer.
			depth = 1
		}
		for i := 0; i < n; i++ {
			s.hashUnits[i], err = NewUnit(fmt.Sprintf("hash%d", i), a.dispProg.Clone(), a.hier, a.as)
			if err != nil {
				return nil, err
			}
			s.queues[i] = &dqueue{cap: depth}
			s.hashNext[i] = uint64(i)
		}
	}
	s.hashKey = make([]uint64, len(s.hashUnits))
	s.laneGate = make([]bool, len(s.hashUnits))
	s.laneAvail = make([]uint64, len(s.hashUnits))
	for i := range s.laneGate {
		s.laneGate[i] = true
		s.laneAvail[i] = req.StartCycle
	}

	s.walkers = make([]*Unit, n)
	s.walkKey = make([]uint64, n)
	for i := range s.walkers {
		s.walkers[i], err = NewUnit(fmt.Sprintf("walker%d", i), a.walkProg.Clone(), a.hier, a.as)
		if err != nil {
			return nil, err
		}
	}
	s.producer, err = NewUnit("producer", a.prodProg.Clone(), a.hier, a.as)
	if err != nil {
		return nil, err
	}

	s.hashLast = make([]uint64, len(s.hashUnits))
	s.walkLast = make([]uint64, n)
	for i := range s.hashLast {
		s.hashLast[i] = req.StartCycle
	}
	for i := range s.walkLast {
		s.walkLast[i] = req.StartCycle
	}
	s.prodLast = req.StartCycle

	s.units = append(append(append([]*Unit{}, s.hashUnits...), s.walkers...), s.producer)
	// Each unit occupies at most one ready-heap slot, so this covers the
	// whole offload and the grant loop never grows the heap.
	s.ready.Grow(len(s.units))
	return s, nil
}

// note enqueues a unit that just entered UnitWaitMem into the ready heap,
// keyed by its fixed tie-break order (its index in s.units). It must be
// called after every step call (Start, GrantEmit, GrantMem) that can leave
// the unit waiting on memory; call sites pass the order they already know,
// keeping the scheduler's hottest path free of lookups.
func (s *sched) note(u *Unit, order int) {
	if u.State() == UnitWaitMem {
		s.ready.Push(u.WantCycle(), order)
	}
}

// walkerOrder returns walker i's index in the grant tie-break order.
func (s *sched) walkerOrder(i int) int { return len(s.hashUnits) + i }

// laneQueue returns the queue walker i consumes from.
func (s *sched) laneQueue(i int) *dqueue {
	if s.mode == SharedDispatcher {
		return s.queues[0]
	}
	return s.queues[i]
}

// Name identifies the offload's agent; it is the agent label of the memory-
// hierarchy view the accelerator is bound to.
func (s *sched) Name() string { return s.acc.hier.Name() }

// PendingMem reports the cycle of the earliest pending memory access across
// all units (ties broken by fixed unit order: hash units, walkers,
// producer), ok=false when no unit waits on memory.
func (s *sched) PendingMem() (uint64, bool) {
	cycle, _, ok := s.ready.Peek()
	return cycle, ok
}

// GrantMem grants the single pending memory access with the smallest cycle
// and folds any completed work item into the offload accounting.
func (s *sched) GrantMem() error {
	_, order, ok := s.ready.Pop()
	if !ok {
		return fmt.Errorf("widx: %s: memory grant with no unit waiting (%d/%d keys released)",
			s.Name(), s.nextOut, s.req.KeyCount)
	}
	u := s.units[order]
	if err := u.GrantMem(); err != nil {
		return err
	}
	if err := s.collect(u); err != nil {
		return err
	}
	s.note(u, order)
	return nil
}

// Done reports whether the offload has completed all of its work.
func (s *sched) Done() bool { return s.finished() }

// Settle propagates all non-memory progress until quiescence: granting
// emits that have queue space, starting idle units on available inputs, and
// folding finished items into the offload accounting. Everything here is
// computation or queue traffic local to the units, so it cannot violate the
// global memory-cycle order; units that pause at a memory access are pushed
// onto the ready heap.
func (s *sched) Settle() error {
	for {
		progress := false

		// Hashing units: unblock emits, then feed the next key.
		for i, u := range s.hashUnits {
			if u.State() == UnitWaitEmit {
				q := s.queues[i]
				if !q.canPush() {
					continue
				}
				at := q.pushReadyAt(u.WantCycle())
				out, err := u.GrantEmit(at)
				if err != nil {
					return err
				}
				q.push(qitem{vals: out, key: s.hashKey[i], avail: at + 1})
				progress = true
				if err := s.collect(u); err != nil {
					return err
				}
				s.note(u, i)
			}
			if u.State() == UnitIdle && s.hashNext[i] < s.req.KeyCount && s.laneGate[i] {
				key := s.hashNext[i]
				start := s.hashLast[i]
				if s.laneAvail[i] > start {
					start = s.laneAvail[i]
				}
				s.hashKey[i] = key
				s.hashNext[i] += uint64(len(s.hashUnits))
				if s.mode == Coupled {
					s.laneGate[i] = false
				}
				if err := u.Start([]uint64{s.req.KeyBase + key*s.stride}, start); err != nil {
					return err
				}
				progress = true
				if err := s.collect(u); err != nil {
					return err
				}
				s.note(u, i)
			}
		}

		// Walkers: unblock emits (the walker-to-producer path is staged
		// through the reorder buffer and never exerts backpressure), then
		// assign queued work to the walker that can start it earliest.
		for i, u := range s.walkers {
			if u.State() != UnitWaitEmit {
				continue
			}
			// The emitted values are accumulated in the item result and
			// collected when the walk finishes.
			if _, err := u.GrantEmit(u.WantCycle()); err != nil {
				return err
			}
			progress = true
			if err := s.collect(u); err != nil {
				return err
			}
			s.note(u, s.walkerOrder(i))
		}
		for qi := range s.queues {
			q := s.queues[qi]
			for q.len() > 0 {
				head := q.front()
				w := s.pickWalker(qi, head.avail)
				if w < 0 {
					break
				}
				u := s.walkers[w]
				start := s.walkLast[w]
				if head.avail > start {
					// Waiting for a hashed key is walker idle time — except
					// in Coupled mode, where the wait IS the lane's hashing
					// (already charged to the walker via the hash item).
					if s.mode != Coupled {
						s.res.Walkers[w].Idle += head.avail - start
					}
					start = head.avail
				}
				q.pop(start)
				s.walkKey[w] = head.key
				if err := u.Start(head.vals, start); err != nil {
					return err
				}
				progress = true
				if err := s.collect(u); err != nil {
					return err
				}
				s.note(u, s.walkerOrder(w))
			}
		}

		// Producer: consume the released match stream in key order.
		if s.producer.State() == UnitIdle && s.prodHead < len(s.prodQ) {
			head := s.prodQ[s.prodHead]
			s.prodQ[s.prodHead] = qitem{}
			s.prodHead++
			if s.prodHead == len(s.prodQ) {
				s.prodQ = s.prodQ[:0]
				s.prodHead = 0
			}
			start := s.prodLast
			if head.avail > start {
				start = head.avail
			}
			if err := s.producer.Start(head.vals, start); err != nil {
				return err
			}
			progress = true
			if err := s.collect(s.producer); err != nil {
				return err
			}
			s.note(s.producer, len(s.units)-1)
		}

		if !progress {
			return nil
		}
	}
}

// pickWalker selects the idle walker that can start an item available at
// `avail` earliest (ties: lowest index), restricted to the queue's consumers.
// It returns -1 when no eligible walker is idle.
func (s *sched) pickWalker(qi int, avail uint64) int {
	if s.mode != SharedDispatcher {
		// Per-lane queues map queue i to walker i.
		if s.walkers[qi].State() == UnitIdle {
			return qi
		}
		return -1
	}
	best := -1
	var bestStart uint64
	for w, u := range s.walkers {
		if u.State() != UnitIdle {
			continue
		}
		start := s.walkLast[w]
		if avail > start {
			start = avail
		}
		if best < 0 || start < bestStart {
			best, bestStart = w, start
		}
	}
	return best
}

// collect folds a just-finished work item into the offload accounting and
// performs the completion side effects (queue releases, lane gating). It is
// a no-op while the unit is still paused mid-item.
func (s *sched) collect(u *Unit) error {
	if u.State() != UnitIdle {
		return nil
	}
	it := u.LastResult()

	for i, hu := range s.hashUnits {
		if hu != u {
			continue
		}
		s.hashLast[i] = it.FinishCycle
		s.res.DispatcherBusy += it.Busy()
		s.res.DispatcherStall += it.QueueStall
		if s.mode == Coupled {
			// Coupled hashing occupies the walker itself (Figure 3b): its
			// cycles land in the lane's walker breakdown too.
			s.res.Walkers[i].addItem(it)
		}
		if len(it.Emitted) != 1 {
			return fmt.Errorf("widx: %s emitted %d items for one key", u.Name(), len(it.Emitted))
		}
		return nil
	}

	for i, wu := range s.walkers {
		if wu != u {
			continue
		}
		s.walkLast[i] = it.FinishCycle
		s.res.Walkers[i].addItem(it)
		key := s.walkKey[i]
		s.done[key] = keyOutput{emitted: it.Emitted, finish: it.FinishCycle}
		s.releaseDone()
		if s.mode == Coupled {
			lane := int(key % uint64(s.n))
			s.laneGate[lane] = true
			s.laneAvail[lane] = it.FinishCycle
		}
		return nil
	}

	// Producer.
	s.prodLast = it.FinishCycle
	s.res.ProducerBusy += it.Busy()
	return nil
}

// releaseDone releases finished keys to the producer in key order: each
// key's matches enter the producer stream (and res.Matches) only once every
// earlier key has been released, making the match order independent of how
// the walks interleaved.
func (s *sched) releaseDone() {
	for {
		out, ok := s.done[s.nextOut]
		if !ok {
			return
		}
		delete(s.done, s.nextOut)
		if out.finish > s.releaseClock {
			s.releaseClock = out.finish
		}
		for _, m := range out.emitted {
			s.prodQ = append(s.prodQ, qitem{vals: m, key: s.nextOut, avail: s.releaseClock})
			s.res.Matches = append(s.res.Matches, m[0])
		}
		s.nextOut++
	}
}

// finished reports whether every key has been hashed, walked, released and
// produced, with all units idle.
func (s *sched) finished() bool {
	if s.nextOut != s.req.KeyCount || s.prodHead < len(s.prodQ) {
		return false
	}
	for i, u := range s.hashUnits {
		if u.State() != UnitIdle || s.hashNext[i] < s.req.KeyCount {
			return false
		}
	}
	for _, u := range s.walkers {
		if u.State() != UnitIdle {
			return false
		}
	}
	for _, q := range s.queues {
		if q.len() > 0 {
			return false
		}
	}
	return s.producer.State() == UnitIdle
}

// endCycle returns the cycle the offload completes: the latest finish across
// every unit (idle units contribute the offload start, like the seed model).
func (s *sched) endCycle() uint64 {
	end := s.req.StartCycle
	for _, f := range s.hashLast {
		if f > end {
			end = f
		}
	}
	for _, f := range s.walkLast {
		if f > end {
			end = f
		}
	}
	if s.prodLast > end {
		end = s.prodLast
	}
	return end
}
