// Package widx models the Widx accelerator of Section 4: a dispatcher unit
// that hashes probe keys, a set of walker units that traverse hash-bucket
// node lists concurrently, and an output producer that stores matches — all
// built from the same 2-stage, 32-register, 64-bit RISC unit executing the
// ISA of internal/isa, communicating through small decoupling queues, and
// sharing the host core's MMU and cache hierarchy (internal/mem).
//
// The model is execution-driven: each unit interprets its real program
// against the simulated address space, so the functional results (which keys
// match, what payloads are emitted) are produced by the same instructions
// whose timing is being measured, exactly as on hardware. Timing is tracked
// per unit with the cycle categories the paper reports in Figures 8 and 9:
// computation, memory, TLB and idle (waiting on the dispatcher).
package widx

import (
	"fmt"

	"widx/internal/isa"
	"widx/internal/mem"
	"widx/internal/vm"
)

// maxInstructionsPerItem bounds a single work item's execution so that a
// buggy program (for example a walk over a corrupted, cyclic node list)
// fails loudly instead of hanging the simulation.
const maxInstructionsPerItem = 1 << 20

// ItemResult reports the execution of one work item on one unit.
type ItemResult struct {
	// StartCycle and FinishCycle bound the item's execution.
	StartCycle  uint64
	FinishCycle uint64
	// CompCycles is time spent executing non-memory instructions.
	CompCycles uint64
	// MemCycles is time stalled waiting for the memory hierarchy (post
	// translation).
	MemCycles uint64
	// TLBCycles is time stalled waiting for address translation.
	TLBCycles uint64
	// Emitted holds the values pushed to the output queue, one slice per
	// EMIT executed, in program order.
	Emitted [][]uint64
	// Instructions is the dynamic instruction count.
	Instructions uint64
	// MemOps is the number of memory operations issued.
	MemOps uint64
}

// Busy returns the cycles the unit was occupied by this item.
func (r ItemResult) Busy() uint64 { return r.FinishCycle - r.StartCycle }

// Unit is one Widx processing element executing a fixed program, with
// registers that persist across work items (constants are loaded once at
// configuration time; the output producer exploits persistence for its write
// cursor).
type Unit struct {
	name string
	prog *isa.Program
	hier *mem.Hierarchy
	as   *vm.AddressSpace

	regs [isa.NumRegs]uint64
}

// NewUnit builds a unit for the given validated program. The program's
// constant registers are loaded immediately (the control-block load).
func NewUnit(name string, prog *isa.Program, hier *mem.Hierarchy, as *vm.AddressSpace) (*Unit, error) {
	if prog == nil {
		return nil, fmt.Errorf("widx: nil program")
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if hier == nil || as == nil {
		return nil, fmt.Errorf("widx: unit %q needs a memory hierarchy and an address space", name)
	}
	u := &Unit{name: name, prog: prog, hier: hier, as: as}
	u.Reset()
	return u, nil
}

// Name returns the unit's diagnostic name.
func (u *Unit) Name() string { return u.name }

// Kind returns the unit kind of the loaded program.
func (u *Unit) Kind() isa.UnitKind { return u.prog.Kind }

// Program returns the loaded program.
func (u *Unit) Program() *isa.Program { return u.prog }

// Reset reloads the constant registers and clears the rest, as the
// configuration step (Section 4.3) does.
func (u *Unit) Reset() {
	for i := range u.regs {
		u.regs[i] = 0
	}
	for r, v := range u.prog.ConstRegs {
		u.regs[r] = v
	}
}

// Reg returns the current value of a register (for tests and diagnostics).
func (u *Unit) Reg(r isa.Reg) uint64 { return u.regs[r] }

// readReg reads a register; r0 is hardwired to zero.
func (u *Unit) readReg(r isa.Reg) uint64 {
	if r == 0 {
		return 0
	}
	return u.regs[r]
}

// writeReg writes a register; writes to r0 are discarded.
func (u *Unit) writeReg(r isa.Reg, v uint64) {
	if r == 0 {
		return
	}
	u.regs[r] = v
}

// shiftVal applies the fused-op shift to v: positive shifts left, negative
// shifts right (logical).
func shiftVal(v uint64, shift int8) uint64 {
	switch {
	case shift > 0:
		return v << uint(shift)
	case shift < 0:
		return v >> uint(-shift)
	default:
		return v
	}
}

// RunItem executes the unit's program for one work item whose input values
// become available at startCycle. The inputs are bound to the program's
// InputRegs in order; missing inputs are an error, extra inputs are ignored.
func (u *Unit) RunItem(inputs []uint64, startCycle uint64) (ItemResult, error) {
	if len(inputs) < len(u.prog.InputRegs) {
		return ItemResult{}, fmt.Errorf("widx: unit %q expects %d inputs, got %d",
			u.name, len(u.prog.InputRegs), len(inputs))
	}
	for i, r := range u.prog.InputRegs {
		u.writeReg(r, inputs[i])
	}

	res := ItemResult{StartCycle: startCycle}
	cycle := startCycle
	pc := 0

	for {
		if res.Instructions >= maxInstructionsPerItem {
			return res, fmt.Errorf("widx: unit %q exceeded %d instructions on one item (cyclic node list?)",
				u.name, maxInstructionsPerItem)
		}
		if pc < 0 || pc >= len(u.prog.Code) {
			return res, fmt.Errorf("widx: unit %q ran off the end of its program (pc=%d)", u.name, pc)
		}
		in := u.prog.Code[pc]
		res.Instructions++

		switch in.Op {
		case isa.HALT:
			// The 2-stage pipeline retires the halt in one cycle.
			cycle++
			res.CompCycles++
			res.FinishCycle = cycle
			return res, nil

		case isa.EMIT:
			out := make([]uint64, len(u.prog.OutputRegs))
			for i, r := range u.prog.OutputRegs {
				out[i] = u.readReg(r)
			}
			res.Emitted = append(res.Emitted, out)
			cycle++
			res.CompCycles++
			pc++

		case isa.LD, isa.ST, isa.TOUCH:
			addr := u.readReg(in.SrcA) + uint64(in.Imm)
			var typ mem.AccessType
			switch in.Op {
			case isa.LD:
				typ = mem.Load
			case isa.ST:
				typ = mem.Store
			default:
				typ = mem.Prefetch
			}
			r := u.hier.Access(addr, cycle, typ)
			res.MemOps++
			// Split the stall into translation time and memory time.
			tlbWait := r.TLBReadyCycle - cycle
			res.TLBCycles += tlbWait
			if r.CompleteCycle > r.TLBReadyCycle {
				res.MemCycles += r.CompleteCycle - r.TLBReadyCycle
			}
			switch in.Op {
			case isa.LD:
				u.writeReg(in.Dst, u.as.Read64(addr))
			case isa.ST:
				u.as.Write64(addr, u.readReg(in.SrcB))
			}
			if r.CompleteCycle > cycle {
				cycle = r.CompleteCycle
			} else {
				cycle++
			}
			pc++

		case isa.BA:
			cycle++
			res.CompCycles++
			pc = pc + 1 + int(in.Imm)

		case isa.BLE:
			cycle++
			res.CompCycles++
			if int64(u.readReg(in.SrcA)) <= int64(u.readReg(in.SrcB)) {
				pc = pc + 1 + int(in.Imm)
			} else {
				pc++
			}

		default:
			// ALU operations: one cycle each on the 2-stage pipeline.
			a := u.readReg(in.SrcA)
			var b uint64
			if in.UseImm {
				b = uint64(in.Imm)
			} else {
				b = u.readReg(in.SrcB)
			}
			var v uint64
			switch in.Op {
			case isa.ADD:
				v = a + b
			case isa.AND:
				v = a & b
			case isa.XOR:
				v = a ^ b
			case isa.SHL:
				v = a << (b & 63)
			case isa.SHR:
				v = a >> (b & 63)
			case isa.CMP:
				if a == b {
					v = 1
				}
			case isa.CMPLE:
				if int64(a) <= int64(b) {
					v = 1
				}
			case isa.ADDSHF:
				v = a + shiftVal(b, in.Shift)
			case isa.ANDSHF:
				v = a & shiftVal(b, in.Shift)
			case isa.XORSHF:
				v = a ^ shiftVal(b, in.Shift)
			default:
				return res, fmt.Errorf("widx: unit %q hit unimplemented opcode %v", u.name, in.Op)
			}
			u.writeReg(in.Dst, v)
			cycle++
			res.CompCycles++
			pc++
		}
	}
}
